//===- BenchCommon.cpp - Shared benchmark-harness plumbing --------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>

#include "isel/AutomatonSelector.h"
#include "isel/TilingSelector.h"
#include "support/Error.h"
#include "support/Statistics.h"
#include "pattern/ParallelBuilder.h"

#include <thread>

using namespace selgen;
using namespace selgen::bench;

const unsigned selgen::bench::Width = [] {
  unsigned Candidate = 8;
  if (const char *Env = std::getenv("SELGEN_BENCH_WIDTH"))
    Candidate = static_cast<unsigned>(std::atoi(Env));
  return Candidate == 8 || Candidate == 16 || Candidate == 32 ? Candidate
                                                              : 8u;
}();

bool selgen::bench::fullScale() {
  const char *Scale = std::getenv("SELGEN_BENCH_SCALE");
  return Scale && std::string(Scale) == "full";
}

std::optional<CostKind> selgen::bench::benchCostModel() {
  const char *Env = std::getenv("SELGEN_COST_MODEL");
  if (!Env || !*Env)
    return std::nullopt;
  std::optional<CostKind> Kind = parseCostKind(Env);
  if (!Kind)
    reportFatalError("SELGEN_COST_MODEL must be unit, latency, or size (got "
                     "\"" + std::string(Env) + "\")");
  return Kind;
}

std::unique_ptr<InstructionSelector>
selgen::bench::makeRuleDrivenSelector(const PatternDatabase &Db,
                                      const GoalLibrary &Goals) {
  if (std::optional<CostKind> Kind = benchCostModel())
    return std::make_unique<TilingSelector>(Db, Goals, *Kind);
  return std::make_unique<AutomatonSelector>(Db, Goals);
}

static double goalBudgetSeconds() {
  if (const char *Budget = std::getenv("SELGEN_BENCH_GOAL_BUDGET"))
    return std::atof(Budget);
  return fullScale() ? 60.0 : 8.0;
}

BenchGoals selgen::bench::makeBenchGoals(const std::string &Kind) {
  BenchGoals Result;
  if (Kind == "basic") {
    Result.Goals = GoalLibrary::build(Width, {"Basic"});
    return Result;
  }
  if (Kind != "full")
    reportFatalError("unknown bench goal kind: " + Kind);

  GoalLibrary All = GoalLibrary::build(Width, GoalLibrary::allGroups());

  std::vector<std::string> Names;
  for (const GoalInstruction *Goal : All.group("Basic"))
    Names.push_back(Goal->Name);
  // Bounded addressing-mode coverage by default; everything at full
  // scale.
  std::vector<std::string> LoadStoreSuffixes =
      fullScale() ? std::vector<std::string>{"b", "bd", "bi", "bid", "bis2",
                                             "bis4", "bis8", "bisd2",
                                             "bisd4", "bisd8"}
                  : std::vector<std::string>{"b", "bd", "bi", "bis2",
                                             "bis4"};
  for (const std::string &Suffix : LoadStoreSuffixes) {
    Names.push_back("mov_load_" + Suffix);
    Names.push_back("mov_store_" + Suffix);
  }
  Names.push_back("mov_storei_b");
  Names.push_back("mov_storei_bd");
  for (const char *Name : {"inc_r", "dec_r", "neg_m_b", "not_m_b",
                           "inc_m_b", "dec_m_b"})
    Names.push_back(Name);
  if (fullScale())
    for (const char *Name :
         {"neg_m_bd", "not_m_bd", "inc_m_bd", "dec_m_bd"})
      Names.push_back(Name);
  for (const char *Name :
       {"add_ri", "sub_ri", "and_ri", "or_ri", "xor_ri", "imul_ri",
        "add_rm_b", "add_rm_bd", "sub_rm_b", "and_rm_b", "or_rm_b",
        "xor_rm_b", "add_mr_b", "xor_mr_b", "lea_bd", "lea_bid",
        "lea_bis2", "lea_bis4"})
    Names.push_back(Name);
  for (const char *Name : {"cmpi_je", "cmpi_jne", "cmpi_jl", "cmpi_jge",
                           "cmpi_jb", "cmpi_jae", "cmove", "cmovne",
                           "cmovl", "cmovb", "cmpm_b_je", "cmpm_b_jl"})
    Names.push_back(Name);
  for (const char *Name : {"test_je", "test_jne", "test_js", "test_jns"})
    Names.push_back(Name);
  for (const char *Name : {"andn", "blsr", "blsi", "blsmsk"})
    Names.push_back(Name);

  Result.Goals = GoalLibrary::subset(std::move(All), Names);
  // Total-pattern mode for the goals whose canonical patterns sit
  // above the partial-mode junk size (see DESIGN.md Section 4).
  Result.TotalModeGoals = {"andn",    "blsr",    "blsi",   "blsmsk",
                           "test_je", "test_jne", "test_js", "test_jns"};
  return Result;
}

std::string selgen::bench::libraryCachePath(const std::string &Kind) {
  std::string Name =
      "rule-library-" + Kind + "-w" + std::to_string(Width) + ".dat";
  // The shipped libraries live in artifacts/ (repo layout); prefer one
  // there — from the repo root or from bench/ — before falling back to
  // a cwd-local cache file that a synthesis run will create.
  for (const std::string &Dir : {std::string("artifacts/"),
                                 std::string("../artifacts/")}) {
    std::ifstream Probe(Dir + Name);
    if (Probe.good())
      return Dir + Name;
  }
  return Name;
}

PatternDatabase selgen::bench::loadOrSynthesizeLibrary(
    SmtContext &, const std::string &Kind, const GoalLibrary &Goals,
    LibraryBuildReport *Report, bool *WasCached) {
  std::string Path = libraryCachePath(Kind);
  {
    std::ifstream Probe(Path);
    if (Probe.good()) {
      std::printf("[bench] loading cached %s rule library from %s\n",
                  Kind.c_str(), Path.c_str());
      if (WasCached)
        *WasCached = true;
      return PatternDatabase::loadFromFile(Path);
    }
  }
  if (WasCached)
    *WasCached = false;

  BenchGoals Bench = makeBenchGoals(Kind); // For the Total-mode list.
  auto IsTotalMode = [&Bench](const std::string &Name) {
    return std::find(Bench.TotalModeGoals.begin(),
                     Bench.TotalModeGoals.end(),
                     Name) != Bench.TotalModeGoals.end();
  };

  unsigned Threads = std::max(1u, std::thread::hardware_concurrency());
  if (const char *Env = std::getenv("SELGEN_BENCH_THREADS"))
    Threads = std::max(1, std::atoi(Env));

  // CI warms a persistent cache across runs; opt in via env var so
  // default local bench runs stay hermetic.
  std::unique_ptr<SynthesisCache> Cache;
  if (const char *CacheDir = std::getenv("SELGEN_CACHE_DIR"))
    if (*CacheDir) {
      Cache = std::make_unique<SynthesisCache>(CacheDir);
      if (!Cache->usable())
        Cache.reset();
    }

  std::printf("[bench] synthesizing the %s rule library "
              "(%zu goals, %.0fs per-goal budget, %u threads; "
              "paper Section 5.5 parallel mode)...\n",
              Kind.c_str(), Goals.goals().size(), goalBudgetSeconds(),
              Threads);
  std::fflush(stdout);

  SynthesisOptions Options;
  Options.Width = Width;
  Options.FindAllMinimal = true;
  Options.TimeBudgetSeconds = goalBudgetSeconds();
  Options.QueryTimeoutMs = 20000;
  Options.MaxPatternsPerMultiset = 8;
  Options.MaxPatternsPerGoal = 128;

  Timer Total;
  ParallelBuildOptions Build;
  Build.NumThreads = Threads;
  Build.TotalModeGoals = Bench.TotalModeGoals;
  Build.Cache = Cache.get();
  LibraryBuildReport LocalReport;
  PatternDatabase Database =
      synthesizeRuleLibraryParallel(Goals, Options, Build, &LocalReport);
  (void)IsTotalMode;
  if (Report)
    *Report = LocalReport;

  std::printf("[bench] %s library: %zu rules in %s; caching to %s\n",
              Kind.c_str(), Database.size(),
              formatDuration(Total.elapsedSeconds()).c_str(), Path.c_str());
  if (Cache)
    std::printf("[bench] synthesis cache: %u hits, %u misses\n",
                LocalReport.CacheHits, LocalReport.CacheMisses);
  if (const char *StatsPath = std::getenv("SELGEN_STATS_JSON"))
    if (*StatsPath)
      Statistics::get().writeJsonFile(StatsPath);
  Database.saveToFile(Path);
  return Database;
}

void selgen::bench::printBenchHeader(const std::string &Title,
                                     const std::string &PaperRef) {
  std::printf("\n================================================================"
              "===============\n");
  std::printf("%s\n", Title.c_str());
  std::printf("reproduces: %s\n", PaperRef.c_str());
  std::printf("=================================================================="
              "=============\n");
  std::fflush(stdout);
}
