//===- BenchCommon.h - Shared benchmark-harness plumbing ---------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the benchmark binaries in bench/. Each binary
/// regenerates one of the paper's tables or in-text experiments (see
/// DESIGN.md's per-experiment index and EXPERIMENTS.md for the
/// measured results).
///
/// Scale: the paper synthesizes 32-bit x86 rules for ~100 hours on
/// eight cores. The benchmarks default to 8-bit data width and reduced
/// goal subsets with per-goal time budgets so every binary finishes in
/// minutes; set SELGEN_BENCH_SCALE=full for wider goal coverage (and
/// correspondingly longer runs). The synthesis engine itself is
/// width-agnostic and scale-agnostic.
///
/// Synthesized rule libraries are cached as rule-library-*.dat in the
/// working directory, mirroring the artifact's rule-library.dat, so
/// later benchmarks (and reruns) reuse earlier synthesis work.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_BENCH_BENCHCOMMON_H
#define SELGEN_BENCH_BENCHCOMMON_H

#include "cost/CostModel.h"
#include "isel/Selector.h"
#include "pattern/LibraryBuilder.h"
#include "support/StringUtils.h"
#include "support/Timer.h"
#include "x86/Goals.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace selgen::bench {

/// The benchmark data width: SELGEN_BENCH_WIDTH (8, 16, or 32;
/// default 8). Read once at startup; only consumed from main(), so
/// the dynamic initializer is safe.
extern const unsigned Width;

/// True if SELGEN_BENCH_SCALE=full.
bool fullScale();

/// The cost model requested via SELGEN_COST_MODEL (unit | latency |
/// size), or nullopt when the variable is unset/empty — the benchmarks
/// then time the first-match selectors exactly as before. An
/// unrecognized value is a fatal error (silently benchmarking the
/// wrong selector would poison the recorded numbers).
std::optional<CostKind> benchCostModel();

/// The rule-driven selector the benchmark harnesses should measure
/// over \p Db: the first-match AutomatonSelector by default, or a
/// cost-minimal TilingSelector under SELGEN_COST_MODEL (see
/// benchCostModel()).
std::unique_ptr<InstructionSelector>
makeRuleDrivenSelector(const PatternDatabase &Db, const GoalLibrary &Goals);

/// The goal subsets used by the benchmarks, mirroring the paper's
/// setups: "basic" is the Basic group; "full" adds load/store,
/// unary, binary, flag, and BMI variants (bounded by default scale).
struct BenchGoals {
  GoalLibrary Goals;
  /// Per-goal synthesis policies (goal name -> total-pattern mode).
  std::vector<std::string> TotalModeGoals;
};

/// Builds the benchmark goal set. \p Kind is "basic" or "full".
BenchGoals makeBenchGoals(const std::string &Kind);

/// Loads the cached rule library for \p Kind if present, otherwise
/// synthesizes it (reporting Table 2 style progress to stdout) and
/// saves the cache. The report (if non-null) receives per-group rows
/// from the synthesis; cached loads leave it empty.
PatternDatabase loadOrSynthesizeLibrary(SmtContext &Smt,
                                        const std::string &Kind,
                                        const GoalLibrary &Goals,
                                        LibraryBuildReport *Report = nullptr,
                                        bool *WasCached = nullptr);

/// Cache file path for a library kind.
std::string libraryCachePath(const std::string &Kind);

/// Prints a header line for one benchmark binary.
void printBenchHeader(const std::string &Title, const std::string &PaperRef);

} // namespace selgen::bench

#endif // SELGEN_BENCH_BENCHCOMMON_H
