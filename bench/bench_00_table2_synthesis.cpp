//===- bench_00_table2_synthesis.cpp - Paper Table 2 ---------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// Reproduces Table 2: synthesis time for the instruction groups of the
// basic and full setups — number of goals, number of synthesized
// patterns, maximum pattern size, and synthesis wall time per group.
// The synthesized libraries are cached for the downstream benchmarks
// (bench_10/bench_20), mirroring the artifact's full-synthesis.sh ->
// rule-library.dat flow.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace selgen;
using namespace selgen::bench;

namespace {

void printTable2(const std::string &Setup, const LibraryBuildReport &Report) {
  TablePrinter Table({"Group", "#Goals", "Patterns #", "Size",
                      "Synthesis Time", "Budget hits"});
  // Table 2 group order.
  for (const std::string GroupName :
       {"Basic", "LoadStore", "Unary", "Binary", "Flags", "Bmi"}) {
    for (const GroupReport &Group : Report.Groups) {
      if (Group.Group != GroupName)
        continue;
      Table.addRow({Group.Group, std::to_string(Group.Goals),
                    formatGrouped(Group.Patterns),
                    std::to_string(Group.MaxPatternSize),
                    formatDuration(Group.Seconds),
                    std::to_string(Group.IncompleteGoals)});
    }
  }
  Table.addRow({"Total", std::to_string(Report.TotalGoals),
                formatGrouped(Report.TotalPatterns), "",
                formatDuration(Report.TotalSeconds), ""});
  std::printf("\n--- %s setup ---\n%s", Setup.c_str(),
              Table.render().c_str());
}

} // namespace

int main() {
  printBenchHeader(
      "Table 2: synthesis time per instruction group (scaled down)",
      "Buchwald et al., CGO'18, Table 2 (paper: Basic 3 min 25 s ... "
      "Flags 72 h; total 630 goals, 154 470 patterns, max size 7 at "
      "32 bit on 8 cores)");

  SmtContext Smt;

  // Basic setup (the paper's 3 min 25 s / 39 goals / 575 patterns row).
  {
    BenchGoals Bench = makeBenchGoals("basic");
    LibraryBuildReport Report;
    bool Cached = false;
    PatternDatabase Database = loadOrSynthesizeLibrary(
        Smt, "basic", Bench.Goals, &Report, &Cached);
    if (!Cached)
      printTable2("basic", Report);
    else
      std::printf("basic library cached: %zu rules "
                  "(delete %s to re-synthesize)\n",
                  Database.size(), libraryCachePath("basic").c_str());
  }

  // Full setup (scaled-down analogue of the 100 h run).
  {
    BenchGoals Bench = makeBenchGoals("full");
    LibraryBuildReport Report;
    bool Cached = false;
    PatternDatabase Database = loadOrSynthesizeLibrary(
        Smt, "full", Bench.Goals, &Report, &Cached);
    if (!Cached)
      printTable2("full", Report);
    else
      std::printf("full library cached: %zu rules\n", Database.size());

    // Post-processing counts (Section 5.5/5.6).
    size_t Before = Database.size();
    PatternDatabase Filtered;
    for (const Rule &R : Database.rules())
      Filtered.add(R.GoalName, R.Pattern.clone());
    size_t NonNormalized = Filtered.filterNonNormalized();
    size_t CommutativeDuplicates = Filtered.filterCommutativeDuplicates();
    std::printf("\npost-processing (Sections 5.5/5.6): %zu rules -> %zu "
                "(%zu non-normalized, %zu commutative duplicates removed)\n",
                Before, Filtered.size(), NonNormalized,
                CommutativeDuplicates);
  }
  return 0;
}
