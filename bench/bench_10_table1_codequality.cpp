//===- bench_10_table1_codequality.cpp - Paper Table 1 + compile time ----------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// Reproduces Table 1 (runtime of generated executables under the
// handwritten, basic-library, and full-library selectors, plus
// coverage) and the Section 7.3 in-text compile-time comparison
// (basic 1.66x, full 1217x-1804x selector-phase slowdown).
//
// Substitutions: SPEC CINT2000 -> synthetic workloads with per-
// benchmark operation-mix profiles; hardware seconds -> cost-weighted
// dynamic instruction counts on the x86 emulator (see DESIGN.md).
// The paper's reading — ratios close to 100% for the full setup,
// noticeably above 100% for the basic setup — is what to compare.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "eval/Evaluation.h"
#include "eval/Workloads.h"
#include "isel/AutomatonSelector.h"
#include "isel/GeneratedSelector.h"
#include "isel/HandwrittenSelector.h"
#include "isel/TilingSelector.h"
#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "x86/Emulator.h"

#include <cstdio>
#include <cstdlib>
#include <map>

using namespace selgen;
using namespace selgen::bench;

namespace {

/// Machine code of \p MF without the header line (the function name
/// embeds the selector name, which legitimately differs).
std::string asmBody(const MachineFunction &MF) {
  std::string Text = printMachineFunction(MF);
  size_t Eol = Text.find('\n');
  return Eol == std::string::npos ? std::string() : Text.substr(Eol + 1);
}

struct DynTotals {
  uint64_t Instructions = 0; ///< Dynamic instructions executed.
  uint64_t Cycles = 0;       ///< Cost-weighted dynamic count.
  bool Ok = true;            ///< Every run agreed with the interpreter.
};

/// Executes \p MF on \p Runs deterministic input sets (the same
/// generator as the Table 1 experiment), checking every run against
/// the IR interpreter.
DynTotals runDynamic(const MachineFunction &MF, const Function &F,
                     const WorkloadProfile &Profile, unsigned Runs) {
  Rng Random(Profile.Seed ^ 0xABCDEF);
  DynTotals Totals;
  for (unsigned Run = 0; Run < Runs; ++Run) {
    std::vector<BitValue> Args;
    for (unsigned A = 0; A < 3; ++A)
      Args.push_back(Random.nextBitValue(Width));
    MemoryState Memory;
    for (unsigned B = 0; B < (1u << std::min(Width, 8u)); ++B)
      Memory.storeByte(B, static_cast<uint8_t>(Random.nextBelow(256)));

    FunctionResult Reference = runFunction(F, Args, Memory, 1u << 24);
    if (Reference.Undefined || Reference.StepLimitHit) {
      Totals.Ok = false;
      continue;
    }
    std::map<MReg, BitValue> Regs;
    const auto &ArgRegs = MF.entry()->ArgRegs;
    for (size_t I = 0; I < ArgRegs.size(); ++I)
      Regs[ArgRegs[I]] = Args[I];
    MachineRunResult Result = runMachineFunction(MF, Regs, Memory, 1u << 24);
    Totals.Instructions += Result.InstructionCount;
    Totals.Cycles += Result.Cycles;
    if (Result.StepLimitHit ||
        Result.ReturnValues.size() != Reference.ReturnValues.size()) {
      Totals.Ok = false;
      continue;
    }
    for (size_t I = 0; I < Reference.ReturnValues.size(); ++I)
      if (Result.ReturnValues[I] != Reference.ReturnValues[I])
        Totals.Ok = false;
    if (Reference.FinalMemory)
      for (const auto &[Address, Value] : Reference.FinalMemory->bytes())
        if (Result.Memory.peekByte(Address) != Value)
          Totals.Ok = false;
  }
  return Totals;
}

} // namespace

int main() {
  printBenchHeader(
      "Table 1: code quality of the generated instruction selector",
      "Buchwald et al., CGO'18, Table 1 (paper geomeans: coverage "
      "75.46 %, Basic/Handwritten 111.56 %, Full/Handwritten 101.13 %)");

  SmtContext Smt;
  BenchGoals BasicGoals = makeBenchGoals("basic");
  BenchGoals FullGoals = makeBenchGoals("full");
  PatternDatabase BasicDb =
      loadOrSynthesizeLibrary(Smt, "basic", BasicGoals.Goals);
  PatternDatabase FullDb =
      loadOrSynthesizeLibrary(Smt, "full", FullGoals.Goals);

  // Code-generator post-processing (Section 5.6).
  BasicDb.filterNonNormalized();
  BasicDb.sortSpecificFirst();
  FullDb.filterNonNormalized();
  FullDb.sortSpecificFirst();

  HandwrittenSelector Handwritten;
  GeneratedSelector Basic(BasicDb, FullGoals.Goals);
  GeneratedSelector Full(FullDb, FullGoals.Goals);
  std::printf("selectors: basic %zu rules, full %zu rules\n",
              Basic.numRules(), Full.numRules());

  CodeQualityResult Result = runCodeQualityExperiment(
      Handwritten, Basic, Full, Width, /*RunsPerWorkload=*/3);

  TablePrinter Table({"Benchmark", "Coverage", "Handwritten", "Basic",
                      "Full", "Basic/Handw.", "Full/Handw.", "Check"});
  for (const CodeQualityRow &Row : Result.Rows)
    Table.addRow({Row.Benchmark,
                  formatDouble(100.0 * Row.Coverage, 2) + " %",
                  formatGrouped(Row.HandwrittenCycles),
                  formatGrouped(Row.BasicCycles),
                  formatGrouped(Row.FullCycles),
                  formatDouble(Row.BasicOverHandwritten, 2) + " %",
                  formatDouble(Row.FullOverHandwritten, 2) + " %",
                  Row.Mismatch ? "MISMATCH" : "ok"});
  Table.addRow({"Geom. Mean",
                formatDouble(100.0 * Result.GeoMeanCoverage, 2) + " %", "",
                "", "", formatDouble(Result.GeoMeanBasicRatio, 2) + " %",
                formatDouble(Result.GeoMeanFullRatio, 2) + " %", ""});
  std::printf("\n%s", Table.render().c_str());
  std::printf("\n(runtime = cost-weighted dynamic instruction count on the "
              "emulator; every run is\nchecked against the IR interpreter "
              "— the Check column must read ok)\n");

  // --- Cost-minimal tiling vs first-match (full library) ---------------
  // Beyond-paper extension: the tiling selector re-orders the
  // automaton's candidate sets so the engine commits to the cheapest
  // legal cover instead of the first (most-specific) match. Unit-cost
  // tiling must stay byte-identical to first-match (the migration
  // anchor CI enforces); the latency model must never produce a
  // statically costlier function, and its dynamic instruction count
  // must not regress. The greppable totals below feed the CI perf
  // guard (tools/ci/perf_compare.py --metric tiling_static_cost=...).
  printBenchHeader(
      "Cost-minimal DAG tiling vs first-match selection (full library)",
      "beyond-paper extension (DESIGN.md Section 4f): --selector tiling "
      "--cost-model latency");

  AutomatonSelector FirstMatch(FullDb, FullGoals.Goals);
  TilingSelector TilingUnit(FullDb, FullGoals.Goals, CostKind::Unit);
  TilingSelector TilingLatency(FullDb, FullGoals.Goals, CostKind::Latency);

  uint64_t FmStaticCost = 0, TiStaticCost = 0;
  uint64_t FmStaticInstrs = 0, TiStaticInstrs = 0;
  uint64_t FmDynInstrs = 0, TiDynInstrs = 0;
  uint64_t FmDynCycles = 0, TiDynCycles = 0;
  unsigned StrictlyCheaper = 0;
  bool UnitIdentical = true, TilingOk = true;

  TablePrinter TileTable({"Benchmark", "Static instrs", "Static latency",
                          "Dyn instrs", "Dyn cycles", "Check"});
  for (const WorkloadProfile &Profile : cint2000Profiles()) {
    Function F = buildWorkload(Profile, Width);
    SelectionResult Fm = FirstMatch.select(F);
    SelectionResult Unit = TilingUnit.select(F);
    SelectionResult Tile = TilingLatency.select(F);
    UnitIdentical = UnitIdentical && asmBody(*Fm.MF) == asmBody(*Unit.MF);

    uint64_t FmCost = machineStaticCost(*Fm.MF, CostKind::Latency);
    uint64_t TiCost = machineStaticCost(*Tile.MF, CostKind::Latency);
    DynTotals FmDyn = runDynamic(*Fm.MF, F, Profile, 3);
    DynTotals TiDyn = runDynamic(*Tile.MF, F, Profile, 3);

    FmStaticCost += FmCost;
    TiStaticCost += TiCost;
    FmStaticInstrs += Fm.MF->numInstructions();
    TiStaticInstrs += Tile.MF->numInstructions();
    FmDynInstrs += FmDyn.Instructions;
    TiDynInstrs += TiDyn.Instructions;
    FmDynCycles += FmDyn.Cycles;
    TiDynCycles += TiDyn.Cycles;
    if (TiCost < FmCost)
      ++StrictlyCheaper;

    bool RowOk = FmDyn.Ok && TiDyn.Ok && TiCost <= FmCost &&
                 TiDyn.Instructions <= FmDyn.Instructions;
    TilingOk = TilingOk && RowOk;
    TileTable.addRow(
        {Profile.Name,
         formatGrouped(Fm.MF->numInstructions()) + " -> " +
             formatGrouped(Tile.MF->numInstructions()),
         formatGrouped(FmCost) + " -> " + formatGrouped(TiCost),
         formatGrouped(FmDyn.Instructions) + " -> " +
             formatGrouped(TiDyn.Instructions),
         formatGrouped(FmDyn.Cycles) + " -> " + formatGrouped(TiDyn.Cycles),
         RowOk ? "ok" : "FAIL"});
  }
  std::printf("\n%s", TileTable.render().c_str());
  std::printf("\n(each cell reads first-match -> latency tiling; Check "
              "requires interpreter\nagreement, static latency cost <=, "
              "and dynamic instruction count <=)\n");
  std::printf("\nunit-cost tiling byte-identical to first-match: %s\n",
              UnitIdentical ? "yes" : "NO");
  std::printf("workloads with strictly lower static cost: %u of %zu\n",
              StrictlyCheaper, cint2000Profiles().size());
  std::printf("first_match_static_cost = %llu\n",
              static_cast<unsigned long long>(FmStaticCost));
  std::printf("tiling_static_cost = %llu\n",
              static_cast<unsigned long long>(TiStaticCost));
  std::printf("tiling_static_instructions = %llu (first-match %llu)\n",
              static_cast<unsigned long long>(TiStaticInstrs),
              static_cast<unsigned long long>(FmStaticInstrs));
  std::printf("tiling_dynamic_instructions = %llu (first-match %llu)\n",
              static_cast<unsigned long long>(TiDynInstrs),
              static_cast<unsigned long long>(FmDynInstrs));
  std::printf("tiling_dynamic_cycles = %llu (first-match %llu)\n",
              static_cast<unsigned long long>(TiDynCycles),
              static_cast<unsigned long long>(FmDynCycles));
  Statistics::get().add("tiling.static_cost",
                        static_cast<int64_t>(TiStaticCost));
  if (!UnitIdentical || !TilingOk || StrictlyCheaper == 0 ||
      TiStaticCost >= FmStaticCost) {
    std::printf("FAILURE: tiling arm violated its cost/identity "
                "guarantees\n");
    return 1;
  }

  // --- Compile-time companion experiment (Section 7.3 in-text) --------
  printBenchHeader(
      "Selection-phase compile time",
      "Buchwald et al., CGO'18, Section 7.3 (paper: basic 1.66x, full "
      "1217x-1804x the handwritten selector's time)");

  CompileTimeResult Compile = runCompileTimeExperiment(
      Handwritten, Basic, Full, Width, /*Repetitions=*/5);
  TablePrinter CompileTable(
      {"Benchmark", "Handwritten", "Basic", "Full", "Basic/Handw.",
       "Full/Handw."});
  for (const CompileTimeRow &Row : Compile.Rows)
    CompileTable.addRow(
        {Row.Benchmark, formatDouble(Row.HandwrittenSeconds * 1e3, 2) + " ms",
         formatDouble(Row.BasicSeconds * 1e3, 2) + " ms",
         formatDouble(Row.FullSeconds * 1e3, 2) + " ms",
         formatDouble(Row.BasicSeconds / Row.HandwrittenSeconds, 1) + "x",
         formatDouble(Row.FullSeconds / Row.HandwrittenSeconds, 1) + "x"});
  CompileTable.addRow(
      {"Total", formatDouble(Compile.TotalHandwritten * 1e3, 2) + " ms",
       formatDouble(Compile.TotalBasic * 1e3, 2) + " ms",
       formatDouble(Compile.TotalFull * 1e3, 2) + " ms",
       formatDouble(Compile.TotalBasic / Compile.TotalHandwritten, 1) + "x",
       formatDouble(Compile.TotalFull / Compile.TotalHandwritten, 1) + "x"});
  std::printf("\n%s", CompileTable.render().c_str());
  std::printf("\n(the prototype tries rules one by one — the full library's "
              "slowdown is the paper's\nSection 7.3 observation, \"only a "
              "deficiency of the prototype instruction selector\")\n");

  // --- Library-size scaling -------------------------------------------
  // The paper's full library has ~60 000 rules after post-processing,
  // which makes the linear-scan prototype 1217x-1804x slower than the
  // handwritten selector. Our synthesized library is smaller, so we
  // additionally inflate it with distinct constant variants of its
  // rules (structurally valid rules that simply never match) to show
  // the same blow-up at the paper's library scale.
  printBenchHeader(
      "Selection time vs rule-library size (linear-scan prototype)",
      "Buchwald et al., CGO'18, Section 7.3 (the 60 000-rule library "
      "behind the 1217x slowdown)");

  auto inflate = [&](size_t TargetSize) {
    PatternDatabase Inflated;
    for (const Rule &R : FullDb.rules())
      Inflated.add(R.GoalName, R.Pattern.clone());
    Rng Random(0xBEEF);
    size_t Stuck = 0;
    while (Inflated.size() < TargetSize && Stuck < 10 * TargetSize) {
      for (const Rule &R : FullDb.rules()) {
        if (Inflated.size() >= TargetSize)
          break;
        Graph Clone = R.Pattern.clone();
        bool HasConst = false;
        for (Node *N : Clone.liveNodes())
          if (N->opcode() == Opcode::Const) {
            N->setConstValue(
                Random.nextBitValue(N->constValue().width()));
            HasConst = true;
          }
        if (!HasConst)
          continue;
        if (!Inflated.add(R.GoalName, std::move(Clone)))
          ++Stuck;
      }
    }
    return Inflated;
  };

  Function Probe = buildWorkload(cint2000Profiles()[2], Width);
  double HandSeconds = 0;
  for (int Rep = 0; Rep < 20; ++Rep)
    HandSeconds += Handwritten.select(Probe).SelectionSeconds;

  TablePrinter ScaleTable({"Library size", "Selection time",
                           "vs handwritten"});
  for (size_t Target : {FullDb.size(), size_t(1000), size_t(4000),
                        size_t(16000)}) {
    PatternDatabase Inflated = inflate(Target);
    GeneratedSelector Selector(Inflated, FullGoals.Goals);
    double Seconds = 0;
    int Reps = Target > 4000 ? 3 : 10;
    for (int Rep = 0; Rep < Reps; ++Rep)
      Seconds += Selector.select(Probe).SelectionSeconds;
    Seconds /= Reps;
    ScaleTable.addRow(
        {formatGrouped(Inflated.size()),
         formatDouble(Seconds * 1e3, 2) + " ms",
         formatDouble(Seconds / (HandSeconds / 20), 0) + "x"});
  }
  std::printf("\n%s", ScaleTable.render().c_str());
  std::printf("\n(rule variants with distinct constants; the scan cost "
              "grows linearly with the\nlibrary, reaching the paper's "
              "three-orders-of-magnitude regime at its 60k scale)\n");
  if (const char *StatsPath = std::getenv("SELGEN_STATS_JSON"))
    if (*StatsPath)
      Statistics::get().writeJsonFile(StatsPath);
  return 0;
}
