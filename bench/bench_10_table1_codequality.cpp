//===- bench_10_table1_codequality.cpp - Paper Table 1 + compile time ----------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// Reproduces Table 1 (runtime of generated executables under the
// handwritten, basic-library, and full-library selectors, plus
// coverage) and the Section 7.3 in-text compile-time comparison
// (basic 1.66x, full 1217x-1804x selector-phase slowdown).
//
// Substitutions: SPEC CINT2000 -> synthetic workloads with per-
// benchmark operation-mix profiles; hardware seconds -> cost-weighted
// dynamic instruction counts on the x86 emulator (see DESIGN.md).
// The paper's reading — ratios close to 100% for the full setup,
// noticeably above 100% for the basic setup — is what to compare.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "eval/Evaluation.h"
#include "eval/Workloads.h"
#include "isel/GeneratedSelector.h"
#include "isel/HandwrittenSelector.h"
#include "support/Rng.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace selgen;
using namespace selgen::bench;

int main() {
  printBenchHeader(
      "Table 1: code quality of the generated instruction selector",
      "Buchwald et al., CGO'18, Table 1 (paper geomeans: coverage "
      "75.46 %, Basic/Handwritten 111.56 %, Full/Handwritten 101.13 %)");

  SmtContext Smt;
  BenchGoals BasicGoals = makeBenchGoals("basic");
  BenchGoals FullGoals = makeBenchGoals("full");
  PatternDatabase BasicDb =
      loadOrSynthesizeLibrary(Smt, "basic", BasicGoals.Goals);
  PatternDatabase FullDb =
      loadOrSynthesizeLibrary(Smt, "full", FullGoals.Goals);

  // Code-generator post-processing (Section 5.6).
  BasicDb.filterNonNormalized();
  BasicDb.sortSpecificFirst();
  FullDb.filterNonNormalized();
  FullDb.sortSpecificFirst();

  HandwrittenSelector Handwritten;
  GeneratedSelector Basic(BasicDb, FullGoals.Goals);
  GeneratedSelector Full(FullDb, FullGoals.Goals);
  std::printf("selectors: basic %zu rules, full %zu rules\n",
              Basic.numRules(), Full.numRules());

  CodeQualityResult Result = runCodeQualityExperiment(
      Handwritten, Basic, Full, Width, /*RunsPerWorkload=*/3);

  TablePrinter Table({"Benchmark", "Coverage", "Handwritten", "Basic",
                      "Full", "Basic/Handw.", "Full/Handw.", "Check"});
  for (const CodeQualityRow &Row : Result.Rows)
    Table.addRow({Row.Benchmark,
                  formatDouble(100.0 * Row.Coverage, 2) + " %",
                  formatGrouped(Row.HandwrittenCycles),
                  formatGrouped(Row.BasicCycles),
                  formatGrouped(Row.FullCycles),
                  formatDouble(Row.BasicOverHandwritten, 2) + " %",
                  formatDouble(Row.FullOverHandwritten, 2) + " %",
                  Row.Mismatch ? "MISMATCH" : "ok"});
  Table.addRow({"Geom. Mean",
                formatDouble(100.0 * Result.GeoMeanCoverage, 2) + " %", "",
                "", "", formatDouble(Result.GeoMeanBasicRatio, 2) + " %",
                formatDouble(Result.GeoMeanFullRatio, 2) + " %", ""});
  std::printf("\n%s", Table.render().c_str());
  std::printf("\n(runtime = cost-weighted dynamic instruction count on the "
              "emulator; every run is\nchecked against the IR interpreter "
              "— the Check column must read ok)\n");

  // --- Compile-time companion experiment (Section 7.3 in-text) --------
  printBenchHeader(
      "Selection-phase compile time",
      "Buchwald et al., CGO'18, Section 7.3 (paper: basic 1.66x, full "
      "1217x-1804x the handwritten selector's time)");

  CompileTimeResult Compile = runCompileTimeExperiment(
      Handwritten, Basic, Full, Width, /*Repetitions=*/5);
  TablePrinter CompileTable(
      {"Benchmark", "Handwritten", "Basic", "Full", "Basic/Handw.",
       "Full/Handw."});
  for (const CompileTimeRow &Row : Compile.Rows)
    CompileTable.addRow(
        {Row.Benchmark, formatDouble(Row.HandwrittenSeconds * 1e3, 2) + " ms",
         formatDouble(Row.BasicSeconds * 1e3, 2) + " ms",
         formatDouble(Row.FullSeconds * 1e3, 2) + " ms",
         formatDouble(Row.BasicSeconds / Row.HandwrittenSeconds, 1) + "x",
         formatDouble(Row.FullSeconds / Row.HandwrittenSeconds, 1) + "x"});
  CompileTable.addRow(
      {"Total", formatDouble(Compile.TotalHandwritten * 1e3, 2) + " ms",
       formatDouble(Compile.TotalBasic * 1e3, 2) + " ms",
       formatDouble(Compile.TotalFull * 1e3, 2) + " ms",
       formatDouble(Compile.TotalBasic / Compile.TotalHandwritten, 1) + "x",
       formatDouble(Compile.TotalFull / Compile.TotalHandwritten, 1) + "x"});
  std::printf("\n%s", CompileTable.render().c_str());
  std::printf("\n(the prototype tries rules one by one — the full library's "
              "slowdown is the paper's\nSection 7.3 observation, \"only a "
              "deficiency of the prototype instruction selector\")\n");

  // --- Library-size scaling -------------------------------------------
  // The paper's full library has ~60 000 rules after post-processing,
  // which makes the linear-scan prototype 1217x-1804x slower than the
  // handwritten selector. Our synthesized library is smaller, so we
  // additionally inflate it with distinct constant variants of its
  // rules (structurally valid rules that simply never match) to show
  // the same blow-up at the paper's library scale.
  printBenchHeader(
      "Selection time vs rule-library size (linear-scan prototype)",
      "Buchwald et al., CGO'18, Section 7.3 (the 60 000-rule library "
      "behind the 1217x slowdown)");

  auto inflate = [&](size_t TargetSize) {
    PatternDatabase Inflated;
    for (const Rule &R : FullDb.rules())
      Inflated.add(R.GoalName, R.Pattern.clone());
    Rng Random(0xBEEF);
    size_t Stuck = 0;
    while (Inflated.size() < TargetSize && Stuck < 10 * TargetSize) {
      for (const Rule &R : FullDb.rules()) {
        if (Inflated.size() >= TargetSize)
          break;
        Graph Clone = R.Pattern.clone();
        bool HasConst = false;
        for (Node *N : Clone.liveNodes())
          if (N->opcode() == Opcode::Const) {
            N->setConstValue(
                Random.nextBitValue(N->constValue().width()));
            HasConst = true;
          }
        if (!HasConst)
          continue;
        if (!Inflated.add(R.GoalName, std::move(Clone)))
          ++Stuck;
      }
    }
    return Inflated;
  };

  Function Probe = buildWorkload(cint2000Profiles()[2], Width);
  double HandSeconds = 0;
  for (int Rep = 0; Rep < 20; ++Rep)
    HandSeconds += Handwritten.select(Probe).SelectionSeconds;

  TablePrinter ScaleTable({"Library size", "Selection time",
                           "vs handwritten"});
  for (size_t Target : {FullDb.size(), size_t(1000), size_t(4000),
                        size_t(16000)}) {
    PatternDatabase Inflated = inflate(Target);
    GeneratedSelector Selector(Inflated, FullGoals.Goals);
    double Seconds = 0;
    int Reps = Target > 4000 ? 3 : 10;
    for (int Rep = 0; Rep < Reps; ++Rep)
      Seconds += Selector.select(Probe).SelectionSeconds;
    Seconds /= Reps;
    ScaleTable.addRow(
        {formatGrouped(Inflated.size()),
         formatDouble(Seconds * 1e3, 2) + " ms",
         formatDouble(Seconds / (HandSeconds / 20), 0) + "x"});
  }
  std::printf("\n%s", ScaleTable.render().c_str());
  std::printf("\n(rule variants with distinct constants; the scan cost "
              "grows linearly with the\nlibrary, reaching the paper's "
              "three-orders-of-magnitude regime at its 60k scale)\n");
  return 0;
}
