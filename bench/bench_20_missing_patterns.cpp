//===- bench_20_missing_patterns.cpp - Paper Section 7.4 -----------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// Reproduces the Section 7.4 experiment (the artifact's run-tests.sh):
// generate a test case from every rule in the synthesized library,
// compile it with the prototype and with the two reference compilers,
// count emitted instructions, and flag the patterns each reference
// compiler fails to map to the optimal sequence. The paper found
// 31 612 patterns unsupported by GCC, 36 365 by Clang, and 29 498 by
// both, out of 63 012 tests.
//
// Substitution: GCC 7.2 / Clang 5.0 -> the GnuLike/ClangLike reference
// selectors of src/refsel (fixed, deliberately incomplete hand-written
// rule sets). Absolute counts differ; the structure — a large fraction
// of synthesized rules is missing from both references, including the
// paper's showcase idioms — is the result to compare.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "isel/GeneratedSelector.h"
#include "refsel/ReferenceSelectors.h"
#include "testgen/TestCaseGenerator.h"

#include <cstdio>
#include <fstream>

using namespace selgen;
using namespace selgen::bench;

namespace {

/// The artifact's run-tests.sh renders an HTML table; so do we.
void writeHtmlReport(const MissingPatternReport &Report,
                     const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out)
    return;
  Out << "<!doctype html><html><head><meta charset=\"utf-8\">"
      << "<title>selgen missing-pattern report</title>"
      << "<style>td,th{padding:2px 8px;font-family:monospace}"
      << ".miss{background:#fbb}</style></head><body>\n"
      << "<h1>Missing-pattern report (paper Section 7.4)</h1>\n<table>"
      << "<tr><th>goal</th><th>pattern</th>";
  for (const std::string &Name : Report.CompilerNames)
    Out << "<th>" << Name << "</th>";
  Out << "</tr>\n";
  for (const MissingPatternRow &Row : Report.Rows) {
    Out << "<tr><td>" << Row.GoalName << "</td><td>"
        << Row.PatternExpression << "</td>";
    for (size_t I = 0; I < Row.InstructionCounts.size(); ++I)
      Out << "<td" << (Row.Missing[I] ? " class=\"miss\"" : "") << ">"
          << Row.InstructionCounts[I] << "</td>";
    Out << "</tr>\n";
  }
  Out << "</table></body></html>\n";
}

} // namespace

int main() {
  printBenchHeader(
      "Missing patterns in state-of-the-art compilers",
      "Buchwald et al., CGO'18, Section 7.4 (paper: 63 012 tests; "
      "31 612 missing in GCC, 36 365 in Clang, 29 498 in both)");

  SmtContext Smt;
  BenchGoals Full = makeBenchGoals("full");
  PatternDatabase Database =
      loadOrSynthesizeLibrary(Smt, "full", Full.Goals);
  Database.filterNonNormalized();
  Database.sortSpecificFirst();

  GeneratedSelector Prototype(Database, Full.Goals);
  PatternDatabase GnuRules = buildGnuLikeRules(Width);
  PatternDatabase ClangRules = buildClangLikeRules(Width);
  auto Gnu = makeReferenceSelector("gnu-like", GnuRules, Full.Goals);
  auto Clang = makeReferenceSelector("clang-like", ClangRules, Full.Goals);

  std::printf("compilers: prototype (%zu rules), gnu-like (%zu rules), "
              "clang-like (%zu rules)\n",
              Prototype.numRules(), GnuRules.size(), ClangRules.size());

  MissingPatternReport Report = runMissingPatternExperiment(
      Database, Width, {&Prototype, Gnu.get(), Clang.get()},
      /*ValidationRuns=*/10);

  TablePrinter Table({"Compiler", "Tests", "Missing patterns", "Share"});
  for (size_t I = 0; I < Report.CompilerNames.size(); ++I)
    Table.addRow({Report.CompilerNames[I],
                  formatGrouped(Report.TotalTests),
                  formatGrouped(Report.TotalMissing[I]),
                  formatDouble(100.0 * Report.TotalMissing[I] /
                                   std::max(1u, Report.TotalTests),
                               1) +
                      " %"});
  Table.addRow({"both references", formatGrouped(Report.TotalTests),
                formatGrouped(Report.MissingInAllReferences),
                formatDouble(100.0 * Report.MissingInAllReferences /
                                 std::max(1u, Report.TotalTests),
                             1) +
                    " %"});
  std::printf("\n%s", Table.render().c_str());

  unsigned Mismatches = 0;
  for (const MissingPatternRow &Row : Report.Rows)
    Mismatches += Row.BehaviourMismatch ? 1 : 0;
  std::printf("\ndifferential validation: %u behaviour mismatches across "
              "all compilers and tests\n",
              Mismatches);

  // The paper's showcase idioms (Section 7.4 bullet list).
  std::printf("\nshowcase rows (paper Section 7.4 examples):\n");
  unsigned Shown = 0;
  for (const MissingPatternRow &Row : Report.Rows) {
    bool Showcase =
        (Row.GoalName == "blsr" &&
         Row.PatternExpression.find("Or(") != std::string::npos) ||
        (Row.GoalName == "blsr" &&
         Row.PatternExpression.find("And(") != std::string::npos) ||
        Row.GoalName == "blsmsk" ||
        Row.GoalName.find("lea_bis") == 0 ||
        Row.GoalName == "test_js";
    if (!Showcase || Shown >= 12)
      continue;
    ++Shown;
    std::printf("  %-12s %-55s proto=%u gnu=%u clang=%u%s\n",
                Row.GoalName.c_str(), Row.PatternExpression.c_str(),
                Row.InstructionCounts[0], Row.InstructionCounts[1],
                Row.InstructionCounts[2],
                Row.Missing[1] && Row.Missing[2] ? "  <- missed by both"
                                                 : "");
  }

  // Sample C test program, as the artifact emits.
  for (const Rule &R : Database.rules()) {
    if (R.GoalName != "blsr")
      continue;
    std::printf("\nsample generated C test program (Section 5.7):\n%s",
                emitCTestProgram(R, Width, "test_blsr").c_str());
    break;
  }

  writeHtmlReport(Report, "missing-patterns.html");
  std::printf("\nfull HTML report written to missing-patterns.html "
              "(the artifact's test-result.html analogue)\n");
  return 0;
}
