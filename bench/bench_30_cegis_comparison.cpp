//===- bench_30_cegis_comparison.cpp - Paper Section 7.2 in-text ---------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// Reproduces the Section 7.2 in-text experiment: "We then tried to
// synthesize an x86 addition instruction with a memory operand. This
// instruction uses 3 IR operations (Load, Add, Store) and takes 5
// seconds to synthesize with our iterative approach. Running the
// original CEGIS algorithm on the same machine, the synthesis for this
// instruction did not finish within 64 hours."
//
// (The paper's 3-operation instruction is add with a *destination*
// memory operand: load, add, store.) The classical baseline gets the
// oversupplied template multiset — every IR operation |Copies| times —
// and a wall-clock budget instead of 64 hours.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ir/Printer.h"
#include "support/Error.h"
#include "synth/Synthesizer.h"

#include <cstdio>
#include <cstdlib>

using namespace selgen;
using namespace selgen::bench;

int main() {
  printBenchHeader(
      "Iterative vs classical CEGIS on add with a memory operand",
      "Buchwald et al., CGO'18, Section 7.2 (paper: 5 s iterative vs "
      ">64 h classical at 32 bit)");

  double ClassicBudget = 120.0;
  if (const char *Budget = std::getenv("SELGEN_BENCH_CLASSIC_BUDGET"))
    ClassicBudget = std::atof(Budget);

  SmtContext Smt;
  GoalLibrary Goals = GoalLibrary::build(Width, {"Binary"});
  const GoalInstruction *Goal = Goals.find("add_mr_b");
  if (!Goal)
    reportFatalError("add_mr_b goal missing");

  // Iterative CEGIS (Section 5.4).
  SynthesisOptions Options;
  Options.Width = Width;
  Options.MaxPatternSize = Goal->MaxPatternSize;
  Options.QueryTimeoutMs = 60000;
  Synthesizer Iterative(Smt, Options);
  GoalSynthesisResult IterativeResult = Iterative.synthesize(*Goal->Spec);

  std::printf("iterative CEGIS: %zu patterns, minimal size %u, %s "
              "(%lu multisets considered, %lu skipped, %lu run)\n",
              IterativeResult.Patterns.size(), IterativeResult.MinimalSize,
              formatDuration(IterativeResult.Seconds).c_str(),
              (unsigned long)IterativeResult.MultisetsConsidered,
              (unsigned long)IterativeResult.MultisetsSkipped,
              (unsigned long)IterativeResult.MultisetsRun);
  for (size_t I = 0; I < IterativeResult.Patterns.size() && I < 4; ++I)
    std::printf("  pattern: %s\n",
                printGraphExpression(IterativeResult.Patterns[I]).c_str());

  // Classical CEGIS with an oversupplied multiset: every operation
  // twice, as one must "add multiple instances of each operation"
  // when the required multiplicity is unknown (Section 1).
  SynthesisOptions ClassicOptions = Options;
  ClassicOptions.TimeBudgetSeconds = ClassicBudget;
  ClassicOptions.QueryTimeoutMs =
      static_cast<unsigned>(ClassicBudget * 1000);
  Synthesizer Classic(Smt, ClassicOptions);

  Timer Clock;
  GoalSynthesisResult ClassicResult =
      Classic.synthesizeClassic(*Goal->Spec, /*Copies=*/2);
  double ClassicSeconds = Clock.elapsedSeconds();

  if (ClassicResult.Patterns.empty())
    std::printf("classical CEGIS (2 copies of each of the %zu operations = "
                "%zu templates): NO pattern within the %s budget\n",
                Options.Alphabet.size(), 2 * Options.Alphabet.size(),
                formatDuration(ClassicBudget).c_str());
  else
    std::printf("classical CEGIS: first pattern (%u live operations) "
                "after %s\n",
                ClassicResult.Patterns[0].numOperations(),
                formatDuration(ClassicSeconds).c_str());

  double Speedup = ClassicSeconds / std::max(IterativeResult.Seconds, 1e-3);
  std::printf("\niterative %s vs classical %s%s -> iterative is >= %.0fx "
              "faster\n(the paper reports 5 s vs more than 64 hours, a "
              ">46 000x gap)\n",
              formatDuration(IterativeResult.Seconds).c_str(),
              formatDuration(ClassicSeconds).c_str(),
              ClassicResult.Patterns.empty() ? " (budget, unsolved)" : "",
              Speedup);
  return 0;
}
