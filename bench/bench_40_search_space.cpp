//===- bench_40_search_space.cpp - Paper Section 5.4 estimates -----------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// Reproduces the Section 5.4 "Search Space Estimate" and "Refining the
// Iteration" numbers exactly (they are closed-form):
//   * classical CEGIS search space |I|! ~ 2^65 for |I| = 21;
//   * iterative CEGIS sum(( |I| over l )) * l! ~ 2^32 for lmax = 7;
//   * fixing O = {load, store} reduces 230 230 multisets to 10 626.
// Then measures the concrete effect of the skip criteria and the
// memory refinement on this implementation's own iteration counts.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Multicombination.h"
#include "synth/Synthesizer.h"

#include <cstdio>

using namespace selgen;
using namespace selgen::bench;

int main() {
  printBenchHeader("Search-space estimates and iteration counts",
                   "Buchwald et al., CGO'18, Section 5.4 (paper: 2^65 vs "
                   "2^32; 230 230 vs 10 626 iterations)");

  // Closed-form, paper parameters: |I| = 21, lmax = 7.
  std::printf("classical CEGIS search space, |I|=21: 2^%.1f  (paper: ~2^65)\n",
              classicalSearchSpaceLog2(21));
  std::printf("iterative CEGIS search space, lmax=7: 2^%.1f  (paper: ~2^32)\n",
              iterativeSearchSpaceLog2(21, 7));
  std::printf("multisets for |I|=21, l=6:          %s  (paper: 230 230)\n",
              formatGrouped(multisetCount(21, 6)).c_str());
  std::printf("with O={load,store} fixed (l-|O|=4): %s  (paper: 10 626)\n",
              formatGrouped(multisetCount(21, 4)).c_str());

  // This implementation's own alphabet.
  unsigned AlphabetSize = allTemplateOpcodes().size();
  std::printf("\nthis implementation: |I| = %u template operations\n",
              AlphabetSize);
  std::printf("classical search space:              2^%.1f\n",
              classicalSearchSpaceLog2(AlphabetSize));
  std::printf("iterative search space (lmax=7):     2^%.1f\n",
              iterativeSearchSpaceLog2(AlphabetSize, 7));

  // Measured pruning effect on representative goals: how many
  // multisets the driver would visit vs how many survive the skip
  // criteria (Section 5.4's two criteria + the goal-result variant).
  SmtContext Smt;
  GoalLibrary Goals = GoalLibrary::build(
      Width, {"Basic", "LoadStore", "Binary", "Flags", "Bmi"});

  TablePrinter Table({"Goal", "Multisets", "Skipped", "Run",
                      "Skip rate", "Memory prefix"});
  for (const char *Name :
       {"add_rr", "cmp_jl", "blsr", "mov_load_b", "add_mr_b", "sete"}) {
    const GoalInstruction *Goal = Goals.find(Name);
    if (!Goal)
      continue;
    SynthesisOptions Options;
    Options.Width = Width;
    Options.MaxPatternSize = Goal->MaxPatternSize;
    Options.QueryTimeoutMs = 30000;
    Options.TimeBudgetSeconds = 60;
    Synthesizer Synth(Smt, Options);

    std::string Prefix;
    for (Opcode Op : Synth.requiredMemoryOps(*Goal->Spec))
      Prefix += std::string(Prefix.empty() ? "" : "+") + opcodeName(Op);
    if (Prefix.empty())
      Prefix = "-";

    GoalSynthesisResult Result = Synth.synthesize(*Goal->Spec);
    double SkipRate = Result.MultisetsConsidered == 0
                          ? 0
                          : 100.0 * Result.MultisetsSkipped /
                                Result.MultisetsConsidered;
    Table.addRow({Name, formatGrouped(Result.MultisetsConsidered),
                  formatGrouped(Result.MultisetsSkipped),
                  formatGrouped(Result.MultisetsRun),
                  formatDouble(SkipRate, 1) + " %", Prefix});
  }
  std::printf("\nmeasured iteration pruning (this implementation, %u bit):\n%s",
              Width, Table.render().c_str());
  return 0;
}
