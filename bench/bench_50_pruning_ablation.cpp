//===- bench_50_pruning_ablation.cpp - Ablations of Section 5.4 refinements ----===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// Ablation benchmark for the design choices DESIGN.md calls out:
//   * the two skip criteria of Section 5.4,
//   * the memory-requirement refinement (fixed {load,store} prefix),
//   * the partial-pattern (paper) vs total-pattern synthesis policy.
// Each configuration synthesizes the same goal set; compare multisets
// run, patterns found, and wall time.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "synth/Synthesizer.h"

#include <cstdio>

using namespace selgen;
using namespace selgen::bench;

namespace {

struct Configuration {
  const char *Name;
  bool SkipCriteria;
  bool MemoryRefinement;
  bool TotalPatterns;
  bool Prescreen = true;
};

} // namespace

int main() {
  printBenchHeader(
      "Ablation: skip criteria, memory refinement, pattern policy",
      "Buchwald et al., CGO'18, Section 5.4 refinements (the paper "
      "reports the refinements make synthesis feasible; this measures "
      "each knob separately)");

  const Configuration Configurations[] = {
      {"all refinements (default)", true, true, false},
      {"no skip criteria", false, true, false},
      {"no memory refinement", true, false, false},
      {"no refinements", false, false, false},
      {"total-pattern policy", true, true, true},
      {"no concrete prescreen", true, true, false, /*Prescreen=*/false},
  };

  const char *GoalNames[] = {"inc_r", "mov_load_b", "add_rm_b",
                             "mov_store_b", "cmp_jl"};

  SmtContext Smt;
  GoalLibrary Goals = GoalLibrary::build(
      Width, {"Basic", "LoadStore", "Unary", "Binary"});

  TablePrinter Table({"Configuration", "Multisets run", "Skipped",
                      "Verify queries", "Prescreen kills", "Patterns",
                      "Time"});
  for (const Configuration &Config : Configurations) {
    uint64_t Run = 0, Skipped = 0, Queries = 0, Kills = 0;
    size_t Patterns = 0;
    double Seconds = 0;
    for (const char *Name : GoalNames) {
      const GoalInstruction *Goal = Goals.find(Name);
      if (!Goal)
        continue;
      SynthesisOptions Options;
      Options.Width = Width;
      Options.MaxPatternSize = Goal->MaxPatternSize;
      Options.UseSkipCriteria = Config.SkipCriteria;
      Options.UseMemoryRefinement = Config.MemoryRefinement;
      Options.RequireTotalPatterns = Config.TotalPatterns;
      Options.UsePrescreen = Config.Prescreen;
      Options.QueryTimeoutMs = 30000;
      Options.TimeBudgetSeconds = 30;
      Synthesizer Synth(Smt, Options);
      GoalSynthesisResult Result = Synth.synthesize(*Goal->Spec);
      Run += Result.MultisetsRun;
      Skipped += Result.MultisetsSkipped;
      Queries += Result.VerificationQueries;
      Kills += Result.PrescreenKills;
      Patterns += Result.Patterns.size();
      Seconds += Result.Seconds;
    }
    Table.addRow({Config.Name, formatGrouped(Run), formatGrouped(Skipped),
                  formatGrouped(Queries), formatGrouped(Kills),
                  formatGrouped(Patterns), formatDuration(Seconds)});
    std::printf("[bench] %-28s done (%s)\n", Config.Name,
                formatDuration(Seconds).c_str());
    std::fflush(stdout);
  }
  std::printf("\n%s", Table.render().c_str());
  std::printf("\n(goals: inc_r, mov_load_b, add_rm_b, mov_store_b, cmp_jl; "
              "30 s budget per goal —\nconfigurations without the "
              "refinements run more CEGIS instances for the same "
              "patterns)\n");
  return 0;
}
