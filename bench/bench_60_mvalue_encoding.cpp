//===- bench_60_mvalue_encoding.cpp - M-value vs array theory ------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// Ablation for the paper's central memory-modeling claim (Section 4.1):
// program verifiers model memory with the SMT theory of arrays, but
// "we found these approaches to be unsuitable for our needs: ... the
// SMT solver (Z3) consistently ran out of memory". This benchmark runs
// memory-equivalence queries of the kind the CEGIS verification step
// issues — store chains over *symbolic* pointers whose equality
// requires case-splitting on aliasing — under
//   (a) the paper's finite M-value bit-vector encoding, and
//   (b) a conventional array-theory encoding (extensional equality),
// at growing chain lengths, and compares solver behaviour.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "semantics/MemoryModel.h"
#include "support/Timer.h"

#include <cstdio>

using namespace selgen;
using namespace selgen::bench;

namespace {

constexpr unsigned QueryTimeoutMs = 30000;

/// Equivalence query: storing values to N pairwise-distinct symbolic
/// pointers commutes — forward order equals reverse order. The solver
/// must reason about every aliasing case to prove unsat.
/// Returns seconds; \p Verdict receives the solver result.
double mvalueCommuteQuery(SmtContext &Smt, unsigned NumPointers,
                          SmtResult &Verdict) {
  std::vector<z3::expr> Pointers;
  for (unsigned I = 0; I < NumPointers; ++I)
    Pointers.push_back(Smt.bvConst("p" + std::to_string(I), 8));
  MemoryModel Model(Smt, Pointers);

  z3::expr M = Smt.bvConst("m", Model.mvalueWidth());
  std::vector<z3::expr> Values;
  for (unsigned I = 0; I < NumPointers; ++I)
    Values.push_back(Smt.bvConst("x" + std::to_string(I), 8));

  z3::expr Forward = M, Backward = M;
  for (unsigned I = 0; I < NumPointers; ++I)
    Forward = Model.store(Forward, Pointers[I], Values[I]);
  for (unsigned I = NumPointers; I-- > 0;)
    Backward = Model.store(Backward, Pointers[I], Values[I]);

  Timer Clock;
  SmtSolver Solver(Smt);
  Solver.setTimeoutMilliseconds(QueryTimeoutMs);
  for (unsigned I = 0; I < NumPointers; ++I)
    for (unsigned J = I + 1; J < NumPointers; ++J)
      Solver.add(Pointers[I] != Pointers[J]);
  Solver.add(Forward != Backward);
  Verdict = Solver.check();
  return Clock.elapsedSeconds();
}

double arrayCommuteQuery(SmtContext &Smt, unsigned NumPointers,
                         SmtResult &Verdict) {
  z3::context &Ctx = Smt.ctx();
  z3::expr M0 = Ctx.constant(
      "amem", Ctx.array_sort(Ctx.bv_sort(8), Ctx.bv_sort(8)));
  std::vector<z3::expr> Pointers, Values;
  for (unsigned I = 0; I < NumPointers; ++I) {
    Pointers.push_back(Ctx.bv_const(("q" + std::to_string(I)).c_str(), 8));
    Values.push_back(Ctx.bv_const(("y" + std::to_string(I)).c_str(), 8));
  }
  z3::expr Forward = M0, Backward = M0;
  for (unsigned I = 0; I < NumPointers; ++I)
    Forward = z3::store(Forward, Pointers[I], Values[I]);
  for (unsigned I = NumPointers; I-- > 0;)
    Backward = z3::store(Backward, Pointers[I], Values[I]);

  Timer Clock;
  SmtSolver Solver(Smt, "QF_ABV");
  Solver.setTimeoutMilliseconds(QueryTimeoutMs);
  for (unsigned I = 0; I < NumPointers; ++I)
    for (unsigned J = I + 1; J < NumPointers; ++J)
      Solver.add(Pointers[I] != Pointers[J]);
  Solver.add(Forward != Backward);
  Verdict = Solver.check();
  return Clock.elapsedSeconds();
}

/// Counterexample query: without the distinctness assumption, the two
/// orders differ — find a witness (aliasing pointers).
double aliasWitnessQuery(SmtContext &Smt, unsigned NumPointers,
                         bool UseArrays, SmtResult &Verdict) {
  if (!UseArrays) {
    std::vector<z3::expr> Pointers;
    for (unsigned I = 0; I < NumPointers; ++I)
      Pointers.push_back(Smt.bvConst("pw" + std::to_string(I), 8));
    MemoryModel Model(Smt, Pointers);
    z3::expr M = Smt.bvConst("mw", Model.mvalueWidth());
    std::vector<z3::expr> Values;
    for (unsigned I = 0; I < NumPointers; ++I)
      Values.push_back(Smt.bvConst("xw" + std::to_string(I), 8));
    z3::expr Forward = M, Backward = M;
    for (unsigned I = 0; I < NumPointers; ++I)
      Forward = Model.store(Forward, Pointers[I], Values[I]);
    for (unsigned I = NumPointers; I-- > 0;)
      Backward = Model.store(Backward, Pointers[I], Values[I]);
    Timer Clock;
    SmtSolver Solver(Smt);
    Solver.setTimeoutMilliseconds(QueryTimeoutMs);
    Solver.add(Forward != Backward);
    Verdict = Solver.check();
    return Clock.elapsedSeconds();
  }
  z3::context &Ctx = Smt.ctx();
  z3::expr M0 = Ctx.constant(
      "amemw", Ctx.array_sort(Ctx.bv_sort(8), Ctx.bv_sort(8)));
  std::vector<z3::expr> Pointers, Values;
  for (unsigned I = 0; I < NumPointers; ++I) {
    Pointers.push_back(
        Ctx.bv_const(("qw" + std::to_string(I)).c_str(), 8));
    Values.push_back(Ctx.bv_const(("yw" + std::to_string(I)).c_str(), 8));
  }
  z3::expr Forward = M0, Backward = M0;
  for (unsigned I = 0; I < NumPointers; ++I)
    Forward = z3::store(Forward, Pointers[I], Values[I]);
  for (unsigned I = NumPointers; I-- > 0;)
    Backward = z3::store(Backward, Pointers[I], Values[I]);
  Timer Clock;
  SmtSolver Solver(Smt, "QF_ABV");
  Solver.setTimeoutMilliseconds(QueryTimeoutMs);
  Solver.add(Forward != Backward);
  Verdict = Solver.check();
  return Clock.elapsedSeconds();
}

const char *verdictName(SmtResult Verdict) {
  switch (Verdict) {
  case SmtResult::Sat:
    return "sat";
  case SmtResult::Unsat:
    return "unsat";
  case SmtResult::Unknown:
    return "TIMEOUT";
  }
  return "?";
}

} // namespace

int main() {
  printBenchHeader(
      "M-value bit-vector encoding vs SMT array theory",
      "Buchwald et al., CGO'18, Section 4.1 (paper: with arrays, Z3 "
      "\"consistently ran out of memory\" during CEGIS)");

  SmtContext Smt;
  TablePrinter Table({"Query", "Chain", "M-value", "verdict",
                      "Array theory", "verdict"});

  for (unsigned NumPointers : {2u, 4u, 6u, 8u}) {
    SmtResult VerdictA = SmtResult::Unknown, VerdictB = SmtResult::Unknown;
    double MvSeconds = mvalueCommuteQuery(Smt, NumPointers, VerdictA);
    double ArraySeconds = arrayCommuteQuery(Smt, NumPointers, VerdictB);
    Table.addRow({"store-commute (unsat)", std::to_string(NumPointers),
                  formatDouble(MvSeconds * 1e3, 1) + " ms",
                  verdictName(VerdictA),
                  formatDouble(ArraySeconds * 1e3, 1) + " ms",
                  verdictName(VerdictB)});
  }
  for (unsigned NumPointers : {2u, 4u, 6u}) {
    SmtResult VerdictA = SmtResult::Unknown, VerdictB = SmtResult::Unknown;
    double MvSeconds =
        aliasWitnessQuery(Smt, NumPointers, /*UseArrays=*/false, VerdictA);
    double ArraySeconds =
        aliasWitnessQuery(Smt, NumPointers, /*UseArrays=*/true, VerdictB);
    Table.addRow({"alias witness (sat)", std::to_string(NumPointers),
                  formatDouble(MvSeconds * 1e3, 1) + " ms",
                  verdictName(VerdictA),
                  formatDouble(ArraySeconds * 1e3, 1) + " ms",
                  verdictName(VerdictB)});
  }

  std::printf("\n%s", Table.render().c_str());
  std::printf(
      "\nobservations (see EXPERIMENTS.md): on isolated queries at this toy "
      "scale Z3's array\nengine is competitive — the M-value encoding's "
      "advantage inside CEGIS is architectural:\n(a) everything stays in one "
      "theory, QF_BV, which the paper measured as 2x faster\noverall "
      "(Section 2.3); (b) an M-value counterexample is a plain bit-vector "
      "that can be\nsubstituted into the next synthesis query as a literal "
      "test case, whereas an array\ncounterexample has no finite literal "
      "form; and (c) the M-value width is fixed by the\ngoal's valid "
      "pointers, so synthesis queries over dozens of test cases stay "
      "bounded —\nwith arrays the paper reports Z3 running out of memory "
      "exactly there.\n");
  return 0;
}
