//===- bench_70_micro.cpp - Substrate micro-benchmarks -------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// google-benchmark micro-benchmarks for the substrates the experiments
// stand on: BitValue arithmetic, the IR interpreter, the x86 emulator,
// the normalizer, and the pattern matcher (whose linear rule scan is
// the paper's Section 7.3 compile-time story).
//
//===----------------------------------------------------------------------===//

#include "eval/Workloads.h"
#include "ir/Normalizer.h"
#include "isel/GeneratedSelector.h"
#include "isel/HandwrittenSelector.h"
#include "refsel/ReferenceSelectors.h"
#include "support/Rng.h"
#include "x86/Emulator.h"

#include <benchmark/benchmark.h>

using namespace selgen;

namespace {

constexpr unsigned W = 8;

void BM_BitValueArithmetic(benchmark::State &State) {
  unsigned Width = static_cast<unsigned>(State.range(0));
  Rng Random(1);
  BitValue A = Random.nextBitValue(Width);
  BitValue B = Random.nextBitValue(Width);
  for (auto _ : State) {
    benchmark::DoNotOptimize(A.add(B));
    benchmark::DoNotOptimize(A.mul(B));
    benchmark::DoNotOptimize(A.bitXor(B));
    benchmark::DoNotOptimize(A.lshr(3));
  }
}
BENCHMARK(BM_BitValueArithmetic)->Arg(8)->Arg(32)->Arg(128);

void BM_InterpreterWorkload(benchmark::State &State) {
  Function F = buildWorkload(cint2000Profiles()[0], W);
  MemoryState Memory;
  for (int B = 0; B < 256; ++B)
    Memory.storeByte(B, static_cast<uint8_t>(B * 31));
  std::vector<BitValue> Args = {BitValue(W, 3), BitValue(W, 99),
                                BitValue(W, 7)};
  uint64_t Operations = 0;
  for (auto _ : State) {
    FunctionResult Result = runFunction(F, Args, Memory, 1u << 22);
    Operations += Result.ExecutedOperations;
    benchmark::DoNotOptimize(Result);
  }
  State.counters["ir_ops/s"] = benchmark::Counter(
      static_cast<double>(Operations), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterWorkload);

void BM_EmulatorWorkload(benchmark::State &State) {
  Function F = buildWorkload(cint2000Profiles()[0], W);
  HandwrittenSelector Selector;
  SelectionResult Selected = Selector.select(F);
  MemoryState Memory;
  for (int B = 0; B < 256; ++B)
    Memory.storeByte(B, static_cast<uint8_t>(B * 31));
  std::map<MReg, BitValue> Regs;
  const auto &ArgRegs = Selected.MF->entry()->ArgRegs;
  BitValue Args[3] = {BitValue(W, 3), BitValue(W, 99), BitValue(W, 7)};
  for (size_t I = 0; I < ArgRegs.size(); ++I)
    Regs[ArgRegs[I]] = Args[I];
  uint64_t Instructions = 0;
  for (auto _ : State) {
    MachineRunResult Result =
        runMachineFunction(*Selected.MF, Regs, Memory, 1u << 24);
    Instructions += Result.InstructionCount;
    benchmark::DoNotOptimize(Result);
  }
  State.counters["minstrs/s"] = benchmark::Counter(
      static_cast<double>(Instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EmulatorWorkload);

void BM_NormalizeWorkloadBlock(benchmark::State &State) {
  Function F = buildWorkload(cint2000Profiles()[4], W);
  Graph &Body = F.blocks()[1]->body();
  Body.setResults(F.blocks()[1]->terminatorOperands());
  for (auto _ : State)
    benchmark::DoNotOptimize(normalizeGraph(Body));
}
BENCHMARK(BM_NormalizeWorkloadBlock);

void BM_FingerprintWorkloadBlock(benchmark::State &State) {
  Function F = buildWorkload(cint2000Profiles()[4], W);
  Graph &Body = F.blocks()[1]->body();
  Body.setResults(F.blocks()[1]->terminatorOperands());
  for (auto _ : State)
    benchmark::DoNotOptimize(Body.fingerprint());
}
BENCHMARK(BM_FingerprintWorkloadBlock);

/// Selection time as a function of rule-library size: the linear rule
/// scan of the prototype (Section 7.3). The library is the gnu-like
/// rule set concatenated N times (duplicates are skipped by the
/// database, so rules get unique goals by cloning under aliases is not
/// needed — instead the scan cost is scaled by re-running selection).
void BM_SelectorScan(benchmark::State &State) {
  static GoalLibrary Goals =
      GoalLibrary::build(W, GoalLibrary::allGroups());
  static PatternDatabase Rules = buildGnuLikeRules(W);
  GeneratedSelector Selector(Rules, Goals);
  Function F = buildWorkload(cint2000Profiles()[2], W);
  for (auto _ : State) {
    SelectionResult Result = Selector.select(F);
    benchmark::DoNotOptimize(Result);
  }
}
BENCHMARK(BM_SelectorScan);

void BM_HandwrittenSelector(benchmark::State &State) {
  HandwrittenSelector Selector;
  Function F = buildWorkload(cint2000Profiles()[2], W);
  for (auto _ : State) {
    SelectionResult Result = Selector.select(F);
    benchmark::DoNotOptimize(Result);
  }
}
BENCHMARK(BM_HandwrittenSelector);

} // namespace

BENCHMARK_MAIN();
