//===- bench_80_matcher_throughput.cpp - Matcher-automaton throughput ----------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// Measures the matcher-automaton compiler (src/matchergen) against the
// paper prototype's linear rule scan. Section 7.3 attributes the
// 1217x-1804x selection-phase slowdown of the full library entirely to
// the prototype trying ~60 000 rules one by one; the discrimination
// tree removes that deficiency without changing the produced machine
// code. This benchmark quantifies the claim:
//
//   1. per-workload selection time, handwritten vs linear vs automaton,
//      on the synthesized full library (machine code cross-checked for
//      byte-identity between the two rule-driven selectors), and
//   2. scaling with library size (distinct-constant rule variants as
//      in bench_10), reporting wall time, full-match attempts
//      (selector.rules_tried), and matcher work per selector — the
//      automaton's candidate sets stay near-constant while the linear
//      scan grows with the library.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "analysis/LibraryMinimizer.h"
#include "eval/Workloads.h"
#include "isel/AutomatonSelector.h"
#include "isel/GeneratedSelector.h"
#include "isel/HandwrittenSelector.h"
#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <vector>

using namespace selgen;
using namespace selgen::bench;

namespace {

/// Machine code of \p MF without the header line (the function name
/// embeds the selector name, which legitimately differs).
std::string asmBody(const MachineFunction &MF) {
  std::string Text = printMachineFunction(MF);
  size_t Eol = Text.find('\n');
  return Eol == std::string::npos ? std::string() : Text.substr(Eol + 1);
}

struct Measurement {
  double Seconds = 0;
  uint64_t RulesTried = 0;
  uint64_t NodesVisited = 0;
};

/// Runs \p Selector over \p Functions \p Reps times, averaging wall
/// time and the per-sweep matcher counters.
Measurement measure(InstructionSelector &Selector,
                    const std::vector<Function> &Functions, int Reps) {
  Statistics::get().clear();
  Measurement M;
  for (int Rep = 0; Rep < Reps; ++Rep)
    for (const Function &F : Functions)
      M.Seconds += Selector.select(F).SelectionSeconds;
  M.Seconds /= Reps;
  M.RulesTried =
      Statistics::get().value("selector.rules_tried") / Reps;
  M.NodesVisited =
      Statistics::get().value("matcher.nodes_visited") / Reps;
  return M;
}

} // namespace

int main() {
  printBenchHeader(
      "Matcher-automaton throughput (discrimination tree vs linear scan)",
      "Buchwald et al., CGO'18, Section 7.3 (the prototype's rule scan "
      "is \"only a deficiency of the prototype instruction selector\")");

  SmtContext Smt;
  BenchGoals FullGoals = makeBenchGoals("full");
  PatternDatabase FullDb =
      loadOrSynthesizeLibrary(Smt, "full", FullGoals.Goals);
  FullDb.filterNonNormalized();
  FullDb.sortSpecificFirst();

  std::vector<Function> Workloads;
  for (const WorkloadProfile &Profile : cint2000Profiles())
    Workloads.push_back(buildWorkload(Profile, Width));

  // --- Per-workload comparison on the synthesized library -------------
  // SELGEN_COST_MODEL swaps the automaton arm for the cost-minimal
  // tiling selector under that model; code identity with the linear
  // scan is then only enforced for the unit model (latency/size
  // legitimately re-order candidate tiles).
  HandwrittenSelector Handwritten;
  GeneratedSelector Linear(FullDb, FullGoals.Goals);
  AutomatonSelector Automaton(FullDb, FullGoals.Goals);
  std::unique_ptr<InstructionSelector> RuleDriven =
      makeRuleDrivenSelector(FullDb, FullGoals.Goals);
  std::optional<CostKind> Model = benchCostModel();
  bool ExpectIdentical = !Model || *Model == CostKind::Unit;
  std::string RuleDrivenLabel =
      Model ? "Tiling/" + std::string(costKindName(*Model)) : "Automaton";
  std::printf("library: %zu rules; automaton: %zu states, %llu transitions; "
              "rule-driven arm: %s\n",
              Linear.numRules(), Automaton.automaton().numStates(),
              static_cast<unsigned long long>(
                  Automaton.automaton().numTransitions()),
              RuleDrivenLabel.c_str());

  bool Identical = true;
  TablePrinter Table({"Benchmark", "Handwritten", "Linear", RuleDrivenLabel,
                      "Lin/Auto", "Code"});
  for (const Function &F : Workloads) {
    const int Reps = 10;
    double HandSec = 0, LinSec = 0, AutoSec = 0;
    std::string LinAsm, AutoAsm;
    for (int Rep = 0; Rep < Reps; ++Rep) {
      HandSec += Handwritten.select(F).SelectionSeconds;
      SelectionResult Lin = Linear.select(F);
      SelectionResult Auto = RuleDriven->select(F);
      LinSec += Lin.SelectionSeconds;
      AutoSec += Auto.SelectionSeconds;
      LinAsm = asmBody(*Lin.MF);
      AutoAsm = asmBody(*Auto.MF);
    }
    bool Same = LinAsm == AutoAsm;
    Identical = Identical && Same;
    Table.addRow({F.name(), formatDouble(HandSec / Reps * 1e6, 1) + " us",
                  formatDouble(LinSec / Reps * 1e6, 1) + " us",
                  formatDouble(AutoSec / Reps * 1e6, 1) + " us",
                  formatDouble(LinSec / AutoSec, 2) + "x",
                  Same ? "identical" : "DIFFERS"});
  }
  std::printf("\n%s", Table.render().c_str());
  if (ExpectIdentical) {
    std::printf("\n(Code compares the machine code emitted by the linear and "
                "rule-driven selectors\nbyte for byte — every row must read "
                "identical)\n");
    if (!Identical) {
      std::printf("FAILURE: rule-driven selector diverged from linear scan\n");
      return 1;
    }
  } else {
    std::printf("\n(cost model %s re-orders candidate tiles, so DIFFERS "
                "rows are expected here)\n",
                costKindName(*Model));
  }

  // --- Scaling with library size ---------------------------------------
  // As in bench_10: inflate the library with distinct-constant and
  // operand-swapped variants of its rules (structurally valid rules
  // that essentially never match) to reach the paper's library scale.
  // The linear scan attempts every same-root rule per operation; the
  // automaton's candidate sets are bounded by the few rules sharing
  // the subject's exact shape, so its rules_tried stays near the base
  // library's as the library grows.
  printBenchHeader(
      "Selection time and match attempts vs rule-library size",
      "Buchwald et al., CGO'18, Section 7.3 (the 60 000-rule library "
      "behind the 1217x slowdown)");

  auto inflate = [&](size_t TargetSize) {
    PatternDatabase Inflated;
    for (const Rule &R : FullDb.rules())
      Inflated.add(R.GoalName, R.Pattern.clone());
    Rng Random(0xBEEF);
    size_t Stuck = 0;
    while (Inflated.size() < TargetSize && Stuck < 10 * TargetSize) {
      for (const Rule &R : FullDb.rules()) {
        if (Inflated.size() >= TargetSize)
          break;
        Graph Clone = R.Pattern.clone();
        bool Mutated = false;
        for (Node *N : Clone.liveNodes()) {
          if (N->opcode() == Opcode::Const) {
            N->setConstValue(
                Random.nextBitValue(N->constValue().width()));
            Mutated = true;
          } else if (N->numOperands() == 2 && Random.nextBelow(2) == 1) {
            NodeRef A = N->operand(0), B = N->operand(1);
            if (A.Def->resultSort(A.Index) == B.Def->resultSort(B.Index)) {
              N->setOperand(0, B);
              N->setOperand(1, A);
              Mutated = true;
            }
          }
        }
        if (!Mutated)
          continue;
        if (!Inflated.add(R.GoalName, std::move(Clone)))
          ++Stuck;
      }
    }
    return Inflated;
  };

  // Each library size gets a before/after pair of rows: the inflated
  // library as built, and the same library after selgen-minimize's
  // first-match pass (analysis/LibraryMinimizer) deleted its provably
  // dead rules. Deletions are certificate-backed, so the automaton
  // selector must emit byte-identical machine code on both arms — the
  // benchmark enforces that differential alongside the timings.
  TablePrinter ScaleTable({"Library", "Rules", "States", "Linear",
                           "Automaton", "Speedup", "Tried (lin)",
                           "Tried (auto)"});
  double MaxSpeedup = 0;
  bool MinimizedIdentical = true;
  bool StatesNeverGrew = true;
  bool StatesShrankSomewhere = false;

  struct ArmResult {
    size_t States = 0;
    std::vector<std::string> Asm;
  };
  auto runArm = [&](const std::string &Label, const PatternDatabase &Db,
                    int Reps) {
    ArmResult Arm;
    GeneratedSelector ScaledLinear(Db, FullGoals.Goals);
    // The automaton selector stays for the state count and the
    // byte-identity differential; under SELGEN_COST_MODEL the timed
    // arm is the tiling selector.
    AutomatonSelector ScaledAutomaton(Db, FullGoals.Goals);
    std::unique_ptr<InstructionSelector> ScaledRuleDriven =
        makeRuleDrivenSelector(Db, FullGoals.Goals);
    Measurement Lin = measure(ScaledLinear, Workloads, Reps);
    Measurement Auto = measure(*ScaledRuleDriven, Workloads, Reps);
    double Speedup = Lin.Seconds / Auto.Seconds;
    MaxSpeedup = std::max(MaxSpeedup, Speedup);
    Arm.States = ScaledAutomaton.automaton().numStates();
    for (const Function &F : Workloads)
      Arm.Asm.push_back(asmBody(*ScaledAutomaton.select(F).MF));
    ScaleTable.addRow({Label, formatGrouped(Db.size()),
                       formatGrouped(Arm.States),
                       formatDouble(Lin.Seconds * 1e3, 2) + " ms",
                       formatDouble(Auto.Seconds * 1e3, 2) + " ms",
                       formatDouble(Speedup, 1) + "x",
                       formatGrouped(Lin.RulesTried),
                       formatGrouped(Auto.RulesTried)});
    return Arm;
  };

  for (size_t Target : {FullDb.size(), size_t(1000), size_t(4000),
                        size_t(16000)}) {
    PatternDatabase Inflated = inflate(Target);
    MinimizeResult Min = minimizeLibrary(Inflated, FullGoals.Goals);
    int Reps = Target > 4000 ? 3 : 10;
    ArmResult Before = runArm("before", Inflated, Reps);
    ArmResult After = runArm("minimized", Min.Minimized, Reps);
    std::printf("  %s rules: minimize deleted %zu "
                "(%llu SMT queries, %llu inconclusive)\n",
                formatGrouped(Inflated.size()).c_str(),
                Min.Certificates.size(),
                static_cast<unsigned long long>(Min.SmtQueries),
                static_cast<unsigned long long>(Min.SmtInconclusive));
    MinimizedIdentical = MinimizedIdentical && Before.Asm == After.Asm;
    StatesNeverGrew = StatesNeverGrew && After.States <= Before.States;
    StatesShrankSomewhere =
        StatesShrankSomewhere || After.States < Before.States;
  }
  std::printf("\n%s", ScaleTable.render().c_str());
  std::printf("\n(times are per full sweep over the %zu workloads; Tried "
              "counts full structural\nmatch attempts per sweep — the "
              "automaton's stays flat while the linear scan's\ngrows with "
              "the library; each minimized row must match its before row "
              "byte for byte)\n",
              Workloads.size());
  std::printf("max automaton speedup over linear scan: %.1fx\n", MaxSpeedup);
  if (!MinimizedIdentical) {
    std::printf("FAILURE: minimized library diverged from its source\n");
    return 1;
  }
  if (!StatesNeverGrew) {
    std::printf("FAILURE: minimization grew the automaton\n");
    return 1;
  }
  std::printf("minimized automatons: states %s\n",
              StatesShrankSomewhere ? "strictly fewer on the inflated arms"
                                    : "unchanged");
  return 0;
}
