//===- bench_85_server_latency.cpp - Compile-server latency ---------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// Measures the compile-server mode that removes the remaining fixed
// costs of rule-driven selection once the matcher automaton exists:
//
//   1. cold start: loading a ~12k-rule automaton from the versioned
//      text format (parse + heap reconstruction) vs mapping the binary
//      image (mmap + header/CRC validation + one bounds-check pass) —
//      the binary path targets a >= 100x startup speedup, and
//   2. resident service: >= 1M operation selections streamed through
//      one mmap'ed automaton shared read-only by a multi-threaded
//      SelectionService, reporting functions/sec, selections/sec, and
//      the p50/p95/p99 per-function selection latency, plus the
//      thread-scaling factor over a single-threaded service.
//
// The byte-identity of the served machine code against single-shot
// `selgen-compile --selector auto` is asserted by tests/test_serve.cpp;
// this harness only quantifies the latency claims.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "analysis/LibraryMinimizer.h"
#include "eval/Workloads.h"
#include "isel/AutomatonSelector.h"
#include "matchergen/BinaryAutomaton.h"
#include "serve/SelectionServer.h"
#include "serve/SelectionService.h"
#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace selgen;
using namespace selgen::bench;

namespace {

/// Inflates \p Base with distinct-constant and operand-swapped rule
/// variants (as in bench_10/bench_80) to reach the paper's library
/// scale without hours of synthesis.
PatternDatabase inflate(const PatternDatabase &Base, size_t TargetSize) {
  PatternDatabase Inflated;
  for (const Rule &R : Base.rules())
    Inflated.add(R.GoalName, R.Pattern.clone());
  Rng Random(0xBEEF);
  size_t Stuck = 0;
  while (Inflated.size() < TargetSize && Stuck < 10 * TargetSize) {
    for (const Rule &R : Base.rules()) {
      if (Inflated.size() >= TargetSize)
        break;
      Graph Clone = R.Pattern.clone();
      bool Mutated = false;
      for (Node *N : Clone.liveNodes()) {
        if (N->opcode() == Opcode::Const) {
          N->setConstValue(Random.nextBitValue(N->constValue().width()));
          Mutated = true;
        } else if (N->numOperands() == 2 && Random.nextBelow(2) == 1) {
          NodeRef A = N->operand(0), B = N->operand(1);
          if (A.Def->resultSort(A.Index) == B.Def->resultSort(B.Index)) {
            N->setOperand(0, B);
            N->setOperand(1, A);
            Mutated = true;
          }
        }
      }
      if (!Mutated)
        continue;
      if (!Inflated.add(R.GoalName, std::move(Clone)))
        ++Stuck;
    }
  }
  return Inflated;
}

uint64_t envOr(const char *Name, uint64_t Default) {
  const char *Value = std::getenv(Name);
  if (!Value || !*Value)
    return Default;
  return std::strtoull(Value, nullptr, 10);
}

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Index = static_cast<size_t>(P * (Sorted.size() - 1) + 0.5);
  return Sorted[std::min(Index, Sorted.size() - 1)];
}

struct ServiceRun {
  uint64_t Batches = 0;
  uint64_t Functions = 0;
  uint64_t Selections = 0; ///< Covered operation selections.
  double WallSeconds = 0;
  std::vector<double> LatenciesUs; ///< Per-function selection time.
};

/// Streams batches of every cint2000 workload through \p Service until
/// \p TargetFunctions function selections have been served.
ServiceRun drive(SelectionService &Service, uint64_t TargetFunctions,
                 unsigned Repeat) {
  BatchRequest Request;
  Request.Id = 1;
  Request.Width = Service.width();
  for (unsigned Copy = 0; Copy < Repeat; ++Copy)
    for (const WorkloadProfile &Profile : cint2000Profiles())
      Request.Workloads.push_back(Profile.Name);

  ServiceRun Run;
  Timer Wall;
  while (Run.Functions < TargetFunctions) {
    std::string Error;
    std::optional<BatchReply> Reply = Service.process(Request, &Error);
    if (!Reply) {
      std::fprintf(stderr, "FAILURE: batch rejected: %s\n", Error.c_str());
      std::exit(1);
    }
    ++Request.Id;
    ++Run.Batches;
    for (const BatchReply::Result &R : Reply->Results) {
      ++Run.Functions;
      Run.Selections += R.CoveredOperations;
      Run.LatenciesUs.push_back(R.SelectUs);
    }
  }
  Run.WallSeconds = Wall.elapsedSeconds();
  return Run;
}

} // namespace

int main() {
  printBenchHeader(
      "Compile-server mode: mmap cold start and resident selection latency",
      "Buchwald et al., CGO'18, Section 7.3 (selection-phase cost of the "
      "~60 000-rule library)");

  // --- Library and automaton artifacts ---------------------------------
  SmtContext Smt;
  BenchGoals FullGoals = makeBenchGoals("full");
  PatternDatabase FullDb =
      loadOrSynthesizeLibrary(Smt, "full", FullGoals.Goals);
  FullDb.filterNonNormalized();
  FullDb.sortSpecificFirst();

  const size_t TargetRules = envOr("SELGEN_BENCH_SERVER_RULES", 12000);
  PatternDatabase Inflated = inflate(FullDb, TargetRules);
  PreparedLibrary Library(Inflated, FullGoals.Goals);

  Timer CompileTimer;
  MatcherAutomaton Automaton = buildMatcherAutomaton(Library);
  double CompileSec = CompileTimer.elapsedSeconds();

  const std::string TextPath = "matcher-automaton-bench85.mat";
  const std::string BinPath = "matcher-automaton-bench85.matb";
  if (!Automaton.writeFile(TextPath) || !Automaton.writeBinaryFile(BinPath)) {
    std::fprintf(stderr, "FAILURE: cannot write automaton files\n");
    return 1;
  }

  std::printf("library: %s rules; automaton: %s states, %s transitions "
              "(compiled in %s)\n",
              formatGrouped(Inflated.size()).c_str(),
              formatGrouped(Automaton.numStates()).c_str(),
              formatGrouped(Automaton.numTransitions()).c_str(),
              formatDuration(CompileSec).c_str());

  // --- Minimized arm ----------------------------------------------------
  // The same library after selgen-minimize's first-match pass
  // (analysis/LibraryMinimizer): inflation mutates shift-amount
  // constants out of range and clones shadows of existing rules, so
  // the paper-scale image carries certificate-backed dead weight the
  // cold-start comparison below quantifies.
  MinimizeResult Min = minimizeLibrary(Inflated, FullGoals.Goals);
  PreparedLibrary MinLibrary(Min.Minimized, FullGoals.Goals);
  MatcherAutomaton MinAutomaton = buildMatcherAutomaton(MinLibrary);
  const std::string MinTextPath = "matcher-automaton-bench85.min.mat";
  const std::string MinBinPath = "matcher-automaton-bench85.min.matb";
  if (!MinAutomaton.writeFile(MinTextPath) ||
      !MinAutomaton.writeBinaryFile(MinBinPath)) {
    std::fprintf(stderr, "FAILURE: cannot write minimized automaton files\n");
    return 1;
  }
  std::printf("minimized: %s rules (%zu deleted with certificates), "
              "%s states, %s transitions\n",
              formatGrouped(Min.Minimized.size()).c_str(),
              Min.Certificates.size(),
              formatGrouped(MinAutomaton.numStates()).c_str(),
              formatGrouped(MinAutomaton.numTransitions()).c_str());

  // --- Cold start: text parse vs mmap, before/after minimization -------
  // Text loading re-parses and rebuilds the heap automaton; the binary
  // path is mmap + validation with zero deserialization, so its cost is
  // one read-only pass over the tables. Both are measured end to end
  // (open to usable automaton).
  const int TextReps = 5;
  const int MapReps = 200;
  auto measureText = [&](const std::string &Path, size_t WantStates) {
    Timer TextTimer;
    for (int Rep = 0; Rep < TextReps; ++Rep) {
      std::optional<MatcherAutomaton> Loaded =
          MatcherAutomaton::loadFile(Path);
      if (!Loaded || Loaded->numStates() != WantStates) {
        std::fprintf(stderr, "FAILURE: text reload mismatch\n");
        std::exit(1);
      }
    }
    return TextTimer.elapsedSeconds() / TextReps;
  };
  auto measureMap = [&](const std::string &Path, size_t WantStates,
                        size_t &Bytes) {
    Timer MapTimer;
    for (int Rep = 0; Rep < MapReps; ++Rep) {
      std::string MapError;
      std::unique_ptr<MappedAutomaton> MapTry =
          MatcherAutomaton::mapBinary(Path, &MapError);
      if (!MapTry || MapTry->view().numStates() != WantStates) {
        std::fprintf(stderr, "FAILURE: mmap reload failed: %s\n",
                     MapError.c_str());
        std::exit(1);
      }
      Bytes = MapTry->sizeBytes();
    }
    return MapTimer.elapsedSeconds() / MapReps;
  };

  double TextSec = measureText(TextPath, Automaton.numStates());
  size_t MappedBytes = 0;
  double MapSec = measureMap(BinPath, Automaton.numStates(), MappedBytes);
  double MinTextSec = measureText(MinTextPath, MinAutomaton.numStates());
  size_t MinMappedBytes = 0;
  double MinMapSec =
      measureMap(MinBinPath, MinAutomaton.numStates(), MinMappedBytes);

  double Speedup = TextSec / MapSec;
  TablePrinter ColdTable({"Startup path", "Time", "Image"});
  ColdTable.addRow({"text parse (" + TextPath + ")",
                    formatDouble(TextSec * 1e3, 2) + " ms",
                    formatGrouped(Automaton.serialize().size()) + " B"});
  ColdTable.addRow({"mmap + validate (" + BinPath + ")",
                    formatDouble(MapSec * 1e6, 1) + " us",
                    formatGrouped(MappedBytes) + " B"});
  ColdTable.addRow({"text parse, minimized (" + MinTextPath + ")",
                    formatDouble(MinTextSec * 1e3, 2) + " ms",
                    formatGrouped(MinAutomaton.serialize().size()) + " B"});
  ColdTable.addRow({"mmap + validate, minimized (" + MinBinPath + ")",
                    formatDouble(MinMapSec * 1e6, 1) + " us",
                    formatGrouped(MinMappedBytes) + " B"});
  std::printf("\n%s", ColdTable.render().c_str());
  std::printf("\ncold-start speedup (mmap over text parse): %.0fx "
              "(target >= 100x)\n",
              Speedup);
  std::printf("minimized binary image: %s B vs %s B (%.1f%% smaller)\n",
              formatGrouped(MinMappedBytes).c_str(),
              formatGrouped(MappedBytes).c_str(),
              MappedBytes
                  ? 100.0 * (1.0 - static_cast<double>(MinMappedBytes) /
                                       static_cast<double>(MappedBytes))
                  : 0.0);
  if (MinMappedBytes >= MappedBytes) {
    std::fprintf(stderr,
                 "FAILURE: minimization did not shrink the binary image\n");
    return 1;
  }
  if (Speedup < 100) {
    std::fprintf(stderr, "FAILURE: mmap cold start below 100x target\n");
    return 1;
  }

  // --- Resident service: latency distribution and throughput -----------
  printBenchHeader(
      "Resident selection service (mapped image, arena-per-request)",
      "p50/p95/p99 per-function selection latency over >= 1M function "
      "selections");

  std::string Error;
  std::unique_ptr<MappedAutomaton> Mapped =
      MatcherAutomaton::mapBinary(BinPath, &Error);
  if (!Mapped) {
    std::fprintf(stderr, "FAILURE: %s\n", Error.c_str());
    return 1;
  }
  std::string Stale = automatonStalenessError(Mapped->view(), Library);
  if (!Stale.empty()) {
    std::fprintf(stderr, "FAILURE: %s\n", Stale.c_str());
    return 1;
  }

  unsigned HwThreads = std::thread::hardware_concurrency();
  unsigned Threads = static_cast<unsigned>(envOr(
      "SELGEN_BENCH_SERVER_THREADS",
      std::clamp(HwThreads ? HwThreads : 4u, 2u, 8u)));
  uint64_t TargetFunctions =
      envOr("SELGEN_BENCH_SERVER_FUNCTIONS", 1000000);
  const unsigned Repeat = 8; ///< Workload copies per batch.

  // SELGEN_COST_MODEL serves every request through the cost-minimal
  // tiling pre-pass instead of first-match (same mapped image — the
  // binary format carries the per-rule cost table).
  std::optional<CostKind> Model = benchCostModel();
  if (Model)
    std::printf("selector: tiling under the %s cost model "
                "(SELGEN_COST_MODEL)\n",
                costKindName(*Model));

  // Thread-scaling reference: the same service shape with one worker.
  SelectionService Single(Library, Mapped->view(), Width, 1,
                          Model.has_value(),
                          Model.value_or(CostKind::Unit));
  ServiceRun SingleRun =
      drive(Single, std::max<uint64_t>(TargetFunctions / 20, 1), Repeat);

  SelectionService Service(Library, Mapped->view(), Width, Threads,
                           Model.has_value(),
                           Model.value_or(CostKind::Unit));
  ServiceRun Run = drive(Service, TargetFunctions, Repeat);

  std::sort(Run.LatenciesUs.begin(), Run.LatenciesUs.end());
  double SingleFnPerSec = SingleRun.Functions / SingleRun.WallSeconds;
  double FnPerSec = Run.Functions / Run.WallSeconds;

  TablePrinter LatTable({"Metric", "Value"});
  LatTable.addRow({"worker threads", std::to_string(Threads)});
  LatTable.addRow({"batches served", formatGrouped(Run.Batches)});
  LatTable.addRow({"functions compiled", formatGrouped(Run.Functions)});
  LatTable.addRow(
      {"operation selections", formatGrouped(Run.Selections)});
  LatTable.addRow({"wall time", formatDuration(Run.WallSeconds)});
  LatTable.addRow({"functions / s", formatGrouped(
                                        static_cast<uint64_t>(FnPerSec))});
  LatTable.addRow(
      {"selections / s",
       formatGrouped(static_cast<uint64_t>(Run.Selections /
                                           Run.WallSeconds))});
  LatTable.addRow({"p50 select latency",
                   formatDouble(percentile(Run.LatenciesUs, 0.50), 1) +
                       " us"});
  LatTable.addRow({"p95 select latency",
                   formatDouble(percentile(Run.LatenciesUs, 0.95), 1) +
                       " us"});
  LatTable.addRow({"p99 select latency",
                   formatDouble(percentile(Run.LatenciesUs, 0.99), 1) +
                       " us"});
  LatTable.addRow({"1-thread functions / s",
                   formatGrouped(static_cast<uint64_t>(SingleFnPerSec))});
  LatTable.addRow({"thread scaling",
                   formatDouble(FnPerSec / SingleFnPerSec, 2) + "x"});
  std::printf("\n%s", LatTable.render().c_str());
  std::printf("\n(per-function latency is the selection engine's own "
              "stopwatch, so queueing\nin the batch dispatcher is "
              "excluded; an operation selection covers one subject\n"
              "operation with a rule or fallback emission)\n");

  const ServiceTelemetry &T = Service.telemetry();
  std::printf("service telemetry: %llu batches, %llu functions, "
              "%llu rules tried, %llu automaton states visited\n",
              static_cast<unsigned long long>(T.Batches),
              static_cast<unsigned long long>(T.Functions),
              static_cast<unsigned long long>(T.RulesTried),
              static_cast<unsigned long long>(T.NodesVisited));

  if (Run.Functions < TargetFunctions) {
    std::fprintf(stderr, "FAILURE: served fewer functions than target\n");
    return 1;
  }

  // --- Overload arm: typed backpressure under retrying clients ----------
  // The robustness claim of the hardened server: with a deliberately
  // tiny admission queue and one dispatcher, a burst of concurrent
  // clients is shed with typed Overloaded replies (O(1), carrying a
  // retry-after hint) instead of queueing without bound — and because
  // the rejection is typed, clients that honor the hint still get
  // every request served. Completed must equal offered exactly.
  printBenchHeader(
      "Overload shedding under concurrent retrying clients",
      "bounded admission queue; typed Overloaded replies with "
      "retry-after hints; zero lost requests");

  std::signal(SIGPIPE, SIG_IGN); // wire::writeFrame contract.
  const unsigned Clients =
      static_cast<unsigned>(envOr("SELGEN_BENCH_SERVER_CLIENTS", 8));
  const unsigned PerClient =
      static_cast<unsigned>(envOr("SELGEN_BENCH_SERVER_OVERLOAD_REQS", 24));

  SelectionService OverloadService(Library, Mapped->view(), Width, 1,
                                   Model.has_value(),
                                   Model.value_or(CostKind::Unit));
  ServerOptions ServerOpts;
  ServerOpts.MaxQueue = 4;
  ServerOpts.RetryAfterMs = 2;
  ServerOpts.PollMs = 5;
  SelectionServer Server(OverloadService, ServerOpts);

  std::vector<std::array<int, 2>> Pairs(Clients);
  for (unsigned I = 0; I < Clients; ++I) {
    int Sv[2];
    if (socketpair(AF_UNIX, SOCK_STREAM, 0, Sv) != 0) {
      std::fprintf(stderr, "FAILURE: socketpair failed\n");
      return 1;
    }
    Pairs[I] = {Sv[0], Sv[1]};
    Server.addConnection(Sv[0], Sv[0]);
  }
  std::thread ServerThread([&Server] { Server.run(); });

  BatchRequest Burst;
  Burst.Width = Width;
  for (const WorkloadProfile &Profile : cint2000Profiles())
    Burst.Workloads.push_back(Profile.Name);

  std::atomic<uint64_t> Completed{0}, Retries{0}, ClientFailures{0};
  Timer OverloadWall;
  std::vector<std::thread> ClientThreads;
  for (unsigned I = 0; I < Clients; ++I) {
    ClientThreads.emplace_back([&, I] {
      int Fd = Pairs[I][1];
      BatchRequest Req = Burst;
      for (unsigned R = 0; R < PerClient; ++R) {
        Req.Id = static_cast<uint64_t>(I) * PerClient + R + 1;
        const std::string Payload = encodeBatchRequest(Req);
        bool Served = false;
        for (unsigned Attempt = 0; Attempt < 10000 && !Served; ++Attempt) {
          if (!wire::writeFrame(Fd, wire::Request, Payload))
            break;
          wire::Frame Reply;
          if (wire::readFrame(Fd, Reply, 30000) != wire::ReadStatus::Ok)
            break;
          if (Reply.Type == wire::Response) {
            Completed.fetch_add(1, std::memory_order_relaxed);
            Served = true;
            break;
          }
          ServeError Err = decodeServeError(Reply.Payload);
          if (Err.Code != ServeErrorCode::Overloaded &&
              Err.Code != ServeErrorCode::Timeout)
            break; // Permanent rejection: retrying is useless.
          Retries.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(
              std::chrono::milliseconds(Err.RetryAfterMs ? Err.RetryAfterMs
                                                         : 1));
        }
        if (!Served) {
          ClientFailures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
      wire::writeFrame(Fd, wire::Shutdown, std::string());
    });
  }
  for (std::thread &T : ClientThreads)
    T.join();
  Server.requestStop();
  ServerThread.join();
  double OverloadSec = OverloadWall.elapsedSeconds();
  for (const std::array<int, 2> &P : Pairs) {
    close(P[0]);
    close(P[1]);
  }

  const ServerStats &S = Server.stats();
  const uint64_t Offered = static_cast<uint64_t>(Clients) * PerClient;
  TablePrinter OverTable({"Metric", "Value"});
  OverTable.addRow({"clients", std::to_string(Clients)});
  OverTable.addRow({"requests offered", formatGrouped(Offered)});
  OverTable.addRow({"requests completed",
                    formatGrouped(Completed.load())});
  OverTable.addRow({"client retries", formatGrouped(Retries.load())});
  OverTable.addRow({"typed Overloaded replies (shed)",
                    formatGrouped(S.Shed.load())});
  OverTable.addRow({"typed Timeout replies",
                    formatGrouped(S.Timeouts.load())});
  OverTable.addRow({"admission queue bound",
                    std::to_string(ServerOpts.MaxQueue)});
  OverTable.addRow({"queue depth peak", formatGrouped(S.QueuePeak.load())});
  OverTable.addRow({"wall time", formatDuration(OverloadSec)});
  OverTable.addRow(
      {"served batches / s",
       formatGrouped(static_cast<uint64_t>(
           OverloadSec > 0 ? Completed.load() / OverloadSec : 0))});
  std::printf("\n%s", OverTable.render().c_str());
  std::printf("\n(every shed request was eventually served after client "
              "backoff; the queue-depth\npeak staying at the bound shows "
              "admission control, not memory, absorbed the burst)\n");

  if (ClientFailures.load() != 0 || Completed.load() != Offered) {
    std::fprintf(stderr,
                 "FAILURE: %llu of %llu requests lost under overload\n",
                 static_cast<unsigned long long>(Offered - Completed.load()),
                 static_cast<unsigned long long>(Offered));
    return 1;
  }
  if (Clients > ServerOpts.MaxQueue + 1 && S.Shed.load() == 0) {
    std::fprintf(stderr, "FAILURE: overload arm never triggered shedding\n");
    return 1;
  }
  return 0;
}
