//===- bench_90_dataflow.cpp - Known-bits dataflow cost and payoff -------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// The known-bits/range dataflow (src/analysis/Dataflow.h) is consumed
// on the selection hot path: SelectionEngine uses GraphFacts to elide
// runtime shift-precondition re-checks it can discharge statically.
// This benchmark answers two questions about that trade:
//
//   1. what does computing GraphFacts cost per workload graph
//      (facts/sec, plus how many shift preconditions it discharges), and
//   2. what the elision is worth end to end: selection time and the
//      matcher.precond_proved counter with elision on vs off, with the
//      emitted machine code cross-checked for byte-identity.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "analysis/Dataflow.h"
#include "eval/Workloads.h"
#include "ir/Function.h"
#include "isel/AutomatonSelector.h"
#include "isel/SelectionEngine.h"
#include "support/Statistics.h"
#include "support/Timer.h"

#include <cstdio>
#include <vector>

using namespace selgen;
using namespace selgen::bench;

namespace {

/// Machine code of \p MF without the header line.
std::string asmBody(const MachineFunction &MF) {
  std::string Text = printMachineFunction(MF);
  size_t Eol = Text.find('\n');
  return Eol == std::string::npos ? std::string() : Text.substr(Eol + 1);
}

bool isShift(Opcode Op) {
  return Op == Opcode::Shl || Op == Opcode::Shr || Op == Opcode::Shrs;
}

} // namespace

int main() {
  printBenchHeader(
      "Known-bits/range dataflow: analysis cost and elision payoff",
      "Buchwald et al., CGO'18, Section 4 (shift rules carry the "
      "0 <= amount < width precondition the analysis discharges)");

  std::vector<Function> Workloads;
  for (const WorkloadProfile &Profile : cint2000Profiles())
    Workloads.push_back(buildWorkload(Profile, Width));

  // --- GraphFacts throughput per workload ------------------------------
  TablePrinter FactTable({"Benchmark", "Ops", "Shifts", "Proved", "Unproven",
                          "Analysis", "Ops/sec"});
  for (const Function &F : Workloads) {
    const int Reps = 50;
    unsigned Ops = 0, Shifts = 0, Proved = 0, Unproven = 0;
    double Seconds = 0;
    for (int Rep = 0; Rep < Reps; ++Rep) {
      Ops = Shifts = Proved = Unproven = 0;
      Timer T;
      for (const auto &Block : F.blocks()) {
        GraphFacts Facts(Block->body());
        for (Node *N :
             Block->body().liveNodesFrom(Block->terminatorOperands())) {
          ++Ops;
          for (unsigned I = 0; I < N->numResults(); ++I)
            if (N->resultSort(I).isValue())
              (void)Facts.fact(NodeRef(N, I));
          if (isShift(N->opcode())) {
            ++Shifts;
            if (Facts.provesShiftInRange(N))
              ++Proved;
            else
              ++Unproven;
          }
        }
      }
      Seconds += T.elapsedSeconds();
    }
    Seconds /= Reps;
    FactTable.addRow({F.name(), formatGrouped(Ops), formatGrouped(Shifts),
                      formatGrouped(Proved), formatGrouped(Unproven),
                      formatDouble(Seconds * 1e6, 1) + " us",
                      formatGrouped(static_cast<uint64_t>(Ops / Seconds))});
  }
  std::printf("\n%s", FactTable.render().c_str());
  std::printf("\n(Proved = shift operations whose 0 <= amount < width "
              "precondition the dataflow\ndischarges; the masked-amount "
              "shl_rc shape should always prove)\n");

  // --- End-to-end elision payoff ---------------------------------------
  SmtContext Smt;
  BenchGoals FullGoals = makeBenchGoals("full");
  PatternDatabase FullDb =
      loadOrSynthesizeLibrary(Smt, "full", FullGoals.Goals);
  FullDb.filterNonNormalized();
  FullDb.sortSpecificFirst();
  AutomatonSelector Selector(FullDb, FullGoals.Goals);

  TablePrinter ElideTable(
      {"Mode", "Selection", "precond_proved", "Code"});
  const int Reps = 20;
  std::vector<std::string> BaselineAsm;
  for (bool Elide : {true, false}) {
    setStaticPrecondElision(Elide);
    Statistics::get().clear();
    double Seconds = 0;
    std::vector<std::string> Asm;
    for (int Rep = 0; Rep < Reps; ++Rep) {
      Asm.clear();
      for (const Function &F : Workloads) {
        SelectionResult R = Selector.select(F);
        Seconds += R.SelectionSeconds;
        Asm.push_back(asmBody(*R.MF));
      }
    }
    bool Same = BaselineAsm.empty() || Asm == BaselineAsm;
    if (BaselineAsm.empty())
      BaselineAsm = Asm;
    ElideTable.addRow(
        {Elide ? "elision on" : "elision off",
         formatDouble(Seconds / Reps * 1e6, 1) + " us",
         formatGrouped(Statistics::get().value("matcher.precond_proved") /
                       Reps),
         Same ? "identical" : "DIFFERS"});
    if (!Same) {
      std::printf("FAILURE: elision changed the emitted machine code\n");
      setStaticPrecondElision(true);
      return 1;
    }
  }
  setStaticPrecondElision(true);
  std::printf("\n%s", ElideTable.render().c_str());
  std::printf("\n(times are per full sweep over the %zu workloads; Code "
              "compares the machine\ncode emitted with and without elision "
              "byte for byte)\n",
              Workloads.size());
  return 0;
}
