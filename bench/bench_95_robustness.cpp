//===- bench_95_robustness.cpp - Fault-tolerance overhead measurements ---------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// The robustness layer (run journal, supervised solver budgets,
// end-of-run escalation) must be cheap enough to leave on for every
// long synthesis run. This benchmark measures:
//
//   1. Journal write cost: a warm (all-cache-hit) Basic synthesis with
//      and without --run-dir journaling. The journal fsyncs one record
//      per goal outcome; the target is < 2% added wall time.
//   2. Resume overhead: serving every goal from a prior run's journal
//      (--resume) versus from the synthesis cache — both skip Z3
//      entirely, so the delta is pure journal-replay cost.
//   3. Retry escalation: a deliberately starved run (tiny Z3 rlimit)
//      with a flat retry policy versus the escalating 1x/4x/16x
//      ladder, comparing how many goals end incomplete.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "pattern/ParallelBuilder.h"
#include "pattern/RunJournal.h"
#include "pattern/SynthesisCache.h"
#include "support/Statistics.h"
#include "support/Timer.h"

#include <cstdio>
#include <filesystem>
#include <string>

using namespace selgen;
using namespace selgen::bench;

namespace {

std::string scratchDir(const std::string &Name) {
  std::string Dir =
      (std::filesystem::temp_directory_path() / ("selgen_bench_" + Name))
          .string();
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

SynthesisOptions baseOptions() {
  SynthesisOptions Options;
  Options.Width = Width;
  Options.FindAllMinimal = true;
  Options.TimeBudgetSeconds = 30;
  Options.QueryTimeoutMs = 20000;
  Options.MaxPatternsPerMultiset = 8;
  Options.MaxPatternsPerGoal = 128;
  return Options;
}

struct TimedRun {
  double Seconds = 0;
  size_t Rules = 0;
  unsigned Incomplete = 0;
};

TimedRun timedRun(const GoalLibrary &Goals, const SynthesisOptions &Options,
                  ParallelBuildOptions Build) {
  LibraryBuildReport Report;
  Timer Clock;
  PatternDatabase Database =
      synthesizeRuleLibraryParallel(Goals, Options, Build, &Report);
  TimedRun Result;
  Result.Seconds = Clock.elapsedSeconds();
  Result.Rules = Database.size();
  for (const GroupReport &Group : Report.Groups)
    Result.Incomplete += Group.IncompleteGoals;
  return Result;
}

} // namespace

int main() {
  printBenchHeader(
      "Robustness layer: journal, resume, and retry-escalation cost",
      "supervised budgets and crash-safe checkpoint/resume on top of "
      "Buchwald et al., CGO'18, Section 5.5 parallel synthesis");

  BenchGoals Bench = makeBenchGoals("basic");
  SynthesisOptions Options = baseOptions();

  // Shared cache: the first run pays for Z3, everything after is warm.
  std::string CacheDir = scratchDir("robustness_cache");
  SynthesisCache Cache(CacheDir);

  ParallelBuildOptions Cold;
  Cold.TotalModeGoals = Bench.TotalModeGoals;
  Cold.Cache = &Cache;
  std::printf("cold synthesis (fills cache)...\n");
  TimedRun ColdRun = timedRun(Bench.Goals, Options, Cold);
  std::printf("  %zu rules in %s\n\n", ColdRun.Rules,
              formatDuration(ColdRun.Seconds).c_str());

  // --- 1. Journal write cost on a warm run -----------------------------
  const int Reps = 5;
  double WarmPlain = 0, WarmJournaled = 0;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    WarmPlain += timedRun(Bench.Goals, Options, Cold).Seconds;

    std::string RunDir = scratchDir("robustness_run");
    std::unique_ptr<RunJournal> Journal = RunJournal::open(RunDir, "bench");
    ParallelBuildOptions Journaled = Cold;
    Journaled.Journal = Journal.get();
    WarmJournaled += timedRun(Bench.Goals, Options, Journaled).Seconds;
  }
  WarmPlain /= Reps;
  WarmJournaled /= Reps;
  double OverheadPct = WarmPlain > 0
                           ? (WarmJournaled - WarmPlain) / WarmPlain * 100
                           : 0;
  TablePrinter JournalTable({"Warm run", "Wall", "vs plain"});
  JournalTable.addRow({"no journal", formatDuration(WarmPlain), "-"});
  JournalTable.addRow({"journaled (fsync/goal)", formatDuration(WarmJournaled),
                    (OverheadPct >= 0 ? "+" : "") + formatDouble(OverheadPct, 1) + "%"});
  std::printf("%s", JournalTable.render().c_str());
  std::printf("  target: journaling a warm run costs < 2%% wall\n\n");

  // --- 2. Resume overhead ----------------------------------------------
  std::string RunDir = scratchDir("robustness_resume");
  {
    std::unique_ptr<RunJournal> Journal = RunJournal::open(RunDir, "bench");
    ParallelBuildOptions Journaled = Cold;
    Journaled.Journal = Journal.get();
    timedRun(Bench.Goals, Options, Journaled);
  }
  Timer ReplayClock;
  RunJournal::LoadResult Replay = RunJournal::load(RunDir);
  double ReplaySeconds = ReplayClock.elapsedSeconds();
  ParallelBuildOptions Resumed = Cold;
  Resumed.Cache = nullptr; // Journal only: no cache to fall back on.
  Resumed.Resume = &Replay.Finished;
  TimedRun ResumeRun = timedRun(Bench.Goals, Options, Resumed);
  TablePrinter ResumeTable({"Serve all goals from", "Wall", "Rules"});
  ResumeTable.addRow({"synthesis cache (warm)", formatDuration(WarmPlain),
                   std::to_string(ColdRun.Rules)});
  ResumeTable.addRow({"journal (--resume)",
                   formatDuration(ReplaySeconds + ResumeRun.Seconds),
                   std::to_string(ResumeRun.Rules)});
  std::printf("%s", ResumeTable.render().c_str());
  std::printf("  journal replay alone: %s for %zu finished goals\n\n",
              formatDuration(ReplaySeconds).c_str(),
              Replay.Finished.size());

  // --- 3. Retry escalation under starvation ----------------------------
  // A tiny deterministic rlimit starves most queries on the first try;
  // the escalating ladder buys the hard ones a bigger budget instead
  // of giving up.
  SynthesisOptions Starved = Options;
  Starved.QueryRlimit = 2000;
  ParallelBuildOptions NoCache;
  NoCache.TotalModeGoals = Bench.TotalModeGoals;

  int64_t RetriesBefore = Statistics::get().value("smt.retries");
  Starved.QueryRetryScale = {1};
  TimedRun Flat = timedRun(Bench.Goals, Starved, NoCache);
  int64_t FlatRetries =
      Statistics::get().value("smt.retries") - RetriesBefore;

  RetriesBefore = Statistics::get().value("smt.retries");
  Starved.QueryRetryScale = {1, 4, 16};
  TimedRun Ladder = timedRun(Bench.Goals, Starved, NoCache);
  int64_t LadderRetries =
      Statistics::get().value("smt.retries") - RetriesBefore;

  TablePrinter RetryTable(
      {"Retry policy", "Incomplete", "Retries", "Rules", "Wall"});
  RetryTable.addRow({"flat (1x)", std::to_string(Flat.Incomplete),
                  std::to_string(FlatRetries), std::to_string(Flat.Rules),
                  formatDuration(Flat.Seconds)});
  RetryTable.addRow({"ladder (1x/4x/16x)", std::to_string(Ladder.Incomplete),
                  std::to_string(LadderRetries),
                  std::to_string(Ladder.Rules),
                  formatDuration(Ladder.Seconds)});
  std::printf("%s", RetryTable.render().c_str());

  std::filesystem::remove_all(CacheDir);
  std::filesystem::remove_all(RunDir);
  return 0;
}
