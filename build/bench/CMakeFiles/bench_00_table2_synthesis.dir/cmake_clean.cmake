file(REMOVE_RECURSE
  "CMakeFiles/bench_00_table2_synthesis.dir/bench_00_table2_synthesis.cpp.o"
  "CMakeFiles/bench_00_table2_synthesis.dir/bench_00_table2_synthesis.cpp.o.d"
  "bench_00_table2_synthesis"
  "bench_00_table2_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_00_table2_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
