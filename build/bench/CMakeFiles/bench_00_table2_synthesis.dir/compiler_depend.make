# Empty compiler generated dependencies file for bench_00_table2_synthesis.
# This may be replaced when dependencies are built.
