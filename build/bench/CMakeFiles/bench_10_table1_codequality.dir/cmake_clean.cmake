file(REMOVE_RECURSE
  "CMakeFiles/bench_10_table1_codequality.dir/bench_10_table1_codequality.cpp.o"
  "CMakeFiles/bench_10_table1_codequality.dir/bench_10_table1_codequality.cpp.o.d"
  "bench_10_table1_codequality"
  "bench_10_table1_codequality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_10_table1_codequality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
