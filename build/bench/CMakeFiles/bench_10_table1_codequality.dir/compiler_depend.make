# Empty compiler generated dependencies file for bench_10_table1_codequality.
# This may be replaced when dependencies are built.
