file(REMOVE_RECURSE
  "CMakeFiles/bench_20_missing_patterns.dir/bench_20_missing_patterns.cpp.o"
  "CMakeFiles/bench_20_missing_patterns.dir/bench_20_missing_patterns.cpp.o.d"
  "bench_20_missing_patterns"
  "bench_20_missing_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_20_missing_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
