# Empty dependencies file for bench_20_missing_patterns.
# This may be replaced when dependencies are built.
