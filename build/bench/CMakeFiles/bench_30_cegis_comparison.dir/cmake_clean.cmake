file(REMOVE_RECURSE
  "CMakeFiles/bench_30_cegis_comparison.dir/bench_30_cegis_comparison.cpp.o"
  "CMakeFiles/bench_30_cegis_comparison.dir/bench_30_cegis_comparison.cpp.o.d"
  "bench_30_cegis_comparison"
  "bench_30_cegis_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_30_cegis_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
