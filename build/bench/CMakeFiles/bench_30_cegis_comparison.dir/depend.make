# Empty dependencies file for bench_30_cegis_comparison.
# This may be replaced when dependencies are built.
