file(REMOVE_RECURSE
  "CMakeFiles/bench_40_search_space.dir/bench_40_search_space.cpp.o"
  "CMakeFiles/bench_40_search_space.dir/bench_40_search_space.cpp.o.d"
  "bench_40_search_space"
  "bench_40_search_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_40_search_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
