file(REMOVE_RECURSE
  "CMakeFiles/bench_50_pruning_ablation.dir/bench_50_pruning_ablation.cpp.o"
  "CMakeFiles/bench_50_pruning_ablation.dir/bench_50_pruning_ablation.cpp.o.d"
  "bench_50_pruning_ablation"
  "bench_50_pruning_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_50_pruning_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
