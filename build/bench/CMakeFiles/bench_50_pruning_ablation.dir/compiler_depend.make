# Empty compiler generated dependencies file for bench_50_pruning_ablation.
# This may be replaced when dependencies are built.
