file(REMOVE_RECURSE
  "CMakeFiles/bench_60_mvalue_encoding.dir/bench_60_mvalue_encoding.cpp.o"
  "CMakeFiles/bench_60_mvalue_encoding.dir/bench_60_mvalue_encoding.cpp.o.d"
  "bench_60_mvalue_encoding"
  "bench_60_mvalue_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_60_mvalue_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
