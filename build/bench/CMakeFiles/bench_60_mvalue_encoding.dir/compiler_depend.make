# Empty compiler generated dependencies file for bench_60_mvalue_encoding.
# This may be replaced when dependencies are built.
