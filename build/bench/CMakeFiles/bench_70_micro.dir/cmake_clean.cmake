file(REMOVE_RECURSE
  "CMakeFiles/bench_70_micro.dir/bench_70_micro.cpp.o"
  "CMakeFiles/bench_70_micro.dir/bench_70_micro.cpp.o.d"
  "bench_70_micro"
  "bench_70_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_70_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
