file(REMOVE_RECURSE
  "../lib/libselgen_bench_common.a"
  "../lib/libselgen_bench_common.pdb"
  "CMakeFiles/selgen_bench_common.dir/BenchCommon.cpp.o"
  "CMakeFiles/selgen_bench_common.dir/BenchCommon.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selgen_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
