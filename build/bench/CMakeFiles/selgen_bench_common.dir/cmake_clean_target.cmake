file(REMOVE_RECURSE
  "../lib/libselgen_bench_common.a"
)
