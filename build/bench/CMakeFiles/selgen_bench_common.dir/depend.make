# Empty dependencies file for selgen_bench_common.
# This may be replaced when dependencies are built.
