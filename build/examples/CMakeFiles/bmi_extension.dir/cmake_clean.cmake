file(REMOVE_RECURSE
  "CMakeFiles/bmi_extension.dir/bmi_extension.cpp.o"
  "CMakeFiles/bmi_extension.dir/bmi_extension.cpp.o.d"
  "bmi_extension"
  "bmi_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmi_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
