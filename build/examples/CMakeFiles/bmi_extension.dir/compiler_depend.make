# Empty compiler generated dependencies file for bmi_extension.
# This may be replaced when dependencies are built.
