file(REMOVE_RECURSE
  "CMakeFiles/parallel_synthesis.dir/parallel_synthesis.cpp.o"
  "CMakeFiles/parallel_synthesis.dir/parallel_synthesis.cpp.o.d"
  "parallel_synthesis"
  "parallel_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
