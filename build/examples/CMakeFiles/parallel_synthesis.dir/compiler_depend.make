# Empty compiler generated dependencies file for parallel_synthesis.
# This may be replaced when dependencies are built.
