file(REMOVE_RECURSE
  "CMakeFiles/pattern_encoding.dir/pattern_encoding.cpp.o"
  "CMakeFiles/pattern_encoding.dir/pattern_encoding.cpp.o.d"
  "pattern_encoding"
  "pattern_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
