# Empty compiler generated dependencies file for pattern_encoding.
# This may be replaced when dependencies are built.
