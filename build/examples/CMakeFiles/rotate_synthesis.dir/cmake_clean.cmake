file(REMOVE_RECURSE
  "CMakeFiles/rotate_synthesis.dir/rotate_synthesis.cpp.o"
  "CMakeFiles/rotate_synthesis.dir/rotate_synthesis.cpp.o.d"
  "rotate_synthesis"
  "rotate_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rotate_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
