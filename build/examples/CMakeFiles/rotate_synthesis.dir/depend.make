# Empty dependencies file for rotate_synthesis.
# This may be replaced when dependencies are built.
