file(REMOVE_RECURSE
  "CMakeFiles/selector_pipeline.dir/selector_pipeline.cpp.o"
  "CMakeFiles/selector_pipeline.dir/selector_pipeline.cpp.o.d"
  "selector_pipeline"
  "selector_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selector_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
