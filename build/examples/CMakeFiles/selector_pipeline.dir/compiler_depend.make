# Empty compiler generated dependencies file for selector_pipeline.
# This may be replaced when dependencies are built.
