
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/Evaluation.cpp" "src/eval/CMakeFiles/selgen_eval.dir/Evaluation.cpp.o" "gcc" "src/eval/CMakeFiles/selgen_eval.dir/Evaluation.cpp.o.d"
  "/root/repo/src/eval/Workloads.cpp" "src/eval/CMakeFiles/selgen_eval.dir/Workloads.cpp.o" "gcc" "src/eval/CMakeFiles/selgen_eval.dir/Workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isel/CMakeFiles/selgen_isel.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/selgen_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/selgen_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/selgen_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/selgen_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/semantics/CMakeFiles/selgen_semantics.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/selgen_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/selgen_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
