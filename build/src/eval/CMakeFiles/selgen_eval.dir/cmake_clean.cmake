file(REMOVE_RECURSE
  "CMakeFiles/selgen_eval.dir/Evaluation.cpp.o"
  "CMakeFiles/selgen_eval.dir/Evaluation.cpp.o.d"
  "CMakeFiles/selgen_eval.dir/Workloads.cpp.o"
  "CMakeFiles/selgen_eval.dir/Workloads.cpp.o.d"
  "libselgen_eval.a"
  "libselgen_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selgen_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
