file(REMOVE_RECURSE
  "libselgen_eval.a"
)
