# Empty compiler generated dependencies file for selgen_eval.
# This may be replaced when dependencies are built.
