file(REMOVE_RECURSE
  "CMakeFiles/selgen_ir.dir/Function.cpp.o"
  "CMakeFiles/selgen_ir.dir/Function.cpp.o.d"
  "CMakeFiles/selgen_ir.dir/Graph.cpp.o"
  "CMakeFiles/selgen_ir.dir/Graph.cpp.o.d"
  "CMakeFiles/selgen_ir.dir/GraphViz.cpp.o"
  "CMakeFiles/selgen_ir.dir/GraphViz.cpp.o.d"
  "CMakeFiles/selgen_ir.dir/Interpreter.cpp.o"
  "CMakeFiles/selgen_ir.dir/Interpreter.cpp.o.d"
  "CMakeFiles/selgen_ir.dir/Normalizer.cpp.o"
  "CMakeFiles/selgen_ir.dir/Normalizer.cpp.o.d"
  "CMakeFiles/selgen_ir.dir/Opcode.cpp.o"
  "CMakeFiles/selgen_ir.dir/Opcode.cpp.o.d"
  "CMakeFiles/selgen_ir.dir/Parser.cpp.o"
  "CMakeFiles/selgen_ir.dir/Parser.cpp.o.d"
  "CMakeFiles/selgen_ir.dir/Printer.cpp.o"
  "CMakeFiles/selgen_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/selgen_ir.dir/Verifier.cpp.o"
  "CMakeFiles/selgen_ir.dir/Verifier.cpp.o.d"
  "libselgen_ir.a"
  "libselgen_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selgen_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
