file(REMOVE_RECURSE
  "libselgen_ir.a"
)
