# Empty compiler generated dependencies file for selgen_ir.
# This may be replaced when dependencies are built.
