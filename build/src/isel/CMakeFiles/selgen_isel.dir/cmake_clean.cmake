file(REMOVE_RECURSE
  "CMakeFiles/selgen_isel.dir/GeneratedSelector.cpp.o"
  "CMakeFiles/selgen_isel.dir/GeneratedSelector.cpp.o.d"
  "CMakeFiles/selgen_isel.dir/HandwrittenSelector.cpp.o"
  "CMakeFiles/selgen_isel.dir/HandwrittenSelector.cpp.o.d"
  "CMakeFiles/selgen_isel.dir/Lowering.cpp.o"
  "CMakeFiles/selgen_isel.dir/Lowering.cpp.o.d"
  "CMakeFiles/selgen_isel.dir/Matcher.cpp.o"
  "CMakeFiles/selgen_isel.dir/Matcher.cpp.o.d"
  "libselgen_isel.a"
  "libselgen_isel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selgen_isel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
