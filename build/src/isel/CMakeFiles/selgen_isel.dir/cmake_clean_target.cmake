file(REMOVE_RECURSE
  "libselgen_isel.a"
)
