# Empty dependencies file for selgen_isel.
# This may be replaced when dependencies are built.
