file(REMOVE_RECURSE
  "CMakeFiles/selgen_pattern.dir/LibraryBuilder.cpp.o"
  "CMakeFiles/selgen_pattern.dir/LibraryBuilder.cpp.o.d"
  "CMakeFiles/selgen_pattern.dir/ParallelBuilder.cpp.o"
  "CMakeFiles/selgen_pattern.dir/ParallelBuilder.cpp.o.d"
  "CMakeFiles/selgen_pattern.dir/PatternDatabase.cpp.o"
  "CMakeFiles/selgen_pattern.dir/PatternDatabase.cpp.o.d"
  "libselgen_pattern.a"
  "libselgen_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selgen_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
