file(REMOVE_RECURSE
  "libselgen_pattern.a"
)
