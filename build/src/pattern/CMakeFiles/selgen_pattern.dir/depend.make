# Empty dependencies file for selgen_pattern.
# This may be replaced when dependencies are built.
