file(REMOVE_RECURSE
  "CMakeFiles/selgen_refsel.dir/ReferenceSelectors.cpp.o"
  "CMakeFiles/selgen_refsel.dir/ReferenceSelectors.cpp.o.d"
  "libselgen_refsel.a"
  "libselgen_refsel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selgen_refsel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
