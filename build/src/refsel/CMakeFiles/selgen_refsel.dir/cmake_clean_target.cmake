file(REMOVE_RECURSE
  "libselgen_refsel.a"
)
