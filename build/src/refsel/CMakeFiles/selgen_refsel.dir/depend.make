# Empty dependencies file for selgen_refsel.
# This may be replaced when dependencies are built.
