
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/semantics/InstrSpec.cpp" "src/semantics/CMakeFiles/selgen_semantics.dir/InstrSpec.cpp.o" "gcc" "src/semantics/CMakeFiles/selgen_semantics.dir/InstrSpec.cpp.o.d"
  "/root/repo/src/semantics/IrSemantics.cpp" "src/semantics/CMakeFiles/selgen_semantics.dir/IrSemantics.cpp.o" "gcc" "src/semantics/CMakeFiles/selgen_semantics.dir/IrSemantics.cpp.o.d"
  "/root/repo/src/semantics/MemoryModel.cpp" "src/semantics/CMakeFiles/selgen_semantics.dir/MemoryModel.cpp.o" "gcc" "src/semantics/CMakeFiles/selgen_semantics.dir/MemoryModel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/smt/CMakeFiles/selgen_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/selgen_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/selgen_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
