file(REMOVE_RECURSE
  "CMakeFiles/selgen_semantics.dir/InstrSpec.cpp.o"
  "CMakeFiles/selgen_semantics.dir/InstrSpec.cpp.o.d"
  "CMakeFiles/selgen_semantics.dir/IrSemantics.cpp.o"
  "CMakeFiles/selgen_semantics.dir/IrSemantics.cpp.o.d"
  "CMakeFiles/selgen_semantics.dir/MemoryModel.cpp.o"
  "CMakeFiles/selgen_semantics.dir/MemoryModel.cpp.o.d"
  "libselgen_semantics.a"
  "libselgen_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selgen_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
