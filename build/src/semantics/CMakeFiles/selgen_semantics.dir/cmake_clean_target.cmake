file(REMOVE_RECURSE
  "libselgen_semantics.a"
)
