# Empty dependencies file for selgen_semantics.
# This may be replaced when dependencies are built.
