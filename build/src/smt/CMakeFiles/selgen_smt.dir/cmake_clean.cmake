file(REMOVE_RECURSE
  "CMakeFiles/selgen_smt.dir/SmtContext.cpp.o"
  "CMakeFiles/selgen_smt.dir/SmtContext.cpp.o.d"
  "libselgen_smt.a"
  "libselgen_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selgen_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
