file(REMOVE_RECURSE
  "libselgen_smt.a"
)
