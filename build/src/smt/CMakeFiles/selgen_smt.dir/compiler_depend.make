# Empty compiler generated dependencies file for selgen_smt.
# This may be replaced when dependencies are built.
