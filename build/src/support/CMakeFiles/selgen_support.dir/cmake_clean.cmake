file(REMOVE_RECURSE
  "CMakeFiles/selgen_support.dir/BitValue.cpp.o"
  "CMakeFiles/selgen_support.dir/BitValue.cpp.o.d"
  "CMakeFiles/selgen_support.dir/CommandLine.cpp.o"
  "CMakeFiles/selgen_support.dir/CommandLine.cpp.o.d"
  "CMakeFiles/selgen_support.dir/Error.cpp.o"
  "CMakeFiles/selgen_support.dir/Error.cpp.o.d"
  "CMakeFiles/selgen_support.dir/Multicombination.cpp.o"
  "CMakeFiles/selgen_support.dir/Multicombination.cpp.o.d"
  "CMakeFiles/selgen_support.dir/Statistics.cpp.o"
  "CMakeFiles/selgen_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/selgen_support.dir/StringUtils.cpp.o"
  "CMakeFiles/selgen_support.dir/StringUtils.cpp.o.d"
  "libselgen_support.a"
  "libselgen_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selgen_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
