file(REMOVE_RECURSE
  "libselgen_support.a"
)
