# Empty compiler generated dependencies file for selgen_support.
# This may be replaced when dependencies are built.
