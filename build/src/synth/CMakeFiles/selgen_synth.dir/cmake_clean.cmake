file(REMOVE_RECURSE
  "CMakeFiles/selgen_synth.dir/Cegis.cpp.o"
  "CMakeFiles/selgen_synth.dir/Cegis.cpp.o.d"
  "CMakeFiles/selgen_synth.dir/Encoding.cpp.o"
  "CMakeFiles/selgen_synth.dir/Encoding.cpp.o.d"
  "CMakeFiles/selgen_synth.dir/Synthesizer.cpp.o"
  "CMakeFiles/selgen_synth.dir/Synthesizer.cpp.o.d"
  "libselgen_synth.a"
  "libselgen_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selgen_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
