file(REMOVE_RECURSE
  "libselgen_synth.a"
)
