# Empty dependencies file for selgen_synth.
# This may be replaced when dependencies are built.
