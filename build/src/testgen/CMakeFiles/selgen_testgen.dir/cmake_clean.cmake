file(REMOVE_RECURSE
  "CMakeFiles/selgen_testgen.dir/TestCaseGenerator.cpp.o"
  "CMakeFiles/selgen_testgen.dir/TestCaseGenerator.cpp.o.d"
  "libselgen_testgen.a"
  "libselgen_testgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selgen_testgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
