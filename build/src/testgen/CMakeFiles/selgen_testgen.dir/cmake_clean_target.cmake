file(REMOVE_RECURSE
  "libselgen_testgen.a"
)
