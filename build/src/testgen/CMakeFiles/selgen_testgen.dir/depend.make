# Empty dependencies file for selgen_testgen.
# This may be replaced when dependencies are built.
