
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/x86/AddressingMode.cpp" "src/x86/CMakeFiles/selgen_x86.dir/AddressingMode.cpp.o" "gcc" "src/x86/CMakeFiles/selgen_x86.dir/AddressingMode.cpp.o.d"
  "/root/repo/src/x86/CondCode.cpp" "src/x86/CMakeFiles/selgen_x86.dir/CondCode.cpp.o" "gcc" "src/x86/CMakeFiles/selgen_x86.dir/CondCode.cpp.o.d"
  "/root/repo/src/x86/Emulator.cpp" "src/x86/CMakeFiles/selgen_x86.dir/Emulator.cpp.o" "gcc" "src/x86/CMakeFiles/selgen_x86.dir/Emulator.cpp.o.d"
  "/root/repo/src/x86/Goals.cpp" "src/x86/CMakeFiles/selgen_x86.dir/Goals.cpp.o" "gcc" "src/x86/CMakeFiles/selgen_x86.dir/Goals.cpp.o.d"
  "/root/repo/src/x86/MachineIR.cpp" "src/x86/CMakeFiles/selgen_x86.dir/MachineIR.cpp.o" "gcc" "src/x86/CMakeFiles/selgen_x86.dir/MachineIR.cpp.o.d"
  "/root/repo/src/x86/MachinePasses.cpp" "src/x86/CMakeFiles/selgen_x86.dir/MachinePasses.cpp.o" "gcc" "src/x86/CMakeFiles/selgen_x86.dir/MachinePasses.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/semantics/CMakeFiles/selgen_semantics.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/selgen_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/selgen_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/selgen_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
