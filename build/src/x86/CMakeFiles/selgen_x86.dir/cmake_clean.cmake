file(REMOVE_RECURSE
  "CMakeFiles/selgen_x86.dir/AddressingMode.cpp.o"
  "CMakeFiles/selgen_x86.dir/AddressingMode.cpp.o.d"
  "CMakeFiles/selgen_x86.dir/CondCode.cpp.o"
  "CMakeFiles/selgen_x86.dir/CondCode.cpp.o.d"
  "CMakeFiles/selgen_x86.dir/Emulator.cpp.o"
  "CMakeFiles/selgen_x86.dir/Emulator.cpp.o.d"
  "CMakeFiles/selgen_x86.dir/Goals.cpp.o"
  "CMakeFiles/selgen_x86.dir/Goals.cpp.o.d"
  "CMakeFiles/selgen_x86.dir/MachineIR.cpp.o"
  "CMakeFiles/selgen_x86.dir/MachineIR.cpp.o.d"
  "CMakeFiles/selgen_x86.dir/MachinePasses.cpp.o"
  "CMakeFiles/selgen_x86.dir/MachinePasses.cpp.o.d"
  "libselgen_x86.a"
  "libselgen_x86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selgen_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
