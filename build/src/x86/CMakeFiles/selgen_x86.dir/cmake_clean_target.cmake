file(REMOVE_RECURSE
  "libselgen_x86.a"
)
