# Empty compiler generated dependencies file for selgen_x86.
# This may be replaced when dependencies are built.
