file(REMOVE_RECURSE
  "CMakeFiles/test_bitvalue.dir/test_bitvalue.cpp.o"
  "CMakeFiles/test_bitvalue.dir/test_bitvalue.cpp.o.d"
  "test_bitvalue"
  "test_bitvalue.pdb"
  "test_bitvalue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitvalue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
