# Empty compiler generated dependencies file for test_bitvalue.
# This may be replaced when dependencies are built.
