file(REMOVE_RECURSE
  "CMakeFiles/test_bitvalue_vs_z3.dir/test_bitvalue_vs_z3.cpp.o"
  "CMakeFiles/test_bitvalue_vs_z3.dir/test_bitvalue_vs_z3.cpp.o.d"
  "test_bitvalue_vs_z3"
  "test_bitvalue_vs_z3.pdb"
  "test_bitvalue_vs_z3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitvalue_vs_z3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
