# Empty compiler generated dependencies file for test_bitvalue_vs_z3.
# This may be replaced when dependencies are built.
