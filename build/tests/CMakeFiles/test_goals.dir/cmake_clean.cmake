file(REMOVE_RECURSE
  "CMakeFiles/test_goals.dir/test_goals.cpp.o"
  "CMakeFiles/test_goals.dir/test_goals.cpp.o.d"
  "test_goals"
  "test_goals.pdb"
  "test_goals[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_goals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
