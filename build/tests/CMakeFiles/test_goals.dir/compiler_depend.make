# Empty compiler generated dependencies file for test_goals.
# This may be replaced when dependencies are built.
