file(REMOVE_RECURSE
  "CMakeFiles/test_ir_graph.dir/test_ir_graph.cpp.o"
  "CMakeFiles/test_ir_graph.dir/test_ir_graph.cpp.o.d"
  "test_ir_graph"
  "test_ir_graph.pdb"
  "test_ir_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
