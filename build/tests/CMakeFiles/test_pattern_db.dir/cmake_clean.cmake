file(REMOVE_RECURSE
  "CMakeFiles/test_pattern_db.dir/test_pattern_db.cpp.o"
  "CMakeFiles/test_pattern_db.dir/test_pattern_db.cpp.o.d"
  "test_pattern_db"
  "test_pattern_db.pdb"
  "test_pattern_db[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pattern_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
