# Empty dependencies file for test_pattern_db.
# This may be replaced when dependencies are built.
