file(REMOVE_RECURSE
  "CMakeFiles/test_refsel.dir/test_refsel.cpp.o"
  "CMakeFiles/test_refsel.dir/test_refsel.cpp.o.d"
  "test_refsel"
  "test_refsel.pdb"
  "test_refsel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_refsel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
