# Empty dependencies file for test_refsel.
# This may be replaced when dependencies are built.
