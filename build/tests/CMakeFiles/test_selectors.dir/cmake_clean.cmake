file(REMOVE_RECURSE
  "CMakeFiles/test_selectors.dir/test_selectors.cpp.o"
  "CMakeFiles/test_selectors.dir/test_selectors.cpp.o.d"
  "test_selectors"
  "test_selectors.pdb"
  "test_selectors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
