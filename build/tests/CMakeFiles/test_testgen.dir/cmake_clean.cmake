file(REMOVE_RECURSE
  "CMakeFiles/test_testgen.dir/test_testgen.cpp.o"
  "CMakeFiles/test_testgen.dir/test_testgen.cpp.o.d"
  "test_testgen"
  "test_testgen.pdb"
  "test_testgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_testgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
