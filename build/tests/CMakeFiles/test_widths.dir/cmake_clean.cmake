file(REMOVE_RECURSE
  "CMakeFiles/test_widths.dir/test_widths.cpp.o"
  "CMakeFiles/test_widths.dir/test_widths.cpp.o.d"
  "test_widths"
  "test_widths.pdb"
  "test_widths[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_widths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
