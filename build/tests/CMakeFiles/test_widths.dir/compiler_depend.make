# Empty compiler generated dependencies file for test_widths.
# This may be replaced when dependencies are built.
