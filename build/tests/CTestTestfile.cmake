# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bitvalue[1]_include.cmake")
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_ir_graph[1]_include.cmake")
include("/root/repo/build/tests/test_interpreter[1]_include.cmake")
include("/root/repo/build/tests/test_normalizer[1]_include.cmake")
include("/root/repo/build/tests/test_memory_model[1]_include.cmake")
include("/root/repo/build/tests/test_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_x86[1]_include.cmake")
include("/root/repo/build/tests/test_goals[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_matcher[1]_include.cmake")
include("/root/repo/build/tests/test_pattern_db[1]_include.cmake")
include("/root/repo/build/tests/test_selectors[1]_include.cmake")
include("/root/repo/build/tests/test_testgen[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_widths[1]_include.cmake")
include("/root/repo/build/tests/test_smt[1]_include.cmake")
include("/root/repo/build/tests/test_refsel[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_bitvalue_vs_z3[1]_include.cmake")
include("/root/repo/build/tests/test_lowering[1]_include.cmake")
