file(REMOVE_RECURSE
  "CMakeFiles/selgen-compile.dir/selgen-compile.cpp.o"
  "CMakeFiles/selgen-compile.dir/selgen-compile.cpp.o.d"
  "selgen-compile"
  "selgen-compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selgen-compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
