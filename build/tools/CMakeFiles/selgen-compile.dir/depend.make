# Empty dependencies file for selgen-compile.
# This may be replaced when dependencies are built.
