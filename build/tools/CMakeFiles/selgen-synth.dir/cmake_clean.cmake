file(REMOVE_RECURSE
  "CMakeFiles/selgen-synth.dir/selgen-synth.cpp.o"
  "CMakeFiles/selgen-synth.dir/selgen-synth.cpp.o.d"
  "selgen-synth"
  "selgen-synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selgen-synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
