# Empty compiler generated dependencies file for selgen-synth.
# This may be replaced when dependencies are built.
