file(REMOVE_RECURSE
  "CMakeFiles/selgen-testgen.dir/selgen-testgen.cpp.o"
  "CMakeFiles/selgen-testgen.dir/selgen-testgen.cpp.o.d"
  "selgen-testgen"
  "selgen-testgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selgen-testgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
