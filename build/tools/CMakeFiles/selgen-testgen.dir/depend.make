# Empty dependencies file for selgen-testgen.
# This may be replaced when dependencies are built.
