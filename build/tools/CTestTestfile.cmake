# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_synth_help "/root/repo/build/tools/selgen-synth" "--help")
set_tests_properties(tool_synth_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_compile_help "/root/repo/build/tools/selgen-compile" "--help")
set_tests_properties(tool_compile_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_testgen_help "/root/repo/build/tools/selgen-testgen" "--help")
set_tests_properties(tool_testgen_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_pipeline "sh" "-c" "/root/repo/build/tools/selgen-synth --goals neg_r,not_r --budget 10 --output tool-pipeline.dat && /root/repo/build/tools/selgen-testgen --library tool-pipeline.dat --output-dir tool-pipeline-tests && /root/repo/build/tools/selgen-compile --library tool-pipeline.dat --benchmark 175.vpr")
set_tests_properties(tool_pipeline PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
