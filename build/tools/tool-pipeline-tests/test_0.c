#include <stdint.h>

/* goal: neg_r; pattern: Minus(a0) */
uint8_t test_0(uint8_t a0) {
  uint8_t t0 = (uint8_t)(-a0);
  return t0;
}
