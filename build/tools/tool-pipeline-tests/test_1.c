#include <stdint.h>

/* goal: not_r; pattern: Not(a0) */
uint8_t test_1(uint8_t a0) {
  uint8_t t0 = (uint8_t)(~a0);
  return t0;
}
