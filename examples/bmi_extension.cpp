//===- bmi_extension.cpp - The artifact's bmi.sh workflow -----------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// Reproduces the artifact's bmi.sh experiment: "extend libFirm's
// handwritten instruction selector with a synthesized instruction
// selector that supports new instructions". We synthesize rules for
// the BMI bit-manipulation instructions (andn, blsi, blsmsk, blsr),
// generate test cases, and show that the reference compilers miss
// most of the patterns while the synthesized selector covers all of
// them — including the paper's showcase x + (x | -x) -> blsr.
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"
#include "isel/GeneratedSelector.h"
#include "refsel/ReferenceSelectors.h"
#include "synth/Synthesizer.h"
#include "testgen/TestCaseGenerator.h"

#include <cstdio>

using namespace selgen;

int main() {
  const unsigned Width = 8;
  SmtContext Smt;
  GoalLibrary Goals = GoalLibrary::build(Width, GoalLibrary::allGroups());

  // Synthesize the BMI rule library (total-pattern mode: the canonical
  // idioms are total functions, see DESIGN.md Section 4).
  PatternDatabase Library;
  for (const char *Name : {"andn", "blsr", "blsi", "blsmsk"}) {
    const GoalInstruction *Goal = Goals.find(Name);
    SynthesisOptions Options;
    Options.Width = Width;
    Options.MaxPatternSize = Goal->MaxPatternSize;
    Options.RequireTotalPatterns = true;
    Options.QueryTimeoutMs = 30000;
    Options.TimeBudgetSeconds = 60;
    Synthesizer Synth(Smt, Options);
    GoalSynthesisResult Result = Synth.synthesize(*Goal->Spec);
    std::printf("%-7s %zu patterns at size %u (%.1fs)\n", Name,
                Result.Patterns.size(), Result.MinimalSize, Result.Seconds);
    for (Graph &Pattern : Result.Patterns)
      Library.add(Name, std::move(Pattern));
  }
  Library.filterNonNormalized();
  Library.sortSpecificFirst();
  std::printf("BMI rule library: %zu rules after post-processing\n\n",
              Library.size());

  // Compile every generated test case with the synthesized selector
  // and the two reference compilers (run-tests.sh's comparison).
  GeneratedSelector Synthesized(Library, Goals);
  PatternDatabase GnuRules = buildGnuLikeRules(Width);
  PatternDatabase ClangRules = buildClangLikeRules(Width);
  auto Gnu = makeReferenceSelector("gnu-like", GnuRules, Goals);
  auto Clang = makeReferenceSelector("clang-like", ClangRules, Goals);

  MissingPatternReport Report = runMissingPatternExperiment(
      Library, Width, {&Synthesized, Gnu.get(), Clang.get()},
      /*ValidationRuns=*/20);

  std::printf("%-55s %5s %5s %5s\n", "pattern", "synth", "gnu", "clang");
  for (const MissingPatternRow &Row : Report.Rows)
    std::printf("%-55s %5u %5u %5u%s%s\n",
                (Row.GoalName + ": " + Row.PatternExpression).c_str(),
                Row.InstructionCounts[0], Row.InstructionCounts[1],
                Row.InstructionCounts[2],
                Row.Missing[1] && Row.Missing[2] ? "  <- both miss" : "",
                Row.BehaviourMismatch ? "  MISMATCH" : "");

  std::printf("\nsummary: %u tests; synthesized selector misses %u, "
              "gnu-like %u, clang-like %u, both references %u\n",
              Report.TotalTests, Report.TotalMissing[0],
              Report.TotalMissing[1], Report.TotalMissing[2],
              Report.MissingInAllReferences);
  std::printf("(the artifact's observation: \"libFirm with the synthesized "
              "instruction selector can\nhandle all patterns, but the other "
              "compilers miss some of them\")\n");
  return Report.TotalMissing[0] == 0 ? 0 : 1;
}
