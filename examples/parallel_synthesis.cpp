//===- parallel_synthesis.cpp - Section 5.5 aggregation workflow ----------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// The paper's Section 5.5 workflow as an API example: "Either we can
// run the synthesizer in parallel on multiple machines, or we can
// first synthesize patterns for a basic set of instructions and expand
// on these as needed." This program
//   1. synthesizes a basic rule set with the multi-threaded driver,
//   2. separately synthesizes an extension group (as a second machine
//      or a later session would),
//   3. merges the two databases and shows the selector picking up the
//      new rules — incremental extension without re-synthesis.
//
//===----------------------------------------------------------------------===//

#include "ir/Normalizer.h"
#include "isel/GeneratedSelector.h"
#include "pattern/ParallelBuilder.h"
#include "support/Timer.h"

#include <cstdio>

using namespace selgen;

namespace {

/// f(a, b) = popcount-ish bit trick mix exercising both rule sets.
Function makeProbeFunction(unsigned Width) {
  Function F("probe", Width);
  BasicBlock *Entry = F.createBlock(
      "entry", {Sort::memory(), Sort::value(Width), Sort::value(Width)});
  Graph &G = Entry->body();
  NodeRef ClearLowest = G.createBinary( // blsr shape.
      Opcode::And, G.arg(1),
      G.createBinary(Opcode::Sub, G.arg(1),
                     G.createConst(BitValue(Width, 1))));
  NodeRef Mixed = G.createBinary(Opcode::Xor, ClearLowest, G.arg(2));
  Entry->setReturn({G.arg(0), Mixed});
  Function Result = std::move(F);
  normalizeFunction(Result);
  return Result;
}

size_t countGoalUses(const MachineFunction &MF, MOpcode Op) {
  size_t Count = 0;
  for (const auto &Block : MF.blocks())
    for (const MachineInstr &Instr : Block->instructions())
      Count += Instr.Op == Op ? 1 : 0;
  return Count;
}

} // namespace

int main() {
  const unsigned Width = 8;
  GoalLibrary Goals = GoalLibrary::build(Width, {"Basic", "Bmi"});

  SynthesisOptions Options;
  Options.Width = Width;
  Options.QueryTimeoutMs = 30000;
  Options.TimeBudgetSeconds = 15;

  // Step 1: the basic set, on "machine A" (multi-threaded driver).
  Timer Clock;
  GoalLibrary BasicGoals = GoalLibrary::subset(
      GoalLibrary::build(Width, {"Basic"}),
      {"mov_ri", "add_rr", "sub_rr", "and_rr", "xor_rr", "neg_r", "not_r"});
  PatternDatabase BasicDb =
      synthesizeRuleLibraryParallel(BasicGoals, Options, /*NumThreads=*/0);
  std::printf("machine A: %zu basic rules in %.1fs\n", BasicDb.size(),
              Clock.elapsedSeconds());

  // Without the BMI extension the probe's blsr idiom costs and+sub.
  Function Probe = makeProbeFunction(Width);
  {
    GeneratedSelector Selector(BasicDb, Goals);
    SelectionResult Selected = Selector.select(Probe);
    std::printf("basic-only selector: %u instructions, %zu blsr\n",
                Selected.MF->numInstructions(),
                countGoalUses(*Selected.MF, MOpcode::Blsr));
  }

  // Step 2: the BMI extension, on "machine B".
  Clock.reset();
  GoalLibrary BmiGoals = GoalLibrary::build(Width, {"Bmi"});
  PatternDatabase BmiDb = synthesizeRuleLibraryParallel(
      BmiGoals, Options, /*NumThreads=*/0, nullptr,
      /*TotalModeGoals=*/{"andn", "blsr", "blsi", "blsmsk"});
  std::printf("machine B: %zu BMI rules in %.1fs\n", BmiDb.size(),
              Clock.elapsedSeconds());

  // Step 3: aggregate and re-generate the selector (Section 5.5).
  BasicDb.merge(std::move(BmiDb));
  BasicDb.filterNonNormalized();
  BasicDb.sortSpecificFirst();
  GeneratedSelector Extended(BasicDb, Goals);
  SelectionResult Selected = Extended.select(Probe);
  std::printf("merged selector (%zu rules): %u instructions, %zu blsr\n",
              BasicDb.size(), Selected.MF->numInstructions(),
              countGoalUses(*Selected.MF, MOpcode::Blsr));
  std::printf("%s", printMachineFunction(*Selected.MF).c_str());

  return countGoalUses(*Selected.MF, MOpcode::Blsr) == 1 ? 0 : 1;
}
