//===- pattern_encoding.cpp - Paper Figure 1 walkthrough ------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// Reproduces Figure 1 of the paper as a runnable program: the IR
// pattern for "an addition instruction that loads one of its operands
// from memory" (Figure 1a), the location assignment the
// location-variable encoding chooses for it (Figure 1b), and the
// partially evaluated postcondition Q+ (Figure 1c).
//
//===----------------------------------------------------------------------===//

#include "ir/GraphViz.h"
#include "ir/Printer.h"
#include "synth/Cegis.h"
#include "synth/Encoding.h"
#include "x86/Goals.h"

#include <cstdio>

using namespace selgen;

int main() {
  const unsigned Width = 8; // The paper uses 32; the shape is identical.
  SmtContext Smt;

  // The goal: add with a source memory operand. Its interface is the
  // pattern's interface: arguments (memory, pointer, register) and
  // results (memory, sum) — exactly Figure 1a.
  GoalLibrary Goals = GoalLibrary::build(Width, {"Binary"});
  const GoalInstruction *Goal = Goals.find("add_rm_b");

  std::printf("goal instruction: %s\n", Goal->Name.c_str());
  std::printf("  Sa = [");
  for (unsigned I = 0; I < Goal->Spec->argSorts().size(); ++I)
    std::printf("%s%s", I ? ", " : "",
                Goal->Spec->argSorts()[I].str().c_str());
  std::printf("]\n  Sr = [");
  for (unsigned I = 0; I < Goal->Spec->resultSorts().size(); ++I)
    std::printf("%s%s", I ? ", " : "",
                Goal->Spec->resultSorts()[I].str().c_str());
  std::printf("]\n\n");

  // The template multiset I = {Add, Load} of Example 2.
  ProgramEncoding Encoding(Smt, Width, *Goal->Spec,
                           {Opcode::Add, Opcode::Load});

  std::printf("location variables (the decision variables of the "
              "synthesis query):\n");
  for (const z3::expr &Var : Encoding.decisionVariables())
    std::printf("  %s : %s\n", Var.decl().name().str().c_str(),
                Var.get_sort().to_string().c_str());

  // Ask the solver for any well-formed assignment with a concrete
  // instantiation attached, then reconstruct the pattern it encodes —
  // the paper's Figure 1b/1c step in reverse.
  SmtSolver Solver(Smt);
  Solver.add(Encoding.wellFormed());

  // Pin the solution to the Figure 1 pattern by requiring the
  // synthesis condition for a couple of test cases.
  std::vector<TestCase> Tests =
      makeInitialTests(*Goal->Spec, Width, Smt, 42, 3);
  // (Reusing the CEGIS machinery: one complete run.)
  CegisOptions Options;
  Options.MaxPatterns = 1;
  CegisOutcome Outcome = runCegisAllPatterns(
      Smt, Width, *Goal->Spec, {Opcode::Add, Opcode::Load}, Tests, Options);

  if (Outcome.Patterns.empty()) {
    std::printf("no pattern found (unexpected)\n");
    return 1;
  }
  const Graph &Pattern = Outcome.Patterns[0];
  std::printf("\nsynthesized pattern (Figure 1a):\n%s",
              printGraph(Pattern).c_str());
  std::printf("\nas an expression: %s\n",
              printGraphExpression(Pattern).c_str());

  std::printf("\nwell-formedness constraint phi_wf (excerpt, Section 5.1: "
              "consistency via\n'distinct', sort-correct sources, "
              "acyclicity):\n");
  std::string WellFormed = Encoding.wellFormed().to_string();
  std::printf("%.600s%s\n", WellFormed.c_str(),
              WellFormed.size() > 600 ? "\n  ..." : "");

  std::printf("\nthe synthesis ran %u synthesis queries, %u verification "
              "queries, and %u counterexamples\n",
              Outcome.SynthesisQueries, Outcome.VerificationQueries,
              Outcome.Counterexamples);

  std::printf("\nGraphviz rendering of the pattern (pipe into "
              "`dot -Tsvg`):\n%s",
              graphToDot(Pattern, "figure1").c_str());
  return 0;
}
