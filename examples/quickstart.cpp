//===- quickstart.cpp - selgen in five minutes ----------------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// The whole pipeline on one page:
//   1. pick goal machine instructions,
//   2. synthesize all minimal IR patterns for them (iterative CEGIS),
//   3. generate an instruction selector from the rule library,
//   4. compile an IR function and run the machine code.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"
#include "isel/GeneratedSelector.h"
#include "pattern/PatternDatabase.h"
#include "synth/Synthesizer.h"
#include "x86/Emulator.h"
#include "x86/Goals.h"

#include <cstdio>

using namespace selgen;

int main() {
  const unsigned Width = 8; // The engine is width-agnostic; 8 is fast.
  SmtContext Smt;

  // 1. Goal instructions: a few x86 integer instructions with formal
  //    semantics (see src/x86/Goals.cpp for the whole library).
  GoalLibrary Goals = GoalLibrary::build(Width, {"Basic", "Bmi"});
  const char *Wanted[] = {"mov_ri", "neg_r", "add_rr", "xor_rr",
                          "cmp_jl", "andn"};

  // 2. Synthesize all minimal IR patterns per goal (Algorithm 2).
  PatternDatabase Library;
  for (const char *Name : Wanted) {
    const GoalInstruction *Goal = Goals.find(Name);
    SynthesisOptions Options;
    Options.Width = Width;
    Options.MaxPatternSize = Goal->MaxPatternSize;
    Options.QueryTimeoutMs = 30000;
    Synthesizer Synth(Smt, Options);
    GoalSynthesisResult Result = Synth.synthesize(*Goal->Spec);
    std::printf("%-8s -> %zu minimal patterns (size %u, %.2fs):\n", Name,
                Result.Patterns.size(), Result.MinimalSize, Result.Seconds);
    for (size_t I = 0; I < Result.Patterns.size() && I < 4; ++I)
      std::printf("           %s\n",
                  printGraphExpression(Result.Patterns[I]).c_str());
    for (Graph &Pattern : Result.Patterns)
      Library.add(Name, std::move(Pattern));
  }

  // 3. Post-process (Sections 5.5/5.6) and generate the selector.
  Library.filterNonNormalized();
  Library.sortSpecificFirst();
  GeneratedSelector Selector(Library, Goals);
  std::printf("\nrule library: %zu rules -> selector with %zu usable "
              "rules\n",
              Library.size(), Selector.numRules());

  // 4. Compile f(a, b) = -(a ^ b) + (~a & b) and run it.
  Function F("demo", Width);
  BasicBlock *Entry = F.createBlock(
      "entry", {Sort::memory(), Sort::value(Width), Sort::value(Width)});
  {
    Graph &G = Entry->body();
    NodeRef Mixed = G.createBinary(Opcode::Xor, G.arg(1), G.arg(2));
    NodeRef AndNot = G.createBinary(
        Opcode::And, G.createUnary(Opcode::Not, G.arg(1)), G.arg(2));
    NodeRef Sum = G.createBinary(
        Opcode::Add, G.createUnary(Opcode::Minus, Mixed), AndNot);
    Entry->setReturn({G.arg(0), Sum});
  }

  SelectionResult Selected = Selector.select(F);
  std::printf("\ncompiled with the synthesized selector "
              "(coverage %.0f%%):\n%s\n",
              100 * Selected.coverage(),
              printMachineFunction(*Selected.MF).c_str());

  std::map<MReg, BitValue> Regs;
  const auto &ArgRegs = Selected.MF->entry()->ArgRegs;
  BitValue A(Width, 0x35), B(Width, 0x1F);
  Regs[ArgRegs[0]] = A;
  Regs[ArgRegs[1]] = B;
  MachineRunResult Run = runMachineFunction(*Selected.MF, Regs,
                                            MemoryState());
  uint64_t Expected =
      ((-(0x35 ^ 0x1F)) + (~0x35 & 0x1F)) & 0xFF;
  std::printf("f(0x35, 0x1f) = %s (expected 0x%02lx) in %lu cycles\n",
              Run.ReturnValues[0].toHexString().c_str(),
              (unsigned long)Expected, (unsigned long)Run.Cycles);
  return Run.ReturnValues[0].zextValue() == Expected ? 0 : 1;
}
