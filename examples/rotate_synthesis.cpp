//===- rotate_synthesis.cpp - Synthesizing a 5-operation pattern ----------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// The paper's largest patterns have 7 operations (Table 2), found over
// four days of compute. This example shows how the same engine finds a
// 5-operation pattern in seconds when the operation alphabet is
// restricted — synthesizing the classic rotate idiom
//     rol x, 1  <=>  (x << 1) | (x >> (w - 1))
// from {Or, Shl, Shr, Const} only. It also demonstrates why rotates by
// a *symbolic* amount have no finite pattern: the two shift amounts
// (c and w - c) are related constants, which the location-variable
// encoding cannot tie to a symbolic immediate (the paper's Section 6
// "Handling Compile-Time Constants" limitation).
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"
#include "synth/Synthesizer.h"
#include "x86/Goals.h"

#include <cstdio>

using namespace selgen;

int main() {
  const unsigned Width = 8;
  SmtContext Smt;
  GoalLibrary Goals = GoalLibrary::build(Width, {"Binary"});

  for (const char *Name : {"rol1_r", "ror1_r", "rol4_r"}) {
    const GoalInstruction *Goal = Goals.find(Name);
    if (!Goal) {
      std::printf("goal %s missing\n", Name);
      return 1;
    }

    SynthesisOptions Options;
    Options.Width = Width;
    Options.MaxPatternSize = 5;
    // The alphabet restriction: rotates only need shifts, or, and
    // constants. With the full 17-operation alphabet, size-5 deepening
    // would enumerate tens of thousands of multisets (Section 5.4's
    // search-space discussion); with 4 operations it is 56.
    Options.Alphabet = {Opcode::Or, Opcode::Shl, Opcode::Shr,
                        Opcode::Const};
    Options.RequireTotalPatterns = true; // Rotates are total functions.
    Options.QueryTimeoutMs = 60000;

    Synthesizer Synth(Smt, Options);
    GoalSynthesisResult Result = Synth.synthesize(*Goal->Spec);

    std::printf("%s: %zu patterns at minimal size %u in %.1fs "
                "(%lu multisets considered)\n",
                Name, Result.Patterns.size(), Result.MinimalSize,
                Result.Seconds,
                (unsigned long)Result.MultisetsConsidered);
    for (size_t I = 0; I < Result.Patterns.size() && I < 4; ++I)
      std::printf("    %s\n",
                  printGraphExpression(Result.Patterns[I]).c_str());
    if (Result.Patterns.empty())
      return 1;
  }

  std::printf("\n(with the full alphabet the same search is feasible but "
              "slow — exactly the paper's\niterative-deepening trade-off; "
              "see bench_40_search_space for the numbers)\n");
  return 0;
}
