//===- selector_pipeline.cpp - Compiling a workload end to end ------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// Compiles one synthetic CINT2000-profile workload with the hand-tuned
// baseline selector and with a selector generated from hand-curated
// reference rules, prints both machine-code listings, and compares
// dynamic cost on the emulator — the per-program view of Table 1.
//
//===----------------------------------------------------------------------===//

#include "eval/Workloads.h"
#include "isel/GeneratedSelector.h"
#include "isel/HandwrittenSelector.h"
#include "refsel/ReferenceSelectors.h"
#include "support/Rng.h"
#include "x86/Emulator.h"

#include <cstdio>
#include <cstring>

using namespace selgen;

int main(int argc, char **argv) {
  const unsigned Width = 8;
  std::string Benchmark = argc > 1 ? argv[1] : "186.crafty";

  const WorkloadProfile *Profile = nullptr;
  for (const WorkloadProfile &Candidate : cint2000Profiles())
    if (Candidate.Name == Benchmark)
      Profile = &Candidate;
  if (!Profile) {
    std::printf("unknown benchmark %s; available:\n", Benchmark.c_str());
    for (const WorkloadProfile &Candidate : cint2000Profiles())
      std::printf("  %s\n", Candidate.Name.c_str());
    return 1;
  }

  WorkloadProfile Small = *Profile;
  Small.BodyOps = 14; // Keep the listing readable.
  Small.Iterations = 25;
  Function F = buildWorkload(Small, Width);
  std::printf("workload %s: %u IR operations in %zu blocks\n\n",
              Small.Name.c_str(), F.numOperations(), F.blocks().size());

  HandwrittenSelector Handwritten;
  GoalLibrary Goals = GoalLibrary::build(Width, GoalLibrary::allGroups());
  PatternDatabase Rules = buildGnuLikeRules(Width);
  GeneratedSelector Generated(Rules, Goals);

  SelectionResult Hand = Handwritten.select(F);
  SelectionResult Gen = Generated.select(F);

  std::printf("--- handwritten selector (%u instructions) ---\n%s\n",
              Hand.MF->numInstructions(),
              printMachineFunction(*Hand.MF).c_str());
  std::printf("--- generated selector (%u instructions, coverage "
              "%.0f%%) ---\n%s\n",
              Gen.MF->numInstructions(), 100 * Gen.coverage(),
              printMachineFunction(*Gen.MF).c_str());

  // Run both and compare against the IR interpreter.
  Rng Random(7);
  uint64_t HandCycles = 0, GenCycles = 0;
  bool AllMatch = true;
  for (int Run = 0; Run < 5; ++Run) {
    std::vector<BitValue> Args = {Random.nextBitValue(Width),
                                  Random.nextBitValue(Width),
                                  Random.nextBitValue(Width)};
    MemoryState Memory;
    for (int B = 0; B < 256; ++B)
      Memory.storeByte(B, static_cast<uint8_t>(Random.nextBelow(256)));
    FunctionResult Reference = runFunction(F, Args, Memory, 1u << 22);

    for (auto [Selected, Cycles] :
         {std::pair{&Hand, &HandCycles}, std::pair{&Gen, &GenCycles}}) {
      std::map<MReg, BitValue> Regs;
      const auto &ArgRegs = Selected->MF->entry()->ArgRegs;
      for (size_t I = 0; I < ArgRegs.size(); ++I)
        Regs[ArgRegs[I]] = Args[I];
      MachineRunResult Machine =
          runMachineFunction(*Selected->MF, Regs, Memory, 1u << 24);
      *Cycles += Machine.Cycles;
      AllMatch &= !Reference.ReturnValues.empty() &&
                  Machine.ReturnValues.size() == 1 &&
                  Machine.ReturnValues[0] == Reference.ReturnValues[0];
    }
  }

  std::printf("dynamic cost over 5 runs: handwritten %lu cycles, "
              "generated %lu cycles (%.1f%%); oracle check: %s\n",
              (unsigned long)HandCycles, (unsigned long)GenCycles,
              100.0 * GenCycles / HandCycles,
              AllMatch ? "ok" : "MISMATCH");
  return AllMatch ? 0 : 1;
}
