//===- Dataflow.cpp - Known-bits and value-range dataflow --------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"

#include "support/Error.h"

#include <algorithm>

using namespace selgen;

namespace {

/// The mask with the low \p Count bits set.
BitValue lowMask(unsigned Width, unsigned Count) {
  if (Count == 0)
    return BitValue::zero(Width);
  if (Count >= Width)
    return BitValue::allOnes(Width);
  return BitValue::allOnes(Width).lshr(Width - Count);
}

const BitValue &uminOf(const BitValue &A, const BitValue &B) {
  return A.ult(B) ? A : B;
}
const BitValue &umaxOf(const BitValue &A, const BitValue &B) {
  return A.ult(B) ? B : A;
}
const BitValue &sminOf(const BitValue &A, const BitValue &B) {
  return A.slt(B) ? A : B;
}
const BitValue &smaxOf(const BitValue &A, const BitValue &B) {
  return A.slt(B) ? B : A;
}

/// Number of low bits whose value is known (contiguously from bit 0).
unsigned knownTrailingBits(const BitValue &KnownZero,
                           const BitValue &KnownOne) {
  BitValue Unknown = KnownZero.bitOr(KnownOne).bitNot();
  return Unknown.isZero() ? KnownZero.width() : Unknown.countTrailingZeros();
}

/// Number of low bits known to hold zero (contiguously from bit 0).
unsigned knownTrailingZeros(const BitValue &KnownZero) {
  BitValue NotKnown = KnownZero.bitNot();
  return NotKnown.isZero() ? KnownZero.width() : NotKnown.countTrailingZeros();
}

} // namespace

//===----------------------------------------------------------------------===//
// ValueFact basics
//===----------------------------------------------------------------------===//

ValueFact::ValueFact(unsigned Width)
    : KnownZero(BitValue::zero(Width)), KnownOne(BitValue::zero(Width)),
      UMin(BitValue::zero(Width)), UMax(BitValue::allOnes(Width)),
      SMin(BitValue::signBit(Width)),
      SMax(BitValue::signBit(Width).bitNot()) {}

ValueFact ValueFact::constant(const BitValue &Value) {
  ValueFact F(Value.width());
  F.KnownOne = Value;
  F.KnownZero = Value.bitNot();
  F.UMin = F.UMax = Value;
  F.SMin = F.SMax = Value;
  return F;
}

ValueFact ValueFact::fromKnownBits(const BitValue &Zeros,
                                   const BitValue &Ones) {
  ValueFact F(Zeros.width());
  F.KnownZero = Zeros.bitAnd(Ones.bitNot()); // Keep the invariant.
  F.KnownOne = Ones;
  F.tighten();
  return F;
}

ValueFact ValueFact::fromUnsignedRange(const BitValue &Lo,
                                       const BitValue &Hi) {
  ValueFact F(Lo.width());
  F.UMin = uminOf(Lo, Hi);
  F.UMax = umaxOf(Lo, Hi);
  F.tighten();
  return F;
}

ValueFact ValueFact::fromSignedRange(const BitValue &Lo, const BitValue &Hi) {
  ValueFact F(Lo.width());
  F.SMin = sminOf(Lo, Hi);
  F.SMax = smaxOf(Lo, Hi);
  F.tighten();
  return F;
}

std::optional<BitValue> ValueFact::asConstant() const {
  if (isConstant())
    return UMin;
  return std::nullopt;
}

bool ValueFact::isTop() const { return *this == ValueFact(width()); }

bool ValueFact::contains(const BitValue &Value) const {
  if (!Value.bitAnd(KnownZero).isZero())
    return false;
  if (Value.bitAnd(KnownOne) != KnownOne)
    return false;
  if (Value.ult(UMin) || UMax.ult(Value))
    return false;
  if (Value.slt(SMin) || SMax.slt(Value))
    return false;
  return true;
}

ValueFact ValueFact::join(const ValueFact &Other) const {
  ValueFact F(width());
  F.KnownZero = KnownZero.bitAnd(Other.KnownZero);
  F.KnownOne = KnownOne.bitAnd(Other.KnownOne);
  F.UMin = uminOf(UMin, Other.UMin);
  F.UMax = umaxOf(UMax, Other.UMax);
  F.SMin = sminOf(SMin, Other.SMin);
  F.SMax = smaxOf(SMax, Other.SMax);
  F.tighten();
  return F;
}

ValueFact ValueFact::meet(const ValueFact &Other) const {
  ValueFact F(width());
  F.KnownZero = KnownZero.bitOr(Other.KnownZero);
  F.KnownOne = KnownOne.bitOr(Other.KnownOne);
  if (!F.KnownZero.bitAnd(F.KnownOne).isZero())
    return ValueFact(width()); // Contradiction: degrade to top.
  F.UMin = umaxOf(UMin, Other.UMin);
  F.UMax = uminOf(UMax, Other.UMax);
  F.SMin = smaxOf(SMin, Other.SMin);
  F.SMax = sminOf(SMax, Other.SMax);
  if (F.UMin.ugt(F.UMax) || F.SMin.sgt(F.SMax))
    return ValueFact(width());
  F.tighten();
  return F;
}

bool ValueFact::operator==(const ValueFact &Other) const {
  return KnownZero == Other.KnownZero && KnownOne == Other.KnownOne &&
         UMin == Other.UMin && UMax == Other.UMax && SMin == Other.SMin &&
         SMax == Other.SMax;
}

void ValueFact::tighten() {
  unsigned W = width();
  for (int Round = 0; Round < 2; ++Round) {
    // Known bits bound the unsigned range: the largest member has a
    // one wherever the bit is not known zero, the smallest is exactly
    // the known ones.
    UMax = uminOf(UMax, KnownZero.bitNot());
    UMin = umaxOf(UMin, KnownOne);

    // The common leading prefix of UMin and UMax is known outright.
    if (UMin == UMax) {
      KnownOne = UMin;
      KnownZero = UMin.bitNot();
    } else if (!UMin.ugt(UMax)) {
      BitValue Diff = UMin.bitXor(UMax);
      unsigned PrefixLen = Diff.countLeadingZeros();
      if (PrefixLen > 0) {
        BitValue PrefixMask = lowMask(W, PrefixLen).shl(W - PrefixLen);
        KnownOne = KnownOne.bitOr(UMin.bitAnd(PrefixMask));
        KnownZero = KnownZero.bitOr(UMin.bitNot().bitAnd(PrefixMask));
      }
    }

    // Same-sign members order identically under both comparisons, so
    // the ranges constrain each other.
    if (!UMax.isNegative() || UMin.isNegative()) {
      SMin = smaxOf(SMin, UMin);
      SMax = sminOf(SMax, UMax);
    }
    if (!SMin.isNegative() || SMax.isNegative()) {
      UMin = umaxOf(UMin, SMin);
      UMax = uminOf(UMax, SMax);
    }

    // Defensive: an over-tightened empty intersection (possible only
    // around undefined executions) degrades back to full ranges.
    if (UMin.ugt(UMax)) {
      UMin = BitValue::zero(W);
      UMax = BitValue::allOnes(W);
    }
    if (SMin.sgt(SMax)) {
      SMin = BitValue::signBit(W);
      SMax = BitValue::signBit(W).bitNot();
    }
  }
}

//===----------------------------------------------------------------------===//
// Transfer functions
//===----------------------------------------------------------------------===//

namespace {

/// a + b (+1): the common core of Add, Sub (a + ~b + 1), and Minus.
ValueFact transferAddLike(const ValueFact &A, const ValueFact &B,
                          bool CarryIn) {
  unsigned W = A.width();
  ValueFact F(W);
  BitValue Carry(W + 1, CarryIn ? 1 : 0);

  // Unsigned range in W+1 bits: exact modulo 2^W when both interval
  // endpoints wrap equally often.
  BitValue Lo = A.umin().zext(W + 1).add(B.umin().zext(W + 1)).add(Carry);
  BitValue Hi = A.umax().zext(W + 1).add(B.umax().zext(W + 1)).add(Carry);
  if (Lo.bit(W) == Hi.bit(W))
    F = F.meet(ValueFact::fromUnsignedRange(Lo.trunc(W), Hi.trunc(W)));

  // Signed range: exact when both endpoints fit back into W bits.
  BitValue SLo = A.smin().sext(W + 1).add(B.smin().sext(W + 1)).add(Carry);
  BitValue SHi = A.smax().sext(W + 1).add(B.smax().sext(W + 1)).add(Carry);
  if (SLo.trunc(W).sext(W + 1) == SLo && SHi.trunc(W).sext(W + 1) == SHi)
    F = F.meet(ValueFact::fromSignedRange(SLo.trunc(W), SHi.trunc(W)));

  // Low bits are exact while both operands' low bits are known: the
  // carry into bit i depends only on bits below i.
  unsigned K = std::min(knownTrailingBits(A.knownZero(), A.knownOne()),
                        knownTrailingBits(B.knownZero(), B.knownOne()));
  if (K > 0) {
    BitValue Sum = A.knownOne().add(B.knownOne());
    if (CarryIn)
      Sum = Sum.add(BitValue(W, 1));
    BitValue Mask = lowMask(W, K);
    F = F.meet(ValueFact::fromKnownBits(Sum.bitNot().bitAnd(Mask),
                                        Sum.bitAnd(Mask)));
  }
  return F;
}

ValueFact transferNot(const ValueFact &A) {
  ValueFact F = ValueFact::fromKnownBits(A.knownOne(), A.knownZero());
  // Bitwise complement reverses both orders.
  F = F.meet(ValueFact::fromUnsignedRange(A.umax().bitNot(),
                                          A.umin().bitNot()));
  return F.meet(ValueFact::fromSignedRange(A.smax().bitNot(),
                                           A.smin().bitNot()));
}

ValueFact transferAnd(const ValueFact &A, const ValueFact &B) {
  ValueFact F = ValueFact::fromKnownBits(A.knownZero().bitOr(B.knownZero()),
                                         A.knownOne().bitAnd(B.knownOne()));
  // Clearing bits never increases the unsigned value.
  BitValue Hi = uminOf(A.umax(), B.umax());
  return F.meet(ValueFact::fromUnsignedRange(BitValue::zero(A.width()), Hi));
}

ValueFact transferOr(const ValueFact &A, const ValueFact &B) {
  ValueFact F = ValueFact::fromKnownBits(A.knownZero().bitAnd(B.knownZero()),
                                         A.knownOne().bitOr(B.knownOne()));
  // Setting bits never decreases the unsigned value.
  BitValue Lo = umaxOf(A.umin(), B.umin());
  return F.meet(
      ValueFact::fromUnsignedRange(Lo, BitValue::allOnes(A.width())));
}

ValueFact transferXor(const ValueFact &A, const ValueFact &B) {
  BitValue Ones = A.knownOne().bitAnd(B.knownZero()).bitOr(
      A.knownZero().bitAnd(B.knownOne()));
  BitValue Zeros = A.knownZero().bitAnd(B.knownZero()).bitOr(
      A.knownOne().bitAnd(B.knownOne()));
  return ValueFact::fromKnownBits(Zeros, Ones);
}

ValueFact transferMul(const ValueFact &A, const ValueFact &B) {
  unsigned W = A.width();
  ValueFact F(W);

  // Range: exact when the product of the maxima cannot wrap.
  BitValue WideMax = A.umax().zext(2 * W).mul(B.umax().zext(2 * W));
  if (WideMax.countLeadingZeros() >= W)
    F = F.meet(ValueFact::fromUnsignedRange(A.umin().mul(B.umin()),
                                            A.umax().mul(B.umax())));

  // Trailing zeros add up: (a * 2^i) * (b * 2^j) = ab * 2^(i+j).
  unsigned TZ = std::min(W, knownTrailingZeros(A.knownZero()) +
                                knownTrailingZeros(B.knownZero()));
  if (TZ > 0)
    F = F.meet(ValueFact::fromKnownBits(lowMask(W, TZ),
                                        BitValue::zero(W)));
  return F;
}

/// One shift by a single concrete in-range amount.
ValueFact shiftByConstAmount(Opcode Op, const ValueFact &A, unsigned C) {
  unsigned W = A.width();
  switch (Op) {
  case Opcode::Shl: {
    ValueFact F = ValueFact::fromKnownBits(
        A.knownZero().shl(C).bitOr(lowMask(W, C)), A.knownOne().shl(C));
    // The range shifts exactly when the topmost set bit cannot fall off.
    if (A.umax().countLeadingZeros() >= C)
      F = F.meet(
          ValueFact::fromUnsignedRange(A.umin().shl(C), A.umax().shl(C)));
    return F;
  }
  case Opcode::Shr: {
    ValueFact F = ValueFact::fromKnownBits(
        A.knownZero().lshr(C).bitOr(lowMask(W, C).shl(W - C)),
        A.knownOne().lshr(C));
    return F.meet(
        ValueFact::fromUnsignedRange(A.umin().lshr(C), A.umax().lshr(C)));
  }
  case Opcode::Shrs: {
    // ashr on the masks is itself correct: a known sign bit propagates
    // through the matching mask, an unknown sign fills neither.
    ValueFact F = ValueFact::fromKnownBits(A.knownZero().ashr(C),
                                           A.knownOne().ashr(C));
    return F.meet(
        ValueFact::fromSignedRange(A.smin().ashr(C), A.smax().ashr(C)));
  }
  default:
    SELGEN_UNREACHABLE("not a shift opcode");
  }
}

ValueFact transferShift(Opcode Op, const ValueFact &A, const ValueFact &B) {
  unsigned W = A.width();
  // An amount that may reach the width makes the operation potentially
  // undefined; any result is then sound, so nothing useful is known.
  if (B.umax().uge(BitValue(W, W)))
    return ValueFact(W);
  unsigned AmtLo = unsigned(B.umin().zextValue());
  unsigned AmtHi = unsigned(B.umax().zextValue());
  std::optional<ValueFact> F;
  for (unsigned C = AmtLo; C <= AmtHi; ++C) {
    if (!B.contains(BitValue(W, C)))
      continue; // Known bits exclude this amount.
    ValueFact One = shiftByConstAmount(Op, A, C);
    F = F ? F->join(One) : One;
  }
  return F ? *F : ValueFact(W);
}

} // namespace

ValueFact ValueFact::transferBinary(Opcode Op, const ValueFact &A,
                                    const ValueFact &B) {
  unsigned W = A.width();

  // Singleton operands fold exactly (shifts only when defined).
  if (A.isConstant() && B.isConstant()) {
    const BitValue X = *A.asConstant();
    const BitValue Y = *B.asConstant();
    switch (Op) {
    case Opcode::Add:
      return constant(X.add(Y));
    case Opcode::Sub:
      return constant(X.sub(Y));
    case Opcode::Mul:
      return constant(X.mul(Y));
    case Opcode::And:
      return constant(X.bitAnd(Y));
    case Opcode::Or:
      return constant(X.bitOr(Y));
    case Opcode::Xor:
      return constant(X.bitXor(Y));
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::Shrs: {
      if (Y.uge(BitValue(W, W)))
        return ValueFact(W); // Undefined: everything is sound.
      unsigned C = unsigned(Y.zextValue());
      return constant(Op == Opcode::Shl   ? X.shl(C)
                      : Op == Opcode::Shr ? X.lshr(C)
                                          : X.ashr(C));
    }
    default:
      SELGEN_UNREACHABLE("not a binary transfer opcode");
    }
  }

  switch (Op) {
  case Opcode::Add:
    return transferAddLike(A, B, /*CarryIn=*/false);
  case Opcode::Sub:
    return transferAddLike(A, transferNot(B), /*CarryIn=*/true);
  case Opcode::Mul:
    return transferMul(A, B);
  case Opcode::And:
    return transferAnd(A, B);
  case Opcode::Or:
    return transferOr(A, B);
  case Opcode::Xor:
    return transferXor(A, B);
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Shrs:
    return transferShift(Op, A, B);
  default:
    SELGEN_UNREACHABLE("not a binary transfer opcode");
  }
}

ValueFact ValueFact::transferUnary(Opcode Op, const ValueFact &A) {
  switch (Op) {
  case Opcode::Not:
    return transferNot(A);
  case Opcode::Minus:
    // -a = ~a + 1.
    return transferAddLike(transferNot(A),
                           constant(BitValue::zero(A.width())),
                           /*CarryIn=*/true);
  default:
    SELGEN_UNREACHABLE("not a unary transfer opcode");
  }
}

std::optional<bool> ValueFact::evalRelation(Relation Rel, const ValueFact &A,
                                            const ValueFact &B) {
  switch (Rel) {
  case Relation::Eq: {
    if (A.isConstant() && B.isConstant())
      return *A.asConstant() == *B.asConstant();
    // Disjoint ranges or conflicting known bits exclude equality.
    if (A.UMax.ult(B.UMin) || B.UMax.ult(A.UMin))
      return false;
    if (A.SMax.slt(B.SMin) || B.SMax.slt(A.SMin))
      return false;
    if (!A.KnownOne.bitAnd(B.KnownZero).isZero() ||
        !B.KnownOne.bitAnd(A.KnownZero).isZero())
      return false;
    return std::nullopt;
  }
  case Relation::Ne: {
    std::optional<bool> Eq = evalRelation(Relation::Eq, A, B);
    if (Eq)
      return !*Eq;
    return std::nullopt;
  }
  case Relation::Ult:
    if (A.UMax.ult(B.UMin))
      return true;
    if (A.UMin.uge(B.UMax))
      return false;
    return std::nullopt;
  case Relation::Ule:
    if (A.UMax.ule(B.UMin))
      return true;
    if (A.UMin.ugt(B.UMax))
      return false;
    return std::nullopt;
  case Relation::Ugt:
    return evalRelation(Relation::Ult, B, A);
  case Relation::Uge:
    return evalRelation(Relation::Ule, B, A);
  case Relation::Slt:
    if (A.SMax.slt(B.SMin))
      return true;
    if (A.SMin.sge(B.SMax))
      return false;
    return std::nullopt;
  case Relation::Sle:
    if (A.SMax.sle(B.SMin))
      return true;
    if (A.SMin.sgt(B.SMax))
      return false;
    return std::nullopt;
  case Relation::Sgt:
    return evalRelation(Relation::Slt, B, A);
  case Relation::Sge:
    return evalRelation(Relation::Sle, B, A);
  }
  SELGEN_UNREACHABLE("bad relation");
}

//===----------------------------------------------------------------------===//
// GraphFacts
//===----------------------------------------------------------------------===//

const ValueFact &GraphFacts::fact(NodeRef Ref) {
  ValueKey Key{Ref.Def, Ref.Index};
  auto It = Facts.find(Key);
  if (It != Facts.end())
    return It->second;

  const Node *N = Ref.Def;
  unsigned W = G.width();
  ValueFact F(W);
  switch (N->opcode()) {
  case Opcode::Const:
    F = ValueFact::constant(N->constValue());
    break;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Shrs:
    F = ValueFact::transferBinary(N->opcode(), fact(N->operand(0)),
                                  fact(N->operand(1)));
    break;
  case Opcode::Not:
  case Opcode::Minus:
    F = ValueFact::transferUnary(N->opcode(), fact(N->operand(0)));
    break;
  case Opcode::Mux: {
    std::optional<bool> Cond = boolFact(N->operand(0));
    if (Cond)
      F = fact(N->operand(*Cond ? 1 : 2));
    else
      F = fact(N->operand(1)).join(fact(N->operand(2)));
    break;
  }
  case Opcode::Arg:
  case Opcode::Load: // The loaded value is unconstrained.
  default:
    break; // Top.
  }
  return Facts.emplace(Key, std::move(F)).first->second;
}

std::optional<bool> GraphFacts::boolFact(NodeRef Ref) {
  ValueKey Key{Ref.Def, Ref.Index};
  auto It = BoolFacts.find(Key);
  if (It != BoolFacts.end())
    return It->second;

  std::optional<bool> Known;
  const Node *N = Ref.Def;
  if (N->opcode() == Opcode::Cmp)
    Known = ValueFact::evalRelation(N->relation(), fact(N->operand(0)),
                                    fact(N->operand(1)));
  BoolFacts.emplace(Key, Known);
  return Known;
}

bool GraphFacts::provesShiftInRange(const Node *Shift) {
  unsigned W = G.width();
  return fact(Shift->operand(1)).umax().ult(BitValue(W, W));
}

bool GraphFacts::provesShiftOutOfRange(const Node *Shift) {
  unsigned W = G.width();
  return fact(Shift->operand(1)).umin().uge(BitValue(W, W));
}

std::vector<const Node *> GraphFacts::unprovenShifts() {
  std::vector<const Node *> Result;
  for (const auto &NPtr : G.nodes()) {
    const Node *N = NPtr.get();
    Opcode Op = N->opcode();
    if (Op != Opcode::Shl && Op != Opcode::Shr && Op != Opcode::Shrs)
      continue;
    if (!provesShiftInRange(N))
      Result.push_back(N);
  }
  return Result;
}
