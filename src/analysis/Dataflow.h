//===- Dataflow.h - Known-bits and value-range dataflow ----------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A forward dataflow framework over mini-Firm graphs. Each value-sorted
/// result gets a ValueFact: known-bits masks plus unsigned and signed
/// ranges, all over BitValue so every width the IR supports works. The
/// graphs are acyclic single-block bodies, so one bottom-up pass per
/// value suffices; GraphFacts memoizes facts on demand.
///
/// Soundness contract: a fact's concretization over-approximates the
/// set of values the node can take on any *defined* execution. Where an
/// operation has undefined behavior (shifts by an amount >= width), any
/// fact is vacuously sound, and the transfer functions return top. The
/// exhaustive w8 tests and the Z3 validity queries in test_analysis.cpp
/// pin this contract down per opcode.
///
/// On top of the facts sits the UB-freedom analysis: a shift whose
/// amount fact proves 0 <= amount < width needs no runtime
/// precondition re-check (SelectionEngine), and a shift whose amount
/// fact proves amount >= width can never execute defined (selgen-lint
/// flags the rule).
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_ANALYSIS_DATAFLOW_H
#define SELGEN_ANALYSIS_DATAFLOW_H

#include "ir/Graph.h"
#include "support/BitValue.h"

#include <map>
#include <optional>
#include <vector>

namespace selgen {

/// Known-bits + unsigned/signed range abstraction of one bitvector
/// value. Invariants (maintained by every constructor and transfer):
/// KnownZero & KnownOne == 0, UMin <=u UMax, SMin <=s SMax, and every
/// concrete member satisfies all four constraint families.
class ValueFact {
public:
  /// The top fact: nothing known.
  explicit ValueFact(unsigned Width);

  static ValueFact top(unsigned Width) { return ValueFact(Width); }

  /// The singleton fact of one concrete value.
  static ValueFact constant(const BitValue &Value);

  /// A fact from explicit known-bit masks (ranges start unconstrained
  /// and are tightened from the masks).
  static ValueFact fromKnownBits(const BitValue &Zeros, const BitValue &Ones);

  /// A fact from an unsigned range [Lo, Hi] (inclusive, Lo <=u Hi).
  static ValueFact fromUnsignedRange(const BitValue &Lo, const BitValue &Hi);

  /// A fact from a signed range [Lo, Hi] (inclusive, Lo <=s Hi).
  static ValueFact fromSignedRange(const BitValue &Lo, const BitValue &Hi);

  unsigned width() const { return KnownZero.width(); }
  const BitValue &knownZero() const { return KnownZero; }
  const BitValue &knownOne() const { return KnownOne; }
  const BitValue &umin() const { return UMin; }
  const BitValue &umax() const { return UMax; }
  const BitValue &smin() const { return SMin; }
  const BitValue &smax() const { return SMax; }

  /// True if the fact pins the value down to a single constant.
  bool isConstant() const { return UMin == UMax; }
  std::optional<BitValue> asConstant() const;

  /// True if nothing is known (the top fact).
  bool isTop() const;

  /// Membership of a concrete value in the concretization.
  bool contains(const BitValue &Value) const;

  /// Least upper bound: the union over-approximation used at Mux.
  ValueFact join(const ValueFact &Other) const;

  /// Greatest lower bound: intersects two facts about the *same*
  /// value (used to combine independently derived constraint
  /// families). A contradictory intersection degrades to top, which is
  /// sound: contradictions only arise on undefined executions.
  ValueFact meet(const ValueFact &Other) const;

  bool operator==(const ValueFact &Other) const;

  /// Transfer function of a binary integer opcode (Add..Shrs). UB
  /// inputs (shift amounts >= width) yield top.
  static ValueFact transferBinary(Opcode Op, const ValueFact &A,
                                  const ValueFact &B);

  /// Transfer function of Not/Minus.
  static ValueFact transferUnary(Opcode Op, const ValueFact &A);

  /// Decides a comparison from the operand facts if possible.
  static std::optional<bool> evalRelation(Relation Rel, const ValueFact &A,
                                          const ValueFact &B);

private:
  /// Cross-propagates the constraint families (known bits <-> unsigned
  /// range <-> signed range) by sound intersections.
  void tighten();

  BitValue KnownZero; ///< Bits known to be 0.
  BitValue KnownOne;  ///< Bits known to be 1.
  BitValue UMin, UMax; ///< Unsigned range, inclusive.
  BitValue SMin, SMax; ///< Signed range, inclusive (signed order).
};

/// On-demand, memoized facts for every value of one graph. The graph
/// must outlive this object and must not mutate under it; nodes added
/// after construction are still handled (the normalizer grows its
/// output graph while querying).
class GraphFacts {
public:
  explicit GraphFacts(const Graph &G) : G(G) {}

  GraphFacts(const GraphFacts &) = delete;
  GraphFacts &operator=(const GraphFacts &) = delete;

  /// The fact of a value-sorted reference.
  const ValueFact &fact(NodeRef Ref);

  /// Three-valued knowledge about a bool-sorted reference (Cmp
  /// results): nullopt when undecided.
  std::optional<bool> boolFact(NodeRef Ref);

  /// UB-freedom: proves 0 <= amount < width for one Shl/Shr/Shrs node.
  bool provesShiftInRange(const Node *Shift);

  /// Proves the shift amount is *always* out of range: the operation
  /// can never execute with defined behavior.
  bool provesShiftOutOfRange(const Node *Shift);

  /// Shift nodes of the graph whose precondition the analysis cannot
  /// discharge (creation order).
  std::vector<const Node *> unprovenShifts();

private:
  using ValueKey = std::pair<const Node *, unsigned>;

  const Graph &G;
  std::map<ValueKey, ValueFact> Facts;
  std::map<ValueKey, std::optional<bool>> BoolFacts;
};

} // namespace selgen

#endif // SELGEN_ANALYSIS_DATAFLOW_H
