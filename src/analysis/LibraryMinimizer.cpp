//===- LibraryMinimizer.cpp - Proof-carrying dead-rule elimination --------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/LibraryMinimizer.h"

#include "isel/PreparedLibrary.h"
#include "support/AtomicFile.h"
#include "support/Json.h"
#include "support/Statistics.h"

#include <map>
#include <sstream>

using namespace selgen;

const char *selgen::ruleClassName(RuleClass Class) {
  switch (Class) {
  case RuleClass::Live:
    return "live";
  case RuleClass::Unfireable:
    return "unfireable";
  case RuleClass::Shadowed:
    return "shadowed";
  case RuleClass::CostDominated:
    return "cost-dominated";
  }
  return "live";
}

const char *selgen::minimizePolicyName(MinimizePolicy Policy) {
  return Policy == MinimizePolicy::FirstMatch ? "first-match" : "dominated";
}

namespace {

/// What one pass over a pattern's live shift operations found.
struct ShiftAmountScan {
  bool HasLiveShift = false;
  bool AllAmountsConst = true;
  bool AnyConstOutOfRange = false;
};

} // namespace

static ShiftAmountScan scanShiftAmounts(const Graph &Pattern) {
  ShiftAmountScan Scan;
  unsigned W = Pattern.width();
  for (Node *N : Pattern.liveNodes()) {
    Opcode Op = N->opcode();
    if (Op != Opcode::Shl && Op != Opcode::Shr && Op != Opcode::Shrs)
      continue;
    Scan.HasLiveShift = true;
    const Node *Amount = N->operand(1).Def;
    if (Amount->opcode() != Opcode::Const) {
      Scan.AllAmountsConst = false;
      continue;
    }
    const BitValue &Value = Amount->constValue();
    if (Value.uge(BitValue(Value.width(), W)))
      Scan.AnyConstOutOfRange = true;
  }
  return Scan;
}

MinimizeResult selgen::minimizeLibrary(const PatternDatabase &Database,
                                       const GoalLibrary &Goals,
                                       const MinimizeOptions &Options) {
  MinimizeResult Result;
  Result.RulesBefore = Database.size();

  // Preparation makes its own defensively-sorted copy, so the input
  // database order does not matter; the goal|fingerprint key ties
  // prepared verdicts back to database rules below.
  PreparedLibrary Library(Database, Goals);
  const std::vector<PreparedRule> &Rules = Library.rules();
  Result.PreparedRules = Rules.size();
  Result.FingerprintBefore = Library.fingerprint();

  std::vector<bool> Kept(Rules.size(), true);
  Result.Classes.assign(Rules.size(), RuleClass::Live);

  // --- Unfireable rules: P+ unsatisfiable -----------------------------
  // Scoped to rules whose every live shift amount is a literal
  // constant (see the soundness contract in the header); the scan also
  // skips the SMT query unless some constant is actually out of range
  // — with all constants in range P+ is a conjunction of true ground
  // facts and trivially satisfiable.
  for (const PreparedRule &R : Rules) {
    const Graph &Pattern = R.TheRule->Pattern;
    ShiftAmountScan Scan = scanShiftAmounts(Pattern);
    if (!Scan.HasLiveShift || !Scan.AllAmountsConst ||
        !Scan.AnyConstOutOfRange)
      continue;
    // The certificate's proof obligation is P+ itself: ground by
    // construction, so the solver decides it instantly — but a fault-
    // injected or genuinely wedged solver still degrades to "keep".
    SmtContext Smt;
    SymbolicPattern Sym(Smt, Pattern, "p");
    z3::expr Conjunction = Smt.mkAnd(Sym.shiftPreconditions());
    std::ostringstream Query;
    Query << "unsat " << Conjunction;
    SmtSolver Solver(Smt);
    Solver.setTimeoutMilliseconds(Options.SmtTimeoutMs);
    Solver.add(Conjunction);
    SmtResult SatResult = Solver.check();
    ++Result.SmtQueries;
    if (SatResult != SmtResult::Unsat) {
      if (SatResult == SmtResult::Unknown)
        ++Result.SmtInconclusive;
      continue;
    }
    Kept[R.Index] = false;
    Result.Classes[R.Index] = RuleClass::Unfireable;
    DeletionCertificate Cert;
    Cert.RuleIndex = R.Index;
    Cert.Goal = R.Goal->Name;
    Cert.PatternFingerprint = crc32Hex(Pattern.fingerprint());
    Cert.Class = RuleClass::Unfireable;
    Cert.NeededSmt = true;
    Cert.SmtQueryFingerprint = crc32Hex(Query.str());
    Cert.Cost = R.Cost;
    Result.Certificates.push_back(std::move(Cert));
  }

  SubsumptionOptions SubOptions;
  SubOptions.SmtTimeoutMs = Options.SmtTimeoutMs;
  SubsumptionRelation Relation = computeSubsumption(Library, SubOptions);
  Result.SmtQueries += Relation.SmtQueries;
  Result.SmtInconclusive += Relation.SmtInconclusive;

  // Decide the remaining fates in ascending priority order so every
  // deletion can only lean on a subsumer that is itself kept: in a
  // shadow chain A > B > C, B dies citing A, and by the time C is
  // decided B is already dead — C cites the transitive survivor A.
  // Unfireable rules are already dead and never serve as survivors.
  for (const PreparedRule &B : Rules) {
    if (!Kept[B.Index])
      continue;
    const SubsumptionEdge *Survivor = nullptr;   // Lowest kept subsumer.
    const SubsumptionEdge *CostSafe = nullptr;   // ... costing no more.
    for (uint32_t EdgeIdx : Relation.SubsumedBy[B.Index]) {
      const SubsumptionEdge &Edge = Relation.Edges[EdgeIdx];
      if (!Kept[Edge.Subsumer])
        continue;
      if (!Survivor)
        Survivor = &Edge;
      const PreparedRule &A = Rules[Edge.Subsumer];
      if (!CostSafe && A.Cost.get(Options.Model) <= B.Cost.get(Options.Model))
        CostSafe = &Edge;
      if (Survivor && CostSafe)
        break;
    }
    if (!Survivor)
      continue; // Live.

    Result.Classes[B.Index] =
        CostSafe ? RuleClass::CostDominated : RuleClass::Shadowed;
    const SubsumptionEdge *Cited =
        Options.Policy == MinimizePolicy::Dominated ? CostSafe
                                                    : (CostSafe ? CostSafe
                                                                : Survivor);
    if (!Cited)
      continue; // Dominated policy, but only plain shadowing: keep.

    Kept[B.Index] = false;
    const PreparedRule &A = Rules[Cited->Subsumer];
    DeletionCertificate Cert;
    Cert.RuleIndex = B.Index;
    Cert.Goal = B.Goal->Name;
    Cert.PatternFingerprint = crc32Hex(B.TheRule->Pattern.fingerprint());
    Cert.Class = Result.Classes[B.Index];
    Cert.SubsumerIndex = A.Index;
    Cert.SubsumerGoal = A.Goal->Name;
    Cert.SubsumerPatternFingerprint =
        crc32Hex(A.TheRule->Pattern.fingerprint());
    Cert.NeededSmt = Cited->NeededSmt;
    Cert.SmtQueryFingerprint = Cited->QueryFingerprint;
    Cert.Cost = B.Cost;
    Cert.SubsumerCost = A.Cost;
    Result.Certificates.push_back(std::move(Cert));
  }

  // Rebuild the database in its original rule order. Rules the
  // preparation could not see (unresolved goals, the rootless
  // immediate-move identity, never-tried jump variants) have no
  // prepared verdict and pass through untouched.
  std::map<std::string, uint32_t> PreparedIndex;
  for (const PreparedRule &R : Rules)
    PreparedIndex.emplace(
        R.TheRule->GoalName + "|" + R.TheRule->Pattern.fingerprint(),
        R.Index);
  for (const Rule &R : Database.rules()) {
    auto It = PreparedIndex.find(R.GoalName + "|" + R.Pattern.fingerprint());
    if (It == PreparedIndex.end())
      ++Result.UnpreparedKept;
    else if (!Kept[It->second])
      continue;
    Result.Minimized.add(R.GoalName, R.Pattern.clone());
  }
  Result.RulesAfter = Result.Minimized.size();

  {
    PreparedLibrary After(Result.Minimized, Goals);
    Result.FingerprintAfter = After.fingerprint();
  }

  Statistics &Stats = Statistics::get();
  Stats.add("minimize.rules_before", static_cast<int64_t>(Result.RulesBefore));
  Stats.add("minimize.rules_after", static_cast<int64_t>(Result.RulesAfter));
  Stats.add("minimize.rules_deleted",
            static_cast<int64_t>(Result.Certificates.size()));
  Stats.add("minimize.smt_queries", static_cast<int64_t>(Result.SmtQueries));
  Stats.add("minimize.smt_inconclusive",
            static_cast<int64_t>(Result.SmtInconclusive));
  return Result;
}

std::string selgen::certificatesToJson(const MinimizeResult &Result,
                                       const MinimizeOptions &Options,
                                       const std::string &LibraryName) {
  std::ostringstream Out;
  Out << "{\n"
      << "  \"library\": \"" << jsonEscape(LibraryName) << "\",\n"
      << "  \"policy\": \"" << minimizePolicyName(Options.Policy) << "\",\n"
      << "  \"costModel\": \"" << costKindName(Options.Model) << "\",\n"
      << "  \"fingerprintBefore\": \"" << jsonEscape(Result.FingerprintBefore)
      << "\",\n"
      << "  \"fingerprintAfter\": \"" << jsonEscape(Result.FingerprintAfter)
      << "\",\n"
      << "  \"rulesBefore\": " << Result.RulesBefore << ",\n"
      << "  \"rulesAfter\": " << Result.RulesAfter << ",\n"
      << "  \"preparedRules\": " << Result.PreparedRules << ",\n"
      << "  \"unpreparedKept\": " << Result.UnpreparedKept << ",\n"
      << "  \"deleted\": " << Result.Certificates.size() << ",\n"
      << "  \"smtQueries\": " << Result.SmtQueries << ",\n"
      << "  \"smtInconclusive\": " << Result.SmtInconclusive << ",\n"
      << "  \"deletions\": [";
  bool First = true;
  for (const DeletionCertificate &C : Result.Certificates) {
    Out << (First ? "\n" : ",\n") << "    {\"ruleIndex\": " << C.RuleIndex
        << ", \"goal\": \"" << jsonEscape(C.Goal) << "\""
        << ", \"pattern\": \"" << C.PatternFingerprint << "\""
        << ", \"class\": \"" << ruleClassName(C.Class) << "\"";
    if (C.Class != RuleClass::Unfireable)
      Out << ", \"subsumerIndex\": " << C.SubsumerIndex
          << ", \"subsumerGoal\": \"" << jsonEscape(C.SubsumerGoal) << "\""
          << ", \"subsumerPattern\": \"" << C.SubsumerPatternFingerprint
          << "\"";
    Out << ", \"smtQuery\": \""
        << (C.NeededSmt ? C.SmtQueryFingerprint : std::string()) << "\""
        << ", \"cost\": {\"instructions\": " << C.Cost.Instructions
        << ", \"latency\": " << C.Cost.Latency << ", \"size\": " << C.Cost.Size
        << "}";
    if (C.Class != RuleClass::Unfireable)
      Out << ", \"subsumerCost\": {\"instructions\": "
          << C.SubsumerCost.Instructions
          << ", \"latency\": " << C.SubsumerCost.Latency
          << ", \"size\": " << C.SubsumerCost.Size << "}";
    Out << "}";
    First = false;
  }
  Out << (First ? "]" : "\n  ]") << "\n}\n";
  return Out.str();
}
