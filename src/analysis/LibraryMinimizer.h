//===- LibraryMinimizer.h - Proof-carrying dead-rule elimination -*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole-library minimization pass behind tools/selgen-minimize:
/// computes the full subsumption relation (analysis/Subsumption) over
/// a prepared library, classifies every rule as live, unfireable (its
/// shift precondition P+ is unsatisfiable), shadowed (unreachable
/// under first-match priority), or cost-dominated (never selected by
/// cost-minimal tiling under a given model either), and emits a
/// minimized library plus one machine-checkable deletion certificate
/// per removed rule.
///
/// Soundness contract (DESIGN.md section 4g):
///
/// * An unfireable deletion requires every live shift amount in the
///   pattern to be a literal constant: only then does the selection
///   engine's precondition gate reduce to the matched-constant check
///   (sound dataflow facts can never prove an out-of-range constant
///   in range), so an SMT-verified unsatisfiable P+ means the gate
///   rejects every match and the rule can never fire — under either
///   policy. Rules whose unsatisfiability flows through computed
///   amounts are kept: the runtime gate does not re-check those.
/// * A rule is deleted only against a *kept* subsumer, resolved in
///   ascending priority order — in a shadow chain A > B > C the
///   certificates for both B and C name the transitive survivor A,
///   never each other.
/// * An SMT timeout or Unknown on the entailment query keeps the rule
///   (the pair never enters the relation); minimization degrades to
///   "delete less", never to an unsound delete.
/// * Under the first-match policy, deletions preserve the selection of
///   every first-match selector byte-for-byte; the dominated policy
///   additionally requires the surviving subsumer to cost no more
///   under the chosen model, which the certificates record and the
///   benchmarks validate empirically (a more general survivor can tile
///   a subject differently, so dominance is cost-validated, not
///   proof-preserving).
/// * Rules the preparation step cannot see (unresolved goals, rootless
///   identity-move rules, inapplicable jump rules' siblings) pass
///   through untouched.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_ANALYSIS_LIBRARYMINIMIZER_H
#define SELGEN_ANALYSIS_LIBRARYMINIMIZER_H

#include "analysis/Subsumption.h"
#include "cost/CostModel.h"
#include "pattern/PatternDatabase.h"
#include "x86/Goals.h"

#include <cstdint>
#include <string>
#include <vector>

namespace selgen {

/// What the pass concluded about one prepared rule.
enum class RuleClass {
  Live,          ///< No kept subsumer; the rule stays.
  Unfireable,    ///< Shift precondition P+ unsatisfiable (and every
                 ///< live shift amount is a literal constant): the
                 ///< precondition gate rejects every match, so the
                 ///< rule can never fire under any selector.
  Shadowed,      ///< Unreachable under first-match priority.
  CostDominated, ///< Shadowed, and the kept subsumer costs no more
                 ///< under the requested model.
};

const char *ruleClassName(RuleClass Class);

/// Which deletions the pass is allowed to take.
enum class MinimizePolicy {
  /// Delete every shadowed rule. Sound for all first-match selectors
  /// (linear, automaton, server): selection is byte-identical.
  FirstMatch,
  /// Delete only cost-dominated rules: deletions the cost-minimal
  /// tiling selector can also never regret under the chosen model.
  Dominated,
};

const char *minimizePolicyName(MinimizePolicy Policy);

struct MinimizeOptions {
  unsigned SmtTimeoutMs = 10000;
  MinimizePolicy Policy = MinimizePolicy::FirstMatch;
  /// Cost model consulted for the CostDominated classification and by
  /// the Dominated policy.
  CostKind Model = CostKind::Latency;
};

/// One deletion, with everything needed to re-check it: the deleted
/// rule, the surviving subsumer the deletion leans on (unfireable
/// deletions lean on no subsumer — the subsumer fields stay empty),
/// the fingerprint of the SMT query that proved the precondition
/// entailment or unsatisfiability (empty for purely structural
/// subsumption), and the cost comparison.
struct DeletionCertificate {
  uint32_t RuleIndex = 0; ///< Prepared priority index of the deleted rule.
  std::string Goal;
  std::string PatternFingerprint; ///< crc32 hex of the canonical pattern.
  RuleClass Class = RuleClass::Shadowed;
  uint32_t SubsumerIndex = 0; ///< Prepared index of the kept survivor.
  std::string SubsumerGoal;
  std::string SubsumerPatternFingerprint;
  bool NeededSmt = false;
  std::string SmtQueryFingerprint; ///< Empty when !NeededSmt.
  RuleCost Cost;         ///< Deleted rule's cost vector.
  RuleCost SubsumerCost; ///< Survivor's cost vector.
};

struct MinimizeResult {
  PatternDatabase Minimized;
  std::vector<DeletionCertificate> Certificates;
  /// Per prepared index: the classification (deletion depends on the
  /// policy; a CostDominated rule survives nothing, a Shadowed rule
  /// survives the Dominated policy).
  std::vector<RuleClass> Classes;
  uint64_t RulesBefore = 0;    ///< Database rules in.
  uint64_t RulesAfter = 0;     ///< Database rules out.
  uint64_t PreparedRules = 0;  ///< Rules the analysis could see.
  uint64_t UnpreparedKept = 0; ///< Pass-through rules (kept verbatim).
  uint64_t SmtQueries = 0;
  uint64_t SmtInconclusive = 0; ///< Timeouts/Unknowns; each kept a rule.
  std::string FingerprintBefore; ///< Prepared-library fingerprint in.
  std::string FingerprintAfter;  ///< Prepared-library fingerprint out.
};

/// Runs the pass. \p Database should carry the shipped library
/// unfiltered (the minimizer re-sorts defensively, exactly like
/// preparation); \p Goals must outlive the call.
MinimizeResult minimizeLibrary(const PatternDatabase &Database,
                               const GoalLibrary &Goals,
                               const MinimizeOptions &Options = {});

/// Renders the deletion certificates as the JSON document CI archives.
/// \p LibraryName labels the header (typically the input .dat path).
std::string certificatesToJson(const MinimizeResult &Result,
                               const MinimizeOptions &Options,
                               const std::string &LibraryName);

} // namespace selgen

#endif // SELGEN_ANALYSIS_LIBRARYMINIMIZER_H
