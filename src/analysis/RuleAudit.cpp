//===- RuleAudit.cpp - Rule-library and IR-file linting ---------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/RuleAudit.h"

#include "analysis/Dataflow.h"
#include "ir/Normalizer.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "isel/Matcher.h"
#include "matchergen/MatcherAutomaton.h"
#include "semantics/IrSemantics.h"
#include "smt/SmtContext.h"

#include <map>
#include <sstream>
#include <utility>

using namespace selgen;

namespace {

/// Symbolic evaluation of a pattern graph without a memory model: every
/// Arg and every loaded value becomes a fresh, unconstrained constant.
/// Because the lint queries are universally quantified over all inputs
/// ("is P+ satisfiable at all", "does P_B entail P_A"), leaving memory
/// uninterpreted only widens the input space and keeps the answers
/// sound for the error severities we assign (an Unsat stays Unsat under
/// any refinement of the inputs).
class SymbolicPattern {
public:
  SymbolicPattern(SmtContext &Smt, const Graph &G, const std::string &Prefix)
      : Smt(Smt), G(G), Prefix(Prefix) {}

  /// The term of a value-sorted (node, result index) position.
  z3::expr value(const Node *Def, unsigned Index) {
    ValueKey Key{Def, Index};
    auto It = Values.find(Key);
    if (It != Values.end())
      return It->second;
    z3::expr E = computeValue(Def, Index);
    Values.emplace(Key, E);
    return E;
  }

  z3::expr value(NodeRef Ref) { return value(Ref.Def, Ref.Index); }

  /// The formula of a bool-sorted position.
  z3::expr boolean(const Node *Def, unsigned Index) {
    switch (Def->opcode()) {
    case Opcode::Cmp:
      return relationExpr(Def->relation(), value(Def->operand(0)),
                          value(Def->operand(1)));
    case Opcode::Cond: {
      z3::expr Selector = boolean(Def->operand(0).Def, Def->operand(0).Index);
      return Index == 0 ? Selector : !Selector;
    }
    case Opcode::Arg:
      return Smt.boolConst(Prefix + "_b" + std::to_string(Def->id()));
    default:
      // No other opcode produces a bool; keep the query sound anyway.
      return Smt.boolConst(Prefix + "_b" + std::to_string(Def->id()) + "_" +
                           std::to_string(Index));
    }
  }

  /// P+ of the pattern: the conjunction of 0 <= amount < width over
  /// every live shift operation (IrSemantics models exactly this
  /// precondition; everything else is total).
  std::vector<z3::expr> shiftPreconditions() {
    std::vector<z3::expr> Conjuncts;
    unsigned W = G.width();
    for (Node *N : G.liveNodes()) {
      Opcode Op = N->opcode();
      if (Op != Opcode::Shl && Op != Opcode::Shr && Op != Opcode::Shrs)
        continue;
      Conjuncts.push_back(
          z3::ult(value(N->operand(1)), Smt.literal(BitValue(W, W))));
    }
    return Conjuncts;
  }

private:
  using ValueKey = std::pair<const Node *, unsigned>;

  z3::expr computeValue(const Node *Def, unsigned Index) {
    unsigned W = G.width();
    switch (Def->opcode()) {
    case Opcode::Const:
      return Smt.literal(Def->constValue());
    case Opcode::Arg:
      return Smt.bvConst(Prefix + "_a" + std::to_string(Def->argIndex()), W);
    case Opcode::Load:
      // Result 1 is the loaded value: unconstrained without a memory
      // model.
      return Smt.bvConst(Prefix + "_ld" + std::to_string(Def->id()), W);
    case Opcode::Add:
      return value(Def->operand(0)) + value(Def->operand(1));
    case Opcode::Sub:
      return value(Def->operand(0)) - value(Def->operand(1));
    case Opcode::Mul:
      return value(Def->operand(0)) * value(Def->operand(1));
    case Opcode::And:
      return value(Def->operand(0)) & value(Def->operand(1));
    case Opcode::Or:
      return value(Def->operand(0)) | value(Def->operand(1));
    case Opcode::Xor:
      return value(Def->operand(0)) ^ value(Def->operand(1));
    case Opcode::Not:
      return ~value(Def->operand(0));
    case Opcode::Minus:
      return -value(Def->operand(0));
    case Opcode::Shl:
      return z3::shl(value(Def->operand(0)), value(Def->operand(1)));
    case Opcode::Shr:
      return z3::lshr(value(Def->operand(0)), value(Def->operand(1)));
    case Opcode::Shrs:
      return z3::ashr(value(Def->operand(0)), value(Def->operand(1)));
    case Opcode::Mux:
      return z3::ite(boolean(Def->operand(0).Def, Def->operand(0).Index),
                     value(Def->operand(1)), value(Def->operand(2)));
    default:
      // Memory tokens and other non-value positions are never asked
      // for; produce a fresh constant rather than crash.
      return Smt.bvConst(Prefix + "_x" + std::to_string(Def->id()) + "_" +
                             std::to_string(Index),
                         W);
    }
  }

  SmtContext &Smt;
  const Graph &G;
  std::string Prefix;
  std::map<ValueKey, z3::expr> Values;
};

/// The image of pattern-A value \p ARef inside pattern B's value space,
/// given a structural match of A against B. Every A operation node maps
/// through the NodeMap; A arguments map through their bindings.
std::pair<const Node *, unsigned> mappedRef(const MatchResult &Match,
                                            NodeRef ARef) {
  if (ARef.Def->opcode() == Opcode::Arg) {
    NodeRef Bound = Match.ArgBindings[ARef.Def->argIndex()];
    return {Bound.Def, Bound.Index};
  }
  return {Match.NodeMap.at(ARef.Def), ARef.Index};
}

LintFinding libraryFinding(std::string Code, std::string Severity,
                           std::string Message, const std::string &Library,
                           const PreparedRule &R) {
  LintFinding F;
  F.Code = std::move(Code);
  F.Severity = std::move(Severity);
  F.Message = std::move(Message);
  F.Library = Library;
  F.Goal = R.Goal->Name;
  F.RuleIndex = static_cast<int>(R.Index);
  return F;
}

LintFinding fileFinding(std::string Code, std::string Severity,
                        std::string Message, const std::string &File) {
  LintFinding F;
  F.Code = std::move(Code);
  F.Severity = std::move(Severity);
  F.Message = std::move(Message);
  F.File = File;
  return F;
}

/// Flags rules whose shift precondition P+ is unsatisfiable: the rule
/// can never fire on a defined execution, so it is dead weight (and,
/// since CEGIS asserts P+ during synthesis, evidence of a corrupted or
/// hand-edited library). The dataflow analysis pre-filters cheaply; one
/// SMT query per flagged rule confirms before we report an error.
void checkPreconditions(const PreparedLibrary &Library, unsigned Width,
                        const std::string &LibraryName,
                        const LintOptions &Options,
                        std::vector<LintFinding> &Findings) {
  for (const PreparedRule &R : Library.rules()) {
    const Graph &Pattern = R.TheRule->Pattern;
    GraphFacts Facts(Pattern);
    const Node *Violating = nullptr;
    for (const auto &NPtr : Pattern.nodes()) {
      Opcode Op = NPtr->opcode();
      if (Op != Opcode::Shl && Op != Opcode::Shr && Op != Opcode::Shrs)
        continue;
      if (Facts.provesShiftOutOfRange(NPtr.get())) {
        Violating = NPtr.get();
        break;
      }
    }
    if (!Violating)
      continue;

    SmtContext Smt;
    SmtSolver Solver(Smt);
    Solver.setTimeoutMilliseconds(Options.SmtTimeoutMs);
    SymbolicPattern Sym(Smt, Pattern, "p");
    Solver.add(Smt.mkAnd(Sym.shiftPreconditions()));
    SmtResult Result = Solver.check();

    std::ostringstream Msg;
    Msg << opcodeName(Violating->opcode()) << " amount is provably >= "
        << Width << " (analysis range [0x"
        << Facts.fact(Violating->operand(1)).umin().toHexString() << ", 0x"
        << Facts.fact(Violating->operand(1)).umax().toHexString() << "])";
    if (Result == SmtResult::Unsat) {
      Msg << "; SMT confirms the precondition is unsatisfiable, the rule "
             "can never fire";
      Findings.push_back(libraryFinding("unsat-precondition", "error",
                                        Msg.str(), LibraryName, R));
    } else {
      // The analysis is sound, so this branch means the solver timed
      // out (or the fact machinery regressed) — surface it, softly.
      Msg << "; SMT did not confirm (solver "
          << (Result == SmtResult::Sat ? "sat" : "unknown") << ")";
      Findings.push_back(libraryFinding("unsat-precondition", "note",
                                        Msg.str(), LibraryName, R));
    }
  }
}

/// Flags rules whose pattern is not in normal form: the compiler
/// normalizes every block body before selection, so such a pattern can
/// never appear as a subject (Section 5.6 filters them at preparation
/// time; a shipped library that still carries them wastes matching
/// work and rule-count budget).
void checkNormalization(const PreparedLibrary &Library,
                        const std::string &LibraryName,
                        std::vector<LintFinding> &Findings) {
  for (const PreparedRule &R : Library.rules())
    if (!isNormalized(R.TheRule->Pattern))
      Findings.push_back(libraryFinding(
          "non-normalized-rule", "warning",
          "pattern is not in normal form; normalized subjects can never "
          "match it",
          LibraryName, R));
}

/// Flags jump rules the selection engine can never try: the automaton
/// compiler (and the engine's candidate enumeration) only admits
/// compare-and-jump rules rooted at a Cond whose first boolean result
/// is the taken output.
void checkJumpApplicability(const PreparedLibrary &Library,
                            const std::string &LibraryName,
                            std::vector<LintFinding> &Findings) {
  for (const PreparedRule &R : Library.rules()) {
    if (!R.IsJumpRule)
      continue;
    if (R.Root->opcode() != Opcode::Cond) {
      Findings.push_back(libraryFinding(
          "inapplicable-jump-rule", "warning",
          "compare-and-jump rule is not rooted at a Cond operation; the "
          "selection engine never tries it",
          LibraryName, R));
    } else if (!R.TakenIsCondZero) {
      Findings.push_back(libraryFinding(
          "inapplicable-jump-rule", "warning",
          "compare-and-jump rule wires the taken edge to the Cond "
          "fall-through result; the selection engine never tries it",
          LibraryName, R));
    }
  }
}

/// Flags rules shadowed by an earlier, more general rule: whenever the
/// later rule's pattern matches a subject, the earlier rule already
/// matches at the same root with at least the same results, and its
/// precondition is entailed — so the later rule can never fire. The
/// discrimination tree proposes candidates (treating the later pattern
/// as a subject), a structural match plus a result-coverage check
/// confirms the shape, and an SMT query sat(P_B and not P_A) == Unsat
/// discharges the preconditions.
///
/// The same scan also powers the cost-dominated finding. Shadowing
/// alone stopped being a death sentence when the tiling selector
/// landed: a shadowed-but-cheaper rule can still fire under a cost
/// model (--selector tiling picks add_ri over the more general add_rr
/// on add(x, const) under the latency model). A rule is only truly
/// unreachable when an earlier subsumer is also no more expensive
/// under every cost-consulting shipped model (latency and size; the
/// unit model ignores rule costs and ties break toward the earlier
/// index) — then neither first-match nor any cost-minimal cover can
/// ever prefer it.
void checkShadowing(const PreparedLibrary &Library,
                    const std::string &LibraryName,
                    const LintOptions &Options,
                    std::vector<LintFinding> &Findings) {
  const std::vector<PreparedRule> &Rules = Library.rules();

  std::vector<AutomatonPattern> Patterns;
  for (const PreparedRule &R : Rules) {
    // Mirror the automaton selector: jump rules the engine never tries
    // are excluded (they get their own finding).
    if (R.IsJumpRule &&
        (R.Root->opcode() != Opcode::Cond || !R.TakenIsCondZero))
      continue;
    Patterns.push_back({&R.TheRule->Pattern, R.Root, R.IsJumpRule, R.Index});
  }
  MatcherAutomaton Automaton = MatcherAutomaton::compile(
      Patterns, Library.fingerprint(), static_cast<uint32_t>(Rules.size()));

  for (const PreparedRule &B : Rules) {
    bool BApplicableJump = B.Root->opcode() == Opcode::Cond &&
                           B.TakenIsCondZero;
    if (B.IsJumpRule && !BApplicableJump)
      continue;

    // Candidate earlier rules whose pattern structurally subsumes B's:
    // run B's own pattern through the discrimination tree as if it
    // were a subject block.
    std::vector<uint32_t> Candidates;
    if (B.IsJumpRule)
      Automaton.matchJump(B.Root->operand(0), Candidates);
    else
      Automaton.matchBody(B.Root, Candidates);

    bool ReportedShadow = false;
    bool ReportedDomination = false;
    for (uint32_t AIndex : Candidates) {
      if (AIndex >= B.Index)
        break; // Ascending order: only earlier rules shadow.
      const PreparedRule &A = Rules[AIndex];
      if (A.IsJumpRule != B.IsJumpRule)
        continue;

      const std::vector<ArgRole> &Roles = A.Goal->Spec->argRoles();
      std::optional<MatchResult> Match;
      if (B.IsJumpRule)
        Match = matchPatternValue(A.TheRule->Pattern, Roles,
                                  A.Root->operand(0), B.Root->operand(0));
      else
        Match = matchPattern(A.TheRule->Pattern, Roles, A.Root, B.Root);
      if (!Match)
        continue;

      // Terminator matching aligns the condition values, so the Cond
      // nodes themselves are outside the NodeMap; they correspond by
      // construction (both applicable jump roots with matched
      // selectors).
      if (B.IsJumpRule)
        Match->NodeMap.emplace(A.Root, B.Root);

      // A must produce every result B promises (multi-result rules
      // carry memory tokens and jump outcomes in their results).
      std::map<std::pair<const Node *, unsigned>, bool> AProvides;
      for (NodeRef Res : A.TheRule->Pattern.results())
        AProvides[mappedRef(*Match, Res)] = true;
      bool CoversResults = true;
      for (NodeRef Res : B.TheRule->Pattern.results())
        if (!AProvides.count({Res.Def, Res.Index})) {
          CoversResults = false;
          break;
        }
      if (!CoversResults)
        continue;

      // Precondition entailment: on any defined execution of B's
      // pattern, A's (mapped) precondition must hold too.
      SmtContext Smt;
      SymbolicPattern BSym(Smt, B.TheRule->Pattern, "s");
      std::vector<z3::expr> PA;
      unsigned W = B.TheRule->Pattern.width();
      for (Node *N : A.TheRule->Pattern.liveNodes()) {
        Opcode Op = N->opcode();
        if (Op != Opcode::Shl && Op != Opcode::Shr && Op != Opcode::Shrs)
          continue;
        auto [Def, Index] = mappedRef(*Match, N->operand(1));
        PA.push_back(z3::ult(BSym.value(Def, Index),
                             Smt.literal(BitValue(W, W))));
      }
      bool Entailed = true;
      if (!PA.empty()) {
        SmtSolver Solver(Smt);
        Solver.setTimeoutMilliseconds(Options.SmtTimeoutMs);
        Solver.add(Smt.mkAnd(BSym.shiftPreconditions()));
        Solver.add(!Smt.mkAnd(PA));
        Entailed = Solver.check() == SmtResult::Unsat;
      }
      if (!Entailed)
        continue;

      if (!ReportedShadow) {
        ReportedShadow = true;
        std::ostringstream Msg;
        Msg << "rule is shadowed by the more general rule #" << A.Index
            << " (goal " << A.Goal->Name
            << "): every subject this rule matches is already claimed by "
               "the earlier rule";
        Findings.push_back(libraryFinding("shadowed-rule", "warning",
                                          Msg.str(), LibraryName, B));
      }

      // Cost domination: B can never beat this subsumer under any
      // shipped cost-consulting model either. Strictly worse somewhere
      // (equal-cost duplicates are plain shadows; ties already break
      // toward A's earlier index).
      bool NoCheaperModel = B.Cost.Latency >= A.Cost.Latency &&
                            B.Cost.Size >= A.Cost.Size;
      bool StrictlyWorse = B.Cost.Latency > A.Cost.Latency ||
                           B.Cost.Size > A.Cost.Size;
      if (!ReportedDomination && NoCheaperModel && StrictlyWorse) {
        ReportedDomination = true;
        std::ostringstream Msg;
        Msg << "rule is cost-dominated by rule #" << A.Index << " (goal "
            << A.Goal->Name << "): it matches no subject rule #" << A.Index
            << " misses and costs no less under every shipped cost model "
               "(latency "
            << B.Cost.Latency << " vs " << A.Cost.Latency << ", size "
            << B.Cost.Size << " vs " << A.Cost.Size
            << "); neither first-match nor cost-minimal tiling can select "
               "it";
        Findings.push_back(libraryFinding("cost-dominated", "warning",
                                          Msg.str(), LibraryName, B));
      }
      if (ReportedShadow && ReportedDomination)
        break; // One finding of each kind per rule is enough.
    }
  }
}

void appendJsonString(std::ostringstream &Out, const std::string &S) {
  Out << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out << "\\\"";
      break;
    case '\\':
      Out << "\\\\";
      break;
    case '\n':
      Out << "\\n";
      break;
    case '\t':
      Out << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out << ' ';
      else
        Out << C;
    }
  }
  Out << '"';
}

} // namespace

std::vector<LintFinding>
selgen::auditPreparedLibrary(const PreparedLibrary &Library, unsigned Width,
                             const std::string &LibraryName,
                             const LintOptions &Options) {
  std::vector<LintFinding> Findings;
  checkNormalization(Library, LibraryName, Findings);
  checkJumpApplicability(Library, LibraryName, Findings);
  if (Options.CheckPreconditions)
    checkPreconditions(Library, Width, LibraryName, Options, Findings);
  if (Options.CheckShadowing)
    checkShadowing(Library, LibraryName, Options, Findings);
  return Findings;
}

std::vector<LintFinding> selgen::auditIrText(const std::string &Text,
                                             const std::string &FileName) {
  std::vector<LintFinding> Findings;
  std::string Error;
  std::optional<Graph> G = parseGraph(Text, &Error);
  if (!G) {
    Findings.push_back(fileFinding("malformed-ir", "error", Error, FileName));
    return Findings;
  }

  for (const std::string &Problem : verifyGraph(*G))
    Findings.push_back(fileFinding("verifier-error", "error", Problem,
                                   FileName));

  GraphFacts Facts(*G);
  unsigned W = G->width();
  for (const auto &NPtr : G->nodes()) {
    const Node *N = NPtr.get();
    Opcode Op = N->opcode();
    if (Op != Opcode::Shl && Op != Opcode::Shr && Op != Opcode::Shrs)
      continue;
    std::ostringstream Msg;
    if (Facts.provesShiftOutOfRange(N)) {
      Msg << opcodeName(Op) << " node #" << N->id()
          << " always shifts by >= " << W << ": undefined behavior";
      Findings.push_back(fileFinding("ub-shift", "error", Msg.str(),
                                     FileName));
    } else if (!Facts.provesShiftInRange(N)) {
      Msg << opcodeName(Op) << " node #" << N->id()
          << " has an unproven shift amount (range [0x"
          << Facts.fact(N->operand(1)).umin().toHexString() << ", 0x"
          << Facts.fact(N->operand(1)).umax().toHexString() << "])";
      Findings.push_back(fileFinding("unproven-shift", "note", Msg.str(),
                                     FileName));
    }
  }
  return Findings;
}

std::string selgen::findingsToJson(const std::vector<LintFinding> &Findings) {
  unsigned Errors = 0, Warnings = 0, Notes = 0;
  for (const LintFinding &F : Findings) {
    if (F.Severity == "error")
      ++Errors;
    else if (F.Severity == "warning")
      ++Warnings;
    else
      ++Notes;
  }

  std::ostringstream Out;
  Out << "{\n  \"errors\": " << Errors << ",\n  \"warnings\": " << Warnings
      << ",\n  \"notes\": " << Notes << ",\n  \"findings\": [";
  bool First = true;
  for (const LintFinding &F : Findings) {
    Out << (First ? "\n" : ",\n") << "    {\"code\": ";
    appendJsonString(Out, F.Code);
    Out << ", \"severity\": ";
    appendJsonString(Out, F.Severity);
    if (!F.Library.empty()) {
      Out << ", \"library\": ";
      appendJsonString(Out, F.Library);
    }
    if (!F.Goal.empty()) {
      Out << ", \"goal\": ";
      appendJsonString(Out, F.Goal);
    }
    if (F.RuleIndex >= 0)
      Out << ", \"ruleIndex\": " << F.RuleIndex;
    if (!F.File.empty()) {
      Out << ", \"file\": ";
      appendJsonString(Out, F.File);
    }
    Out << ", \"message\": ";
    appendJsonString(Out, F.Message);
    Out << "}";
    First = false;
  }
  Out << (First ? "]" : "\n  ]") << "\n}\n";
  return Out.str();
}

bool selgen::lintHasErrors(const std::vector<LintFinding> &Findings) {
  for (const LintFinding &F : Findings)
    if (F.Severity == "error")
      return true;
  return false;
}
