//===- RuleAudit.cpp - Rule-library and IR-file linting ---------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/RuleAudit.h"

#include "analysis/Dataflow.h"
#include "analysis/Subsumption.h"
#include "ir/Normalizer.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "semantics/IrSemantics.h"
#include "smt/SmtContext.h"
#include "support/AtomicFile.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

using namespace selgen;

namespace {

LintFinding libraryFinding(std::string Code, std::string Severity,
                           std::string Message, const std::string &Library,
                           const PreparedRule &R) {
  LintFinding F;
  F.Code = std::move(Code);
  F.Severity = std::move(Severity);
  F.Message = std::move(Message);
  F.Library = Library;
  F.Goal = R.Goal->Name;
  F.RuleIndex = static_cast<int>(R.Index);
  // Stable across reorderings and unrelated edits: a library finding
  // is identified by what it says (code) about which rule (goal +
  // canonical pattern content), never by the rule's current priority
  // index. The baseline machinery keys on this.
  F.Fingerprint = crc32Hex(F.Code + "|" + F.Goal + "|" +
                           R.TheRule->Pattern.fingerprint());
  return F;
}

LintFinding fileFinding(std::string Code, std::string Severity,
                        std::string Message, const std::string &File) {
  LintFinding F;
  F.Code = std::move(Code);
  F.Severity = std::move(Severity);
  F.Message = std::move(Message);
  F.File = File;
  F.Fingerprint = crc32Hex(F.Code + "|" + F.File + "|" + F.Message);
  return F;
}

/// Flags rules whose shift precondition P+ is unsatisfiable: the rule
/// can never fire on a defined execution, so it is dead weight (and,
/// since CEGIS asserts P+ during synthesis, evidence of a corrupted or
/// hand-edited library). The dataflow analysis pre-filters cheaply; one
/// SMT query per flagged rule confirms before we report an error.
void checkPreconditions(const PreparedLibrary &Library, unsigned Width,
                        const std::string &LibraryName,
                        const LintOptions &Options,
                        std::vector<LintFinding> &Findings) {
  for (const PreparedRule &R : Library.rules()) {
    const Graph &Pattern = R.TheRule->Pattern;
    GraphFacts Facts(Pattern);
    const Node *Violating = nullptr;
    for (const auto &NPtr : Pattern.nodes()) {
      Opcode Op = NPtr->opcode();
      if (Op != Opcode::Shl && Op != Opcode::Shr && Op != Opcode::Shrs)
        continue;
      if (Facts.provesShiftOutOfRange(NPtr.get())) {
        Violating = NPtr.get();
        break;
      }
    }
    if (!Violating)
      continue;

    SmtContext Smt;
    SmtSolver Solver(Smt);
    Solver.setTimeoutMilliseconds(Options.SmtTimeoutMs);
    SymbolicPattern Sym(Smt, Pattern, "p");
    Solver.add(Smt.mkAnd(Sym.shiftPreconditions()));
    SmtResult Result = Solver.check();

    std::ostringstream Msg;
    Msg << opcodeName(Violating->opcode()) << " amount is provably >= "
        << Width << " (analysis range [0x"
        << Facts.fact(Violating->operand(1)).umin().toHexString() << ", 0x"
        << Facts.fact(Violating->operand(1)).umax().toHexString() << "])";
    if (Result == SmtResult::Unsat) {
      Msg << "; SMT confirms the precondition is unsatisfiable, the rule "
             "can never fire";
      Findings.push_back(libraryFinding("unsat-precondition", "error",
                                        Msg.str(), LibraryName, R));
    } else {
      // The analysis is sound, so this branch means the solver timed
      // out (or the fact machinery regressed) — surface it, softly.
      Msg << "; SMT did not confirm (solver "
          << (Result == SmtResult::Sat ? "sat" : "unknown") << ")";
      Findings.push_back(libraryFinding("unsat-precondition", "note",
                                        Msg.str(), LibraryName, R));
    }
  }
}

/// Flags rules whose pattern is not in normal form: the compiler
/// normalizes every block body before selection, so such a pattern can
/// never appear as a subject (Section 5.6 filters them at preparation
/// time; a shipped library that still carries them wastes matching
/// work and rule-count budget).
void checkNormalization(const PreparedLibrary &Library,
                        const std::string &LibraryName,
                        std::vector<LintFinding> &Findings) {
  for (const PreparedRule &R : Library.rules())
    if (!isNormalized(R.TheRule->Pattern))
      Findings.push_back(libraryFinding(
          "non-normalized-rule", "warning",
          "pattern is not in normal form; normalized subjects can never "
          "match it",
          LibraryName, R));
}

/// Flags jump rules the selection engine can never try: the automaton
/// compiler (and the engine's candidate enumeration) only admits
/// compare-and-jump rules rooted at a Cond whose first boolean result
/// is the taken output.
void checkJumpApplicability(const PreparedLibrary &Library,
                            const std::string &LibraryName,
                            std::vector<LintFinding> &Findings) {
  for (const PreparedRule &R : Library.rules()) {
    if (!R.IsJumpRule)
      continue;
    if (R.Root->opcode() != Opcode::Cond) {
      Findings.push_back(libraryFinding(
          "inapplicable-jump-rule", "warning",
          "compare-and-jump rule is not rooted at a Cond operation; the "
          "selection engine never tries it",
          LibraryName, R));
    } else if (!R.TakenIsCondZero) {
      Findings.push_back(libraryFinding(
          "inapplicable-jump-rule", "warning",
          "compare-and-jump rule wires the taken edge to the Cond "
          "fall-through result; the selection engine never tries it",
          LibraryName, R));
    }
  }
}

/// Flags rules shadowed by an earlier, more general rule: whenever the
/// later rule's pattern matches a subject, the earlier rule already
/// matches at the same root with at least the same results, and its
/// precondition is entailed — so the later rule can never fire. The
/// discrimination tree proposes candidates (treating the later pattern
/// as a subject), a structural match plus a result-coverage check
/// confirms the shape, and an SMT query sat(P_B and not P_A) == Unsat
/// discharges the preconditions.
///
/// The same scan also powers the cost-dominated finding. Shadowing
/// alone stopped being a death sentence when the tiling selector
/// landed: a shadowed-but-cheaper rule can still fire under a cost
/// model (--selector tiling picks add_ri over the more general add_rr
/// on add(x, const) under the latency model). A rule is only truly
/// unreachable when an earlier subsumer is also no more expensive
/// under every cost-consulting shipped model (latency and size; the
/// unit model ignores rule costs and ties break toward the earlier
/// index) — then neither first-match nor any cost-minimal cover can
/// ever prefer it.
void checkShadowing(const PreparedLibrary &Library,
                    const std::string &LibraryName,
                    const LintOptions &Options,
                    std::vector<LintFinding> &Findings) {
  const std::vector<PreparedRule> &Rules = Library.rules();

  SubsumptionOptions SubOptions;
  SubOptions.SmtTimeoutMs = Options.SmtTimeoutMs;
  SubsumptionRelation Relation = computeSubsumption(Library, SubOptions);

  for (const PreparedRule &B : Rules) {
    // Presentation-layer dedup: by default one shadowed-rule and one
    // cost-dominated finding per rule (citing the highest-priority
    // subsumer of each kind) keeps the report readable; the minimizer
    // and --all-subsumers consumers get every pair.
    bool ReportedShadow = false;
    bool ReportedDomination = false;
    for (uint32_t EdgeIdx : Relation.SubsumedBy[B.Index]) {
      const SubsumptionEdge &Edge = Relation.Edges[EdgeIdx];
      const PreparedRule &A = Rules[Edge.Subsumer];

      if (Options.ReportAllSubsumers || !ReportedShadow) {
        ReportedShadow = true;
        std::ostringstream Msg;
        Msg << "rule is shadowed by the more general rule #" << A.Index
            << " (goal " << A.Goal->Name
            << "): every subject this rule matches is already claimed by "
               "the earlier rule";
        Findings.push_back(libraryFinding("shadowed-rule", "warning",
                                          Msg.str(), LibraryName, B));
      }

      // Cost domination: B can never beat this subsumer under any
      // shipped cost-consulting model either. Strictly worse somewhere
      // (equal-cost duplicates are plain shadows; ties already break
      // toward A's earlier index).
      bool NoCheaperModel = B.Cost.Latency >= A.Cost.Latency &&
                            B.Cost.Size >= A.Cost.Size;
      bool StrictlyWorse = B.Cost.Latency > A.Cost.Latency ||
                           B.Cost.Size > A.Cost.Size;
      if ((Options.ReportAllSubsumers || !ReportedDomination) &&
          NoCheaperModel && StrictlyWorse) {
        ReportedDomination = true;
        std::ostringstream Msg;
        Msg << "rule is cost-dominated by rule #" << A.Index << " (goal "
            << A.Goal->Name << "): it matches no subject rule #" << A.Index
            << " misses and costs no less under every shipped cost model "
               "(latency "
            << B.Cost.Latency << " vs " << A.Cost.Latency << ", size "
            << B.Cost.Size << " vs " << A.Cost.Size
            << "); neither first-match nor cost-minimal tiling can select "
               "it";
        Findings.push_back(libraryFinding("cost-dominated", "warning",
                                          Msg.str(), LibraryName, B));
      }
      if (!Options.ReportAllSubsumers && ReportedShadow && ReportedDomination)
        break; // One finding of each kind per rule is enough.
    }
  }
}

void appendJsonString(std::ostringstream &Out, const std::string &S) {
  Out << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out << "\\\"";
      break;
    case '\\':
      Out << "\\\\";
      break;
    case '\n':
      Out << "\\n";
      break;
    case '\t':
      Out << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out << ' ';
      else
        Out << C;
    }
  }
  Out << '"';
}

} // namespace

std::vector<LintFinding>
selgen::auditPreparedLibrary(const PreparedLibrary &Library, unsigned Width,
                             const std::string &LibraryName,
                             const LintOptions &Options) {
  std::vector<LintFinding> Findings;
  checkNormalization(Library, LibraryName, Findings);
  checkJumpApplicability(Library, LibraryName, Findings);
  if (Options.CheckPreconditions)
    checkPreconditions(Library, Width, LibraryName, Options, Findings);
  if (Options.CheckShadowing)
    checkShadowing(Library, LibraryName, Options, Findings);
  return Findings;
}

std::vector<LintFinding> selgen::auditIrText(const std::string &Text,
                                             const std::string &FileName) {
  std::vector<LintFinding> Findings;
  std::string Error;
  std::optional<Graph> G = parseGraph(Text, &Error);
  if (!G) {
    Findings.push_back(fileFinding("malformed-ir", "error", Error, FileName));
    return Findings;
  }

  for (const std::string &Problem : verifyGraph(*G))
    Findings.push_back(fileFinding("verifier-error", "error", Problem,
                                   FileName));

  GraphFacts Facts(*G);
  unsigned W = G->width();
  for (const auto &NPtr : G->nodes()) {
    const Node *N = NPtr.get();
    Opcode Op = N->opcode();
    if (Op != Opcode::Shl && Op != Opcode::Shr && Op != Opcode::Shrs)
      continue;
    std::ostringstream Msg;
    if (Facts.provesShiftOutOfRange(N)) {
      Msg << opcodeName(Op) << " node #" << N->id()
          << " always shifts by >= " << W << ": undefined behavior";
      Findings.push_back(fileFinding("ub-shift", "error", Msg.str(),
                                     FileName));
    } else if (!Facts.provesShiftInRange(N)) {
      Msg << opcodeName(Op) << " node #" << N->id()
          << " has an unproven shift amount (range [0x"
          << Facts.fact(N->operand(1)).umin().toHexString() << ", 0x"
          << Facts.fact(N->operand(1)).umax().toHexString() << "])";
      Findings.push_back(fileFinding("unproven-shift", "note", Msg.str(),
                                     FileName));
    }
  }
  return Findings;
}

std::string selgen::findingsToJson(const std::vector<LintFinding> &Findings,
                                   size_t Suppressed) {
  unsigned Errors = 0, Warnings = 0, Notes = 0;
  for (const LintFinding &F : Findings) {
    if (F.Severity == "error")
      ++Errors;
    else if (F.Severity == "warning")
      ++Warnings;
    else
      ++Notes;
  }

  std::ostringstream Out;
  Out << "{\n  \"errors\": " << Errors << ",\n  \"warnings\": " << Warnings
      << ",\n  \"notes\": " << Notes << ",\n  \"suppressed\": " << Suppressed
      << ",\n  \"findings\": [";
  bool First = true;
  for (const LintFinding &F : Findings) {
    Out << (First ? "\n" : ",\n") << "    {\"code\": ";
    appendJsonString(Out, F.Code);
    Out << ", \"severity\": ";
    appendJsonString(Out, F.Severity);
    if (!F.Fingerprint.empty()) {
      Out << ", \"fingerprint\": ";
      appendJsonString(Out, F.Fingerprint);
    }
    if (!F.Library.empty()) {
      Out << ", \"library\": ";
      appendJsonString(Out, F.Library);
    }
    if (!F.Goal.empty()) {
      Out << ", \"goal\": ";
      appendJsonString(Out, F.Goal);
    }
    if (F.RuleIndex >= 0)
      Out << ", \"ruleIndex\": " << F.RuleIndex;
    if (!F.File.empty()) {
      Out << ", \"file\": ";
      appendJsonString(Out, F.File);
    }
    Out << ", \"message\": ";
    appendJsonString(Out, F.Message);
    Out << "}";
    First = false;
  }
  Out << (First ? "]" : "\n  ]") << "\n}\n";
  return Out.str();
}

std::set<std::string> selgen::parseBaselineFingerprints(
    const std::string &BaselineJson) {
  // The baseline is a previously-published findings report; all we
  // need back out of it are the "fingerprint" values. A targeted scan
  // keeps us independent of the (flat-object) JSON helpers, which do
  // not parse nested documents.
  std::set<std::string> Fingerprints;
  const std::string Key = "\"fingerprint\"";
  size_t Pos = 0;
  while ((Pos = BaselineJson.find(Key, Pos)) != std::string::npos) {
    Pos += Key.size();
    while (Pos < BaselineJson.size() &&
           (BaselineJson[Pos] == ' ' || BaselineJson[Pos] == ':'))
      ++Pos;
    if (Pos >= BaselineJson.size() || BaselineJson[Pos] != '"')
      continue;
    size_t End = BaselineJson.find('"', Pos + 1);
    if (End == std::string::npos)
      break;
    Fingerprints.insert(BaselineJson.substr(Pos + 1, End - Pos - 1));
    Pos = End + 1;
  }
  return Fingerprints;
}

size_t selgen::suppressBaselinedFindings(
    std::vector<LintFinding> &Findings,
    const std::set<std::string> &Baseline) {
  size_t Before = Findings.size();
  Findings.erase(std::remove_if(Findings.begin(), Findings.end(),
                                [&](const LintFinding &F) {
                                  return !F.Fingerprint.empty() &&
                                         Baseline.count(F.Fingerprint) > 0;
                                }),
                 Findings.end());
  return Before - Findings.size();
}

bool selgen::lintHasErrors(const std::vector<LintFinding> &Findings) {
  for (const LintFinding &F : Findings)
    if (F.Severity == "error")
      return true;
  return false;
}
