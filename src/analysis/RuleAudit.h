//===- RuleAudit.h - Rule-library and IR-file linting ------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The audit engine behind tools/selgen-lint. Three kinds of subjects:
///
/// * Prepared rule libraries: rules whose shift precondition is
///   unsatisfiable (the dataflow analysis proves the amount out of
///   range, one SMT query per flagged rule confirms P+ is unsat),
///   rules shadowed by an earlier more-general rule (discrimination
///   tree walk proposes candidates, a structural pattern-as-subject
///   match plus an SMT subsumption query on the preconditions
///   confirms), rules additionally cost-dominated by such a subsumer
///   (no cheaper under any shipped cost model, so even cost-minimal
///   tiling never selects them), jump rules the selection engine can
///   never try, and rules the normalizer would reject today.
///
/// * Textual IR files: parse errors, ir::Verifier findings, and shift
///   operations whose UB-freedom the analysis cannot discharge.
///
/// Findings carry a stable machine-readable code and a severity
/// ("error" | "warning" | "note"); CI fails the build on any error.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_ANALYSIS_RULEAUDIT_H
#define SELGEN_ANALYSIS_RULEAUDIT_H

#include "isel/PreparedLibrary.h"

#include <string>
#include <vector>

namespace selgen {

/// One lint finding.
struct LintFinding {
  std::string Code;     ///< Stable finding code, e.g. "unsat-precondition".
  std::string Severity; ///< "error", "warning", or "note".
  std::string Message;  ///< Human-readable explanation.
  std::string Library;  ///< Library path (library findings only).
  std::string Goal;     ///< Goal name (library findings only).
  int RuleIndex = -1;   ///< Prepared priority index (library findings).
  std::string File;     ///< IR file path (file findings only).
};

struct LintOptions {
  unsigned SmtTimeoutMs = 10000; ///< Per-query solver budget.
  bool CheckPreconditions = true;
  bool CheckShadowing = true;
};

/// Audits a prepared rule library. \p LibraryName labels the findings
/// (typically the .dat path).
std::vector<LintFinding> auditPreparedLibrary(const PreparedLibrary &Library,
                                              unsigned Width,
                                              const std::string &LibraryName,
                                              const LintOptions &Options = {});

/// Audits one textual IR file.
std::vector<LintFinding> auditIrText(const std::string &Text,
                                     const std::string &FileName);

/// Renders findings as the JSON document CI consumes.
std::string findingsToJson(const std::vector<LintFinding> &Findings);

/// True if any finding carries severity "error".
bool lintHasErrors(const std::vector<LintFinding> &Findings);

} // namespace selgen

#endif // SELGEN_ANALYSIS_RULEAUDIT_H
