//===- RuleAudit.h - Rule-library and IR-file linting ------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The audit engine behind tools/selgen-lint. Three kinds of subjects:
///
/// * Prepared rule libraries: rules whose shift precondition is
///   unsatisfiable (the dataflow analysis proves the amount out of
///   range, one SMT query per flagged rule confirms P+ is unsat),
///   rules shadowed by an earlier more-general rule (discrimination
///   tree walk proposes candidates, a structural pattern-as-subject
///   match plus an SMT subsumption query on the preconditions
///   confirms), rules additionally cost-dominated by such a subsumer
///   (no cheaper under any shipped cost model, so even cost-minimal
///   tiling never selects them), jump rules the selection engine can
///   never try, and rules the normalizer would reject today.
///
/// * Textual IR files: parse errors, ir::Verifier findings, and shift
///   operations whose UB-freedom the analysis cannot discharge.
///
/// Findings carry a stable machine-readable code and a severity
/// ("error" | "warning" | "note"); CI fails the build on any error.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_ANALYSIS_RULEAUDIT_H
#define SELGEN_ANALYSIS_RULEAUDIT_H

#include "isel/PreparedLibrary.h"

#include <set>
#include <string>
#include <vector>

namespace selgen {

/// One lint finding.
struct LintFinding {
  std::string Code;     ///< Stable finding code, e.g. "unsat-precondition".
  std::string Severity; ///< "error", "warning", or "note".
  std::string Message;  ///< Human-readable explanation.
  std::string Library;  ///< Library path (library findings only).
  std::string Goal;     ///< Goal name (library findings only).
  int RuleIndex = -1;   ///< Prepared priority index (library findings).
  std::string File;     ///< IR file path (file findings only).
  /// Stable identity for baselining: crc32 over the finding code plus
  /// the rule's goal and canonical pattern fingerprint (library
  /// findings) or the file and message (file findings). Survives rule
  /// reordering and unrelated library edits; a changed pattern is a
  /// new finding by design.
  std::string Fingerprint;
};

struct LintOptions {
  unsigned SmtTimeoutMs = 10000; ///< Per-query solver budget.
  bool CheckPreconditions = true;
  bool CheckShadowing = true;
  /// Report every subsuming pair instead of deduplicating to one
  /// shadowed-rule and one cost-dominated finding per rule. The
  /// default keeps the human-facing report readable; consumers that
  /// need the full relation (the minimizer's certificates, relation
  /// dumps) flip this on.
  bool ReportAllSubsumers = false;
};

/// Audits a prepared rule library. \p LibraryName labels the findings
/// (typically the .dat path).
std::vector<LintFinding> auditPreparedLibrary(const PreparedLibrary &Library,
                                              unsigned Width,
                                              const std::string &LibraryName,
                                              const LintOptions &Options = {});

/// Audits one textual IR file.
std::vector<LintFinding> auditIrText(const std::string &Text,
                                     const std::string &FileName);

/// Renders findings as the JSON document CI consumes. Each finding is
/// stamped with its stable fingerprint; \p Suppressed records how many
/// findings a baseline filtered out before rendering.
std::string findingsToJson(const std::vector<LintFinding> &Findings,
                           size_t Suppressed = 0);

/// Extracts the set of finding fingerprints from a previously-published
/// findings JSON document (the --baseline file).
std::set<std::string> parseBaselineFingerprints(
    const std::string &BaselineJson);

/// Removes findings whose fingerprint appears in \p Baseline (the
/// previously-acknowledged set); returns how many were suppressed.
/// Findings without a fingerprint are never suppressed.
size_t suppressBaselinedFindings(std::vector<LintFinding> &Findings,
                                 const std::set<std::string> &Baseline);

/// True if any finding carries severity "error".
bool lintHasErrors(const std::vector<LintFinding> &Findings);

} // namespace selgen

#endif // SELGEN_ANALYSIS_RULEAUDIT_H
