//===- Subsumption.cpp - Full rule-subsumption relation ---------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Subsumption.h"

#include "matchergen/MatcherAutomaton.h"
#include "semantics/IrSemantics.h"
#include "support/AtomicFile.h"

#include <sstream>

using namespace selgen;

z3::expr SymbolicPattern::value(const Node *Def, unsigned Index) {
  ValueKey Key{Def, Index};
  auto It = Values.find(Key);
  if (It != Values.end())
    return It->second;
  z3::expr E = computeValue(Def, Index);
  Values.emplace(Key, E);
  return E;
}

z3::expr SymbolicPattern::boolean(const Node *Def, unsigned Index) {
  switch (Def->opcode()) {
  case Opcode::Cmp:
    return relationExpr(Def->relation(), value(Def->operand(0)),
                        value(Def->operand(1)));
  case Opcode::Cond: {
    z3::expr Selector = boolean(Def->operand(0).Def, Def->operand(0).Index);
    return Index == 0 ? Selector : !Selector;
  }
  case Opcode::Arg:
    return Smt.boolConst(Prefix + "_b" + std::to_string(Def->id()));
  default:
    // No other opcode produces a bool; keep the query sound anyway.
    return Smt.boolConst(Prefix + "_b" + std::to_string(Def->id()) + "_" +
                         std::to_string(Index));
  }
}

std::vector<z3::expr> SymbolicPattern::shiftPreconditions() {
  std::vector<z3::expr> Conjuncts;
  unsigned W = G.width();
  for (Node *N : G.liveNodes()) {
    Opcode Op = N->opcode();
    if (Op != Opcode::Shl && Op != Opcode::Shr && Op != Opcode::Shrs)
      continue;
    Conjuncts.push_back(
        z3::ult(value(N->operand(1)), Smt.literal(BitValue(W, W))));
  }
  return Conjuncts;
}

z3::expr SymbolicPattern::computeValue(const Node *Def, unsigned Index) {
  unsigned W = G.width();
  switch (Def->opcode()) {
  case Opcode::Const:
    return Smt.literal(Def->constValue());
  case Opcode::Arg:
    return Smt.bvConst(Prefix + "_a" + std::to_string(Def->argIndex()), W);
  case Opcode::Load:
    // Result 1 is the loaded value: unconstrained without a memory
    // model.
    return Smt.bvConst(Prefix + "_ld" + std::to_string(Def->id()), W);
  case Opcode::Add:
    return value(Def->operand(0)) + value(Def->operand(1));
  case Opcode::Sub:
    return value(Def->operand(0)) - value(Def->operand(1));
  case Opcode::Mul:
    return value(Def->operand(0)) * value(Def->operand(1));
  case Opcode::And:
    return value(Def->operand(0)) & value(Def->operand(1));
  case Opcode::Or:
    return value(Def->operand(0)) | value(Def->operand(1));
  case Opcode::Xor:
    return value(Def->operand(0)) ^ value(Def->operand(1));
  case Opcode::Not:
    return ~value(Def->operand(0));
  case Opcode::Minus:
    return -value(Def->operand(0));
  case Opcode::Shl:
    return z3::shl(value(Def->operand(0)), value(Def->operand(1)));
  case Opcode::Shr:
    return z3::lshr(value(Def->operand(0)), value(Def->operand(1)));
  case Opcode::Shrs:
    return z3::ashr(value(Def->operand(0)), value(Def->operand(1)));
  case Opcode::Mux:
    return z3::ite(boolean(Def->operand(0).Def, Def->operand(0).Index),
                   value(Def->operand(1)), value(Def->operand(2)));
  default:
    // Memory tokens and other non-value positions are never asked
    // for; produce a fresh constant rather than crash.
    return Smt.bvConst(Prefix + "_x" + std::to_string(Def->id()) + "_" +
                           std::to_string(Index),
                       W);
  }
}

std::pair<const Node *, unsigned>
selgen::mappedPatternRef(const MatchResult &Match, NodeRef ARef) {
  if (ARef.Def->opcode() == Opcode::Arg) {
    NodeRef Bound = Match.ArgBindings[ARef.Def->argIndex()];
    return {Bound.Def, Bound.Index};
  }
  return {Match.NodeMap.at(ARef.Def), ARef.Index};
}

SubsumptionRelation
selgen::computeSubsumption(const PreparedLibrary &Library,
                           const SubsumptionOptions &Options) {
  const std::vector<PreparedRule> &Rules = Library.rules();
  SubsumptionRelation Relation;
  Relation.SubsumedBy.resize(Rules.size());

  // Mirror the automaton selector: jump rules the engine never tries
  // are excluded (the lint auditor gives them their own finding; the
  // minimizer keeps them untouched because they cannot shadow or be
  // shadowed through the engine).
  std::vector<AutomatonPattern> Patterns;
  for (const PreparedRule &R : Rules) {
    if (R.IsJumpRule &&
        (R.Root->opcode() != Opcode::Cond || !R.TakenIsCondZero))
      continue;
    Patterns.push_back({&R.TheRule->Pattern, R.Root, R.IsJumpRule, R.Index});
  }
  MatcherAutomaton Automaton = MatcherAutomaton::compile(
      Patterns, Library.fingerprint(), static_cast<uint32_t>(Rules.size()));

  for (const PreparedRule &B : Rules) {
    bool BApplicableJump =
        B.Root->opcode() == Opcode::Cond && B.TakenIsCondZero;
    if (B.IsJumpRule && !BApplicableJump)
      continue;

    // Candidate earlier rules whose pattern structurally subsumes B's:
    // run B's own pattern through the discrimination tree as if it
    // were a subject block.
    std::vector<uint32_t> Candidates;
    if (B.IsJumpRule)
      Automaton.matchJump(B.Root->operand(0), Candidates);
    else
      Automaton.matchBody(B.Root, Candidates);

    for (uint32_t AIndex : Candidates) {
      if (AIndex >= B.Index)
        break; // Ascending order: only earlier rules shadow.
      const PreparedRule &A = Rules[AIndex];
      if (A.IsJumpRule != B.IsJumpRule)
        continue;

      const std::vector<ArgRole> &Roles = A.Goal->Spec->argRoles();
      std::optional<MatchResult> Match;
      if (B.IsJumpRule)
        Match = matchPatternValue(A.TheRule->Pattern, Roles,
                                  A.Root->operand(0), B.Root->operand(0));
      else
        Match = matchPattern(A.TheRule->Pattern, Roles, A.Root, B.Root);
      if (!Match)
        continue;

      // Terminator matching aligns the condition values, so the Cond
      // nodes themselves are outside the NodeMap; they correspond by
      // construction (both applicable jump roots with matched
      // selectors).
      if (B.IsJumpRule)
        Match->NodeMap.emplace(A.Root, B.Root);

      // A must produce every result B promises (multi-result rules
      // carry memory tokens and jump outcomes in their results).
      std::map<std::pair<const Node *, unsigned>, bool> AProvides;
      for (NodeRef Res : A.TheRule->Pattern.results())
        AProvides[mappedPatternRef(*Match, Res)] = true;
      bool CoversResults = true;
      for (NodeRef Res : B.TheRule->Pattern.results())
        if (!AProvides.count({Res.Def, Res.Index})) {
          CoversResults = false;
          break;
        }
      if (!CoversResults)
        continue;

      // Precondition entailment: on any defined execution of B's
      // pattern, A's (mapped) precondition must hold too.
      SmtContext Smt;
      SymbolicPattern BSym(Smt, B.TheRule->Pattern, "s");
      std::vector<z3::expr> PA;
      unsigned W = B.TheRule->Pattern.width();
      for (Node *N : A.TheRule->Pattern.liveNodes()) {
        Opcode Op = N->opcode();
        if (Op != Opcode::Shl && Op != Opcode::Shr && Op != Opcode::Shrs)
          continue;
        auto [Def, Index] = mappedPatternRef(*Match, N->operand(1));
        PA.push_back(
            z3::ult(BSym.value(Def, Index), Smt.literal(BitValue(W, W))));
      }

      SubsumptionEdge Edge;
      Edge.Subsumer = AIndex;
      Edge.Subsumed = B.Index;
      bool Entailed = true;
      if (!PA.empty()) {
        z3::expr Assumption = Smt.mkAnd(BSym.shiftPreconditions());
        z3::expr NegatedGoal = !Smt.mkAnd(PA);
        // Deterministic rendering of the proof obligation: Z3 prints
        // structurally identical terms identically, and the fresh
        // constants are named from stable node ids.
        std::ostringstream Query;
        Query << "assume " << Assumption << "\nrefute " << NegatedGoal;
        Edge.NeededSmt = true;
        Edge.QueryFingerprint = crc32Hex(Query.str());

        SmtSolver Solver(Smt);
        Solver.setTimeoutMilliseconds(Options.SmtTimeoutMs);
        Solver.add(Assumption);
        Solver.add(NegatedGoal);
        SmtResult Result = Solver.check();
        ++Relation.SmtQueries;
        if (Result != SmtResult::Unsat) {
          // Sat: genuinely not entailed. Unknown/timeout: unproven —
          // either way the pair stays out of the relation, so every
          // consumer keeps the rule.
          Entailed = false;
          if (Result == SmtResult::Unknown)
            ++Relation.SmtInconclusive;
        }
      }
      if (!Entailed)
        continue;

      Relation.SubsumedBy[B.Index].push_back(
          static_cast<uint32_t>(Relation.Edges.size()));
      Relation.Edges.push_back(std::move(Edge));
    }
  }
  return Relation;
}
