//===- Subsumption.h - Full rule-subsumption relation ------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole-library subsumption relation shared by the lint auditor
/// (analysis/RuleAudit) and the library minimizer
/// (analysis/LibraryMinimizer). An edge A -> B says: whenever rule B's
/// pattern matches a subject, the earlier rule A already matches at
/// the same root, produces every result B promises, and its shift
/// precondition is entailed by B's — so under first-match priority B
/// can never be the rule that fires.
///
/// Candidates are proposed by running each rule's own pattern through
/// the discrimination-tree automaton as if it were a subject block
/// (only structurally-more-general rules survive that walk), a
/// structural match plus a result-coverage check confirms the shape,
/// and an SMT query sat(P_B and not P_A) == Unsat discharges the
/// preconditions through the supervised solver. A solver timeout or
/// Unknown leaves the entailment unproven: the pair is simply *not*
/// added to the relation, so every consumer degrades to "keep the
/// rule" — never to an unsound delete.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_ANALYSIS_SUBSUMPTION_H
#define SELGEN_ANALYSIS_SUBSUMPTION_H

#include "isel/Matcher.h"
#include "isel/PreparedLibrary.h"
#include "smt/SmtContext.h"

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace selgen {

/// Symbolic evaluation of a pattern graph without a memory model:
/// every Arg and every loaded value becomes a fresh, unconstrained
/// constant. Because the subsumption and lint queries are universally
/// quantified over all inputs ("is P+ satisfiable at all", "does P_B
/// entail P_A"), leaving memory uninterpreted only widens the input
/// space and keeps the answers sound for how they are consumed (an
/// Unsat stays Unsat under any refinement of the inputs).
class SymbolicPattern {
public:
  SymbolicPattern(SmtContext &Smt, const Graph &G, const std::string &Prefix)
      : Smt(Smt), G(G), Prefix(Prefix) {}

  /// The term of a value-sorted (node, result index) position.
  z3::expr value(const Node *Def, unsigned Index);
  z3::expr value(NodeRef Ref) { return value(Ref.Def, Ref.Index); }

  /// The formula of a bool-sorted position.
  z3::expr boolean(const Node *Def, unsigned Index);

  /// P+ of the pattern: the conjunction of 0 <= amount < width over
  /// every live shift operation (IrSemantics models exactly this
  /// precondition; everything else is total).
  std::vector<z3::expr> shiftPreconditions();

private:
  using ValueKey = std::pair<const Node *, unsigned>;

  z3::expr computeValue(const Node *Def, unsigned Index);

  SmtContext &Smt;
  const Graph &G;
  std::string Prefix;
  std::map<ValueKey, z3::expr> Values;
};

/// One subsumption pair: rule \p Subsumer (earlier prepared index)
/// shadows rule \p Subsumed under first-match priority.
struct SubsumptionEdge {
  uint32_t Subsumer = 0;
  uint32_t Subsumed = 0;
  /// True when discharging the precondition entailment needed an SMT
  /// query (the subsumer's pattern has live shifts); purely structural
  /// edges carry no query.
  bool NeededSmt = false;
  /// crc32 hex over the deterministic rendering of the entailment
  /// query (assumptions + negated goal), empty for structural edges.
  /// A deletion certificate cites this so the exact proof obligation
  /// can be re-identified.
  std::string QueryFingerprint;
};

struct SubsumptionOptions {
  unsigned SmtTimeoutMs = 10000; ///< Per-query solver budget.
};

/// The full relation over one prepared library.
struct SubsumptionRelation {
  /// All edges, grouped by subsumed rule in ascending prepared index,
  /// subsumers ascending within a group.
  std::vector<SubsumptionEdge> Edges;
  /// Per prepared index: positions into Edges of the edges that
  /// subsume this rule (ascending subsumer index). Empty for live
  /// rules.
  std::vector<std::vector<uint32_t>> SubsumedBy;
  uint64_t SmtQueries = 0;      ///< Entailment queries issued.
  uint64_t SmtInconclusive = 0; ///< Timeouts/Unknowns (pair dropped).
};

/// Computes the full subsumption relation: every (earlier, later) pair
/// where the earlier rule provably shadows the later one, not just the
/// first subsumer per rule. O(rules x candidates) structural work; one
/// SMT query per shape-confirmed pair whose subsumer has shift
/// preconditions.
SubsumptionRelation computeSubsumption(const PreparedLibrary &Library,
                                       const SubsumptionOptions &Options = {});

/// The image of pattern-A value \p ARef inside pattern B's value
/// space, given a structural match of A against B. Every A operation
/// node maps through the NodeMap; A arguments map through their
/// bindings.
std::pair<const Node *, unsigned> mappedPatternRef(const MatchResult &Match,
                                                   NodeRef ARef);

} // namespace selgen

#endif // SELGEN_ANALYSIS_SUBSUMPTION_H
