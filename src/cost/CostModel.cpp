//===- CostModel.cpp - Per-rule cost vectors for selection --------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "cost/CostModel.h"

#include "semantics/InstrSpec.h"
#include "x86/Emulator.h"
#include "x86/Goals.h"

#include <cassert>

using namespace selgen;

const char *selgen::costKindName(CostKind Kind) {
  switch (Kind) {
  case CostKind::Unit:
    return "unit";
  case CostKind::Latency:
    return "latency";
  case CostKind::Size:
    return "size";
  }
  return "unit";
}

std::optional<CostKind> selgen::parseCostKind(const std::string &Name) {
  if (Name == "unit")
    return CostKind::Unit;
  if (Name == "latency")
    return CostKind::Latency;
  if (Name == "size")
    return CostKind::Size;
  return std::nullopt;
}

/// Bytes an immediate operand adds to the encoding: x86 encodes imm8
/// for small widths and up to imm32 otherwise.
static uint32_t immSize(const MOperand &Op) {
  if (!Op.isImm())
    return 0;
  unsigned Bytes = (Op.Imm.width() + 7) / 8;
  return Bytes < 1 ? 1 : (Bytes > 4 ? 4 : Bytes);
}

/// Bytes a memory operand adds: ModRM extension (SIB when indexed) and
/// a displacement byte when present.
static uint32_t memSize(const MOperand &Op) {
  if (!Op.isMem())
    return 0;
  uint32_t Bytes = 1;
  if (Op.M.Index)
    Bytes += 1;
  if (Op.M.Disp != 0)
    Bytes += 1;
  return Bytes;
}

uint32_t selgen::encodedInstrSize(const MachineInstr &Instr) {
  // Base opcode + ModRM. Two-byte-opcode (0F-escape) forms get 3,
  // VEX-encoded BMI forms get 5. Absolute accuracy is not the point —
  // the estimate just has to be deterministic and order the shipped
  // recipes sensibly.
  uint32_t Bytes = 2;
  switch (Instr.Op) {
  case MOpcode::Imul:
  case MOpcode::Cmov:
  case MOpcode::Setcc:
    Bytes = 3;
    break;
  case MOpcode::Andn:
  case MOpcode::Blsr:
  case MOpcode::Blsi:
  case MOpcode::Blsmsk:
    Bytes = 5;
    break;
  default:
    break;
  }
  for (const MOperand *Op : {&Instr.Dst, &Instr.Src1, &Instr.Src2})
    Bytes += immSize(*Op) + memSize(*Op);
  return Bytes;
}

RuleCost selgen::deriveRuleCost(const GoalInstruction &Goal, unsigned Width) {
  // Probe the recipe with role-correct dummy operands. Recipes only
  // look at roles (they bind registers, embed immediates, and build
  // addressing modes), so a dummy run emits exactly the instruction
  // sequence selection would.
  MachineFunction MF("cost-probe", Width);
  std::vector<MOperand> Args;
  const InstrSpec &Spec = *Goal.Spec;
  for (unsigned I = 0; I < Spec.argSorts().size(); ++I) {
    switch (Spec.argRole(I)) {
    case ArgRole::Reg:
    case ArgRole::Addr:
      Args.push_back(MOperand::reg(MF.newReg()));
      break;
    case ArgRole::Imm:
      Args.push_back(MOperand::imm(BitValue(Spec.argSorts()[I].Width, 1)));
      break;
    case ArgRole::Mem:
      Args.push_back(MOperand::none());
      break;
    }
  }

  EmittedGoal Emitted = Goal.Emit(MF, Args);
  RuleCost Cost;
  Cost.Instructions = static_cast<uint32_t>(Emitted.Instrs.size());
  for (const MachineInstr &Instr : Emitted.Instrs) {
    Cost.Latency += static_cast<uint32_t>(instructionCost(Instr));
    Cost.Size += encodedInstrSize(Instr);
  }
  return Cost;
}

RuleCost selgen::deriveRuleCost(const GoalInstruction &Goal) {
  unsigned Width = 8;
  const InstrSpec &Spec = *Goal.Spec;
  bool Found = false;
  for (const Sort &S : Spec.argSorts())
    if (S.isValue()) {
      Width = S.Width;
      Found = true;
      break;
    }
  if (!Found)
    for (const Sort &S : Spec.resultSorts())
      if (S.isValue()) {
        Width = S.Width;
        break;
      }
  return deriveRuleCost(Goal, Width);
}

uint64_t selgen::machineStaticCost(const MachineFunction &MF, CostKind Kind) {
  uint64_t Total = 0;
  for (const auto &Block : MF.blocks())
    for (const MachineInstr &Instr : Block->instructions())
      switch (Kind) {
      case CostKind::Unit:
        Total += 1;
        break;
      case CostKind::Latency:
        Total += instructionCost(Instr);
        break;
      case CostKind::Size:
        Total += encodedInstrSize(Instr);
        break;
      }
  return Total;
}
