//===- CostModel.h - Per-rule cost vectors for selection ---------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cost subsystem: every prepared rule carries a small cost vector
/// derived from its goal's emission recipe, and the tiling selector
/// (src/isel/TilingSelector.h) minimizes the chosen component over a
/// whole covering instead of taking the first match.
///
/// The vector has three components, each a different shipped cost
/// model:
///
/// * Instructions — how many machine instructions the recipe emits.
///   Under this "unit" model every rule that covers the same cone of
///   IR ties (see TilingSelector.h), so tie-breaking by prepared index
///   reproduces first-match selection byte-identically: the migration
///   anchor CI enforces.
/// * Latency — the emulator's cycle estimate (x86/Emulator.h
///   instructionCost), summed over the recipe.
/// * Size — an approximate x86 encoding size in bytes, summed over the
///   recipe.
///
/// Costs are derived at prepare time by probing the recipe: Emit is run
/// once against a scratch MachineFunction with role-correct dummy
/// operands. Recipes only depend on argument roles (registers for
/// Reg/Addr, an immediate for Imm, nothing for Mem), so the probe is
/// exact, cheap, and deterministic. `cost::ModelVersion` stamps
/// serialized automata; bump it whenever derivation changes so stale
/// `.mat`/`.matb` images are refused instead of silently mispricing.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_COST_COSTMODEL_H
#define SELGEN_COST_COSTMODEL_H

#include "x86/MachineIR.h"

#include <cstdint>
#include <optional>
#include <string>

namespace selgen {

struct GoalInstruction;

namespace cost {

/// Version of the cost-derivation scheme. Serialized into `.mat` and
/// `.matb` images; an automaton stamped with a different version (or
/// with the pre-cost 0) is stale against this binary.
constexpr uint32_t ModelVersion = 1;

} // namespace cost

/// Which cost-vector component selection minimizes.
enum class CostKind {
  Unit,    ///< Emitted-instruction count (first-match-compatible).
  Latency, ///< Approximate cycles (Emulator::instructionCost).
  Size,    ///< Approximate encoded bytes.
};

/// The per-rule cost vector.
struct RuleCost {
  uint32_t Instructions = 0;
  uint32_t Latency = 0;
  uint32_t Size = 0;

  uint32_t get(CostKind Kind) const {
    switch (Kind) {
    case CostKind::Unit:
      return Instructions;
    case CostKind::Latency:
      return Latency;
    case CostKind::Size:
      return Size;
    }
    return Instructions;
  }

  bool operator==(const RuleCost &Other) const {
    return Instructions == Other.Instructions && Latency == Other.Latency &&
           Size == Other.Size;
  }
  bool operator!=(const RuleCost &Other) const { return !(*this == Other); }
};

/// CLI/env name of a cost kind: "unit", "latency", "size".
const char *costKindName(CostKind Kind);

/// Parses a cost-kind name; nullopt on anything unknown.
std::optional<CostKind> parseCostKind(const std::string &Name);

/// Approximate x86 encoding size of one instruction, in bytes. Only
/// relative order matters for selection; the estimate is deterministic
/// and monotone in operand complexity (immediates and memory operands
/// cost extra bytes).
uint32_t encodedInstrSize(const MachineInstr &Instr);

/// Derives the cost vector of \p Goal's emission recipe at width
/// \p Width by probing Emit with role-correct dummy operands.
RuleCost deriveRuleCost(const GoalInstruction &Goal, unsigned Width);

/// Same, inferring the data width from the goal's spec (first value
/// sort among its arguments, then results).
RuleCost deriveRuleCost(const GoalInstruction &Goal);

/// Sum of per-instruction costs of \p MF under \p Kind — the static
/// cost of an emitted function (bench_10's tiling metric).
uint64_t machineStaticCost(const MachineFunction &MF, CostKind Kind);

} // namespace selgen

#endif // SELGEN_COST_COSTMODEL_H
