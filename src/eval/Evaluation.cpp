//===- Evaluation.cpp - Code-quality and compile-time experiments -------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "eval/Evaluation.h"

#include "support/Rng.h"
#include "support/Timer.h"
#include "x86/Emulator.h"

#include <cmath>

using namespace selgen;

namespace {

/// Runs one selected function on one input set; returns the cycle
/// count and compares against the reference result.
uint64_t runOnce(const MachineFunction &MF, const Function &F,
                 const std::vector<BitValue> &Args,
                 const MemoryState &InitialMemory,
                 const FunctionResult &Reference, bool &Mismatch) {
  std::map<MReg, BitValue> Regs;
  const auto &ArgRegs = MF.entry()->ArgRegs;
  for (size_t I = 0; I < ArgRegs.size(); ++I)
    Regs[ArgRegs[I]] = Args[I];
  MachineRunResult Result =
      runMachineFunction(MF, Regs, InitialMemory, /*MaxInstructions=*/1u << 24);

  if (Result.StepLimitHit ||
      Result.ReturnValues.size() != Reference.ReturnValues.size()) {
    Mismatch = true;
    return Result.Cycles;
  }
  for (size_t I = 0; I < Reference.ReturnValues.size(); ++I)
    if (Result.ReturnValues[I] != Reference.ReturnValues[I])
      Mismatch = true;
  if (Reference.FinalMemory)
    for (const auto &[Address, Value] : Reference.FinalMemory->bytes())
      if (Result.Memory.peekByte(Address) != Value)
        Mismatch = true;
  (void)F;
  return Result.Cycles;
}

/// Deterministic input sets per workload.
struct InputSet {
  std::vector<BitValue> Args;
  MemoryState Memory;
};

std::vector<InputSet> makeInputs(const WorkloadProfile &Profile,
                                 unsigned Width, unsigned Count) {
  Rng Random(Profile.Seed ^ 0xABCDEF);
  std::vector<InputSet> Inputs;
  for (unsigned I = 0; I < Count; ++I) {
    InputSet Set;
    for (unsigned A = 0; A < 3; ++A)
      Set.Args.push_back(Random.nextBitValue(Width));
    for (unsigned B = 0; B < (1u << std::min(Width, 8u)); ++B)
      Set.Memory.storeByte(B, static_cast<uint8_t>(Random.nextBelow(256)));
    Inputs.push_back(std::move(Set));
  }
  return Inputs;
}

double geometricMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  double LogSum = 0;
  for (double Value : Values)
    LogSum += std::log(Value);
  return std::exp(LogSum / Values.size());
}

} // namespace

CodeQualityResult
selgen::runCodeQualityExperiment(InstructionSelector &Handwritten,
                                 InstructionSelector &Basic,
                                 InstructionSelector &Full, unsigned Width,
                                 unsigned RunsPerWorkload) {
  CodeQualityResult Result;
  std::vector<double> Coverages, BasicRatios, FullRatios;

  for (const WorkloadProfile &Profile : cint2000Profiles()) {
    Function F = buildWorkload(Profile, Width);

    SelectionResult Hand = Handwritten.select(F);
    SelectionResult BasicSel = Basic.select(F);
    SelectionResult FullSel = Full.select(F);

    CodeQualityRow Row;
    Row.Benchmark = Profile.Name;
    Row.Coverage = FullSel.coverage();
    Row.CoverageBasic = BasicSel.coverage();

    for (const InputSet &Inputs :
         makeInputs(Profile, Width, RunsPerWorkload)) {
      FunctionResult Reference =
          runFunction(F, Inputs.Args, Inputs.Memory, /*MaxSteps=*/1u << 24);
      if (Reference.Undefined || Reference.StepLimitHit) {
        Row.Mismatch = true;
        continue;
      }
      Row.HandwrittenCycles += runOnce(*Hand.MF, F, Inputs.Args,
                                       Inputs.Memory, Reference,
                                       Row.Mismatch);
      Row.BasicCycles += runOnce(*BasicSel.MF, F, Inputs.Args,
                                 Inputs.Memory, Reference, Row.Mismatch);
      Row.FullCycles += runOnce(*FullSel.MF, F, Inputs.Args, Inputs.Memory,
                                Reference, Row.Mismatch);
    }

    if (Row.HandwrittenCycles > 0) {
      Row.BasicOverHandwritten =
          100.0 * Row.BasicCycles / Row.HandwrittenCycles;
      Row.FullOverHandwritten =
          100.0 * Row.FullCycles / Row.HandwrittenCycles;
      BasicRatios.push_back(Row.BasicOverHandwritten);
      FullRatios.push_back(Row.FullOverHandwritten);
      Coverages.push_back(std::max(Row.Coverage, 1e-6));
    }
    Result.Rows.push_back(std::move(Row));
  }

  Result.GeoMeanCoverage = geometricMean(Coverages);
  Result.GeoMeanBasicRatio = geometricMean(BasicRatios);
  Result.GeoMeanFullRatio = geometricMean(FullRatios);
  return Result;
}

CompileTimeResult
selgen::runCompileTimeExperiment(InstructionSelector &Handwritten,
                                 InstructionSelector &Basic,
                                 InstructionSelector &Full, unsigned Width,
                                 unsigned Repetitions) {
  CompileTimeResult Result;
  for (const WorkloadProfile &Profile : cint2000Profiles()) {
    Function F = buildWorkload(Profile, Width);
    CompileTimeRow Row;
    Row.Benchmark = Profile.Name;
    for (unsigned Rep = 0; Rep < Repetitions; ++Rep) {
      Row.HandwrittenSeconds += Handwritten.select(F).SelectionSeconds;
      Row.BasicSeconds += Basic.select(F).SelectionSeconds;
      Row.FullSeconds += Full.select(F).SelectionSeconds;
    }
    Result.TotalHandwritten += Row.HandwrittenSeconds;
    Result.TotalBasic += Row.BasicSeconds;
    Result.TotalFull += Row.FullSeconds;
    Result.Rows.push_back(std::move(Row));
  }
  return Result;
}
