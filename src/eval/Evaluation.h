//===- Evaluation.h - Code-quality and compile-time experiments --*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drivers for the paper's Section 7.3 experiments:
///
/// * code quality (Table 1): run every synthetic CINT2000 workload
///   compiled with the handwritten selector and with prototype
///   selectors generated from the basic and the full rule library;
///   report coverage and runtime ratios (runtime = cost-weighted
///   dynamic instruction count on the emulator);
/// * compile time: wall-clock of the instruction-selection phase per
///   selector (the full-library prototype tries tens of thousands of
///   rules one by one, reproducing the paper's slowdown).
///
/// Every emulator run is checked against the IR interpreter, so the
/// experiment doubles as an end-to-end soundness test of the
/// synthesized rules.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_EVAL_EVALUATION_H
#define SELGEN_EVAL_EVALUATION_H

#include "eval/Workloads.h"
#include "isel/Selector.h"

#include <string>
#include <vector>

namespace selgen {

/// One Table 1 row.
struct CodeQualityRow {
  std::string Benchmark;
  double Coverage = 0;           ///< Synthesized-rule coverage (full).
  double CoverageBasic = 0;      ///< Coverage of the basic library.
  uint64_t HandwrittenCycles = 0;
  uint64_t BasicCycles = 0;
  uint64_t FullCycles = 0;
  double BasicOverHandwritten = 0; ///< In percent, as Table 1.
  double FullOverHandwritten = 0;
  bool Mismatch = false; ///< Any selector disagreed with the oracle.
};

/// The whole experiment.
struct CodeQualityResult {
  std::vector<CodeQualityRow> Rows;
  double GeoMeanCoverage = 0;
  double GeoMeanBasicRatio = 0;
  double GeoMeanFullRatio = 0;
};

/// Runs the Table 1 experiment over all CINT2000 profiles.
/// \p RunsPerWorkload distinct deterministic input sets are executed
/// and their cycle counts summed.
CodeQualityResult runCodeQualityExperiment(InstructionSelector &Handwritten,
                                           InstructionSelector &Basic,
                                           InstructionSelector &Full,
                                           unsigned Width,
                                           unsigned RunsPerWorkload = 3);

/// One compile-time row (selection-phase wall time).
struct CompileTimeRow {
  std::string Benchmark;
  double HandwrittenSeconds = 0;
  double BasicSeconds = 0;
  double FullSeconds = 0;
};

struct CompileTimeResult {
  std::vector<CompileTimeRow> Rows;
  double TotalHandwritten = 0, TotalBasic = 0, TotalFull = 0;
};

/// Runs the selection-phase timing experiment (paper Section 7.3's
/// 1.66x / 1217x observation).
CompileTimeResult runCompileTimeExperiment(InstructionSelector &Handwritten,
                                           InstructionSelector &Basic,
                                           InstructionSelector &Full,
                                           unsigned Width,
                                           unsigned Repetitions = 3);

} // namespace selgen

#endif // SELGEN_EVAL_EVALUATION_H
