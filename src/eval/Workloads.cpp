//===- Workloads.cpp - SPEC CINT2000-profile synthetic workloads --------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "eval/Workloads.h"

#include "ir/Normalizer.h"
#include "ir/Verifier.h"
#include "support/Error.h"
#include "support/Rng.h"

using namespace selgen;

const std::vector<WorkloadProfile> &selgen::cint2000Profiles() {
  // Name, seed, arith, logic, shift, mul, load, store, select, idiom,
  // body ops, iterations. The mixes are chosen to mimic each
  // component's character (compression = shifts+logic+memory, mcf =
  // pointer loads, crafty = bit tricks, parser/gcc = compares, ...).
  static const std::vector<WorkloadProfile> Profiles = {
      {"164.gzip", 164, 3, 4, 4, 1, 4, 2, 1, 2, 30, 70},
      {"175.vpr", 175, 5, 2, 1, 2, 3, 1, 2, 1, 28, 60},
      {"176.gcc", 176, 4, 2, 1, 1, 3, 2, 4, 1, 32, 50},
      {"181.mcf", 181, 3, 1, 1, 1, 6, 2, 2, 0, 26, 80},
      {"186.crafty", 186, 2, 6, 4, 1, 2, 1, 1, 4, 34, 60},
      {"197.parser", 197, 3, 2, 1, 0, 4, 2, 4, 1, 28, 70},
      {"253.perlbmk", 253, 4, 3, 2, 1, 3, 2, 3, 1, 30, 55},
      {"254.gap", 254, 6, 2, 1, 3, 2, 1, 1, 1, 28, 60},
      {"255.vortex", 255, 3, 2, 1, 1, 4, 4, 2, 1, 30, 60},
      {"256.bzip2", 256, 3, 4, 4, 1, 3, 2, 1, 2, 32, 70},
      {"300.twolf", 300, 5, 2, 1, 2, 3, 1, 3, 1, 28, 60},
  };
  return Profiles;
}

namespace {

/// Incrementally builds the loop body of a workload.
class BodyBuilder {
public:
  BodyBuilder(Graph &G, Rng &Random, unsigned Width, NodeRef Memory,
              NodeRef ArrayBase, std::vector<NodeRef> Seeds)
      : G(G), Random(Random), Width(Width), Memory(Memory),
        ArrayBase(ArrayBase), Pool(std::move(Seeds)) {}

  NodeRef memory() const { return Memory; }

  NodeRef pick() { return Pool[Random.nextBelow(Pool.size())]; }

  void push(NodeRef Value) {
    Pool.push_back(Value);
    if (Pool.size() > 12)
      Pool.erase(Pool.begin() + Random.nextBelow(4));
  }

  NodeRef smallConst() {
    return G.createConst(
        BitValue(Width, Random.nextBelow(1u << (Width / 2))));
  }

  /// An address inside the workload's array region: base + (v & 15)*s
  /// + disp. Exercises the scaled addressing modes.
  NodeRef address() {
    NodeRef Index = G.createBinary(Opcode::And, pick(),
                                   G.createConst(BitValue(Width, 15)));
    unsigned ScaleLog = Random.nextBelow(3); // 1, 2, or 4.
    if (ScaleLog)
      Index = G.createBinary(Opcode::Shl, Index,
                             G.createConst(BitValue(Width, ScaleLog)));
    NodeRef Address = G.createBinary(Opcode::Add, ArrayBase, Index);
    if (Random.nextBool())
      Address = G.createBinary(
          Opcode::Add, Address,
          G.createConst(BitValue(Width, Random.nextBelow(8) * (Width / 8))));
    return Address;
  }

  void emitArith() {
    Opcode Op = Random.nextBool() ? Opcode::Add : Opcode::Sub;
    NodeRef Rhs = Random.nextBelow(4) == 0 ? smallConst() : pick();
    push(G.createBinary(Op, pick(), Rhs));
  }

  void emitLogic() {
    switch (Random.nextBelow(4)) {
    case 0:
      push(G.createBinary(Opcode::And, pick(), pick()));
      break;
    case 1:
      push(G.createBinary(Opcode::Or, pick(), pick()));
      break;
    case 2:
      push(G.createBinary(Opcode::Xor, pick(), pick()));
      break;
    case 3:
      push(G.createUnary(Opcode::Not, pick()));
      break;
    }
  }

  void emitShift() {
    Opcode Op = Random.nextBelow(3) == 0   ? Opcode::Shrs
                : Random.nextBool() ? Opcode::Shl
                                    : Opcode::Shr;
    if (Random.nextBelow(3) == 0) {
      // Variable amount, masked to stay defined (the shl_rc shape).
      NodeRef Amount = G.createBinary(
          Opcode::And, pick(), G.createConst(BitValue(Width, Width - 1)));
      push(G.createBinary(Op, pick(), Amount));
    } else {
      push(G.createBinary(
          Op, pick(),
          G.createConst(BitValue(Width, 1 + Random.nextBelow(Width - 1)))));
    }
  }

  void emitMul() {
    if (Random.nextBool())
      push(G.createBinary(Opcode::Mul, pick(), pick()));
    else
      push(G.createBinary(
          Opcode::Mul, pick(),
          G.createConst(BitValue(Width, 3 + 2 * Random.nextBelow(5)))));
  }

  void emitLoad() {
    Node *Load = G.createLoad(Memory, address());
    Memory = NodeRef(Load, 0);
    push(NodeRef(Load, 1));
  }

  void emitStore() {
    if (Random.nextBelow(3) == 0) {
      // Read-modify-write on one address (destination AM shape).
      NodeRef Address = address();
      Node *Load = G.createLoad(Memory, Address);
      Opcode Op = Random.nextBool() ? Opcode::Add : Opcode::Xor;
      NodeRef Updated = G.createBinary(Op, NodeRef(Load, 1), pick());
      Memory = G.createStore(NodeRef(Load, 0), Address, Updated);
      return;
    }
    Memory = G.createStore(Memory, address(), pick());
  }

  void emitSelect() {
    Relation Rel =
        allRelations()[Random.nextBelow(allRelations().size())];
    NodeRef Cmp = G.createCmp(Rel, pick(), pick());
    if (Random.nextBool()) {
      // setcc shape: 0/1 result.
      push(G.createMux(Cmp, G.createConst(BitValue(Width, 1)),
                       G.createConst(BitValue::zero(Width))));
    } else {
      push(G.createMux(Cmp, pick(), pick()));
    }
  }

  void emitIdiom() {
    NodeRef X = pick();
    switch (Random.nextBelow(4)) {
    case 0: // blsr: x & (x - 1).
      push(G.createBinary(
          Opcode::And, X,
          G.createBinary(Opcode::Sub, X,
                         G.createConst(BitValue(Width, 1)))));
      break;
    case 1: // blsmsk: x ^ (x - 1).
      push(G.createBinary(
          Opcode::Xor, X,
          G.createBinary(Opcode::Sub, X,
                         G.createConst(BitValue(Width, 1)))));
      break;
    case 2: // andn: ~x & y.
      push(G.createBinary(Opcode::And, G.createUnary(Opcode::Not, X),
                          pick()));
      break;
    case 3: // blsi: x & -x.
      push(G.createBinary(Opcode::And, X,
                          G.createUnary(Opcode::Minus, X)));
      break;
    }
  }

private:
  Graph &G;
  Rng &Random;
  unsigned Width;
  NodeRef Memory;
  NodeRef ArrayBase;
  std::vector<NodeRef> Pool;
};

} // namespace

Function selgen::buildWorkload(const WorkloadProfile &Profile,
                               unsigned Width) {
  Rng Random(Profile.Seed * 0x9E3779B97F4A7C15ull + Width);
  Function F(Profile.Name, Width);
  Sort V = Sort::value(Width);
  Sort M = Sort::memory();

  // entry(m, a, b, base) -> loop(m, i=0, acc=a, x=b, y=a^b)
  BasicBlock *Entry = F.createBlock("entry", {M, V, V, V});
  // loop(m, i, acc, x, y, base)
  BasicBlock *Loop = F.createBlock("loop", {M, V, V, V, V, V});
  // exit(m, result)
  BasicBlock *Exit = F.createBlock("exit", {M, V});

  {
    Graph &G = Entry->body();
    NodeRef A = G.arg(1), B = G.arg(2), Base = G.arg(3);
    NodeRef Zero = G.createConst(BitValue::zero(Width));
    NodeRef Mix = G.createBinary(Opcode::Xor, A, B);
    Entry->setJump(Loop, {G.arg(0), Zero, A, B, Mix, Base});
  }

  {
    Graph &G = Loop->body();
    NodeRef I = G.arg(1);
    std::vector<NodeRef> Seeds = {G.arg(2), G.arg(3), G.arg(4), I};
    BodyBuilder Body(G, Random, Width, G.arg(0), G.arg(5), Seeds);

    // Weighted schedule of body operations.
    std::vector<unsigned> Deck;
    auto addCards = [&Deck](unsigned Kind, unsigned Count) {
      for (unsigned C = 0; C < Count; ++C)
        Deck.push_back(Kind);
    };
    addCards(0, Profile.Arith);
    addCards(1, Profile.Logic);
    addCards(2, Profile.Shift);
    addCards(3, Profile.Mul);
    addCards(4, Profile.Load);
    addCards(5, Profile.Store);
    addCards(6, Profile.Select);
    addCards(7, Profile.Idiom);
    if (Deck.empty())
      Deck.push_back(0);

    for (unsigned OpIndex = 0; OpIndex < Profile.BodyOps; ++OpIndex) {
      switch (Deck[Random.nextBelow(Deck.size())]) {
      case 0:
        Body.emitArith();
        break;
      case 1:
        Body.emitLogic();
        break;
      case 2:
        Body.emitShift();
        break;
      case 3:
        Body.emitMul();
        break;
      case 4:
        Body.emitLoad();
        break;
      case 5:
        Body.emitStore();
        break;
      case 6:
        Body.emitSelect();
        break;
      case 7:
        Body.emitIdiom();
        break;
      }
    }

    NodeRef NextI = G.createBinary(Opcode::Add, I,
                                   G.createConst(BitValue(Width, 1)));
    NodeRef Accumulator = G.createBinary(Opcode::Xor, Body.pick(),
                                         G.createBinary(Opcode::Add,
                                                        Body.pick(), I));
    NodeRef Continue = G.createCmp(
        Relation::Ult, NextI,
        G.createConst(BitValue(Width, Profile.Iterations)));
    Loop->setBranch(Continue, Loop,
                    {Body.memory(), NextI, Accumulator, Body.pick(),
                     Body.pick(), G.arg(5)},
                    Exit, {Body.memory(), Accumulator});
  }

  {
    Graph &G = Exit->body();
    Exit->setReturn({G.arg(0), G.arg(1)});
  }

  normalizeFunction(F);
  std::vector<std::string> Problems = verifyFunction(F);
  if (!Problems.empty())
    reportFatalError("generated workload is malformed: " + Problems[0]);
  return F;
}
