//===- Workloads.h - SPEC CINT2000-profile synthetic workloads ---*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation workloads standing in for SPEC CINT2000 (paper
/// Section 7.3, Table 1). SPEC is proprietary; what the experiment
/// needs from it is realistic mixes of integer IR operations per
/// benchmark. Each workload here is a deterministic, loop-carrying IR
/// function generated from a per-benchmark operation-mix profile
/// (bit-twiddling for crafty, pointer-chasing for mcf, compare-heavy
/// parsing for parser/gcc, and so on), including the idioms the
/// paper's full rule library is good at: scaled address arithmetic,
/// read-modify-write updates, flag tests, and conditional moves.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_EVAL_WORKLOADS_H
#define SELGEN_EVAL_WORKLOADS_H

#include "ir/Function.h"

#include <string>
#include <vector>

namespace selgen {

/// Relative operation-mix weights of one synthetic benchmark.
struct WorkloadProfile {
  std::string Name;      ///< CINT2000 component it mimics.
  uint64_t Seed;         ///< Generator seed (fixed per benchmark).
  unsigned Arith = 4;    ///< add/sub weight.
  unsigned Logic = 2;    ///< and/or/xor/not weight.
  unsigned Shift = 1;    ///< shifts by constants / masked amounts.
  unsigned Mul = 1;      ///< multiplications.
  unsigned Load = 2;     ///< loads (scaled-address idiom included).
  unsigned Store = 1;    ///< stores and read-modify-write updates.
  unsigned Select = 1;   ///< compare+mux (setcc/cmov shapes).
  unsigned Idiom = 1;    ///< bit tricks (blsr/blsmsk/andn shapes).
  unsigned BodyOps = 28; ///< Approximate operations per loop body.
  unsigned Iterations = 60; ///< Loop trip count.
};

/// The eleven profiles named after the SPEC CINT2000 components of the
/// paper's Table 1.
const std::vector<WorkloadProfile> &cint2000Profiles();

/// Generates the workload function for one profile. The function is
/// normalized (as a compiler front end would deliver it) and passes
/// verifyFunction; its executions are free of undefined behaviour for
/// any argument values.
Function buildWorkload(const WorkloadProfile &Profile, unsigned Width);

} // namespace selgen

#endif // SELGEN_EVAL_WORKLOADS_H
