//===- Function.cpp - Control-flow graphs of basic blocks -------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

#include "ir/Normalizer.h"
#include "ir/Verifier.h"
#include "support/Error.h"

#include <map>

using namespace selgen;

std::vector<NodeRef> BasicBlock::terminatorOperands() const {
  std::vector<NodeRef> Operands;
  switch (Term.TermKind) {
  case Terminator::Kind::Return:
    return Term.ReturnValues;
  case Terminator::Kind::Jump:
    return Term.Then.Arguments;
  case Terminator::Kind::Branch:
    Operands.push_back(Term.Condition);
    Operands.insert(Operands.end(), Term.Then.Arguments.begin(),
                    Term.Then.Arguments.end());
    Operands.insert(Operands.end(), Term.Else.Arguments.begin(),
                    Term.Else.Arguments.end());
    return Operands;
  }
  SELGEN_UNREACHABLE("bad terminator kind");
}

BasicBlock *Function::createBlock(const std::string &BlockName,
                                  std::vector<Sort> ArgSorts) {
  assert(!ArgSorts.empty() && ArgSorts[0].isMemory() &&
         "block argument 0 must be the memory token");
  Blocks.push_back(
      std::make_unique<BasicBlock>(BlockName, Width, std::move(ArgSorts)));
  return Blocks.back().get();
}

unsigned Function::numOperations() const {
  unsigned Count = 0;
  for (const auto &BB : Blocks)
    for (Node *N : BB->body().liveNodesFrom(BB->terminatorOperands()))
      if (N->opcode() != Opcode::Arg)
        ++Count;
  return Count;
}

FunctionResult selgen::runFunction(const Function &F,
                                   const std::vector<BitValue> &Arguments,
                                   const MemoryState &InitialMemory,
                                   uint64_t MaxSteps) {
  FunctionResult Result;
  BasicBlock *Current = F.entry();

  std::vector<EvalValue> BlockArgs;
  BlockArgs.push_back(
      EvalValue::fromMemory(std::make_shared<MemoryState>(InitialMemory)));
  for (const BitValue &Value : Arguments)
    BlockArgs.push_back(EvalValue::fromBits(Value));

  // Static operation count per block, so the dynamic counter does not
  // re-walk the graph on every loop iteration.
  std::map<const BasicBlock *, uint64_t> StaticCounts;
  auto staticCount = [&StaticCounts](const BasicBlock *BB) {
    auto It = StaticCounts.find(BB);
    if (It != StaticCounts.end())
      return It->second;
    uint64_t Count = 0;
    for (Node *N : BB->body().liveNodesFrom(BB->terminatorOperands()))
      if (N->opcode() != Opcode::Arg)
        ++Count;
    StaticCounts[BB] = Count;
    return Count;
  };

  while (true) {
    Result.ExecutedOperations += staticCount(Current);
    if (Result.ExecutedOperations > MaxSteps) {
      Result.StepLimitHit = true;
      return Result;
    }

    std::vector<NodeRef> Operands = Current->terminatorOperands();
    EvalResult Evaluated =
        evaluateGraphRefs(Current->body(), BlockArgs, Operands);
    if (Evaluated.Undefined) {
      Result.Undefined = true;
      return Result;
    }

    const Terminator &Term = Current->terminator();
    switch (Term.TermKind) {
    case Terminator::Kind::Return: {
      assert(!Evaluated.Results.empty() &&
             Evaluated.Results[0].ValueSort.isMemory() &&
             "return must pass the memory token first");
      Result.FinalMemory = Evaluated.Results[0].Mem;
      for (unsigned I = 1; I < Evaluated.Results.size(); ++I)
        Result.ReturnValues.push_back(Evaluated.Results[I].Bits);
      return Result;
    }
    case Terminator::Kind::Jump: {
      Current = Term.Then.Target;
      BlockArgs = std::move(Evaluated.Results);
      break;
    }
    case Terminator::Kind::Branch: {
      bool Taken = Evaluated.Results[0].Flag;
      const BlockEdge &Edge = Taken ? Term.Then : Term.Else;
      unsigned Offset = 1 + (Taken ? 0 : Term.Then.Arguments.size());
      std::vector<EvalValue> NextArgs(
          Evaluated.Results.begin() + Offset,
          Evaluated.Results.begin() + Offset + Edge.Arguments.size());
      Current = Edge.Target;
      BlockArgs = std::move(NextArgs);
      break;
    }
    }
  }
}

std::vector<std::string> selgen::verifyFunction(const Function &F) {
  std::vector<std::string> Problems;
  auto problem = [&Problems](const std::string &Where,
                             const std::string &Message) {
    Problems.push_back(Where + ": " + Message);
  };

  if (F.blocks().empty()) {
    Problems.push_back("function has no blocks");
    return Problems;
  }

  for (const auto &BB : F.blocks()) {
    const std::string &Where = BB->name();
    for (const std::string &BodyProblem : verifyGraph(BB->body()))
      problem(Where, BodyProblem);
    if (BB->body().numArgs() == 0 || !BB->body().argSort(0).isMemory())
      problem(Where, "block argument 0 must be the memory token");

    const Terminator &Term = BB->terminator();
    auto checkEdge = [&](const BlockEdge &Edge, const char *Label) {
      if (!Edge.Target) {
        problem(Where, std::string(Label) + " edge has no target");
        return;
      }
      const Graph &TargetBody = Edge.Target->body();
      if (Edge.Arguments.size() != TargetBody.numArgs()) {
        problem(Where, std::string(Label) + " edge passes " +
                           std::to_string(Edge.Arguments.size()) +
                           " arguments, target takes " +
                           std::to_string(TargetBody.numArgs()));
        return;
      }
      for (unsigned I = 0; I < Edge.Arguments.size(); ++I)
        if (Edge.Arguments[I].sort() != TargetBody.argSort(I))
          problem(Where, std::string(Label) + " edge argument " +
                             std::to_string(I) + " has sort " +
                             Edge.Arguments[I].sort().str() + ", target wants " +
                             TargetBody.argSort(I).str());
    };

    switch (Term.TermKind) {
    case Terminator::Kind::Return:
      if (Term.ReturnValues.empty() ||
          !Term.ReturnValues[0].sort().isMemory())
        problem(Where, "return must pass the memory token first");
      break;
    case Terminator::Kind::Jump:
      checkEdge(Term.Then, "jump");
      break;
    case Terminator::Kind::Branch:
      if (!Term.Condition.isValid() || !Term.Condition.sort().isBool())
        problem(Where, "branch condition must be boolean");
      checkEdge(Term.Then, "then");
      checkEdge(Term.Else, "else");
      break;
    }
  }
  return Problems;
}

void selgen::normalizeFunction(Function &F) {
  for (const auto &BB : F.blocks()) {
    std::vector<NodeRef> Operands = BB->terminatorOperands();
    Graph &Body = BB->body();
    Body.setResults(Operands);
    Graph Normalized = normalizeGraph(Body);
    std::vector<NodeRef> NewOperands = Normalized.results();
    Normalized.setResults({});

    Terminator &Term = BB->terminator();
    size_t Index = 0;
    auto take = [&NewOperands, &Index] { return NewOperands[Index++]; };
    switch (Term.TermKind) {
    case Terminator::Kind::Return:
      for (NodeRef &Ref : Term.ReturnValues)
        Ref = take();
      break;
    case Terminator::Kind::Jump:
      for (NodeRef &Ref : Term.Then.Arguments)
        Ref = take();
      break;
    case Terminator::Kind::Branch:
      Term.Condition = take();
      for (NodeRef &Ref : Term.Then.Arguments)
        Ref = take();
      for (NodeRef &Ref : Term.Else.Arguments)
        Ref = take();
      break;
    }
    assert(Index == NewOperands.size() && "terminator rewiring mismatch");
    Body = std::move(Normalized);
  }
}
