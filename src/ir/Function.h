//===- Function.h - Control-flow graphs of basic blocks ---------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole functions for the evaluation pipeline: a CFG of basic blocks,
/// each carrying a single-block Graph as its body. SSA across blocks
/// uses block arguments (the modern equivalent of phi functions).
///
/// Conventions:
/// * Block argument 0 of every block is the incoming memory token.
/// * The entry block's remaining arguments are the function arguments.
/// * Return passes the final memory token plus the return values.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_IR_FUNCTION_H
#define SELGEN_IR_FUNCTION_H

#include "ir/Graph.h"
#include "ir/Interpreter.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace selgen {

class BasicBlock;

/// A CFG edge: target block plus the values passed for its arguments.
struct BlockEdge {
  BasicBlock *Target = nullptr;
  std::vector<NodeRef> Arguments;
};

/// Block terminator: return, unconditional jump, or two-way branch.
struct Terminator {
  enum class Kind { Return, Jump, Branch };
  Kind TermKind = Kind::Return;
  std::vector<NodeRef> ReturnValues; // Return: [memory, values...].
  NodeRef Condition;                 // Branch: a Bool value.
  BlockEdge Then;                    // Branch taken / Jump target.
  BlockEdge Else;                    // Branch not taken.
};

/// A basic block: argument-taking body graph plus terminator.
class BasicBlock {
public:
  BasicBlock(std::string Name, unsigned Width, std::vector<Sort> ArgSorts)
      : Name(std::move(Name)), Body(Width, std::move(ArgSorts)) {}

  const std::string &name() const { return Name; }
  Graph &body() { return Body; }
  const Graph &body() const { return Body; }

  Terminator &terminator() { return Term; }
  const Terminator &terminator() const { return Term; }

  void setReturn(std::vector<NodeRef> Values) {
    Term.TermKind = Terminator::Kind::Return;
    Term.ReturnValues = std::move(Values);
  }
  void setJump(BasicBlock *Target, std::vector<NodeRef> Arguments) {
    Term.TermKind = Terminator::Kind::Jump;
    Term.Then = {Target, std::move(Arguments)};
  }
  void setBranch(NodeRef Condition, BasicBlock *ThenTarget,
                 std::vector<NodeRef> ThenArguments, BasicBlock *ElseTarget,
                 std::vector<NodeRef> ElseArguments) {
    Term.TermKind = Terminator::Kind::Branch;
    Term.Condition = Condition;
    Term.Then = {ThenTarget, std::move(ThenArguments)};
    Term.Else = {ElseTarget, std::move(ElseArguments)};
  }

  /// All NodeRefs the terminator consumes, in a fixed order.
  std::vector<NodeRef> terminatorOperands() const;

private:
  std::string Name;
  Graph Body;
  Terminator Term;
};

/// A function: entry block plus further blocks, all of one data width.
class Function {
public:
  Function(std::string Name, unsigned Width)
      : Name(std::move(Name)), Width(Width) {}

  const std::string &name() const { return Name; }
  unsigned width() const { return Width; }

  /// Creates and owns a new block. The first created block is the
  /// entry. Argument sorts must start with Sort::memory().
  BasicBlock *createBlock(const std::string &BlockName,
                          std::vector<Sort> ArgSorts);

  BasicBlock *entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front().get();
  }
  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }

  /// Total IR operation count over all block bodies, counting only
  /// nodes live for the terminators (the denominator of the paper's
  /// coverage metric).
  unsigned numOperations() const;

private:
  std::string Name;
  unsigned Width;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

/// Outcome of running a function.
struct FunctionResult {
  bool Undefined = false;    ///< Some operation hit undefined behaviour.
  bool StepLimitHit = false; ///< The step budget ran out (likely a loop).
  std::vector<BitValue> ReturnValues;
  std::shared_ptr<MemoryState> FinalMemory;
  uint64_t ExecutedOperations = 0; ///< Dynamic IR operation count.
};

/// Runs \p F with the given W-bit arguments and initial memory.
/// \p MaxSteps bounds the number of executed IR operations.
FunctionResult runFunction(const Function &F,
                           const std::vector<BitValue> &Arguments,
                           const MemoryState &InitialMemory,
                           uint64_t MaxSteps = 1u << 20);

/// Verifies CFG-level invariants (edge argument sorts, memory-first
/// block signatures, terminator sanity). Returns problem descriptions.
std::vector<std::string> verifyFunction(const Function &F);

/// Normalizes every block body in place (rebuilding bodies and
/// re-wiring terminators), as the compiler front end would before
/// instruction selection.
void normalizeFunction(Function &F);

} // namespace selgen

#endif // SELGEN_IR_FUNCTION_H
