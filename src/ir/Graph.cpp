//===- Graph.cpp - Single-block SSA data-dependence graphs -----------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Graph.h"

#include "support/Error.h"

#include <algorithm>
#include <map>
#include <set>

using namespace selgen;

Graph::Graph(unsigned Width, std::vector<Sort> ArgSorts) : Width(Width) {
  for (unsigned I = 0; I < ArgSorts.size(); ++I) {
    Node *ArgNode = addNode(Opcode::Arg, {}, {ArgSorts[I]});
    ArgNode->setArgIndex(I);
    Args.push_back(ArgNode);
  }
}

std::vector<Sort> Graph::argSorts() const {
  std::vector<Sort> Sorts;
  Sorts.reserve(Args.size());
  for (const Node *ArgNode : Args)
    Sorts.push_back(ArgNode->resultSort(0));
  return Sorts;
}

Node *Graph::addNode(Opcode Op, std::vector<NodeRef> Operands,
                     std::vector<Sort> ResultSorts) {
  NodeList.push_back(std::make_unique<Node>(NextId++, Op, std::move(Operands),
                                            std::move(ResultSorts)));
  return NodeList.back().get();
}

NodeRef Graph::createConst(const BitValue &Value) {
  Node *N = addNode(Opcode::Const, {}, {Sort::value(Value.width())});
  N->setConstValue(Value);
  return N->result();
}

NodeRef Graph::createUnary(Opcode Op, NodeRef Operand) {
  assert((Op == Opcode::Not || Op == Opcode::Minus) && "not a unary opcode");
  assert(Operand.sort() == Sort::value(Width) && "operand sort mismatch");
  return addNode(Op, {Operand}, {Sort::value(Width)})->result();
}

NodeRef Graph::createBinary(Opcode Op, NodeRef Lhs, NodeRef Rhs) {
  assert(opcodeArgSorts(Op, Width).size() == 2 && "not a binary opcode");
  assert(Lhs.sort() == Sort::value(Width) && "lhs sort mismatch");
  assert(Rhs.sort() == Sort::value(Width) && "rhs sort mismatch");
  assert(Op != Opcode::Cmp && "use createCmp for comparisons");
  return addNode(Op, {Lhs, Rhs}, {Sort::value(Width)})->result();
}

NodeRef Graph::createCmp(Relation Rel, NodeRef Lhs, NodeRef Rhs) {
  assert(Lhs.sort() == Sort::value(Width) && "lhs sort mismatch");
  assert(Rhs.sort() == Sort::value(Width) && "rhs sort mismatch");
  Node *N = addNode(Opcode::Cmp, {Lhs, Rhs}, {Sort::boolean()});
  N->setRelation(Rel);
  return N->result();
}

NodeRef Graph::createMux(NodeRef Selector, NodeRef TrueValue,
                         NodeRef FalseValue) {
  assert(Selector.sort().isBool() && "selector must be boolean");
  assert(TrueValue.sort() == Sort::value(Width) && "true value mismatch");
  assert(FalseValue.sort() == Sort::value(Width) && "false value mismatch");
  return addNode(Opcode::Mux, {Selector, TrueValue, FalseValue},
                 {Sort::value(Width)})
      ->result();
}

Node *Graph::createLoad(NodeRef Memory, NodeRef Pointer) {
  assert(Memory.sort().isMemory() && "first operand must be memory");
  assert(Pointer.sort() == Sort::value(Width) && "pointer sort mismatch");
  return addNode(Opcode::Load, {Memory, Pointer},
                 {Sort::memory(), Sort::value(Width)});
}

NodeRef Graph::createStore(NodeRef Memory, NodeRef Pointer, NodeRef Value) {
  assert(Memory.sort().isMemory() && "first operand must be memory");
  assert(Pointer.sort() == Sort::value(Width) && "pointer sort mismatch");
  assert(Value.sort() == Sort::value(Width) && "value sort mismatch");
  return addNode(Opcode::Store, {Memory, Pointer, Value}, {Sort::memory()})
      ->result();
}

Node *Graph::createCond(NodeRef Selector) {
  assert(Selector.sort().isBool() && "selector must be boolean");
  return addNode(Opcode::Cond, {Selector},
                 {Sort::boolean(), Sort::boolean()});
}

Node *Graph::createNode(Opcode Op, const std::vector<NodeRef> &Operands) {
  assert(Op != Opcode::Arg && "arguments are created with the graph");
  std::vector<Sort> Expected = opcodeArgSorts(Op, Width);
  assert(Operands.size() == Expected.size() && "operand count mismatch");
  for (unsigned I = 0; I < Operands.size(); ++I) {
    (void)I;
    assert(Operands[I].sort() == Expected[I] && "operand sort mismatch");
  }
  return addNode(Op, Operands, opcodeResultSorts(Op, Width));
}

void Graph::setResults(std::vector<NodeRef> NewResults) {
  Results = std::move(NewResults);
}

std::vector<Sort> Graph::resultSorts() const {
  std::vector<Sort> Sorts;
  Sorts.reserve(Results.size());
  for (const NodeRef &Ref : Results)
    Sorts.push_back(Ref.sort());
  return Sorts;
}

std::vector<Node *> Graph::scheduledNodes() const {
  // Creation order already respects dependencies because operands must
  // exist when a node is created; filter out the Arg pseudo-nodes.
  std::vector<Node *> Scheduled;
  for (const auto &N : NodeList)
    if (N->opcode() != Opcode::Arg)
      Scheduled.push_back(N.get());
  return Scheduled;
}

unsigned Graph::numOperations() const {
  unsigned Count = 0;
  for (const auto &N : NodeList)
    if (N->opcode() != Opcode::Arg)
      ++Count;
  return Count;
}

std::vector<Node *> Graph::liveNodes() const { return liveNodesFrom(Results); }

std::vector<Node *>
Graph::liveNodesFrom(const std::vector<NodeRef> &Roots) const {
  std::set<const Node *> Live;
  std::vector<Node *> Worklist;
  for (const NodeRef &Ref : Roots)
    if (Ref.isValid() && Live.insert(Ref.Def).second)
      Worklist.push_back(Ref.Def);
  while (!Worklist.empty()) {
    Node *N = Worklist.back();
    Worklist.pop_back();
    for (const NodeRef &Operand : N->operands())
      if (Live.insert(Operand.Def).second)
        Worklist.push_back(Operand.Def);
  }
  std::vector<Node *> Ordered;
  for (const auto &N : NodeList)
    if (Live.count(N.get()))
      Ordered.push_back(N.get());
  return Ordered;
}

void Graph::removeDeadNodes() {
  std::set<const Node *> Live;
  for (Node *N : liveNodes())
    Live.insert(N);
  auto IsDead = [&Live](const std::unique_ptr<Node> &N) {
    return N->opcode() != Opcode::Arg && !Live.count(N.get());
  };
  NodeList.erase(std::remove_if(NodeList.begin(), NodeList.end(), IsDead),
                 NodeList.end());
}

std::string Graph::fingerprint() const {
  // Number the live nodes by depth-first post-order from the results,
  // so structurally identical graphs fingerprint identically no matter
  // in which order their nodes were created.
  std::map<const Node *, unsigned> Numbering;
  std::vector<Node *> Live;
  auto visit = [&](auto &&Self, Node *N) -> void {
    if (Numbering.count(N))
      return;
    // Mark before recursing is unnecessary: graphs are acyclic.
    for (const NodeRef &Operand : N->operands())
      Self(Self, Operand.Def);
    Numbering[N] = Numbering.size();
    Live.push_back(N);
  };
  for (const NodeRef &Ref : Results)
    if (Ref.isValid())
      visit(visit, Ref.Def);

  std::string Result = "w" + std::to_string(Width) + ";";
  for (Node *N : Live) {
    Result += opcodeName(N->opcode());
    switch (N->opcode()) {
    case Opcode::Arg:
      Result += "#" + std::to_string(N->argIndex());
      break;
    case Opcode::Const:
      Result += "#" + N->constValue().toHexString() + ":" +
                std::to_string(N->constValue().width());
      break;
    case Opcode::Cmp:
      Result += "#" + std::string(relationName(N->relation()));
      break;
    default:
      break;
    }
    Result += "(";
    for (unsigned I = 0; I < N->numOperands(); ++I) {
      if (I != 0)
        Result += ",";
      NodeRef Operand = N->operand(I);
      Result += std::to_string(Numbering.at(Operand.Def)) + "." +
                std::to_string(Operand.Index);
    }
    Result += ");";
  }
  Result += "->";
  for (unsigned I = 0; I < Results.size(); ++I) {
    if (I != 0)
      Result += ",";
    Result += std::to_string(Numbering.at(Results[I].Def)) + "." +
              std::to_string(Results[I].Index);
  }
  return Result;
}

Graph Graph::clone() const {
  Graph Copy(Width, argSorts());
  std::map<const Node *, Node *> Mapping;
  for (unsigned I = 0; I < Args.size(); ++I)
    Mapping[Args[I]] = Copy.Args[I];
  for (const auto &N : NodeList) {
    if (N->opcode() == Opcode::Arg)
      continue;
    std::vector<NodeRef> Operands;
    Operands.reserve(N->numOperands());
    for (const NodeRef &Operand : N->operands())
      Operands.emplace_back(Mapping.at(Operand.Def), Operand.Index);
    Node *NewNode = Copy.addNode(N->opcode(), std::move(Operands), [&] {
      std::vector<Sort> Sorts;
      for (unsigned I = 0; I < N->numResults(); ++I)
        Sorts.push_back(N->resultSort(I));
      return Sorts;
    }());
    if (N->opcode() == Opcode::Const)
      NewNode->setConstValue(N->constValue());
    if (N->opcode() == Opcode::Cmp)
      NewNode->setRelation(N->relation());
    Mapping[N.get()] = NewNode;
  }
  std::vector<NodeRef> NewResults;
  for (const NodeRef &Ref : Results)
    NewResults.emplace_back(Mapping.at(Ref.Def), Ref.Index);
  Copy.setResults(std::move(NewResults));
  return Copy;
}

Graph Graph::canonicalized() const {
  Graph Copy(Width, argSorts());
  std::map<const Node *, Node *> Mapping;
  for (unsigned I = 0; I < Args.size(); ++I)
    Mapping[Args[I]] = Copy.Args[I];
  // Same traversal as fingerprint(): operands before users, results
  // left to right. Graphs are acyclic, so no visit-in-progress mark.
  auto visit = [&](auto &&Self, const Node *N) -> void {
    if (Mapping.count(N))
      return;
    for (const NodeRef &Operand : N->operands())
      Self(Self, Operand.Def);
    std::vector<NodeRef> Operands;
    Operands.reserve(N->numOperands());
    for (const NodeRef &Operand : N->operands())
      Operands.emplace_back(Mapping.at(Operand.Def), Operand.Index);
    Node *NewNode = Copy.addNode(N->opcode(), std::move(Operands), [&] {
      std::vector<Sort> Sorts;
      for (unsigned I = 0; I < N->numResults(); ++I)
        Sorts.push_back(N->resultSort(I));
      return Sorts;
    }());
    if (N->opcode() == Opcode::Const)
      NewNode->setConstValue(N->constValue());
    if (N->opcode() == Opcode::Cmp)
      NewNode->setRelation(N->relation());
    Mapping[N] = NewNode;
  };
  for (const NodeRef &Ref : Results)
    if (Ref.isValid())
      visit(visit, Ref.Def);
  std::vector<NodeRef> NewResults;
  for (const NodeRef &Ref : Results)
    NewResults.push_back(Ref.isValid()
                             ? NodeRef(Mapping.at(Ref.Def), Ref.Index)
                             : NodeRef());
  Copy.setResults(std::move(NewResults));
  return Copy;
}
