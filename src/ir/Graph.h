//===- Graph.h - Single-block SSA data-dependence graphs --------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graph is the unit the whole pipeline revolves around: an IR pattern
/// (paper Figure 1a) *is* a Graph, a basic block's body is a Graph, and
/// the synthesizer reconstructs Graphs from SMT models. A Graph has a
/// typed argument list, an owned set of operation nodes, and a typed
/// result list — mirroring the instruction interface (Sa, Sr) of the
/// paper.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_IR_GRAPH_H
#define SELGEN_IR_GRAPH_H

#include "ir/Node.h"

#include <memory>
#include <string>
#include <vector>

namespace selgen {

/// A single-block SSA graph with explicit arguments and results.
class Graph {
public:
  /// Creates a graph whose data operations act on \p Width-bit values
  /// and which takes arguments of the given sorts.
  Graph(unsigned Width, std::vector<Sort> ArgSorts);

  Graph(const Graph &) = delete;
  Graph &operator=(const Graph &) = delete;
  Graph(Graph &&) = default;
  Graph &operator=(Graph &&) = default;

  unsigned width() const { return Width; }

  // -- Arguments ---------------------------------------------------------
  unsigned numArgs() const { return Args.size(); }
  Sort argSort(unsigned I) const { return Args[I]->resultSort(0); }
  std::vector<Sort> argSorts() const;
  /// The I-th argument as a usable value.
  NodeRef arg(unsigned I) const {
    assert(I < Args.size() && "argument index out of range");
    return NodeRef(Args[I], 0);
  }

  // -- Node creation -----------------------------------------------------
  NodeRef createConst(const BitValue &Value);
  NodeRef createUnary(Opcode Op, NodeRef Operand);
  NodeRef createBinary(Opcode Op, NodeRef Lhs, NodeRef Rhs);
  NodeRef createCmp(Relation Rel, NodeRef Lhs, NodeRef Rhs);
  NodeRef createMux(NodeRef Selector, NodeRef TrueValue, NodeRef FalseValue);
  /// Returns the Load node; result 0 is the memory token, result 1 the
  /// loaded value.
  Node *createLoad(NodeRef Memory, NodeRef Pointer);
  /// Returns the memory token produced by the store.
  NodeRef createStore(NodeRef Memory, NodeRef Pointer, NodeRef Value);
  /// Returns the Cond node; result 0 is "taken", result 1 "fall through".
  Node *createCond(NodeRef Selector);

  /// Generic creation from opcode and operand list; attributes must be
  /// set afterwards for Const/Cmp. Used by the synthesizer's pattern
  /// reconstruction and the parser.
  Node *createNode(Opcode Op, const std::vector<NodeRef> &Operands);

  // -- Results -----------------------------------------------------------
  void setResults(std::vector<NodeRef> NewResults);
  const std::vector<NodeRef> &results() const { return Results; }
  std::vector<Sort> resultSorts() const;

  // -- Traversal ---------------------------------------------------------
  /// All nodes, including Arg nodes, in creation order.
  const std::vector<std::unique_ptr<Node>> &nodes() const { return NodeList; }

  /// All non-Arg operation nodes in a dependency-respecting order.
  std::vector<Node *> scheduledNodes() const;

  /// Non-Arg operation count (the pattern size of the paper's tables).
  unsigned numOperations() const;

  /// Returns the nodes reachable from the results (including Args).
  std::vector<Node *> liveNodes() const;

  /// Returns the nodes reachable from \p Roots (including Args), in
  /// creation order.
  std::vector<Node *> liveNodesFrom(const std::vector<NodeRef> &Roots) const;

  /// Removes nodes not reachable from any result. Arg nodes survive.
  void removeDeadNodes();

  // -- Structural identity -----------------------------------------------
  /// A canonical serialization of the reachable graph. Two graphs get
  /// the same fingerprint iff they are structurally identical up to
  /// node ids (argument indices, opcodes, attributes, wiring, results).
  /// The duplicate filter of the pattern library keys on this.
  std::string fingerprint() const;

  /// Deep copy.
  Graph clone() const;

  /// Deep copy with live nodes renumbered in the fingerprint's
  /// depth-first post-order from the results, so structurally
  /// identical graphs also serialize identically regardless of the
  /// order their nodes were created in. Dead nodes are dropped.
  Graph canonicalized() const;

private:
  unsigned Width;
  std::vector<std::unique_ptr<Node>> NodeList;
  std::vector<Node *> Args;
  std::vector<NodeRef> Results;
  unsigned NextId = 0;

  Node *addNode(Opcode Op, std::vector<NodeRef> Operands,
                std::vector<Sort> ResultSorts);
};

} // namespace selgen

#endif // SELGEN_IR_GRAPH_H
