//===- GraphViz.cpp - DOT rendering of IR graphs -----------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/GraphViz.h"

#include <map>

using namespace selgen;

namespace {

std::string nodeLabel(const Node *N) {
  switch (N->opcode()) {
  case Opcode::Arg:
    return "a" + std::to_string(N->argIndex());
  case Opcode::Const:
    return "Const " + N->constValue().toSignedString();
  case Opcode::Cmp:
    return std::string("Cmp ") + relationName(N->relation());
  default:
    return opcodeName(N->opcode());
  }
}

std::string nodeShape(const Node *N) {
  switch (N->opcode()) {
  case Opcode::Arg:
    return "ellipse";
  case Opcode::Const:
    return "plaintext";
  case Opcode::Load:
  case Opcode::Store:
    return "box3d";
  default:
    return "box";
  }
}

/// Emits the nodes and data edges of one graph with a name prefix, so
/// several block bodies can share a file. Returns the mapping used.
std::map<const Node *, std::string>
emitBody(const Graph &G, const std::vector<NodeRef> &Roots,
         const std::string &Prefix, std::string &Out) {
  std::map<const Node *, std::string> Names;
  for (Node *N : G.liveNodesFrom(Roots)) {
    std::string Name = Prefix + "n" + std::to_string(N->id());
    Names[N] = Name;
    Out += "  " + Name + " [label=\"" + nodeLabel(N) + "\", shape=" +
           nodeShape(N) + "];\n";
  }
  for (Node *N : G.liveNodesFrom(Roots)) {
    for (unsigned I = 0; I < N->numOperands(); ++I) {
      NodeRef Operand = N->operand(I);
      std::string Attributes;
      if (Operand.sort().isMemory())
        Attributes = " [style=dashed, color=gray40]"; // Memory chain.
      else if (Operand.sort().isBool())
        Attributes = " [color=blue]";
      Out += "  " + Names.at(Operand.Def) + " -> " + Names.at(N) +
             Attributes + ";\n";
    }
  }
  return Names;
}

} // namespace

std::string selgen::graphToDot(const Graph &G, const std::string &Name) {
  std::string Out = "digraph " + Name + " {\n  rankdir=BT;\n";
  std::map<const Node *, std::string> Names =
      emitBody(G, G.results(), "", Out);
  // Result markers.
  for (unsigned I = 0; I < G.results().size(); ++I) {
    NodeRef Ref = G.results()[I];
    std::string Marker = "res" + std::to_string(I);
    Out += "  " + Marker + " [label=\"Res" + std::to_string(I) +
           "\", shape=ellipse, style=dotted];\n";
    Out += "  " + Names.at(Ref.Def) + " -> " + Marker +
           " [style=dotted];\n";
  }
  Out += "}\n";
  return Out;
}

std::string selgen::functionToDot(const Function &F) {
  std::string Out = "digraph " + F.name() + " {\n  rankdir=BT;\n";
  std::map<const BasicBlock *, std::string> BlockAnchors;

  unsigned BlockIndex = 0;
  for (const auto &BB : F.blocks()) {
    std::string Prefix = "b" + std::to_string(BlockIndex++) + "_";
    Out += "  subgraph cluster_" + Prefix + " {\n    label=\"" +
           BB->name() + "\";\n";
    std::string Body;
    std::map<const Node *, std::string> Names =
        emitBody(BB->body(), BB->terminatorOperands(), Prefix, Body);
    // Indent the body inside the cluster.
    Out += Body;
    std::string Anchor = Prefix + "term";
    const char *TermLabel =
        BB->terminator().TermKind == Terminator::Kind::Return ? "Return"
        : BB->terminator().TermKind == Terminator::Kind::Jump ? "Jmp"
                                                              : "Branch";
    Out += "    " + Anchor + " [label=\"" + TermLabel +
           "\", shape=diamond];\n";
    for (const NodeRef &Operand : BB->terminatorOperands())
      if (Names.count(Operand.Def))
        Out += "    " + Names.at(Operand.Def) + " -> " + Anchor +
               " [style=dotted];\n";
    Out += "  }\n";
    BlockAnchors[BB.get()] = Anchor;
  }

  // Control-flow edges.
  for (const auto &BB : F.blocks()) {
    const Terminator &Term = BB->terminator();
    std::string From = BlockAnchors.at(BB.get());
    auto edge = [&](const BlockEdge &Edge, const char *Label) {
      if (Edge.Target)
        Out += "  " + From + " -> " + BlockAnchors.at(Edge.Target) +
               " [label=\"" + Label +
               "\", style=bold, constraint=false];\n";
    };
    if (Term.TermKind == Terminator::Kind::Jump)
      edge(Term.Then, "");
    if (Term.TermKind == Terminator::Kind::Branch) {
      edge(Term.Then, "taken");
      edge(Term.Else, "else");
    }
  }
  Out += "}\n";
  return Out;
}
