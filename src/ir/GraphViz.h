//===- GraphViz.h - DOT rendering of IR graphs -------------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graphviz DOT output for graphs and whole functions, in the style of
/// libFirm's VCG dumps — patterns like paper Figure 1a become pictures
/// with `dot -Tsvg`. Memory edges are drawn dashed so the memory chain
/// of Section 4.1 is visible at a glance.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_IR_GRAPHVIZ_H
#define SELGEN_IR_GRAPHVIZ_H

#include "ir/Function.h"
#include "ir/Graph.h"

#include <string>

namespace selgen {

/// Renders the live part of \p G as a DOT digraph named \p Name.
std::string graphToDot(const Graph &G, const std::string &Name = "pattern");

/// Renders a whole function: one cluster per basic block, dotted
/// control-flow edges between terminators and block headers.
std::string functionToDot(const Function &F);

} // namespace selgen

#endif // SELGEN_IR_GRAPHVIZ_H
