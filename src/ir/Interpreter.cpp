//===- Interpreter.cpp - Concrete IR evaluation ----------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"

#include "support/Error.h"

#include <map>

using namespace selgen;

bool selgen::evaluateRelation(Relation Rel, const BitValue &Lhs,
                              const BitValue &Rhs) {
  switch (Rel) {
  case Relation::Eq:
    return Lhs == Rhs;
  case Relation::Ne:
    return Lhs != Rhs;
  case Relation::Ult:
    return Lhs.ult(Rhs);
  case Relation::Ule:
    return Lhs.ule(Rhs);
  case Relation::Ugt:
    return Lhs.ugt(Rhs);
  case Relation::Uge:
    return Lhs.uge(Rhs);
  case Relation::Slt:
    return Lhs.slt(Rhs);
  case Relation::Sle:
    return Lhs.sle(Rhs);
  case Relation::Sgt:
    return Lhs.sgt(Rhs);
  case Relation::Sge:
    return Lhs.sge(Rhs);
  }
  SELGEN_UNREACHABLE("bad relation");
}

namespace {

/// Per-evaluation state: values for every (node, result index).
class GraphEvaluator {
public:
  GraphEvaluator(const Graph &G, const std::vector<EvalValue> &Args)
      : G(G), Args(Args) {}

  EvalResult run(const std::vector<NodeRef> &Refs) {
    assert(Args.size() == G.numArgs() && "argument count mismatch");
    for (unsigned I = 0; I < Args.size(); ++I) {
      (void)I;
      assert(Args[I].ValueSort == G.argSort(I) && "argument sort mismatch");
    }
    for (Node *N : G.liveNodesFrom(Refs))
      evaluateNode(N);
    EvalResult Result;
    Result.Undefined = Undefined;
    for (const NodeRef &Ref : Refs)
      Result.Results.push_back(value(Ref));
    return Result;
  }

private:
  const Graph &G;
  const std::vector<EvalValue> &Args;
  std::map<std::pair<const Node *, unsigned>, EvalValue> Values;
  bool Undefined = false;

  const EvalValue &value(const NodeRef &Ref) const {
    return Values.at({Ref.Def, Ref.Index});
  }

  void define(Node *N, unsigned Index, EvalValue Value) {
    Values[{N, Index}] = std::move(Value);
  }

  const BitValue &bits(Node *N, unsigned OperandIndex) const {
    return value(N->operand(OperandIndex)).Bits;
  }

  /// Copies the memory operand so the producer's state stays intact
  /// (each M-value is an immutable snapshot, as in SSA).
  std::shared_ptr<MemoryState> copyMemory(Node *N, unsigned OperandIndex) {
    const EvalValue &Operand = value(N->operand(OperandIndex));
    assert(Operand.ValueSort.isMemory() && "expected a memory operand");
    return std::make_shared<MemoryState>(*Operand.Mem);
  }

  void evaluateNode(Node *N) {
    unsigned Width = G.width();
    switch (N->opcode()) {
    case Opcode::Arg:
      define(N, 0, Args[N->argIndex()]);
      return;
    case Opcode::Const:
      define(N, 0, EvalValue::fromBits(N->constValue()));
      return;
    case Opcode::Add:
      define(N, 0, EvalValue::fromBits(bits(N, 0).add(bits(N, 1))));
      return;
    case Opcode::Sub:
      define(N, 0, EvalValue::fromBits(bits(N, 0).sub(bits(N, 1))));
      return;
    case Opcode::Mul:
      define(N, 0, EvalValue::fromBits(bits(N, 0).mul(bits(N, 1))));
      return;
    case Opcode::And:
      define(N, 0, EvalValue::fromBits(bits(N, 0).bitAnd(bits(N, 1))));
      return;
    case Opcode::Or:
      define(N, 0, EvalValue::fromBits(bits(N, 0).bitOr(bits(N, 1))));
      return;
    case Opcode::Xor:
      define(N, 0, EvalValue::fromBits(bits(N, 0).bitXor(bits(N, 1))));
      return;
    case Opcode::Not:
      define(N, 0, EvalValue::fromBits(bits(N, 0).bitNot()));
      return;
    case Opcode::Minus:
      define(N, 0, EvalValue::fromBits(bits(N, 0).neg()));
      return;
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::Shrs: {
      const BitValue &Amount = bits(N, 1);
      // C semantics: undefined unless 0 <= amount < width.
      if (Amount.uge(BitValue(Width, Width))) {
        Undefined = true;
        define(N, 0, EvalValue::fromBits(BitValue::zero(Width)));
        return;
      }
      unsigned Shift = static_cast<unsigned>(Amount.zextValue());
      const BitValue &Value = bits(N, 0);
      BitValue Result = N->opcode() == Opcode::Shl    ? Value.shl(Shift)
                        : N->opcode() == Opcode::Shr ? Value.lshr(Shift)
                                                      : Value.ashr(Shift);
      define(N, 0, EvalValue::fromBits(Result));
      return;
    }
    case Opcode::Load: {
      std::shared_ptr<MemoryState> State = copyMemory(N, 0);
      uint64_t Address = bits(N, 1).zextValue();
      BitValue Loaded = State->loadValue(Address, Width / 8);
      define(N, 0, EvalValue::fromMemory(std::move(State)));
      define(N, 1, EvalValue::fromBits(std::move(Loaded)));
      return;
    }
    case Opcode::Store: {
      std::shared_ptr<MemoryState> State = copyMemory(N, 0);
      uint64_t Address = bits(N, 1).zextValue();
      State->storeValue(Address, bits(N, 2));
      define(N, 0, EvalValue::fromMemory(std::move(State)));
      return;
    }
    case Opcode::Cmp:
      define(N, 0,
             EvalValue::fromBool(
                 evaluateRelation(N->relation(), bits(N, 0), bits(N, 1))));
      return;
    case Opcode::Mux: {
      bool Selector = value(N->operand(0)).Flag;
      define(N, 0, Selector ? value(N->operand(1)) : value(N->operand(2)));
      return;
    }
    case Opcode::Cond: {
      bool Selector = value(N->operand(0)).Flag;
      define(N, 0, EvalValue::fromBool(Selector));
      define(N, 1, EvalValue::fromBool(!Selector));
      return;
    }
    }
    SELGEN_UNREACHABLE("bad opcode");
  }
};

} // namespace

EvalResult selgen::evaluateGraph(const Graph &G,
                                 const std::vector<EvalValue> &Args) {
  return GraphEvaluator(G, Args).run(G.results());
}

EvalResult selgen::evaluateGraphRefs(const Graph &G,
                                     const std::vector<EvalValue> &Args,
                                     const std::vector<NodeRef> &Refs) {
  return GraphEvaluator(G, Args).run(Refs);
}
