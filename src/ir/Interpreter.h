//===- Interpreter.h - Concrete IR evaluation --------------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reference (concrete) semantics for the IR. This is the executable
/// twin of the SMT postconditions in semantics/IrSemantics: the
/// property tests assert that both agree on random inputs, and the
/// evaluation harness uses it as the oracle for selected machine code.
///
/// The interpreter tracks precondition violations (shift amounts out of
/// range) the way the paper's P predicates do: a violated precondition
/// makes the affected results undefined.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_IR_INTERPRETER_H
#define SELGEN_IR_INTERPRETER_H

#include "ir/Graph.h"
#include "ir/Memory.h"

#include <memory>
#include <vector>

namespace selgen {

/// A runtime value of any sort.
struct EvalValue {
  Sort ValueSort = Sort::boolean();
  BitValue Bits;                    // Valid if ValueSort.isValue().
  bool Flag = false;                // Valid if ValueSort.isBool().
  std::shared_ptr<MemoryState> Mem; // Valid if ValueSort.isMemory().

  static EvalValue fromBits(BitValue Value) {
    EvalValue Result;
    Result.ValueSort = Sort::value(Value.width());
    Result.Bits = std::move(Value);
    return Result;
  }
  static EvalValue fromBool(bool Value) {
    EvalValue Result;
    Result.ValueSort = Sort::boolean();
    Result.Flag = Value;
    return Result;
  }
  static EvalValue fromMemory(std::shared_ptr<MemoryState> State) {
    EvalValue Result;
    Result.ValueSort = Sort::memory();
    Result.Mem = std::move(State);
    return Result;
  }
};

/// The outcome of evaluating a graph.
struct EvalResult {
  /// True if any operation's precondition was violated; the result
  /// values are then meaningless (the behaviour is undefined).
  bool Undefined = false;
  std::vector<EvalValue> Results;
};

/// Evaluates \p G on \p Args (which must match the graph's argument
/// sorts). Memory operands are deep-copied internally, so the caller's
/// MemoryState objects are not modified.
EvalResult evaluateGraph(const Graph &G, const std::vector<EvalValue> &Args);

/// Like evaluateGraph, but computes the values of \p Refs instead of
/// the graph's declared results. Used by the CFG interpreter to
/// evaluate terminator operands.
EvalResult evaluateGraphRefs(const Graph &G,
                             const std::vector<EvalValue> &Args,
                             const std::vector<NodeRef> &Refs);

/// Evaluates the concrete semantics of a comparison.
bool evaluateRelation(Relation Rel, const BitValue &Lhs, const BitValue &Rhs);

} // namespace selgen

#endif // SELGEN_IR_INTERPRETER_H
