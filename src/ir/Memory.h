//===- Memory.h - Concrete memory state --------------------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concrete counterpart of the paper's M-values: a sparse
/// byte-addressable memory plus per-address access flags. The access
/// flags exist for the same reason as in the SMT model (Section 4.1):
/// a load must change the memory token so that the chaining of memory
/// operations is observable, and the test oracle can check that a
/// pattern reads exactly the addresses the goal instruction reads.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_IR_MEMORY_H
#define SELGEN_IR_MEMORY_H

#include "support/BitValue.h"

#include <cstdint>
#include <map>

namespace selgen {

/// Sparse byte-addressable memory with access flags.
class MemoryState {
public:
  MemoryState() = default;

  uint8_t loadByte(uint64_t Address) {
    AccessFlags[Address] = true;
    auto It = Bytes.find(Address);
    return It == Bytes.end() ? 0 : It->second;
  }

  /// Reads without setting the access flag (for oracles and dumps).
  uint8_t peekByte(uint64_t Address) const {
    auto It = Bytes.find(Address);
    return It == Bytes.end() ? 0 : It->second;
  }

  void storeByte(uint64_t Address, uint8_t Value) { Bytes[Address] = Value; }

  /// Loads \p NumBytes bytes little-endian starting at \p Address.
  BitValue loadValue(uint64_t Address, unsigned NumBytes) {
    BitValue Result(NumBytes * 8, 0);
    for (unsigned I = 0; I < NumBytes; ++I)
      Result = Result.insert(I * 8, BitValue(8, loadByte(Address + I)));
    return Result;
  }

  /// Stores \p Value little-endian starting at \p Address.
  void storeValue(uint64_t Address, const BitValue &Value) {
    assert(Value.width() % 8 == 0 && "store width must be whole bytes");
    for (unsigned I = 0; I < Value.width() / 8; ++I)
      storeByte(Address + I,
                static_cast<uint8_t>(Value.extract(I * 8 + 7, I * 8)
                                         .zextValue()));
  }

  bool wasAccessed(uint64_t Address) const {
    auto It = AccessFlags.find(Address);
    return It != AccessFlags.end() && It->second;
  }

  const std::map<uint64_t, uint8_t> &bytes() const { return Bytes; }
  const std::map<uint64_t, bool> &accessFlags() const { return AccessFlags; }

  /// Contents-and-flags equality; the oracle for "the pattern has the
  /// same memory effect as the goal".
  bool operator==(const MemoryState &RHS) const {
    return normalizedBytes() == RHS.normalizedBytes() &&
           AccessFlags == RHS.AccessFlags;
  }
  bool operator!=(const MemoryState &RHS) const { return !(*this == RHS); }

private:
  std::map<uint64_t, uint8_t> Bytes;
  std::map<uint64_t, bool> AccessFlags;

  /// Bytes with explicit zeroes dropped, so "never written" and
  /// "written zero" compare equal (both read back as zero).
  std::map<uint64_t, uint8_t> normalizedBytes() const {
    std::map<uint64_t, uint8_t> Result;
    for (const auto &[Address, Value] : Bytes)
      if (Value != 0)
        Result.emplace(Address, Value);
    return Result;
  }
};

} // namespace selgen

#endif // SELGEN_IR_MEMORY_H
