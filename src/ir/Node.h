//===- Node.h - IR graph nodes -----------------------------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Nodes of the SSA data-dependence graph. An operation may have
/// multiple results (Load yields a memory token and a value, Cond
/// yields two jump outcomes), so operands reference a (node, result
/// index) pair rather than a node alone.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_IR_NODE_H
#define SELGEN_IR_NODE_H

#include "ir/Opcode.h"
#include "support/BitValue.h"

#include <vector>

namespace selgen {

class Node;

/// A use of one specific result of a node.
struct NodeRef {
  Node *Def = nullptr;
  unsigned Index = 0;

  NodeRef() = default;
  NodeRef(Node *Def, unsigned Index = 0) : Def(Def), Index(Index) {}

  bool isValid() const { return Def != nullptr; }
  Sort sort() const;

  bool operator==(const NodeRef &RHS) const {
    return Def == RHS.Def && Index == RHS.Index;
  }
  bool operator!=(const NodeRef &RHS) const { return !(*this == RHS); }
};

/// A single IR operation instance inside a Graph.
///
/// Attribute storage is unified: Const carries its value, Cmp its
/// relation, Arg its argument index. Nodes are owned by their Graph and
/// identified by a graph-unique id.
class Node {
public:
  Node(unsigned Id, Opcode Op, std::vector<NodeRef> Operands,
       std::vector<Sort> ResultSorts)
      : Id(Id), Op(Op), Operands(std::move(Operands)),
        ResultSorts(std::move(ResultSorts)) {}

  unsigned id() const { return Id; }
  Opcode opcode() const { return Op; }

  unsigned numOperands() const { return Operands.size(); }
  NodeRef operand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  void setOperand(unsigned I, NodeRef Ref) {
    assert(I < Operands.size() && "operand index out of range");
    Operands[I] = Ref;
  }
  const std::vector<NodeRef> &operands() const { return Operands; }

  unsigned numResults() const { return ResultSorts.size(); }
  Sort resultSort(unsigned I) const {
    assert(I < ResultSorts.size() && "result index out of range");
    return ResultSorts[I];
  }
  NodeRef result(unsigned I = 0) { return NodeRef(this, I); }

  // Attribute accessors; asserted against the opcode.
  const BitValue &constValue() const {
    assert(Op == Opcode::Const && "not a Const node");
    return ConstValue;
  }
  void setConstValue(BitValue Value) {
    assert(Op == Opcode::Const && "not a Const node");
    ConstValue = std::move(Value);
  }

  Relation relation() const {
    assert(Op == Opcode::Cmp && "not a Cmp node");
    return Rel;
  }
  void setRelation(Relation NewRel) {
    assert(Op == Opcode::Cmp && "not a Cmp node");
    Rel = NewRel;
  }

  unsigned argIndex() const {
    assert(Op == Opcode::Arg && "not an Arg node");
    return ArgIdx;
  }
  void setArgIndex(unsigned Index) {
    assert(Op == Opcode::Arg && "not an Arg node");
    ArgIdx = Index;
  }

private:
  unsigned Id;
  Opcode Op;
  std::vector<NodeRef> Operands;
  std::vector<Sort> ResultSorts;

  BitValue ConstValue;
  Relation Rel = Relation::Eq;
  unsigned ArgIdx = 0;
};

inline Sort NodeRef::sort() const {
  assert(Def && "sort of invalid NodeRef");
  return Def->resultSort(Index);
}

} // namespace selgen

#endif // SELGEN_IR_NODE_H
