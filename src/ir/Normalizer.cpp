//===- Normalizer.cpp - IR canonicalization ---------------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Normalizer.h"

#include "analysis/Dataflow.h"
#include "ir/Interpreter.h"
#include "support/Error.h"

#include <map>

using namespace selgen;

namespace {

/// Rewrites a graph bottom-up, applying local rules and value
/// numbering (CSE). A single pass suffices because operands are always
/// rewritten before their users and every rule produces already-normal
/// nodes.
class NormalizerImpl {
public:
  NormalizerImpl(const Graph &Old)
      : Old(Old), New(Old.width(), Old.argSorts()) {}

  Graph run() {
    for (unsigned I = 0; I < Old.numArgs(); ++I)
      Mapping[{Old.arg(I).Def, 0}] = New.arg(I);
    for (Node *N : Old.liveNodes())
      if (N->opcode() != Opcode::Arg)
        rewriteNode(N);
    std::vector<NodeRef> Results;
    for (const NodeRef &Ref : Old.results())
      Results.push_back(Mapping.at({Ref.Def, Ref.Index}));
    New.setResults(std::move(Results));
    New.removeDeadNodes();
    return std::move(New);
  }

private:
  const Graph &Old;
  Graph New;
  /// Known-bits/range facts over the output graph, driving the
  /// fact-guarded rewrites. Operands are always rewritten before their
  /// users, so querying while New grows is safe (facts memoize per
  /// node, and nodes never change once created).
  GraphFacts NewFacts{New};
  std::map<std::pair<const Node *, unsigned>, NodeRef> Mapping;
  std::map<std::string, Node *> ValueNumbers;
  std::map<std::pair<const Node *, unsigned>, std::string> KeyCache;

  unsigned width() const { return Old.width(); }

  static const Node *asConst(NodeRef Ref) {
    return Ref.Def->opcode() == Opcode::Const ? Ref.Def : nullptr;
  }

  NodeRef makeConst(const BitValue &Value) {
    return numbered(Opcode::Const, {}, Value.toHexString(), [&] {
      return New.createConst(Value).Def;
    });
  }

  /// Deterministic structural key of an already-rewritten value, used
  /// to order commutative operands. Memoized, so shared subgraphs cost
  /// linear time.
  std::string operandKey(NodeRef Ref) {
    auto CacheKey = std::make_pair(const_cast<const Node *>(Ref.Def),
                                   Ref.Index);
    auto It = KeyCache.find(CacheKey);
    if (It != KeyCache.end())
      return It->second;
    const Node *N = Ref.Def;
    std::string Key;
    switch (N->opcode()) {
    case Opcode::Arg:
      Key = "a" + std::to_string(N->argIndex());
      break;
    case Opcode::Const:
      Key = "c" + N->constValue().toHexString();
      break;
    default:
      Key = opcodeName(N->opcode());
      if (N->opcode() == Opcode::Cmp)
        Key += relationName(N->relation());
      Key += "(";
      for (const NodeRef &Operand : N->operands())
        Key += operandKey(Operand) + ",";
      Key += ")";
    }
    if (N->numResults() > 1)
      Key += "." + std::to_string(Ref.Index);
    KeyCache[CacheKey] = Key;
    return Key;
  }

  /// Value numbering: returns the existing node for \p Key or creates
  /// one via \p Create.
  template <typename CreateFn>
  NodeRef numbered(Opcode Op, const std::vector<NodeRef> &Operands,
                   const std::string &Attribute, CreateFn Create) {
    std::string Key = std::string(opcodeName(Op)) + "[" + Attribute + "]";
    for (const NodeRef &Operand : Operands)
      Key += std::to_string(Operand.Def->id()) + "." +
             std::to_string(Operand.Index) + ",";
    auto It = ValueNumbers.find(Key);
    if (It != ValueNumbers.end())
      return NodeRef(It->second, 0);
    Node *N = Create();
    ValueNumbers[Key] = N;
    return NodeRef(N, 0);
  }

  NodeRef makeUnary(Opcode Op, NodeRef Operand) {
    return numbered(Op, {Operand}, "",
                    [&] { return New.createUnary(Op, Operand).Def; });
  }

  NodeRef makeBinaryRaw(Opcode Op, NodeRef Lhs, NodeRef Rhs) {
    return numbered(Op, {Lhs, Rhs}, "",
                    [&] { return New.createBinary(Op, Lhs, Rhs).Def; });
  }

  void rewriteNode(Node *N) {
    std::vector<NodeRef> Operands;
    Operands.reserve(N->numOperands());
    for (const NodeRef &Operand : N->operands())
      Operands.push_back(Mapping.at({Operand.Def, Operand.Index}));

    switch (N->opcode()) {
    case Opcode::Arg:
      SELGEN_UNREACHABLE("Arg nodes are premapped");
    case Opcode::Const:
      Mapping[{N, 0}] = makeConst(N->constValue());
      return;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::Shrs:
      Mapping[{N, 0}] = simplifyBinary(N->opcode(), Operands[0], Operands[1]);
      return;
    case Opcode::Not:
    case Opcode::Minus:
      Mapping[{N, 0}] = simplifyUnary(N->opcode(), Operands[0]);
      return;
    case Opcode::Cmp: {
      Relation Rel = N->relation();
      // Canonicalize: constant on the right.
      if (asConst(Operands[0]) && !asConst(Operands[1])) {
        std::swap(Operands[0], Operands[1]);
        Rel = swapRelation(Rel);
      }
      Mapping[{N, 0}] = numbered(Opcode::Cmp, Operands, relationName(Rel),
                                 [&] {
                                   return New.createCmp(Rel, Operands[0],
                                                        Operands[1])
                                       .Def;
                                 });
      return;
    }
    case Opcode::Mux:
      if (operandKey(Operands[1]) == operandKey(Operands[2])) {
        Mapping[{N, 0}] = Operands[1];
        return;
      }
      // A selector the range analysis decides folds the Mux to one arm.
      if (std::optional<bool> Sel = NewFacts.boolFact(Operands[0])) {
        Mapping[{N, 0}] = Operands[*Sel ? 1 : 2];
        return;
      }
      Mapping[{N, 0}] = numbered(Opcode::Mux, Operands, "", [&] {
        return New.createMux(Operands[0], Operands[1], Operands[2]).Def;
      });
      return;
    case Opcode::Load: {
      NodeRef Placeholder = numbered(Opcode::Load, Operands, "", [&] {
        return New.createLoad(Operands[0], Operands[1]);
      });
      Mapping[{N, 0}] = NodeRef(Placeholder.Def, 0);
      Mapping[{N, 1}] = NodeRef(Placeholder.Def, 1);
      return;
    }
    case Opcode::Store: {
      NodeRef Placeholder = numbered(Opcode::Store, Operands, "", [&] {
        return New.createStore(Operands[0], Operands[1], Operands[2]).Def;
      });
      Mapping[{N, 0}] = Placeholder;
      return;
    }
    case Opcode::Cond: {
      NodeRef Placeholder = numbered(Opcode::Cond, Operands, "", [&] {
        return New.createCond(Operands[0]);
      });
      Mapping[{N, 0}] = NodeRef(Placeholder.Def, 0);
      Mapping[{N, 1}] = NodeRef(Placeholder.Def, 1);
      return;
    }
    }
    SELGEN_UNREACHABLE("bad opcode");
  }

  NodeRef simplifyUnary(Opcode Op, NodeRef Operand) {
    if (const Node *C = asConst(Operand)) {
      const BitValue &Value = C->constValue();
      return makeConst(Op == Opcode::Not ? Value.bitNot() : Value.neg());
    }
    // Not(Not(x)) -> x; Minus(Minus(x)) -> x. The operand is already a
    // node of the new graph, so its operand can be reused directly.
    if (Operand.Def->opcode() == Op)
      return Operand.Def->operand(0);
    return makeUnary(Op, Operand);
  }

  NodeRef simplifyBinary(Opcode Op, NodeRef Lhs, NodeRef Rhs) {
    const Node *LhsConst = asConst(Lhs);
    const Node *RhsConst = asConst(Rhs);

    // Fold fully constant operations (shifts only when defined).
    if (LhsConst && RhsConst) {
      BitValue A = LhsConst->constValue();
      BitValue B = RhsConst->constValue();
      bool ShiftOp =
          Op == Opcode::Shl || Op == Opcode::Shr || Op == Opcode::Shrs;
      if (!ShiftOp || B.ult(BitValue(width(), width())))
        return makeConst(foldBinary(Op, A, B));
    }

    // Constants to the right for commutative operations.
    if (opcodeIsCommutative(Op) && LhsConst && !RhsConst) {
      std::swap(Lhs, Rhs);
      std::swap(LhsConst, RhsConst);
    }

    BitValue Zero = BitValue::zero(width());
    BitValue One(width(), 1);

    switch (Op) {
    case Opcode::Add:
      if (RhsConst && RhsConst->constValue().isZero())
        return Lhs;
      // Reassociate constants: (x + c1) + c2 -> x + (c1 + c2).
      if (RhsConst && Lhs.Def->opcode() == Opcode::Add)
        if (const Node *Inner = asConst(Lhs.Def->operand(1))) {
          NodeRef X = Lhs.Def->operand(0);
          return simplifyBinary(
              Opcode::Add, X,
              makeConst(Inner->constValue().add(RhsConst->constValue())));
        }
      break;
    case Opcode::Sub:
      if (operandKey(Lhs) == operandKey(Rhs))
        return makeConst(Zero);
      // x - c -> x + (-c): the canonical form production compilers use.
      if (RhsConst)
        return simplifyBinary(Opcode::Add, Lhs,
                              makeConst(RhsConst->constValue().neg()));
      if (LhsConst && LhsConst->constValue().isZero())
        return simplifyUnary(Opcode::Minus, Rhs);
      break;
    case Opcode::Mul:
      if (RhsConst) {
        const BitValue &C = RhsConst->constValue();
        if (C.isZero())
          return makeConst(Zero);
        if (C == One)
          return Lhs;
        // Strength reduction: x * 2^k -> x << k.
        if (C.popcount() == 1)
          return simplifyBinary(
              Opcode::Shl, Lhs,
              makeConst(BitValue(width(), C.countTrailingZeros())));
      }
      break;
    case Opcode::And:
      if (operandKey(Lhs) == operandKey(Rhs))
        return Lhs;
      if (RhsConst && RhsConst->constValue().isZero())
        return makeConst(Zero);
      if (RhsConst && RhsConst->constValue().isAllOnes())
        return Lhs;
      break;
    case Opcode::Or:
      if (operandKey(Lhs) == operandKey(Rhs))
        return Lhs;
      if (RhsConst && RhsConst->constValue().isZero())
        return Lhs;
      if (RhsConst && RhsConst->constValue().isAllOnes())
        return makeConst(BitValue::allOnes(width()));
      break;
    case Opcode::Xor:
      if (operandKey(Lhs) == operandKey(Rhs))
        return makeConst(Zero);
      if (RhsConst && RhsConst->constValue().isZero())
        return Lhs;
      if (RhsConst && RhsConst->constValue().isAllOnes())
        return simplifyUnary(Opcode::Not, Lhs);
      break;
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::Shrs:
      if (RhsConst && RhsConst->constValue().isZero())
        return Lhs;
      break;
    default:
      break;
    }

    // Fact-guarded rewrites: the known-bits analysis over the output
    // graph discharges identities the syntactic rules above cannot see
    // (e.g. And(Shr(x, 6), 3) -> Shr(x, 6) at width 8, the redundant
    // shift-amount mask). Facts are sound over defined executions, so
    // each rewrite preserves semantics wherever the original graph was
    // defined; test_analysis cross-checks every one against Z3.
    if (Op == Opcode::And || Op == Opcode::Or || Op == Opcode::Shrs) {
      const ValueFact &LF = NewFacts.fact(Lhs);
      const ValueFact &RF = NewFacts.fact(Rhs);
      if (Op == Opcode::And) {
        // x & y == x when every bit x can set is known set in y.
        if (LF.knownZero().bitOr(RF.knownOne()).isAllOnes())
          return Lhs;
        if (RF.knownZero().bitOr(LF.knownOne()).isAllOnes())
          return Rhs;
        // Disjoint possible-ones annihilate.
        if (LF.knownZero().bitOr(RF.knownZero()).isAllOnes())
          return makeConst(Zero);
      }
      if (Op == Opcode::Or) {
        // x | y == y when every bit x can set is known set in y.
        if (LF.knownZero().bitOr(RF.knownOne()).isAllOnes())
          return Rhs;
        if (RF.knownZero().bitOr(LF.knownOne()).isAllOnes())
          return Lhs;
      }
      // An arithmetic shift of a value whose sign bit is known clear
      // is a logical shift.
      if (Op == Opcode::Shrs && LF.knownZero().isNegative())
        return simplifyBinary(Opcode::Shr, Lhs, Rhs);
    }

    // Order commutative operands deterministically when neither side
    // is constant.
    if (opcodeIsCommutative(Op) && !LhsConst && !RhsConst &&
        operandKey(Rhs) < operandKey(Lhs))
      std::swap(Lhs, Rhs);

    return makeBinaryRaw(Op, Lhs, Rhs);
  }

  BitValue foldBinary(Opcode Op, const BitValue &A, const BitValue &B) {
    switch (Op) {
    case Opcode::Add:
      return A.add(B);
    case Opcode::Sub:
      return A.sub(B);
    case Opcode::Mul:
      return A.mul(B);
    case Opcode::And:
      return A.bitAnd(B);
    case Opcode::Or:
      return A.bitOr(B);
    case Opcode::Xor:
      return A.bitXor(B);
    case Opcode::Shl:
      return A.shl(unsigned(B.zextValue()));
    case Opcode::Shr:
      return A.lshr(unsigned(B.zextValue()));
    case Opcode::Shrs:
      return A.ashr(unsigned(B.zextValue()));
    default:
      SELGEN_UNREACHABLE("not a foldable binary opcode");
    }
  }
};

} // namespace

Graph selgen::normalizeGraph(const Graph &G) {
  return NormalizerImpl(G).run();
}

bool selgen::isNormalized(const Graph &G) {
  return normalizeGraph(G).fingerprint() == G.fingerprint();
}
