//===- Normalizer.h - IR canonicalization ------------------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonicalization of IR graphs, playing the role of the compiler's
/// local optimizer. The paper relies on this twice:
///
/// * "If a pattern is not minimal, it is very unlikely to occur,
///   because the compiler will have already optimized the IR"
///   (Section 2.4) — the workload programs are normalized before
///   instruction selection, exactly like a production front end would.
/// * The code generator "removes all rules with non-normalized IR
///   patterns" (Section 5.6) — isNormalized() implements that filter.
///
/// The rule set covers constant folding, operand canonicalization for
/// commutative operations (constants to the right, smaller fingerprint
/// first), and the usual algebraic identities.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_IR_NORMALIZER_H
#define SELGEN_IR_NORMALIZER_H

#include "ir/Graph.h"

namespace selgen {

/// Returns a canonicalized copy of \p G (same interface, same
/// semantics for all inputs satisfying the preconditions).
Graph normalizeGraph(const Graph &G);

/// Returns true if normalization leaves \p G unchanged (up to
/// structural identity). Patterns failing this check are filtered out
/// of generated instruction selectors (paper Section 5.6).
bool isNormalized(const Graph &G);

} // namespace selgen

#endif // SELGEN_IR_NORMALIZER_H
