//===- Opcode.cpp - IR operation opcodes -----------------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Opcode.h"

#include "support/Error.h"

#include <cassert>

using namespace selgen;

const char *selgen::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Arg:
    return "Arg";
  case Opcode::Const:
    return "Const";
  case Opcode::Add:
    return "Add";
  case Opcode::Sub:
    return "Sub";
  case Opcode::Mul:
    return "Mul";
  case Opcode::And:
    return "And";
  case Opcode::Or:
    return "Or";
  case Opcode::Xor:
    return "Xor";
  case Opcode::Not:
    return "Not";
  case Opcode::Minus:
    return "Minus";
  case Opcode::Shl:
    return "Shl";
  case Opcode::Shr:
    return "Shr";
  case Opcode::Shrs:
    return "Shrs";
  case Opcode::Load:
    return "Load";
  case Opcode::Store:
    return "Store";
  case Opcode::Cmp:
    return "Cmp";
  case Opcode::Mux:
    return "Mux";
  case Opcode::Cond:
    return "Cond";
  }
  SELGEN_UNREACHABLE("bad opcode");
}

const char *selgen::relationName(Relation Rel) {
  switch (Rel) {
  case Relation::Eq:
    return "eq";
  case Relation::Ne:
    return "ne";
  case Relation::Ult:
    return "ult";
  case Relation::Ule:
    return "ule";
  case Relation::Ugt:
    return "ugt";
  case Relation::Uge:
    return "uge";
  case Relation::Slt:
    return "slt";
  case Relation::Sle:
    return "sle";
  case Relation::Sgt:
    return "sgt";
  case Relation::Sge:
    return "sge";
  }
  SELGEN_UNREACHABLE("bad relation");
}

std::optional<Opcode> selgen::tryOpcodeFromName(const std::string &Name) {
  static const Opcode All[] = {
      Opcode::Arg, Opcode::Const, Opcode::Add,  Opcode::Sub,   Opcode::Mul,
      Opcode::And, Opcode::Or,    Opcode::Xor,  Opcode::Not,   Opcode::Minus,
      Opcode::Shl, Opcode::Shr,   Opcode::Shrs, Opcode::Load,  Opcode::Store,
      Opcode::Cmp, Opcode::Mux,   Opcode::Cond};
  for (Opcode Op : All)
    if (Name == opcodeName(Op))
      return Op;
  return std::nullopt;
}

Opcode selgen::opcodeFromName(const std::string &Name) {
  if (std::optional<Opcode> Op = tryOpcodeFromName(Name))
    return *Op;
  reportFatalError("unknown opcode name: " + Name);
}

Relation selgen::relationFromName(const std::string &Name) {
  for (Relation Rel : allRelations())
    if (Name == relationName(Rel))
      return Rel;
  reportFatalError("unknown relation name: " + Name);
}

Relation selgen::negateRelation(Relation Rel) {
  switch (Rel) {
  case Relation::Eq:
    return Relation::Ne;
  case Relation::Ne:
    return Relation::Eq;
  case Relation::Ult:
    return Relation::Uge;
  case Relation::Ule:
    return Relation::Ugt;
  case Relation::Ugt:
    return Relation::Ule;
  case Relation::Uge:
    return Relation::Ult;
  case Relation::Slt:
    return Relation::Sge;
  case Relation::Sle:
    return Relation::Sgt;
  case Relation::Sgt:
    return Relation::Sle;
  case Relation::Sge:
    return Relation::Slt;
  }
  SELGEN_UNREACHABLE("bad relation");
}

Relation selgen::swapRelation(Relation Rel) {
  switch (Rel) {
  case Relation::Eq:
    return Relation::Eq;
  case Relation::Ne:
    return Relation::Ne;
  case Relation::Ult:
    return Relation::Ugt;
  case Relation::Ule:
    return Relation::Uge;
  case Relation::Ugt:
    return Relation::Ult;
  case Relation::Uge:
    return Relation::Ule;
  case Relation::Slt:
    return Relation::Sgt;
  case Relation::Sle:
    return Relation::Sge;
  case Relation::Sgt:
    return Relation::Slt;
  case Relation::Sge:
    return Relation::Sle;
  }
  SELGEN_UNREACHABLE("bad relation");
}

const std::vector<Relation> &selgen::allRelations() {
  static const std::vector<Relation> All = {
      Relation::Eq,  Relation::Ne,  Relation::Ult, Relation::Ule,
      Relation::Ugt, Relation::Uge, Relation::Slt, Relation::Sle,
      Relation::Sgt, Relation::Sge};
  return All;
}

std::vector<Sort> selgen::opcodeArgSorts(Opcode Op, unsigned Width) {
  Sort V = Sort::value(Width);
  Sort B = Sort::boolean();
  Sort M = Sort::memory();
  switch (Op) {
  case Opcode::Arg:
  case Opcode::Const:
    return {};
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Shrs:
  case Opcode::Cmp:
    return {V, V};
  case Opcode::Not:
  case Opcode::Minus:
    return {V};
  case Opcode::Load:
    return {M, V}; // memory, pointer
  case Opcode::Store:
    return {M, V, V}; // memory, pointer, value
  case Opcode::Mux:
    return {B, V, V};
  case Opcode::Cond:
    return {B};
  }
  SELGEN_UNREACHABLE("bad opcode");
}

std::vector<Sort> selgen::opcodeResultSorts(Opcode Op, unsigned Width) {
  Sort V = Sort::value(Width);
  Sort B = Sort::boolean();
  Sort M = Sort::memory();
  switch (Op) {
  case Opcode::Arg:
    SELGEN_UNREACHABLE("Arg result sort is per-node, not per-opcode");
  case Opcode::Const:
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Not:
  case Opcode::Minus:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Shrs:
  case Opcode::Mux:
    return {V};
  case Opcode::Load:
    return {M, V};
  case Opcode::Store:
    return {M};
  case Opcode::Cmp:
    return {B};
  case Opcode::Cond:
    return {B, B};
  }
  SELGEN_UNREACHABLE("bad opcode");
}

bool selgen::opcodeHasInternalAttribute(Opcode Op) {
  return Op == Opcode::Const || Op == Opcode::Cmp;
}

bool selgen::opcodeIsCommutative(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
    return true;
  default:
    return false;
  }
}

bool selgen::opcodeTouchesMemory(Opcode Op) {
  return Op == Opcode::Load || Op == Opcode::Store;
}

const std::vector<Opcode> &selgen::allTemplateOpcodes() {
  static const std::vector<Opcode> All = {
      Opcode::Const, Opcode::Add,  Opcode::Sub,   Opcode::Mul, Opcode::And,
      Opcode::Or,    Opcode::Xor,  Opcode::Not,   Opcode::Minus,
      Opcode::Shl,   Opcode::Shr,  Opcode::Shrs,  Opcode::Load,
      Opcode::Store, Opcode::Cmp,  Opcode::Mux,   Opcode::Cond};
  return All;
}
