//===- Opcode.h - IR operation opcodes ---------------------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IR operation set, modeled after libFirm's integer subset. This
/// is the operation alphabet I of the synthesis (paper Sections 4/5):
/// each opcode has an interface (argument/internal/result sorts) and a
/// semantics, given both concretely (ir/Interpreter) and symbolically
/// (semantics/IrSemantics).
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_IR_OPCODE_H
#define SELGEN_IR_OPCODE_H

#include "ir/Sort.h"

#include <optional>
#include <string>
#include <vector>

namespace selgen {

/// IR opcodes. "Arg" is the pattern/function argument pseudo-op and
/// never appears in template multisets.
enum class Opcode {
  Arg,   ///< Pattern or block argument (pseudo operation).
  Const, ///< Constant; the value is an internal attribute.
  Add,   ///< Two's-complement addition.
  Sub,   ///< Two's-complement subtraction.
  Mul,   ///< Low-word multiplication.
  And,   ///< Bitwise and.
  Or,    ///< Bitwise or.
  Xor,   ///< Bitwise exclusive or.
  Not,   ///< Bitwise complement.
  Minus, ///< Two's-complement negation.
  Shl,   ///< Left shift; undefined unless 0 <= amount < width (C).
  Shr,   ///< Logical right shift; same precondition.
  Shrs,  ///< Arithmetic right shift; same precondition.
  Load,  ///< M x Ptr -> M x Value. Little-endian, width/8 bytes.
  Store, ///< M x Ptr x Value -> M.
  Cmp,   ///< Value x Value -> Bool; the relation is internal.
  Mux,   ///< Bool x Value x Value -> Value (conditional move).
  Cond,  ///< Bool -> Bool x Bool (taken, fall-through); jump results.
};

/// The comparison relations of the Cmp operation (and of x86 condition
/// codes, see x86/CondCode.h).
enum class Relation {
  Eq,
  Ne,
  Ult,
  Ule,
  Ugt,
  Uge,
  Slt,
  Sle,
  Sgt,
  Sge,
};

/// Returns the mnemonic, e.g. "Add".
const char *opcodeName(Opcode Op);

/// Returns the relation mnemonic, e.g. "slt".
const char *relationName(Relation Rel);

/// Parses an opcode name; aborts on unknown names.
Opcode opcodeFromName(const std::string &Name);

/// Parses an opcode name; returns std::nullopt on unknown names.
std::optional<Opcode> tryOpcodeFromName(const std::string &Name);

/// Parses a relation name; asserts on unknown names.
Relation relationFromName(const std::string &Name);

/// Negates a relation (taken <-> not taken).
Relation negateRelation(Relation Rel);

/// Returns the relation with swapped operands (a R b <=> b R' a).
Relation swapRelation(Relation Rel);

/// All ten relations, for iteration.
const std::vector<Relation> &allRelations();

/// The argument sorts Sa of \p Op for data width \p Width.
std::vector<Sort> opcodeArgSorts(Opcode Op, unsigned Width);

/// The result sorts Sr of \p Op for data width \p Width.
std::vector<Sort> opcodeResultSorts(Opcode Op, unsigned Width);

/// Returns true if \p Op carries an internal attribute (paper: values
/// "chosen at synthesis time"): the constant for Const, the relation
/// for Cmp.
bool opcodeHasInternalAttribute(Opcode Op);

/// Returns true for commutative binary operations (used by the pattern
/// normalizer and the duplicate filter).
bool opcodeIsCommutative(Opcode Op);

/// Returns true if the opcode touches memory (Load/Store).
bool opcodeTouchesMemory(Opcode Op);

/// All opcodes legal in synthesis template multisets (everything
/// except Arg).
const std::vector<Opcode> &allTemplateOpcodes();

} // namespace selgen

#endif // SELGEN_IR_OPCODE_H
