//===- Parser.cpp - Textual IR input ----------------------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "support/StringUtils.h"

#include <map>

using namespace selgen;

namespace {

/// Hand-written recursive-descent parser for the printer's format.
class GraphParser {
public:
  GraphParser(const std::string &Text) : Lines(splitString(Text, '\n')) {}

  std::optional<Graph> parse(std::string *ErrorMessage) {
    std::optional<Graph> Result = parseImpl();
    if (!Result && ErrorMessage)
      *ErrorMessage = Error;
    return Result;
  }

private:
  std::vector<std::string> Lines;
  size_t LineIndex = 0;
  std::string Error;
  std::map<std::string, NodeRef> Defs;

  bool fail(const std::string &Message) {
    Error = "line " + std::to_string(LineIndex + 1) + ": " + Message;
    return false;
  }

  std::string nextLine() {
    while (LineIndex < Lines.size()) {
      std::string Line = trimString(Lines[LineIndex]);
      if (!Line.empty() && !startsWith(Line, "#"))
        return Line;
      ++LineIndex;
    }
    return "";
  }

  /// Parses a decimal number without throwing (std::stoul raises on
  /// garbage and on overflow; parser input is untrusted). The length
  /// cap keeps the accumulator well inside unsigned range.
  static std::optional<unsigned> parseUnsigned(const std::string &Text) {
    if (Text.empty() || Text.size() > 9)
      return std::nullopt;
    unsigned Value = 0;
    for (char C : Text) {
      if (C < '0' || C > '9')
        return std::nullopt;
      Value = Value * 10 + unsigned(C - '0');
    }
    return Value;
  }

  /// Widths a graph or constant may declare. The cap bounds the
  /// allocation a malformed header like "bv999999999" could trigger.
  static bool isReasonableWidth(unsigned Width) {
    return Width >= 1 && Width <= 1024;
  }

  static std::optional<Sort> parseSort(const std::string &Text) {
    if (Text == "mem")
      return Sort::memory();
    if (Text == "bool")
      return Sort::boolean();
    if (startsWith(Text, "bv")) {
      std::optional<unsigned> Width = parseUnsigned(Text.substr(2));
      if (!Width || !isReasonableWidth(*Width))
        return std::nullopt;
      return Sort::value(*Width);
    }
    return std::nullopt;
  }

  /// Parses "Name(arg, arg, ...)" into (Name, args). Returns false on
  /// malformed syntax.
  static bool splitCall(const std::string &Text, std::string &Name,
                        std::vector<std::string> &Arguments) {
    size_t Open = Text.find('(');
    size_t Close = Text.rfind(')');
    if (Open == std::string::npos || Close == std::string::npos ||
        Close < Open)
      return false;
    Name = trimString(Text.substr(0, Open));
    std::string Inner =
        trimString(Text.substr(Open + 1, Close - Open - 1));
    Arguments.clear();
    if (Inner.empty())
      return true;
    for (const std::string &Part : splitString(Inner, ','))
      Arguments.push_back(trimString(Part));
    return true;
  }

  std::optional<NodeRef> lookupRef(const std::string &Name) {
    // A reference is "a0", "n3", or "n3.1".
    std::string Base = Name;
    unsigned Index = 0;
    size_t Dot = Name.find('.');
    if (Dot != std::string::npos) {
      Base = Name.substr(0, Dot);
      std::optional<unsigned> Parsed = parseUnsigned(Name.substr(Dot + 1));
      if (!Parsed)
        return std::nullopt;
      Index = *Parsed;
    }
    auto It = Defs.find(Base);
    if (It == Defs.end())
      return std::nullopt;
    if (Index >= It->second.Def->numResults())
      return std::nullopt;
    return NodeRef(It->second.Def, Index);
  }

  std::optional<Graph> parseImpl() {
    std::string Header = nextLine();
    ++LineIndex;
    if (!startsWith(Header, "graph w")) {
      fail("expected 'graph w<width> args(...) {'");
      return std::nullopt;
    }
    size_t ArgsPos = Header.find(" args(");
    if (ArgsPos == std::string::npos || Header.back() != '{') {
      fail("malformed graph header");
      return std::nullopt;
    }
    std::optional<unsigned> Width =
        parseUnsigned(Header.substr(7, ArgsPos - 7));
    if (!Width || !isReasonableWidth(*Width)) {
      fail("malformed graph width");
      return std::nullopt;
    }
    std::string Name;
    std::vector<std::string> SortNames;
    std::string ArgsPart =
        trimString(Header.substr(ArgsPos + 1, Header.size() - ArgsPos - 2));
    if (!splitCall(ArgsPart, Name, SortNames) || Name != "args") {
      fail("malformed argument list");
      return std::nullopt;
    }
    std::vector<Sort> ArgSorts;
    for (const std::string &SortName : SortNames) {
      std::optional<Sort> S = parseSort(SortName);
      if (!S) {
        fail("unknown sort: " + SortName);
        return std::nullopt;
      }
      ArgSorts.push_back(*S);
    }

    Graph G(*Width, ArgSorts);
    for (unsigned I = 0; I < G.numArgs(); ++I)
      Defs["a" + std::to_string(I)] = G.arg(I);

    while (true) {
      std::string Line = nextLine();
      ++LineIndex;
      if (Line.empty()) {
        fail("unexpected end of input");
        return std::nullopt;
      }
      if (Line == "}")
        return G;
      if (startsWith(Line, "results(")) {
        std::vector<std::string> RefNames;
        if (!splitCall(Line, Name, RefNames)) {
          fail("malformed results list");
          return std::nullopt;
        }
        std::vector<NodeRef> Results;
        for (const std::string &RefName : RefNames) {
          std::optional<NodeRef> Ref = lookupRef(RefName);
          if (!Ref) {
            fail("unknown value: " + RefName);
            return std::nullopt;
          }
          Results.push_back(*Ref);
        }
        G.setResults(std::move(Results));
        continue;
      }
      if (!parseDefinition(G, Line))
        return std::nullopt;
    }
  }

  bool parseDefinition(Graph &G, const std::string &Line) {
    size_t Equals = Line.find(" = ");
    if (Equals == std::string::npos)
      return fail("expected 'name = Opcode(...)'");
    std::string DefName = trimString(Line.substr(0, Equals));
    std::string Rhs = trimString(Line.substr(Equals + 3));

    // Split off an optional attribute "Opcode[attr](...)".
    std::string Attribute;
    size_t Bracket = Rhs.find('[');
    if (Bracket != std::string::npos && Bracket < Rhs.find('(')) {
      size_t CloseBracket = Rhs.find(']', Bracket);
      if (CloseBracket == std::string::npos)
        return fail("unterminated attribute");
      Attribute = Rhs.substr(Bracket + 1, CloseBracket - Bracket - 1);
      Rhs = Rhs.substr(0, Bracket) + Rhs.substr(CloseBracket + 1);
    }

    std::string OpName;
    std::vector<std::string> OperandNames;
    if (!splitCall(Rhs, OpName, OperandNames))
      return fail("malformed operation");

    std::vector<NodeRef> Operands;
    for (const std::string &OperandName : OperandNames) {
      std::optional<NodeRef> Ref = lookupRef(OperandName);
      if (!Ref)
        return fail("unknown value: " + OperandName);
      Operands.push_back(*Ref);
    }

    if (OpName == "Const") {
      // Attribute "0x2a:8" = value:width.
      std::vector<std::string> Parts = splitString(Attribute, ':');
      if (Parts.size() != 2 || !startsWith(Parts[0], "0x"))
        return fail("malformed Const attribute: " + Attribute);
      std::optional<unsigned> ConstWidth = parseUnsigned(Parts[1]);
      if (!ConstWidth || !isReasonableWidth(*ConstWidth))
        return fail("malformed Const width: " + Attribute);
      std::string Hex = Parts[0].substr(2);
      if (Hex.empty())
        return fail("malformed Const attribute: " + Attribute);
      auto HexValue = [](char C) -> int {
        if (C >= '0' && C <= '9')
          return C - '0';
        if (C >= 'a' && C <= 'f')
          return C - 'a' + 10;
        if (C >= 'A' && C <= 'F')
          return C - 'A' + 10;
        return -1;
      };
      for (char C : Hex)
        if (HexValue(C) < 0)
          return fail("malformed Const attribute: " + Attribute);
      // Reject (rather than silently truncate) a value wider than the
      // declared sort; leading zero digits are fine.
      size_t FirstSignificant = Hex.find_first_not_of('0');
      if (FirstSignificant != std::string::npos) {
        unsigned Lead = unsigned(HexValue(Hex[FirstSignificant]));
        unsigned LeadBits = Lead >= 8 ? 4 : Lead >= 4 ? 3 : Lead >= 2 ? 2 : 1;
        size_t Bits = 4 * (Hex.size() - FirstSignificant - 1) + LeadBits;
        if (Bits > *ConstWidth)
          return fail("Const value 0x" + Hex + " does not fit in " +
                      std::to_string(*ConstWidth) + " bits");
      }
      BitValue Value = BitValue::fromString(*ConstWidth, Hex, 16);
      Defs[DefName] = G.createConst(Value);
      return true;
    }

    std::optional<Opcode> Op = tryOpcodeFromName(OpName);
    if (!Op || *Op == Opcode::Arg)
      return fail("unknown operation: " + OpName);
    std::vector<Sort> Expected = opcodeArgSorts(*Op, G.width());
    if (Operands.size() != Expected.size())
      return fail("operand count mismatch for " + OpName);
    for (unsigned I = 0; I < Operands.size(); ++I)
      if (Operands[I].sort() != Expected[I])
        return fail("operand sort mismatch for " + OpName);
    Node *N = G.createNode(*Op, Operands);
    if (*Op == Opcode::Cmp) {
      bool Known = false;
      for (Relation Rel : allRelations())
        Known |= Attribute == relationName(Rel);
      if (!Known)
        return fail("unknown relation: " + Attribute);
      N->setRelation(relationFromName(Attribute));
    }
    Defs[DefName] = N->result(0);
    return true;
  }
};

} // namespace

std::optional<Graph> selgen::parseGraph(const std::string &Text,
                                        std::string *ErrorMessage) {
  return GraphParser(Text).parse(ErrorMessage);
}
