//===- Parser.h - Textual IR input --------------------------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual graph format produced by ir/Printer. Used by the
/// pattern database loader; errors abort via reportFatalError (pattern
/// files are machine-generated, so malformed input is a bug, not a
/// user error).
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_IR_PARSER_H
#define SELGEN_IR_PARSER_H

#include "ir/Graph.h"

#include <optional>
#include <string>

namespace selgen {

/// Parses one graph from \p Text. \p ErrorMessage (if non-null)
/// receives a description on failure.
std::optional<Graph> parseGraph(const std::string &Text,
                                std::string *ErrorMessage = nullptr);

} // namespace selgen

#endif // SELGEN_IR_PARSER_H
