//===- Printer.cpp - Textual IR output --------------------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include <map>

using namespace selgen;

namespace {

std::string refName(const std::map<const Node *, std::string> &Names,
                    const NodeRef &Ref) {
  std::string Name = Names.at(Ref.Def);
  if (Ref.Def->numResults() > 1)
    Name += "." + std::to_string(Ref.Index);
  return Name;
}

std::string attributeSuffix(const Node *N) {
  switch (N->opcode()) {
  case Opcode::Const:
    return "[" + N->constValue().toHexString() + ":" +
           std::to_string(N->constValue().width()) + "]";
  case Opcode::Cmp:
    return std::string("[") + relationName(N->relation()) + "]";
  default:
    return "";
  }
}

} // namespace

std::string selgen::printGraph(const Graph &G) {
  std::map<const Node *, std::string> Names;
  std::string Body;
  unsigned NextNumber = 0;
  for (Node *N : G.liveNodes()) {
    if (N->opcode() == Opcode::Arg) {
      Names[N] = "a" + std::to_string(N->argIndex());
      continue;
    }
    std::string Name = "n" + std::to_string(NextNumber++);
    Names[N] = Name;
    Body += "  " + Name + " = " + opcodeName(N->opcode()) +
            attributeSuffix(N) + "(";
    for (unsigned I = 0; I < N->numOperands(); ++I) {
      if (I != 0)
        Body += ", ";
      Body += refName(Names, N->operand(I));
    }
    Body += ")\n";
  }

  std::string Header = "graph w" + std::to_string(G.width()) + " args(";
  for (unsigned I = 0; I < G.numArgs(); ++I) {
    if (I != 0)
      Header += ", ";
    Header += G.argSort(I).str();
  }
  Header += ") {\n";

  std::string Footer = "  results(";
  const auto &Results = G.results();
  for (unsigned I = 0; I < Results.size(); ++I) {
    if (I != 0)
      Footer += ", ";
    Footer += refName(Names, Results[I]);
  }
  Footer += ")\n}\n";
  return Header + Body + Footer;
}

namespace {

std::string expressionFor(const NodeRef &Ref,
                          std::map<const Node *, std::string> &Cache) {
  const Node *N = Ref.Def;
  if (N->opcode() == Opcode::Arg)
    return "a" + std::to_string(N->argIndex());
  if (N->opcode() == Opcode::Const)
    return "Const(" + N->constValue().toSignedString() + ")";
  auto It = Cache.find(N);
  std::string Text;
  if (It != Cache.end()) {
    Text = It->second;
  } else {
    Text = opcodeName(N->opcode());
    if (N->opcode() == Opcode::Cmp)
      Text += std::string("<") + relationName(N->relation()) + ">";
    Text += "(";
    for (unsigned I = 0; I < N->numOperands(); ++I) {
      if (I != 0)
        Text += ", ";
      Text += expressionFor(N->operand(I), Cache);
    }
    Text += ")";
    Cache[N] = Text;
  }
  if (N->numResults() > 1)
    Text += "." + std::to_string(Ref.Index);
  return Text;
}

} // namespace

std::string selgen::printGraphExpression(const Graph &G) {
  std::map<const Node *, std::string> Cache;
  std::string Result;
  const auto &Results = G.results();
  for (unsigned I = 0; I < Results.size(); ++I) {
    if (I != 0)
      Result += "; ";
    Result += expressionFor(Results[I], Cache);
  }
  return Result;
}
