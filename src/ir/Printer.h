//===- Printer.h - Textual IR output -----------------------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders graphs in the textual format shared with ir/Parser. The
/// pattern database stores patterns in this format, one graph per
/// record:
///
/// \code
///   graph w32 args(mem, bv32, bv32) {
///     n0 = Load(a0, a1)
///     n1 = Add(n0.1, a2)
///     results(n0.0, n1)
///   }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_IR_PRINTER_H
#define SELGEN_IR_PRINTER_H

#include "ir/Graph.h"

#include <string>

namespace selgen {

/// Renders \p G in the canonical text format (only nodes reachable
/// from the results are printed).
std::string printGraph(const Graph &G);

/// Renders \p G as a compact single-line expression per result, e.g.
/// "And(a0, Add(a0, Const(0xff)))" — the human-friendly form used in
/// reports and examples.
std::string printGraphExpression(const Graph &G);

} // namespace selgen

#endif // SELGEN_IR_PRINTER_H
