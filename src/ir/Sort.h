//===- Sort.h - Value sorts shared by IR and SMT models ---------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines the sorts that classify every value flowing through the IR
/// and through the SMT models (paper Section 4: "The sorts of the
/// arguments, internal values, and results form the instruction's
/// interface").
///
/// * Value(W): a W-bit bit-vector (data and pointers alike; the paper
///   uses Pointer = BitVec32 on the 32-bit target).
/// * Bool: a one-bit truth value (comparison results, jump outcomes).
/// * Memory: an M-value, the SSA token threading the memory chain
///   (paper Section 4.1). Its SMT width is goal-specific.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_IR_SORT_H
#define SELGEN_IR_SORT_H

#include <cassert>
#include <string>

namespace selgen {

/// Classifies a value in the IR and in the SMT encoding.
enum class SortKind {
  Value,  ///< Bit-vector of a given width.
  Bool,   ///< One-bit truth value.
  Memory, ///< M-value (memory chain token).
};

/// A sort: kind plus bit width (width is meaningful for Value only).
struct Sort {
  SortKind Kind;
  unsigned Width; // Bits; 0 for Bool and Memory.

  static Sort value(unsigned Width) {
    assert(Width >= 1 && "value sort needs a width");
    return {SortKind::Value, Width};
  }
  static Sort boolean() { return {SortKind::Bool, 0}; }
  static Sort memory() { return {SortKind::Memory, 0}; }

  bool isValue() const { return Kind == SortKind::Value; }
  bool isBool() const { return Kind == SortKind::Bool; }
  bool isMemory() const { return Kind == SortKind::Memory; }

  bool operator==(const Sort &RHS) const {
    return Kind == RHS.Kind && Width == RHS.Width;
  }
  bool operator!=(const Sort &RHS) const { return !(*this == RHS); }

  std::string str() const {
    switch (Kind) {
    case SortKind::Value:
      return "bv" + std::to_string(Width);
    case SortKind::Bool:
      return "bool";
    case SortKind::Memory:
      return "mem";
    }
    return "<invalid>";
  }
};

} // namespace selgen

#endif // SELGEN_IR_SORT_H
