//===- Verifier.cpp - IR well-formedness checks -----------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include <map>
#include <set>

using namespace selgen;

std::vector<std::string> selgen::verifyGraph(const Graph &G) {
  std::vector<std::string> Problems;
  auto problem = [&Problems](const std::string &Message) {
    Problems.push_back(Message);
  };

  std::set<const Node *> Known;
  for (const auto &N : G.nodes())
    Known.insert(N.get());

  std::set<const Node *> Seen;
  std::map<const Node *, unsigned> MemoryUses;
  for (const auto &NPtr : G.nodes()) {
    Node *N = NPtr.get();
    std::string Where =
        std::string(opcodeName(N->opcode())) + " #" + std::to_string(N->id());

    // Operand count and sorts.
    if (N->opcode() != Opcode::Arg) {
      std::vector<Sort> Expected = opcodeArgSorts(N->opcode(), G.width());
      if (N->numOperands() != Expected.size()) {
        problem(Where + ": expected " + std::to_string(Expected.size()) +
                " operands, got " + std::to_string(N->numOperands()));
        continue;
      }
      for (unsigned I = 0; I < N->numOperands(); ++I) {
        NodeRef Operand = N->operand(I);
        if (!Operand.isValid()) {
          problem(Where + ": operand " + std::to_string(I) + " is null");
          continue;
        }
        if (!Known.count(Operand.Def)) {
          problem(Where + ": operand " + std::to_string(I) +
                  " refers outside the graph");
          continue;
        }
        if (!Seen.count(Operand.Def)) {
          problem(Where + ": operand " + std::to_string(I) +
                  " breaks creation-order acyclicity");
          continue;
        }
        if (Operand.Index >= Operand.Def->numResults()) {
          problem(Where + ": operand " + std::to_string(I) +
                  " uses result index out of range");
          continue;
        }
        Sort Actual = Operand.sort();
        // Const operands may have a narrower sort only if the opcode
        // expects exactly that sort; no implicit conversions exist.
        if (Actual != Expected[I])
          problem(Where + ": operand " + std::to_string(I) + " has sort " +
                  Actual.str() + ", expected " + Expected[I].str());
        if (Actual.isMemory())
          ++MemoryUses[Operand.Def];
      }
    }
    Seen.insert(N);
  }

  // Memory chain linearity: each memory-producing node feeds at most
  // one memory operand.
  for (const auto &[Def, Uses] : MemoryUses)
    if (Uses > 1)
      Problems.push_back("memory value of node #" + std::to_string(Def->id()) +
                         " has " + std::to_string(Uses) +
                         " uses; the memory chain must be linear");

  // A produced memory token must go somewhere: a store whose token is
  // neither consumed nor a result would silently drop its side effect.
  // Only checked when the graph declares results — a block body inside
  // a Function keeps its results empty (the terminator consumes the
  // chain), so the check would misfire there.
  if (!G.results().empty()) {
    std::set<std::pair<const Node *, unsigned>> MemoryEscapes;
    for (const auto &NPtr : G.nodes())
      for (const NodeRef &Operand : NPtr->operands())
        if (Operand.isValid() && Operand.Index < Operand.Def->numResults() &&
            Operand.sort().isMemory())
          MemoryEscapes.insert({Operand.Def, Operand.Index});
    for (const NodeRef &Ref : G.results())
      if (Ref.isValid() && Ref.Index < Ref.Def->numResults() &&
          Ref.sort().isMemory())
        MemoryEscapes.insert({Ref.Def, Ref.Index});
    for (const auto &NPtr : G.nodes()) {
      const Node *N = NPtr.get();
      if (N->opcode() == Opcode::Arg)
        continue;
      for (unsigned I = 0; I < N->numResults(); ++I)
        if (N->resultSort(I).isMemory() && !MemoryEscapes.count({N, I}))
          problem(std::string(opcodeName(N->opcode())) + " #" +
                  std::to_string(N->id()) +
                  ": memory token is neither used nor a result; the "
                  "memory chain dangles");
    }
  }

  for (unsigned I = 0; I < G.results().size(); ++I) {
    NodeRef Ref = G.results()[I];
    if (!Ref.isValid())
      problem("result " + std::to_string(I) + " is null");
    else if (!Known.count(Ref.Def))
      problem("result " + std::to_string(I) + " refers outside the graph");
  }
  return Problems;
}

bool selgen::isWellFormed(const Graph &G) { return verifyGraph(G).empty(); }
