//===- Verifier.h - IR well-formedness checks --------------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural well-formedness checks for graphs, mirroring the paper's
/// well-formed-program constraint (Section 5.1) on the concrete side:
/// sort-correct wiring, acyclicity (guaranteed by construction but
/// re-checked), and linearity of the memory chain ("all memory
/// operations are totally ordered in a chain of M-values",
/// Section 4.1).
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_IR_VERIFIER_H
#define SELGEN_IR_VERIFIER_H

#include "ir/Graph.h"

#include <string>
#include <vector>

namespace selgen {

/// Checks \p G and returns a list of human-readable problems; empty
/// means the graph is well formed.
std::vector<std::string> verifyGraph(const Graph &G);

/// Convenience wrapper: true if verifyGraph reports no problems.
bool isWellFormed(const Graph &G);

} // namespace selgen

#endif // SELGEN_IR_VERIFIER_H
