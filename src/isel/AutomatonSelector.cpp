//===- AutomatonSelector.cpp - Discrimination-tree selector -------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "isel/AutomatonSelector.h"

#include "isel/SelectionEngine.h"
#include "support/Error.h"
#include "support/Statistics.h"

#include <utility>

using namespace selgen;

MatcherAutomaton selgen::buildMatcherAutomaton(const PreparedLibrary &Library) {
  std::vector<AutomatonPattern> Patterns;
  for (const PreparedRule &R : Library.rules()) {
    if (R.IsJumpRule &&
        (R.Root->opcode() != Opcode::Cond || !R.TakenIsCondZero))
      continue; // Never tried by the selection engine either.
    AutomatonPattern P;
    P.Pattern = &R.TheRule->Pattern;
    P.Root = R.Root;
    P.IsJump = R.IsJumpRule;
    P.RuleIndex = R.Index;
    Patterns.push_back(P);
  }
  // Stamp the library's cost table (every rule, including the
  // never-firing ones the tree omits: the table is indexed by rule
  // priority index).
  std::vector<RuleCost> Costs;
  Costs.reserve(Library.rules().size());
  for (const PreparedRule &R : Library.rules())
    Costs.push_back(R.Cost);
  return MatcherAutomaton::compile(Patterns, Library.fingerprint(),
                                   static_cast<uint32_t>(
                                       Library.rules().size()),
                                   std::move(Costs), cost::ModelVersion);
}

/// Shared staleness rule for the cost table: an automaton whose cost
/// stamp or per-rule costs disagree with the prepared library would
/// silently mis-price tiling, so it is refused like a fingerprint
/// mismatch. \p CostAt fetches the image's cost for a rule index.
template <typename CostAtFn>
static std::string
costStalenessError(uint32_t ImageCostVersion, const CostAtFn &CostAt,
                   const PreparedLibrary &Library) {
  if (ImageCostVersion != cost::ModelVersion) {
    if (ImageCostVersion == 0)
      return "automaton carries no rule cost table (pre-cost image, cost "
             "version 0; current " +
             std::to_string(cost::ModelVersion) +
             "); re-run selgen-matchergen or upgrade it with "
             "'selgen-matchergen convert'";
    return "automaton cost table was derived under cost model version " +
           std::to_string(ImageCostVersion) + ", current is " +
           std::to_string(cost::ModelVersion) +
           " (stale automaton; re-run selgen-matchergen)";
  }
  for (const PreparedRule &R : Library.rules())
    if (CostAt(R.Index) != R.Cost)
      return "automaton cost table disagrees with the library at rule " +
             std::to_string(R.Index) +
             " (stale automaton; re-run selgen-matchergen)";
  return "";
}

std::string
selgen::automatonStalenessError(const MatcherAutomaton &Automaton,
                                const PreparedLibrary &Library) {
  if (Automaton.libraryFingerprint() != Library.fingerprint())
    return "automaton was compiled for library fingerprint " +
           Automaton.libraryFingerprint() + ", current library is " +
           Library.fingerprint() + " (stale automaton; re-run "
           "selgen-matchergen)";
  if (Automaton.numRules() != Library.rules().size())
    return "automaton indexes " + std::to_string(Automaton.numRules()) +
           " rules, library has " +
           std::to_string(Library.rules().size()) +
           " (stale automaton; re-run selgen-matchergen)";
  return costStalenessError(
      Automaton.costVersion(),
      [&Automaton](uint32_t I) { return Automaton.ruleCosts()[I]; }, Library);
}

std::string
selgen::automatonStalenessError(const BinaryAutomatonView &View,
                                const PreparedLibrary &Library) {
  if (View.libraryFingerprint() != Library.fingerprint())
    return "automaton image was compiled for library fingerprint " +
           View.libraryFingerprint() + ", current library is " +
           Library.fingerprint() + " (stale automaton; re-run "
           "selgen-matchergen)";
  if (View.numRules() != Library.rules().size())
    return "automaton image indexes " + std::to_string(View.numRules()) +
           " rules, library has " +
           std::to_string(Library.rules().size()) +
           " (stale automaton; re-run selgen-matchergen)";
  return costStalenessError(
      View.costVersion(), [&View](uint32_t I) { return View.ruleCost(I); },
      Library);
}

void AutomatonCandidateSource::forEachBodyCandidate(
    const Node *S,
    const std::function<bool(const PreparedRule &)> &TryRule) {
  Indices.clear();
  Automaton.matchBody(S, Indices, &StatesVisited);
  for (uint32_t Index : Indices)
    if (TryRule(Library.rules()[Index]))
      return;
}

void AutomatonCandidateSource::forEachJumpCandidate(
    NodeRef Condition,
    const std::function<bool(const PreparedRule &)> &TryRule) {
  Indices.clear();
  Automaton.matchJump(Condition, Indices, &StatesVisited);
  for (uint32_t Index : Indices) {
    const PreparedRule &R = Library.rules()[Index];
    // Defensive re-filter; buildMatcherAutomaton never inserts these.
    if (!R.IsJumpRule || !R.TakenIsCondZero)
      continue;
    if (TryRule(R))
      return;
  }
}

uint64_t AutomatonCandidateSource::takeNodesVisited() {
  return std::exchange(StatesVisited, 0);
}

void MappedCandidateSource::forEachBodyCandidate(
    const Node *S,
    const std::function<bool(const PreparedRule &)> &TryRule) {
  Indices.clear();
  View.matchBody(S, Indices, &StatesVisited);
  for (uint32_t Index : Indices)
    if (TryRule(Library.rules()[Index]))
      return;
}

void MappedCandidateSource::forEachJumpCandidate(
    NodeRef Condition,
    const std::function<bool(const PreparedRule &)> &TryRule) {
  Indices.clear();
  View.matchJump(Condition, Indices, &StatesVisited);
  for (uint32_t Index : Indices) {
    const PreparedRule &R = Library.rules()[Index];
    if (!R.IsJumpRule || !R.TakenIsCondZero)
      continue;
    if (TryRule(R))
      return;
  }
}

uint64_t MappedCandidateSource::takeNodesVisited() {
  return std::exchange(StatesVisited, 0);
}

AutomatonSelector::AutomatonSelector(const PatternDatabase &Database,
                                     const GoalLibrary &Goals)
    : Library(Database, Goals), Automaton(buildMatcherAutomaton(Library)) {
  noteAutomatonStatistics();
}

AutomatonSelector::AutomatonSelector(const PatternDatabase &Database,
                                     const GoalLibrary &Goals,
                                     MatcherAutomaton Automaton)
    : Library(Database, Goals), Automaton(std::move(Automaton)) {
  std::string Stale = automatonStalenessError(this->Automaton, Library);
  if (!Stale.empty())
    reportFatalError(Stale);
  noteAutomatonStatistics();
}

AutomatonSelector::AutomatonSelector(PreparedLibrary &&PrebuiltLibrary,
                                     MatcherAutomaton Automaton)
    : Library(std::move(PrebuiltLibrary)), Automaton(std::move(Automaton)) {
  std::string Stale = automatonStalenessError(this->Automaton, Library);
  if (!Stale.empty())
    reportFatalError(Stale);
  noteAutomatonStatistics();
}

void AutomatonSelector::noteAutomatonStatistics() const {
  Statistics &Stats = Statistics::get();
  Stats.add("automaton.states",
            static_cast<int64_t>(Automaton.numStates()));
  Stats.add("automaton.transitions",
            static_cast<int64_t>(Automaton.numTransitions()));
}

SelectionResult AutomatonSelector::select(const Function &F) {
  AutomatonCandidateSource Source(Library, Automaton);
  return runRuleSelection(F, Library, Source, name());
}

MappedAutomatonSelector::MappedAutomatonSelector(
    const PatternDatabase &Database, const GoalLibrary &Goals,
    const BinaryAutomatonView &View)
    : Library(Database, Goals), View(View) {
  std::string Stale = automatonStalenessError(View, Library);
  if (!Stale.empty())
    reportFatalError(Stale);
  Statistics &Stats = Statistics::get();
  Stats.add("automaton.states", static_cast<int64_t>(View.numStates()));
  Stats.add("automaton.transitions",
            static_cast<int64_t>(View.numTransitions()));
}

MappedAutomatonSelector::MappedAutomatonSelector(
    PreparedLibrary &&PrebuiltLibrary, const BinaryAutomatonView &View)
    : Library(std::move(PrebuiltLibrary)), View(View) {
  std::string Stale = automatonStalenessError(View, Library);
  if (!Stale.empty())
    reportFatalError(Stale);
}

SelectionResult MappedAutomatonSelector::select(const Function &F) {
  MappedCandidateSource Source(Library, View);
  return runRuleSelection(F, Library, Source, name());
}
