//===- AutomatonSelector.h - Discrimination-tree selector --------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The discrimination-tree instruction selector: a drop-in replacement
/// for the linear GeneratedSelector that discovers candidate rules
/// through a matcher automaton (src/matchergen) compiled offline from
/// the rule library. One traversal of the subject DAG tests all
/// candidate rules at once; the shared selection engine then re-runs
/// the full matcher on the (few) surviving candidates in library
/// priority order, so the machine code produced is byte-identical to
/// the linear selector's — only the time to find it changes.
///
/// The automaton can be compiled in memory (buildMatcherAutomaton) or
/// loaded from a file emitted by the selgen-matchergen tool; loading
/// validates the library fingerprint so a stale automaton is rejected
/// rather than silently applied to the wrong library.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_ISEL_AUTOMATONSELECTOR_H
#define SELGEN_ISEL_AUTOMATONSELECTOR_H

#include "isel/PreparedLibrary.h"
#include "isel/SelectionEngine.h"
#include "isel/Selector.h"
#include "matchergen/BinaryAutomaton.h"
#include "matchergen/MatcherAutomaton.h"

namespace selgen {

/// Compiles the discrimination tree for \p Library. Rules that can
/// never fire (jump rules not wired taken-first) are left out; the
/// candidate sets the tree produces are exactly the rules the linear
/// selector would attempt a full match for.
MatcherAutomaton buildMatcherAutomaton(const PreparedLibrary &Library);

/// Returns an explanation if \p Automaton was not compiled from
/// \p Library (fingerprint, rule-count, or cost-table/cost-version
/// mismatch — a pre-cost image against a cost-stamped library is
/// refused, not silently selected with zero costs), or the empty
/// string if it is current.
std::string automatonStalenessError(const MatcherAutomaton &Automaton,
                                    const PreparedLibrary &Library);

/// Staleness check for a mapped binary image — the same fingerprint /
/// rule-count / cost rules as the text path.
std::string automatonStalenessError(const BinaryAutomatonView &View,
                                    const PreparedLibrary &Library);

/// Candidate discovery through one discrimination-tree traversal per
/// subject position (heap automaton). One instance per selection
/// thread; not thread-safe itself, but many instances can share the
/// library and automaton.
class AutomatonCandidateSource : public RuleCandidateSource {
public:
  AutomatonCandidateSource(const PreparedLibrary &Library,
                           const MatcherAutomaton &Automaton)
      : Library(Library), Automaton(Automaton) {}

  void forEachBodyCandidate(
      const Node *S,
      const std::function<bool(const PreparedRule &)> &TryRule) override;
  void forEachJumpCandidate(
      NodeRef Condition,
      const std::function<bool(const PreparedRule &)> &TryRule) override;
  uint64_t takeNodesVisited() override;

private:
  const PreparedLibrary &Library;
  const MatcherAutomaton &Automaton;
  std::vector<uint32_t> Indices;
  uint64_t StatesVisited = 0;
};

/// Candidate discovery directly off a mapped binary automaton image —
/// zero deserialization, same candidate sets as the heap automaton.
/// One instance per selection thread over one shared read-only image.
class MappedCandidateSource : public RuleCandidateSource {
public:
  MappedCandidateSource(const PreparedLibrary &Library,
                        const BinaryAutomatonView &View)
      : Library(Library), View(View) {}

  void forEachBodyCandidate(
      const Node *S,
      const std::function<bool(const PreparedRule &)> &TryRule) override;
  void forEachJumpCandidate(
      NodeRef Condition,
      const std::function<bool(const PreparedRule &)> &TryRule) override;
  uint64_t takeNodesVisited() override;

private:
  const PreparedLibrary &Library;
  const BinaryAutomatonView &View;
  std::vector<uint32_t> Indices;
  uint64_t StatesVisited = 0;
};

/// Instruction selector driven by a synthesized pattern database, with
/// automaton-based candidate discovery.
class AutomatonSelector : public InstructionSelector {
public:
  /// Compiles the automaton in memory from \p Database (same
  /// parameters as GeneratedSelector; the two are interchangeable).
  AutomatonSelector(const PatternDatabase &Database,
                    const GoalLibrary &Goals);

  /// Uses a pre-compiled automaton (e.g. loaded from a
  /// selgen-matchergen file). Aborts if the automaton does not match
  /// the library — callers wanting a graceful error should check
  /// automatonStalenessError() first.
  AutomatonSelector(const PatternDatabase &Database, const GoalLibrary &Goals,
                    MatcherAutomaton Automaton);

  /// Adopts an already-prepared library instead of re-preparing —
  /// callers that prepared for a staleness check pass it here and the
  /// redundant prepare (clone + sort of every rule) is skipped.
  AutomatonSelector(PreparedLibrary &&Library, MatcherAutomaton Automaton);

  std::string name() const override { return "automaton"; }
  SelectionResult select(const Function &F) override;

  /// Number of usable (goal-resolved) rules.
  size_t numRules() const { return Library.rules().size(); }

  const PreparedLibrary &library() const { return Library; }
  const MatcherAutomaton &automaton() const { return Automaton; }

private:
  void noteAutomatonStatistics() const;

  PreparedLibrary Library;
  MatcherAutomaton Automaton;
};

/// Instruction selector running directly off a mapped binary automaton
/// image with zero deserialization. The image must outlive the
/// selector. Reports the same selector name as AutomatonSelector —
/// the two produce byte-identical machine code, and the differential
/// tests rely on their output files comparing equal.
class MappedAutomatonSelector : public InstructionSelector {
public:
  /// Prepares the library internally. Aborts if \p View is stale —
  /// check automatonStalenessError() first for a graceful error.
  MappedAutomatonSelector(const PatternDatabase &Database,
                          const GoalLibrary &Goals,
                          const BinaryAutomatonView &View);

  /// Adopts an already-prepared library (no redundant re-prepare).
  MappedAutomatonSelector(PreparedLibrary &&Library,
                          const BinaryAutomatonView &View);

  std::string name() const override { return "automaton"; }
  SelectionResult select(const Function &F) override;

  size_t numRules() const { return Library.rules().size(); }
  const PreparedLibrary &library() const { return Library; }
  const BinaryAutomatonView &view() const { return View; }

private:
  PreparedLibrary Library;
  const BinaryAutomatonView &View;
};

} // namespace selgen

#endif // SELGEN_ISEL_AUTOMATONSELECTOR_H
