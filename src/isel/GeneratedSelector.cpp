//===- GeneratedSelector.cpp - Rule-library-driven selector -------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "isel/GeneratedSelector.h"

#include "isel/SelectionEngine.h"

using namespace selgen;

namespace {

/// Candidate discovery by a linear scan over the whole library — the
/// paper prototype's strategy. The only filter is the root opcode, so
/// every rule whose root could align with the subject node is offered
/// in priority order.
class LinearCandidateSource : public RuleCandidateSource {
public:
  explicit LinearCandidateSource(const PreparedLibrary &Library)
      : Library(Library) {}

  void forEachBodyCandidate(
      const Node *S,
      const std::function<bool(const PreparedRule &)> &TryRule) override {
    for (const PreparedRule &R : Library.rules()) {
      if (R.IsJumpRule || R.Root->opcode() != S->opcode())
        continue;
      if (TryRule(R))
        return;
    }
  }

  void forEachJumpCandidate(
      NodeRef Condition,
      const std::function<bool(const PreparedRule &)> &TryRule) override {
    (void)Condition;
    for (const PreparedRule &R : Library.rules()) {
      // The goal's "taken" result must be the Cond node's taken output;
      // a rule wired the other way around would need inverted branch
      // targets, which the prototype does not do.
      if (!R.IsJumpRule || R.Root->opcode() != Opcode::Cond ||
          !R.TakenIsCondZero)
        continue;
      if (TryRule(R))
        return;
    }
  }

private:
  const PreparedLibrary &Library;
};

} // namespace

GeneratedSelector::GeneratedSelector(const PatternDatabase &Database,
                                     const GoalLibrary &Goals)
    : Library(Database, Goals) {}

SelectionResult GeneratedSelector::select(const Function &F) {
  LinearCandidateSource Source(Library);
  return runRuleSelection(F, Library, Source, name());
}
