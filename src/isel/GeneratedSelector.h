//===- GeneratedSelector.h - Rule-library-driven selector --------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The prototype instruction selector generated from a synthesized
/// rule library (paper Sections 3/5.6/7.3): a greedy DAG selector that
/// tries the library's rules most-specific-first at every uncovered
/// node and rewrites matched subgraphs to the goal instruction's
/// machine code. Rules are tried one by one — the paper reports (and
/// we reproduce) that this makes the full-library selector orders of
/// magnitude slower than the handwritten one; it is a property of the
/// prototype matcher, not of the synthesized library. The
/// discrimination-tree AutomatonSelector removes that linear scan
/// while producing identical machine code.
///
/// Uncovered operations fall back to a naive per-operation lowering
/// and are counted against coverage (Section 7.3's metric).
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_ISEL_GENERATEDSELECTOR_H
#define SELGEN_ISEL_GENERATEDSELECTOR_H

#include "isel/PreparedLibrary.h"
#include "isel/Selector.h"

namespace selgen {

/// Instruction selector driven by a synthesized pattern database.
/// Candidate rules for each subject node are found by a linear scan
/// over the whole library.
class GeneratedSelector : public InstructionSelector {
public:
  /// \p Database provides the rules; \p Goals the emission recipes (a
  /// rule whose goal is missing from \p Goals is ignored). The
  /// database should already be filtered and sorted (Section 5.6);
  /// construction re-sorts defensively.
  GeneratedSelector(const PatternDatabase &Database,
                    const GoalLibrary &Goals);

  std::string name() const override { return "synthesized"; }
  SelectionResult select(const Function &F) override;

  /// Number of usable (goal-resolved) rules.
  size_t numRules() const { return Library.rules().size(); }

  /// The prepared (priority-ordered) rule library.
  const PreparedLibrary &library() const { return Library; }

private:
  PreparedLibrary Library;
};

} // namespace selgen

#endif // SELGEN_ISEL_GENERATEDSELECTOR_H
