//===- HandwrittenSelector.cpp - Hand-tuned baseline selector -----------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "isel/HandwrittenSelector.h"

#include "isel/Lowering.h"
#include "support/Error.h"
#include "support/Timer.h"
#include "x86/MachinePasses.h"

#include <map>
#include <set>

using namespace selgen;

namespace {

using ValueKey = std::pair<const Node *, unsigned>;

/// Hand-tuned lowering of one basic block.
class HandwrittenBlockLowering {
public:
  HandwrittenBlockLowering(FunctionLowering &Lowering, const BasicBlock *BB)
      : L(Lowering), BB(BB), MB(Lowering.machineBlock(BB)) {}

  void run() {
    computeLiveness();
    detectFoldableShapes();
    for (Node *N : Live) {
      if (Done.count(N) || RmwMembers.count(N) || FoldableLoads.count(N))
        continue;
      lowerNode(N);
    }
    L.lowerTerminator(BB, [this](MachineBlock *, NodeRef Condition) {
      return lowerCondition(Condition);
    });
  }

private:
  FunctionLowering &L;
  const BasicBlock *BB;
  MachineBlock *MB;

  std::vector<Node *> Live;
  std::map<ValueKey, unsigned> UseCounts;
  std::set<const Node *> Done;
  /// Loads deferred for folding into a consumer's memory operand.
  std::set<const Node *> FoldableLoads;
  /// Load and arithmetic nodes absorbed into a read-modify-write store.
  std::set<const Node *> RmwMembers;
  /// Store -> (load, operation) of a detected read-modify-write shape.
  std::map<const Node *, std::pair<const Node *, const Node *>> RmwShapes;
  /// The Sub or Cmp node whose flags the last emitted flag-setting
  /// instruction left behind (flag-reuse trick).
  const Node *FlagsFrom = nullptr;

  unsigned width() const { return BB->body().width(); }

  void computeLiveness() {
    std::vector<NodeRef> Roots = BB->terminatorOperands();
    for (const NodeRef &Ref : Roots)
      ++UseCounts[{Ref.Def, Ref.Index}];
    for (Node *N : BB->body().liveNodesFrom(Roots)) {
      if (N->opcode() != Opcode::Arg)
        Live.push_back(N);
      for (const NodeRef &Operand : N->operands())
        ++UseCounts[{Operand.Def, Operand.Index}];
    }
  }

  static bool opcodeAllowsMemSource(Opcode Op) {
    switch (Op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Cmp:
      return true;
    default:
      return false;
    }
  }

  /// Precomputes which loads fold into consumers and which
  /// load-op-store triples become destination-addressing-mode
  /// instructions.
  void detectFoldableShapes() {
    static const std::map<Opcode, MOpcode> RmwOps = {
        {Opcode::Add, MOpcode::Add},
        {Opcode::Sub, MOpcode::Sub},
        {Opcode::And, MOpcode::And},
        {Opcode::Or, MOpcode::Or},
        {Opcode::Xor, MOpcode::Xor}};

    for (Node *StoreNode : Live) {
      if (StoreNode->opcode() != Opcode::Store)
        continue;
      NodeRef StoredValue = StoreNode->operand(2);
      const Node *Op = StoredValue.Def;
      if (!RmwOps.count(Op->opcode()) || useCount(StoredValue) != 1)
        continue;
      const Node *LoadNode = Op->operand(0).Def;
      if (LoadNode->opcode() != Opcode::Load || Op->operand(0).Index != 1)
        continue;
      if (!(LoadNode->operand(1) == StoreNode->operand(1)))
        continue;
      if (!(StoreNode->operand(0) ==
            NodeRef(const_cast<Node *>(LoadNode), 0)))
        continue;
      if (useCount(NodeRef(const_cast<Node *>(LoadNode), 1)) != 1)
        continue;
      RmwShapes[StoreNode] = {LoadNode, Op};
      RmwMembers.insert(LoadNode);
      RmwMembers.insert(Op);
    }

    for (Node *LoadNode : Live) {
      if (LoadNode->opcode() != Opcode::Load ||
          RmwMembers.count(LoadNode))
        continue;
      NodeRef Value(LoadNode, 1);
      if (useCount(Value) != 1 || anyStoreAfter(LoadNode))
        continue;
      // Find the unique user and require the load in a position that
      // accepts a memory operand (src2 of two-operand arithmetic or a
      // compare operand).
      for (Node *User : Live) {
        for (unsigned I = 0; I < User->numOperands(); ++I) {
          if (!(User->operand(I) == Value))
            continue;
          if (opcodeAllowsMemSource(User->opcode()) && I == 1 &&
              !RmwMembers.count(User))
            FoldableLoads.insert(LoadNode);
        }
      }
    }
  }

  unsigned useCount(NodeRef Ref) const {
    auto It = UseCounts.find({Ref.Def, Ref.Index});
    return It == UseCounts.end() ? 0 : It->second;
  }

  /// Appends an instruction, maintaining the flag-tracking state.
  /// \p NewFlagsFrom names the IR node whose comparison semantics the
  /// flags now hold (null if clobbered meaninglessly).
  void append(MachineInstr Instr, const Node *NewFlagsFrom = nullptr) {
    switch (Instr.Op) {
    case MOpcode::Mov:
    case MOpcode::Lea:
    case MOpcode::Not:
    case MOpcode::Cmov:
    case MOpcode::Setcc:
      break; // These preserve flags on x86.
    default:
      FlagsFrom = NewFlagsFrom;
      break;
    }
    MB->append(std::move(Instr));
  }

  // -- Address folding ----------------------------------------------------

  /// Decomposes an address value into base + index * scale + disp,
  /// recomputing shared subexpressions freely (the overlap trick).
  /// Terms that do not fit are materialized into the base register.
  MemRef foldAddress(NodeRef Address) {
    MemRef Ref;
    int64_t Disp = 0;
    std::vector<NodeRef> Terms;
    std::set<const Node *> Absorbed;
    collectTerms(Address, Terms, Disp, Absorbed, /*Depth=*/0);

    for (const NodeRef &Term : Terms) {
      // A scaled index: x << 1/2/3 or the Shl result itself.
      const Node *Def = Term.Def;
      if (!Ref.Index && Def->opcode() == Opcode::Shl &&
          Def->operand(1).Def->opcode() == Opcode::Const) {
        uint64_t Shift = Def->operand(1).Def->constValue().zextValue();
        if (Shift >= 1 && Shift <= 3) {
          Ref.Index = regOf(Def->operand(0));
          Ref.Scale = 1u << Shift;
          markAbsorbed(Def, Absorbed);
          continue;
        }
      }
      if (!Ref.Base) {
        Ref.Base = regOf(Term);
        continue;
      }
      if (!Ref.Index) {
        Ref.Index = regOf(Term);
        Ref.Scale = 1;
        continue;
      }
      // Too many components: collapse the rest into the base.
      MReg Combined = L.machineFunction().newReg();
      append({MOpcode::Add, CondCode::E, MOperand::reg(Combined),
              MOperand::reg(*Ref.Base), regOperandOf(Term)});
      Ref.Base = Combined;
    }
    Ref.Disp = Disp;

    // Single-use absorbed interior nodes need no standalone lowering.
    for (const Node *N : Absorbed)
      Done.insert(N);
    return Ref;
  }

  /// Collects additive terms of an address tree, following single-use
  /// *and* multi-use Adds (overlap is allowed; multi-use interior
  /// nodes are simply not marked absorbed, so they are also lowered
  /// standalone for their other users).
  void collectTerms(NodeRef Value, std::vector<NodeRef> &Terms,
                    int64_t &Disp, std::set<const Node *> &Absorbed,
                    unsigned Depth) {
    const Node *Def = Value.Def;
    if (Def->opcode() == Opcode::Const) {
      Disp += Def->constValue().sextValue();
      return;
    }
    if (Def->opcode() == Opcode::Add && Depth < 4) {
      if (useCount(Value) <= 1 || Depth == 0)
        markAbsorbed(Def, Absorbed);
      collectTerms(Def->operand(0), Terms, Disp, Absorbed, Depth + 1);
      collectTerms(Def->operand(1), Terms, Disp, Absorbed, Depth + 1);
      return;
    }
    Terms.push_back(Value);
  }

  void markAbsorbed(const Node *N, std::set<const Node *> &Absorbed) {
    // Only absorb a node whose every use is inside this fold; a
    // multi-use node is recomputed here and additionally lowered for
    // its other users.
    unsigned Uses = 0;
    for (unsigned I = 0; I < N->numResults(); ++I)
      Uses += useCount(NodeRef(const_cast<Node *>(N), I));
    if (Uses <= 1)
      Absorbed.insert(N);
  }

  // -- Operand helpers ------------------------------------------------------

  MReg regOf(NodeRef Ref) {
    MOperand Op = ensureValue(Ref);
    if (!Op.isReg())
      Op = L.regOperand(MB, Ref);
    assert(Op.isReg() && "expected a register");
    return Op.R;
  }

  MOperand regOperandOf(NodeRef Ref) {
    MOperand Op = ensureValue(Ref);
    return Op.isReg() ? Op : L.regOperand(MB, Ref);
  }

  /// Register-or-immediate source operand; additionally folds a
  /// single-use Load into a memory operand when no later store can
  /// alias (the source addressing-mode trick).
  MOperand srcOperand(NodeRef Ref) {
    const Node *Def = Ref.Def;
    if (Def->opcode() == Opcode::Const)
      return MOperand::imm(Def->constValue());
    if (Def->opcode() == Opcode::Load && Ref.Index == 1 &&
        FoldableLoads.count(Def) && !L.hasValue(Ref)) {
      Done.insert(Def);
      L.setValue(NodeRef(const_cast<Node *>(Def), 0), MOperand::none());
      return MOperand::mem(foldAddress(Def->operand(1)));
    }
    return ensureValue(Ref);
  }

  /// Late materialization: a value that was deferred (a foldable load
  /// whose consumer turned out not to use srcOperand) is emitted on
  /// first demand.
  MOperand ensureValue(NodeRef Ref) {
    if (L.hasValue(Ref))
      return L.value(Ref);
    Node *Def = Ref.Def;
    if (Def->opcode() == Opcode::Load) {
      MReg Dst = L.machineFunction().newReg();
      append({MOpcode::Mov, CondCode::E, MOperand::reg(Dst),
              MOperand::mem(foldAddress(Def->operand(1))), {}});
      L.setValue(NodeRef(Def, 0), MOperand::none());
      L.setValue(NodeRef(Def, 1), MOperand::reg(Dst));
      return L.value(Ref);
    }
    return L.regOperand(MB, Ref);
  }

  /// True if a Store follows \p LoadNode on the memory chain (folding
  /// the load forward past it would reorder an aliasing access).
  bool anyStoreAfter(const Node *LoadNode) {
    NodeRef Memory(const_cast<Node *>(LoadNode), 0);
    while (true) {
      const Node *User = nullptr;
      for (Node *N : Live)
        for (const NodeRef &Operand : N->operands())
          if (Operand == Memory)
            User = N;
      if (!User)
        return false;
      if (User->opcode() == Opcode::Store)
        return true;
      // Loads: continue down the chain.
      Memory = NodeRef(const_cast<Node *>(User), 0);
    }
  }

  // -- Per-node lowering ----------------------------------------------------

  void define(Node *N, unsigned Index, MOperand Op) {
    L.setValue(NodeRef(N, Index), std::move(Op));
  }

  void lowerNode(Node *N) {
    switch (N->opcode()) {
    case Opcode::Arg:
    case Opcode::Const: // Materialized or folded on demand.
    case Opcode::Cmp:   // Lowered at consumers (flags).
    case Opcode::Cond:
      return;
    case Opcode::Load: {
      if (L.hasValue(NodeRef(N, 1)))
        return; // Already folded into a consumer.
      MReg Dst = L.machineFunction().newReg();
      append({MOpcode::Mov, CondCode::E, MOperand::reg(Dst),
              MOperand::mem(foldAddress(N->operand(1))), {}});
      define(N, 0, MOperand::none());
      define(N, 1, MOperand::reg(Dst));
      return;
    }
    case Opcode::Store: {
      // Destination addressing mode: store(load(addr) op x) -> op (addr), x.
      if (lowerReadModifyWrite(N))
        return;
      MOperand Value = flexOperandOf(N->operand(2));
      append({MOpcode::Mov, CondCode::E,
              MOperand::mem(foldAddress(N->operand(1))), Value, {}});
      define(N, 0, MOperand::none());
      return;
    }
    case Opcode::Add: {
      if (lowerAddAsLea(N))
        return;
      lowerBinary(N, MOpcode::Add);
      return;
    }
    case Opcode::Sub: {
      MOperand Lhs = regOperandOf(N->operand(0));
      MOperand Rhs = srcOperand(N->operand(1));
      MReg Dst = L.machineFunction().newReg();
      append({MOpcode::Sub, CondCode::E, MOperand::reg(Dst), Lhs, Rhs},
             /*NewFlagsFrom=*/N);
      define(N, 0, MOperand::reg(Dst));
      return;
    }
    case Opcode::Mul:
      lowerBinary(N, MOpcode::Imul);
      return;
    case Opcode::And:
      lowerBinary(N, MOpcode::And);
      return;
    case Opcode::Or:
      lowerBinary(N, MOpcode::Or);
      return;
    case Opcode::Xor:
      lowerBinary(N, MOpcode::Xor);
      return;
    case Opcode::Shl:
      lowerBinary(N, MOpcode::Shl);
      return;
    case Opcode::Shr:
      lowerBinary(N, MOpcode::Shr);
      return;
    case Opcode::Shrs:
      lowerBinary(N, MOpcode::Sar);
      return;
    case Opcode::Not:
    case Opcode::Minus: {
      MOperand Src = regOperandOf(N->operand(0));
      MReg Dst = L.machineFunction().newReg();
      append({N->opcode() == Opcode::Not ? MOpcode::Not : MOpcode::Neg,
              CondCode::E, MOperand::reg(Dst), Src, {}});
      define(N, 0, MOperand::reg(Dst));
      return;
    }
    case Opcode::Mux: {
      MOperand TrueValue = regOperandOf(N->operand(1));
      MOperand FalseValue = regOperandOf(N->operand(2));
      CondCode CC = lowerCondition(N->operand(0));
      MReg Dst = L.machineFunction().newReg();
      append({MOpcode::Cmov, CC, MOperand::reg(Dst), TrueValue, FalseValue});
      define(N, 0, MOperand::reg(Dst));
      return;
    }
    }
    SELGEN_UNREACHABLE("bad opcode");
  }

  void lowerBinary(Node *N, MOpcode Op) {
    MOperand Lhs = regOperandOf(N->operand(0));
    // Shift counts must be an immediate or a register on x86; other
    // two-operand arithmetic also accepts a memory source.
    bool IsShift =
        Op == MOpcode::Shl || Op == MOpcode::Shr || Op == MOpcode::Sar;
    MOperand Rhs = IsShift ? flexOperandOf(N->operand(1))
                           : srcOperand(N->operand(1));
    MReg Dst = L.machineFunction().newReg();
    append({Op, CondCode::E, MOperand::reg(Dst), Lhs, Rhs});
    define(N, 0, MOperand::reg(Dst));
  }

  MOperand flexOperandOf(NodeRef Ref) {
    if (Ref.Def->opcode() == Opcode::Const)
      return MOperand::imm(Ref.Def->constValue());
    return regOperandOf(Ref);
  }

  /// Folds a 3+-component Add tree into one lea.
  bool lowerAddAsLea(Node *N) {
    // Count the components a fold would produce.
    int64_t Disp = 0;
    std::vector<NodeRef> Terms;
    std::set<const Node *> Probe;
    collectTerms(NodeRef(N, 0), Terms, Disp, Probe, /*Depth=*/0);
    unsigned Components =
        Terms.size() + (Disp != 0 ? 1 : 0) +
        (!Terms.empty() && Terms[0].Def->opcode() == Opcode::Shl ? 1 : 0);
    if (Components < 3 || Terms.size() > 2)
      return false;
    MReg Dst = L.machineFunction().newReg();
    append({MOpcode::Lea, CondCode::E, MOperand::reg(Dst),
            MOperand::mem(foldAddress(NodeRef(N, 0))), {}});
    define(N, 0, MOperand::reg(Dst));
    return true;
  }

  /// Destination addressing mode: Store(m1, p, op(Load(m0, p), x)),
  /// precomputed by detectFoldableShapes.
  bool lowerReadModifyWrite(Node *StoreNode) {
    auto It = RmwShapes.find(StoreNode);
    if (It == RmwShapes.end())
      return false;
    const auto &[LoadNode, Op] = It->second;
    static const std::map<Opcode, MOpcode> RmwOps = {
        {Opcode::Add, MOpcode::Add},
        {Opcode::Sub, MOpcode::Sub},
        {Opcode::And, MOpcode::And},
        {Opcode::Or, MOpcode::Or},
        {Opcode::Xor, MOpcode::Xor}};

    MOperand Rhs = flexOperandOf(Op->operand(1));
    MOperand Mem = MOperand::mem(foldAddress(StoreNode->operand(1)));
    append({RmwOps.at(Op->opcode()), CondCode::E, Mem, Mem, Rhs});
    define(const_cast<Node *>(LoadNode), 0, MOperand::none());
    define(StoreNode, 0, MOperand::none());
    return true;
  }

  /// Emits (or reuses) a flag-setting sequence for a boolean value and
  /// returns the branch condition code.
  CondCode lowerCondition(NodeRef Condition) {
    const Node *Def = Condition.Def;
    if (Def->opcode() != Opcode::Cmp)
      reportFatalError("handwritten selector: branch condition is not a "
                       "comparison");
    // Flag-reuse trick: a live sub x, y already set the flags of
    // cmp x, y.
    if (FlagsFrom && FlagsFrom->opcode() == Opcode::Sub &&
        FlagsFrom->operand(0) == Def->operand(0) &&
        FlagsFrom->operand(1) == Def->operand(1))
      return condCodeForRelation(Def->relation());

    MOperand Lhs = regOperandOf(Def->operand(0));
    MOperand Rhs = srcOperand(Def->operand(1));
    append({MOpcode::Cmp, CondCode::E, {}, Lhs, Rhs}, Def);
    return condCodeForRelation(Def->relation());
  }
};

} // namespace

SelectionResult HandwrittenSelector::select(const Function &F) {
  Timer Clock;
  SelectionResult Result;
  FunctionLowering Lowering(F, name());

  for (const auto &BB : F.blocks()) {
    HandwrittenBlockLowering Block(Lowering, BB.get());
    Block.run();
  }

  Result.TotalOperations = F.numOperations();
  Result.FallbackOperations = Result.TotalOperations;
  Result.MF = Lowering.takeMachineFunction();
  removeDeadInstructions(*Result.MF);
  Result.SelectionSeconds = Clock.elapsedSeconds();
  return Result;
}
