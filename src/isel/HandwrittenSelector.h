//===- HandwrittenSelector.h - Hand-tuned baseline selector ------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hand-tuned greedy instruction selector standing in for
/// libFirm's x86 backend (paper Section 7.1's "Handwritten" column).
/// Besides solid per-operation lowering it implements the two tricks
/// the paper credits the handwritten selector with (Section 7.3):
///
/// * overlapping address-mode folding: effective addresses are folded
///   into memory operands and lea instructions even when parts of the
///   address computation have other users (they are recomputed, which
///   trades one instruction for less register pressure);
/// * flag reuse: a branch on cmp(x, y) reuses the flags of an earlier
///   sub(x, y) in the same block when they are still live.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_ISEL_HANDWRITTENSELECTOR_H
#define SELGEN_ISEL_HANDWRITTENSELECTOR_H

#include "isel/Selector.h"

namespace selgen {

/// The hand-tuned baseline selector.
class HandwrittenSelector : public InstructionSelector {
public:
  std::string name() const override { return "handwritten"; }
  SelectionResult select(const Function &F) override;
};

} // namespace selgen

#endif // SELGEN_ISEL_HANDWRITTENSELECTOR_H
