//===- Lowering.cpp - Shared function-lowering scaffolding --------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "isel/Lowering.h"

#include "support/Error.h"

using namespace selgen;

FunctionLowering::FunctionLowering(const Function &F,
                                   const std::string &SelectorName)
    : F(F), MF(std::make_unique<MachineFunction>(
                 F.name() + "." + SelectorName, F.width())) {
  // CFG skeleton plus block argument registers (memory tokens get no
  // register; they exist only as instruction ordering).
  for (const auto &BB : F.blocks()) {
    MachineBlock *MB = MF->createBlock(BB->name());
    Blocks[BB.get()] = MB;
    const Graph &Body = BB->body();
    for (unsigned I = 0; I < Body.numArgs(); ++I) {
      NodeRef Arg = Body.arg(I);
      if (Arg.sort().isMemory()) {
        setValue(Arg, MOperand::none());
        continue;
      }
      MReg R = MF->newReg();
      MB->ArgRegs.push_back(R);
      setValue(Arg, MOperand::reg(R));
    }
  }
}

MOperand FunctionLowering::regOperand(MachineBlock *MB, NodeRef Ref,
                                      bool *MaterializedConst) {
  if (hasValue(Ref))
    return value(Ref);
  if (Ref.Def->opcode() == Opcode::Const) {
    MReg R = MF->newReg();
    MB->append({MOpcode::Mov, CondCode::E, MOperand::reg(R),
                MOperand::imm(Ref.Def->constValue()), {}});
    setValue(Ref, MOperand::reg(R));
    if (MaterializedConst)
      *MaterializedConst = true;
    return value(Ref);
  }
  reportFatalError("instruction selection: operand of node #" +
                   std::to_string(Ref.Def->id()) + " has no value");
}

MOperand FunctionLowering::flexOperand(MachineBlock *MB, NodeRef Ref) {
  if (hasValue(Ref))
    return value(Ref);
  if (Ref.Def->opcode() == Opcode::Const)
    return MOperand::imm(Ref.Def->constValue());
  return regOperand(MB, Ref);
}

std::vector<std::pair<MReg, MOperand>>
FunctionLowering::edgeMoves(MachineBlock *MB, const BlockEdge &Edge) {
  std::vector<std::pair<MReg, MOperand>> Moves;
  MachineBlock *Target = Blocks.at(Edge.Target);
  unsigned ArgRegIndex = 0;
  for (unsigned I = 0; I < Edge.Arguments.size(); ++I) {
    NodeRef Value = Edge.Arguments[I];
    if (Value.sort().isMemory())
      continue;
    Moves.emplace_back(Target->ArgRegs[ArgRegIndex++],
                       flexOperand(MB, Value));
  }
  return Moves;
}

void FunctionLowering::lowerTerminator(
    const BasicBlock *BB,
    const std::function<CondCode(MachineBlock *, NodeRef)> &LowerCondition) {
  MachineBlock *MB = Blocks.at(BB);
  const Terminator &Term = BB->terminator();
  MTerminator &MTerm = MB->terminator();

  switch (Term.TermKind) {
  case Terminator::Kind::Return: {
    MTerm.TermKind = MTerminator::Kind::Ret;
    for (const NodeRef &Value : Term.ReturnValues)
      if (!Value.sort().isMemory())
        MTerm.ReturnValues.push_back(flexOperand(MB, Value));
    return;
  }
  case Terminator::Kind::Jump: {
    MTerm.TermKind = MTerminator::Kind::Jmp;
    MTerm.Then = Blocks.at(Term.Then.Target);
    MTerm.ThenMoves = edgeMoves(MB, Term.Then);
    return;
  }
  case Terminator::Kind::Branch: {
    MTerm.TermKind = MTerminator::Kind::Jcc;
    // Edge moves are computed before the flag-setting sequence so a
    // constant materialization cannot clobber the flags... moves run
    // at edge time, after the jcc, so they may not touch flags. They
    // only use mov, which preserves flags on x86.
    MTerm.Then = Blocks.at(Term.Then.Target);
    MTerm.Else = Blocks.at(Term.Else.Target);
    MTerm.ThenMoves = edgeMoves(MB, Term.Then);
    MTerm.ElseMoves = edgeMoves(MB, Term.Else);
    MTerm.CC = LowerCondition(MB, Term.Condition);
    return;
  }
  }
  SELGEN_UNREACHABLE("bad terminator kind");
}
