//===- Lowering.h - Shared function-lowering scaffolding ---------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CFG skeleton construction, value mapping, and terminator lowering
/// shared by every instruction selector in the project. A selector
/// only has to provide (a) the lowering of block bodies and (b) how a
/// branch condition becomes a flag-setting sequence plus a condition
/// code.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_ISEL_LOWERING_H
#define SELGEN_ISEL_LOWERING_H

#include "ir/Function.h"
#include "x86/MachineIR.h"

#include <functional>
#include <map>
#include <memory>

namespace selgen {

/// Mutable lowering state for one function.
class FunctionLowering {
public:
  FunctionLowering(const Function &F, const std::string &SelectorName);

  const Function &function() const { return F; }
  MachineFunction &machineFunction() { return *MF; }
  std::unique_ptr<MachineFunction> takeMachineFunction() {
    return std::move(MF);
  }

  MachineBlock *machineBlock(const BasicBlock *BB) const {
    return Blocks.at(BB);
  }

  // -- Value mapping -----------------------------------------------------
  bool hasValue(NodeRef Ref) const {
    return Values.count({Ref.Def, Ref.Index}) != 0;
  }
  MOperand value(NodeRef Ref) const {
    return Values.at({Ref.Def, Ref.Index});
  }
  void setValue(NodeRef Ref, MOperand Operand) {
    Values[{Ref.Def, Ref.Index}] = std::move(Operand);
  }

  /// Returns a register operand for \p Ref: the mapped register, or a
  /// freshly emitted `mov $imm, reg` into \p MB if the value is an IR
  /// constant that has not been materialized yet. \p MaterializedConst
  /// (if non-null) is set when a constant materialization happened.
  MOperand regOperand(MachineBlock *MB, NodeRef Ref,
                      bool *MaterializedConst = nullptr);

  /// Returns an operand for \p Ref that may be an immediate (constant
  /// values are used inline instead of materialized).
  MOperand flexOperand(MachineBlock *MB, NodeRef Ref);

  /// Lowers the terminator of \p BB. \p LowerCondition emits the
  /// flag-setting instructions for a branch condition into the block
  /// and returns the condition code to branch on.
  void lowerTerminator(const BasicBlock *BB,
                       const std::function<CondCode(MachineBlock *, NodeRef)>
                           &LowerCondition);

private:
  const Function &F;
  std::unique_ptr<MachineFunction> MF;
  std::map<const BasicBlock *, MachineBlock *> Blocks;
  std::map<std::pair<const Node *, unsigned>, MOperand> Values;

  std::vector<std::pair<MReg, MOperand>>
  edgeMoves(MachineBlock *MB, const BlockEdge &Edge);
};

} // namespace selgen

#endif // SELGEN_ISEL_LOWERING_H
