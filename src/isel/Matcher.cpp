//===- Matcher.cpp - DAG pattern matching -------------------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "isel/Matcher.h"

#include <set>

using namespace selgen;

namespace {

/// Recursive structural matcher.
class MatcherState {
public:
  MatcherState(const Graph &Pattern, const std::vector<ArgRole> &Roles,
               uint64_t *NodesVisited)
      : Pattern(Pattern), Roles(Roles), NodesVisited(NodesVisited) {
    Result.ArgBindings.assign(Pattern.numArgs(), NodeRef());
  }

  std::optional<MatchResult> run(const Node *PatternRoot,
                                 const Node *SubjectRoot) {
    if (!matchNode(PatternRoot, SubjectRoot))
      return std::nullopt;
    return finish();
  }

  std::optional<MatchResult> runValue(NodeRef PatternValue,
                                      NodeRef SubjectValue) {
    if (!matchValue(PatternValue, SubjectValue))
      return std::nullopt;
    return finish();
  }

private:
  const Graph &Pattern;
  const std::vector<ArgRole> &Roles;
  uint64_t *NodesVisited;
  MatchResult Result;

  void visit() {
    if (NodesVisited)
      ++*NodesVisited;
  }

  std::optional<MatchResult> finish() {
    for (const auto &[PatternNode, SubjectNode] : Result.NodeMap)
      if (PatternNode->opcode() != Opcode::Const)
        Result.CoveredNodes.push_back(SubjectNode);
    return std::move(Result);
  }

  ArgRole roleOf(unsigned ArgIndex) const {
    return Roles.empty() ? ArgRole::Reg : Roles[ArgIndex];
  }

  bool bindArg(const Node *PatternArg, NodeRef SubjectValue) {
    unsigned Index = PatternArg->argIndex();
    if (PatternArg->resultSort(0) != SubjectValue.sort())
      return false;
    switch (roleOf(Index)) {
    case ArgRole::Imm:
      // Instruction immediates must come from IR constants.
      if (SubjectValue.Def->opcode() != Opcode::Const)
        return false;
      break;
    case ArgRole::Mem:
    case ArgRole::Reg:
    case ArgRole::Addr:
      break;
    }
    NodeRef &Binding = Result.ArgBindings[Index];
    if (Binding.isValid())
      return Binding == SubjectValue; // Repeated argument: same value.
    Binding = SubjectValue;
    return true;
  }

  bool matchValue(NodeRef PatternValue, NodeRef SubjectValue) {
    visit();
    const Node *PatternNode = PatternValue.Def;
    if (PatternNode->opcode() == Opcode::Arg)
      return bindArg(PatternNode, SubjectValue);
    if (PatternValue.Index != SubjectValue.Index)
      return false;
    return matchNode(PatternNode, SubjectValue.Def);
  }

  bool matchNode(const Node *PatternNode, const Node *SubjectNode) {
    visit();
    auto [It, Inserted] = Result.NodeMap.try_emplace(PatternNode,
                                                     SubjectNode);
    if (!Inserted)
      return It->second == SubjectNode; // Shared pattern node: same match.
    if (PatternNode->opcode() != SubjectNode->opcode()) {
      Result.NodeMap.erase(It);
      return false;
    }
    bool Ok = true;
    switch (PatternNode->opcode()) {
    case Opcode::Const:
      Ok = PatternNode->constValue().width() ==
               SubjectNode->constValue().width() &&
           PatternNode->constValue() == SubjectNode->constValue();
      break;
    case Opcode::Cmp:
      Ok = PatternNode->relation() == SubjectNode->relation();
      break;
    default:
      break;
    }
    if (Ok)
      for (unsigned I = 0; I < PatternNode->numOperands() && Ok; ++I)
        Ok = matchValue(PatternNode->operand(I), SubjectNode->operand(I));
    if (!Ok)
      Result.NodeMap.erase(PatternNode);
    return Ok;
  }
};

} // namespace

std::optional<MatchResult>
selgen::matchPattern(const Graph &Pattern, const std::vector<ArgRole> &Roles,
                     const Node *PatternRoot, const Node *SubjectRoot,
                     uint64_t *NodesVisited) {
  return MatcherState(Pattern, Roles, NodesVisited)
      .run(PatternRoot, SubjectRoot);
}

std::optional<MatchResult>
selgen::matchPatternValue(const Graph &Pattern,
                          const std::vector<ArgRole> &Roles,
                          NodeRef PatternValue, NodeRef SubjectValue,
                          uint64_t *NodesVisited) {
  return MatcherState(Pattern, Roles, NodesVisited)
      .runValue(PatternValue, SubjectValue);
}

const Node *selgen::patternRoot(const Graph &Pattern) {
  // The root must reach every operation of the pattern, because
  // matching proceeds from the root downwards. A multi-result pattern
  // like [Load.0, Add(Load.1, a2)] is rooted at the Add, not at the
  // Load. Patterns without a covering result (e.g. two independent
  // comparisons) cannot be matched and yield null.
  std::set<const Node *> AllOps;
  for (Node *N : Pattern.liveNodes())
    if (N->opcode() != Opcode::Arg)
      AllOps.insert(N);

  for (const NodeRef &Ref : Pattern.results()) {
    if (Ref.Def->opcode() == Opcode::Arg)
      continue;
    std::set<const Node *> Reached;
    std::vector<const Node *> Worklist = {Ref.Def};
    while (!Worklist.empty()) {
      const Node *N = Worklist.back();
      Worklist.pop_back();
      if (N->opcode() == Opcode::Arg || !Reached.insert(N).second)
        continue;
      for (const NodeRef &Operand : N->operands())
        Worklist.push_back(Operand.Def);
    }
    if (Reached.size() == AllOps.size())
      return Ref.Def;
  }
  return nullptr;
}

bool selgen::matchedConstantsSatisfyPreconditions(const Graph &,
                                                  const MatchResult &Match,
                                                  unsigned Width) {
  for (const auto &[PatternNode, SubjectNode] : Match.NodeMap) {
    (void)SubjectNode;
    Opcode Op = PatternNode->opcode();
    if (Op != Opcode::Shl && Op != Opcode::Shr && Op != Opcode::Shrs)
      continue;
    // Find the concrete amount if the amount operand is a constant or
    // an Imm-bound argument; runtime amounts stay unchecked (the rule
    // is still sound: out-of-range amounts are undefined IR).
    NodeRef Amount = PatternNode->operand(1);
    const BitValue *Value = nullptr;
    if (Amount.Def->opcode() == Opcode::Const)
      Value = &Amount.Def->constValue();
    else if (Amount.Def->opcode() == Opcode::Arg) {
      NodeRef Bound = Match.ArgBindings[Amount.Def->argIndex()];
      if (Bound.isValid() && Bound.Def->opcode() == Opcode::Const)
        Value = &Bound.Def->constValue();
    }
    if (Value && Value->uge(BitValue(Value->width(), Width)))
      return false;
  }
  return true;
}
