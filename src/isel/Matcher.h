//===- Matcher.h - DAG pattern matching --------------------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural matching of a rule's IR pattern against a subject graph
/// (a basic-block body). Matching is exact on opcodes, attributes, and
/// wiring; pattern arguments bind subject values subject to their goal
/// argument roles (an Imm-role argument only binds an IR constant).
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_ISEL_MATCHER_H
#define SELGEN_ISEL_MATCHER_H

#include "ir/Graph.h"
#include "semantics/InstrSpec.h"

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

namespace selgen {

/// A successful match of a pattern against a subject graph.
struct MatchResult {
  /// Pattern operation node -> subject node.
  std::map<const Node *, const Node *> NodeMap;
  /// One subject value per pattern argument (Imm-role bindings point
  /// at Const nodes).
  std::vector<NodeRef> ArgBindings;
  /// Matched subject operation nodes, excluding Const and Arg nodes
  /// (constants are rematerializable and never block a match).
  std::vector<const Node *> CoveredNodes;
};

/// Tries to match \p Pattern so that its node corresponding to
/// \p PatternRoot aligns with the subject node \p SubjectRoot.
/// \p Roles are the goal's argument roles (parallel to the pattern's
/// arguments). Returns std::nullopt on mismatch. \p NodesVisited, if
/// non-null, is incremented by the number of pattern positions the
/// match walk examined (the matcher-work metric of the selection
/// telemetry).
std::optional<MatchResult> matchPattern(const Graph &Pattern,
                                        const std::vector<ArgRole> &Roles,
                                        const Node *PatternRoot,
                                        const Node *SubjectRoot,
                                        uint64_t *NodesVisited = nullptr);

/// Like matchPattern, but aligns a pattern *value* with a subject
/// value. Used for terminator matching, where the pattern's Cond
/// operand is matched against the branch condition.
std::optional<MatchResult> matchPatternValue(const Graph &Pattern,
                                             const std::vector<ArgRole> &Roles,
                                             NodeRef PatternValue,
                                             NodeRef SubjectValue,
                                             uint64_t *NodesVisited = nullptr);

/// The root of a pattern: the defining node of its first result whose
/// definition is an operation (not an argument). Returns null for
/// argument-only patterns (e.g. mov_ri's identity pattern).
const Node *patternRoot(const Graph &Pattern);

/// Checks the paper's shift preconditions on the concrete constants a
/// match bound: a rule whose pattern shifts by a bound constant that
/// is out of range must not fire (such IR is undefined, but real
/// compilers leave it alone rather than exploiting it).
bool matchedConstantsSatisfyPreconditions(const Graph &Pattern,
                                          const MatchResult &Match,
                                          unsigned Width);

} // namespace selgen

#endif // SELGEN_ISEL_MATCHER_H
