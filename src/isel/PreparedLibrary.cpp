//===- PreparedLibrary.cpp - Rules prepared for matching ----------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "isel/PreparedLibrary.h"

#include "isel/Matcher.h"
#include "support/Hashing.h"

#include <map>

using namespace selgen;

PreparedLibrary::PreparedLibrary(const PatternDatabase &Database,
                                 const GoalLibrary &Goals) {
  // Own a sorted copy of the rules (the database may outlive us or
  // not; cloning decouples lifetimes).
  PatternDatabase Sorted;
  for (const Rule &R : Database.rules())
    Sorted.add(R.GoalName, R.Pattern.clone());
  Sorted.sortSpecificFirst();
  for (const Rule &R : Sorted.rules())
    OwnedRules.emplace_back(R.GoalName, R.Pattern.clone());

  StableHasher Hasher;
  Hasher.str("selgen-prepared-library-v1");

  // One cost probe per goal: all rules of a goal share its emission
  // recipe, and probing runs Emit, which is not free at 12k rules.
  std::map<const GoalInstruction *, RuleCost> CostCache;
  auto goalCost = [&CostCache](const GoalInstruction &Goal) {
    auto It = CostCache.find(&Goal);
    if (It == CostCache.end())
      It = CostCache.emplace(&Goal, deriveRuleCost(Goal)).first;
    return It->second;
  };

  for (const Rule &R : OwnedRules) {
    const GoalInstruction *Goal = Goals.find(R.GoalName);
    if (!Goal)
      continue; // Rule for a goal outside this target subset.
    PreparedRule Prepared;
    Prepared.TheRule = &R;
    Prepared.Goal = Goal;
    Prepared.Root = patternRoot(R.Pattern);
    Prepared.IsJumpRule = false;
    for (const Sort &S : Goal->Spec->resultSorts())
      if (S.isBool())
        Prepared.IsJumpRule = true;
    if (!Prepared.Root) {
      // Identity pattern: a single Imm-role argument wired straight to
      // the result is the mov-immediate rule used to materialize
      // constants. Other rootless patterns (disconnected results)
      // cannot be matched and are dropped.
      if (R.Pattern.numOperations() == 0 &&
          Goal->Spec->argSorts().size() == 1 &&
          Goal->Spec->argRole(0) == ArgRole::Imm && !ImmediateMoveGoal)
        ImmediateMoveGoal = Goal;
      continue;
    }
    if (Prepared.IsJumpRule) {
      // The goal's "taken" result (its first boolean result) must be
      // the Cond node's taken output.
      for (const NodeRef &Ref : R.Pattern.results()) {
        if (!Ref.sort().isBool())
          continue;
        Prepared.TakenIsCondZero =
            Ref.Def == Prepared.Root && Ref.Index == 0;
        break;
      }
    }
    Prepared.Index = static_cast<uint32_t>(Rules.size());
    Prepared.Cost = goalCost(*Goal);
    Hasher.str(R.GoalName);
    Hasher.str(R.Pattern.fingerprint());
    Rules.push_back(Prepared);
  }
  Hasher.u64(Rules.size());
  Fingerprint = Hasher.hex();
}
