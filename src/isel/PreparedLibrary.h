//===- PreparedLibrary.h - Rules prepared for matching -----------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rule-library preparation shared by every rule-driven selector
/// and by the matcher-automaton compiler (src/matchergen): a sorted,
/// goal-resolved copy of a PatternDatabase with per-rule matching
/// metadata (pattern root, jump-rule classification, priority index).
/// Keeping this in one place guarantees that the linear selector, the
/// automaton selector, and a serialized automaton all agree on the
/// rule priority order — the property the byte-identical-output
/// differential tests rely on.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_ISEL_PREPAREDLIBRARY_H
#define SELGEN_ISEL_PREPAREDLIBRARY_H

#include "cost/CostModel.h"
#include "pattern/PatternDatabase.h"
#include "x86/Goals.h"

#include <cstdint>
#include <string>
#include <vector>

namespace selgen {

/// A rule prepared for matching.
struct PreparedRule {
  const Rule *TheRule = nullptr;
  const GoalInstruction *Goal = nullptr;
  const Node *Root = nullptr; ///< Pattern root operation (never null here).
  bool IsJumpRule = false;    ///< Goal is a compare-and-jump pair.
  /// Jump rules only: the pattern's first boolean result is the Cond
  /// node's taken output (result 0). A rule wired the other way around
  /// would need inverted branch targets, which the prototype does not
  /// do; such rules never fire.
  bool TakenIsCondZero = false;
  /// Position in the most-specific-first priority order. Leaves of the
  /// matching automaton refer to rules by this index.
  uint32_t Index = 0;
  /// Cost vector of the goal's emission recipe (cost/CostModel.h),
  /// derived at prepare time. Identical for all rules of one goal.
  RuleCost Cost;
};

/// A priority-ordered, goal-resolved rule library ready for matching.
class PreparedLibrary {
public:
  /// \p Database provides the rules; \p Goals the emission recipes (a
  /// rule whose goal is missing from \p Goals is ignored). The
  /// database should already be filtered and sorted (Section 5.6);
  /// preparation re-sorts defensively. \p Goals must outlive this
  /// object.
  PreparedLibrary(const PatternDatabase &Database, const GoalLibrary &Goals);

  PreparedLibrary(const PreparedLibrary &) = delete;
  PreparedLibrary &operator=(const PreparedLibrary &) = delete;

  /// Moving is safe: every PreparedRule pointer targets the heap
  /// buffer of OwnedRules (which a vector move preserves) or the
  /// external GoalLibrary. Lets a caller prepare once and hand the
  /// result to a selector without a redundant re-prepare.
  PreparedLibrary(PreparedLibrary &&) = default;
  PreparedLibrary &operator=(PreparedLibrary &&) = default;

  /// Usable (goal-resolved, rooted) rules in priority order.
  const std::vector<PreparedRule> &rules() const { return Rules; }

  /// The goal used to materialize constants (a single-Imm-argument
  /// identity rule, mov_ri), or null if the library has none.
  const GoalInstruction *immediateMoveGoal() const {
    return ImmediateMoveGoal;
  }

  /// Stable content hash over the prepared rule sequence (goal names +
  /// pattern fingerprints in priority order). A serialized matching
  /// automaton records this so a stale automaton file is rejected, not
  /// misread, when the rule library changes.
  const std::string &fingerprint() const { return Fingerprint; }

private:
  std::vector<Rule> OwnedRules; ///< Sorted copy of the database rules.
  std::vector<PreparedRule> Rules;
  const GoalInstruction *ImmediateMoveGoal = nullptr;
  std::string Fingerprint;
};

} // namespace selgen

#endif // SELGEN_ISEL_PREPAREDLIBRARY_H
