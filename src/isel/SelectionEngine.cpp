//===- SelectionEngine.cpp - Shared rule-driven selection ----------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "isel/SelectionEngine.h"

#include "analysis/Dataflow.h"
#include "ir/Printer.h"
#include "isel/Lowering.h"
#include "isel/Matcher.h"
#include "support/Error.h"
#include "support/Statistics.h"
#include "support/Timer.h"
#include "x86/MachinePasses.h"

#include <map>
#include <optional>
#include <set>

using namespace selgen;

namespace {

using ValueKey = std::pair<const Node *, unsigned>;

bool StaticPrecondElision = true;

/// Matching-work counters for one select() run.
struct SelectionCounters {
  uint64_t RulesTried = 0;
  uint64_t NodesVisited = 0;
  uint64_t PrecondProved = 0;
};

/// Selection and emission for one basic block.
class BlockSelection {
public:
  BlockSelection(FunctionLowering &Lowering, const BasicBlock *BB)
      : L(Lowering), BB(BB), MB(Lowering.machineBlock(BB)) {}

  struct Selection {
    const Rule *TheRule = nullptr;
    const GoalInstruction *Goal = nullptr;
    MatchResult Match;
    const Node *RootSubject = nullptr;
    std::set<ValueKey> Produced;
    std::optional<CondCode> JumpCC;
  };

  FunctionLowering &L;
  const BasicBlock *BB;
  MachineBlock *MB;

  std::vector<Node *> Live; ///< Non-Arg live nodes, forward order.
  std::map<ValueKey, std::vector<const Node *>> Users;
  std::set<ValueKey> TerminatorUses;
  std::set<const Node *> Covered;
  std::map<const Node *, Selection> SelectionsByRoot;
  std::optional<Selection> BranchSelection;

  unsigned SynthCount = 0, FallbackCount = 0;
  const GoalInstruction *ImmediateMoveGoal = nullptr;

  /// Lazily built known-bits/range facts over the block body, used to
  /// discharge shift preconditions statically.
  std::optional<GraphFacts> Facts;

  /// True if the pattern contains at least one shift and the dataflow
  /// analysis proves every subject value the shifts' amounts matched
  /// to be in [0, width). Constants get singleton facts, so a proof
  /// subsumes the runtime matched-constant re-check: skipping it
  /// cannot change the match decision.
  bool preconditionsProvedStatically(const Graph &Pattern,
                                     const MatchResult &Match) {
    bool SawShift = false;
    for (const auto &NPtr : Pattern.nodes()) {
      Opcode Op = NPtr->opcode();
      if (Op != Opcode::Shl && Op != Opcode::Shr && Op != Opcode::Shrs)
        continue;
      auto It = Match.NodeMap.find(NPtr.get());
      if (It == Match.NodeMap.end())
        continue; // Dead pattern node; never executed.
      SawShift = true;
      if (!Facts->provesShiftInRange(It->second))
        return false;
    }
    return SawShift;
  }

  /// The precondition gate shared by body and branch selection: prove
  /// statically when possible, fall back to the matched-constant check.
  bool preconditionsHold(const Graph &Pattern, const MatchResult &Match,
                         unsigned Width, SelectionCounters &Counters) {
    if (StaticPrecondElision &&
        preconditionsProvedStatically(Pattern, Match)) {
      ++Counters.PrecondProved;
      return true;
    }
    return matchedConstantsSatisfyPreconditions(Pattern, Match, Width);
  }

  void computeLiveness() {
    std::vector<NodeRef> Roots = BB->terminatorOperands();
    for (const NodeRef &Ref : Roots)
      TerminatorUses.insert({Ref.Def, Ref.Index});
    if (BB->terminator().TermKind == Terminator::Kind::Branch)
      TerminatorUses.insert({BB->terminator().Condition.Def,
                             BB->terminator().Condition.Index});
    for (Node *N : BB->body().liveNodesFrom(Roots)) {
      if (N->opcode() != Opcode::Arg)
        Live.push_back(N);
      for (const NodeRef &Operand : N->operands())
        Users[{Operand.Def, Operand.Index}].push_back(N);
    }
  }

  /// The subject values a rule instance defines, given a match.
  static std::set<ValueKey> producedValues(const Graph &Pattern,
                                           const MatchResult &Match,
                                           const Node *CondRoot) {
    std::set<ValueKey> Produced;
    for (const NodeRef &Ref : Pattern.results()) {
      if (Ref.Def->opcode() == Opcode::Arg || Ref.Def == CondRoot)
        continue;
      auto It = Match.NodeMap.find(Ref.Def);
      if (It != Match.NodeMap.end())
        Produced.insert({It->second, Ref.Index});
    }
    return Produced;
  }

  /// Checks that a match does not overlap earlier selections and that
  /// every matched value with uses outside the match is produced by
  /// the rule (the prototype "strictly avoids overlapping patterns",
  /// Section 7.3).
  bool usageCheckOk(const MatchResult &Match,
                    const std::set<ValueKey> &Produced) {
    std::set<const Node *> Matched(Match.CoveredNodes.begin(),
                                   Match.CoveredNodes.end());
    for (const Node *X : Match.CoveredNodes) {
      if (Covered.count(X))
        return false;
      for (unsigned I = 0; I < X->numResults(); ++I) {
        ValueKey Key{X, I};
        if (Produced.count(Key))
          continue;
        if (TerminatorUses.count(Key))
          return false;
        auto It = Users.find(Key);
        if (It == Users.end())
          continue;
        for (const Node *User : It->second)
          if (!Matched.count(User))
            return false;
      }
    }
    return true;
  }

  void selectBody(RuleCandidateSource &Source, unsigned Width,
                  SelectionCounters &Counters) {
    for (auto It = Live.rbegin(); It != Live.rend(); ++It) {
      Node *S = *It;
      if (Covered.count(S) || S->opcode() == Opcode::Const)
        continue;
      // Bool-only producers (Cmp) are matched as part of their
      // consumers or at the terminator.
      if (S->numResults() == 1 && S->resultSort(0).isBool())
        continue;
      Source.forEachBodyCandidate(S, [&](const PreparedRule &R) {
        ++Counters.RulesTried;
        std::optional<MatchResult> Match =
            matchPattern(R.TheRule->Pattern, R.Goal->Spec->argRoles(),
                         R.Root, S, &Counters.NodesVisited);
        if (!Match)
          return false;
        if (!preconditionsHold(R.TheRule->Pattern, *Match, Width, Counters))
          return false;
        std::set<ValueKey> Produced =
            producedValues(R.TheRule->Pattern, *Match, nullptr);
        bool DefinesRoot = false;
        for (unsigned I = 0; I < S->numResults(); ++I)
          DefinesRoot |= Produced.count({S, I}) != 0;
        if (!DefinesRoot)
          return false; // The match must define this node's values.
        if (!usageCheckOk(*Match, Produced))
          return false;

        Selection Sel;
        Sel.TheRule = R.TheRule;
        Sel.Goal = R.Goal;
        Sel.Match = std::move(*Match);
        Sel.RootSubject = S;
        Sel.Produced = std::move(Produced);
        for (const Node *X : Sel.Match.CoveredNodes)
          Covered.insert(X);
        SelectionsByRoot.emplace(S, std::move(Sel));
        return true;
      });
      // Unselected nodes fall back during emission.
    }
  }

  void selectBranch(RuleCandidateSource &Source, unsigned Width,
                    SelectionCounters &Counters) {
    if (BB->terminator().TermKind != Terminator::Kind::Branch)
      return;
    NodeRef Condition = BB->terminator().Condition;
    Source.forEachJumpCandidate(Condition, [&](const PreparedRule &R) {
      ++Counters.RulesTried;
      std::optional<MatchResult> Match =
          matchPatternValue(R.TheRule->Pattern, R.Goal->Spec->argRoles(),
                            R.Root->operand(0), Condition,
                            &Counters.NodesVisited);
      if (!Match)
        return false;
      if (!preconditionsHold(R.TheRule->Pattern, *Match, Width, Counters))
        return false;
      std::set<ValueKey> Produced =
          producedValues(R.TheRule->Pattern, *Match, R.Root);
      // The branch consumes the condition value itself.
      Produced.insert({Condition.Def, Condition.Index});
      if (!usageCheckOk(*Match, Produced))
        return false;

      Selection Sel;
      Sel.TheRule = R.TheRule;
      Sel.Goal = R.Goal;
      Sel.Match = std::move(*Match);
      Sel.Produced = std::move(Produced);
      for (const Node *X : Sel.Match.CoveredNodes)
        Covered.insert(X);
      BranchSelection = std::move(Sel);
      return true;
    });
  }

  /// Emits one selected rule instance.
  void emitSelection(Selection &Sel) {
    const InstrSpec &Spec = *Sel.Goal->Spec;
    std::vector<MOperand> Args;
    for (unsigned I = 0; I < Spec.argSorts().size(); ++I) {
      NodeRef Binding = Sel.Match.ArgBindings[I];
      if (!Binding.isValid() && Sel.Goal->Spec->argRole(I) != ArgRole::Mem)
        reportFatalError("rule for " + Sel.Goal->Name + " leaves argument " +
                         std::to_string(I) + " unbound (pattern: " +
                         printGraphExpression(Sel.TheRule->Pattern) + ")");
      switch (Spec.argRole(I)) {
      case ArgRole::Mem:
        Args.push_back(MOperand::none());
        break;
      case ArgRole::Imm:
        assert(Binding.Def->opcode() == Opcode::Const &&
               "immediate binding must be a constant");
        Args.push_back(MOperand::imm(Binding.Def->constValue()));
        break;
      case ArgRole::Reg:
      case ArgRole::Addr:
        Args.push_back(materialize(Binding));
        break;
      }
    }
    EmittedGoal Out = Sel.Goal->Emit(L.machineFunction(), Args);
    for (MachineInstr &Instr : Out.Instrs)
      MB->append(std::move(Instr));
    Sel.JumpCC = Out.JumpCC;

    const Graph &Pattern = Sel.TheRule->Pattern;
    for (unsigned R = 0; R < Pattern.results().size(); ++R) {
      const NodeRef &Ref = Pattern.results()[R];
      if (Ref.Def->opcode() == Opcode::Arg)
        continue;
      auto It = Sel.Match.NodeMap.find(Ref.Def);
      if (It == Sel.Match.NodeMap.end())
        continue; // The Cond root of a jump rule.
      L.setValue(NodeRef(const_cast<Node *>(It->second), Ref.Index),
                 Out.Results[R]);
    }
    SynthCount += Sel.Match.CoveredNodes.size();
  }

  /// Materializes a value into a register-or-immediate operand as the
  /// goal's Reg role demands (registers only; constants get a mov).
  MOperand materialize(NodeRef Ref) {
    if (L.hasValue(Ref))
      return L.value(Ref);
    if (Ref.Def->opcode() == Opcode::Const) {
      if (ImmediateMoveGoal) {
        EmittedGoal Out = ImmediateMoveGoal->Emit(
            L.machineFunction(),
            {MOperand::imm(Ref.Def->constValue())});
        for (MachineInstr &Instr : Out.Instrs)
          MB->append(std::move(Instr));
        L.setValue(Ref, Out.Results[0]);
        ++SynthCount;
        return Out.Results[0];
      }
      ++FallbackCount;
      return L.regOperand(MB, Ref);
    }
    return L.regOperand(MB, Ref);
  }

  /// Emits a flag-setting compare for a bool value and returns the
  /// condition code (fallback path for unmatched conditions).
  CondCode emitCondition(NodeRef Condition) {
    const Node *Def = Condition.Def;
    if (Def->opcode() == Opcode::Cmp) {
      MOperand Lhs = materialize(Def->operand(0));
      MOperand Rhs = L.flexOperand(MB, Def->operand(1));
      MB->append({MOpcode::Cmp, CondCode::E, {}, Lhs, Rhs});
      ++FallbackCount;
      return condCodeForRelation(Def->relation());
    }
    reportFatalError("cannot lower branch condition of node #" +
                     std::to_string(Def->id()));
  }

  /// Naive per-operation fallback lowering (counts against coverage).
  void emitFallback(Node *S) {
    unsigned Width = BB->body().width();
    (void)Width;
    auto def = [&](unsigned Index, MOperand Op) {
      L.setValue(NodeRef(S, Index), std::move(Op));
    };
    auto newReg = [&] { return L.machineFunction().newReg(); };

    switch (S->opcode()) {
    case Opcode::Const:
      return; // Materialized on demand.
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::Shrs: {
      static const std::map<Opcode, MOpcode> Map = {
          {Opcode::Add, MOpcode::Add},  {Opcode::Sub, MOpcode::Sub},
          {Opcode::Mul, MOpcode::Imul}, {Opcode::And, MOpcode::And},
          {Opcode::Or, MOpcode::Or},    {Opcode::Xor, MOpcode::Xor},
          {Opcode::Shl, MOpcode::Shl},  {Opcode::Shr, MOpcode::Shr},
          {Opcode::Shrs, MOpcode::Sar}};
      MOperand Lhs = materialize(S->operand(0));
      MOperand Rhs = L.flexOperand(MB, S->operand(1));
      MReg Dst = newReg();
      MB->append({Map.at(S->opcode()), CondCode::E, MOperand::reg(Dst),
                  Lhs, Rhs});
      def(0, MOperand::reg(Dst));
      break;
    }
    case Opcode::Not:
    case Opcode::Minus: {
      MOperand Src = materialize(S->operand(0));
      MReg Dst = newReg();
      MB->append({S->opcode() == Opcode::Not ? MOpcode::Not : MOpcode::Neg,
                  CondCode::E, MOperand::reg(Dst), Src, {}});
      def(0, MOperand::reg(Dst));
      break;
    }
    case Opcode::Load: {
      MOperand Pointer = materialize(S->operand(1));
      MemRef Ref;
      Ref.Base = Pointer.R;
      MReg Dst = newReg();
      MB->append({MOpcode::Mov, CondCode::E, MOperand::reg(Dst),
                  MOperand::mem(Ref), {}});
      def(0, MOperand::none());
      def(1, MOperand::reg(Dst));
      break;
    }
    case Opcode::Store: {
      MOperand Pointer = materialize(S->operand(1));
      MOperand Value = L.flexOperand(MB, S->operand(2));
      MemRef Ref;
      Ref.Base = Pointer.R;
      MB->append({MOpcode::Mov, CondCode::E, MOperand::mem(Ref), Value, {}});
      def(0, MOperand::none());
      break;
    }
    case Opcode::Mux: {
      MOperand TrueValue = materialize(S->operand(1));
      MOperand FalseValue = materialize(S->operand(2));
      CondCode CC = emitCondition(S->operand(0));
      MReg Dst = newReg();
      MB->append(
          {MOpcode::Cmov, CC, MOperand::reg(Dst), TrueValue, FalseValue});
      def(0, MOperand::reg(Dst));
      break;
    }
    case Opcode::Cmp:
    case Opcode::Cond:
      return; // Handled at their consumers.
    case Opcode::Arg:
      return;
    }
    ++FallbackCount;
  }

  void run(RuleCandidateSource &Source, const GoalInstruction *MovRi,
           unsigned Width, SelectionCounters &Counters) {
    ImmediateMoveGoal = MovRi;
    Facts.emplace(BB->body());
    computeLiveness();
    selectBranch(Source, Width, Counters);
    selectBody(Source, Width, Counters);

    for (Node *S : Live) {
      auto It = SelectionsByRoot.find(S);
      if (It != SelectionsByRoot.end()) {
        emitSelection(It->second);
        continue;
      }
      if (!Covered.count(S))
        emitFallback(S);
    }

    L.lowerTerminator(BB, [this](MachineBlock *, NodeRef Condition) {
      if (BranchSelection) {
        emitSelection(*BranchSelection);
        return *BranchSelection->JumpCC;
      }
      return emitCondition(Condition);
    });
  }
};

} // namespace

SelectionResult selgen::runRuleSelection(const Function &F,
                                         const PreparedLibrary &Library,
                                         RuleCandidateSource &Source,
                                         const std::string &SelectorName,
                                         SelectionObserver *Observer) {
  Timer Clock;
  SelectionResult Result;
  FunctionLowering Lowering(F, SelectorName);
  SelectionCounters Counters;

  for (const auto &BB : F.blocks()) {
    BlockSelection Block(Lowering, BB.get());
    Block.run(Source, Library.immediateMoveGoal(), F.width(), Counters);
    Result.CoveredOperations += Block.SynthCount;
    Result.FallbackOperations += Block.FallbackCount;
  }
  Counters.NodesVisited += Source.takeNodesVisited();

  Result.TotalOperations = F.numOperations();
  Result.MF = Lowering.takeMachineFunction();
  removeDeadInstructions(*Result.MF);
  Result.SelectionSeconds = Clock.elapsedSeconds();

  if (Observer) {
    Observer->RulesTried += Counters.RulesTried;
    Observer->NodesVisited += Counters.NodesVisited;
    Observer->PrecondProved += Counters.PrecondProved;
    Observer->SelectUs += Result.SelectionSeconds * 1e6;
    return Result;
  }

  Statistics &Stats = Statistics::get();
  Stats.add("selector.rules_tried",
            static_cast<int64_t>(Counters.RulesTried));
  Stats.add("matcher.nodes_visited",
            static_cast<int64_t>(Counters.NodesVisited));
  Stats.add("matcher.precond_proved",
            static_cast<int64_t>(Counters.PrecondProved));
  Stats.add("selector.select_us",
            static_cast<int64_t>(Result.SelectionSeconds * 1e6));
  SelectionTelemetry Telemetry;
  Telemetry.Function = F.name();
  Telemetry.Selector = SelectorName;
  Telemetry.SelectUs = Result.SelectionSeconds * 1e6;
  Telemetry.RulesTried = Counters.RulesTried;
  Telemetry.MatcherNodesVisited = Counters.NodesVisited;
  Telemetry.CoveredOperations = Result.CoveredOperations;
  Telemetry.FallbackOperations = Result.FallbackOperations;
  Stats.recordSelection(std::move(Telemetry));
  return Result;
}

void selgen::setStaticPrecondElision(bool Enabled) {
  StaticPrecondElision = Enabled;
}

bool selgen::staticPrecondElisionEnabled() { return StaticPrecondElision; }
