//===- SelectionEngine.h - Shared rule-driven selection ----------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The greedy DAG selection engine shared by the linear-scan
/// GeneratedSelector and the discrimination-tree AutomatonSelector.
/// Both selectors pick the same rules and emit the same machine code;
/// they differ only in how candidate rules for a subject node are
/// discovered, which is abstracted as a RuleCandidateSource. The
/// engine performs all semantic checks (full structural match,
/// shift preconditions, produced-value/overlap analysis) and the
/// emission, so a candidate source only has to enumerate a superset of
/// the matching rules in library priority order.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_ISEL_SELECTIONENGINE_H
#define SELGEN_ISEL_SELECTIONENGINE_H

#include "isel/PreparedLibrary.h"
#include "isel/Selector.h"

#include <functional>

namespace selgen {

/// Enumerates candidate rules for one subject position. An
/// implementation must call \p TryRule on candidates in ascending
/// PreparedRule::Index order (most-specific-first library priority)
/// and stop as soon as TryRule returns true. It may over-approximate
/// (offer rules the full match then rejects) but must never skip a
/// rule that would match — that is what keeps every source
/// byte-identical in output.
class RuleCandidateSource {
public:
  virtual ~RuleCandidateSource() = default;

  /// Candidates whose pattern root could align with subject node \p S.
  virtual void
  forEachBodyCandidate(const Node *S,
                       const std::function<bool(const PreparedRule &)>
                           &TryRule) = 0;

  /// Candidates for a compare-and-jump rule whose condition pattern
  /// could align with the branch condition value \p Condition.
  virtual void
  forEachJumpCandidate(NodeRef Condition,
                       const std::function<bool(const PreparedRule &)>
                           &TryRule) = 0;

  /// Candidate-discovery work performed since the last call (automaton
  /// state visits); drained into the selection telemetry so the
  /// matcher.nodes_visited counter reflects total matching work.
  virtual uint64_t takeNodesVisited() { return 0; }
};

/// Per-run matching counters, for callers that route observability
/// somewhere other than the global Statistics registry. The resident
/// compile server and the latency bench pass one per request: the
/// global registry is mutex-guarded and accumulates a telemetry
/// record per selection, both of which are wrong for millions of
/// selections across worker threads.
struct SelectionObserver {
  uint64_t RulesTried = 0;
  uint64_t NodesVisited = 0;
  uint64_t PrecondProved = 0;
  double SelectUs = 0;
};

/// Runs rule-driven selection of \p F using candidates from
/// \p Source, records matcher observability counters
/// (selector.rules_tried, matcher.nodes_visited,
/// matcher.precond_proved, selector.select_us plus a per-function
/// SelectionTelemetry record under \p SelectorName), and returns the
/// selection result. With \p Observer non-null the counters go into
/// it INSTEAD of the global registry — selection decisions and
/// machine code are identical either way.
SelectionResult runRuleSelection(const Function &F,
                                 const PreparedLibrary &Library,
                                 RuleCandidateSource &Source,
                                 const std::string &SelectorName,
                                 SelectionObserver *Observer = nullptr);

/// Toggles the dataflow-based elision of runtime shift-precondition
/// checks: when the known-bits/range analysis proves every shift
/// amount a match binds to be in range, the engine skips the
/// per-match constant re-check. A proof implies the re-check would
/// have passed, so selection decisions — and machine code — are
/// byte-identical either way; the differential tests flip this to
/// verify exactly that. Enabled by default.
void setStaticPrecondElision(bool Enabled);
bool staticPrecondElisionEnabled();

} // namespace selgen

#endif // SELGEN_ISEL_SELECTIONENGINE_H
