//===- Selector.h - Instruction selector interface ---------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common interface of the instruction selectors: the generated
/// prototype (isel/GeneratedSelector) driven by a synthesized rule
/// library, the hand-tuned baseline (isel/HandwrittenSelector), and
/// the deliberately incomplete reference selectors (refsel). All
/// lower a mini-Firm Function to a MachineFunction and report the
/// coverage statistics of paper Section 7.3.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_ISEL_SELECTOR_H
#define SELGEN_ISEL_SELECTOR_H

#include "ir/Function.h"
#include "x86/MachineIR.h"

#include <memory>

namespace selgen {

/// Output of one instruction selection run.
struct SelectionResult {
  std::unique_ptr<MachineFunction> MF;
  /// Live IR operations in the source function.
  unsigned TotalOperations = 0;
  /// Operations translated by synthesized rules (the paper's coverage
  /// numerator; the handwritten selector reports 0 here).
  unsigned CoveredOperations = 0;
  /// Operations handled by fallback/handwritten lowering.
  unsigned FallbackOperations = 0;
  /// Wall time of the selection phase (the compile-time experiment).
  double SelectionSeconds = 0;

  double coverage() const {
    return TotalOperations == 0
               ? 1.0
               : static_cast<double>(CoveredOperations) / TotalOperations;
  }
};

/// Abstract instruction selector.
class InstructionSelector {
public:
  virtual ~InstructionSelector() = default;

  /// Human-readable selector name for reports.
  virtual std::string name() const = 0;

  /// Lowers \p F (which must be well formed) to machine code.
  virtual SelectionResult select(const Function &F) = 0;
};

} // namespace selgen

#endif // SELGEN_ISEL_SELECTOR_H
