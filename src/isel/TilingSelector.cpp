//===- TilingSelector.cpp - Cost-minimal DAG tiling selector -------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "isel/TilingSelector.h"

#include "ir/Function.h"
#include "isel/Matcher.h"
#include "support/Error.h"
#include "support/Statistics.h"

#include <algorithm>
#include <set>
#include <utility>

using namespace selgen;

namespace {

/// Per-node cost estimate of the engine's naive fallback lowering,
/// used for cones no rule covers. The unit model always charges 1 per
/// node (see the anchor argument in the header); the other models
/// mirror emitFallback's instruction choices.
RuleCost fallbackNodeCost(const Node *N) {
  switch (N->opcode()) {
  case Opcode::Mul:
    return RuleCost{1, 3, 3}; // imul
  case Opcode::Load:
  case Opcode::Store:
    return RuleCost{1, 4, 3}; // mov with one memory operand
  case Opcode::Mux:
    return RuleCost{2, 2, 5}; // cmp + cmov
  case Opcode::Arg:
  case Opcode::Const:
  case Opcode::Cond:
    return RuleCost{0, 0, 0};
  default:
    return RuleCost{1, 1, 2}; // single reg-reg ALU instruction
  }
}

/// True for nodes the engine never offers to rules as a body root
/// (boolean producers are lowered through their consumers).
bool isBoolOnlyProducer(const Node *S) {
  return S->numResults() == 1 && S->resultSort(0).isBool();
}

} // namespace

void TilingCandidateSource::prepare(const Function &F) {
  if (!ConstCostComputed) {
    ConstCostComputed = true;
    if (Kind != CostKind::Unit)
      if (const GoalInstruction *Mov = Library.immediateMoveGoal())
        ConstMaterializeCost = deriveRuleCost(*Mov).get(Kind);
  }
  for (const auto &BB : F.blocks())
    prepareBlock(BB.get());
}

void TilingCandidateSource::prepareBlock(const BasicBlock *BB) {
  // Replicate the engine's liveness view: which values the terminator
  // consumes, which nodes are live, and who uses each definition.
  // Sharing is a property of *values*, not nodes, and memory tokens do
  // not count: they thread through loads/stores for free (a rule that
  // folds a load reproduces the token, see producedValues in the
  // engine), so a token use must never make its producer look shared.
  auto isMemoryRef = [](const NodeRef &Ref) {
    return Ref.Def->resultSort(Ref.Index).isMemory();
  };

  const std::vector<NodeRef> Roots = BB->terminatorOperands();
  std::set<const Node *> TerminatorUsedDefs;
  for (const NodeRef &Ref : Roots)
    if (!isMemoryRef(Ref))
      TerminatorUsedDefs.insert(Ref.Def);
  if (BB->terminator().TermKind == Terminator::Kind::Branch)
    TerminatorUsedDefs.insert(BB->terminator().Condition.Def);

  std::vector<Node *> Live = BB->body().liveNodesFrom(Roots);
  std::map<const Node *, std::set<const Node *>> DistinctUsers;
  for (const Node *N : Live)
    for (const NodeRef &Operand : N->operands())
      if (!isMemoryRef(Operand))
        DistinctUsers[Operand.Def].insert(N);

  // A definition with more than one distinct user (or a terminator
  // use) is produced exactly once regardless of which tile consumes
  // it: its cone is priced at its own root and contributes nothing at
  // consumers. This cuts the DP at DAG re-convergence points.
  auto isSharedDef = [&](const Node *D) {
    if (TerminatorUsedDefs.count(D))
      return true;
    auto It = DistinctUsers.find(D);
    return It != DistinctUsers.end() && It->second.size() >= 2;
  };

  // Best known cost of covering the cone rooted at a definition.
  std::map<const Node *, uint64_t> Best;

  // Cost a matched tile pays for its frontier inputs: each distinct
  // input definition is charged once, at the cheapest role it is
  // bound under.
  auto inputContribution = [&](const MatchResult &Match,
                               const std::vector<ArgRole> &Roles) {
    std::set<const Node *> Covered(Match.CoveredNodes.begin(),
                                   Match.CoveredNodes.end());
    std::map<const Node *, uint64_t> PerDef;
    for (size_t I = 0; I < Match.ArgBindings.size(); ++I) {
      const NodeRef &Ref = Match.ArgBindings[I];
      if (!Ref.isValid())
        continue;
      // Memory-token inputs thread for free; never charge the
      // producing load/store cone to a consumer tile.
      if (Ref.Def->resultSort(Ref.Index).isMemory())
        continue;
      const Node *D = Ref.Def;
      uint64_t C = 0;
      if (D->opcode() == Opcode::Arg || Covered.count(D)) {
        C = 0; // Free, or already priced inside the tile.
      } else if (D->opcode() == Opcode::Const) {
        ArgRole Role = I < Roles.size() ? Roles[I] : ArgRole::Reg;
        C = Role == ArgRole::Imm ? 0 : ConstMaterializeCost;
      } else if (isSharedDef(D)) {
        C = 0; // Produced once at its own root.
      } else {
        auto It = Best.find(D);
        C = It != Best.end() ? It->second : 0;
      }
      auto It = PerDef.find(D);
      if (It == PerDef.end())
        PerDef.emplace(D, C);
      else if (C < It->second)
        It->second = C;
    }
    uint64_t Sum = 0;
    for (const auto &Entry : PerDef)
      Sum += Entry.second;
    return Sum;
  };

  // What covering one node costs when no rule fires (the engine's
  // per-opcode fallback), with the same input accounting.
  auto fallbackCoverCost = [&](const Node *S) {
    uint64_t Total =
        Kind == CostKind::Unit ? 1 : fallbackNodeCost(S).get(Kind);
    std::set<const Node *> Seen;
    for (const NodeRef &Operand : S->operands()) {
      const Node *D = Operand.Def;
      if (isMemoryRef(Operand) || !Seen.insert(D).second)
        continue;
      if (D->opcode() == Opcode::Arg || isSharedDef(D))
        continue;
      if (D->opcode() == Opcode::Const) {
        Total += ConstMaterializeCost;
        continue;
      }
      auto It = Best.find(D);
      Total += It != Best.end() ? It->second : 0;
    }
    return Total;
  };

  // Bottom-up pass: Live is in creation order, so every operand's
  // cone is priced before its users look it up.
  for (const Node *S : Live) {
    if (S->opcode() == Opcode::Arg)
      continue;
    if (S->opcode() == Opcode::Const) {
      Best[S] = ConstMaterializeCost;
      continue;
    }
    if (isBoolOnlyProducer(S)) {
      // Never a selection root; priced as engine fallback if a tile
      // ever stops at it.
      Best[S] = fallbackCoverCost(S);
      continue;
    }

    std::vector<std::pair<uint64_t, uint32_t>> Costed; // (total, index)
    std::vector<uint32_t> Unmatched;
    Inner.forEachBodyCandidate(S, [&](const PreparedRule &R) {
      std::optional<MatchResult> Match =
          matchPattern(R.TheRule->Pattern, R.Goal->Spec->argRoles(), R.Root,
                       S, &MatchWork);
      if (!Match) {
        Unmatched.push_back(R.Index);
        return false;
      }
      uint64_t TileCost =
          Kind == CostKind::Unit
              ? static_cast<uint64_t>(Match->CoveredNodes.size())
              : R.Cost.get(Kind);
      Costed.emplace_back(
          TileCost + inputContribution(*Match, R.Goal->Spec->argRoles()),
          R.Index);
      return false; // Enumerate everything; the DP picks the order.
    });

    std::sort(Costed.begin(), Costed.end());
    std::vector<uint32_t> Order;
    Order.reserve(Costed.size() + Unmatched.size());
    for (const auto &Entry : Costed)
      Order.push_back(Entry.second);
    // Structurally unmatchable candidates stay in the set (the
    // contract forbids dropping), after the costed ones, in priority
    // order — the engine rejects them the same way either way.
    Order.insert(Order.end(), Unmatched.begin(), Unmatched.end());
    BodyOrder[S] = std::move(Order);

    Best[S] = Costed.empty() ? fallbackCoverCost(S) : Costed.front().first;
    // The emitted cover decomposes into roots: shared definitions,
    // terminator-used values, and nodes live only through the memory
    // chain (stores). Sum their cones as the DP objective.
    bool HasValueUse =
        TerminatorUsedDefs.count(S) || DistinctUsers.count(S);
    if (isSharedDef(S) || !HasValueUse)
      BestCoverCost += Best[S];
  }

  // Branch condition: order the compare-and-jump candidates by the
  // same cost rule.
  if (BB->terminator().TermKind != Terminator::Kind::Branch)
    return;
  NodeRef Condition = BB->terminator().Condition;
  std::vector<std::pair<uint64_t, uint32_t>> Costed;
  std::vector<uint32_t> Unmatched;
  Inner.forEachJumpCandidate(Condition, [&](const PreparedRule &R) {
    std::optional<MatchResult> Match =
        matchPatternValue(R.TheRule->Pattern, R.Goal->Spec->argRoles(),
                          R.Root->operand(0), Condition, &MatchWork);
    if (!Match) {
      Unmatched.push_back(R.Index);
      return false;
    }
    uint64_t TileCost =
        Kind == CostKind::Unit
            ? static_cast<uint64_t>(Match->CoveredNodes.size())
            : R.Cost.get(Kind);
    Costed.emplace_back(
        TileCost + inputContribution(*Match, R.Goal->Spec->argRoles()),
        R.Index);
    return false;
  });
  std::sort(Costed.begin(), Costed.end());
  std::vector<uint32_t> Order;
  Order.reserve(Costed.size() + Unmatched.size());
  for (const auto &Entry : Costed)
    Order.push_back(Entry.second);
  Order.insert(Order.end(), Unmatched.begin(), Unmatched.end());
  JumpOrder[{Condition.Def, Condition.Index}] = std::move(Order);
  if (!Costed.empty())
    BestCoverCost += Costed.front().first;
}

void TilingCandidateSource::forEachBodyCandidate(
    const Node *S,
    const std::function<bool(const PreparedRule &)> &TryRule) {
  auto It = BodyOrder.find(S);
  if (It == BodyOrder.end()) {
    // Unprepared position (defensive; prepare() visits every node the
    // engine can query) — fall through to the automaton's order.
    Inner.forEachBodyCandidate(S, TryRule);
    return;
  }
  for (uint32_t Index : It->second)
    if (TryRule(Library.rules()[Index]))
      return;
}

void TilingCandidateSource::forEachJumpCandidate(
    NodeRef Condition,
    const std::function<bool(const PreparedRule &)> &TryRule) {
  auto It = JumpOrder.find({Condition.Def, Condition.Index});
  if (It == JumpOrder.end()) {
    Inner.forEachJumpCandidate(Condition, TryRule);
    return;
  }
  for (uint32_t Index : It->second) {
    const PreparedRule &R = Library.rules()[Index];
    if (!R.IsJumpRule || !R.TakenIsCondZero)
      continue; // Defensive re-filter, as in the automaton sources.
    if (TryRule(R))
      return;
  }
}

uint64_t TilingCandidateSource::takeNodesVisited() {
  return std::exchange(MatchWork, 0) + Inner.takeNodesVisited();
}

SelectionResult selgen::runTilingSelection(const Function &F,
                                           const PreparedLibrary &Library,
                                           RuleCandidateSource &Inner,
                                           CostKind Kind,
                                           SelectionObserver *Observer) {
  TilingCandidateSource Source(Library, Inner, Kind);
  Source.prepare(F);
  SelectionResult Result = runRuleSelection(F, Library, Source, "tiling",
                                            Observer);
  if (!Observer) {
    Statistics &Stats = Statistics::get();
    Stats.add("tiling.functions", 1);
    Stats.add("tiling.best_cover_cost",
              static_cast<int64_t>(Source.bestCoverCost()));
  }
  return Result;
}

TilingSelector::TilingSelector(const PatternDatabase &Database,
                               const GoalLibrary &Goals, CostKind Kind)
    : Library(Database, Goals), Automaton(buildMatcherAutomaton(Library)),
      Kind(Kind) {}

TilingSelector::TilingSelector(PreparedLibrary &&PrebuiltLibrary,
                               MatcherAutomaton PrebuiltAutomaton,
                               CostKind Kind)
    : Library(std::move(PrebuiltLibrary)),
      Automaton(std::move(PrebuiltAutomaton)), Kind(Kind) {
  std::string Stale = automatonStalenessError(*Automaton, Library);
  if (!Stale.empty())
    reportFatalError(Stale);
}

TilingSelector::TilingSelector(PreparedLibrary &&PrebuiltLibrary,
                               const BinaryAutomatonView &MappedView,
                               CostKind Kind)
    : Library(std::move(PrebuiltLibrary)), View(&MappedView), Kind(Kind) {
  std::string Stale = automatonStalenessError(MappedView, Library);
  if (!Stale.empty())
    reportFatalError(Stale);
}

SelectionResult TilingSelector::select(const Function &F) {
  if (View) {
    MappedCandidateSource Inner(Library, *View);
    return runTilingSelection(F, Library, Inner, Kind);
  }
  AutomatonCandidateSource Inner(Library, *Automaton);
  return runTilingSelection(F, Library, Inner, Kind);
}
