//===- TilingSelector.h - Cost-minimal DAG tiling selector -------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cost-driven instruction selection on top of the shared selection
/// engine: instead of committing to the first rule that matches (the
/// library's most-specific-first priority order), a bottom-up dynamic
/// program computes, for every selectable IR node, the cheapest way to
/// cover its operand cone under a chosen cost model, and re-orders the
/// automaton's candidate sets so the engine tries the cheapest legal
/// tile first. Emission, legality checking, and fallback lowering stay
/// in the engine — tiling only changes the order candidates are
/// offered in, so it inherits every correctness property of the
/// first-match selectors.
///
/// Cost accounting (CSE-aware, DAG re-convergence safe):
///   * A tile rooted at node S costs its rule's RuleCost component
///     under the active model, plus the cost of producing each distinct
///     frontier input.
///   * Inputs defined by block arguments cost nothing; so do inputs
///     that are *shared* (two or more distinct users, or used by the
///     terminator): a shared value is produced exactly once no matter
///     which tile consumes it, so its cone is priced at its own root
///     and contributes zero at every consumer. This is what makes the
///     DP a sound approximation on DAGs rather than double-counting
///     re-converging subtrees.
///   * A single-use operation input contributes the memoized best cost
///     of its own cone (computed earlier in the bottom-up pass).
///   * A constant input bound to an Imm-role argument is encoded into
///     the instruction and contributes zero; bound to a Reg/Addr role
///     it contributes the cost of the library's immediate-move rule
///     (the engine will materialize it with exactly that rule).
///
/// The *unit* model is the migration-safety anchor: a tile costs the
/// number of IR nodes it covers and constant materialization is free,
/// so every full cover of a cone has the same total (the cone's node
/// count) and the stable (cost, priority-index) sort degenerates to
/// the library priority order — byte-identical output to the
/// first-match selectors, which CI enforces. The latency and size
/// models use the derived per-rule cost vectors and actually re-order.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_ISEL_TILINGSELECTOR_H
#define SELGEN_ISEL_TILINGSELECTOR_H

#include "cost/CostModel.h"
#include "isel/AutomatonSelector.h"
#include "isel/PreparedLibrary.h"
#include "isel/SelectionEngine.h"
#include "isel/Selector.h"

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

namespace selgen {

/// A candidate source that replays DP-computed, cost-sorted candidate
/// orderings. prepare() runs the bottom-up tiling DP over every block
/// of one function using \p Inner to enumerate candidates; afterwards
/// the source serves the recorded orderings without touching the
/// automaton again. Candidates the DP could not match structurally are
/// appended after the costed ones in priority order (never dropped —
/// the engine has the final say on legality, preserving the
/// RuleCandidateSource contract of only over-approximating).
class TilingCandidateSource : public RuleCandidateSource {
public:
  TilingCandidateSource(const PreparedLibrary &Library,
                        RuleCandidateSource &Inner, CostKind Kind)
      : Library(Library), Inner(Inner), Kind(Kind) {}

  /// Runs the tiling DP over \p F and records the candidate orderings.
  /// Must be called before the engine consumes this source.
  void prepare(const Function &F);

  void forEachBodyCandidate(
      const Node *S,
      const std::function<bool(const PreparedRule &)> &TryRule) override;
  void forEachJumpCandidate(
      NodeRef Condition,
      const std::function<bool(const PreparedRule &)> &TryRule) override;
  uint64_t takeNodesVisited() override;

  /// Total best-cover cost over all selection roots of the prepared
  /// function (the DP objective value; tiling.* statistics).
  uint64_t bestCoverCost() const { return BestCoverCost; }

private:
  using ValueKey = std::pair<const Node *, unsigned>;

  void prepareBlock(const BasicBlock *BB);

  const PreparedLibrary &Library;
  RuleCandidateSource &Inner;
  CostKind Kind;
  /// Pattern positions the DP's own match walks examined (merged into
  /// the matcher.nodes_visited telemetry alongside Inner's automaton
  /// state visits).
  uint64_t MatchWork = 0;
  uint64_t BestCoverCost = 0;
  /// Cost of materializing a constant into a register (the library's
  /// immediate-move rule under the active model; zero under unit).
  uint64_t ConstMaterializeCost = 0;
  bool ConstCostComputed = false;
  std::map<const Node *, std::vector<uint32_t>> BodyOrder;
  std::map<ValueKey, std::vector<uint32_t>> JumpOrder;
};

/// Runs cost-minimal tiling selection of \p F: tiling DP pre-pass over
/// \p Inner's candidate sets, then the shared engine under selector
/// name "tiling". This is the entry point for callers that manage
/// their own candidate sources (the resident compile server builds one
/// per request thread).
SelectionResult runTilingSelection(const Function &F,
                                   const PreparedLibrary &Library,
                                   RuleCandidateSource &Inner, CostKind Kind,
                                   SelectionObserver *Observer = nullptr);

/// Instruction selector performing cost-minimal DAG tiling over
/// automaton-discovered candidate sets. Mirrors AutomatonSelector's
/// three construction paths (in-memory compile, pre-compiled heap
/// automaton, mapped binary image).
class TilingSelector : public InstructionSelector {
public:
  /// Compiles the automaton in memory from \p Database.
  TilingSelector(const PatternDatabase &Database, const GoalLibrary &Goals,
                 CostKind Kind);

  /// Adopts an already-prepared library and a pre-compiled automaton
  /// (e.g. loaded from a selgen-matchergen file). Aborts if the
  /// automaton is stale — callers wanting a graceful error should
  /// check automatonStalenessError() first.
  TilingSelector(PreparedLibrary &&Library, MatcherAutomaton Automaton,
                 CostKind Kind);

  /// Runs directly off a mapped binary automaton image (which must
  /// outlive the selector). Aborts if the image is stale.
  TilingSelector(PreparedLibrary &&Library, const BinaryAutomatonView &View,
                 CostKind Kind);

  std::string name() const override { return "tiling"; }
  SelectionResult select(const Function &F) override;

  CostKind costKind() const { return Kind; }
  const PreparedLibrary &library() const { return Library; }

private:
  PreparedLibrary Library;
  /// Exactly one of Automaton / View is active.
  std::optional<MatcherAutomaton> Automaton;
  const BinaryAutomatonView *View = nullptr;
  CostKind Kind;
};

} // namespace selgen

#endif // SELGEN_ISEL_TILINGSELECTOR_H
