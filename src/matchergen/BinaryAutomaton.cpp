//===- BinaryAutomaton.cpp - mmap-able binary automaton format ----------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "matchergen/BinaryAutomaton.h"

#include "support/AtomicFile.h"

#include <algorithm>
#include <cstddef>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace selgen;

const char *selgen::binaryAutomatonErrorName(BinaryAutomatonError E) {
  switch (E) {
  case BinaryAutomatonError::None:
    return "none";
  case BinaryAutomatonError::Io:
    return "io";
  case BinaryAutomatonError::TooSmall:
    return "too-small";
  case BinaryAutomatonError::Misaligned:
    return "misaligned";
  case BinaryAutomatonError::BadMagic:
    return "bad-magic";
  case BinaryAutomatonError::ForeignEndian:
    return "foreign-endian";
  case BinaryAutomatonError::BadVersion:
    return "bad-version";
  case BinaryAutomatonError::HeaderCorrupt:
    return "header-corrupt";
  case BinaryAutomatonError::SizeMismatch:
    return "size-mismatch";
  case BinaryAutomatonError::PayloadCorrupt:
    return "payload-corrupt";
  case BinaryAutomatonError::BadSection:
    return "bad-section";
  case BinaryAutomatonError::BadStructure:
    return "bad-structure";
  }
  return "unknown";
}

bool selgen::isBinaryAutomatonFile(const std::string &Path) {
  int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0)
    return false;
  uint32_t First = 0;
  ssize_t Got = ::read(Fd, &First, sizeof(First));
  ::close(Fd);
  return Got == sizeof(First) && First == binfmt::Magic;
}

//===----------------------------------------------------------------------===//
// Serialization (MatcherAutomaton -> arena).
//===----------------------------------------------------------------------===//

namespace {

constexpr uint8_t MaxOpcode = static_cast<uint8_t>(Opcode::Cond);
constexpr uint8_t MaxSortKind = static_cast<uint8_t>(SortKind::Memory);
constexpr uint8_t MaxRelation = static_cast<uint8_t>(Relation::Sge);

void alignTo8(std::string &Out) {
  while (Out.size() % 8)
    Out.push_back('\0');
}

/// Appends \p Bytes at the next 8-aligned position; returns the offset.
uint32_t appendSection(std::string &Out, const void *Data, size_t Bytes) {
  alignTo8(Out);
  uint32_t Off = static_cast<uint32_t>(Out.size());
  if (Bytes)
    Out.append(static_cast<const char *>(Data), Bytes);
  return Off;
}

} // namespace

std::string MatcherAutomaton::serializeBinary() const {
  std::vector<binfmt::State> BStates;
  std::vector<binfmt::Edge> BEdges;
  std::vector<uint32_t> BAccepts;
  std::vector<uint64_t> Pool;
  BStates.reserve(States.size());

  for (const State &S : States) {
    binfmt::State BS;
    BS.EdgeBegin = static_cast<uint32_t>(BEdges.size());
    BS.EdgeCount = static_cast<uint32_t>(S.Edges.size());
    BS.AcceptBegin = static_cast<uint32_t>(BAccepts.size());
    BS.AcceptCount = static_cast<uint32_t>(S.AcceptRules.size());
    for (const Edge &E : S.Edges) {
      binfmt::Edge BE;
      BE.To = E.To;
      if (E.EdgeKind == Edge::Kind::Wildcard) {
        BE.Kind = binfmt::EdgeKindWildcard;
        BE.ResultIndex = AnyResultIndex;
        BE.OpOrSort = static_cast<uint8_t>(E.WildSort.Kind);
        BE.Width = E.WildSort.Width;
      } else {
        BE.Kind = binfmt::EdgeKindNode;
        BE.ResultIndex = E.ResultIndex;
        BE.OpOrSort = static_cast<uint8_t>(E.Op);
        if (E.HasConst) {
          BE.Flags |= binfmt::FlagHasConst;
          BE.Width = E.ConstValue.width();
          BE.ConstWordBegin = static_cast<uint32_t>(Pool.size());
          for (unsigned I = 0; I < E.ConstValue.wordCount(); ++I)
            Pool.push_back(E.ConstValue.word(I));
        }
        if (E.HasRelation) {
          BE.Flags |= binfmt::FlagHasRelation;
          BE.Rel = static_cast<uint8_t>(E.Rel);
        }
      }
      BEdges.push_back(BE);
    }
    BAccepts.insert(BAccepts.end(), S.AcceptRules.begin(),
                    S.AcceptRules.end());
    BStates.push_back(BS);
  }

  std::vector<binfmt::RuleCostRec> BCosts;
  BCosts.reserve(RuleCosts.size());
  for (const RuleCost &C : RuleCosts)
    BCosts.push_back({C.Instructions, C.Latency, C.Size});

  std::vector<binfmt::RootEntry> RootIdx;
  std::vector<uint32_t> RootPool;
  for (const auto &[Op, Indices] : BodyRootEdgesByOpcode) {
    binfmt::RootEntry RE;
    RE.Op = static_cast<uint32_t>(Op);
    RE.PoolBegin = static_cast<uint32_t>(RootPool.size());
    RE.PoolCount = static_cast<uint32_t>(Indices.size());
    RootPool.insert(RootPool.end(), Indices.begin(), Indices.end());
    RootIdx.push_back(RE);
  }

  std::string Out(sizeof(binfmt::Header), '\0');
  binfmt::Header H;
  H.Magic = binfmt::Magic;
  H.Version = binfmt::Version;
  H.EndianTag = binfmt::EndianTag;
  H.NumRules = NumRules;
  H.NumStates = static_cast<uint32_t>(BStates.size());
  H.NumEdges = static_cast<uint32_t>(BEdges.size());
  H.NumAccepts = static_cast<uint32_t>(BAccepts.size());
  H.NumConstWords = static_cast<uint32_t>(Pool.size());
  H.BodyRoot = BodyRoot;
  H.JumpRoot = JumpRoot;
  H.StatesOff = appendSection(Out, BStates.data(),
                              BStates.size() * sizeof(binfmt::State));
  H.EdgesOff =
      appendSection(Out, BEdges.data(), BEdges.size() * sizeof(binfmt::Edge));
  H.AcceptsOff =
      appendSection(Out, BAccepts.data(), BAccepts.size() * sizeof(uint32_t));
  H.ConstWordsOff =
      appendSection(Out, Pool.data(), Pool.size() * sizeof(uint64_t));
  H.RootIndexOff = appendSection(Out, RootIdx.data(),
                                 RootIdx.size() * sizeof(binfmt::RootEntry));
  H.RootIndexCount = static_cast<uint32_t>(RootIdx.size());
  H.RootPoolOff =
      appendSection(Out, RootPool.data(), RootPool.size() * sizeof(uint32_t));
  H.RootPoolCount = static_cast<uint32_t>(RootPool.size());
  H.RuleCostsOff = appendSection(Out, BCosts.data(),
                                 BCosts.size() * sizeof(binfmt::RuleCostRec));
  H.CostVersion = CostVersion;
  H.FingerprintOff = static_cast<uint32_t>(Out.size());
  H.FingerprintLen = static_cast<uint32_t>(LibraryFingerprint.size());
  Out += LibraryFingerprint;
  H.TotalBytes = static_cast<uint32_t>(Out.size());
  H.PayloadCrc =
      crc32(Out.data() + sizeof(H), Out.size() - sizeof(H));
  H.HeaderCrc = crc32(&H, offsetof(binfmt::Header, HeaderCrc));
  std::memcpy(Out.data(), &H, sizeof(H));
  return Out;
}

bool MatcherAutomaton::writeBinaryFile(const std::string &Path) const {
  return writeFileAtomic(Path, serializeBinary());
}

MatcherAutomaton MatcherAutomaton::fromParts(std::vector<State> NewStates,
                                             uint32_t NewBodyRoot,
                                             uint32_t NewJumpRoot,
                                             std::string Fingerprint,
                                             uint32_t NewNumRules,
                                             std::vector<RuleCost> NewCosts,
                                             uint32_t NewCostVersion) {
  MatcherAutomaton A;
  A.States = std::move(NewStates);
  A.BodyRoot = NewBodyRoot;
  A.JumpRoot = NewJumpRoot;
  A.LibraryFingerprint = std::move(Fingerprint);
  A.NumRules = NewNumRules;
  A.RuleCosts = std::move(NewCosts);
  A.CostVersion = NewCostVersion;
  A.rebuildRootIndex();
  return A;
}

//===----------------------------------------------------------------------===//
// Validation (arena -> view).
//===----------------------------------------------------------------------===//

std::optional<BinaryAutomatonView>
BinaryAutomatonView::fromMemory(const void *Data, size_t Size,
                                std::string *Error,
                                BinaryAutomatonError *Code) {
  auto fail = [&](BinaryAutomatonError E, const std::string &Message)
      -> std::optional<BinaryAutomatonView> {
    if (Error)
      *Error = std::string(binaryAutomatonErrorName(E)) + ": " + Message;
    if (Code)
      *Code = E;
    return std::nullopt;
  };

  if (Size < sizeof(binfmt::Header))
    return fail(BinaryAutomatonError::TooSmall,
                "image shorter than the fixed header");
  if (reinterpret_cast<uintptr_t>(Data) % 8 != 0)
    return fail(BinaryAutomatonError::Misaligned,
                "image base not 8-byte aligned");

  const auto *Hdr = static_cast<const binfmt::Header *>(Data);
  auto bswap = [](uint32_t V) {
    return ((V & 0xFFu) << 24) | ((V & 0xFF00u) << 8) |
           ((V >> 8) & 0xFF00u) | (V >> 24);
  };
  if (Hdr->Magic != binfmt::Magic) {
    if (Hdr->Magic == bswap(binfmt::Magic))
      return fail(BinaryAutomatonError::ForeignEndian,
                  "image written on an opposite-endian host");
    return fail(BinaryAutomatonError::BadMagic,
                "not a " + std::string(MatcherAutomaton::binaryFormatTag()) +
                    " image");
  }
  if (Hdr->EndianTag != binfmt::EndianTag)
    return fail(BinaryAutomatonError::ForeignEndian,
                "image written on an opposite-endian host");
  if (Hdr->Version != binfmt::Version)
    return fail(BinaryAutomatonError::BadVersion,
                "unsupported format version " +
                    std::to_string(Hdr->Version));
  if (crc32(Hdr, offsetof(binfmt::Header, HeaderCrc)) != Hdr->HeaderCrc)
    return fail(BinaryAutomatonError::HeaderCorrupt, "header CRC mismatch");
  if (Hdr->TotalBytes != Size)
    return fail(BinaryAutomatonError::SizeMismatch,
                "header claims " + std::to_string(Hdr->TotalBytes) +
                    " bytes, buffer has " + std::to_string(Size));
  const char *Bytes = static_cast<const char *>(Data);
  if (crc32(Bytes + sizeof(binfmt::Header),
            Size - sizeof(binfmt::Header)) != Hdr->PayloadCrc)
    return fail(BinaryAutomatonError::PayloadCorrupt,
                "payload CRC mismatch");

  // Section bounds. All arithmetic in uint64 so a hostile offset can
  // never wrap past the size check.
  auto sectionOk = [&](uint32_t Off, uint64_t Count, uint64_t Stride,
                       bool Aligned) {
    if (Off < sizeof(binfmt::Header) || (Aligned && Off % 8 != 0))
      return false;
    return uint64_t(Off) + Count * Stride <= uint64_t(Hdr->TotalBytes);
  };
  if (!sectionOk(Hdr->StatesOff, Hdr->NumStates, sizeof(binfmt::State), true))
    return fail(BinaryAutomatonError::BadSection, "state table out of range");
  if (!sectionOk(Hdr->EdgesOff, Hdr->NumEdges, sizeof(binfmt::Edge), true))
    return fail(BinaryAutomatonError::BadSection, "edge table out of range");
  if (!sectionOk(Hdr->AcceptsOff, Hdr->NumAccepts, sizeof(uint32_t), true))
    return fail(BinaryAutomatonError::BadSection,
                "accept table out of range");
  if (!sectionOk(Hdr->ConstWordsOff, Hdr->NumConstWords, sizeof(uint64_t),
                 true))
    return fail(BinaryAutomatonError::BadSection,
                "constant pool out of range");
  if (!sectionOk(Hdr->RootIndexOff, Hdr->RootIndexCount,
                 sizeof(binfmt::RootEntry), true))
    return fail(BinaryAutomatonError::BadSection, "root index out of range");
  if (!sectionOk(Hdr->RootPoolOff, Hdr->RootPoolCount, sizeof(uint32_t),
                 true))
    return fail(BinaryAutomatonError::BadSection, "root pool out of range");
  const uint64_t NumCosts = Hdr->CostVersion != 0 ? Hdr->NumRules : 0;
  if (!sectionOk(Hdr->RuleCostsOff, NumCosts, sizeof(binfmt::RuleCostRec),
                 true))
    return fail(BinaryAutomatonError::BadSection,
                "rule cost table out of range");
  if (!sectionOk(Hdr->FingerprintOff, Hdr->FingerprintLen, 1, false))
    return fail(BinaryAutomatonError::BadSection, "fingerprint out of range");

  BinaryAutomatonView V;
  V.Hdr = Hdr;
  V.States = reinterpret_cast<const binfmt::State *>(Bytes + Hdr->StatesOff);
  V.Edges = reinterpret_cast<const binfmt::Edge *>(Bytes + Hdr->EdgesOff);
  V.Accepts = reinterpret_cast<const uint32_t *>(Bytes + Hdr->AcceptsOff);
  V.ConstWords =
      reinterpret_cast<const uint64_t *>(Bytes + Hdr->ConstWordsOff);
  V.RootEntries =
      reinterpret_cast<const binfmt::RootEntry *>(Bytes + Hdr->RootIndexOff);
  V.RootPool = reinterpret_cast<const uint32_t *>(Bytes + Hdr->RootPoolOff);
  V.RuleCostsTab =
      reinterpret_cast<const binfmt::RuleCostRec *>(Bytes + Hdr->RuleCostsOff);
  V.FingerprintData = Bytes + Hdr->FingerprintOff;

  // Structural pass: after this, matching dereferences indices without
  // any further checks, so every index an edge/state/root entry could
  // feed into a table must be proven in range here.
  auto badStructure = [&](const std::string &Message) {
    return fail(BinaryAutomatonError::BadStructure, Message);
  };
  if (Hdr->NumStates == 0 || Hdr->BodyRoot >= Hdr->NumStates ||
      Hdr->JumpRoot >= Hdr->NumStates)
    return badStructure("root states out of range");
  // The span checks run branchless (OR-accumulated, so the compiler
  // can vectorize); the early-exit loop below reruns only on failure
  // to name the first offending span. mmap startup time rides on this
  // pass, so the valid-image path must not branch per record.
  bool AnyBadState = false;
  for (uint32_t I = 0; I < Hdr->NumStates; ++I) {
    const binfmt::State &S = V.States[I];
    AnyBadState |= uint64_t(S.EdgeBegin) + S.EdgeCount > Hdr->NumEdges;
    AnyBadState |= uint64_t(S.AcceptBegin) + S.AcceptCount > Hdr->NumAccepts;
  }
  if (AnyBadState)
    for (uint32_t I = 0; I < Hdr->NumStates; ++I) {
      const binfmt::State &S = V.States[I];
      if (uint64_t(S.EdgeBegin) + S.EdgeCount > Hdr->NumEdges)
        return badStructure("state edge span out of range");
      if (uint64_t(S.AcceptBegin) + S.AcceptCount > Hdr->NumAccepts)
        return badStructure("state accept span out of range");
    }
  for (uint32_t I = 0; I < Hdr->NumEdges; ++I) {
    const binfmt::Edge &E = V.Edges[I];
    if (E.To >= Hdr->NumStates)
      return badStructure("edge target out of range");
    if (E.Kind == binfmt::EdgeKindWildcard) {
      if (E.OpOrSort > MaxSortKind || E.Flags != 0 || E.Rel != 0 ||
          E.ConstWordBegin != 0 ||
          E.ResultIndex != MatcherAutomaton::AnyResultIndex)
        return badStructure("malformed wildcard edge");
      bool IsValue =
          static_cast<SortKind>(E.OpOrSort) == SortKind::Value;
      if (IsValue ? E.Width == 0 : E.Width != 0)
        return badStructure("wildcard sort width mismatch");
    } else if (E.Kind == binfmt::EdgeKindNode) {
      if (E.OpOrSort > MaxOpcode || E.Flags > 3)
        return badStructure("malformed node edge");
      Opcode Op = static_cast<Opcode>(E.OpOrSort);
      bool HasConst = E.Flags & binfmt::FlagHasConst;
      bool HasRel = E.Flags & binfmt::FlagHasRelation;
      // The compiler attaches a constant exactly to Const edges and a
      // relation exactly to Cmp edges; anything else is not an image
      // our writer produced.
      if (HasConst != (Op == Opcode::Const) || HasRel != (Op == Opcode::Cmp))
        return badStructure("edge attribute/opcode mismatch");
      if (HasConst) {
        if (E.Width == 0)
          return badStructure("constant of width zero");
        uint64_t Words = (uint64_t(E.Width) + 63) / 64;
        if (uint64_t(E.ConstWordBegin) + Words > Hdr->NumConstWords)
          return badStructure("constant word span out of range");
        if (E.Width % 64 != 0 &&
            (V.ConstWords[E.ConstWordBegin + Words - 1] >>
             (E.Width % 64)) != 0)
          return badStructure("constant has nonzero unused bits");
      } else if (E.Width != 0 || E.ConstWordBegin != 0) {
        return badStructure("stray constant fields on edge");
      }
      if (HasRel ? E.Rel > MaxRelation : E.Rel != 0)
        return badStructure("edge relation out of range");
    } else {
      return badStructure("unknown edge kind");
    }
  }
  bool AnyBadAccept = false;
  for (uint32_t I = 0; I < Hdr->NumAccepts; ++I)
    AnyBadAccept |= V.Accepts[I] >= Hdr->NumRules;
  if (AnyBadAccept)
    return badStructure("accept rule out of range");
  uint32_t BodyEdgeCount = V.States[Hdr->BodyRoot].EdgeCount;
  for (uint32_t I = 0; I < Hdr->RootIndexCount; ++I) {
    const binfmt::RootEntry &RE = V.RootEntries[I];
    if (RE.Op > MaxOpcode)
      return badStructure("root index opcode out of range");
    if (I > 0 && V.RootEntries[I - 1].Op >= RE.Op)
      return badStructure("root index not strictly ascending");
    if (uint64_t(RE.PoolBegin) + RE.PoolCount > Hdr->RootPoolCount)
      return badStructure("root index span out of range");
    for (uint32_t J = 0; J < RE.PoolCount; ++J)
      if (V.RootPool[RE.PoolBegin + J] >= BodyEdgeCount)
        return badStructure("root pool edge ordinal out of range");
  }

  if (Code)
    *Code = BinaryAutomatonError::None;
  return V;
}

//===----------------------------------------------------------------------===//
// Matching off the mapped image.
//===----------------------------------------------------------------------===//

bool BinaryAutomatonView::nodeEdgeAccepts(const binfmt::Edge &E,
                                          const Node *N) const {
  if (static_cast<Opcode>(E.OpOrSort) != N->opcode())
    return false;
  if (E.Flags & binfmt::FlagHasConst) {
    const BitValue &V = N->constValue();
    if (V.width() != E.Width)
      return false;
    const unsigned Words = (E.Width + 63) / 64;
    for (unsigned I = 0; I < Words; ++I)
      if (ConstWords[E.ConstWordBegin + I] != V.word(I))
        return false;
  }
  if ((E.Flags & binfmt::FlagHasRelation) &&
      static_cast<Relation>(E.Rel) != N->relation())
    return false;
  return true;
}

void BinaryAutomatonView::collect(uint32_t StateId,
                                  std::vector<NodeRef> &Stack,
                                  std::vector<uint32_t> &RulesOut,
                                  uint64_t *StatesVisited) const {
  const binfmt::State &S = States[StateId];
  if (StatesVisited)
    ++*StatesVisited;
  if (Stack.empty()) {
    for (uint32_t I = 0; I < S.AcceptCount; ++I)
      RulesOut.push_back(Accepts[S.AcceptBegin + I]);
    return;
  }
  NodeRef V = Stack.back();
  for (uint32_t EI = 0; EI < S.EdgeCount; ++EI) {
    const binfmt::Edge &E = Edges[S.EdgeBegin + EI];
    if (E.Kind == binfmt::EdgeKindWildcard) {
      Sort VS = V.sort();
      if (static_cast<SortKind>(E.OpOrSort) != VS.Kind ||
          E.Width != VS.Width)
        continue;
      Stack.pop_back();
      collect(E.To, Stack, RulesOut, StatesVisited);
      Stack.push_back(V);
      continue;
    }
    if (E.ResultIndex != MatcherAutomaton::AnyResultIndex &&
        E.ResultIndex != V.Index)
      continue;
    if (!nodeEdgeAccepts(E, V.Def))
      continue;
    Stack.pop_back();
    size_t Restore = Stack.size();
    const std::vector<NodeRef> &Operands = V.Def->operands();
    for (auto It = Operands.rbegin(); It != Operands.rend(); ++It)
      Stack.push_back(*It);
    collect(E.To, Stack, RulesOut, StatesVisited);
    Stack.resize(Restore);
    Stack.push_back(V);
  }
}

void BinaryAutomatonView::matchBody(const Node *Subject,
                                    std::vector<uint32_t> &RulesOut,
                                    uint64_t *StatesVisited) const {
  if (StatesVisited)
    ++*StatesVisited; // The root state itself.
  uint32_t Op = static_cast<uint32_t>(Subject->opcode());
  const binfmt::RootEntry *Begin = RootEntries;
  const binfmt::RootEntry *End = RootEntries + Hdr->RootIndexCount;
  const binfmt::RootEntry *It = std::lower_bound(
      Begin, End, Op,
      [](const binfmt::RootEntry &E, uint32_t V) { return E.Op < V; });
  if (It == End || It->Op != Op)
    return;
  size_t Before = RulesOut.size();
  const binfmt::State &Root = States[Hdr->BodyRoot];
  std::vector<NodeRef> Stack;
  for (uint32_t I = 0; I < It->PoolCount; ++I) {
    const binfmt::Edge &E =
        Edges[Root.EdgeBegin + RootPool[It->PoolBegin + I]];
    if (!nodeEdgeAccepts(E, Subject))
      continue;
    Stack.clear();
    const std::vector<NodeRef> &Operands = Subject->operands();
    for (auto OpIt = Operands.rbegin(); OpIt != Operands.rend(); ++OpIt)
      Stack.push_back(*OpIt);
    collect(E.To, Stack, RulesOut, StatesVisited);
  }
  // Different subtrees accept in trie order; restore priority order.
  std::sort(RulesOut.begin() + Before, RulesOut.end());
}

void BinaryAutomatonView::matchJump(NodeRef Subject,
                                    std::vector<uint32_t> &RulesOut,
                                    uint64_t *StatesVisited) const {
  size_t Before = RulesOut.size();
  std::vector<NodeRef> Stack{Subject};
  collect(Hdr->JumpRoot, Stack, RulesOut, StatesVisited);
  std::sort(RulesOut.begin() + Before, RulesOut.end());
}

//===----------------------------------------------------------------------===//
// Reconstruction (arena -> MatcherAutomaton).
//===----------------------------------------------------------------------===//

namespace {

/// Rebuilds a BitValue from its pool words. Validation already proved
/// the unused high bits zero, so the per-word truncation is lossless.
BitValue constFromWords(unsigned Width, const uint64_t *Words) {
  BitValue V = BitValue::zero(Width);
  for (unsigned I = 0; I * 64 < Width; ++I) {
    unsigned PatchWidth = std::min(64u, Width - I * 64);
    V = V.insert(I * 64, BitValue(PatchWidth, Words[I]));
  }
  return V;
}

} // namespace

MatcherAutomaton BinaryAutomatonView::toAutomaton() const {
  std::vector<MatcherAutomaton::State> OutStates(Hdr->NumStates);
  for (uint32_t I = 0; I < Hdr->NumStates; ++I) {
    const binfmt::State &S = States[I];
    MatcherAutomaton::State &OS = OutStates[I];
    OS.AcceptRules.assign(Accepts + S.AcceptBegin,
                          Accepts + S.AcceptBegin + S.AcceptCount);
    OS.Edges.reserve(S.EdgeCount);
    for (uint32_t EI = 0; EI < S.EdgeCount; ++EI) {
      const binfmt::Edge &E = Edges[S.EdgeBegin + EI];
      MatcherAutomaton::Edge OE;
      OE.To = E.To;
      if (E.Kind == binfmt::EdgeKindWildcard) {
        OE.EdgeKind = MatcherAutomaton::Edge::Kind::Wildcard;
        OE.WildSort =
            Sort{static_cast<SortKind>(E.OpOrSort), E.Width};
      } else {
        OE.EdgeKind = MatcherAutomaton::Edge::Kind::Node;
        OE.ResultIndex = E.ResultIndex;
        OE.Op = static_cast<Opcode>(E.OpOrSort);
        if (E.Flags & binfmt::FlagHasConst) {
          OE.HasConst = true;
          OE.ConstValue =
              constFromWords(E.Width, ConstWords + E.ConstWordBegin);
        }
        if (E.Flags & binfmt::FlagHasRelation) {
          OE.HasRelation = true;
          OE.Rel = static_cast<Relation>(E.Rel);
        }
      }
      OS.Edges.push_back(std::move(OE));
    }
  }
  std::vector<RuleCost> OutCosts;
  if (Hdr->CostVersion != 0) {
    OutCosts.reserve(Hdr->NumRules);
    for (uint32_t I = 0; I < Hdr->NumRules; ++I)
      OutCosts.push_back(ruleCost(I));
  }
  return MatcherAutomaton::fromParts(std::move(OutStates), Hdr->BodyRoot,
                                     Hdr->JumpRoot, libraryFingerprint(),
                                     Hdr->NumRules, std::move(OutCosts),
                                     Hdr->CostVersion);
}

//===----------------------------------------------------------------------===//
// Mapping.
//===----------------------------------------------------------------------===//

MappedAutomaton::~MappedAutomaton() {
  if (Base)
    ::munmap(Base, Size);
}

std::unique_ptr<MappedAutomaton>
MatcherAutomaton::mapBinary(const std::string &Path, std::string *Error) {
  auto fail = [&](const std::string &Message) {
    if (Error)
      *Error = Message;
    return std::unique_ptr<MappedAutomaton>();
  };
  int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0)
    return fail("io: cannot open " + Path);
  struct stat St;
  if (::fstat(Fd, &St) != 0) {
    ::close(Fd);
    return fail("io: cannot stat " + Path);
  }
  size_t Size = static_cast<size_t>(St.st_size);
  if (Size < sizeof(binfmt::Header)) {
    ::close(Fd);
    return fail(Path + ": " +
                binaryAutomatonErrorName(BinaryAutomatonError::TooSmall) +
                ": image shorter than the fixed header");
  }
  // MAP_POPULATE prefaults the whole image in one batch: validation
  // reads every byte immediately anyway (payload CRC), and one bulk
  // fault-in is several times cheaper than ~Size/4096 demand faults.
  int Flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
  Flags |= MAP_POPULATE;
#endif
  void *Base = ::mmap(nullptr, Size, PROT_READ, Flags, Fd, 0);
  ::close(Fd);
  if (Base == MAP_FAILED)
    return fail("io: cannot mmap " + Path);
  std::string ViewError;
  std::optional<BinaryAutomatonView> View =
      BinaryAutomatonView::fromMemory(Base, Size, &ViewError);
  if (!View) {
    ::munmap(Base, Size);
    return fail(Path + ": " + ViewError);
  }
  std::unique_ptr<MappedAutomaton> Mapped(new MappedAutomaton());
  Mapped->Base = Base;
  Mapped->Size = Size;
  Mapped->View = *View;
  return Mapped;
}
