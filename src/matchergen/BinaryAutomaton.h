//===- BinaryAutomaton.h - mmap-able binary automaton format -----*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "selgen-matcher-automaton-bin-v2" format: one contiguous,
/// pointer-free arena holding the discrimination tree as flat tables
/// addressed by uint32 indices, so loading is mmap + header/CRC
/// validation + one bounds-check pass. The image is immutable and
/// position-independent; it can be shared read-only across threads and
/// processes, and a selector can match directly off the mapped bytes
/// with zero deserialization.
///
/// Layout (all integers host-endian; a foreign-endian image is
/// rejected via the endianness tag, never byte-swapped):
///
///   Header        100 bytes, fixed (binfmt::Header below): magic,
///                 version, endian tag, table counts, root state ids,
///                 per-section offsets, cost-model version, total
///                 size, payload CRC-32, header CRC-32.
///   States        binfmt::State[NumStates]      (8-byte aligned)
///   Edges         binfmt::Edge[NumEdges]        (8-byte aligned)
///   Accepts       uint32[NumAccepts]            (8-byte aligned)
///   ConstWords    uint64[NumConstWords]         (8-byte aligned)
///   RootIndex     binfmt::RootEntry[RootIndexCount] (8-byte aligned)
///   RootPool      uint32[RootPoolCount]         (8-byte aligned)
///   RuleCosts     binfmt::RuleCostRec[NumRules when CostVersion != 0,
///                 else 0]                       (8-byte aligned)
///   Fingerprint   FingerprintLen raw bytes (unaligned tail)
///
/// States own [EdgeBegin, EdgeBegin+EdgeCount) of the edge table and
/// [AcceptBegin, ...) of the accept table; edges keep the exact
/// insertion order of the heap automaton, so a reconstructed automaton
/// round-trips byte-identically through the text format. Constant edge
/// attributes store (width, word span) into the shared uint64 pool,
/// least-significant word first, unused high bits zero — the same
/// invariant BitValue keeps, so equality is a width check plus word
/// compares. The root index mirrors
/// MatcherAutomaton::BodyRootEdgesByOpcode: entries sorted strictly
/// ascending by opcode, each owning a span of body-root edge ordinals
/// in the pool.
///
/// Validation contract: BinaryAutomatonView::fromMemory accepts a
/// buffer if and only if every table index, offset, and enum value it
/// could ever dereference is in range. Truncated, bit-flipped,
/// foreign-endian, or oversized-offset images fail with a typed
/// BinaryAutomatonError; matching on an accepted view performs no
/// further checks and cannot index out of the arena.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_MATCHERGEN_BINARYAUTOMATON_H
#define SELGEN_MATCHERGEN_BINARYAUTOMATON_H

#include "matchergen/MatcherAutomaton.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

namespace selgen {

/// Why a binary image was rejected. Every load failure carries one of
/// these plus a human-readable message; no malformed image is ever UB.
enum class BinaryAutomatonError {
  None,
  Io,            ///< File missing/unreadable/unmappable.
  TooSmall,      ///< Shorter than the fixed header.
  Misaligned,    ///< Buffer base not 8-byte aligned.
  BadMagic,      ///< Not a binary automaton image.
  ForeignEndian, ///< Written on an opposite-endian host.
  BadVersion,    ///< Recognized magic, unsupported version.
  HeaderCorrupt, ///< Header CRC mismatch.
  SizeMismatch,  ///< Header's total size disagrees with the buffer.
  PayloadCorrupt,///< Payload CRC mismatch (bit rot, torn write).
  BadSection,    ///< Section offset/count outside the arena.
  BadStructure,  ///< In-bounds sections with out-of-range contents.
};

const char *binaryAutomatonErrorName(BinaryAutomatonError E);

/// True if the file at \p Path starts with the binary automaton magic
/// (format sniffing for tools that accept either .mat or .matb).
bool isBinaryAutomatonFile(const std::string &Path);

/// On-disk structs. Exposed so tests can corrupt specific fields and
/// assert the typed rejection; everything else should go through
/// BinaryAutomatonView.
namespace binfmt {

constexpr uint32_t Magic = 0x424D4753u; // "SGMB" when written little-endian.
/// v2 widened the header by the rule-cost section. v1 images are
/// refused with BadVersion (the binary format has no upgrade path;
/// regenerate, or convert via the text format).
constexpr uint32_t Version = 2;
constexpr uint32_t EndianTag = 0x01020304u;

struct Header {
  uint32_t Magic = 0;
  uint32_t Version = 0;
  uint32_t EndianTag = 0;
  uint32_t NumRules = 0;
  uint32_t NumStates = 0;
  uint32_t NumEdges = 0;
  uint32_t NumAccepts = 0;
  uint32_t NumConstWords = 0;
  uint32_t BodyRoot = 0;
  uint32_t JumpRoot = 0;
  uint32_t StatesOff = 0;
  uint32_t EdgesOff = 0;
  uint32_t AcceptsOff = 0;
  uint32_t ConstWordsOff = 0;
  uint32_t RootIndexOff = 0;
  uint32_t RootIndexCount = 0;
  uint32_t RootPoolOff = 0;
  uint32_t RootPoolCount = 0;
  uint32_t FingerprintOff = 0;
  uint32_t FingerprintLen = 0;
  uint32_t RuleCostsOff = 0;
  /// cost::ModelVersion the stamped table was derived under; 0 means
  /// the image carries no cost table.
  uint32_t CostVersion = 0;
  uint32_t TotalBytes = 0;
  uint32_t PayloadCrc = 0; ///< CRC-32 of [sizeof(Header), TotalBytes).
  uint32_t HeaderCrc = 0;  ///< CRC-32 of the header bytes before this field.
};
static_assert(sizeof(Header) == 100, "fixed 100-byte header");

struct State {
  uint32_t EdgeBegin = 0;
  uint32_t EdgeCount = 0;
  uint32_t AcceptBegin = 0;
  uint32_t AcceptCount = 0;
};
static_assert(sizeof(State) == 16, "flat state record");

constexpr uint8_t EdgeKindWildcard = 0;
constexpr uint8_t EdgeKindNode = 1;
constexpr uint8_t FlagHasConst = 1;
constexpr uint8_t FlagHasRelation = 2;

struct Edge {
  uint32_t To = 0;
  /// Node edges: tested result index (AnyResultIndex for none).
  uint32_t ResultIndex = 0;
  /// Wildcard edges: the sort's bit width. Const node edges: the
  /// constant's bit width. Zero otherwise.
  uint32_t Width = 0;
  /// Const node edges: first word in the uint64 pool. Zero otherwise.
  uint32_t ConstWordBegin = 0;
  uint8_t Kind = 0;     ///< EdgeKindWildcard / EdgeKindNode.
  uint8_t OpOrSort = 0; ///< Node: Opcode. Wildcard: SortKind.
  uint8_t Flags = 0;    ///< FlagHasConst / FlagHasRelation.
  uint8_t Rel = 0;      ///< Relation when FlagHasRelation.
};
static_assert(sizeof(Edge) == 20, "flat edge record");

struct RootEntry {
  uint32_t Op = 0;        ///< Body-root opcode (ascending, unique).
  uint32_t PoolBegin = 0; ///< First body-root edge ordinal in RootPool.
  uint32_t PoolCount = 0;
};
static_assert(sizeof(RootEntry) == 12, "flat root-index record");

/// One per-rule cost vector (mirrors selgen::RuleCost), indexed by
/// rule priority index.
struct RuleCostRec {
  uint32_t Instructions = 0;
  uint32_t Latency = 0;
  uint32_t Size = 0;
};
static_assert(sizeof(RuleCostRec) == 12, "flat rule-cost record");

} // namespace binfmt

/// A zero-copy matcher over a validated binary image. Borrows the
/// memory — the arena (a mapped file or an in-memory buffer) must
/// outlive the view. Matching is const, allocation-free apart from the
/// caller's output/stack vectors, and safe to run from many threads
/// over one shared image.
class BinaryAutomatonView {
public:
  /// An invalid view (valid() == false). Matching on it is forbidden.
  BinaryAutomatonView() = default;

  /// Validates \p Size bytes at \p Data (which must be 8-byte aligned,
  /// as any mmap or heap buffer is) and returns a view borrowing them.
  /// On rejection returns std::nullopt and sets \p Error / \p Code.
  static std::optional<BinaryAutomatonView>
  fromMemory(const void *Data, size_t Size, std::string *Error = nullptr,
             BinaryAutomatonError *Code = nullptr);

  bool valid() const { return Hdr != nullptr; }

  // -- Matching: same contract as MatcherAutomaton ------------------------
  void matchBody(const Node *Subject, std::vector<uint32_t> &RulesOut,
                 uint64_t *StatesVisited = nullptr) const;
  void matchJump(NodeRef Subject, std::vector<uint32_t> &RulesOut,
                 uint64_t *StatesVisited = nullptr) const;

  // -- Introspection ------------------------------------------------------
  uint32_t numRules() const { return Hdr->NumRules; }
  size_t numStates() const { return Hdr->NumStates; }
  uint64_t numTransitions() const { return Hdr->NumEdges; }
  std::string libraryFingerprint() const {
    return std::string(FingerprintData, Hdr->FingerprintLen);
  }
  /// Cost-derivation version of the stamped table; 0 = no cost table.
  uint32_t costVersion() const { return Hdr->CostVersion; }
  /// Cost vector of rule \p Index. Only valid when costVersion() != 0
  /// and Index < numRules().
  RuleCost ruleCost(uint32_t Index) const {
    const binfmt::RuleCostRec &R = RuleCostsTab[Index];
    return RuleCost{R.Instructions, R.Latency, R.Size};
  }
  const binfmt::Header &header() const { return *Hdr; }

  /// Reconstructs a heap MatcherAutomaton (the binary -> text
  /// conversion path). Round-trips byte-identically through
  /// MatcherAutomaton::serialize().
  MatcherAutomaton toAutomaton() const;

private:
  void collect(uint32_t StateId, std::vector<NodeRef> &Stack,
               std::vector<uint32_t> &RulesOut,
               uint64_t *StatesVisited) const;
  bool nodeEdgeAccepts(const binfmt::Edge &E, const Node *N) const;

  const binfmt::Header *Hdr = nullptr;
  const binfmt::State *States = nullptr;
  const binfmt::Edge *Edges = nullptr;
  const uint32_t *Accepts = nullptr;
  const uint64_t *ConstWords = nullptr;
  const binfmt::RootEntry *RootEntries = nullptr;
  const uint32_t *RootPool = nullptr;
  const binfmt::RuleCostRec *RuleCostsTab = nullptr;
  const char *FingerprintData = nullptr;
};

/// Owns one mmap'ed binary automaton image (PROT_READ) plus the
/// validated view over it. Produced by MatcherAutomaton::mapBinary.
class MappedAutomaton {
public:
  ~MappedAutomaton();
  MappedAutomaton(const MappedAutomaton &) = delete;
  MappedAutomaton &operator=(const MappedAutomaton &) = delete;

  const BinaryAutomatonView &view() const { return View; }
  size_t sizeBytes() const { return Size; }

private:
  friend class MatcherAutomaton;
  MappedAutomaton() = default;

  void *Base = nullptr;
  size_t Size = 0;
  BinaryAutomatonView View;
};

} // namespace selgen

#endif // SELGEN_MATCHERGEN_BINARYAUTOMATON_H
