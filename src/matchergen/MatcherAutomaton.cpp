//===- MatcherAutomaton.cpp - Discrimination-tree rule matcher ----------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "matchergen/MatcherAutomaton.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <sstream>

using namespace selgen;

MatcherAutomaton::MatcherAutomaton() {
  BodyRoot = newState();
  JumpRoot = newState();
}

uint32_t MatcherAutomaton::newState() {
  States.emplace_back();
  return static_cast<uint32_t>(States.size() - 1);
}

namespace {

/// Structural equality of two symbols (the edge minus its target).
bool symbolsEqual(const MatcherAutomaton::Edge &A,
                  const MatcherAutomaton::Edge &B) {
  if (A.EdgeKind != B.EdgeKind)
    return false;
  if (A.EdgeKind == MatcherAutomaton::Edge::Kind::Wildcard)
    return A.WildSort == B.WildSort;
  if (A.ResultIndex != B.ResultIndex || A.Op != B.Op ||
      A.HasConst != B.HasConst || A.HasRelation != B.HasRelation)
    return false;
  if (A.HasConst && (A.ConstValue.width() != B.ConstValue.width() ||
                     A.ConstValue != B.ConstValue))
    return false;
  if (A.HasRelation && A.Rel != B.Rel)
    return false;
  return true;
}

/// Fills the structural tests of a node symbol from a pattern node.
void fillNodeSymbol(MatcherAutomaton::Edge &E, const Node *N) {
  E.EdgeKind = MatcherAutomaton::Edge::Kind::Node;
  E.Op = N->opcode();
  if (N->opcode() == Opcode::Const) {
    E.HasConst = true;
    E.ConstValue = N->constValue();
  } else if (N->opcode() == Opcode::Cmp) {
    E.HasRelation = true;
    E.Rel = N->relation();
  }
}

/// Pre-order flattening of a pattern value: wildcard for arguments
/// (no descent), node symbol plus operand values otherwise.
void flattenValue(NodeRef V, std::vector<MatcherAutomaton::Edge> &Out) {
  const Node *N = V.Def;
  MatcherAutomaton::Edge E;
  if (N->opcode() == Opcode::Arg) {
    E.EdgeKind = MatcherAutomaton::Edge::Kind::Wildcard;
    E.WildSort = N->resultSort(0);
    Out.push_back(E);
    return;
  }
  E.ResultIndex = V.Index;
  fillNodeSymbol(E, N);
  Out.push_back(E);
  for (const NodeRef &Operand : N->operands())
    flattenValue(Operand, Out);
}

/// Does a node symbol's structural test accept subject node \p N?
/// Mirrors Matcher's matchNode: opcode, constant value (width
/// included), comparison relation.
bool nodeSymbolAccepts(const MatcherAutomaton::Edge &E, const Node *N) {
  if (E.Op != N->opcode())
    return false;
  if (E.HasConst && (E.ConstValue.width() != N->constValue().width() ||
                     E.ConstValue != N->constValue()))
    return false;
  if (E.HasRelation && E.Rel != N->relation())
    return false;
  return true;
}

} // namespace

uint32_t MatcherAutomaton::extend(uint32_t From, const Edge &Symbol) {
  for (const Edge &E : States[From].Edges)
    if (symbolsEqual(E, Symbol))
      return E.To;
  Edge New = Symbol;
  New.To = newState();
  States[From].Edges.push_back(New);
  return New.To;
}

void MatcherAutomaton::insertPattern(const AutomatonPattern &P) {
  std::vector<Edge> Symbols;
  uint32_t Root;
  if (P.IsJump) {
    // Jump rules match their Cond operand against the branch
    // condition value; the Cond node itself is not part of the string.
    flattenValue(P.Root->operand(0), Symbols);
    Root = JumpRoot;
  } else {
    // The body root aligns with a subject *node*; its result index is
    // not tested (Matcher's matchPattern starts at matchNode).
    Edge E;
    E.ResultIndex = AnyResultIndex;
    fillNodeSymbol(E, P.Root);
    Symbols.push_back(E);
    for (const NodeRef &Operand : P.Root->operands())
      flattenValue(Operand, Symbols);
    Root = BodyRoot;
  }
  uint32_t StateId = Root;
  for (const Edge &Symbol : Symbols)
    StateId = extend(StateId, Symbol);
  States[StateId].AcceptRules.push_back(P.RuleIndex);
}

void MatcherAutomaton::rebuildRootIndex() {
  BodyRootEdgesByOpcode.clear();
  const State &Root = States[BodyRoot];
  for (uint32_t I = 0; I < Root.Edges.size(); ++I)
    BodyRootEdgesByOpcode[Root.Edges[I].Op].push_back(I);
}

MatcherAutomaton
MatcherAutomaton::compile(const std::vector<AutomatonPattern> &Patterns,
                          const std::string &LibraryFingerprint,
                          uint32_t NumRules, std::vector<RuleCost> RuleCosts,
                          uint32_t CostVersion) {
  MatcherAutomaton A;
  A.LibraryFingerprint = LibraryFingerprint;
  A.NumRules = NumRules;
  A.RuleCosts = std::move(RuleCosts);
  A.CostVersion = CostVersion;
  // Insert in ascending priority order so every accept list and the
  // whole trie layout are deterministic in the library order.
  std::vector<const AutomatonPattern *> Sorted;
  for (const AutomatonPattern &P : Patterns)
    Sorted.push_back(&P);
  std::sort(Sorted.begin(), Sorted.end(),
            [](const AutomatonPattern *L, const AutomatonPattern *R) {
              return L->RuleIndex < R->RuleIndex;
            });
  for (const AutomatonPattern *P : Sorted)
    A.insertPattern(*P);
  A.rebuildRootIndex();
  return A;
}

void MatcherAutomaton::setRuleCosts(std::vector<RuleCost> NewCosts,
                                    uint32_t NewCostVersion) {
  assert((NewCostVersion == 0 ? NewCosts.empty()
                              : NewCosts.size() == NumRules) &&
         "cost table must cover every rule (or be absent)");
  RuleCosts = std::move(NewCosts);
  CostVersion = NewCostVersion;
}

uint64_t MatcherAutomaton::numTransitions() const {
  uint64_t N = 0;
  for (const State &S : States)
    N += S.Edges.size();
  return N;
}

void MatcherAutomaton::collect(uint32_t StateId, std::vector<NodeRef> &Stack,
                               std::vector<uint32_t> &RulesOut,
                               uint64_t *StatesVisited) const {
  const State &S = States[StateId];
  if (StatesVisited)
    ++*StatesVisited;
  if (Stack.empty()) {
    // Strings are self-delimiting: accepting states are leaves, and a
    // non-leaf state always has pending subject positions.
    RulesOut.insert(RulesOut.end(), S.AcceptRules.begin(),
                    S.AcceptRules.end());
    return;
  }
  NodeRef V = Stack.back();
  for (const Edge &E : S.Edges) {
    if (E.EdgeKind == Edge::Kind::Wildcard) {
      if (E.WildSort != V.sort())
        continue;
      Stack.pop_back();
      collect(E.To, Stack, RulesOut, StatesVisited);
      Stack.push_back(V);
      continue;
    }
    if (E.ResultIndex != AnyResultIndex && E.ResultIndex != V.Index)
      continue;
    if (!nodeSymbolAccepts(E, V.Def))
      continue;
    Stack.pop_back();
    size_t Restore = Stack.size();
    const std::vector<NodeRef> &Operands = V.Def->operands();
    for (auto It = Operands.rbegin(); It != Operands.rend(); ++It)
      Stack.push_back(*It);
    collect(E.To, Stack, RulesOut, StatesVisited);
    Stack.resize(Restore);
    Stack.push_back(V);
  }
}

void MatcherAutomaton::matchBody(const Node *Subject,
                                 std::vector<uint32_t> &RulesOut,
                                 uint64_t *StatesVisited) const {
  if (StatesVisited)
    ++*StatesVisited; // The root state itself.
  auto It = BodyRootEdgesByOpcode.find(Subject->opcode());
  if (It == BodyRootEdgesByOpcode.end())
    return;
  size_t Before = RulesOut.size();
  const State &Root = States[BodyRoot];
  std::vector<NodeRef> Stack;
  for (uint32_t EdgeIndex : It->second) {
    const Edge &E = Root.Edges[EdgeIndex];
    if (!nodeSymbolAccepts(E, Subject))
      continue;
    Stack.clear();
    const std::vector<NodeRef> &Operands = Subject->operands();
    for (auto OpIt = Operands.rbegin(); OpIt != Operands.rend(); ++OpIt)
      Stack.push_back(*OpIt);
    collect(E.To, Stack, RulesOut, StatesVisited);
  }
  // Different subtrees accept in trie order; restore priority order.
  std::sort(RulesOut.begin() + Before, RulesOut.end());
}

void MatcherAutomaton::matchJump(NodeRef Subject,
                                 std::vector<uint32_t> &RulesOut,
                                 uint64_t *StatesVisited) const {
  size_t Before = RulesOut.size();
  std::vector<NodeRef> Stack{Subject};
  collect(JumpRoot, Stack, RulesOut, StatesVisited);
  std::sort(RulesOut.begin() + Before, RulesOut.end());
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

std::string sortToText(const Sort &S) { return S.str(); }

std::optional<Sort> sortFromText(const std::string &Text) {
  if (Text == "mem")
    return Sort::memory();
  if (Text == "bool")
    return Sort::boolean();
  if (startsWith(Text, "bv")) {
    const std::string Digits = Text.substr(2);
    if (Digits.empty() ||
        Digits.find_first_not_of("0123456789") != std::string::npos)
      return std::nullopt;
    unsigned Width = std::stoul(Digits);
    if (Width == 0)
      return std::nullopt;
    return Sort::value(Width);
  }
  return std::nullopt;
}

std::optional<Relation> tryRelationFromName(const std::string &Name) {
  for (Relation Rel : allRelations())
    if (Name == relationName(Rel))
      return Rel;
  return std::nullopt;
}

bool isHexString(const std::string &Text) {
  return !Text.empty() &&
         Text.find_first_not_of("0123456789abcdefABCDEF") ==
             std::string::npos;
}

} // namespace

std::string MatcherAutomaton::serialize() const {
  std::ostringstream OS;
  OS << formatTag() << "\n";
  OS << "library " << LibraryFingerprint << "\n";
  OS << "rules " << NumRules << "\n";
  OS << "states " << States.size() << "\n";
  OS << "body " << BodyRoot << "\n";
  OS << "jump " << JumpRoot << "\n";
  OS << "costver " << CostVersion << "\n";
  for (size_t I = 0; I < RuleCosts.size(); ++I)
    OS << "cost " << I << " " << RuleCosts[I].Instructions << " "
       << RuleCosts[I].Latency << " " << RuleCosts[I].Size << "\n";
  for (size_t I = 0; I < States.size(); ++I) {
    OS << "state " << I;
    if (!States[I].AcceptRules.empty()) {
      OS << " accept";
      for (uint32_t Rule : States[I].AcceptRules)
        OS << " " << Rule;
    }
    OS << "\n";
    for (const Edge &E : States[I].Edges) {
      OS << "edge " << I << " " << E.To;
      if (E.EdgeKind == Edge::Kind::Wildcard) {
        OS << " wild " << sortToText(E.WildSort);
      } else {
        OS << " node ";
        if (E.ResultIndex == AnyResultIndex)
          OS << "any";
        else
          OS << E.ResultIndex;
        OS << " " << opcodeName(E.Op);
        if (E.HasConst)
          OS << " const " << E.ConstValue.width() << " "
             << E.ConstValue.toHexString().substr(2);
        if (E.HasRelation)
          OS << " rel " << relationName(E.Rel);
      }
      OS << "\n";
    }
  }
  OS << "end\n";
  return OS.str();
}

std::optional<MatcherAutomaton>
MatcherAutomaton::deserialize(const std::string &Text, std::string *Error) {
  auto fail = [&](const std::string &Message) {
    if (Error)
      *Error = Message;
    return std::nullopt;
  };

  std::vector<std::string> Lines;
  for (const std::string &Raw : splitString(Text, '\n')) {
    std::string Line = trimString(Raw);
    if (!Line.empty())
      Lines.push_back(Line);
  }
  if (Lines.empty() ||
      (Lines[0] != formatTag() && Lines[0] != legacyFormatTag()))
    return fail("not a '" + std::string(formatTag()) +
                "' file (version mismatch or corrupt)");
  // The pre-cost v1 format differs only in lacking the costver header
  // and cost lines; parse it with costVersion() 0 so `convert` can
  // upgrade old images (the selectors refuse them against cost-stamped
  // libraries).
  const bool Legacy = Lines[0] == legacyFormatTag();

  size_t At = 1;
  auto headerField = [&](const std::string &Key,
                         std::string &Value) -> bool {
    if (At >= Lines.size())
      return false;
    std::vector<std::string> Parts = splitString(Lines[At], ' ');
    if (Parts.size() != 2 || Parts[0] != Key)
      return false;
    Value = Parts[1];
    ++At;
    return true;
  };

  MatcherAutomaton A;
  A.States.clear();
  std::string Fingerprint, RulesText, StatesText, BodyText, JumpText;
  std::string CostVersionText = "0";
  if (!headerField("library", Fingerprint) ||
      !headerField("rules", RulesText) ||
      !headerField("states", StatesText) || !headerField("body", BodyText) ||
      !headerField("jump", JumpText) ||
      (!Legacy && !headerField("costver", CostVersionText)))
    return fail("malformed automaton header");
  A.LibraryFingerprint = Fingerprint;
  try {
    A.NumRules = std::stoul(RulesText);
    A.States.resize(std::stoul(StatesText));
    A.BodyRoot = std::stoul(BodyText);
    A.JumpRoot = std::stoul(JumpText);
    A.CostVersion = std::stoul(CostVersionText);
  } catch (...) {
    return fail("malformed automaton header numbers");
  }
  if (A.States.empty() || A.BodyRoot >= A.States.size() ||
      A.JumpRoot >= A.States.size())
    return fail("automaton root states out of range");
  size_t CostsSeen = 0;
  std::vector<bool> CostSeen;
  if (A.CostVersion != 0) {
    A.RuleCosts.resize(A.NumRules);
    CostSeen.resize(A.NumRules, false);
  }

  bool SawEnd = false;
  for (; At < Lines.size(); ++At) {
    std::vector<std::string> Parts = splitString(Lines[At], ' ');
    if (Parts.empty())
      continue;
    if (Parts[0] == "end") {
      SawEnd = true;
      break;
    }
    if (Parts[0] == "cost") {
      if (A.CostVersion == 0)
        return fail("cost line in a cost-free automaton: " + Lines[At]);
      if (Parts.size() != 5)
        return fail("malformed cost line: " + Lines[At]);
      uint32_t Id;
      RuleCost Cost;
      try {
        Id = std::stoul(Parts[1]);
        Cost.Instructions = std::stoul(Parts[2]);
        Cost.Latency = std::stoul(Parts[3]);
        Cost.Size = std::stoul(Parts[4]);
      } catch (...) {
        return fail("malformed cost numbers: " + Lines[At]);
      }
      if (Id >= A.NumRules)
        return fail("cost rule index out of range: " + Lines[At]);
      if (CostSeen[Id])
        return fail("duplicate cost line: " + Lines[At]);
      CostSeen[Id] = true;
      A.RuleCosts[Id] = Cost;
      ++CostsSeen;
      continue;
    }
    if (Parts[0] == "state") {
      if (Parts.size() < 2)
        return fail("malformed state line: " + Lines[At]);
      uint32_t Id;
      try {
        Id = std::stoul(Parts[1]);
      } catch (...) {
        return fail("malformed state id: " + Lines[At]);
      }
      if (Id >= A.States.size())
        return fail("state id out of range: " + Lines[At]);
      if (Parts.size() > 2) {
        if (Parts[2] != "accept")
          return fail("malformed state line: " + Lines[At]);
        for (size_t I = 3; I < Parts.size(); ++I) {
          uint32_t Rule;
          try {
            Rule = std::stoul(Parts[I]);
          } catch (...) {
            return fail("malformed accept rule: " + Lines[At]);
          }
          if (Rule >= A.NumRules)
            return fail("accept rule out of range: " + Lines[At]);
          A.States[Id].AcceptRules.push_back(Rule);
        }
      }
      continue;
    }
    if (Parts[0] == "edge") {
      if (Parts.size() < 4)
        return fail("malformed edge line: " + Lines[At]);
      uint32_t From, To;
      try {
        From = std::stoul(Parts[1]);
        To = std::stoul(Parts[2]);
      } catch (...) {
        return fail("malformed edge endpoints: " + Lines[At]);
      }
      if (From >= A.States.size() || To >= A.States.size())
        return fail("edge endpoint out of range: " + Lines[At]);
      Edge E;
      E.To = To;
      if (Parts[3] == "wild") {
        if (Parts.size() != 5)
          return fail("malformed wildcard edge: " + Lines[At]);
        std::optional<Sort> S = sortFromText(Parts[4]);
        if (!S)
          return fail("unknown sort in edge: " + Lines[At]);
        E.EdgeKind = Edge::Kind::Wildcard;
        E.WildSort = *S;
      } else if (Parts[3] == "node") {
        if (Parts.size() < 6)
          return fail("malformed node edge: " + Lines[At]);
        E.EdgeKind = Edge::Kind::Node;
        if (Parts[4] == "any") {
          E.ResultIndex = AnyResultIndex;
        } else {
          try {
            E.ResultIndex = std::stoul(Parts[4]);
          } catch (...) {
            return fail("malformed result index: " + Lines[At]);
          }
        }
        std::optional<Opcode> Op = tryOpcodeFromName(Parts[5]);
        if (!Op)
          return fail("unknown opcode in edge: " + Lines[At]);
        E.Op = *Op;
        size_t I = 6;
        while (I < Parts.size()) {
          if (Parts[I] == "const" && I + 2 < Parts.size()) {
            unsigned Width;
            try {
              Width = std::stoul(Parts[I + 1]);
            } catch (...) {
              return fail("malformed constant width: " + Lines[At]);
            }
            if (Width == 0 || !isHexString(Parts[I + 2]))
              return fail("malformed constant: " + Lines[At]);
            E.HasConst = true;
            E.ConstValue = BitValue::fromString(Width, Parts[I + 2], 16);
            I += 3;
          } else if (Parts[I] == "rel" && I + 1 < Parts.size()) {
            std::optional<Relation> Rel = tryRelationFromName(Parts[I + 1]);
            if (!Rel)
              return fail("unknown relation in edge: " + Lines[At]);
            E.HasRelation = true;
            E.Rel = *Rel;
            I += 2;
          } else {
            return fail("malformed edge attribute: " + Lines[At]);
          }
        }
        if (E.Op == Opcode::Const && !E.HasConst)
          return fail("Const edge without a value: " + Lines[At]);
      } else {
        return fail("unknown edge kind: " + Lines[At]);
      }
      A.States[From].Edges.push_back(E);
      continue;
    }
    return fail("unknown directive: " + Lines[At]);
  }
  if (!SawEnd)
    return fail("truncated automaton file (missing 'end')");
  if (A.CostVersion != 0 && CostsSeen != A.NumRules)
    return fail("rule cost table incomplete");
  A.rebuildRootIndex();
  return A;
}

bool MatcherAutomaton::writeFile(const std::string &Path) const {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  OS << serialize();
  return static_cast<bool>(OS);
}

std::optional<MatcherAutomaton>
MatcherAutomaton::loadFile(const std::string &Path, std::string *Error) {
  std::ifstream IS(Path);
  if (!IS) {
    if (Error)
      *Error = "cannot open " + Path;
    return std::nullopt;
  }
  std::ostringstream Buffer;
  Buffer << IS.rdbuf();
  return deserialize(Buffer.str(), Error);
}
