//===- MatcherAutomaton.h - Discrimination-tree rule matcher -----*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The matcher-automaton compiler: an offline pass that compiles a
/// priority-ordered rule library into a discrimination tree so that a
/// single traversal of the subject DAG finds every candidate rule,
/// instead of attempting each rule one by one as the paper's prototype
/// selector does.
///
/// Each pattern is flattened into a string of symbols by a pre-order
/// walk from its root: an operation node becomes a node symbol (result
/// index, opcode, and internal attribute — the constant's value or the
/// comparison relation), a pattern argument becomes a wildcard symbol
/// carrying only its sort (the subject subtree under a wildcard is
/// skipped, not walked). The strings of all rules are inserted into a
/// trie, so rules with a common pattern prefix share the states that
/// test it. Because every symbol consumes exactly one pending subject
/// position and announces how many new ones it opens, the strings are
/// self-delimiting: a string can end only where the pending count
/// reaches zero, no string is a proper prefix of another, and an
/// accepting state is therefore always a leaf reached with an empty
/// subject stack.
///
/// The tree tests exactly the per-position structural conditions of the
/// full matcher (isel/Matcher) and nothing else. Non-linear conditions
/// — repeated arguments binding the same value, DAG re-convergence of
/// shared pattern nodes, Imm-role arguments requiring constants, shift
/// preconditions — are deliberately left out, so the accepting rules
/// are a *superset* of the truly matching rules. The selection engine
/// re-runs the full matcher on each candidate in priority order, which
/// is what keeps the automaton selector byte-identical to the linear
/// one while doing sublinear candidate discovery.
///
/// The automaton serializes to a versioned text format
/// ("selgen-matcher-automaton-v2", which added the per-rule cost
/// table; the pre-cost v1 still parses for upgrade) carrying the rule
/// library's fingerprint; loading rejects files whose version or
/// fingerprint does not match, so a stale automaton can never silently
/// desynchronize from the library it indexes.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_MATCHERGEN_MATCHERAUTOMATON_H
#define SELGEN_MATCHERGEN_MATCHERAUTOMATON_H

#include "cost/CostModel.h"
#include "ir/Graph.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace selgen {

class MappedAutomaton;

/// One rule pattern as the automaton compiler consumes it. The
/// caller (isel's rule preparation) resolves roots and priority
/// indices; matchergen itself depends only on the IR.
struct AutomatonPattern {
  const Graph *Pattern = nullptr;
  /// The pattern's root operation node (never null).
  const Node *Root = nullptr;
  /// Compare-and-jump rule: the flattening starts from the Cond
  /// node's operand value and the string goes into the jump tree.
  bool IsJump = false;
  /// Library priority index (most-specific-first order).
  uint32_t RuleIndex = 0;
};

/// A discrimination tree over a rule library's patterns.
class MatcherAutomaton {
public:
  /// Result-index wildcard used by the first symbol of a body pattern:
  /// the root aligns with a subject *node*, not a specific result.
  static constexpr uint32_t AnyResultIndex = 0xffffffffu;

  /// A transition. Wildcard edges consume one subject value without
  /// descending; node edges test one subject position structurally and
  /// open its operand positions.
  struct Edge {
    enum class Kind { Wildcard, Node };
    Kind EdgeKind = Kind::Wildcard;
    uint32_t To = 0;
    // Wildcard symbols: the pattern argument's sort.
    Sort WildSort = Sort::boolean();
    // Node symbols: the structural tests of Matcher's matchValue.
    uint32_t ResultIndex = AnyResultIndex;
    Opcode Op = Opcode::Arg;
    bool HasConst = false;
    BitValue ConstValue;
    bool HasRelation = false;
    Relation Rel = Relation::Eq;
  };

  struct State {
    std::vector<Edge> Edges;
    /// Rule indices accepted here, ascending (priority order).
    std::vector<uint32_t> AcceptRules;
  };

  /// Compiles \p Patterns (priority-indexed rules of one library) into
  /// a discrimination tree. \p LibraryFingerprint and \p NumRules
  /// identify the library for serialization-time staleness checks.
  /// \p RuleCosts (indexed by rule priority index, one entry per
  /// library rule) and \p CostVersion stamp the library's cost table
  /// into the automaton; pass the defaults only for cost-free test
  /// automata (CostVersion 0 marks the table as absent).
  static MatcherAutomaton compile(const std::vector<AutomatonPattern> &Patterns,
                                  const std::string &LibraryFingerprint,
                                  uint32_t NumRules,
                                  std::vector<RuleCost> RuleCosts = {},
                                  uint32_t CostVersion = 0);

  // -- Matching ----------------------------------------------------------
  /// Appends to \p RulesOut the indices of every rule whose pattern
  /// could structurally match at subject node \p Subject, sorted
  /// ascending (library priority order). \p StatesVisited, if non-null,
  /// is incremented per automaton state visited.
  void matchBody(const Node *Subject, std::vector<uint32_t> &RulesOut,
                 uint64_t *StatesVisited = nullptr) const;

  /// Like matchBody for compare-and-jump rules, matching the jump tree
  /// against the branch condition value \p Subject.
  void matchJump(NodeRef Subject, std::vector<uint32_t> &RulesOut,
                 uint64_t *StatesVisited = nullptr) const;

  // -- Introspection -----------------------------------------------------
  size_t numStates() const { return States.size(); }
  uint64_t numTransitions() const;
  uint32_t numRules() const { return NumRules; }
  const std::string &libraryFingerprint() const { return LibraryFingerprint; }

  /// Cost-derivation scheme the stamped table was computed under; 0
  /// means "no cost table" (a pre-cost image or a test automaton).
  uint32_t costVersion() const { return CostVersion; }
  /// Per-rule cost table (indexed by rule priority index). Empty when
  /// costVersion() is 0.
  const std::vector<RuleCost> &ruleCosts() const { return RuleCosts; }

  /// Replaces the stamped cost table — the pre-cost-v1 upgrade path of
  /// `selgen-matchergen convert`, which re-derives the costs from the
  /// rule library the automaton was compiled for. \p NewCosts must
  /// have numRules() entries (or be empty with \p NewCostVersion 0).
  void setRuleCosts(std::vector<RuleCost> NewCosts, uint32_t NewCostVersion);

  const std::vector<State> &states() const { return States; }

  // -- Serialization -----------------------------------------------------
  /// The on-disk format tag; bumped whenever the format changes.
  /// v2 added the per-rule cost table (`costver` + `cost` lines).
  static const char *formatTag() { return "selgen-matcher-automaton-v2"; }

  /// The pre-cost v1 tag. v1 files still parse (costVersion() 0, no
  /// cost table) so `selgen-matchergen convert` can upgrade them; the
  /// selectors' staleness check refuses them against cost-stamped
  /// libraries.
  static const char *legacyFormatTag() {
    return "selgen-matcher-automaton-v1";
  }

  /// Renders the automaton in the versioned text format.
  std::string serialize() const;

  /// Parses a serialized automaton. Returns std::nullopt (and sets
  /// \p Error) if the text is malformed or carries a different format
  /// version. Library staleness is the *caller's* check: compare
  /// libraryFingerprint()/numRules() against the prepared library.
  static std::optional<MatcherAutomaton>
  deserialize(const std::string &Text, std::string *Error = nullptr);

  /// File convenience wrappers around serialize()/deserialize().
  bool writeFile(const std::string &Path) const;
  static std::optional<MatcherAutomaton>
  loadFile(const std::string &Path, std::string *Error = nullptr);

  // -- Binary serialization (matchergen/BinaryAutomaton.h) ---------------
  /// The mmap-able binary format's name. The on-disk discriminator is
  /// the header magic/version; this tag is for diagnostics. bin-v2
  /// added the rule-cost section.
  static const char *binaryFormatTag() {
    return "selgen-matcher-automaton-bin-v2";
  }

  /// Renders the automaton as one contiguous, pointer-free binary
  /// arena (layout in BinaryAutomaton.h).
  std::string serializeBinary() const;

  /// Writes serializeBinary() output atomically.
  bool writeBinaryFile(const std::string &Path) const;

  /// mmaps and validates a binary automaton image. Null — with
  /// \p Error set — on I/O, corruption, or version failure. Library
  /// staleness is the caller's check, as with deserialize().
  static std::unique_ptr<MappedAutomaton>
  mapBinary(const std::string &Path, std::string *Error = nullptr);

  /// Rebuilds an automaton from explicit, already-validated tables
  /// (the binary loader's conversion path).
  static MatcherAutomaton fromParts(std::vector<State> States,
                                    uint32_t BodyRoot, uint32_t JumpRoot,
                                    std::string LibraryFingerprint,
                                    uint32_t NumRules,
                                    std::vector<RuleCost> RuleCosts = {},
                                    uint32_t CostVersion = 0);

private:
  MatcherAutomaton();

  uint32_t newState();
  /// Follows (or creates) the edge for \p Symbol out of \p From.
  uint32_t extend(uint32_t From, const Edge &Symbol);
  void insertPattern(const AutomatonPattern &P);
  void rebuildRootIndex();

  void collect(uint32_t StateId, std::vector<NodeRef> &Stack,
               std::vector<uint32_t> &RulesOut,
               uint64_t *StatesVisited) const;

  std::vector<State> States;
  uint32_t BodyRoot = 0;
  uint32_t JumpRoot = 0;
  /// Body-root edge indices by root opcode — the "indexed by root
  /// opcode" entry point that makes candidate discovery start at the
  /// right subtree in O(log #opcodes).
  std::map<Opcode, std::vector<uint32_t>> BodyRootEdgesByOpcode;
  std::string LibraryFingerprint;
  uint32_t NumRules = 0;
  std::vector<RuleCost> RuleCosts;
  uint32_t CostVersion = 0;
};

} // namespace selgen

#endif // SELGEN_MATCHERGEN_MATCHERAUTOMATON_H
