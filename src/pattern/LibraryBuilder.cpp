//===- LibraryBuilder.cpp - Algorithm 1: goals -> rule library ----------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "pattern/LibraryBuilder.h"

#include "cost/CostModel.h"
#include "support/Statistics.h"

#include <map>

using namespace selgen;

PatternDatabase selgen::synthesizeRuleLibrary(SmtContext &Smt,
                                              const GoalLibrary &Library,
                                              const SynthesisOptions &Options,
                                              LibraryBuildReport *Report) {
  PatternDatabase Database;
  std::map<std::string, GroupReport> Groups;

  for (const GoalInstruction &Goal : Library.goals()) {
    SynthesisOptions GoalOptions = Options;
    GoalOptions.MaxPatternSize = Goal.MaxPatternSize;
    Synthesizer Synth(Smt, GoalOptions);
    GoalSynthesisResult Result = Synth.synthesize(*Goal.Spec);

    // Stamp the recipe's cost vector into the result so it rides the
    // synthesis cache and the synthesis reports alongside the patterns.
    RuleCost Cost = deriveRuleCost(Goal);
    Result.HasCost = true;
    Result.CostInstructions = Cost.Instructions;
    Result.CostLatency = Cost.Latency;
    Result.CostSize = Cost.Size;
    Statistics &Stats = Statistics::get();
    Stats.add("synth.cost_derivations", 1);
    Stats.add("synth.cost_instructions", Cost.Instructions);
    Stats.add("synth.cost_latency", Cost.Latency);
    Stats.add("synth.cost_size", Cost.Size);

    GroupReport &Group = Groups[Goal.Group];
    Group.Group = Goal.Group;
    ++Group.Goals;
    Group.Seconds += Result.Seconds;
    if (!Result.Complete)
      ++Group.IncompleteGoals;
    for (Graph &Pattern : Result.Patterns) {
      Group.MaxPatternSize =
          std::max(Group.MaxPatternSize, Pattern.numOperations());
      if (Database.add(Goal.Name, std::move(Pattern)))
        ++Group.Patterns;
    }
  }

  if (Report) {
    for (auto &[Name, Group] : Groups) {
      (void)Name;
      Report->Groups.push_back(Group);
      Report->TotalSeconds += Group.Seconds;
      Report->TotalPatterns += Group.Patterns;
      Report->TotalGoals += Group.Goals;
    }
  }
  return Database;
}
