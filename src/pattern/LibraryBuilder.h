//===- LibraryBuilder.h - Algorithm 1: goals -> rule library -----*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Synthesizer procedure of paper Algorithm 1: run iterative CEGIS
/// for every goal instruction in a GoalLibrary, pair each synthesized
/// pattern with its goal, and collect the rules in a PatternDatabase.
/// Reports per-group statistics in the shape of the paper's Table 2.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_PATTERN_LIBRARYBUILDER_H
#define SELGEN_PATTERN_LIBRARYBUILDER_H

#include "pattern/PatternDatabase.h"
#include "synth/Synthesizer.h"
#include "x86/Goals.h"

#include <string>
#include <vector>

namespace selgen {

/// One row of the Table 2 style report.
struct GroupReport {
  std::string Group;
  unsigned Goals = 0;
  size_t Patterns = 0;
  unsigned MaxPatternSize = 0;
  double Seconds = 0;
  unsigned IncompleteGoals = 0; ///< Budget/timeout casualties.
};

/// Aggregate report of one library build.
struct LibraryBuildReport {
  std::vector<GroupReport> Groups;
  double TotalSeconds = 0;
  size_t TotalPatterns = 0;
  unsigned TotalGoals = 0;
  /// Goals served from / missed in the persistent synthesis cache
  /// (always zero for cache-less builds).
  unsigned CacheHits = 0;
  unsigned CacheMisses = 0;
  /// Wall-clock time of the whole build (parallel builds only;
  /// TotalSeconds sums per-goal solver time instead).
  double WallSeconds = 0;
};

/// Runs Algorithm 1 over all goals of \p Library. Per-goal iterative
/// deepening caps come from each GoalInstruction; everything else from
/// \p Options. If \p Report is non-null, per-group statistics are
/// accumulated there.
PatternDatabase synthesizeRuleLibrary(SmtContext &Smt,
                                      const GoalLibrary &Library,
                                      const SynthesisOptions &Options,
                                      LibraryBuildReport *Report = nullptr);

} // namespace selgen

#endif // SELGEN_PATTERN_LIBRARYBUILDER_H
