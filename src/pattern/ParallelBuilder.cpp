//===- ParallelBuilder.cpp - Work-stealing library synthesis ------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "pattern/ParallelBuilder.h"

#include "cost/CostModel.h"
#include "pattern/RunJournal.h"
#include "smt/SolverPool.h"
#include "support/Statistics.h"
#include "support/Timer.h"
#include "synth/SpecFingerprint.h"
#include "synth/TestCorpus.h"
#include "synth/WorkerProtocol.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <numeric>
#include <thread>

using namespace selgen;

namespace {

/// One schedulable unit.
struct Task {
  enum Kind {
    StartGoal, ///< Cache probe + memory pre-analysis + first size.
    Chunk,     ///< One rank sub-range of one size's enumeration.
  };
  Kind TaskKind = StartGoal;
  size_t GoalIndex = 0;
  unsigned Size = 0;        ///< Chunk only.
  uint64_t BeginRank = 0;   ///< Chunk only.
  uint64_t EndRank = 0;     ///< Chunk only.
  unsigned OwnerWorker = 0; ///< Worker whose deque first held the task.
};

/// A mutex-protected work-stealing deque. The owner pushes and pops at
/// the back (LIFO, keeps a worker on the goal it just split); thieves
/// take from the front, i.e. the far end of a split rank range. Chunk
/// granularity is coarse (whole CEGIS runs), so a mutex per deque is
/// nowhere near contention.
class WorkDeque {
public:
  void push(Task T) {
    std::lock_guard<std::mutex> Guard(M);
    Items.push_back(T);
  }
  bool popBack(Task &T) {
    std::lock_guard<std::mutex> Guard(M);
    if (Items.empty())
      return false;
    T = Items.back();
    Items.pop_back();
    return true;
  }
  bool stealFront(Task &T) {
    std::lock_guard<std::mutex> Guard(M);
    if (Items.empty())
      return false;
    T = Items.front();
    Items.pop_front();
    return true;
  }

private:
  std::mutex M;
  std::deque<Task> Items;
};

/// Shared per-goal synthesis state.
struct GoalState {
  const GoalInstruction *Goal = nullptr;
  SynthesisOptions Options; ///< Effective (per-goal) options.

  // Written by the StartGoal task, read-only afterwards.
  SynthesisPlan Plan;
  std::string CacheKey;
  bool CacheHit = false;
  bool ResumedFromJournal = false;
  /// The goal's shared counterexample corpus (from the scheduler's
  /// CorpusStore, keyed by goal fingerprint): internally locked, so
  /// all chunks of the goal — stolen or not — screen against and feed
  /// one test pool with no extra synchronization here.
  std::shared_ptr<TestCorpus> Corpus;

  // Guarded by M while chunks of one size run concurrently.
  std::mutex M;
  std::set<std::string> Fingerprints;
  GoalSynthesisResult Result;
  unsigned PendingChunks = 0;
  /// Completed chunk outcomes of the current size, keyed by BeginRank;
  /// merged in ascending rank order so the pattern set matches a
  /// sequential run.
  std::map<uint64_t, RangeOutcome> SizeBuffer;

  /// Wall time the solver pool burned on condemned worker attempts
  /// (crashes, deadline kills) for this goal's chunks. Refunded from
  /// the budget accounting below: a hung worker stalls the pool for
  /// its query budget + grace before being SIGKILLed, and charging
  /// that against the goal's budget would push runs that recover
  /// from faults over budgets the fault-free run stays inside —
  /// breaking byte-identity with the in-process path.
  std::atomic<int64_t> PoolStallMs{0};

  /// Wall seconds elapsed on the goal minus refunded pool stalls —
  /// the value budget enforcement compares against.
  double budgetElapsedSeconds() {
    return Wall.elapsedSeconds() -
           static_cast<double>(PoolStallMs.load(std::memory_order_relaxed)) /
               1000.0;
  }

  // Telemetry.
  Timer Wall; ///< Reset when the goal is picked up.
  double QueueWaitSeconds = 0;
  double SolverSeconds = 0;
  unsigned Chunks = 0;
  unsigned StolenChunks = 0;
};

class Scheduler {
public:
  Scheduler(const GoalLibrary &Library, const SynthesisOptions &BaseOptions,
            const ParallelBuildOptions &Build)
      : Build(Build) {
    NumThreads = Build.NumThreads;
    if (NumThreads == 0)
      NumThreads = std::max(1u, std::thread::hardware_concurrency());

    States = std::vector<GoalState>(Library.goals().size());
    for (size_t I = 0; I < Library.goals().size(); ++I) {
      GoalState &S = States[I];
      S.Goal = &Library.goals()[I];
      S.Options = BaseOptions;
      S.Options.MaxPatternSize = S.Goal->MaxPatternSize;
      if (std::find(Build.TotalModeGoals.begin(), Build.TotalModeGoals.end(),
                    S.Goal->Name) != Build.TotalModeGoals.end())
        S.Options.RequireTotalPatterns = true;
    }
    RemainingGoals = States.size();
    Deques = std::vector<WorkDeque>(NumThreads);
  }

  void run() {
    std::vector<size_t> Order(States.size());
    std::iota(Order.begin(), Order.end(), 0);
    runRound(Order);

    // End-of-run escalation pass: before the library is finalized,
    // every incomplete goal gets one retry with all budgets scaled up.
    // A transiently slow query (or an injected fault) then costs one
    // extra attempt, not a hole in the library.
    if (Build.EscalationFactor > 1) {
      std::vector<size_t> Incomplete;
      for (size_t I = 0; I < States.size(); ++I)
        if (!States[I].Result.Complete)
          Incomplete.push_back(I);
      if (!Incomplete.empty()) {
        Statistics::get().add("synth.escalations",
                              static_cast<int64_t>(Incomplete.size()));
        for (size_t I : Incomplete)
          resetForEscalation(States[I]);
        runRound(Incomplete);
      }
    }
  }

  std::vector<GoalState> &states() { return States; }
  unsigned numThreads() const { return NumThreads; }

private:
  const ParallelBuildOptions &Build;
  unsigned NumThreads = 1;
  std::vector<GoalState> States;
  std::vector<WorkDeque> Deques;
  std::atomic<size_t> RemainingGoals{0};
  CorpusStore Corpora;
  Timer SchedulerClock;

  std::mutex IdleMutex;
  std::condition_variable IdleCv;

  void notifyWorkers() { IdleCv.notify_all(); }

  /// Seeds the deques with StartGoal tasks for \p Indices (longest
  /// iterative-deepening caps first: those are the likeliest long
  /// poles, and starting them early gives the splitter the most room),
  /// then runs workers until all of them finish.
  void runRound(std::vector<size_t> Indices) {
    std::stable_sort(Indices.begin(), Indices.end(), [&](size_t A, size_t B) {
      return States[A].Goal->MaxPatternSize > States[B].Goal->MaxPatternSize;
    });
    RemainingGoals = Indices.size();
    for (size_t I = 0; I < Indices.size(); ++I) {
      Task T;
      T.TaskKind = Task::StartGoal;
      T.GoalIndex = Indices[I];
      T.OwnerWorker = static_cast<unsigned>(I % NumThreads);
      Deques[T.OwnerWorker].push(T);
    }

    std::vector<std::thread> Threads;
    for (unsigned W = 0; W < NumThreads; ++W)
      Threads.emplace_back([this, W] { workerMain(W); });
    for (std::thread &T : Threads)
      T.join();
  }

  /// Resets a goal's synthesis state for the escalation retry; its
  /// counterexample corpus is kept (tests stay valid), everything else
  /// restarts from scratch under the scaled budgets.
  void resetForEscalation(GoalState &S) {
    unsigned Factor = Build.EscalationFactor;
    S.Options.TimeBudgetSeconds *= Factor;
    S.Options.QueryTimeoutMs *= Factor;
    S.Options.QueryRlimit *= Factor;
    GoalSynthesisResult Fresh;
    Fresh.GoalName = S.Goal->Name;
    S.Result = std::move(Fresh);
    S.Fingerprints.clear();
    S.SizeBuffer.clear();
    S.PendingChunks = 0;
    S.CacheHit = false;
    S.ResumedFromJournal = false;
    S.SolverSeconds = 0;
    S.Chunks = 0;
    S.StolenChunks = 0;
  }

  bool popOwnOrSteal(unsigned WorkerId, Task &T) {
    if (Deques[WorkerId].popBack(T))
      return true;
    for (unsigned Offset = 1; Offset < NumThreads; ++Offset) {
      unsigned Victim = (WorkerId + Offset) % NumThreads;
      if (Deques[Victim].stealFront(T))
        return true;
    }
    return false;
  }

  void workerMain(unsigned WorkerId) {
    // One Z3 context per worker: contexts are confined to a thread.
    SmtContext Smt;
    Task T;
    while (true) {
      if (popOwnOrSteal(WorkerId, T)) {
        if (T.TaskKind == Task::StartGoal)
          startGoal(WorkerId, Smt, T);
        else
          runChunk(WorkerId, T);
        continue;
      }
      if (RemainingGoals.load() == 0)
        return;
      // Chunks in flight may spawn follow-up sizes; nap briefly. The
      // timeout bounds any missed notify.
      std::unique_lock<std::mutex> Lock(IdleMutex);
      IdleCv.wait_for(Lock, std::chrono::milliseconds(2));
    }
  }

  void startGoal(unsigned WorkerId, SmtContext &Smt, const Task &T) {
    GoalState &S = States[T.GoalIndex];
    S.QueueWaitSeconds = SchedulerClock.elapsedSeconds();
    S.Wall.reset();
    S.PoolStallMs.store(0, std::memory_order_relaxed);
    S.Result.GoalName = S.Goal->Name;

    if (Build.Cache || Build.Journal || Build.Resume)
      S.CacheKey = synthesisCacheKey(Smt, *S.Goal->Spec, S.Options);

    // Resume probe first: a goal whose finish record survived the
    // previous run is served from the journal with zero re-synthesis
    // (and independently of any cache).
    if (Build.Resume) {
      auto It = Build.Resume->find(S.CacheKey);
      if (It != Build.Resume->end()) {
        Statistics::get().add("journal.hits");
        S.ResumedFromJournal = true;
        S.Result = std::move(It->second);
        finishGoal(S);
        return;
      }
    }

    if (Build.Journal)
      Build.Journal->recordStart(S.CacheKey, S.Goal->Name);

    if (Build.Cache) {
      if (std::optional<GoalSynthesisResult> Cached =
              Build.Cache->lookup(S.CacheKey)) {
        Statistics::get().add("cache.hits");
        S.CacheHit = true;
        S.Result = std::move(*Cached);
        finishGoal(S);
        return;
      }
      Statistics::get().add("cache.misses");
    }

    Synthesizer Synth(Smt, S.Options);
    S.Plan = Synth.plan(*S.Goal->Spec);
    S.Corpus = Corpora.getOrCreate(
        instrSpecFingerprint(Smt, *S.Goal->Spec, S.Options.Width),
        S.Options.CorpusCapacity);
    scheduleSize(WorkerId, T.GoalIndex, S.Plan.MinSize);
  }

  void scheduleSize(unsigned WorkerId, size_t GoalIndex, unsigned Size) {
    GoalState &S = States[GoalIndex];
    uint64_t NumRanks = Synthesizer::numMultisets(S.Plan, Size);
    if (NumRanks == 0) {
      // Degenerate (empty alphabet): nothing at this size.
      advanceAfterSize(WorkerId, GoalIndex, Size, /*Found=*/false);
      return;
    }

    uint64_t MaxChunks =
        std::max<uint64_t>(1, uint64_t(NumThreads) * Build.ChunksPerThread);
    uint64_t NumChunks = std::max<uint64_t>(
        1, std::min(MaxChunks, NumRanks / std::max<uint64_t>(
                                   1, Build.MinChunkRanks)));
    {
      std::lock_guard<std::mutex> Guard(S.M);
      S.PendingChunks = static_cast<unsigned>(NumChunks);
      S.SizeBuffer.clear();
    }

    uint64_t Base = NumRanks / NumChunks;
    uint64_t Extra = NumRanks % NumChunks;
    uint64_t Begin = 0;
    for (uint64_t C = 0; C < NumChunks; ++C) {
      uint64_t Length = Base + (C < Extra ? 1 : 0);
      Task Chunk;
      Chunk.TaskKind = Task::Chunk;
      Chunk.GoalIndex = GoalIndex;
      Chunk.Size = Size;
      Chunk.BeginRank = Begin;
      Chunk.EndRank = Begin + Length;
      Chunk.OwnerWorker = WorkerId;
      Begin += Length;
      Deques[WorkerId].push(Chunk);
    }
    Statistics::get().add("scheduler.chunks", static_cast<int64_t>(NumChunks));
    notifyWorkers();
  }

  void runChunk(unsigned WorkerId, const Task &T) {
    GoalState &S = States[T.GoalIndex];
    bool Stolen = T.OwnerWorker != WorkerId;
    if (Stolen)
      Statistics::get().add("scheduler.steals");

    double Budget = 0;
    if (S.Options.TimeBudgetSeconds > 0)
      Budget = std::max(0.001, S.Options.TimeBudgetSeconds -
                                   S.budgetElapsedSeconds());

    RangeOutcome Outcome;
    if (Build.Pool && Build.Pool->usable()) {
      // Ship the chunk to a supervised worker process. The worker
      // replays it on a fresh context, exactly like the in-process
      // path below, so the outcome is bit-exact; what changes is that
      // a Z3 crash or hang costs one respawned child, not this
      // scheduler.
      RangeRequest Request;
      Request.GoalName = S.Goal->Name;
      Request.Options = S.Options;
      Request.Plan = S.Plan;
      Request.Size = T.Size;
      Request.BeginRank = T.BeginRank;
      Request.EndRank = T.EndRank;
      Request.BudgetSeconds = Budget;
      double Stalled = 0;
      Outcome = remoteSynthesizeRange(*Build.Pool, std::move(Request),
                                      *S.Corpus, &Stalled);
      if (Stalled > 0) {
        int64_t Ms = static_cast<int64_t>(Stalled * 1000.0);
        S.PoolStallMs.fetch_add(Ms, std::memory_order_relaxed);
        Statistics::get().add("pool.stalled_ms", Ms);
      }
    } else {
      // A fresh Z3 context per chunk: solver model-enumeration order
      // depends on context history, and capped multiset enumerations
      // (MaxPatternsPerMultiset) keep whichever representatives come
      // first — a fresh context makes each chunk's outcome independent
      // of what this worker happened to solve before (e.g. of which
      // other goals were cache hits). Context setup is microseconds
      // against a chunk's solver work.
      SmtContext ChunkSmt;
      Synthesizer Synth(ChunkSmt, S.Options);
      Outcome = Synth.synthesizeRange(*S.Goal->Spec, S.Plan, T.Size,
                                      T.BeginRank, T.EndRank, *S.Corpus,
                                      Budget);
    }

    bool Finalize = false;
    {
      std::lock_guard<std::mutex> Guard(S.M);
      S.SolverSeconds += Outcome.Seconds;
      ++S.Chunks;
      if (Stolen)
        ++S.StolenChunks;
      S.SizeBuffer.emplace(T.BeginRank, std::move(Outcome));
      Finalize = --S.PendingChunks == 0;
    }
    if (Finalize)
      finalizeSize(WorkerId, T.GoalIndex, T.Size);
  }

  void finalizeSize(unsigned WorkerId, size_t GoalIndex, unsigned Size) {
    GoalState &S = States[GoalIndex];
    bool Found = false;
    {
      std::lock_guard<std::mutex> Guard(S.M);
      for (auto &[Begin, Outcome] : S.SizeBuffer) {
        (void)Begin;
        if (Outcome.FoundAny)
          Found = true;
        absorbRangeOutcome(S.Result, S.Fingerprints, std::move(Outcome),
                           S.Options.MaxPatternsPerGoal);
      }
      S.SizeBuffer.clear();
    }
    advanceAfterSize(WorkerId, GoalIndex, Size, Found);
  }

  /// The iterative-deepening decision, mirroring
  /// Synthesizer::synthesize: stop after the smallest productive size
  /// (FindAllMinimal), on budget expiry, or at the size cap.
  void advanceAfterSize(unsigned WorkerId, size_t GoalIndex, unsigned Size,
                        bool Found) {
    GoalState &S = States[GoalIndex];
    if (Found) {
      S.Result.MinimalSize = Size;
      if (S.Options.FindAllMinimal) {
        finishGoal(S);
        return;
      }
    }
    bool OverBudget = S.Options.TimeBudgetSeconds > 0 &&
                      S.budgetElapsedSeconds() > S.Options.TimeBudgetSeconds;
    if (OverBudget) {
      S.Result.Complete = false;
      S.Result.Cause =
          mergeIncompleteCause(S.Result.Cause, IncompleteCause::Budget);
      finishGoal(S);
      return;
    }
    if (Size >= S.Plan.MaxSize) {
      finishGoal(S);
      return;
    }
    scheduleSize(WorkerId, GoalIndex, Size + 1);
  }

  void finishGoal(GoalState &S) {
    // Stamp the recipe's cost vector before the result is cached or
    // journaled. Results served from pre-cost cache shards arrive
    // without one; derivation is deterministic, so re-deriving here
    // keeps them interchangeable with fresh results.
    if (!S.Result.HasCost) {
      RuleCost Cost = deriveRuleCost(*S.Goal);
      S.Result.HasCost = true;
      S.Result.CostInstructions = Cost.Instructions;
      S.Result.CostLatency = Cost.Latency;
      S.Result.CostSize = Cost.Size;
      Statistics::get().add("synth.cost_derivations", 1);
    } else {
      Statistics::get().add("synth.cost_cached", 1);
    }

    if (!S.CacheHit && !S.ResumedFromJournal) {
      S.Result.Seconds = S.SolverSeconds;
      if (Build.Cache && S.Result.Complete)
        Build.Cache->store(S.CacheKey, S.Result);
    }

    // Journal the outcome (for cache hits too: resume must work with
    // the cache gone). Resume hits are already in the journal.
    if (Build.Journal && !S.ResumedFromJournal) {
      if (S.Result.Complete)
        Build.Journal->recordFinish(S.CacheKey, S.Result);
      else
        Build.Journal->recordIncomplete(S.CacheKey, S.Goal->Name,
                                        incompleteCauseName(S.Result.Cause));
    }

    GoalTelemetry Telemetry;
    Telemetry.Goal = S.Goal->Name;
    Telemetry.Group = S.Goal->Group;
    Telemetry.CacheHit = S.CacheHit;
    Telemetry.ResumedFromJournal = S.ResumedFromJournal;
    Telemetry.Complete = S.Result.Complete;
    if (!S.Result.Complete)
      Telemetry.IncompleteCause = incompleteCauseName(S.Result.Cause);
    Telemetry.QueueWaitSeconds = S.QueueWaitSeconds;
    Telemetry.SolverSeconds = S.SolverSeconds;
    Telemetry.WallSeconds = S.Wall.elapsedSeconds();
    Telemetry.Counterexamples = S.Result.Counterexamples;
    Telemetry.MultisetsRun = S.Result.MultisetsRun;
    Telemetry.MultisetsSkipped = S.Result.MultisetsSkipped;
    Telemetry.Patterns = S.Result.Patterns.size();
    Telemetry.Chunks = S.Chunks;
    Telemetry.StolenChunks = S.StolenChunks;
    Telemetry.PrescreenKills = S.Result.PrescreenKills;
    if (S.Corpus) {
      Telemetry.CorpusSize = S.Corpus->size();
      Telemetry.CorpusEvictions = S.Corpus->evictions();
    }
    Statistics::get().recordGoal(std::move(Telemetry));

    RemainingGoals.fetch_sub(1);
    notifyWorkers();
  }
};

} // namespace

PatternDatabase selgen::synthesizeRuleLibraryParallel(
    const GoalLibrary &Library, const SynthesisOptions &Options,
    const ParallelBuildOptions &Build, LibraryBuildReport *Report) {
  Timer Wall;
  Scheduler Sched(Library, Options, Build);
  Sched.run();

  // Aggregate in goal order so the result is deterministic.
  PatternDatabase Database;
  std::map<std::string, GroupReport> Groups;
  unsigned CacheHits = 0, CacheMisses = 0;
  for (GoalState &S : Sched.states()) {
    GroupReport &Group = Groups[S.Goal->Group];
    Group.Group = S.Goal->Group;
    ++Group.Goals;
    Group.Seconds += S.Result.Seconds;
    if (!S.Result.Complete)
      ++Group.IncompleteGoals;
    if (Build.Cache)
      ++(S.CacheHit ? CacheHits : CacheMisses);
    for (Graph &Pattern : S.Result.Patterns) {
      Group.MaxPatternSize =
          std::max(Group.MaxPatternSize, Pattern.numOperations());
      if (Database.add(S.Goal->Name, std::move(Pattern)))
        ++Group.Patterns;
    }
  }

  if (Report) {
    for (auto &[Name, Group] : Groups) {
      (void)Name;
      Report->Groups.push_back(Group);
      Report->TotalSeconds += Group.Seconds;
      Report->TotalPatterns += Group.Patterns;
      Report->TotalGoals += Group.Goals;
    }
    Report->CacheHits = CacheHits;
    Report->CacheMisses = CacheMisses;
    Report->WallSeconds = Wall.elapsedSeconds();
  }
  return Database;
}

PatternDatabase selgen::synthesizeRuleLibraryParallel(
    const GoalLibrary &Library, const SynthesisOptions &Options,
    unsigned NumThreads, LibraryBuildReport *Report,
    const std::vector<std::string> &TotalModeGoals) {
  ParallelBuildOptions Build;
  Build.NumThreads = NumThreads;
  Build.TotalModeGoals = TotalModeGoals;
  return synthesizeRuleLibraryParallel(Library, Options, Build, Report);
}
