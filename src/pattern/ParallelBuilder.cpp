//===- ParallelBuilder.cpp - Multi-threaded library synthesis -----------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "pattern/ParallelBuilder.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <thread>

using namespace selgen;

PatternDatabase selgen::synthesizeRuleLibraryParallel(
    const GoalLibrary &Library, const SynthesisOptions &Options,
    unsigned NumThreads, LibraryBuildReport *Report,
    const std::vector<std::string> &TotalModeGoals) {
  if (NumThreads == 0)
    NumThreads = std::max(1u, std::thread::hardware_concurrency());
  NumThreads = std::min<unsigned>(
      NumThreads, std::max<size_t>(1, Library.goals().size()));

  struct GoalOutcome {
    const GoalInstruction *Goal = nullptr;
    GoalSynthesisResult Result;
  };
  std::vector<GoalOutcome> Outcomes(Library.goals().size());
  std::atomic<size_t> NextGoal{0};

  auto isTotalMode = [&TotalModeGoals](const std::string &Name) {
    return std::find(TotalModeGoals.begin(), TotalModeGoals.end(), Name) !=
           TotalModeGoals.end();
  };

  auto worker = [&] {
    // One Z3 context per worker: contexts are confined to a thread.
    SmtContext Smt;
    while (true) {
      size_t Index = NextGoal.fetch_add(1);
      if (Index >= Library.goals().size())
        return;
      const GoalInstruction &Goal = Library.goals()[Index];
      SynthesisOptions GoalOptions = Options;
      GoalOptions.MaxPatternSize = Goal.MaxPatternSize;
      if (isTotalMode(Goal.Name))
        GoalOptions.RequireTotalPatterns = true;
      Synthesizer Synth(Smt, GoalOptions);
      Outcomes[Index].Goal = &Goal;
      Outcomes[Index].Result = Synth.synthesize(*Goal.Spec);
    }
  };

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back(worker);
  for (std::thread &T : Threads)
    T.join();

  // Aggregate in goal order so the result is deterministic.
  PatternDatabase Database;
  std::map<std::string, GroupReport> Groups;
  for (GoalOutcome &Outcome : Outcomes) {
    if (!Outcome.Goal)
      continue;
    GroupReport &Group = Groups[Outcome.Goal->Group];
    Group.Group = Outcome.Goal->Group;
    ++Group.Goals;
    Group.Seconds += Outcome.Result.Seconds;
    if (!Outcome.Result.Complete)
      ++Group.IncompleteGoals;
    for (Graph &Pattern : Outcome.Result.Patterns) {
      Group.MaxPatternSize =
          std::max(Group.MaxPatternSize, Pattern.numOperations());
      if (Database.add(Outcome.Goal->Name, std::move(Pattern)))
        ++Group.Patterns;
    }
  }

  if (Report) {
    for (auto &[Name, Group] : Groups) {
      (void)Name;
      Report->Groups.push_back(Group);
      Report->TotalSeconds += Group.Seconds;
      Report->TotalPatterns += Group.Patterns;
      Report->TotalGoals += Group.Goals;
    }
  }
  return Database;
}
