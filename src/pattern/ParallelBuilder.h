//===- ParallelBuilder.h - Multi-threaded library synthesis ------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel rule-library synthesis (paper Section 5.5: "Either we can
/// run the synthesizer in parallel on multiple machines, or we can
/// first synthesize patterns for a basic set of instructions and
/// expand on these as needed"; the paper's timings are from an 8-core
/// machine). Each worker owns its own Z3 context — contexts are not
/// thread-safe, but independent contexts are — pulls goals from a
/// shared queue, and the per-goal pattern sets are aggregated into one
/// PatternDatabase at the end, exactly like merging the databases of
/// parallel machine runs.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_PATTERN_PARALLELBUILDER_H
#define SELGEN_PATTERN_PARALLELBUILDER_H

#include "pattern/LibraryBuilder.h"

namespace selgen {

/// Like synthesizeRuleLibrary, but distributes goals over
/// \p NumThreads workers (each with a private SmtContext).
/// \p NumThreads = 0 uses the hardware concurrency. The result is
/// deterministic up to rule order; the database contents equal a
/// sequential run's. \p TotalModeGoals lists goals synthesized with
/// the total-pattern policy (see SynthesisOptions).
PatternDatabase synthesizeRuleLibraryParallel(
    const GoalLibrary &Library, const SynthesisOptions &Options,
    unsigned NumThreads = 0, LibraryBuildReport *Report = nullptr,
    const std::vector<std::string> &TotalModeGoals = {});

} // namespace selgen

#endif // SELGEN_PATTERN_PARALLELBUILDER_H
