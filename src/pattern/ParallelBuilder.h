//===- ParallelBuilder.h - Work-stealing library synthesis -------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel rule-library synthesis (paper Section 5.5: "Either we can
/// run the synthesizer in parallel on multiple machines, or we can
/// first synthesize patterns for a basic set of instructions and
/// expand on these as needed"; the paper's timings are from an 8-core
/// machine).
///
/// Scheduling: a work-stealing deque scheduler. Each worker owns a
/// deque of tasks (goal start-ups and enumeration chunks) and its own
/// Z3 context — contexts are confined to a thread, but independent
/// contexts are safe. Owners pop from the back of their deque; idle
/// workers steal from the front of a victim's deque. Crucially, the
/// dominant long-pole goals (large multicombination enumerations, the
/// tail that serializes a static per-goal dispatch) are split into
/// rank sub-ranges via Synthesizer::synthesizeRange, so stragglers are
/// shared among workers instead of pinning one. Per-size chunk
/// outcomes are merged in rank order, which keeps the resulting
/// database equal to a sequential run's.
///
/// Caching: with a SynthesisCache attached, each goal's cache key
/// (content hash of its SMT spec, width, options, and encoder version)
/// is probed before any solving; hits are served from disk and
/// complete results are stored back, so warm reruns skip Z3 entirely.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_PATTERN_PARALLELBUILDER_H
#define SELGEN_PATTERN_PARALLELBUILDER_H

#include "pattern/LibraryBuilder.h"
#include "pattern/SynthesisCache.h"

#include <map>

namespace selgen {

class RunJournal;
class SolverPool;

/// Configuration of one parallel library build.
struct ParallelBuildOptions {
  /// Worker threads; 0 uses the hardware concurrency.
  unsigned NumThreads = 0;
  /// Goals synthesized with the total-pattern policy (see
  /// SynthesisOptions::RequireTotalPatterns).
  std::vector<std::string> TotalModeGoals;
  /// Persistent result cache; null disables caching.
  SynthesisCache *Cache = nullptr;
  /// Crash-safe run journal (see pattern/RunJournal.h); null disables
  /// journaling. Every goal's pickup and outcome is recorded with an
  /// fsync'd append, making the run resumable after SIGKILL.
  RunJournal *Journal = nullptr;
  /// Finished results replayed from a prior run's journal, keyed by
  /// cache key. Goals found here are served directly ("journal.hits")
  /// with zero re-synthesis; null disables resume. Served entries are
  /// consumed (moved out of the map).
  std::map<std::string, GoalSynthesisResult> *Resume = nullptr;
  /// Budget multiplier for the end-of-run escalation pass: goals that
  /// ended incomplete are retried once with wall-clock, query-timeout,
  /// and rlimit budgets scaled by this factor before the library is
  /// finalized. 0 (or 1) disables the pass.
  unsigned EscalationFactor = 0;
  /// Minimum enumeration ranks per chunk when splitting a size's
  /// multiset range; sizes below this run as a single chunk.
  uint64_t MinChunkRanks = 32;
  /// Upper bound on chunks per (goal, size), as a multiple of the
  /// worker count.
  unsigned ChunksPerThread = 4;
  /// Out-of-process solver pool (see smt/SolverPool.h); null keeps the
  /// in-process path. When set and usable, enumeration chunks are
  /// shipped to supervised `selgen-solverd` workers instead of running
  /// on this process's Z3 — a solver crash then costs one respawned
  /// child and one retried chunk, never the scheduler. Chunks replay
  /// on a fresh context either way, so the resulting library is
  /// byte-identical to an in-process run.
  SolverPool *Pool = nullptr;
};

/// Like synthesizeRuleLibrary, but distributes goals — and sub-ranges
/// of the heavy goals' enumerations — over worker threads with work
/// stealing. The result is deterministic up to rule order; the
/// database contents equal a sequential run's. Per-goal telemetry
/// (queue wait, solver time, cache hit/miss, counterexamples) is
/// recorded in the global Statistics registry.
PatternDatabase synthesizeRuleLibraryParallel(
    const GoalLibrary &Library, const SynthesisOptions &Options,
    const ParallelBuildOptions &Build, LibraryBuildReport *Report = nullptr);

/// Backward-compatible convenience overload.
PatternDatabase synthesizeRuleLibraryParallel(
    const GoalLibrary &Library, const SynthesisOptions &Options,
    unsigned NumThreads = 0, LibraryBuildReport *Report = nullptr,
    const std::vector<std::string> &TotalModeGoals = {});

} // namespace selgen

#endif // SELGEN_PATTERN_PARALLELBUILDER_H
