//===- PatternDatabase.cpp - The rule library ---------------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "pattern/PatternDatabase.h"

#include "ir/Normalizer.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "support/Error.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

using namespace selgen;

bool PatternDatabase::add(std::string GoalName, Graph Pattern) {
  std::string Key = GoalName + "|" + Pattern.fingerprint();
  if (!Index.insert(std::move(Key)).second)
    return false;
  Rules.emplace_back(std::move(GoalName), std::move(Pattern));
  return true;
}

void PatternDatabase::rebuildIndex() {
  Index.clear();
  for (const Rule &R : Rules)
    Index.insert(R.GoalName + "|" + R.Pattern.fingerprint());
}

void PatternDatabase::merge(PatternDatabase &&Other) {
  for (Rule &R : Other.Rules)
    add(std::move(R.GoalName), std::move(R.Pattern));
  Other.Rules.clear();
}

std::vector<const Rule *>
PatternDatabase::rulesForGoal(const std::string &GoalName) const {
  std::vector<const Rule *> Result;
  for (const Rule &R : Rules)
    if (R.GoalName == GoalName)
      Result.push_back(&R);
  return Result;
}

size_t PatternDatabase::filterCommutativeDuplicates() {
  std::set<std::string> Seen;
  size_t Before = Rules.size();
  std::vector<Rule> Kept;
  for (Rule &R : Rules) {
    // The normalizer orders commutative operands canonically, so two
    // commutative variants share a normalized fingerprint.
    std::string Key =
        R.GoalName + "|" + normalizeGraph(R.Pattern).fingerprint();
    if (Seen.insert(Key).second)
      Kept.push_back(std::move(R));
  }
  Rules = std::move(Kept);
  rebuildIndex();
  return Before - Rules.size();
}

size_t PatternDatabase::filterNonNormalized() {
  size_t Before = Rules.size();
  std::vector<Rule> Kept;
  for (Rule &R : Rules)
    if (isNormalized(R.Pattern))
      Kept.push_back(std::move(R));
  Rules = std::move(Kept);
  rebuildIndex();
  return Before - Rules.size();
}

void PatternDatabase::sortSpecificFirst() {
  auto numConstants = [](const Graph &G) {
    unsigned Count = 0;
    for (Node *N : G.liveNodes())
      if (N->opcode() == Opcode::Const)
        ++Count;
    return Count;
  };
  std::stable_sort(Rules.begin(), Rules.end(),
                   [&](const Rule &A, const Rule &B) {
                     unsigned OpsA = A.Pattern.numOperations();
                     unsigned OpsB = B.Pattern.numOperations();
                     if (OpsA != OpsB)
                       return OpsA > OpsB;
                     unsigned ConstsA = numConstants(A.Pattern);
                     unsigned ConstsB = numConstants(B.Pattern);
                     if (ConstsA != ConstsB)
                       return ConstsA > ConstsB;
                     return A.Pattern.fingerprint() <
                            B.Pattern.fingerprint();
                   });
}

std::string PatternDatabase::serialize() const {
  std::string Result;
  for (const Rule &R : Rules) {
    Result += "rule " + R.GoalName + "\n";
    Result += printGraph(R.Pattern);
    Result += "endrule\n";
  }
  return Result;
}

PatternDatabase PatternDatabase::deserialize(const std::string &Text,
                                             std::string *ErrorMessage) {
  PatternDatabase Database;
  std::istringstream Stream(Text);
  std::string Line;
  std::string GoalName;
  std::string GraphText;
  bool InRule = false;
  auto fail = [&](const std::string &Message) {
    if (ErrorMessage)
      *ErrorMessage = Message;
    return PatternDatabase();
  };
  while (std::getline(Stream, Line)) {
    std::string Trimmed = trimString(Line);
    if (Trimmed.empty() || startsWith(Trimmed, "#"))
      continue;
    if (startsWith(Trimmed, "rule ")) {
      if (InRule)
        return fail("nested rule record");
      GoalName = trimString(Trimmed.substr(5));
      GraphText.clear();
      InRule = true;
      continue;
    }
    if (Trimmed == "endrule") {
      if (!InRule)
        return fail("endrule without rule");
      std::string ParseError;
      std::optional<Graph> Pattern = parseGraph(GraphText, &ParseError);
      if (!Pattern)
        return fail("bad pattern for " + GoalName + ": " + ParseError);
      Database.add(GoalName, std::move(*Pattern));
      InRule = false;
      continue;
    }
    if (InRule)
      GraphText += Line + "\n";
    else
      return fail("unexpected line outside rule record: " + Trimmed);
  }
  if (InRule)
    return fail("unterminated rule record");
  return Database;
}

void PatternDatabase::saveToFile(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    reportFatalError("cannot write pattern database: " + Path);
  Out << serialize();
}

PatternDatabase PatternDatabase::loadFromFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    reportFatalError("cannot read pattern database: " + Path);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Error;
  PatternDatabase Database = deserialize(Buffer.str(), &Error);
  if (!Error.empty())
    reportFatalError("corrupt pattern database " + Path + ": " + Error);
  return Database;
}
