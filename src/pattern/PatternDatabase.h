//===- PatternDatabase.h - The rule library ----------------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pattern database of paper Section 3/5.5: (goal, pattern) rules
/// collected across synthesizer runs, with aggregation, duplicate
/// filtering (commutative variants collapse onto one canonical form),
/// the non-normalized-pattern filter of Section 5.6, and a
/// specific-to-general sort. Serializes to a plain-text format so
/// libraries can be merged from parallel runs, exactly like the
/// artifact's rule-library.dat.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_PATTERN_PATTERNDATABASE_H
#define SELGEN_PATTERN_PATTERNDATABASE_H

#include "ir/Graph.h"

#include <set>
#include <string>
#include <vector>

namespace selgen {

/// One instruction selection rule: "if Pattern matches, emit Goal".
struct Rule {
  std::string GoalName;
  Graph Pattern;

  Rule(std::string GoalName, Graph Pattern)
      : GoalName(std::move(GoalName)), Pattern(std::move(Pattern)) {}
};

/// A library of rules.
class PatternDatabase {
public:
  /// Adds a rule; exact duplicates (same goal, structurally identical
  /// pattern) are dropped. Returns true if the rule was new.
  bool add(std::string GoalName, Graph Pattern);

  /// Merges another database (aggregation across synthesizer runs,
  /// Section 5.5).
  void merge(PatternDatabase &&Other);

  const std::vector<Rule> &rules() const { return Rules; }
  std::vector<const Rule *> rulesForGoal(const std::string &GoalName) const;
  size_t size() const { return Rules.size(); }

  /// Removes duplicates modulo commutative-operand normalization: if
  /// two rules for the same goal normalize to the same canonical
  /// graph, only the first stays (Section 5.5, "remove duplicated
  /// patterns that might stem from commutative arithmetic
  /// operations"). Returns the number of rules removed.
  size_t filterCommutativeDuplicates();

  /// Removes rules whose pattern is not in normal form; the compiler
  /// would never present such IR to the instruction selector
  /// (Section 5.6). Returns the number of rules removed.
  size_t filterNonNormalized();

  /// Sorts from more specific to less specific patterns (Section 5.6):
  /// more operations first; ties broken toward patterns with more
  /// constants, then deterministically by fingerprint.
  void sortSpecificFirst();

  /// Serialization (text, self-delimiting records).
  std::string serialize() const;
  static PatternDatabase deserialize(const std::string &Text,
                                     std::string *ErrorMessage = nullptr);

  /// File convenience wrappers; abort on I/O errors.
  void saveToFile(const std::string &Path) const;
  static PatternDatabase loadFromFile(const std::string &Path);

private:
  std::vector<Rule> Rules;
  /// Fingerprint index ("goal|fingerprint") for O(log n) duplicate
  /// detection; the paper-scale library has 154 470 entries.
  std::set<std::string> Index;

  void rebuildIndex();
};

} // namespace selgen

#endif // SELGEN_PATTERN_PATTERNDATABASE_H
