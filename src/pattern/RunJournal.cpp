//===- RunJournal.cpp - Crash-safe synthesis run journal ----------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "pattern/RunJournal.h"

#include "pattern/SynthesisCache.h"
#include "support/AtomicFile.h"
#include "support/FaultInjection.h"
#include "support/Json.h"
#include "support/Statistics.h"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>

#include <fcntl.h>
#include <unistd.h>

using namespace selgen;

std::string RunJournal::journalPath(const std::string &RunDirectory) {
  return RunDirectory + "/journal.jsonl";
}

RunJournal::~RunJournal() {
  if (Fd >= 0)
    ::close(Fd);
}

std::unique_ptr<RunJournal>
RunJournal::open(const std::string &RunDirectory,
                 const std::string &ConfigFingerprint) {
  std::error_code EC;
  std::filesystem::create_directories(RunDirectory, EC);
  if (EC && !std::filesystem::is_directory(RunDirectory, EC))
    return nullptr;

  int Fd = ::open(journalPath(RunDirectory).c_str(),
                  O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (Fd < 0)
    return nullptr;

  std::unique_ptr<RunJournal> Journal(new RunJournal);
  Journal->Fd = Fd;

  // A fresh journal starts with the run header; a resumed journal
  // already has one (load() verified it before we got here).
  off_t Size = ::lseek(Fd, 0, SEEK_END);
  if (Size == 0)
    Journal->appendRecord("{\"type\":\"run\",\"version\":1,\"config\":\"" +
                          jsonEscape(ConfigFingerprint) + "\"}\n");
  return Journal;
}

void RunJournal::appendRecord(std::string Line) {
  // Fault hook: a torn append, as a crash mid-write would leave. The
  // record loses its tail (including the newline), which load() must
  // detect and quarantine.
  if (FaultInjector::get().shouldFire("journal_truncate"))
    Line.resize(Line.size() / 2);

  std::lock_guard<std::mutex> Guard(Lock);
  if (Fd < 0)
    return;
  // One write(2) per record to an O_APPEND fd: the record is either
  // fully in the file or not at all (modulo a crash tearing the single
  // write, which the checksum framing catches on load).
  const char *Data = Line.data();
  size_t Remaining = Line.size();
  while (Remaining > 0) {
    ssize_t Written = ::write(Fd, Data, Remaining);
    if (Written < 0) {
      if (errno == EINTR)
        continue;
      return; // Journal failure degrades resume, never the run itself.
    }
    Data += Written;
    Remaining -= static_cast<size_t>(Written);
  }
  ::fsync(Fd);
  Statistics::get().add("journal.records");
}

void RunJournal::recordStart(const std::string &Key,
                             const std::string &GoalName) {
  appendRecord("{\"type\":\"start\",\"key\":\"" + jsonEscape(Key) +
               "\",\"goal\":\"" + jsonEscape(GoalName) + "\"}\n");
}

void RunJournal::recordFinish(const std::string &Key,
                              const GoalSynthesisResult &Result) {
  std::string Payload = SynthesisCache::serializeResult(Result);
  appendRecord("{\"type\":\"finish\",\"key\":\"" + jsonEscape(Key) +
               "\",\"goal\":\"" + jsonEscape(Result.GoalName) +
               "\",\"len\":" + std::to_string(Payload.size()) +
               ",\"crc\":\"" + crc32Hex(Payload) + "\",\"result\":\"" +
               jsonEscape(Payload) + "\"}\n");
  // The deterministic crash point: the finish record above is durable,
  // so a resumed run must serve this goal from the journal and produce
  // a byte-identical library.
  if (FaultInjector::get().shouldFire("kill_after_finish"))
    ::kill(::getpid(), SIGKILL);
}

void RunJournal::recordIncomplete(const std::string &Key,
                                  const std::string &GoalName,
                                  const std::string &Cause) {
  appendRecord("{\"type\":\"incomplete\",\"key\":\"" + jsonEscape(Key) +
               "\",\"goal\":\"" + jsonEscape(GoalName) + "\",\"cause\":\"" +
               jsonEscape(Cause) + "\"}\n");
}

namespace {

/// Interprets one parsed journal record; returns false on structural
/// problems (missing fields, checksum mismatch) that mark the record
/// corrupt.
bool applyRecord(const std::map<std::string, std::string> &Fields,
                 RunJournal::LoadResult &Out) {
  auto field = [&](const char *Name) -> const std::string * {
    auto It = Fields.find(Name);
    return It == Fields.end() ? nullptr : &It->second;
  };
  const std::string *Type = field("type");
  if (!Type)
    return false;

  if (*Type == "run") {
    const std::string *Config = field("config");
    if (!Config)
      return false;
    Out.ConfigFingerprint = *Config;
    return true;
  }
  if (*Type == "start") {
    const std::string *Key = field("key");
    if (!Key)
      return false;
    Out.InFlight.insert(*Key);
    return true;
  }
  if (*Type == "incomplete") {
    const std::string *Key = field("key");
    const std::string *Cause = field("cause");
    if (!Key || !Cause)
      return false;
    Out.IncompleteCauses[*Key] = *Cause;
    Out.InFlight.erase(*Key);
    return true;
  }
  if (*Type == "finish") {
    const std::string *Key = field("key");
    const std::string *Len = field("len");
    const std::string *Crc = field("crc");
    const std::string *Payload = field("result");
    if (!Key || !Len || !Crc || !Payload)
      return false;
    // The payload carries its own frame: length and CRC-32 over the
    // unescaped bytes. Any mismatch marks the record corrupt.
    if (Payload->size() != std::strtoull(Len->c_str(), nullptr, 10) ||
        crc32Hex(*Payload) != *Crc)
      return false;
    std::optional<GoalSynthesisResult> Result =
        SynthesisCache::deserializeResult(*Payload);
    if (!Result)
      return false;
    Out.Finished[*Key] = std::move(*Result);
    Out.InFlight.erase(*Key);
    Out.IncompleteCauses.erase(*Key);
    return true;
  }
  return false; // Unknown record type: likely corruption.
}

} // namespace

RunJournal::LoadResult RunJournal::load(const std::string &RunDirectory) {
  LoadResult Out;
  std::string Path = journalPath(RunDirectory);
  std::optional<std::string> Contents = readFileToString(Path);
  if (!Contents)
    return Out;
  Out.Existed = true;

  // Replay the valid prefix: every record must be a newline-terminated
  // line that parses as a flat JSON object and applies cleanly. The
  // first violation marks the start of the corrupt tail.
  size_t ValidEnd = 0;
  size_t Cursor = 0;
  bool Corrupt = false;
  while (Cursor < Contents->size()) {
    size_t LineEnd = Contents->find('\n', Cursor);
    if (LineEnd == std::string::npos) {
      Corrupt = true; // Torn tail: unterminated final record.
      break;
    }
    std::string Line = Contents->substr(Cursor, LineEnd - Cursor);
    if (!Line.empty()) {
      std::optional<std::map<std::string, std::string>> Fields =
          parseFlatJsonObject(Line);
      if (!Fields || !applyRecord(*Fields, Out)) {
        Corrupt = true;
        break;
      }
    }
    Cursor = LineEnd + 1;
    ValidEnd = Cursor;
  }

  if (Corrupt) {
    std::string Tail = Contents->substr(ValidEnd);
    for (char C : Tail)
      if (C == '\n')
        ++Out.CorruptRecords;
    if (!Tail.empty() && Tail.back() != '\n')
      ++Out.CorruptRecords;
    Statistics::get().add("journal.corrupt_records",
                          static_cast<int64_t>(Out.CorruptRecords));

    // Quarantine the tail for inspection, then truncate the journal
    // back to its valid prefix so the resumed run appends cleanly.
    std::ofstream Bad(Path + ".bad", std::ios::app | std::ios::binary);
    if (Bad)
      Bad << Tail;
    if (::truncate(Path.c_str(), static_cast<off_t>(ValidEnd)) != 0) {
      // Fall back to a full rewrite of the valid prefix.
      writeFileAtomic(Path, Contents->substr(0, ValidEnd));
    }
  }
  return Out;
}
