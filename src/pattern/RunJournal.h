//===- RunJournal.h - Crash-safe synthesis run journal -----------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An append-only, fsync'd journal of one synthesis run, enabling
/// `selgen-synth --resume <dir>`: a run killed at any point (including
/// SIGKILL mid-write) can be restarted and will re-synthesize only the
/// goals whose finish record had not yet landed on disk.
///
/// Format: one JSON object per line (JSONL) in `journal.jsonl`:
///
///   {"type":"run","version":1,"config":"<hex>"}     run header
///   {"type":"start","key":"<k>","goal":"<name>"}    goal picked up
///   {"type":"finish","key":"<k>","goal":"<name>",
///    "len":N,"crc":"<8hex>","result":"<escaped>"}   goal done (payload
///                                                   = cache shard text)
///   {"type":"incomplete","key":"<k>","goal":"<name>",
///    "cause":"timeout"}                             goal gave up
///
/// The `config` fingerprint covers everything the results depend on
/// (goal set, width, synthesis options, encoder version); resuming
/// under a different configuration is refused rather than silently
/// mixing incompatible results.
///
/// Crash safety: each record is a single write(2) to an O_APPEND fd
/// followed by fsync, so a record is either fully present or fully
/// absent — and a torn tail (the one partially-written record a crash
/// can leave) is detected on load by JSON well-formedness plus a
/// length+CRC-32 frame on finish payloads. The corrupt tail is
/// quarantined to `journal.jsonl.bad`, the journal truncated back to
/// its valid prefix, and the affected goals simply re-run; corruption
/// is counted ("journal.corrupt_records") but never fatal.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_PATTERN_RUNJOURNAL_H
#define SELGEN_PATTERN_RUNJOURNAL_H

#include "synth/Synthesizer.h"

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

namespace selgen {

/// Append side of the journal. Thread-safe: workers record
/// finish/incomplete events concurrently.
class RunJournal {
public:
  ~RunJournal();
  RunJournal(const RunJournal &) = delete;
  RunJournal &operator=(const RunJournal &) = delete;

  /// Opens `<RunDirectory>/journal.jsonl` for appending, creating the
  /// directory and the run header (with \p ConfigFingerprint) if the
  /// journal does not exist yet. Returns null on I/O failure.
  static std::unique_ptr<RunJournal> open(const std::string &RunDirectory,
                                          const std::string &ConfigFingerprint);

  /// What replaying a journal yields.
  struct LoadResult {
    /// True if the journal file existed (even if empty or corrupt).
    bool Existed = false;
    /// Config fingerprint from the run header; empty if none survived.
    std::string ConfigFingerprint;
    /// Fully finished goals by cache key, ready to serve on resume.
    std::map<std::string, GoalSynthesisResult> Finished;
    /// Goals with a start but no finish record (in flight at the
    /// crash); resume re-queues them.
    std::set<std::string> InFlight;
    /// Last recorded incomplete-cause per goal key.
    std::map<std::string, std::string> IncompleteCauses;
    /// Corrupt records dropped (torn tail, bad checksum).
    uint64_t CorruptRecords = 0;
  };

  /// Replays `<RunDirectory>/journal.jsonl`. A corrupt tail is
  /// quarantined to `journal.jsonl.bad` and the journal truncated back
  /// to its valid prefix, so the next append continues cleanly.
  static LoadResult load(const std::string &RunDirectory);

  /// Journal path for \p RunDirectory.
  static std::string journalPath(const std::string &RunDirectory);

  /// Records that a worker picked up the goal \p Key.
  void recordStart(const std::string &Key, const std::string &GoalName);

  /// Records a finished goal with its full serialized result. After
  /// the record is durable, the "kill_after_finish" fault site can
  /// SIGKILL the process — the deterministic crash point the resume
  /// tests use.
  void recordFinish(const std::string &Key, const GoalSynthesisResult &Result);

  /// Records a goal that gave up (\p Cause as in incompleteCauseName).
  void recordIncomplete(const std::string &Key, const std::string &GoalName,
                        const std::string &Cause);

private:
  RunJournal() = default;

  /// Appends one line with a single write(2) + fsync under the lock.
  void appendRecord(std::string Line);

  std::mutex Lock;
  int Fd = -1;
};

} // namespace selgen

#endif // SELGEN_PATTERN_RUNJOURNAL_H
