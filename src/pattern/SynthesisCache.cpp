//===- SynthesisCache.cpp - Persistent synthesis result cache -----------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "pattern/SynthesisCache.h"

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <unistd.h>

using namespace selgen;

namespace {
constexpr const char *MagicLine = "selgen-cache v1";
constexpr const char *EndLine = "end";
} // namespace

std::string SynthesisCache::defaultDirectory() {
  if (const char *Env = std::getenv("SELGEN_CACHE_DIR"))
    if (*Env)
      return Env;
  if (const char *Xdg = std::getenv("XDG_CACHE_HOME"))
    if (*Xdg)
      return std::string(Xdg) + "/selgen";
  if (const char *Home = std::getenv("HOME"))
    if (*Home)
      return std::string(Home) + "/.cache/selgen";
  return ".selgen-cache";
}

SynthesisCache::SynthesisCache(std::string RootDirectory)
    : Directory(std::move(RootDirectory)) {
  Directory += "/v1";
  std::error_code EC;
  std::filesystem::create_directories(Directory, EC);
  Usable = !EC && std::filesystem::is_directory(Directory, EC);
}

std::string SynthesisCache::shardPath(const std::string &Key) const {
  return Directory + "/" + Key + ".shard";
}

std::string SynthesisCache::serializeResult(const GoalSynthesisResult &Result) {
  std::ostringstream Out;
  Out << MagicLine << "\n";
  Out << "goal " << Result.GoalName << "\n";
  Out.precision(6);
  Out << "seconds " << std::fixed << Result.Seconds << "\n";
  Out << "minimal-size " << Result.MinimalSize << "\n";
  Out << "multisets " << Result.MultisetsConsidered << " "
      << Result.MultisetsSkipped << " " << Result.MultisetsRun << "\n";
  Out << "queries " << Result.SynthesisQueries << " "
      << Result.VerificationQueries << " " << Result.Counterexamples << "\n";
  Out << "prescreen " << Result.PrescreenKills << " "
      << Result.PrescreenInconclusive << "\n";
  Out << "patterns " << Result.Patterns.size() << "\n";
  for (const Graph &Pattern : Result.Patterns) {
    Out << "pattern\n";
    Out << printGraph(Pattern);
    Out << "endpattern\n";
  }
  Out << EndLine << "\n";
  return Out.str();
}

std::optional<GoalSynthesisResult>
SynthesisCache::deserializeResult(const std::string &Text) {
  GoalSynthesisResult Result;
  std::istringstream Stream(Text);
  std::string Line;

  if (!std::getline(Stream, Line) || trimString(Line) != MagicLine)
    return std::nullopt;

  size_t DeclaredPatterns = 0;
  bool SawPatternsField = false;
  bool SawEnd = false;
  while (std::getline(Stream, Line)) {
    std::string Trimmed = trimString(Line);
    if (Trimmed.empty())
      continue;
    if (Trimmed == EndLine) {
      SawEnd = true;
      break;
    }
    if (startsWith(Trimmed, "goal ")) {
      Result.GoalName = trimString(Trimmed.substr(5));
    } else if (startsWith(Trimmed, "seconds ")) {
      Result.Seconds = std::atof(Trimmed.substr(8).c_str());
    } else if (startsWith(Trimmed, "minimal-size ")) {
      Result.MinimalSize =
          static_cast<unsigned>(std::atoll(Trimmed.substr(13).c_str()));
    } else if (startsWith(Trimmed, "multisets ")) {
      std::istringstream Fields(Trimmed.substr(10));
      if (!(Fields >> Result.MultisetsConsidered >> Result.MultisetsSkipped >>
            Result.MultisetsRun))
        return std::nullopt;
    } else if (startsWith(Trimmed, "queries ")) {
      std::istringstream Fields(Trimmed.substr(8));
      if (!(Fields >> Result.SynthesisQueries >> Result.VerificationQueries >>
            Result.Counterexamples))
        return std::nullopt;
    } else if (startsWith(Trimmed, "prescreen ")) {
      std::istringstream Fields(Trimmed.substr(10));
      if (!(Fields >> Result.PrescreenKills >> Result.PrescreenInconclusive))
        return std::nullopt;
    } else if (startsWith(Trimmed, "patterns ")) {
      DeclaredPatterns =
          static_cast<size_t>(std::atoll(Trimmed.substr(9).c_str()));
      SawPatternsField = true;
    } else if (Trimmed == "pattern") {
      std::string GraphText;
      bool Terminated = false;
      while (std::getline(Stream, Line)) {
        if (trimString(Line) == "endpattern") {
          Terminated = true;
          break;
        }
        GraphText += Line + "\n";
      }
      if (!Terminated)
        return std::nullopt;
      std::string ParseError;
      std::optional<Graph> Pattern = parseGraph(GraphText, &ParseError);
      if (!Pattern)
        return std::nullopt;
      Result.Patterns.push_back(std::move(*Pattern));
    } else {
      return std::nullopt; // Unknown field: likely corruption.
    }
  }

  // A shard is valid only if fully terminated and internally
  // consistent; anything else is treated as a miss, not an error.
  if (!SawEnd || !SawPatternsField || Result.GoalName.empty() ||
      Result.Patterns.size() != DeclaredPatterns)
    return std::nullopt;
  Result.Complete = true; // Only complete results are ever stored.
  return Result;
}

std::optional<GoalSynthesisResult>
SynthesisCache::lookup(const std::string &Key) const {
  if (!Usable)
    return std::nullopt;
  std::ifstream In(shardPath(Key));
  if (!In)
    return std::nullopt;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::optional<GoalSynthesisResult> Result =
      deserializeResult(Buffer.str());
  if (!Result)
    Statistics::get().add("cache.corrupt_shards");
  return Result;
}

bool SynthesisCache::store(const std::string &Key,
                           const GoalSynthesisResult &Result) const {
  if (!Usable || !Result.Complete)
    return false;

  // Unique temp file in the same directory, published atomically.
  static std::atomic<uint64_t> Counter{0};
  std::string TempPath = Directory + "/." + Key + ".tmp." +
                         std::to_string(::getpid()) + "." +
                         std::to_string(Counter.fetch_add(1));
  {
    std::ofstream Out(TempPath);
    if (!Out)
      return false;
    Out << serializeResult(Result);
    if (!Out) {
      std::error_code EC;
      std::filesystem::remove(TempPath, EC);
      return false;
    }
  }
  std::error_code EC;
  std::filesystem::rename(TempPath, shardPath(Key), EC);
  if (EC) {
    std::filesystem::remove(TempPath, EC);
    return false;
  }
  appendIndexLine(Key, Result);
  return true;
}

void SynthesisCache::appendIndexLine(const std::string &Key,
                                     const GoalSynthesisResult &Result) const {
  // Advisory only: one line per store, append mode, failures ignored.
  std::ofstream Index(Directory + "/index.log", std::ios::app);
  if (!Index)
    return;
  Index << Key << " " << Result.GoalName << " " << Result.Patterns.size()
        << " " << formatDouble(Result.Seconds, 3) << "\n";
}
