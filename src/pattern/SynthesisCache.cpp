//===- SynthesisCache.cpp - Persistent synthesis result cache -----------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "pattern/SynthesisCache.h"

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "support/AtomicFile.h"
#include "support/FaultInjection.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

using namespace selgen;

namespace {
constexpr const char *MagicLine = "selgen-cache v2";
constexpr const char *EndLine = "end";
} // namespace

std::string SynthesisCache::defaultDirectory() {
  if (const char *Env = std::getenv("SELGEN_CACHE_DIR"))
    if (*Env)
      return Env;
  if (const char *Xdg = std::getenv("XDG_CACHE_HOME"))
    if (*Xdg)
      return std::string(Xdg) + "/selgen";
  if (const char *Home = std::getenv("HOME"))
    if (*Home)
      return std::string(Home) + "/.cache/selgen";
  return ".selgen-cache";
}

SynthesisCache::SynthesisCache(std::string RootDirectory)
    : Directory(std::move(RootDirectory)) {
  Directory += "/v2";
  std::error_code EC;
  std::filesystem::create_directories(Directory, EC);
  Usable = !EC && std::filesystem::is_directory(Directory, EC);
}

std::string SynthesisCache::shardPath(const std::string &Key) const {
  return Directory + "/" + Key + ".shard";
}

std::string SynthesisCache::serializeResult(const GoalSynthesisResult &Result) {
  std::ostringstream Out;
  Out << "goal " << Result.GoalName << "\n";
  Out.precision(6);
  Out << "seconds " << std::fixed << Result.Seconds << "\n";
  Out << "minimal-size " << Result.MinimalSize << "\n";
  Out << "multisets " << Result.MultisetsConsidered << " "
      << Result.MultisetsSkipped << " " << Result.MultisetsRun << "\n";
  Out << "queries " << Result.SynthesisQueries << " "
      << Result.VerificationQueries << " " << Result.Counterexamples << "\n";
  Out << "prescreen " << Result.PrescreenKills << " "
      << Result.PrescreenInconclusive << "\n";
  // The cost vector of the goal's emission recipe. Written whenever
  // derived; readers tolerate its absence (pre-cost shards), in which
  // case the builder re-derives.
  if (Result.HasCost)
    Out << "cost " << Result.CostInstructions << " " << Result.CostLatency
        << " " << Result.CostSize << "\n";
  Out << "patterns " << Result.Patterns.size() << "\n";
  for (const Graph &Pattern : Result.Patterns) {
    Out << "pattern\n";
    Out << printGraph(Pattern);
    Out << "endpattern\n";
  }
  Out << EndLine << "\n";

  // The v2 frame: magic, then a checksum line covering the exact body
  // bytes. A torn write (short body) fails the length check; a flipped
  // bit fails the CRC; either way the reader sees "corrupt", never a
  // silently wrong result.
  std::string Body = Out.str();
  return std::string(MagicLine) + "\ncrc " + crc32Hex(Body) + " " +
         std::to_string(Body.size()) + "\n" + Body;
}

std::optional<GoalSynthesisResult>
SynthesisCache::deserializeResult(const std::string &Text) {
  // Frame validation: magic line, checksum line, then the body whose
  // length and CRC-32 must match the checksum line exactly (trailing
  // garbage after the body is corruption too).
  size_t MagicEnd = Text.find('\n');
  if (MagicEnd == std::string::npos ||
      trimString(Text.substr(0, MagicEnd)) != MagicLine)
    return std::nullopt;
  size_t CrcEnd = Text.find('\n', MagicEnd + 1);
  if (CrcEnd == std::string::npos)
    return std::nullopt;
  std::string CrcLine = trimString(Text.substr(MagicEnd + 1, CrcEnd - MagicEnd - 1));
  if (!startsWith(CrcLine, "crc "))
    return std::nullopt;
  std::istringstream CrcFields(CrcLine.substr(4));
  std::string CrcHex;
  uint64_t BodyLength = 0;
  if (!(CrcFields >> CrcHex >> BodyLength))
    return std::nullopt;
  std::string Body = Text.substr(CrcEnd + 1);
  if (Body.size() != BodyLength || crc32Hex(Body) != CrcHex)
    return std::nullopt;

  GoalSynthesisResult Result;
  std::istringstream Stream(Body);
  std::string Line;

  size_t DeclaredPatterns = 0;
  bool SawPatternsField = false;
  bool SawEnd = false;
  while (std::getline(Stream, Line)) {
    std::string Trimmed = trimString(Line);
    if (Trimmed.empty())
      continue;
    if (Trimmed == EndLine) {
      SawEnd = true;
      break;
    }
    if (startsWith(Trimmed, "goal ")) {
      Result.GoalName = trimString(Trimmed.substr(5));
    } else if (startsWith(Trimmed, "seconds ")) {
      Result.Seconds = std::atof(Trimmed.substr(8).c_str());
    } else if (startsWith(Trimmed, "minimal-size ")) {
      Result.MinimalSize =
          static_cast<unsigned>(std::atoll(Trimmed.substr(13).c_str()));
    } else if (startsWith(Trimmed, "multisets ")) {
      std::istringstream Fields(Trimmed.substr(10));
      if (!(Fields >> Result.MultisetsConsidered >> Result.MultisetsSkipped >>
            Result.MultisetsRun))
        return std::nullopt;
    } else if (startsWith(Trimmed, "queries ")) {
      std::istringstream Fields(Trimmed.substr(8));
      if (!(Fields >> Result.SynthesisQueries >> Result.VerificationQueries >>
            Result.Counterexamples))
        return std::nullopt;
    } else if (startsWith(Trimmed, "prescreen ")) {
      std::istringstream Fields(Trimmed.substr(10));
      if (!(Fields >> Result.PrescreenKills >> Result.PrescreenInconclusive))
        return std::nullopt;
    } else if (startsWith(Trimmed, "cost ")) {
      std::istringstream Fields(Trimmed.substr(5));
      if (!(Fields >> Result.CostInstructions >> Result.CostLatency >>
            Result.CostSize))
        return std::nullopt;
      Result.HasCost = true;
    } else if (startsWith(Trimmed, "patterns ")) {
      DeclaredPatterns =
          static_cast<size_t>(std::atoll(Trimmed.substr(9).c_str()));
      SawPatternsField = true;
    } else if (Trimmed == "pattern") {
      std::string GraphText;
      bool Terminated = false;
      while (std::getline(Stream, Line)) {
        if (trimString(Line) == "endpattern") {
          Terminated = true;
          break;
        }
        GraphText += Line + "\n";
      }
      if (!Terminated)
        return std::nullopt;
      std::string ParseError;
      std::optional<Graph> Pattern = parseGraph(GraphText, &ParseError);
      if (!Pattern)
        return std::nullopt;
      Result.Patterns.push_back(std::move(*Pattern));
    } else {
      return std::nullopt; // Unknown field: likely corruption.
    }
  }

  // A shard is valid only if fully terminated and internally
  // consistent; anything else is treated as a miss, not an error.
  if (!SawEnd || !SawPatternsField || Result.GoalName.empty() ||
      Result.Patterns.size() != DeclaredPatterns)
    return std::nullopt;
  Result.Complete = true; // Only complete results are ever stored.
  return Result;
}

std::optional<GoalSynthesisResult>
SynthesisCache::lookup(const std::string &Key) const {
  if (!Usable)
    return std::nullopt;
  std::optional<std::string> Contents = readFileToString(shardPath(Key));
  if (!Contents)
    return std::nullopt;
  // Fault hook: simulate a corrupted read (bad sector, torn page).
  if (FaultInjector::get().shouldFire("shard_read") && !Contents->empty())
    Contents->resize(Contents->size() / 2);
  std::optional<GoalSynthesisResult> Result = deserializeResult(*Contents);
  if (!Result) {
    // Quarantine the shard so later runs are not charged the repeated
    // read-and-reject, and the evidence survives for inspection.
    Statistics::get().add("cache.corrupt_shards");
    quarantineFile(shardPath(Key));
  }
  return Result;
}

bool SynthesisCache::store(const std::string &Key,
                           const GoalSynthesisResult &Result) const {
  if (!Usable || !Result.Complete)
    return false;

  std::string Contents = serializeResult(Result);
  // Fault hook: publish a torn shard, as a crashed or buggy writer
  // without the atomic-rename discipline would. Readers must detect
  // and quarantine it, never crash or trust it.
  if (FaultInjector::get().shouldFire("shard_truncate"))
    Contents.resize(Contents.size() / 2);
  if (!writeFileAtomic(shardPath(Key), Contents))
    return false;
  appendIndexLine(Key, Result);
  return true;
}

void SynthesisCache::appendIndexLine(const std::string &Key,
                                     const GoalSynthesisResult &Result) const {
  // Advisory only: one line per store, append mode, failures ignored.
  std::ofstream Index(Directory + "/index.log", std::ios::app);
  if (!Index)
    return;
  Index << Key << " " << Result.GoalName << " " << Result.Patterns.size()
        << " " << formatDouble(Result.Seconds, 3) << "\n";
}
