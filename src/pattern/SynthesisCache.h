//===- SynthesisCache.h - Persistent synthesis result cache ------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A content-addressed, on-disk cache of per-goal synthesis results.
/// Rule-library synthesis is embarrassingly parallel but expensive
/// (hours of Z3 time at paper scale, Section 5.5); since the pattern
/// set for a goal is a pure function of (goal semantics, data width,
/// synthesis options, encoder version), solved goals can be reused
/// across runs, machines, and CI jobs.
///
/// Layout: a versioned directory (`<dir>/v2/`) of per-goal shard files
/// named by cache key (`<key>.shard`), plus an append-only advisory
/// index (`index.log`). Each shard is a checksummed text record: a
/// magic line, a `crc <hex> <length>` frame line, then the body
/// (header fields, serialized pattern graphs, explicit `end` trailer).
/// Lookups never trust a shard blindly — a length or CRC-32 mismatch,
/// a missing trailer, a pattern-count mismatch, or a parse error all
/// degrade to a cache miss, the offending shard is quarantined to
/// `<shard>.bad` (counted under "cache.corrupt_shards"), and the goal
/// is simply re-synthesized. Truncated or corrupt shards can therefore
/// never poison or abort a build.
///
/// Concurrency and crash safety: writers publish through
/// writeFileAtomic (unique temp file, full write, fsync, atomic
/// rename), so concurrent builders (or concurrent CI jobs sharing a
/// cache volume) can race freely and a SIGKILL mid-store never leaves
/// a half-written shard under the final name. The index is advisory
/// only and not required for correctness.
///
/// Only *complete* results (no budget/timeout casualties) are stored:
/// an incomplete pattern set depends on the time budget and would leak
/// that nondeterminism into later runs.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_PATTERN_SYNTHESISCACHE_H
#define SELGEN_PATTERN_SYNTHESISCACHE_H

#include "synth/Synthesizer.h"

#include <optional>
#include <string>

namespace selgen {

/// On-disk store of GoalSynthesisResults, addressed by cache key (see
/// synthesisCacheKey in synth/SpecFingerprint.h).
class SynthesisCache {
public:
  /// Opens (and creates, if needed) the cache under \p Directory.
  explicit SynthesisCache(std::string Directory);

  /// The default cache location: $SELGEN_CACHE_DIR if set, else
  /// $XDG_CACHE_HOME/selgen, else $HOME/.cache/selgen, else
  /// ".selgen-cache" in the working directory.
  static std::string defaultDirectory();

  const std::string &directory() const { return Directory; }

  /// False if the cache directory could not be created; lookups and
  /// stores on an unusable cache are no-ops.
  bool usable() const { return Usable; }

  /// Returns the cached result for \p Key, or std::nullopt on miss
  /// (absent, unreadable, or corrupt shard). Corrupt shards are
  /// quarantined to `<shard>.bad` and counted, never fatal.
  std::optional<GoalSynthesisResult> lookup(const std::string &Key) const;

  /// Stores \p Result under \p Key via fsync'd temp file + atomic
  /// rename. Incomplete results are rejected. Returns true if the
  /// shard was published.
  bool store(const std::string &Key, const GoalSynthesisResult &Result) const;

  /// Path of the shard file for \p Key (exists only after a store).
  std::string shardPath(const std::string &Key) const;

  /// Serialization of one result record (exposed for tests).
  static std::string serializeResult(const GoalSynthesisResult &Result);
  static std::optional<GoalSynthesisResult>
  deserializeResult(const std::string &Text);

private:
  std::string Directory; ///< The versioned subdirectory (<root>/v2).
  bool Usable = false;   ///< False if the directory cannot be created.

  void appendIndexLine(const std::string &Key,
                       const GoalSynthesisResult &Result) const;
};

} // namespace selgen

#endif // SELGEN_PATTERN_SYNTHESISCACHE_H
