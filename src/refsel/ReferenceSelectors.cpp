//===- ReferenceSelectors.cpp - "State of the art" stand-ins -------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "refsel/ReferenceSelectors.h"

#include "ir/Normalizer.h"

using namespace selgen;

namespace {

/// Small helper for writing rule patterns by hand. All patterns are
/// normalized before they enter the library, since the compilers they
/// model only ever see normalized IR.
class RuleSetBuilder {
public:
  RuleSetBuilder(PatternDatabase &Database, unsigned Width)
      : Database(Database), Width(Width) {}

  unsigned W() const { return Width; }

  /// Adds a rule with value arguments only.
  void rule(const std::string &GoalName, unsigned NumArgs,
            const std::function<std::vector<NodeRef>(Graph &)> &Build) {
    std::vector<Sort> Sorts(NumArgs, Sort::value(Width));
    addRule(GoalName, std::move(Sorts), Build);
  }

  /// Adds a rule whose first argument is the memory token.
  void memRule(const std::string &GoalName, unsigned NumValueArgs,
               const std::function<std::vector<NodeRef>(Graph &)> &Build) {
    std::vector<Sort> Sorts = {Sort::memory()};
    for (unsigned I = 0; I < NumValueArgs; ++I)
      Sorts.push_back(Sort::value(Width));
    addRule(GoalName, std::move(Sorts), Build);
  }

private:
  PatternDatabase &Database;
  unsigned Width;

  void addRule(const std::string &GoalName, std::vector<Sort> Sorts,
               const std::function<std::vector<NodeRef>(Graph &)> &Build) {
    Graph Pattern(Width, std::move(Sorts));
    Pattern.setResults(Build(Pattern));
    Database.add(GoalName, normalizeGraph(Pattern));
  }
};

/// The rules every mainstream backend has: one rule per plain
/// instruction form.
void addCommonRules(RuleSetBuilder &B) {
  unsigned W = B.W();

  B.rule("mov_ri", 1, [](Graph &G) {
    return std::vector<NodeRef>{G.arg(0)};
  });

  const std::pair<const char *, Opcode> Binaries[] = {
      {"add_rr", Opcode::Add}, {"sub_rr", Opcode::Sub},
      {"and_rr", Opcode::And}, {"or_rr", Opcode::Or},
      {"xor_rr", Opcode::Xor}, {"imul_rr", Opcode::Mul}};
  for (const auto &[Name, Op] : Binaries)
    B.rule(Name, 2, [Op = Op](Graph &G) {
      return std::vector<NodeRef>{
          G.createBinary(Op, G.arg(0), G.arg(1))};
    });

  B.rule("neg_r", 1, [](Graph &G) {
    return std::vector<NodeRef>{G.createUnary(Opcode::Minus, G.arg(0))};
  });
  B.rule("not_r", 1, [](Graph &G) {
    return std::vector<NodeRef>{G.createUnary(Opcode::Not, G.arg(0))};
  });

  const std::pair<const char *, Opcode> Shifts[] = {
      {"shl_rc", Opcode::Shl}, {"shr_rc", Opcode::Shr},
      {"sar_rc", Opcode::Shrs}};
  for (const auto &[Name, Op] : Shifts)
    B.rule(Name, 2, [Op = Op](Graph &G) {
      return std::vector<NodeRef>{
          G.createBinary(Op, G.arg(0), G.arg(1))};
    });

  B.memRule("mov_load_b", 1, [](Graph &G) {
    Node *Load = G.createLoad(G.arg(0), G.arg(1));
    return std::vector<NodeRef>{NodeRef(Load, 0), NodeRef(Load, 1)};
  });
  B.memRule("mov_store_b", 2, [](Graph &G) {
    return std::vector<NodeRef>{
        G.createStore(G.arg(0), G.arg(1), G.arg(2))};
  });

  for (CondCode CC : relationCondCodes()) {
    Relation Rel = relationForCondCode(CC);
    B.rule(std::string("cmp_j") + condCodeName(CC), 2, [Rel](Graph &G) {
      Node *Jump = G.createCond(G.createCmp(Rel, G.arg(0), G.arg(1)));
      return std::vector<NodeRef>{NodeRef(Jump, 0), NodeRef(Jump, 1)};
    });
    B.rule(std::string("cmov") + condCodeName(CC), 4, [Rel](Graph &G) {
      return std::vector<NodeRef>{G.createMux(
          G.createCmp(Rel, G.arg(0), G.arg(1)), G.arg(2), G.arg(3))};
    });
  }
  (void)W;
}

} // namespace

PatternDatabase selgen::buildGnuLikeRules(unsigned Width) {
  PatternDatabase Database;
  RuleSetBuilder B(Database, Width);
  addCommonRules(B);

  // Immediate forms of the two-operand arithmetic family.
  const std::pair<const char *, Opcode> ImmediateForms[] = {
      {"add_ri", Opcode::Add},
      {"and_ri", Opcode::And},
      {"or_ri", Opcode::Or},
      {"xor_ri", Opcode::Xor}};
  for (const auto &[Name, Op] : ImmediateForms)
    B.rule(Name, 2, [Op = Op](Graph &G) {
      return std::vector<NodeRef>{G.createBinary(Op, G.arg(0), G.arg(1))};
    });

  // Immediate shift forms.
  B.rule("shl_ri", 2, [](Graph &G) {
    return std::vector<NodeRef>{
        G.createBinary(Opcode::Shl, G.arg(0), G.arg(1))};
  });
  B.rule("sar_ri", 2, [](Graph &G) {
    return std::vector<NodeRef>{
        G.createBinary(Opcode::Shrs, G.arg(0), G.arg(1))};
  });

  // The classic blsr idiom x & (x - 1) (paper Section 7.4: both
  // compilers support it).
  B.rule("blsr", 1, [](Graph &G) {
    NodeRef MinusOne = G.createConst(BitValue::allOnes(G.width()));
    return std::vector<NodeRef>{G.createBinary(
        Opcode::And, G.arg(0),
        G.createBinary(Opcode::Add, G.arg(0), MinusOne))};
  });

  // inc/dec.
  B.rule("inc_r", 1, [](Graph &G) {
    return std::vector<NodeRef>{G.createBinary(
        Opcode::Add, G.arg(0), G.createConst(BitValue(G.width(), 1)))};
  });
  B.rule("dec_r", 1, [](Graph &G) {
    return std::vector<NodeRef>{G.createBinary(
        Opcode::Add, G.arg(0),
        G.createConst(BitValue::allOnes(G.width())))};
  });

  // test x, y; je / jne.
  for (CondCode CC : {CondCode::E, CondCode::NE}) {
    Relation Rel = relationForCondCode(CC);
    B.rule(std::string("test_j") + condCodeName(CC), 2, [Rel](Graph &G) {
      NodeRef Masked = G.createBinary(Opcode::And, G.arg(0), G.arg(1));
      Node *Jump = G.createCond(
          G.createCmp(Rel, Masked, G.createConst(
                                       BitValue::zero(G.width()))));
      return std::vector<NodeRef>{NodeRef(Jump, 0), NodeRef(Jump, 1)};
    });
  }

  // Displacement loads/stores.
  B.memRule("mov_load_bd", 2, [](Graph &G) {
    Node *Load = G.createLoad(
        G.arg(0), G.createBinary(Opcode::Add, G.arg(1), G.arg(2)));
    return std::vector<NodeRef>{NodeRef(Load, 0), NodeRef(Load, 1)};
  });
  B.memRule("mov_store_bd", 3, [](Graph &G) {
    return std::vector<NodeRef>{G.createStore(
        G.arg(0), G.createBinary(Opcode::Add, G.arg(1), G.arg(2)),
        G.arg(3))};
  });

  return Database;
}

PatternDatabase selgen::buildClangLikeRules(unsigned Width) {
  PatternDatabase Database;
  RuleSetBuilder B(Database, Width);
  addCommonRules(B);

  // Immediate arithmetic (same family as GnuLike, minus xor_ri — real
  // rule sets drift apart in exactly such details).
  const std::pair<const char *, Opcode> ImmediateForms[] = {
      {"add_ri", Opcode::Add},
      {"and_ri", Opcode::And},
      {"or_ri", Opcode::Or}};
  for (const auto &[Name, Op] : ImmediateForms)
    B.rule(Name, 2, [Op = Op](Graph &G) {
      return std::vector<NodeRef>{G.createBinary(Op, G.arg(0), G.arg(1))};
    });
  B.rule("shl_ri", 2, [](Graph &G) {
    return std::vector<NodeRef>{
        G.createBinary(Opcode::Shl, G.arg(0), G.arg(1))};
  });
  B.rule("shr_ri", 2, [](Graph &G) {
    return std::vector<NodeRef>{
        G.createBinary(Opcode::Shr, G.arg(0), G.arg(1))};
  });

  // BMI idioms: blsr, andn, blsi (but not blsmsk).
  B.rule("blsr", 1, [](Graph &G) {
    NodeRef MinusOne = G.createConst(BitValue::allOnes(G.width()));
    return std::vector<NodeRef>{G.createBinary(
        Opcode::And, G.arg(0),
        G.createBinary(Opcode::Add, G.arg(0), MinusOne))};
  });
  B.rule("andn", 2, [](Graph &G) {
    return std::vector<NodeRef>{G.createBinary(
        Opcode::And, G.createUnary(Opcode::Not, G.arg(0)), G.arg(1))};
  });
  B.rule("blsi", 1, [](Graph &G) {
    return std::vector<NodeRef>{G.createBinary(
        Opcode::And, G.arg(0), G.createUnary(Opcode::Minus, G.arg(0)))};
  });

  // setcc patterns.
  for (CondCode CC : relationCondCodes()) {
    Relation Rel = relationForCondCode(CC);
    B.rule(std::string("set") + condCodeName(CC), 2, [Rel](Graph &G) {
      return std::vector<NodeRef>{
          G.createMux(G.createCmp(Rel, G.arg(0), G.arg(1)),
                      G.createConst(BitValue(G.width(), 1)),
                      G.createConst(BitValue::zero(G.width())))};
    });
  }

  // Source addressing mode for add (LLVM folds loads aggressively).
  B.memRule("add_rm_b", 2, [](Graph &G) {
    Node *Load = G.createLoad(G.arg(0), G.arg(1));
    return std::vector<NodeRef>{
        NodeRef(Load, 0),
        G.createBinary(Opcode::Add, G.arg(2), NodeRef(Load, 1))};
  });

  // Compare against immediate.
  for (CondCode CC : {CondCode::E, CondCode::NE, CondCode::L, CondCode::GE}) {
    Relation Rel = relationForCondCode(CC);
    B.rule(std::string("cmpi_j") + condCodeName(CC), 2, [Rel](Graph &G) {
      Node *Jump = G.createCond(G.createCmp(Rel, G.arg(0), G.arg(1)));
      return std::vector<NodeRef>{NodeRef(Jump, 0), NodeRef(Jump, 1)};
    });
  }

  return Database;
}

namespace {

/// A GeneratedSelector with a different display name.
class NamedReferenceSelector : public GeneratedSelector {
public:
  NamedReferenceSelector(std::string SelectorName,
                         const PatternDatabase &Rules,
                         const GoalLibrary &Goals)
      : GeneratedSelector(Rules, Goals),
        SelectorName(std::move(SelectorName)) {}

  std::string name() const override { return SelectorName; }

private:
  std::string SelectorName;
};

} // namespace

std::unique_ptr<InstructionSelector>
selgen::makeReferenceSelector(const std::string &Name,
                              const PatternDatabase &Rules,
                              const GoalLibrary &Goals) {
  return std::make_unique<NamedReferenceSelector>(Name, Rules, Goals);
}
