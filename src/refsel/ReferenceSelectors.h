//===- ReferenceSelectors.h - "State of the art" stand-ins -------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stand-ins for the compilers under test in the paper's Section 7.4
/// experiment (GCC 7.2 and Clang 5.0). We cannot ship those compilers,
/// so we model what the experiment needs from them: rule-based
/// instruction selectors with *fixed, incomplete* pattern libraries —
/// each with the "obvious" one-rule-per-instruction set plus a
/// different handful of idioms, the way real backends accumulate
/// pattern coverage. The missing-pattern harness compiles every
/// synthesized pattern with these selectors and counts the patterns
/// each fails to map to the optimal instruction sequence.
///
/// Both rule sets are hand-written here (not synthesized), mirroring
/// how production md/td files come to be.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_REFSEL_REFERENCESELECTORS_H
#define SELGEN_REFSEL_REFERENCESELECTORS_H

#include "isel/GeneratedSelector.h"
#include "pattern/PatternDatabase.h"
#include "x86/Goals.h"

#include <memory>

namespace selgen {

/// The hand-maintained rule library of the GCC-like reference
/// compiler: obvious per-instruction rules, lea folding for base+index,
/// the classic blsr idiom, and test-against-zero jumps.
PatternDatabase buildGnuLikeRules(unsigned Width);

/// The hand-maintained rule library of the Clang-like reference
/// compiler: obvious rules, andn and blsi idioms, setcc patterns, and
/// source addressing modes for add.
PatternDatabase buildClangLikeRules(unsigned Width);

/// Wraps a reference rule library in a selector. \p Goals must outlive
/// the selector.
std::unique_ptr<InstructionSelector>
makeReferenceSelector(const std::string &Name, const PatternDatabase &Rules,
                      const GoalLibrary &Goals);

} // namespace selgen

#endif // SELGEN_REFSEL_REFERENCESELECTORS_H
