//===- InstrSpec.cpp - Semantic instruction models ---------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "semantics/InstrSpec.h"

#include "support/Error.h"

using namespace selgen;

z3::sort SemanticsContext::smtSort(const Sort &S) const {
  switch (S.Kind) {
  case SortKind::Value:
    return Smt.ctx().bv_sort(S.Width);
  case SortKind::Bool:
    return Smt.ctx().bool_sort();
  case SortKind::Memory:
    return Smt.ctx().bv_sort(Memory ? Memory->mvalueWidth() : 1);
  }
  SELGEN_UNREACHABLE("bad sort kind");
}

z3::expr SemanticsContext::freshConst(const std::string &Name,
                                      const Sort &S) const {
  return Smt.ctx().constant(Name.c_str(), smtSort(S));
}

InstrSpec::InstrSpec(std::string Name, std::vector<Sort> ArgSorts,
                     std::vector<Sort> InternalSorts,
                     std::vector<Sort> ResultSorts,
                     std::vector<ArgRole> ArgRoles)
    : Name(std::move(Name)), ArgSorts(std::move(ArgSorts)),
      InternalSorts(std::move(InternalSorts)),
      ResultSorts(std::move(ResultSorts)), ArgRoles(std::move(ArgRoles)) {
  assert((this->ArgRoles.empty() ||
          this->ArgRoles.size() == this->ArgSorts.size()) &&
         "role list must match the argument list");
}

InstrSpec::~InstrSpec() = default;

z3::expr InstrSpec::precondition(SemanticsContext &Context,
                                 const std::vector<z3::expr> &,
                                 const std::vector<z3::expr> &) const {
  return Context.Smt.boolVal(true);
}

std::vector<z3::expr>
InstrSpec::validPointers(SmtContext &, unsigned,
                         const std::vector<z3::expr> &) const {
  return {};
}

std::optional<std::vector<BitValue>>
InstrSpec::computeResultsConcrete(unsigned,
                                  const std::vector<BitValue> &) const {
  return std::nullopt;
}

bool InstrSpec::accessesMemory() const {
  for (const Sort &S : ArgSorts)
    if (S.isMemory())
      return true;
  for (const Sort &S : ResultSorts)
    if (S.isMemory())
      return true;
  return false;
}

LambdaSpec::LambdaSpec(std::string Name, std::vector<Sort> ArgSorts,
                       std::vector<Sort> ResultSorts,
                       std::vector<ArgRole> ArgRoles, ResultsFn Results,
                       PointersFn Pointers, ConcreteFn Concrete)
    : InstrSpec(std::move(Name), std::move(ArgSorts), /*InternalSorts=*/{},
                std::move(ResultSorts), std::move(ArgRoles)),
      Results(std::move(Results)), Pointers(std::move(Pointers)),
      Concrete(std::move(Concrete)) {}

std::vector<z3::expr>
LambdaSpec::computeResults(SemanticsContext &Context,
                           const std::vector<z3::expr> &Args,
                           [[maybe_unused]] const std::vector<z3::expr>
                               &Internals) const {
  assert(Internals.empty() && "goal instructions carry no internals");
  return Results(Context, Args);
}

std::vector<z3::expr>
LambdaSpec::validPointers(SmtContext &Smt, unsigned Width,
                          const std::vector<z3::expr> &Args) const {
  if (!Pointers)
    return {};
  return Pointers(Smt, Width, Args);
}

std::optional<std::vector<BitValue>>
LambdaSpec::computeResultsConcrete(unsigned Width,
                                   const std::vector<BitValue> &Args) const {
  if (!Concrete)
    return std::nullopt;
  return Concrete(Width, Args);
}
