//===- InstrSpec.h - Semantic instruction models -----------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The semantic model of an instruction (paper Section 4): an
/// interface given by the argument, internal-attribute, and result
/// sorts (Sa, Si, Sr), a precondition P, and a postcondition Q. Q is
/// represented functionally — computeResults() yields the result
/// expressions in terms of arguments and internal attributes — which
/// the synthesizer turns into the relational Q by equating with result
/// variables.
///
/// Both the IR operations (semantics/IrSemantics) and the machine
/// instructions (x86/Goals) are InstrSpecs; the synthesizer treats
/// them uniformly.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SEMANTICS_INSTRSPEC_H
#define SELGEN_SEMANTICS_INSTRSPEC_H

#include "ir/Opcode.h"
#include "semantics/MemoryModel.h"
#include "smt/SmtContext.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace selgen {

/// How an argument of a goal instruction is matched by the generated
/// instruction selector. Synthesis itself ignores roles; the code
/// generator uses them (e.g. an Imm argument must be bound to an IR
/// Const node).
enum class ArgRole {
  Reg,  ///< Any value in a register.
  Imm,  ///< Must be an IR constant (instruction immediate).
  Mem,  ///< The memory chain token.
  Addr, ///< A pointer value (address computation input).
};

/// Everything the synthesizer needs to know to build formulas for one
/// instantiation of an instruction.
struct SemanticsContext {
  SmtContext &Smt;
  unsigned Width;            ///< Data width W (8/16/32).
  const MemoryModel *Memory; ///< Goal-specific; may be memory-free.

  /// Side conditions collected while building IR memory operations:
  /// the V+ ⊆ V constraints of the paper (Sections 4.1/5.2). The
  /// synthesis query asserts their conjunction; the verification query
  /// may negate it (condition (3)).
  std::vector<z3::expr> RangeConditions;

  /// Maps a Sort to the Z3 sort of this instantiation.
  z3::sort smtSort(const Sort &S) const;

  /// Creates a fresh constant of sort \p S.
  z3::expr freshConst(const std::string &Name, const Sort &S) const;
};

/// Semantic model of a single instruction.
class InstrSpec {
public:
  InstrSpec(std::string Name, std::vector<Sort> ArgSorts,
            std::vector<Sort> InternalSorts, std::vector<Sort> ResultSorts,
            std::vector<ArgRole> ArgRoles = {});
  virtual ~InstrSpec();

  const std::string &name() const { return Name; }

  // The interface functions Sa, Si, Sr of the paper.
  const std::vector<Sort> &argSorts() const { return ArgSorts; }
  const std::vector<Sort> &internalSorts() const { return InternalSorts; }
  const std::vector<Sort> &resultSorts() const { return ResultSorts; }

  /// Argument roles (empty = all Reg). Meaningful for goals only.
  const std::vector<ArgRole> &argRoles() const { return ArgRoles; }
  ArgRole argRole(unsigned I) const {
    return ArgRoles.empty() ? ArgRole::Reg : ArgRoles[I];
  }

  /// The precondition P(i, va, vi). True by default. Results are never
  /// needed: all our postconditions are functional.
  virtual z3::expr precondition(SemanticsContext &Context,
                                const std::vector<z3::expr> &Args,
                                const std::vector<z3::expr> &Internals) const;

  /// The functional postcondition: result expressions in terms of
  /// arguments and internal attributes. Memory-accessing IR operations
  /// append their V+ ⊆ V side conditions to Context.RangeConditions.
  virtual std::vector<z3::expr>
  computeResults(SemanticsContext &Context, const std::vector<z3::expr> &Args,
                 const std::vector<z3::expr> &Internals) const = 0;

  /// The valid pointers V(g, va) this instruction dereferences, as
  /// expressions over \p Args (paper Section 4.1). Only goal
  /// instructions override this; it feeds the MemoryModel
  /// construction, so it must not itself require a MemoryModel.
  virtual std::vector<z3::expr>
  validPointers(SmtContext &Smt, unsigned Width,
                const std::vector<z3::expr> &Args) const;

  /// Executable twin of computeResults for specs that have one: the
  /// result values on a concrete argument tuple, with no solver
  /// involved. Bool results are encoded as width-1 BitValues, memory
  /// results as M-value bit-vectors. Returns nullopt when the spec has
  /// no concrete implementation (the caller then falls back to
  /// literal-substitution + z3 simplify); only specs whose
  /// precondition is trivially true may provide one. Cross-validated
  /// against the SMT semantics in tests/test_concrete_goal_eval.cpp.
  virtual std::optional<std::vector<BitValue>>
  computeResultsConcrete(unsigned Width,
                         const std::vector<BitValue> &Args) const;

  /// True if the interface involves the memory sort.
  bool accessesMemory() const;

private:
  std::string Name;
  std::vector<Sort> ArgSorts;
  std::vector<Sort> InternalSorts;
  std::vector<Sort> ResultSorts;
  std::vector<ArgRole> ArgRoles;
};

/// A goal instruction spec built from lambdas, sparing the x86 library
/// one subclass per instruction. See x86/Goals.cpp for usage.
class LambdaSpec : public InstrSpec {
public:
  using ResultsFn = std::function<std::vector<z3::expr>(
      SemanticsContext &, const std::vector<z3::expr> &)>;
  using PointersFn = std::function<std::vector<z3::expr>(
      SmtContext &, unsigned, const std::vector<z3::expr> &)>;
  using ConcreteFn = std::function<std::vector<BitValue>(
      unsigned, const std::vector<BitValue> &)>;

  LambdaSpec(std::string Name, std::vector<Sort> ArgSorts,
             std::vector<Sort> ResultSorts, std::vector<ArgRole> ArgRoles,
             ResultsFn Results, PointersFn Pointers = nullptr,
             ConcreteFn Concrete = nullptr);

  std::vector<z3::expr>
  computeResults(SemanticsContext &Context, const std::vector<z3::expr> &Args,
                 const std::vector<z3::expr> &Internals) const override;

  std::vector<z3::expr>
  validPointers(SmtContext &Smt, unsigned Width,
                const std::vector<z3::expr> &Args) const override;

  std::optional<std::vector<BitValue>>
  computeResultsConcrete(unsigned Width,
                         const std::vector<BitValue> &Args) const override;

private:
  ResultsFn Results;
  PointersFn Pointers;
  ConcreteFn Concrete;
};

} // namespace selgen

#endif // SELGEN_SEMANTICS_INSTRSPEC_H
