//===- IrSemantics.cpp - SMT semantics of the IR operations -----------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "semantics/IrSemantics.h"

#include "support/Error.h"

#include <map>

using namespace selgen;

static std::vector<Sort> internalSortsFor(Opcode Op, unsigned Width) {
  if (Op == Opcode::Const)
    return {Sort::value(Width)};
  if (Op == Opcode::Cmp)
    return {Sort::value(4)}; // Relation code, constrained to <= 9.
  return {};
}

IrOpSpec::IrOpSpec(Opcode Op, unsigned Width)
    : InstrSpec(opcodeName(Op), opcodeArgSorts(Op, Width),
                internalSortsFor(Op, Width), opcodeResultSorts(Op, Width)),
      Op(Op), Width(Width) {}

unsigned selgen::relationCode(Relation Rel) {
  return static_cast<unsigned>(Rel);
}

Relation selgen::relationFromCode(unsigned Code) {
  assert(Code <= static_cast<unsigned>(Relation::Sge) &&
         "relation code out of range");
  return static_cast<Relation>(Code);
}

z3::expr selgen::relationExpr(Relation Rel, const z3::expr &Lhs,
                              const z3::expr &Rhs) {
  switch (Rel) {
  case Relation::Eq:
    return Lhs == Rhs;
  case Relation::Ne:
    return Lhs != Rhs;
  case Relation::Ult:
    return z3::ult(Lhs, Rhs);
  case Relation::Ule:
    return z3::ule(Lhs, Rhs);
  case Relation::Ugt:
    return z3::ugt(Lhs, Rhs);
  case Relation::Uge:
    return z3::uge(Lhs, Rhs);
  case Relation::Slt:
    return Lhs < Rhs;
  case Relation::Sle:
    return Lhs <= Rhs;
  case Relation::Sgt:
    return Lhs > Rhs;
  case Relation::Sge:
    return Lhs >= Rhs;
  }
  SELGEN_UNREACHABLE("bad relation");
}

z3::expr selgen::relationExprFromCode(SmtContext &Smt, const z3::expr &Code,
                                      const z3::expr &Lhs,
                                      const z3::expr &Rhs) {
  z3::expr Result = Smt.boolVal(false);
  for (Relation Rel : allRelations()) {
    z3::expr CodeLiteral = Smt.ctx().bv_val(relationCode(Rel), 4);
    Result = z3::ite(Code == CodeLiteral, relationExpr(Rel, Lhs, Rhs),
                     Result);
  }
  return Result;
}

z3::expr IrOpSpec::precondition(SemanticsContext &Context,
                                const std::vector<z3::expr> &Args,
                                const std::vector<z3::expr> &Internals) const {
  z3::context &Ctx = Context.Smt.ctx();
  switch (Op) {
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Shrs:
    // C shift semantics: 0 <= amount < width (unsigned comparison
    // covers the negative case).
    return z3::ult(Args[1], Ctx.bv_val(Width, Width));
  case Opcode::Cmp:
    return z3::ule(Internals[0],
                   Ctx.bv_val(relationCode(Relation::Sge), 4));
  default:
    return Context.Smt.boolVal(true);
  }
}

std::vector<z3::expr>
IrOpSpec::computeResults(SemanticsContext &Context,
                         const std::vector<z3::expr> &Args,
                         const std::vector<z3::expr> &Internals) const {
  z3::context &Ctx = Context.Smt.ctx();
  switch (Op) {
  case Opcode::Arg:
    SELGEN_UNREACHABLE("Arg has no semantics");
  case Opcode::Const:
    return {Internals[0]};
  case Opcode::Add:
    return {Args[0] + Args[1]};
  case Opcode::Sub:
    return {Args[0] - Args[1]};
  case Opcode::Mul:
    return {Args[0] * Args[1]};
  case Opcode::And:
    return {Args[0] & Args[1]};
  case Opcode::Or:
    return {Args[0] | Args[1]};
  case Opcode::Xor:
    return {Args[0] ^ Args[1]};
  case Opcode::Not:
    return {~Args[0]};
  case Opcode::Minus:
    return {-Args[0]};
  case Opcode::Shl:
    return {z3::shl(Args[0], Args[1])};
  case Opcode::Shr:
    return {z3::lshr(Args[0], Args[1])};
  case Opcode::Shrs:
    return {z3::ashr(Args[0], Args[1])};
  case Opcode::Load: {
    assert(Context.Memory && "Load requires a memory model");
    Context.RangeConditions.push_back(Context.Memory->inRange(Args[1]));
    // Every byte of the wide load must be a valid pointer as well;
    // loadValue chains the per-byte loads, and inRange covers each
    // byte address.
    unsigned NumBytes = Width / Context.Memory->byteWidth();
    for (unsigned I = 1; I < NumBytes; ++I)
      Context.RangeConditions.push_back(Context.Memory->inRange(
          Args[1] + Ctx.bv_val(I, Width)));
    auto [Value, NewMemory] =
        Context.Memory->loadValue(Args[0], Args[1], NumBytes);
    return {NewMemory, Value};
  }
  case Opcode::Store: {
    assert(Context.Memory && "Store requires a memory model");
    unsigned NumBytes = Width / Context.Memory->byteWidth();
    for (unsigned I = 0; I < NumBytes; ++I)
      Context.RangeConditions.push_back(Context.Memory->inRange(
          Args[1] + Ctx.bv_val(I, Width)));
    return {Context.Memory->storeValue(Args[0], Args[1], Args[2])};
  }
  case Opcode::Cmp:
    return {relationExprFromCode(Context.Smt, Internals[0], Args[0],
                                 Args[1])};
  case Opcode::Mux:
    return {z3::ite(Args[0], Args[1], Args[2])};
  case Opcode::Cond:
    return {Args[0], !Args[0]};
  }
  SELGEN_UNREACHABLE("bad opcode");
}

GraphSemantics
selgen::buildGraphSemantics(SemanticsContext &Context, const Graph &G,
                            const std::vector<z3::expr> &Args) {
  assert(Args.size() == G.numArgs() && "argument count mismatch");
  std::map<std::pair<const Node *, unsigned>, z3::expr> Values;

  GraphSemantics Result{Context.Smt.boolVal(true), {}, {}};
  size_t RangeBefore = Context.RangeConditions.size();

  for (Node *N : G.liveNodes()) {
    if (N->opcode() == Opcode::Arg) {
      Values.insert({{N, 0}, Args[N->argIndex()]});
      continue;
    }
    IrOpSpec Spec(N->opcode(), G.width());
    std::vector<z3::expr> OperandExprs;
    for (const NodeRef &Operand : N->operands())
      OperandExprs.push_back(Values.at({Operand.Def, Operand.Index}));

    std::vector<z3::expr> Internals;
    if (N->opcode() == Opcode::Const)
      Internals.push_back(Context.Smt.literal(N->constValue()));
    else if (N->opcode() == Opcode::Cmp)
      Internals.push_back(
          Context.Smt.ctx().bv_val(relationCode(N->relation()), 4));

    Result.Precondition =
        (Result.Precondition &&
         Spec.precondition(Context, OperandExprs, Internals))
            .simplify();
    std::vector<z3::expr> ResultExprs =
        Spec.computeResults(Context, OperandExprs, Internals);
    for (unsigned I = 0; I < ResultExprs.size(); ++I)
      Values.insert({{N, I}, ResultExprs[I]});
  }

  for (const NodeRef &Ref : G.results())
    Result.Results.push_back(Values.at({Ref.Def, Ref.Index}));
  Result.RangeConditions.assign(Context.RangeConditions.begin() + RangeBefore,
                                Context.RangeConditions.end());
  return Result;
}
