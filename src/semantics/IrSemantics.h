//===- IrSemantics.h - SMT semantics of the IR operations --------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// InstrSpec models for every IR template operation. These are the
/// components the synthesizer assembles into candidate patterns.
///
/// Internal attributes (paper: "values chosen at synthesis time"):
/// * Const carries its constant (sort Value(W)).
/// * Cmp carries its relation, encoded as a 4-bit code with the
///   precondition code <= 9.
///
/// Preconditions:
/// * Shl/Shr/Shrs require 0 <= amount < W (C semantics).
/// * Everything else is total. Load/Store validity is not a
///   precondition but the V+ ⊆ V side condition (see InstrSpec.h).
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SEMANTICS_IRSEMANTICS_H
#define SELGEN_SEMANTICS_IRSEMANTICS_H

#include "ir/Graph.h"
#include "semantics/InstrSpec.h"

#include <memory>

namespace selgen {

/// An InstrSpec for one IR opcode; remembers the opcode so the
/// synthesizer can reconstruct Graph nodes from solver models.
class IrOpSpec : public InstrSpec {
public:
  IrOpSpec(Opcode Op, unsigned Width);

  Opcode opcode() const { return Op; }

  z3::expr precondition(SemanticsContext &Context,
                        const std::vector<z3::expr> &Args,
                        const std::vector<z3::expr> &Internals) const override;

  std::vector<z3::expr>
  computeResults(SemanticsContext &Context, const std::vector<z3::expr> &Args,
                 const std::vector<z3::expr> &Internals) const override;

private:
  Opcode Op;
  unsigned Width;
};

/// The numeric encoding of relations used for Cmp's internal attribute.
unsigned relationCode(Relation Rel);
Relation relationFromCode(unsigned Code);

/// Symbolic comparison with a fixed relation.
z3::expr relationExpr(Relation Rel, const z3::expr &Lhs, const z3::expr &Rhs);

/// Symbolic comparison with a symbolic 4-bit relation code (an ite
/// cascade over all ten relations).
z3::expr relationExprFromCode(SmtContext &Smt, const z3::expr &Code,
                              const z3::expr &Lhs, const z3::expr &Rhs);

/// Symbolic evaluation of an entire pattern graph: the P+/Q+/V+ lift
/// of Section 5.1, computed directly on a concrete Graph (used by the
/// equivalence oracle in tests and by the missing-pattern harness; the
/// synthesizer builds the same formulas through its location-variable
/// encoding instead).
struct GraphSemantics {
  z3::expr Precondition;            ///< P+ (conjunction over operations).
  std::vector<z3::expr> Results;    ///< Result expressions.
  std::vector<z3::expr> RangeConditions; ///< V+ ⊆ V side conditions.
};

GraphSemantics buildGraphSemantics(SemanticsContext &Context, const Graph &G,
                                   const std::vector<z3::expr> &Args);

} // namespace selgen

#endif // SELGEN_SEMANTICS_IRSEMANTICS_H
