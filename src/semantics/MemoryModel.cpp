//===- MemoryModel.cpp - The paper's M-value encoding -----------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "semantics/MemoryModel.h"

#include <cassert>

using namespace selgen;

MemoryModel::MemoryModel(SmtContext &Smt,
                         std::vector<z3::expr> ValidPointers,
                         unsigned ByteWidth)
    : Smt(Smt), ValidPointers(std::move(ValidPointers)),
      ByteWidth(ByteWidth) {
  assert(ByteWidth >= 1 && "byte width must be positive");
}

unsigned MemoryModel::mvalueWidth() const {
  unsigned Width = numValidPointers() * (ByteWidth + 1);
  return Width == 0 ? 1 : Width;
}

z3::expr MemoryModel::contentsAt(const z3::expr &Memory,
                                 unsigned Index) const {
  unsigned Lo = Index * (ByteWidth + 1);
  return Memory.extract(Lo + ByteWidth - 1, Lo);
}

z3::expr MemoryModel::accessFlagAt(const z3::expr &Memory,
                                   unsigned Index) const {
  unsigned Bit = Index * (ByteWidth + 1) + ByteWidth;
  return Memory.extract(Bit, Bit);
}

/// Returns \p Memory with bits [Lo, Lo+width(Patch)-1] replaced by
/// \p Patch — the replace() helper of the paper's st definition.
static z3::expr replaceBits(const z3::expr &Memory, unsigned Lo,
                            const z3::expr &Patch) {
  unsigned Width = Memory.get_sort().bv_size();
  unsigned PatchWidth = Patch.get_sort().bv_size();
  unsigned Hi = Lo + PatchWidth - 1;
  // concat(high part, patch, low part), omitting empty parts.
  z3::expr Result = Patch;
  if (Lo > 0)
    Result = z3::concat(Result, Memory.extract(Lo - 1, 0));
  if (Hi + 1 < Width)
    Result = z3::concat(Memory.extract(Width - 1, Hi + 1), Result);
  return Result;
}

z3::expr MemoryModel::store(const z3::expr &Memory, const z3::expr &Pointer,
                            const z3::expr &Byte) const {
  assert(hasMemory() && "store in a memory-free model");
  // First-match-wins ite cascade: build from the last valid pointer
  // backwards so V[0] ends up with the highest priority.
  z3::expr Result = Memory;
  for (unsigned I = numValidPointers(); I-- > 0;) {
    unsigned Lo = I * (ByteWidth + 1);
    Result = z3::ite(Pointer == ValidPointers[I],
                     replaceBits(Memory, Lo, Byte), Result);
  }
  return Result;
}

std::pair<z3::expr, z3::expr>
MemoryModel::load(const z3::expr &Memory, const z3::expr &Pointer) const {
  assert(hasMemory() && "load in a memory-free model");
  z3::expr Value = Smt.ctx().bv_val(0, ByteWidth);
  z3::expr NewMemory = Memory;
  z3::expr One = Smt.ctx().bv_val(1, 1);
  for (unsigned I = numValidPointers(); I-- > 0;) {
    z3::expr Matches = Pointer == ValidPointers[I];
    Value = z3::ite(Matches, contentsAt(Memory, I), Value);
    unsigned FlagBit = I * (ByteWidth + 1) + ByteWidth;
    NewMemory =
        z3::ite(Matches, replaceBits(Memory, FlagBit, One), NewMemory);
  }
  return {Value, NewMemory};
}

z3::expr MemoryModel::inRange(const z3::expr &Pointer) const {
  std::vector<z3::expr> Matches;
  for (const z3::expr &Valid : ValidPointers)
    Matches.push_back(Pointer == Valid);
  return Smt.mkOr(Matches);
}

std::pair<z3::expr, z3::expr>
MemoryModel::loadValue(const z3::expr &Memory, const z3::expr &Pointer,
                       unsigned NumBytes) const {
  assert(NumBytes >= 1 && "load of zero bytes");
  unsigned PointerWidth = Pointer.get_sort().bv_size();
  z3::expr Current = Memory;
  z3::expr Value(Smt.ctx());
  for (unsigned I = 0; I < NumBytes; ++I) {
    z3::expr Address = (Pointer + Smt.ctx().bv_val(I, PointerWidth))
                           .simplify();
    auto [Byte, Next] = load(Current, Address);
    Current = Next;
    Value = I == 0 ? Byte : z3::concat(Byte, Value); // Little endian.
  }
  return {Value, Current};
}

z3::expr MemoryModel::storeValue(const z3::expr &Memory,
                                 const z3::expr &Pointer,
                                 const z3::expr &Value) const {
  unsigned ValueWidth = Value.get_sort().bv_size();
  assert(ValueWidth % ByteWidth == 0 && "store width not a byte multiple");
  unsigned PointerWidth = Pointer.get_sort().bv_size();
  z3::expr Current = Memory;
  for (unsigned I = 0; I < ValueWidth / ByteWidth; ++I) {
    z3::expr Address = (Pointer + Smt.ctx().bv_val(I, PointerWidth))
                           .simplify();
    z3::expr Byte = Value.extract((I + 1) * ByteWidth - 1, I * ByteWidth);
    Current = store(Current, Address, Byte);
  }
  return Current;
}

BitValue MemoryModel::contentsMask() const {
  BitValue Mask = BitValue::zero(mvalueWidth());
  for (unsigned I = 0; I < numValidPointers(); ++I)
    for (unsigned B = 0; B < ByteWidth; ++B)
      Mask.setBit(I * (ByteWidth + 1) + B, true);
  return Mask;
}

BitValue MemoryModel::flagsMask() const {
  BitValue Mask = BitValue::zero(mvalueWidth());
  for (unsigned I = 0; I < numValidPointers(); ++I)
    Mask.setBit(I * (ByteWidth + 1) + ByteWidth, true);
  return Mask;
}
