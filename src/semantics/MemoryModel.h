//===- MemoryModel.h - The paper's M-value encoding -------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The novel memory encoding of the paper (Section 4.1): instead of
/// the SMT theory of arrays — which the authors found to blow up the
/// solver — an M-value is a plain bit-vector that stores, for each
/// *valid pointer* of the goal instruction, one byte of memory contents
/// plus an access flag.
///
/// Layout for valid pointers V[0..n-1] and byte width w:
///   bits [i*(w+1)     .. i*(w+1)+w-1]  contents for V[i]
///   bit  [i*(w+1)+w]                    access flag for V[i]
///
/// The store function compares the pointer against the valid pointers
/// in a fixed order; only the first aliasing valid pointer is ever
/// used, which keeps the model consistent under aliasing (Section 4.1,
/// "Representation of M-Values").
///
/// A MemoryModel instance is specific to one goal instruction *and*
/// one vector of argument expressions: during CEGIS the valid pointers
/// are re-evaluated under each concrete test case ("the valid pointers
/// are not evaluated until the call to st or ld").
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SEMANTICS_MEMORYMODEL_H
#define SELGEN_SEMANTICS_MEMORYMODEL_H

#include "smt/SmtContext.h"

#include <utility>
#include <vector>

namespace selgen {

/// Builds the goal-specific M-value sort and the primitive ld/st
/// functions over it.
class MemoryModel {
public:
  /// \p ValidPointers are the pointer expressions the goal
  /// dereferences, in terms of this instantiation's argument
  /// expressions. \p ByteWidth is the width of a memory byte (w in the
  /// paper; 8 unless a test shrinks it).
  MemoryModel(SmtContext &Smt, std::vector<z3::expr> ValidPointers,
              unsigned ByteWidth = 8);

  unsigned numValidPointers() const { return ValidPointers.size(); }
  unsigned byteWidth() const { return ByteWidth; }

  /// Width of the M-value bit-vector: |V| * (w + 1), at least 1 so the
  /// sort exists even for memory-free goals.
  unsigned mvalueWidth() const;

  /// True if this goal accesses memory at all.
  bool hasMemory() const { return !ValidPointers.empty(); }

  /// The st function of the paper: returns the M-value \p Memory with
  /// the contents byte of the first valid pointer equal to \p Pointer
  /// replaced by \p Byte. If no valid pointer matches, returns
  /// \p Memory unchanged (callers rule this out via inRange).
  z3::expr store(const z3::expr &Memory, const z3::expr &Pointer,
                 const z3::expr &Byte) const;

  /// The ld function: yields the contents byte for the first matching
  /// valid pointer, plus the successor M-value with that pointer's
  /// access flag set.
  std::pair<z3::expr, z3::expr> load(const z3::expr &Memory,
                                     const z3::expr &Pointer) const;

  /// The "valid pointer" constraint (paper Sections 4.1/5.2):
  /// \p Pointer equals one of the valid pointers.
  z3::expr inRange(const z3::expr &Pointer) const;

  /// Multi-byte little-endian load of \p NumBytes bytes; chains the
  /// access flags through all byte loads.
  std::pair<z3::expr, z3::expr> loadValue(const z3::expr &Memory,
                                          const z3::expr &Pointer,
                                          unsigned NumBytes) const;

  /// Multi-byte little-endian store of \p Value (width must be a
  /// multiple of the byte width).
  z3::expr storeValue(const z3::expr &Memory, const z3::expr &Pointer,
                      const z3::expr &Value) const;

  /// Contents byte stored for valid pointer \p Index.
  z3::expr contentsAt(const z3::expr &Memory, unsigned Index) const;
  /// Access flag stored for valid pointer \p Index.
  z3::expr accessFlagAt(const z3::expr &Memory, unsigned Index) const;

  /// Bit masks over the M-value separating contents from flag bits;
  /// the iterative-CEGIS memory analysis (Section 5.4) uses these to
  /// decide whether a goal needs loads, stores, or both.
  BitValue contentsMask() const;
  BitValue flagsMask() const;

private:
  SmtContext &Smt;
  std::vector<z3::expr> ValidPointers;
  unsigned ByteWidth;
};

} // namespace selgen

#endif // SELGEN_SEMANTICS_MEMORYMODEL_H
