//===- ImageReloader.cpp - SIGHUP automaton hot reload ------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/ImageReloader.h"

#include "isel/AutomatonSelector.h"
#include "matchergen/MatcherAutomaton.h"
#include "serve/SelectionService.h"

#include <chrono>
#include <cstdio>

using namespace selgen;

ImageReloader::ImageReloader(SelectionService &Service,
                             const PreparedLibrary &Library,
                             std::string ImagePath)
    : Service(Service), Library(Library), ImagePath(std::move(ImagePath)) {}

ImageReloader::~ImageReloader() {
  drain();
  if (Worker.joinable())
    Worker.join();
}

void ImageReloader::requestReload() {
  Pending.store(true, std::memory_order_relaxed);
}

void ImageReloader::tick() {
  if (Busy.load(std::memory_order_acquire))
    return;
  if (Worker.joinable())
    Worker.join(); // Reap the finished run before starting another.
  if (!Pending.exchange(false, std::memory_order_relaxed))
    return;
  Busy.store(true, std::memory_order_release);
  Worker = std::thread([this] { workerMain(); });
}

bool ImageReloader::drain(int64_t TimeoutMs) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs);
  while (Pending.load(std::memory_order_relaxed) ||
         Busy.load(std::memory_order_acquire)) {
    tick();
    if (std::chrono::steady_clock::now() > Deadline)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (Worker.joinable())
    Worker.join();
  return true;
}

std::string ImageReloader::lastError() const {
  std::lock_guard<std::mutex> Lock(ErrorMutex);
  return LastError;
}

void ImageReloader::augmentHealth(HealthReply &Reply) const {
  Reply.Reloads = reloads();
  Reply.ReloadFailures = failures();
}

void ImageReloader::workerMain() {
  std::string Explain;
  std::unique_ptr<MappedAutomaton> Candidate =
      MatcherAutomaton::mapBinary(ImagePath, &Explain);
  if (Candidate && Explain.empty())
    Explain = automatonStalenessError(Candidate->view(), Library);
  if (!Candidate || !Explain.empty()) {
    // Refuse the candidate; the image already serving stays live.
    Failures.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> Lock(ErrorMutex);
      LastError = Explain.empty() ? "unreadable image" : Explain;
    }
    std::fprintf(stderr, "selgen-served: reload of %s refused: %s\n",
                 ImagePath.c_str(),
                 Explain.empty() ? "unreadable image" : Explain.c_str());
    Busy.store(false, std::memory_order_release);
    return;
  }
  Service.swapImage(std::shared_ptr<MappedAutomaton>(std::move(Candidate)));
  Reloads.fetch_add(1, std::memory_order_relaxed);
  std::fprintf(stderr, "selgen-served: reloaded automaton image %s\n",
               ImagePath.c_str());
  Busy.store(false, std::memory_order_release);
}
