//===- ImageReloader.h - SIGHUP automaton hot reload -------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hot reload of the serving automaton image without dropping a
/// connection. The operator regenerates the `.matb` file (same
/// library, e.g. after re-running selgen-matchergen with new layout or
/// cost tables) and sends SIGHUP; the signal handler calls
/// requestReload() — just an atomic flag, async-signal-safe — and the
/// server's event-loop tick picks it up. The expensive part (mmap,
/// header validation, fingerprint + cost staleness check against the
/// resident library) runs on a short-lived worker thread so the event
/// loop never stalls; only the final SelectionService::swapImage is a
/// mutex-protected pointer swap. A candidate that fails validation —
/// torn file, wrong fingerprint, stale cost tables — is refused with
/// the failure counted and logged, and the server keeps serving the
/// image it already has. In-flight batches always finish on the image
/// they started with (the service pins it per batch).
///
/// Publish contract: the operator must replace the image
/// *atomically* — write the new bytes to a temp file, then rename(2)
/// it over the served path. rename gives the path a fresh inode, so
/// live mappings of the old image stay intact until the last batch
/// unpins them. Rewriting or truncating the served file in place
/// instead mutates the pages batches are matching against (truncation
/// turns reads past EOF into SIGBUS) — no userspace reload scheme can
/// survive that, which is why the contract exists.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SERVE_IMAGERELOADER_H
#define SELGEN_SERVE_IMAGERELOADER_H

#include "serve/ServeProtocol.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace selgen {

class PreparedLibrary;
class SelectionService;

class ImageReloader {
public:
  /// \p ImagePath is re-read on every reload; \p Library is what each
  /// candidate image is validated against. Both must outlive this.
  ImageReloader(SelectionService &Service, const PreparedLibrary &Library,
                std::string ImagePath);
  ~ImageReloader();
  ImageReloader(const ImageReloader &) = delete;
  ImageReloader &operator=(const ImageReloader &) = delete;

  /// Marks a reload as wanted. Async-signal-safe (one atomic store);
  /// call it straight from the SIGHUP handler. Coalesces: many signals
  /// before the next tick mean one reload.
  void requestReload();

  /// Event-loop hook (ServerOptions::TickHook): reaps a finished
  /// worker and starts a new one if a reload is pending. Cheap when
  /// idle; never blocks on the reload itself.
  void tick();

  /// Blocks until no reload is pending or running (for tests and
  /// orderly shutdown). Returns false if \p TimeoutMs elapsed first.
  bool drain(int64_t TimeoutMs = 10000);

  uint64_t reloads() const {
    return Reloads.load(std::memory_order_relaxed);
  }
  uint64_t failures() const {
    return Failures.load(std::memory_order_relaxed);
  }
  /// Explanation of the most recent failed reload ("" if none failed
  /// since start). Thread-safe.
  std::string lastError() const;

  /// ServerOptions::HealthAugment adapter: fills the reload counters
  /// of \p Reply.
  void augmentHealth(HealthReply &Reply) const;

private:
  void workerMain();

  SelectionService &Service;
  const PreparedLibrary &Library;
  std::string ImagePath;

  std::atomic<bool> Pending{false};
  std::atomic<bool> Busy{false};
  std::atomic<uint64_t> Reloads{0};
  std::atomic<uint64_t> Failures{0};
  std::thread Worker;

  mutable std::mutex ErrorMutex;
  std::string LastError;
};

} // namespace selgen

#endif // SELGEN_SERVE_IMAGERELOADER_H
