//===- SelectionServer.cpp - Compile-server event loop ------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/SelectionServer.h"

#include "support/FaultInjection.h"

#include <cerrno>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace selgen;

namespace {

void setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

int64_t msSince(std::chrono::steady_clock::time_point Then) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - Then)
      .count();
}

} // namespace

SelectionServer::SelectionServer(SelectionService &Service,
                                 ServerOptions Options)
    : Service(Service), Options(std::move(Options)) {
  // The wake pipe exists from construction so requestStop() is safe to
  // call (including from a signal handler) before run() starts.
  if (::pipe(WakeFds) == 0) {
    setNonBlocking(WakeFds[0]);
    setNonBlocking(WakeFds[1]);
  }
}

SelectionServer::SelectionServer(SelectionService &Service, int InFd,
                                 int OutFd, ServerOptions Options)
    : SelectionServer(Service, std::move(Options)) {
  addConnection(InFd, OutFd);
}

SelectionServer::~SelectionServer() {
  for (auto &Entry : Connections) {
    Connection &Conn = Entry.second;
    if (Conn.OwnsFds) {
      ::close(Conn.InFd);
      if (Conn.OutFd != Conn.InFd)
        ::close(Conn.OutFd);
    }
  }
  if (WakeFds[0] >= 0)
    ::close(WakeFds[0]);
  if (WakeFds[1] >= 0)
    ::close(WakeFds[1]);
}

void SelectionServer::addConnection(int InFd, int OutFd) {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    PendingAdds.emplace_back(InFd, OutFd);
  }
  wake();
}

void SelectionServer::serveListenFd(int Fd) {
  ListenFd = Fd;
  setNonBlocking(Fd);
}

void SelectionServer::requestStop() {
  StopFlag.store(true, std::memory_order_relaxed);
  wake();
}

void SelectionServer::wake() {
  if (WakeFds[1] < 0)
    return;
  char Byte = 'w';
  // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
  while (::write(WakeFds[1], &Byte, 1) < 0 && errno == EINTR) {
  }
}

size_t SelectionServer::queueDepth() const {
  std::lock_guard<std::mutex> Lock(QueueMutex);
  return Queue.size() + Dispatching;
}

void SelectionServer::queueError(Connection &Conn, ServeErrorCode Code,
                                 uint32_t RetryMs,
                                 const std::string &Message) {
  ServeError Error;
  Error.Code = Code;
  Error.RetryAfterMs = RetryMs;
  Error.Message = Message;
  std::string Bytes = wire::encodeFrame(wire::Error, encodeServeError(Error));
  InflightBytes.fetch_add(Bytes.size(), std::memory_order_relaxed);
  Conn.Out.push(std::move(Bytes));
}

void SelectionServer::queueHealthReply(Connection &Conn) {
  HealthReply Reply;
  Reply.UptimeMs = static_cast<uint64_t>(msSince(StartTime));
  Reply.Width = Service.width();
  Reply.ImageFingerprint = Service.imageFingerprint();
  Reply.ImageGeneration = Service.imageGeneration();
  Reply.QueueDepth = queueDepth();
  Reply.Batches = Stats.Batches.load(std::memory_order_relaxed);
  Reply.Shed = Stats.Shed.load(std::memory_order_relaxed);
  Reply.Timeouts = Stats.Timeouts.load(std::memory_order_relaxed);
  if (Options.HealthAugment)
    Options.HealthAugment(Reply);
  std::string Bytes =
      wire::encodeFrame(wire::Response, encodeHealthReply(Reply));
  InflightBytes.fetch_add(Bytes.size(), std::memory_order_relaxed);
  Conn.Out.push(std::move(Bytes));
}

void SelectionServer::handleFrame(Connection &Conn,
                                  const wire::Frame &Frame) {
  if (Frame.Type == wire::Shutdown) {
    // Graceful end: stop reading, flush what is owed, then close.
    Conn.NoMoreInput = true;
    return;
  }
  if (Frame.Type != wire::Request) {
    queueError(Conn, ServeErrorCode::Unsupported, 0,
               "unexpected frame type " + std::to_string(Frame.Type));
    return;
  }
  if (isHealthRequest(Frame.Payload)) {
    // Answered inline: a readiness probe must succeed even when the
    // admission queue is full or the server is draining.
    Stats.HealthProbes.fetch_add(1, std::memory_order_relaxed);
    queueHealthReply(Conn);
    return;
  }
  if (StopFlag.load(std::memory_order_relaxed)) {
    Stats.ShutdownRejects.fetch_add(1, std::memory_order_relaxed);
    queueError(Conn, ServeErrorCode::ShuttingDown, Options.RetryAfterMs,
               "server is draining");
    return;
  }

  std::string Payload = Frame.Payload;
  if (FaultInjector::get().shouldFire("serve_request_garbage") &&
      !Payload.empty())
    Payload[0] ^= 0x5a; // Malformed-input containment drill.

  // Admission control: bound both queue depth and resident bytes, and
  // answer refusals immediately — shedding must stay O(1) under any
  // incoming rate.
  size_t Depth = queueDepth();
  size_t Inflight = InflightBytes.load(std::memory_order_relaxed);
  if (Depth >= Options.MaxQueue ||
      Inflight + Payload.size() > Options.MaxInflightBytes) {
    Stats.Shed.fetch_add(1, std::memory_order_relaxed);
    queueError(Conn, ServeErrorCode::Overloaded, Options.RetryAfterMs,
               Depth >= Options.MaxQueue ? "admission queue full"
                                         : "inflight byte budget exhausted");
    return;
  }

  Stats.Admitted.fetch_add(1, std::memory_order_relaxed);
  ++Conn.InFlight;
  size_t NowInflight =
      InflightBytes.fetch_add(Payload.size(), std::memory_order_relaxed) +
      Payload.size();
  if (NowInflight > Stats.InflightPeak.load(std::memory_order_relaxed))
    Stats.InflightPeak.store(NowInflight, std::memory_order_relaxed);

  PendingRequest Request;
  Request.ConnId = Conn.Id;
  Request.Admitted = std::chrono::steady_clock::now();
  Request.HasDeadline = Options.RequestDeadlineMs > 0;
  if (Request.HasDeadline)
    Request.Deadline = Request.Admitted +
                       std::chrono::milliseconds(Options.RequestDeadlineMs);
  Request.Payload = std::move(Payload);
  size_t NowDepth;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Queue.push_back(std::move(Request));
    NowDepth = Queue.size() + Dispatching;
  }
  if (NowDepth > Stats.QueuePeak.load(std::memory_order_relaxed))
    Stats.QueuePeak.store(NowDepth, std::memory_order_relaxed);
  QueueCv.notify_one();
}

void SelectionServer::dispatcherMain() {
  FaultInjector &Faults = FaultInjector::get();
  while (true) {
    PendingRequest Request;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCv.wait(Lock,
                   [this] { return DispatcherStop || !Queue.empty(); });
      if (Queue.empty())
        return; // DispatcherStop and nothing left to serve.
      Request = std::move(Queue.front());
      Queue.pop_front();
      ++Dispatching;
    }

    if (Faults.shouldFire("serve_dispatch_stall"))
      std::this_thread::sleep_for(std::chrono::milliseconds(400));

    Completion Done;
    Done.ConnId = Request.ConnId;
    Done.RequestBytes = Request.Payload.size();
    if (Request.HasDeadline &&
        std::chrono::steady_clock::now() > Request.Deadline) {
      // Too stale to be worth compiling — the client has likely given
      // up. A typed reply keeps the connection usable.
      Stats.Timeouts.fetch_add(1, std::memory_order_relaxed);
      ServeError Error;
      Error.Code = ServeErrorCode::Timeout;
      Error.RetryAfterMs = Options.RetryAfterMs;
      Error.Message = "request exceeded its deadline before dispatch";
      Done.Bytes = wire::encodeFrame(wire::Error, encodeServeError(Error));
    } else {
      std::string Explain;
      std::optional<BatchRequest> Batch =
          decodeBatchRequest(Request.Payload, &Explain);
      std::optional<BatchReply> Reply;
      if (Batch)
        Reply = Service.process(*Batch, &Explain);
      if (!Reply) {
        Stats.BadRequests.fetch_add(1, std::memory_order_relaxed);
        ServeError Error;
        Error.Code = ServeErrorCode::BadRequest;
        Error.Message =
            Batch ? Explain : "malformed batch request: " + Explain;
        Done.Bytes = wire::encodeFrame(wire::Error, encodeServeError(Error));
      } else {
        Stats.Batches.fetch_add(1, std::memory_order_relaxed);
        Done.Bytes =
            wire::encodeFrame(wire::Response, encodeBatchReply(*Reply));
        if (Faults.shouldFire("serve_reply_torn"))
          Done.Bytes.resize(Done.Bytes.size() / 2); // Client sees Corrupt.
        if (Faults.shouldFire("serve_drop_client")) {
          Done.Bytes.resize(Done.Bytes.size() / 2);
          Done.CloseAfter = true; // Vanish mid-reply.
        }
      }
    }
    Done.RequestUs = std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - Request.Admitted)
                         .count();
    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      Completions.push_back(std::move(Done));
      --Dispatching;
    }
    wake();
  }
}

bool SelectionServer::drainConnection(Connection &Conn) {
  if (Conn.Out.empty())
    return true;
  if (FaultInjector::get().shouldFire("serve_slow_write"))
    return true; // Pretend the socket refused bytes this tick.
  size_t Before = Conn.Out.pendingBytes();
  bool Progress = false;
  wire::WriteStatus Status = Conn.Out.drain(Conn.OutFd, &Progress);
  size_t Freed = Before - Conn.Out.pendingBytes();
  if (Freed)
    InflightBytes.fetch_sub(Freed, std::memory_order_relaxed);
  if (Progress)
    Conn.LastWriteProgress = std::chrono::steady_clock::now();
  return Status != wire::WriteStatus::Error;
}

void SelectionServer::closeConnection(uint64_t ConnId) {
  auto It = Connections.find(ConnId);
  if (It == Connections.end())
    return;
  Connection &Conn = It->second;
  size_t Pending = Conn.Out.pendingBytes();
  if (Pending)
    InflightBytes.fetch_sub(Pending, std::memory_order_relaxed);
  if (Conn.OwnsFds) {
    ::close(Conn.InFd);
    if (Conn.OutFd != Conn.InFd)
      ::close(Conn.OutFd);
  }
  Connections.erase(It);
}

int SelectionServer::run() {
  StartTime = std::chrono::steady_clock::now();
  std::thread Dispatcher([this] { dispatcherMain(); });

  std::vector<pollfd> Polls;
  // pollfd index -> connection id, for translating revents back.
  std::vector<uint64_t> PollConn;

  while (true) {
    if (Options.TickHook)
      Options.TickHook();

    bool Stopping = StopFlag.load(std::memory_order_relaxed);

    // Integrate connections handed over by other threads.
    std::vector<std::pair<int, int>> Adds;
    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      Adds.swap(PendingAdds);
    }
    for (const std::pair<int, int> &Add : Adds) {
      Connection Conn;
      Conn.Id = NextConnId++;
      Conn.InFd = Add.first;
      Conn.OutFd = Add.second;
      Conn.OwnsFds = false;
      setNonBlocking(Conn.InFd);
      if (Conn.OutFd != Conn.InFd)
        setNonBlocking(Conn.OutFd);
      Conn.LastReadProgress = Conn.LastWriteProgress =
          std::chrono::steady_clock::now();
      Stats.Connections.fetch_add(1, std::memory_order_relaxed);
      Connections.emplace(Conn.Id, std::move(Conn));
    }

    // Deliver completed requests to their (possibly departed) owners.
    std::vector<Completion> Done;
    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      Done.swap(Completions);
    }
    for (Completion &C : Done) {
      InflightBytes.fetch_sub(C.RequestBytes, std::memory_order_relaxed);
      Stats.RequestUsTotal.fetch_add(static_cast<uint64_t>(C.RequestUs),
                                     std::memory_order_relaxed);
      auto It = Connections.find(C.ConnId);
      if (It == Connections.end())
        continue; // The client left; its reply evaporates safely.
      Connection &Conn = It->second;
      if (Conn.InFlight)
        --Conn.InFlight;
      InflightBytes.fetch_add(C.Bytes.size(), std::memory_order_relaxed);
      Conn.Out.push(std::move(C.Bytes));
      if (C.CloseAfter) {
        drainConnection(Conn); // Best effort: half a reply, then gone.
        closeConnection(C.ConnId);
      }
    }

    // Opportunistic write pass: pushes since the last tick should not
    // wait for a POLLOUT round trip.
    std::vector<uint64_t> Dead;
    for (auto &Entry : Connections)
      if (!drainConnection(Entry.second))
        Dead.push_back(Entry.first);
    for (uint64_t Id : Dead)
      closeConnection(Id);

    // Sweep for terminal states: clean completion, stalled reads mid-
    // frame, stalled writes.
    Dead.clear();
    auto Now = std::chrono::steady_clock::now();
    for (auto &Entry : Connections) {
      Connection &Conn = Entry.second;
      if (Conn.NoMoreInput && Conn.InFlight == 0 && Conn.Out.empty()) {
        Dead.push_back(Conn.Id);
        continue;
      }
      if (Options.RequestDeadlineMs > 0 && Conn.Reader.midFrame() &&
          msSince(Conn.LastReadProgress) > Options.RequestDeadlineMs) {
        // A torn frame cannot be resynchronized; only the connection
        // can be reclaimed.
        Stats.SlowClientDrops.fetch_add(1, std::memory_order_relaxed);
        Dead.push_back(Conn.Id);
        continue;
      }
      if (Options.WriteStallMs > 0 && !Conn.Out.empty() &&
          msSince(Conn.LastWriteProgress) > Options.WriteStallMs) {
        Stats.SlowClientDrops.fetch_add(1, std::memory_order_relaxed);
        Dead.push_back(Conn.Id);
      }
      (void)Now;
    }
    for (uint64_t Id : Dead)
      closeConnection(Id);

    // Exit checks. Both require the dispatcher idle and every reply
    // delivered (or its connection gone).
    bool PipelineIdle;
    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      PipelineIdle = Queue.empty() && Dispatching == 0 &&
                     Completions.empty() && PendingAdds.empty();
    }
    if (PipelineIdle) {
      bool AllFlushed = true;
      for (auto &Entry : Connections)
        if (!Entry.second.Out.empty())
          AllFlushed = false;
      if (Stopping && AllFlushed)
        break; // Drain complete.
      if (ListenFd < 0 && Connections.empty())
        break; // Pipe mode: the last stream ended.
    }

    // Build this tick's poll set.
    Polls.clear();
    PollConn.clear();
    if (WakeFds[0] >= 0) {
      Polls.push_back({WakeFds[0], POLLIN, 0});
      PollConn.push_back(0);
    }
    if (ListenFd >= 0 && !Stopping) {
      Polls.push_back({ListenFd, POLLIN, 0});
      PollConn.push_back(0);
    }
    for (auto &Entry : Connections) {
      Connection &Conn = Entry.second;
      short InEvents = Conn.NoMoreInput ? 0 : POLLIN;
      if (Conn.InFd == Conn.OutFd) {
        short Events =
            static_cast<short>(InEvents | (Conn.Out.empty() ? 0 : POLLOUT));
        if (!Events)
          continue;
        Polls.push_back({Conn.InFd, Events, 0});
        PollConn.push_back(Conn.Id);
      } else {
        if (InEvents) {
          Polls.push_back({Conn.InFd, InEvents, 0});
          PollConn.push_back(Conn.Id);
        }
        if (!Conn.Out.empty()) {
          Polls.push_back({Conn.OutFd, POLLOUT, 0});
          PollConn.push_back(Conn.Id);
        }
      }
    }

    int Ready = ::poll(Polls.data(), Polls.size(), Options.PollMs);
    if (Ready < 0) {
      if (errno == EINTR)
        continue;
      break; // The poll set itself is broken; nothing sane to do.
    }

    for (size_t I = 0; I < Polls.size(); ++I) {
      const pollfd &P = Polls[I];
      if (!P.revents)
        continue;
      if (P.fd == WakeFds[0]) {
        char Scratch[64];
        while (::read(WakeFds[0], Scratch, sizeof(Scratch)) > 0) {
        }
        continue;
      }
      if (P.fd == ListenFd) {
        while (true) {
          int ClientFd = ::accept(ListenFd, nullptr, nullptr);
          if (ClientFd < 0)
            break;
          ::fcntl(ClientFd, F_SETFD, FD_CLOEXEC);
          setNonBlocking(ClientFd);
          Connection Conn;
          Conn.Id = NextConnId++;
          Conn.InFd = Conn.OutFd = ClientFd;
          Conn.OwnsFds = true;
          Conn.LastReadProgress = Conn.LastWriteProgress =
              std::chrono::steady_clock::now();
          Stats.Connections.fetch_add(1, std::memory_order_relaxed);
          Connections.emplace(Conn.Id, std::move(Conn));
        }
        continue;
      }

      uint64_t ConnId = PollConn[I];
      auto It = Connections.find(ConnId);
      if (It == Connections.end())
        continue; // Closed earlier in this same tick.
      Connection &Conn = It->second;

      if (P.revents & (POLLERR | POLLNVAL)) {
        closeConnection(ConnId);
        continue;
      }
      if ((P.revents & (POLLIN | POLLHUP)) && !Conn.NoMoreInput &&
          P.fd == Conn.InFd) {
        bool Fatal = false;
        while (true) {
          wire::Frame Frame;
          wire::FrameReader::Event Event = Conn.Reader.advance(Conn.InFd, Frame);
          if (Event == wire::FrameReader::Event::Frame) {
            Conn.LastReadProgress = std::chrono::steady_clock::now();
            handleFrame(Conn, Frame);
            if (Conn.NoMoreInput)
              break;
            continue;
          }
          if (Event == wire::FrameReader::Event::None) {
            if (Conn.Reader.midFrame())
              Conn.LastReadProgress = std::chrono::steady_clock::now();
            break;
          }
          if (Event == wire::FrameReader::Event::Eof) {
            Conn.NoMoreInput = true;
            break;
          }
          // Corrupt: this stream is unrecoverable by design.
          Stats.CondemnedConns.fetch_add(1, std::memory_order_relaxed);
          if (!Conn.OwnsFds)
            PipeCondemned = true;
          Fatal = true;
          break;
        }
        if (Fatal) {
          closeConnection(ConnId);
          continue;
        }
      }
      if ((P.revents & POLLOUT) && P.fd == Conn.OutFd)
        if (!drainConnection(Conn))
          closeConnection(ConnId);
    }
  }

  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    DispatcherStop = true;
  }
  QueueCv.notify_all();
  Dispatcher.join();
  return PipeCondemned ? 2 : 0;
}
