//===- SelectionServer.cpp - Compile-server frame loop ------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/SelectionServer.h"

#include "support/Wire.h"

using namespace selgen;

int SelectionServer::run() {
  // Short read deadlines keep the loop responsive to requestStop()
  // without busy-waiting: an idle connection costs one poll wakeup
  // every PollMs.
  constexpr int64_t PollMs = 200;
  while (true) {
    if (StopFlag.load(std::memory_order_relaxed))
      return 0;
    wire::Frame Frame;
    wire::ReadStatus Status = wire::readFrame(InFd, Frame, PollMs);
    if (Status == wire::ReadStatus::Timeout)
      continue; // Idle tick; re-check the stop flag.
    if (Status == wire::ReadStatus::Eof)
      return 0;
    if (Status != wire::ReadStatus::Ok)
      return 2; // Garbage on the stream: nothing sane to resync to.
    if (Frame.Type == wire::Shutdown)
      return 0;
    if (Frame.Type != wire::Request) {
      if (!wire::writeFrame(OutFd, wire::Error, "unexpected frame type"))
        return 2;
      continue;
    }

    std::string Error;
    std::optional<BatchRequest> Request =
        decodeBatchRequest(Frame.Payload, &Error);
    if (!Request) {
      if (!wire::writeFrame(OutFd, wire::Error,
                            "malformed batch request: " + Error))
        return 2;
      continue;
    }
    std::optional<BatchReply> Reply = Service.process(*Request, &Error);
    if (!Reply) {
      if (!wire::writeFrame(OutFd, wire::Error, Error))
        return 2;
      continue;
    }
    if (!wire::writeFrame(OutFd, wire::Response, encodeBatchReply(*Reply)))
      return 2; // The client is gone mid-reply.
    ++Batches;
  }
}
