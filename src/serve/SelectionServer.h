//===- SelectionServer.h - Compile-server event loop -------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire-facing loop of selgen-served. One SelectionServer
/// multiplexes any number of client connections over poll(2) with
/// non-blocking reads and writes, admits complete frames into a
/// bounded request queue, and feeds them to the resident
/// SelectionService from a single dispatcher thread. The design goal
/// is containment: a wedged, slow, or malicious client can cost at
/// most its own connection — never a worker thread, never unbounded
/// memory, never the whole service.
///
/// Robustness contract:
///  - Per-request deadline: every admitted request carries a wall
///    budget (Options.RequestDeadlineMs, stamped at admission). A
///    request still queued when its budget expires is answered with a
///    typed Timeout error frame — the connection survives. A client
///    that stalls *mid-frame* for longer than the same budget is
///    dropped (a half-delivered frame cannot be resynchronized).
///  - Overload shedding: admission is refused with a typed Overloaded
///    error frame (carrying a retry-after hint) once MaxQueue requests
///    are waiting or MaxInflightBytes of request payloads plus
///    buffered replies are in memory. Shedding is an O(1) reply;
///    memory stays bounded no matter how fast clients push.
///  - Slow-writer containment: replies are queued per connection and
///    drained non-blocking; a connection whose queue makes no progress
///    for WriteStallMs is dropped.
///  - Health probes (ServeProtocol) are answered inline by the event
///    loop, bypassing the admission queue, so readiness checks succeed
///    even at full load.
///  - Termination: EOF and Shutdown frames end a connection cleanly
///    after its pending replies flush. Garbage on a stream condemns
///    only that connection (in pipe mode it ends run() with exit code
///    2, the PR 6 policy). requestStop() — async-signal-safe — drains:
///    every admitted request is served to completion (or answered with
///    a typed Timeout), requests arriving after the stop get a typed
///    ShuttingDown error, write queues flush (stalled clients are
///    evicted, not waited on), then run() returns 0.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SERVE_SELECTIONSERVER_H
#define SELGEN_SERVE_SELECTIONSERVER_H

#include "serve/SelectionService.h"
#include "support/Wire.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <thread>
#include <vector>

namespace selgen {

/// Tunables of one server instance (all have serving-grade defaults).
struct ServerOptions {
  /// Wall budget per request, admission to reply handoff; also the
  /// mid-frame read-stall budget. <= 0 disables deadlines.
  int64_t RequestDeadlineMs = 30000;
  /// A connection with pending output that moves no bytes for this
  /// long is dropped. <= 0 disables eviction.
  int64_t WriteStallMs = 10000;
  /// Max requests admitted but not yet dispatched before shedding.
  size_t MaxQueue = 64;
  /// Max bytes of queued request payloads + buffered replies before
  /// shedding.
  size_t MaxInflightBytes = 256u << 20;
  /// Retry-after hint stamped into Overloaded / ShuttingDown replies.
  uint32_t RetryAfterMs = 100;
  /// Event-loop tick; bounds stop/reload latency, not throughput.
  int PollMs = 100;
  /// Invoked once per event-loop iteration (the tool polls its SIGHUP
  /// flag here; tests use it to steer the loop). May be empty.
  std::function<void()> TickHook;
  /// Lets the owner add reload telemetry to health replies (the
  /// server fills everything else). May be empty.
  std::function<void(HealthReply &)> HealthAugment;
};

/// Monotonic counters of one server's lifetime, readable while it
/// runs (health replies and the tool's --stats-json read them live).
struct ServerStats {
  std::atomic<uint64_t> Admitted{0};   ///< Requests accepted into the queue.
  std::atomic<uint64_t> Batches{0};    ///< Batches served successfully.
  std::atomic<uint64_t> Shed{0};       ///< Typed Overloaded rejections.
  std::atomic<uint64_t> Timeouts{0};   ///< Typed deadline rejections.
  std::atomic<uint64_t> BadRequests{0};///< Typed malformed-payload replies.
  std::atomic<uint64_t> HealthProbes{0};
  std::atomic<uint64_t> ShutdownRejects{0}; ///< Typed ShuttingDown replies.
  std::atomic<uint64_t> SlowClientDrops{0}; ///< Stalled connections evicted.
  std::atomic<uint64_t> CondemnedConns{0};  ///< Corrupt streams dropped.
  std::atomic<uint64_t> Connections{0};     ///< Accepted + added, lifetime.
  std::atomic<uint64_t> QueuePeak{0};       ///< Deepest admission queue seen.
  std::atomic<uint64_t> InflightPeak{0};    ///< Peak inflight bytes seen.
  std::atomic<uint64_t> RequestUsTotal{0};  ///< Admission->reply-queued wall.
};

class SelectionServer {
public:
  SelectionServer(SelectionService &Service, ServerOptions Options = {});

  /// Convenience for the single-stream (pipe) topology: adds one
  /// borrowed connection over \p InFd / \p OutFd (may be the same fd).
  SelectionServer(SelectionService &Service, int InFd, int OutFd,
                  ServerOptions Options = {});

  ~SelectionServer();
  SelectionServer(const SelectionServer &) = delete;
  SelectionServer &operator=(const SelectionServer &) = delete;

  /// Adds a pre-connected client stream. The fds are borrowed, not
  /// closed (accepted socket fds, by contrast, are owned). Safe to
  /// call before run() or concurrently with it.
  void addConnection(int InFd, int OutFd);

  /// Accept-and-serve mode: poll \p Fd for new connections alongside
  /// the existing ones. The listen fd is borrowed; accepted client
  /// fds are owned and closed by the server. Call before run().
  void serveListenFd(int Fd);

  /// Runs until stop (socket mode) or until the last pipe-mode
  /// connection ends (EOF / Shutdown / corruption). Returns 0 on a
  /// clean end or stop-drain, 2 if a pipe-mode stream was condemned
  /// (socket-mode corruption only drops that connection).
  int run();

  /// Begins the drain described in the header comment. Safe to call
  /// from a signal handler or another thread.
  void requestStop();

  const ServerStats &stats() const { return Stats; }
  uint64_t batchesServed() const {
    return Stats.Batches.load(std::memory_order_relaxed);
  }

private:
  using TimePoint = std::chrono::steady_clock::time_point;

  struct Connection {
    uint64_t Id = 0;
    int InFd = -1;
    int OutFd = -1;
    bool OwnsFds = false; ///< Accepted sockets yes, added streams no.
    wire::FrameReader Reader;
    wire::WriteQueue Out;
    size_t InFlight = 0;    ///< Admitted requests awaiting their reply.
    bool NoMoreInput = false; ///< EOF or Shutdown frame seen.
    bool Condemned = false;   ///< Corrupt stream; drop without flushing.
    TimePoint LastReadProgress;
    TimePoint LastWriteProgress;
  };

  struct PendingRequest {
    uint64_t ConnId = 0;
    TimePoint Admitted;
    TimePoint Deadline;
    bool HasDeadline = false;
    std::string Payload;
  };

  struct Completion {
    uint64_t ConnId = 0;
    std::string Bytes;        ///< Encoded frame(s) to enqueue.
    size_t RequestBytes = 0;  ///< Admission-side bytes to release.
    bool CloseAfter = false;  ///< Fault injection: drop the client.
    double RequestUs = 0;     ///< Admission->completion wall time.
  };

  void dispatcherMain();
  void wake();
  /// IO-thread only: handles one complete frame from \p Conn.
  void handleFrame(Connection &Conn, const wire::Frame &Frame);
  void queueError(Connection &Conn, ServeErrorCode Code, uint32_t RetryMs,
                  const std::string &Message);
  void queueHealthReply(Connection &Conn);
  /// IO-thread only: closes and erases a connection.
  void closeConnection(uint64_t ConnId);
  bool drainConnection(Connection &Conn);
  size_t queueDepth() const;

  SelectionService &Service;
  ServerOptions Options;
  ServerStats Stats;

  int ListenFd = -1;
  int WakeFds[2] = {-1, -1};
  std::atomic<bool> StopFlag{false};
  TimePoint StartTime;
  bool PipeCondemned = false;

  // IO-thread state.
  std::map<uint64_t, Connection> Connections;
  uint64_t NextConnId = 1;

  // Dispatcher handoff, guarded by QueueMutex.
  mutable std::mutex QueueMutex;
  std::condition_variable QueueCv;
  std::deque<PendingRequest> Queue;
  std::vector<Completion> Completions;
  std::vector<std::pair<int, int>> PendingAdds; ///< From addConnection.
  bool DispatcherStop = false;
  uint64_t Dispatching = 0; ///< Requests popped but not yet completed.

  std::atomic<size_t> InflightBytes{0};
};

} // namespace selgen

#endif // SELGEN_SERVE_SELECTIONSERVER_H
