//===- SelectionServer.h - Compile-server frame loop -------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire-facing loop of selgen-served: reads framed BatchRequests
/// from one fd, feeds them to the resident SelectionService, and
/// writes framed BatchReplies back. One loop serves one client stream
/// (stdin/stdout or one accepted socket connection).
///
/// Termination contract: EOF and an explicit Shutdown frame end the
/// loop cleanly (exit code 0); garbage on the stream — bad magic, bad
/// CRC, oversized length — condemns the connection (exit code 2, no
/// resynchronization, same policy as the solver pool). A malformed but
/// correctly framed payload gets an Error frame and the loop
/// continues. requestStop() (async-signal-safe; SIGTERM handlers call
/// it) makes the loop exit cleanly at the next poll tick, after the
/// in-flight batch finishes — a batch is never abandoned half-written.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SERVE_SELECTIONSERVER_H
#define SELGEN_SERVE_SELECTIONSERVER_H

#include "serve/SelectionService.h"

#include <atomic>
#include <cstdint>

namespace selgen {

class SelectionServer {
public:
  /// Serves \p Service over \p InFd / \p OutFd (may be the same fd for
  /// a socket). The fds are borrowed, not closed.
  SelectionServer(SelectionService &Service, int InFd, int OutFd)
      : Service(Service), InFd(InFd), OutFd(OutFd) {}

  /// Runs until EOF / Shutdown / stop (returns 0) or stream corruption
  /// or a dead peer (returns 2).
  int run();

  /// Makes run() return 0 at its next idle poll tick. Safe to call
  /// from a signal handler or another thread.
  void requestStop() { StopFlag.store(true, std::memory_order_relaxed); }

  uint64_t batchesServed() const { return Batches; }

private:
  SelectionService &Service;
  int InFd;
  int OutFd;
  std::atomic<bool> StopFlag{false};
  uint64_t Batches = 0;
};

} // namespace selgen

#endif // SELGEN_SERVE_SELECTIONSERVER_H
