//===- SelectionService.cpp - Resident multi-threaded selection ---------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/SelectionService.h"

#include "eval/Workloads.h"
#include "isel/TilingSelector.h"
#include "x86/MachineIR.h"

#include <chrono>

using namespace selgen;

SelectionService::SelectionService(const PreparedLibrary &Library,
                                   const BinaryAutomatonView &View,
                                   unsigned Width, unsigned Threads,
                                   bool Tiling, CostKind Cost)
    : Library(Library), View(&View), Width(Width), Tiling(Tiling),
      Cost(Cost) {
  start(Threads);
}

SelectionService::SelectionService(const PreparedLibrary &Library,
                                   const MatcherAutomaton &Automaton,
                                   unsigned Width, unsigned Threads,
                                   bool Tiling, CostKind Cost)
    : Library(Library), Automaton(&Automaton), Width(Width), Tiling(Tiling),
      Cost(Cost) {
  start(Threads);
}

SelectionService::~SelectionService() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void SelectionService::start(unsigned Threads) {
  if (Threads == 0)
    Threads = 1;
  Workers.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([this] { workerMain(); });
}

void SelectionService::workerMain() {
  std::unique_lock<std::mutex> Lock(Mutex);
  while (true) {
    WorkCv.wait(Lock, [this] {
      return Stopping || (Batch && NextItem < Batch->Workloads.size());
    });
    if (Stopping)
      return;
    size_t Index = NextItem++;
    Lock.unlock();
    processItem(Index);
    Lock.lock();
    if (++ItemsDone == Batch->Workloads.size())
      DoneCv.notify_all();
  }
}

void SelectionService::swapImage(std::shared_ptr<MappedAutomaton> NewImage) {
  if (!NewImage || !NewImage->view().valid())
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  // The in-flight batch (if any) holds its own shared_ptr copy taken
  // at dispatch, so dropping the previous image here cannot unmap
  // memory a worker is matching against.
  Swapped = std::move(NewImage);
  ++SwapGeneration;
}

std::string SelectionService::imageFingerprint() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Swapped)
    return Swapped->view().libraryFingerprint();
  if (View)
    return View->libraryFingerprint();
  return Automaton->libraryFingerprint();
}

uint64_t SelectionService::imageGeneration() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return SwapGeneration;
}

void SelectionService::processItem(size_t Index) {
  // Everything below is per-request state owned by this worker; the
  // library and automaton are only ever read.
  Function F = buildWorkload(*Profiles[Index], Width);
  SelectionObserver Observer;
  SelectionResult Selected;
  if (BatchView) {
    MappedCandidateSource Source(Library, *BatchView);
    Selected = Tiling
                   ? runTilingSelection(F, Library, Source, Cost, &Observer)
                   : runRuleSelection(F, Library, Source, "automaton",
                                      &Observer);
  } else {
    AutomatonCandidateSource Source(Library, *Automaton);
    Selected = Tiling
                   ? runTilingSelection(F, Library, Source, Cost, &Observer)
                   : runRuleSelection(F, Library, Source, "automaton",
                                      &Observer);
  }

  BatchReply::Result &R = (*Out)[Index];
  R.Workload = Profiles[Index]->Name;
  R.TotalOperations = Selected.TotalOperations;
  R.CoveredOperations = Selected.CoveredOperations;
  R.FallbackOperations = Selected.FallbackOperations;
  R.RulesTried = Observer.RulesTried;
  R.NodesVisited = Observer.NodesVisited;
  R.SelectUs = Observer.SelectUs;
  R.Asm = printMachineFunction(*Selected.MF);
}

std::optional<BatchReply>
SelectionService::process(const BatchRequest &Request, std::string *Error) {
  if (Request.Width != Width) {
    if (Error)
      *Error = "width mismatch: request " + std::to_string(Request.Width) +
               ", server library is width " + std::to_string(Width);
    return std::nullopt;
  }
  // Resolve every name up front: a request naming an unknown workload
  // fails whole before any selection runs.
  std::vector<const WorkloadProfile *> Resolved;
  Resolved.reserve(Request.Workloads.size());
  for (const std::string &Name : Request.Workloads) {
    const WorkloadProfile *Found = nullptr;
    for (const WorkloadProfile &P : cint2000Profiles())
      if (P.Name == Name)
        Found = &P;
    if (!Found) {
      if (Error)
        *Error = "unknown workload: " + Name;
      return std::nullopt;
    }
    Resolved.push_back(Found);
  }

  BatchReply Reply;
  Reply.Id = Request.Id;
  Reply.Results.resize(Request.Workloads.size());
  auto Start = std::chrono::steady_clock::now();
  if (!Request.Workloads.empty()) {
    // Pin the image for this whole batch: the local shared_ptr keeps
    // a hot-swapped-away mapping alive until every item finished, and
    // BatchView is what the workers read — a concurrent swapImage
    // only changes what the *next* batch pins.
    std::shared_ptr<MappedAutomaton> PinnedImage;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Batch = &Request;
      Profiles = std::move(Resolved);
      Out = &Reply.Results;
      NextItem = 0;
      ItemsDone = 0;
      PinnedImage = Swapped;
      BatchView = PinnedImage ? &PinnedImage->view() : View;
    }
    WorkCv.notify_all();
    std::unique_lock<std::mutex> Lock(Mutex);
    DoneCv.wait(Lock, [this, &Request] {
      return ItemsDone == Request.Workloads.size();
    });
    Batch = nullptr;
    Out = nullptr;
    BatchView = nullptr;
    Profiles.clear();
  }
  Reply.WallUs = std::chrono::duration<double, std::micro>(
                     std::chrono::steady_clock::now() - Start)
                     .count();

  Telemetry.Batches += 1;
  Telemetry.Functions += Reply.Results.size();
  for (const BatchReply::Result &R : Reply.Results) {
    Telemetry.RulesTried += R.RulesTried;
    Telemetry.NodesVisited += R.NodesVisited;
    Telemetry.SelectUs += R.SelectUs;
  }
  return Reply;
}
