//===- SelectionService.h - Resident multi-threaded selection ----*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resident core of the selgen-served compile server: N persistent
/// worker threads sharing one read-only prepared library and one
/// read-only matcher automaton (a mapped binary image or a heap
/// automaton), compiling batches of workload functions concurrently.
///
/// Ownership and threading model: the library and automaton are
/// immutable after construction and shared by reference; everything
/// mutable — the subject Function, the candidate source's scratch
/// vectors, the SelectionObserver counters, the produced
/// MachineFunction — lives per request on the worker that handles it
/// (arena-per-request). The only shared mutable state is the batch
/// work queue under one mutex; selection itself takes no lock and
/// touches no global, so throughput scales with threads.
///
/// Results are byte-identical to a single-shot
/// `selgen-compile --selector auto` run: the workers run the same
/// selection engine over the same candidate sets in the same priority
/// order, and workload functions are regenerated deterministically
/// from their profile names.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SERVE_SELECTIONSERVICE_H
#define SELGEN_SERVE_SELECTIONSERVICE_H

#include "isel/AutomatonSelector.h"
#include "serve/ServeProtocol.h"

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace selgen {

struct WorkloadProfile;

/// Lifetime counters of one service (all batches since start).
struct ServiceTelemetry {
  uint64_t Batches = 0;
  uint64_t Functions = 0;
  uint64_t RulesTried = 0;
  uint64_t NodesVisited = 0;
  double SelectUs = 0;
};

class SelectionService {
public:
  /// Runs off \p View, a validated mapped binary image (zero
  /// deserialization). \p Library and the view's backing memory must
  /// outlive the service. With \p Tiling set, every request runs the
  /// cost-minimal tiling pre-pass under \p Cost instead of first-match
  /// (selector name "tiling"; unit-cost tiling stays byte-identical).
  SelectionService(const PreparedLibrary &Library,
                   const BinaryAutomatonView &View, unsigned Width,
                   unsigned Threads, bool Tiling = false,
                   CostKind Cost = CostKind::Unit);

  /// Runs off a heap automaton instead (the text-format path).
  SelectionService(const PreparedLibrary &Library,
                   const MatcherAutomaton &Automaton, unsigned Width,
                   unsigned Threads, bool Tiling = false,
                   CostKind Cost = CostKind::Unit);

  ~SelectionService();
  SelectionService(const SelectionService &) = delete;
  SelectionService &operator=(const SelectionService &) = delete;

  /// Compiles one batch, fanning its items out over the worker
  /// threads; blocks until every item is done. Returns std::nullopt
  /// and sets \p Error for requests the service cannot serve (width
  /// mismatch, unknown workload name) — a malformed request fails
  /// whole, never partially. Thread-safe for the *caller's* side too:
  /// batches are serialized, items within a batch run concurrently.
  std::optional<BatchReply> process(const BatchRequest &Request,
                                    std::string *Error = nullptr);

  /// Atomically replaces the matcher image for *subsequent* batches
  /// (hot reload). The batch in flight — if any — keeps selecting off
  /// the image it snapshotted at dispatch, and that mapping stays
  /// alive until the batch completes; no request ever observes a
  /// half-swapped automaton. The caller must have validated the new
  /// image against this service's library (fingerprint + cost rules,
  /// see automatonStalenessError) — swapImage itself does not, so it
  /// stays cheap enough to call under load. Thread-safe.
  void swapImage(std::shared_ptr<MappedAutomaton> NewImage);

  /// Hex content fingerprint of the image batches are currently
  /// dispatched against, and the swap generation (0 = the image the
  /// service started with; +1 per swapImage). Thread-safe.
  std::string imageFingerprint() const;
  uint64_t imageGeneration() const;

  unsigned width() const { return Width; }
  unsigned threads() const { return static_cast<unsigned>(Workers.size()); }
  const ServiceTelemetry &telemetry() const { return Telemetry; }

private:
  void start(unsigned Threads);
  void workerMain();
  /// Compiles item \p Index of the current batch (worker context; no
  /// lock held, no shared mutable state touched).
  void processItem(size_t Index);

  const PreparedLibrary &Library;
  const BinaryAutomatonView *View = nullptr;    ///< One of View /
  const MatcherAutomaton *Automaton = nullptr;  ///< Automaton is set.
  /// Owner of the live image after a hot swap (null until the first
  /// swapImage). Guarded by Mutex; batches snapshot it at dispatch.
  std::shared_ptr<MappedAutomaton> Swapped;
  uint64_t SwapGeneration = 0;
  /// The view the *current* batch's workers match against (set under
  /// Mutex at batch dispatch, untouched by mid-batch swaps).
  const BinaryAutomatonView *BatchView = nullptr;
  unsigned Width;
  bool Tiling = false; ///< Cost-minimal tiling instead of first-match.
  CostKind Cost = CostKind::Unit;

  std::vector<std::thread> Workers;

  // Batch dispatch state, guarded by Mutex.
  mutable std::mutex Mutex;
  std::condition_variable WorkCv; ///< Workers wait for items / stop.
  std::condition_variable DoneCv; ///< process() waits for completion.
  const BatchRequest *Batch = nullptr;
  std::vector<const WorkloadProfile *> Profiles; ///< Per item.
  std::vector<BatchReply::Result> *Out = nullptr;
  size_t NextItem = 0;
  size_t ItemsDone = 0;
  bool Stopping = false;

  ServiceTelemetry Telemetry; ///< Updated by process() only.
};

} // namespace selgen

#endif // SELGEN_SERVE_SELECTIONSERVICE_H
