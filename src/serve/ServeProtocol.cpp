//===- ServeProtocol.cpp - Compile-server payload encoding --------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/ServeProtocol.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace selgen;

namespace {

constexpr const char *RequestTag = "selgen-serve-batch-v1";
constexpr const char *ReplyTag = "selgen-serve-reply-v1";
constexpr const char *ErrorTag = "selgen-serve-error-v1";
constexpr const char *HealthTag = "selgen-serve-health-v1";
constexpr const char *HealthReplyTag = "selgen-serve-health-reply-v1";

void fail(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
}

/// Sequential reader over a payload: newline-terminated lines
/// interleaved with byte-counted raw blocks.
struct Cursor {
  const std::string &S;
  size_t Pos = 0;

  bool nextLine(std::string &Out) {
    if (Pos >= S.size())
      return false;
    size_t End = S.find('\n', Pos);
    if (End == std::string::npos)
      return false; // Every line must be terminated.
    Out.assign(S, Pos, End - Pos);
    Pos = End + 1;
    return true;
  }

  /// Takes \p N raw bytes plus their terminating newline.
  bool takeRaw(size_t N, std::string &Out) {
    if (N > S.size() - Pos || S.size() - Pos - N < 1)
      return false;
    Out.assign(S, Pos, N);
    Pos += N;
    if (S[Pos] != '\n')
      return false;
    ++Pos;
    return true;
  }
};

bool parseU64(const std::string &Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long Value = std::strtoull(Text.c_str(), &End, 10);
  if (errno != 0 || End != Text.c_str() + Text.size())
    return false;
  Out = Value;
  return true;
}

bool parseDouble(const std::string &Text, double &Out) {
  if (Text.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  double Value = std::strtod(Text.c_str(), &End);
  if (errno != 0 || End != Text.c_str() + Text.size())
    return false;
  Out = Value;
  return true;
}

/// Splits on single spaces (the encoders emit exactly one separator).
std::vector<std::string> fields(const std::string &Line) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos <= Line.size()) {
    size_t End = Line.find(' ', Pos);
    if (End == std::string::npos)
      End = Line.size();
    Out.push_back(Line.substr(Pos, End - Pos));
    Pos = End + 1;
  }
  return Out;
}

} // namespace

std::string selgen::encodeBatchRequest(const BatchRequest &Request) {
  std::string Out = std::string(RequestTag) + "\n";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "id %" PRIu64 "\n", Request.Id);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "width %u\n", Request.Width);
  Out += Buf;
  for (const std::string &Name : Request.Workloads)
    Out += "workload " + Name + "\n";
  Out += "end\n";
  return Out;
}

std::optional<BatchRequest>
selgen::decodeBatchRequest(const std::string &Payload, std::string *Error) {
  Cursor C{Payload};
  std::string Line;
  if (!C.nextLine(Line) || Line != RequestTag) {
    fail(Error, "not a serve batch request");
    return std::nullopt;
  }
  BatchRequest Request;
  uint64_t Value = 0;
  if (!C.nextLine(Line) || Line.rfind("id ", 0) != 0 ||
      !parseU64(Line.substr(3), Value)) {
    fail(Error, "bad id line");
    return std::nullopt;
  }
  Request.Id = Value;
  if (!C.nextLine(Line) || Line.rfind("width ", 0) != 0 ||
      !parseU64(Line.substr(6), Value) || Value == 0 || Value > 64) {
    fail(Error, "bad width line");
    return std::nullopt;
  }
  Request.Width = static_cast<unsigned>(Value);
  while (C.nextLine(Line)) {
    if (Line == "end") {
      if (C.Pos != Payload.size()) {
        fail(Error, "trailing bytes after end");
        return std::nullopt;
      }
      return Request;
    }
    if (Line.rfind("workload ", 0) != 0 || Line.size() == 9) {
      fail(Error, "bad workload line: " + Line);
      return std::nullopt;
    }
    Request.Workloads.push_back(Line.substr(9));
  }
  fail(Error, "missing end trailer");
  return std::nullopt;
}

std::string selgen::encodeBatchReply(const BatchReply &Reply) {
  std::string Out = std::string(ReplyTag) + "\n";
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf), "id %" PRIu64 "\n", Reply.Id);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "wall %.3f\n", Reply.WallUs);
  Out += Buf;
  for (const BatchReply::Result &R : Reply.Results) {
    std::snprintf(Buf, sizeof(Buf),
                  " %u %u %u %" PRIu64 " %" PRIu64 " %.3f %zu\n",
                  R.TotalOperations, R.CoveredOperations,
                  R.FallbackOperations, R.RulesTried, R.NodesVisited,
                  R.SelectUs, R.Asm.size());
    Out += "result " + R.Workload + Buf;
    Out += R.Asm;
    Out += "\n";
  }
  Out += "end\n";
  return Out;
}

std::optional<BatchReply> selgen::decodeBatchReply(const std::string &Payload,
                                                   std::string *Error) {
  Cursor C{Payload};
  std::string Line;
  if (!C.nextLine(Line) || Line != ReplyTag) {
    fail(Error, "not a serve batch reply");
    return std::nullopt;
  }
  BatchReply Reply;
  uint64_t Value = 0;
  if (!C.nextLine(Line) || Line.rfind("id ", 0) != 0 ||
      !parseU64(Line.substr(3), Value)) {
    fail(Error, "bad id line");
    return std::nullopt;
  }
  Reply.Id = Value;
  if (!C.nextLine(Line) || Line.rfind("wall ", 0) != 0 ||
      !parseDouble(Line.substr(5), Reply.WallUs)) {
    fail(Error, "bad wall line");
    return std::nullopt;
  }
  while (C.nextLine(Line)) {
    if (Line == "end") {
      if (C.Pos != Payload.size()) {
        fail(Error, "trailing bytes after end");
        return std::nullopt;
      }
      return Reply;
    }
    if (Line.rfind("result ", 0) != 0) {
      fail(Error, "bad result line: " + Line);
      return std::nullopt;
    }
    std::vector<std::string> F = fields(Line.substr(7));
    if (F.size() != 8) {
      fail(Error, "bad result field count");
      return std::nullopt;
    }
    BatchReply::Result R;
    R.Workload = F[0];
    uint64_t Total = 0, Covered = 0, Fallback = 0, AsmBytes = 0;
    if (R.Workload.empty() || !parseU64(F[1], Total) ||
        !parseU64(F[2], Covered) || !parseU64(F[3], Fallback) ||
        !parseU64(F[4], R.RulesTried) || !parseU64(F[5], R.NodesVisited) ||
        !parseDouble(F[6], R.SelectUs) || !parseU64(F[7], AsmBytes) ||
        Total > UINT32_MAX || Covered > UINT32_MAX || Fallback > UINT32_MAX) {
      fail(Error, "bad result fields");
      return std::nullopt;
    }
    R.TotalOperations = static_cast<unsigned>(Total);
    R.CoveredOperations = static_cast<unsigned>(Covered);
    R.FallbackOperations = static_cast<unsigned>(Fallback);
    if (!C.takeRaw(AsmBytes, R.Asm)) {
      fail(Error, "truncated asm block");
      return std::nullopt;
    }
    Reply.Results.push_back(std::move(R));
  }
  fail(Error, "missing end trailer");
  return std::nullopt;
}

const char *selgen::serveErrorCodeName(ServeErrorCode Code) {
  switch (Code) {
  case ServeErrorCode::BadRequest:
    return "bad-request";
  case ServeErrorCode::Unsupported:
    return "unsupported";
  case ServeErrorCode::Timeout:
    return "timeout";
  case ServeErrorCode::Overloaded:
    return "overloaded";
  case ServeErrorCode::ShuttingDown:
    return "shutting-down";
  case ServeErrorCode::Internal:
    return "internal";
  }
  return "internal";
}

std::string selgen::encodeServeError(const ServeError &Error) {
  std::string Out = std::string(ErrorTag) + "\n";
  Out += "code " + std::string(serveErrorCodeName(Error.Code)) + "\n";
  if (Error.RetryAfterMs)
    Out += "retry-after-ms " + std::to_string(Error.RetryAfterMs) + "\n";
  // The message travels as a byte-counted raw block so it can carry
  // anything (decoder errors quote client bytes verbatim).
  Out += "message " + std::to_string(Error.Message.size()) + "\n";
  Out += Error.Message;
  Out += "\nend\n";
  return Out;
}

ServeError selgen::decodeServeError(const std::string &Payload) {
  ServeError Parsed;
  Cursor C{Payload};
  std::string Line;
  if (!C.nextLine(Line) || Line != ErrorTag) {
    // A bare message from a peer predating the typed encoding.
    Parsed.Message = Payload;
    return Parsed;
  }
  if (!C.nextLine(Line) || Line.rfind("code ", 0) != 0) {
    Parsed.Message = Payload;
    return Parsed;
  }
  std::string Name = Line.substr(5);
  for (ServeErrorCode Code :
       {ServeErrorCode::BadRequest, ServeErrorCode::Unsupported,
        ServeErrorCode::Timeout, ServeErrorCode::Overloaded,
        ServeErrorCode::ShuttingDown, ServeErrorCode::Internal})
    if (Name == serveErrorCodeName(Code))
      Parsed.Code = Code;
  while (C.nextLine(Line)) {
    if (Line == "end")
      return Parsed;
    uint64_t Value = 0;
    if (Line.rfind("retry-after-ms ", 0) == 0 &&
        parseU64(Line.substr(15), Value) && Value <= UINT32_MAX) {
      Parsed.RetryAfterMs = static_cast<uint32_t>(Value);
    } else if (Line.rfind("message ", 0) == 0 &&
               parseU64(Line.substr(8), Value)) {
      if (!C.takeRaw(Value, Parsed.Message))
        return Parsed; // Truncated block: keep what parsed so far.
    }
  }
  return Parsed;
}

bool selgen::isHealthRequest(const std::string &Payload) {
  std::string Want = std::string(HealthTag) + "\n";
  return Payload.size() >= Want.size() &&
         Payload.compare(0, Want.size(), Want) == 0;
}

std::string selgen::encodeHealthRequest() {
  return std::string(HealthTag) + "\nend\n";
}

std::string selgen::encodeHealthReply(const HealthReply &Reply) {
  std::string Out = std::string(HealthReplyTag) + "\n";
  auto Put = [&Out](const char *Key, uint64_t Value) {
    Out += std::string(Key) + " " + std::to_string(Value) + "\n";
  };
  Put("uptime-ms", Reply.UptimeMs);
  Put("width", Reply.Width);
  Out += "fingerprint " + Reply.ImageFingerprint + "\n";
  Put("image-generation", Reply.ImageGeneration);
  Put("queue-depth", Reply.QueueDepth);
  Put("batches", Reply.Batches);
  Put("shed", Reply.Shed);
  Put("timeouts", Reply.Timeouts);
  Put("reloads", Reply.Reloads);
  Put("reload-failures", Reply.ReloadFailures);
  Out += "end\n";
  return Out;
}

std::optional<HealthReply>
selgen::decodeHealthReply(const std::string &Payload, std::string *Error) {
  Cursor C{Payload};
  std::string Line;
  if (!C.nextLine(Line) || Line != HealthReplyTag) {
    fail(Error, "not a health reply");
    return std::nullopt;
  }
  HealthReply Reply;
  bool Ok = true;
  auto Take = [&](const std::string &L, const char *Key, uint64_t &Out) {
    std::string Prefix = std::string(Key) + " ";
    if (L.rfind(Prefix, 0) != 0)
      return false;
    uint64_t Value = 0;
    if (!parseU64(L.substr(Prefix.size()), Value))
      Ok = false;
    Out = Value;
    return true;
  };
  while (C.nextLine(Line)) {
    if (Line == "end") {
      if (!Ok || C.Pos != Payload.size()) {
        fail(Error, "bad health field");
        return std::nullopt;
      }
      return Reply;
    }
    uint64_t Width = 0;
    if (Take(Line, "uptime-ms", Reply.UptimeMs) ||
        Take(Line, "image-generation", Reply.ImageGeneration) ||
        Take(Line, "queue-depth", Reply.QueueDepth) ||
        Take(Line, "batches", Reply.Batches) ||
        Take(Line, "shed", Reply.Shed) ||
        Take(Line, "timeouts", Reply.Timeouts) ||
        Take(Line, "reloads", Reply.Reloads) ||
        Take(Line, "reload-failures", Reply.ReloadFailures))
      continue;
    if (Take(Line, "width", Width)) {
      if (Width > 64)
        Ok = false;
      Reply.Width = static_cast<unsigned>(Width);
      continue;
    }
    if (Line.rfind("fingerprint ", 0) == 0) {
      Reply.ImageFingerprint = Line.substr(12);
      continue;
    }
    fail(Error, "unknown health line: " + Line);
    return std::nullopt;
  }
  fail(Error, "missing end trailer");
  return std::nullopt;
}
