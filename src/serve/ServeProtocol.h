//===- ServeProtocol.h - Compile-server payload encoding ---------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Payload encoding for the selgen-served compile server: what travels
/// inside the wire frames (support/Wire.h) between a client and the
/// resident selection service. A request is one *batch* of IR
/// functions, named by their workload profile (eval/Workloads.h) so
/// both sides generate bit-identical subjects deterministically; a
/// reply carries, per function, the selected machine code plus the
/// matcher telemetry of that one selection (rules tried, automaton
/// states visited, selection microseconds).
///
/// Machine code is embedded as a byte-counted raw block, so the codec
/// never has to escape or even look at the assembly text. Decoders are
/// total functions — malformed input yields nullopt with an
/// explanation, never an abort — because the server must survive any
/// bytes a client or fuzzer throws at it.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SERVE_SERVEPROTOCOL_H
#define SELGEN_SERVE_SERVEPROTOCOL_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace selgen {

/// One batch of functions to compile, referenced by workload profile
/// name ("164.gzip", ...). Names may repeat — a latency benchmark
/// sends the same function many times.
struct BatchRequest {
  uint64_t Id = 0;     ///< Echoed in the reply for client-side pairing.
  unsigned Width = 0;  ///< Must match the server's library width.
  std::vector<std::string> Workloads;
};

/// The server's answer to one BatchRequest, results in request order.
struct BatchReply {
  struct Result {
    std::string Workload;
    unsigned TotalOperations = 0;
    unsigned CoveredOperations = 0;
    unsigned FallbackOperations = 0;
    uint64_t RulesTried = 0;     ///< Full matches attempted.
    uint64_t NodesVisited = 0;   ///< Automaton states walked.
    double SelectUs = 0;         ///< Selection phase wall time.
    std::string Asm;             ///< printMachineFunction output.
  };

  uint64_t Id = 0;
  double WallUs = 0; ///< Whole-batch wall time inside the service.
  std::vector<Result> Results;
};

std::string encodeBatchRequest(const BatchRequest &Request);
std::optional<BatchRequest>
decodeBatchRequest(const std::string &Payload, std::string *Error = nullptr);

std::string encodeBatchReply(const BatchReply &Reply);
std::optional<BatchReply> decodeBatchReply(const std::string &Payload,
                                           std::string *Error = nullptr);

/// Why the server refused or failed a request. Every Error frame the
/// server emits carries one of these (encoded, with an optional
/// retry-after hint), so clients can tell a permanent rejection
/// (BadRequest) from a transient one worth retrying (Overloaded,
/// Timeout) from an orderly drain (ShuttingDown).
enum class ServeErrorCode : uint8_t {
  BadRequest,   ///< Malformed/unserveable payload; retrying is useless.
  Unsupported,  ///< Well-formed frame of a kind this server lacks.
  Timeout,      ///< The request blew its wall budget before service.
  Overloaded,   ///< Admission queue / inflight-byte bound hit; retry.
  ShuttingDown, ///< Server draining; finish elsewhere or retry later.
  Internal,     ///< Server-side failure unrelated to the request.
};

const char *serveErrorCodeName(ServeErrorCode Code);

struct ServeError {
  ServeErrorCode Code = ServeErrorCode::Internal;
  /// Suggested client backoff before retrying; 0 = no hint. Only
  /// meaningful for the transient codes.
  uint32_t RetryAfterMs = 0;
  std::string Message;
};

std::string encodeServeError(const ServeError &Error);
/// Total decoder; also accepts a bare unstructured message (the PR 6
/// solver-pool style) as an Internal error so mixed-version peers
/// still get an explanation instead of a decode failure.
ServeError decodeServeError(const std::string &Payload);

/// A health/readiness probe: no selection work, answered inline by the
/// server loop even while the admission queue is full (a health check
/// must not be sheddable, or orchestration kills a merely-busy
/// server). Identified by its payload tag inside an ordinary Request
/// frame.
struct HealthReply {
  uint64_t UptimeMs = 0;
  unsigned Width = 0;
  std::string ImageFingerprint; ///< Hex content hash of the live image.
  uint64_t ImageGeneration = 0; ///< Bumped by every successful reload.
  uint64_t QueueDepth = 0;      ///< Requests admitted but not served.
  uint64_t Batches = 0;
  uint64_t Shed = 0;     ///< Typed Overloaded rejections so far.
  uint64_t Timeouts = 0; ///< Typed deadline rejections so far.
  uint64_t Reloads = 0;  ///< Successful SIGHUP image swaps.
  uint64_t ReloadFailures = 0;
};

/// True if \p Payload is a health probe (cheap tag check, total).
bool isHealthRequest(const std::string &Payload);
std::string encodeHealthRequest();

std::string encodeHealthReply(const HealthReply &Reply);
std::optional<HealthReply>
decodeHealthReply(const std::string &Payload, std::string *Error = nullptr);

} // namespace selgen

#endif // SELGEN_SERVE_SERVEPROTOCOL_H
