//===- ServeProtocol.h - Compile-server payload encoding ---------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Payload encoding for the selgen-served compile server: what travels
/// inside the wire frames (support/Wire.h) between a client and the
/// resident selection service. A request is one *batch* of IR
/// functions, named by their workload profile (eval/Workloads.h) so
/// both sides generate bit-identical subjects deterministically; a
/// reply carries, per function, the selected machine code plus the
/// matcher telemetry of that one selection (rules tried, automaton
/// states visited, selection microseconds).
///
/// Machine code is embedded as a byte-counted raw block, so the codec
/// never has to escape or even look at the assembly text. Decoders are
/// total functions — malformed input yields nullopt with an
/// explanation, never an abort — because the server must survive any
/// bytes a client or fuzzer throws at it.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SERVE_SERVEPROTOCOL_H
#define SELGEN_SERVE_SERVEPROTOCOL_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace selgen {

/// One batch of functions to compile, referenced by workload profile
/// name ("164.gzip", ...). Names may repeat — a latency benchmark
/// sends the same function many times.
struct BatchRequest {
  uint64_t Id = 0;     ///< Echoed in the reply for client-side pairing.
  unsigned Width = 0;  ///< Must match the server's library width.
  std::vector<std::string> Workloads;
};

/// The server's answer to one BatchRequest, results in request order.
struct BatchReply {
  struct Result {
    std::string Workload;
    unsigned TotalOperations = 0;
    unsigned CoveredOperations = 0;
    unsigned FallbackOperations = 0;
    uint64_t RulesTried = 0;     ///< Full matches attempted.
    uint64_t NodesVisited = 0;   ///< Automaton states walked.
    double SelectUs = 0;         ///< Selection phase wall time.
    std::string Asm;             ///< printMachineFunction output.
  };

  uint64_t Id = 0;
  double WallUs = 0; ///< Whole-batch wall time inside the service.
  std::vector<Result> Results;
};

std::string encodeBatchRequest(const BatchRequest &Request);
std::optional<BatchRequest>
decodeBatchRequest(const std::string &Payload, std::string *Error = nullptr);

std::string encodeBatchReply(const BatchReply &Reply);
std::optional<BatchReply> decodeBatchReply(const std::string &Payload,
                                           std::string *Error = nullptr);

} // namespace selgen

#endif // SELGEN_SERVE_SERVEPROTOCOL_H
