//===- SmtContext.cpp - Z3 context wrapper ----------------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "smt/SmtContext.h"

#include "support/Error.h"
#include "support/FaultInjection.h"
#include "support/Statistics.h"
#include "support/Timer.h"

#include <algorithm>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <new>
#include <optional>
#include <thread>

using namespace selgen;

z3::expr SmtContext::literal(const BitValue &Value) {
  if (Value.width() <= 64)
    return Ctx.bv_val(static_cast<uint64_t>(Value.zextValue()),
                      Value.width());
  // Wide literals go through the decimal string constructor.
  return Ctx.bv_val(Value.toUnsignedString().c_str(), Value.width());
}

BitValue SmtContext::evalBits(const z3::model &Model, const z3::expr &Expr) {
  z3::expr Evaluated = Model.eval(Expr, /*model_completion=*/true);
  assert(Evaluated.is_bv() && "expected a bit-vector expression");
  unsigned Width = Evaluated.get_sort().bv_size();
  uint64_t Narrow = 0;
  if (Evaluated.is_numeral_u64(Narrow))
    return BitValue(Width, Narrow);
  // Wide values: parse the decimal numeral string.
  return BitValue::fromString(Width, Evaluated.get_decimal_string(0), 10);
}

bool SmtContext::evalBool(const z3::model &Model, const z3::expr &Expr) {
  z3::expr Evaluated = Model.eval(Expr, /*model_completion=*/true);
  assert(Evaluated.is_bool() && "expected a boolean expression");
  return Evaluated.is_true();
}

z3::expr SmtContext::mkAnd(const std::vector<z3::expr> &Conjuncts) {
  z3::expr Result = Ctx.bool_val(true);
  for (const z3::expr &Conjunct : Conjuncts)
    Result = Result && Conjunct;
  return Result.simplify();
}

z3::expr SmtContext::mkOr(const std::vector<z3::expr> &Disjuncts) {
  z3::expr Result = Ctx.bool_val(false);
  for (const z3::expr &Disjunct : Disjuncts)
    Result = Result || Disjunct;
  return Result.simplify();
}

const char *selgen::smtFailureName(SmtFailure Failure) {
  switch (Failure) {
  case SmtFailure::None:
    return "none";
  case SmtFailure::Timeout:
    return "timeout";
  case SmtFailure::Rlimit:
    return "rlimit";
  case SmtFailure::Exception:
    return "exception";
  case SmtFailure::Deadline:
    return "deadline";
  }
  SELGEN_UNREACHABLE("bad failure kind");
}

SmtSolver::SmtSolver(SmtContext &Context, const char *Logic)
    : Context(Context), Solver(Context.ctx(), Logic) {}

void SmtSolver::setTimeoutMilliseconds(unsigned Milliseconds) {
  TimeoutMs = Milliseconds;
  z3::params Params(Context.ctx());
  Params.set("timeout", Milliseconds);
  Solver.set(Params);
}

void SmtSolver::setRlimit(uint64_t Budget) { Rlimit = Budget; }

void SmtSolver::setRetryScale(std::vector<unsigned> Scale) {
  if (Scale.empty())
    Scale = {1};
  RetryScale = std::move(Scale);
}

void SmtSolver::setDeadline(std::chrono::steady_clock::time_point NewDeadline) {
  HasDeadline = true;
  Deadline = NewDeadline;
}

void SmtSolver::clearDeadline() { HasDeadline = false; }

void SmtSolver::applyPolicy(const SolverPolicy &Policy) {
  setTimeoutMilliseconds(Policy.TimeoutMs);
  setRlimit(Policy.RlimitPerQuery);
  setRetryScale(Policy.RetryScale);
  if (Policy.DeadlineSeconds > 0)
    setDeadline(std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(Policy.DeadlineSeconds)));
  else
    clearDeadline();
}

namespace {

/// Interrupts a Z3 context when the deadline passes, unless the check
/// it guards retires first. One watchdog exists only for the duration
/// of one check on a solver with an armed deadline; checks without a
/// deadline pay nothing.
///
/// The interrupt is scoped to its check by serializing with retire()
/// on the watchdog mutex: the timeout path inspects Retired and calls
/// Z3_interrupt while holding M, and the check path sets Retired under
/// the same M the moment Z3 hands the result back. Either retire()
/// wins — the watchdog sees the check returned and suppresses itself
/// (counted under "smt.stale_interrupts_suppressed") — or the watchdog
/// wins, in which case retire() blocks until the interrupt has landed,
/// so a late interrupt is confined to the window before attemptCheck
/// returns and can never fire into a later query's execution. (Should
/// Z3 latch a cancel delivered in that residual window, the next check
/// costs one spurious unknown, which the retry ladder absorbs.) A
/// plain load-then-interrupt guard would leave a TOCTOU hole between
/// the two steps; the shared mutex is what closes it.
class DeadlineWatchdog {
public:
  DeadlineWatchdog(z3::context &Ctx,
                   std::chrono::steady_clock::time_point Deadline)
      : Thread([this, &Ctx, Deadline] {
          std::unique_lock<std::mutex> Lock(M);
          if (Cv.wait_until(Lock, Deadline, [this] { return Done; }))
            return; // Disarmed before the deadline.
          if (Retired) {
            // Fast-returning check, late-waking watchdog: interrupting
            // now would land on whatever the recycled solver runs next.
            Statistics::get().add("smt.stale_interrupts_suppressed");
            return;
          }
          Ctx.interrupt();
        }) {}

  /// Marks the guarded check as returned. On return, any interrupt
  /// this watchdog will ever issue has already been issued.
  void retire() {
    std::lock_guard<std::mutex> Guard(M);
    Retired = true;
  }

  ~DeadlineWatchdog() {
    {
      std::lock_guard<std::mutex> Guard(M);
      Done = true;
    }
    Cv.notify_all();
    Thread.join();
  }

private:
  mutable std::mutex M;
  std::condition_variable Cv;
  bool Done = false;
  bool Retired = false;
  std::thread Thread;
};

} // namespace

z3::check_result
SmtSolver::attemptCheck(const std::vector<z3::expr> *Assumptions,
                        unsigned Scale, SmtFailure &AttemptFailure) {
  AttemptFailure = SmtFailure::None;

  // A passed deadline short-circuits without touching the solver.
  if (HasDeadline && std::chrono::steady_clock::now() >= Deadline) {
    AttemptFailure = SmtFailure::Deadline;
    return z3::unknown;
  }

  // Apply the scaled budgets for this attempt. Both z3 params are
  // 32-bit; clamp the escalation instead of wrapping.
  if (TimeoutMs || Rlimit) {
    constexpr uint64_t Max32 = std::numeric_limits<unsigned>::max();
    z3::params Params(Context.ctx());
    uint64_t EffectiveTimeout = uint64_t(TimeoutMs) * Scale;
    if (HasDeadline) {
      auto Remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                           Deadline - std::chrono::steady_clock::now())
                           .count();
      uint64_t RemainingMs = Remaining > 0 ? uint64_t(Remaining) : 1;
      EffectiveTimeout = EffectiveTimeout
                             ? std::min(EffectiveTimeout, RemainingMs)
                             : RemainingMs;
    }
    if (EffectiveTimeout)
      Params.set("timeout", unsigned(std::min(EffectiveTimeout, Max32)));
    if (Rlimit)
      Params.set("rlimit", unsigned(std::min(Rlimit * Scale, Max32)));
    Solver.set(Params);
  }

  // Arm the watchdog for this attempt. The check is retired (under the
  // watchdog's mutex) the moment it returns on every path below, so a
  // watchdog waking after that point suppresses its interrupt instead
  // of cancelling the next query.
  std::optional<DeadlineWatchdog> Watchdog;
  if (HasDeadline)
    Watchdog.emplace(Context.ctx(), Deadline);

  z3::check_result Result = z3::unknown;
  try {
    if (FaultInjector::get().shouldFire("solver_throw"))
      throw z3::exception("injected solver fault");
    if (FaultInjector::get().shouldFire("solver_unknown")) {
      if (Watchdog)
        Watchdog->retire();
      AttemptFailure = SmtFailure::Rlimit;
      return z3::unknown;
    }
    if (Assumptions) {
      z3::expr_vector Vector(Context.ctx());
      for (const z3::expr &Assumption : *Assumptions)
        Vector.push_back(Assumption);
      Result = Solver.check(Vector);
    } else {
      Result = Solver.check();
    }
    if (Watchdog)
      Watchdog->retire();
  } catch (const z3::exception &) {
    if (Watchdog)
      Watchdog->retire();
    Statistics::get().add("smt.exceptions");
    AttemptFailure = SmtFailure::Exception;
    return z3::unknown;
  } catch (const std::bad_alloc &) {
    if (Watchdog)
      Watchdog->retire();
    Statistics::get().add("smt.exceptions");
    AttemptFailure = SmtFailure::Exception;
    return z3::unknown;
  }

  // Deterministic seam for the watchdog-race regression test: park the
  // check thread past the deadline with the watchdog still armed, so
  // the watchdog is guaranteed to wake while this (already retired)
  // generation is the most recent one.
  if (Watchdog && FaultInjector::get().shouldFire("watchdog_late"))
    std::this_thread::sleep_until(Deadline + std::chrono::milliseconds(100));

  if (Result == z3::unknown) {
    // Destroying the watchdog disarms it and joins the thread.
    bool DeadlineFired = false;
    if (Watchdog) {
      Watchdog.reset();
      DeadlineFired = std::chrono::steady_clock::now() >= Deadline;
    }
    std::string Reason = Solver.reason_unknown();
    if (Reason.find("resource") != std::string::npos ||
        Reason.find("rlimit") != std::string::npos)
      AttemptFailure = SmtFailure::Rlimit;
    else if (DeadlineFired)
      AttemptFailure = SmtFailure::Deadline;
    else
      AttemptFailure = SmtFailure::Timeout;
  }
  return Result;
}

SmtResult SmtSolver::supervisedCheck(const std::vector<z3::expr> *Assumptions) {
  Timer Clock;
  LastFailure = SmtFailure::None;

  z3::check_result Result = z3::unknown;
  SmtFailure AttemptFailure = SmtFailure::None;
  for (size_t Attempt = 0; Attempt < RetryScale.size(); ++Attempt) {
    if (Attempt > 0)
      Statistics::get().add("smt.retries");
    Result = attemptCheck(Assumptions, RetryScale[Attempt], AttemptFailure);
    if (Result != z3::unknown)
      break;
    // Past the deadline there is no budget left to escalate into.
    if (AttemptFailure == SmtFailure::Deadline)
      break;
  }

  Statistics::get().add("smt.check_us",
                        static_cast<int64_t>(Clock.elapsedSeconds() * 1e6));
  Statistics::get().add("smt.checks");
  switch (Result) {
  case z3::sat:
    Statistics::get().add("smt.sat");
    return SmtResult::Sat;
  case z3::unsat:
    Statistics::get().add("smt.unsat");
    return SmtResult::Unsat;
  case z3::unknown:
    Statistics::get().add("smt.unknown");
    LastFailure = AttemptFailure == SmtFailure::None ? SmtFailure::Timeout
                                                     : AttemptFailure;
    if (LastFailure == SmtFailure::Rlimit)
      Statistics::get().add("smt.rlimit_exhausted");
    else if (LastFailure == SmtFailure::Deadline)
      Statistics::get().add("smt.deadline_expired");
    return SmtResult::Unknown;
  }
  SELGEN_UNREACHABLE("bad check result");
}

SmtResult SmtSolver::check() { return supervisedCheck(nullptr); }

SmtResult
SmtSolver::checkAssuming(const std::vector<z3::expr> &Assumptions) {
  return supervisedCheck(&Assumptions);
}
