//===- SmtContext.cpp - Z3 context wrapper ----------------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "smt/SmtContext.h"

#include "support/Error.h"
#include "support/Statistics.h"
#include "support/Timer.h"

using namespace selgen;

z3::expr SmtContext::literal(const BitValue &Value) {
  if (Value.width() <= 64)
    return Ctx.bv_val(static_cast<uint64_t>(Value.zextValue()),
                      Value.width());
  // Wide literals go through the decimal string constructor.
  return Ctx.bv_val(Value.toUnsignedString().c_str(), Value.width());
}

BitValue SmtContext::evalBits(const z3::model &Model, const z3::expr &Expr) {
  z3::expr Evaluated = Model.eval(Expr, /*model_completion=*/true);
  assert(Evaluated.is_bv() && "expected a bit-vector expression");
  unsigned Width = Evaluated.get_sort().bv_size();
  uint64_t Narrow = 0;
  if (Evaluated.is_numeral_u64(Narrow))
    return BitValue(Width, Narrow);
  // Wide values: parse the decimal numeral string.
  return BitValue::fromString(Width, Evaluated.get_decimal_string(0), 10);
}

bool SmtContext::evalBool(const z3::model &Model, const z3::expr &Expr) {
  z3::expr Evaluated = Model.eval(Expr, /*model_completion=*/true);
  assert(Evaluated.is_bool() && "expected a boolean expression");
  return Evaluated.is_true();
}

z3::expr SmtContext::mkAnd(const std::vector<z3::expr> &Conjuncts) {
  z3::expr Result = Ctx.bool_val(true);
  for (const z3::expr &Conjunct : Conjuncts)
    Result = Result && Conjunct;
  return Result.simplify();
}

z3::expr SmtContext::mkOr(const std::vector<z3::expr> &Disjuncts) {
  z3::expr Result = Ctx.bool_val(false);
  for (const z3::expr &Disjunct : Disjuncts)
    Result = Result || Disjunct;
  return Result.simplify();
}

SmtSolver::SmtSolver(SmtContext &Context, const char *Logic)
    : Context(Context), Solver(Context.ctx(), Logic) {}

void SmtSolver::setTimeoutMilliseconds(unsigned Milliseconds) {
  z3::params Params(Context.ctx());
  Params.set("timeout", Milliseconds);
  Solver.set(Params);
}

static SmtResult recordResult(z3::check_result Result) {
  Statistics::get().add("smt.checks");
  switch (Result) {
  case z3::sat:
    Statistics::get().add("smt.sat");
    return SmtResult::Sat;
  case z3::unsat:
    Statistics::get().add("smt.unsat");
    return SmtResult::Unsat;
  case z3::unknown:
    Statistics::get().add("smt.unknown");
    return SmtResult::Unknown;
  }
  SELGEN_UNREACHABLE("bad check result");
}

SmtResult SmtSolver::check() {
  Timer Clock;
  z3::check_result Result = Solver.check();
  Statistics::get().add("smt.check_us",
                        static_cast<int64_t>(Clock.elapsedSeconds() * 1e6));
  return recordResult(Result);
}

SmtResult
SmtSolver::checkAssuming(const std::vector<z3::expr> &Assumptions) {
  z3::expr_vector Vector(Context.ctx());
  for (const z3::expr &Assumption : Assumptions)
    Vector.push_back(Assumption);
  Timer Clock;
  z3::check_result Result = Solver.check(Vector);
  Statistics::get().add("smt.check_us",
                        static_cast<int64_t>(Clock.elapsedSeconds() * 1e6));
  return recordResult(Result);
}
