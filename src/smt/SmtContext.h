//===- SmtContext.h - Z3 context wrapper --------------------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin RAII layer over the Z3 C++ API. Following the paper
/// (Section 2.3), everything is modeled in the quantifier-free
/// bit-vector theory QF_BV: booleans appear only at the formula level,
/// and all values — including the location variables and the M-values —
/// are bit-vectors.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SMT_SMTCONTEXT_H
#define SELGEN_SMT_SMTCONTEXT_H

#include "ir/Sort.h"
#include "support/BitValue.h"

#include <z3++.h>

#include <chrono>
#include <string>
#include <vector>

namespace selgen {

/// Owns a z3::context and provides conversions between the project's
/// value types and Z3 terms.
class SmtContext {
public:
  SmtContext() = default;
  SmtContext(const SmtContext &) = delete;
  SmtContext &operator=(const SmtContext &) = delete;

  z3::context &ctx() { return Ctx; }

  /// Creates a bit-vector literal from a BitValue of any width.
  z3::expr literal(const BitValue &Value);

  /// Creates a fresh bit-vector constant.
  z3::expr bvConst(const std::string &Name, unsigned Width) {
    return Ctx.bv_const(Name.c_str(), Width);
  }

  /// Creates a fresh boolean constant.
  z3::expr boolConst(const std::string &Name) {
    return Ctx.bool_const(Name.c_str());
  }

  z3::expr boolVal(bool Value) { return Ctx.bool_val(Value); }

  /// Extracts the value of bit-vector expression \p Expr under
  /// \p Model, with model completion (unconstrained bits become 0).
  BitValue evalBits(const z3::model &Model, const z3::expr &Expr);

  /// Extracts a boolean under \p Model with model completion.
  bool evalBool(const z3::model &Model, const z3::expr &Expr);

  /// Conjunction of a vector (true for the empty vector).
  z3::expr mkAnd(const std::vector<z3::expr> &Conjuncts);

  /// Disjunction of a vector (false for the empty vector).
  z3::expr mkOr(const std::vector<z3::expr> &Disjuncts);

private:
  z3::context Ctx;
};

/// Outcome of a solver query.
enum class SmtResult { Sat, Unsat, Unknown };

/// Why the last check() failed to produce a definite answer.
enum class SmtFailure {
  None,      ///< The last check was conclusive (or none was run).
  Timeout,   ///< Wall-clock timeout expired on every attempt.
  Rlimit,    ///< The deterministic Z3 resource budget was exhausted.
  Exception, ///< z3::exception / allocation failure was contained.
  Deadline,  ///< The per-goal deadline passed; query was interrupted.
};

/// Stable lowercase name of \p Failure ("timeout", "rlimit", ...).
const char *smtFailureName(SmtFailure Failure);

/// Supervision policy for solver queries: per-attempt budgets, an
/// escalating retry ladder, and a hard deadline. Wall-clock timeouts
/// keep runs from hanging but are machine-dependent; the Z3 rlimit is
/// a deterministic proof-effort budget, so rlimit-bounded outcomes
/// replay identically across machines and reruns (the property the
/// fault-injection byte-identity tests lean on).
struct SolverPolicy {
  /// Base wall-clock timeout per attempt in ms; 0 disables.
  unsigned TimeoutMs = 0;
  /// Base Z3 rlimit per attempt; 0 disables.
  uint64_t RlimitPerQuery = 0;
  /// Budget multipliers, one attempt each: {1, 4, 16} retries an
  /// inconclusive query twice with 4x and then 16x budgets.
  std::vector<unsigned> RetryScale = {1};
  /// Hard deadline this many seconds from the moment the policy is
  /// applied; 0 disables. An in-flight query is cancelled at the
  /// deadline via Z3_interrupt, so one stuck query cannot pin a worker
  /// past its goal budget.
  double DeadlineSeconds = 0;
};

/// A solver bound to a context, with query statistics, budget
/// supervision, and containment of solver-side failures. Statistics
/// land in the global Statistics registry under "smt.checks",
/// "smt.sat", "smt.unsat", "smt.unknown", plus "smt.retries",
/// "smt.rlimit_exhausted", "smt.exceptions", and
/// "smt.deadline_expired" from the supervision layer.
///
/// check() never throws: z3::exception and allocation failures are
/// contained and surface as SmtResult::Unknown with
/// lastFailure() == SmtFailure::Exception, so one bad query marks a
/// goal incomplete instead of taking down the worker.
class SmtSolver {
public:
  /// \p Logic defaults to QF_BV (the paper's setting, Section 2.3:
  /// constraining Z3 to one theory "reduced the solving time by a
  /// factor of two"); pass e.g. "QF_ABV" for array-theory experiments.
  explicit SmtSolver(SmtContext &Context, const char *Logic = "QF_BV");

  void add(const z3::expr &Assertion) { Solver.add(Assertion); }
  void push() { Solver.push(); }
  void pop() { Solver.pop(); }
  void reset() { Solver.reset(); }

  /// Sets the per-check timeout. Zero disables the timeout.
  void setTimeoutMilliseconds(unsigned Milliseconds);

  /// Sets the deterministic per-attempt Z3 resource budget; zero
  /// disables it.
  void setRlimit(uint64_t Budget);

  /// Sets the escalation ladder: one check attempt per entry, with
  /// timeout and rlimit scaled by it. An empty vector means {1}.
  void setRetryScale(std::vector<unsigned> Scale);

  /// Arms the hard deadline: once it passes, in-flight checks are
  /// interrupted and further checks return Unknown immediately.
  void setDeadline(std::chrono::steady_clock::time_point Deadline);
  void clearDeadline();

  /// Applies all of the above in one call.
  void applyPolicy(const SolverPolicy &Policy);

  SmtResult check();
  /// Like check(), with extra assumptions for this query only.
  SmtResult checkAssuming(const std::vector<z3::expr> &Assumptions);

  /// Why the last check() returned Unknown (None after a conclusive
  /// check).
  SmtFailure lastFailure() const { return LastFailure; }

  z3::model model() { return Solver.get_model(); }

private:
  SmtResult supervisedCheck(const std::vector<z3::expr> *Assumptions);
  z3::check_result attemptCheck(const std::vector<z3::expr> *Assumptions,
                                unsigned Scale, SmtFailure &AttemptFailure);

  SmtContext &Context;
  z3::solver Solver;
  unsigned TimeoutMs = 0;
  uint64_t Rlimit = 0;
  std::vector<unsigned> RetryScale = {1};
  bool HasDeadline = false;
  std::chrono::steady_clock::time_point Deadline{};
  SmtFailure LastFailure = SmtFailure::None;
};

} // namespace selgen

#endif // SELGEN_SMT_SMTCONTEXT_H
