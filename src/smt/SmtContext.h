//===- SmtContext.h - Z3 context wrapper --------------------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin RAII layer over the Z3 C++ API. Following the paper
/// (Section 2.3), everything is modeled in the quantifier-free
/// bit-vector theory QF_BV: booleans appear only at the formula level,
/// and all values — including the location variables and the M-values —
/// are bit-vectors.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SMT_SMTCONTEXT_H
#define SELGEN_SMT_SMTCONTEXT_H

#include "ir/Sort.h"
#include "support/BitValue.h"

#include <z3++.h>

#include <string>
#include <vector>

namespace selgen {

/// Owns a z3::context and provides conversions between the project's
/// value types and Z3 terms.
class SmtContext {
public:
  SmtContext() = default;
  SmtContext(const SmtContext &) = delete;
  SmtContext &operator=(const SmtContext &) = delete;

  z3::context &ctx() { return Ctx; }

  /// Creates a bit-vector literal from a BitValue of any width.
  z3::expr literal(const BitValue &Value);

  /// Creates a fresh bit-vector constant.
  z3::expr bvConst(const std::string &Name, unsigned Width) {
    return Ctx.bv_const(Name.c_str(), Width);
  }

  /// Creates a fresh boolean constant.
  z3::expr boolConst(const std::string &Name) {
    return Ctx.bool_const(Name.c_str());
  }

  z3::expr boolVal(bool Value) { return Ctx.bool_val(Value); }

  /// Extracts the value of bit-vector expression \p Expr under
  /// \p Model, with model completion (unconstrained bits become 0).
  BitValue evalBits(const z3::model &Model, const z3::expr &Expr);

  /// Extracts a boolean under \p Model with model completion.
  bool evalBool(const z3::model &Model, const z3::expr &Expr);

  /// Conjunction of a vector (true for the empty vector).
  z3::expr mkAnd(const std::vector<z3::expr> &Conjuncts);

  /// Disjunction of a vector (false for the empty vector).
  z3::expr mkOr(const std::vector<z3::expr> &Disjuncts);

private:
  z3::context Ctx;
};

/// Outcome of a solver query.
enum class SmtResult { Sat, Unsat, Unknown };

/// A solver bound to a context, with query statistics and timeout
/// support. Statistics land in the global Statistics registry under
/// "smt.checks", "smt.sat", "smt.unsat", "smt.unknown".
class SmtSolver {
public:
  /// \p Logic defaults to QF_BV (the paper's setting, Section 2.3:
  /// constraining Z3 to one theory "reduced the solving time by a
  /// factor of two"); pass e.g. "QF_ABV" for array-theory experiments.
  explicit SmtSolver(SmtContext &Context, const char *Logic = "QF_BV");

  void add(const z3::expr &Assertion) { Solver.add(Assertion); }
  void push() { Solver.push(); }
  void pop() { Solver.pop(); }
  void reset() { Solver.reset(); }

  /// Sets the per-check timeout. Zero disables the timeout.
  void setTimeoutMilliseconds(unsigned Milliseconds);

  SmtResult check();
  /// Like check(), with extra assumptions for this query only.
  SmtResult checkAssuming(const std::vector<z3::expr> &Assumptions);

  z3::model model() { return Solver.get_model(); }

private:
  SmtContext &Context;
  z3::solver Solver;
};

} // namespace selgen

#endif // SELGEN_SMT_SMTCONTEXT_H
