//===- SolverPool.cpp - Out-of-process solver worker pool ---------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "smt/SolverPool.h"

#include "support/AtomicFile.h"
#include "support/Statistics.h"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace selgen;

// Wire framing lives in support/Wire.cpp; this file is the pool only.

namespace {

/// Milliseconds until \p Deadline, clamped to >= 0; -1 if unset.
int64_t remainingMs(int64_t DeadlineMs,
                    std::chrono::steady_clock::time_point Start) {
  if (DeadlineMs < 0)
    return -1;
  auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
  return Elapsed >= DeadlineMs ? 0 : DeadlineMs - Elapsed;
}

} // namespace

SolverPool::SolverPool(SolverPoolOptions Opts) : Options(std::move(Opts)) {
  if (Options.NumWorkers == 0)
    Options.NumWorkers = 1;
  if (Options.WorkerPath.empty())
    Options.WorkerPath = defaultWorkerPath();
}

SolverPool::~SolverPool() { shutdown(); }

std::string SolverPool::defaultWorkerPath() {
  if (const char *Env = std::getenv("SELGEN_SOLVERD"))
    if (*Env)
      return Env;
  char Buffer[4096];
  ssize_t Length = ::readlink("/proc/self/exe", Buffer, sizeof(Buffer) - 1);
  if (Length > 0) {
    Buffer[Length] = '\0';
    std::string Path(Buffer);
    size_t Slash = Path.rfind('/');
    if (Slash != std::string::npos)
      return Path.substr(0, Slash + 1) + "selgen-solverd";
  }
  return "selgen-solverd";
}

bool SolverPool::start() {
  // wire::writeAll reports a dead peer as EPIPE; that contract only
  // holds with SIGPIPE ignored. With the default disposition, writing
  // a request to a worker that died since its last query (OOM-killed
  // while idle, say) would deliver SIGPIPE and kill the whole
  // scheduler — the exact blast radius this pool exists to contain.
  ::signal(SIGPIPE, SIG_IGN);

  std::lock_guard<std::mutex> Guard(Lock);
  Workers.resize(Options.NumWorkers);
  for (Worker &Slot : Workers)
    if (!spawnWorker(Slot)) {
      for (Worker &Started : Workers)
        stopWorker(Started, /*Kill=*/true);
      Workers.clear();
      return false;
    }
  Usable = true;
  return true;
}

void SolverPool::shutdown() {
  std::unique_lock<std::mutex> Guard(Lock);
  // Refuse new checkouts, then drain: closing a busy worker's fds
  // would yank them out from under an in-flight readFrame and leave
  // that run() holding a dangling slot reference.
  Usable = false;
  Available.wait(Guard, [this] {
    for (const Worker &Slot : Workers)
      if (Slot.Busy)
        return false;
    return true;
  });
  for (Worker &Slot : Workers)
    stopWorker(Slot, /*Kill=*/false);
  Workers.clear();
}

bool SolverPool::spawnWorker(Worker &Slot) {
  // All pipes are born O_CLOEXEC: spawnWorker runs without Lock (slots
  // respawn concurrently from run()), so a child forked by another
  // thread mid-spawn must not inherit these fds. Marking them CLOEXEC
  // after fork() would leave exactly that window — the leaked write
  // end would hold a crashed worker's stream open and mask its EOF.
  // The child's dup2 onto stdio clears CLOEXEC on the copies it keeps.
  int Request[2], Response[2], Exec[2];
  if (::pipe2(Request, O_CLOEXEC) != 0)
    return false;
  if (::pipe2(Response, O_CLOEXEC) != 0) {
    ::close(Request[0]);
    ::close(Request[1]);
    return false;
  }
  // Exec-status pipe: CLOEXEC in the child, so a successful exec closes
  // it (parent reads EOF) while an exec failure writes the errno byte.
  // This is race-free where a WNOHANG waitpid probe is not — the child
  // may not have reached _exit yet when the parent probes.
  if (::pipe2(Exec, O_CLOEXEC) != 0) {
    for (int Fd : {Request[0], Request[1], Response[0], Response[1]})
      ::close(Fd);
    return false;
  }

  pid_t Child = ::fork();
  if (Child < 0) {
    for (int Fd : {Request[0], Request[1], Response[0], Response[1], Exec[0],
                   Exec[1]})
      ::close(Fd);
    return false;
  }

  if (Child == 0) {
    ::dup2(Request[0], STDIN_FILENO);
    ::dup2(Response[1], STDOUT_FILENO);
    ::close(Exec[0]);
    for (int Fd : {Request[0], Request[1], Response[0], Response[1]})
      ::close(Fd);
    for (const auto &[Name, Value] : Options.WorkerEnv)
      ::setenv(Name.c_str(), Value.c_str(), 1);
    ::execl(Options.WorkerPath.c_str(), Options.WorkerPath.c_str(),
            static_cast<char *>(nullptr));
    unsigned char Errno = static_cast<unsigned char>(errno);
    (void)!::write(Exec[1], &Errno, 1);
    ::_exit(127);
  }

  ::close(Request[0]);
  ::close(Response[1]);
  ::close(Exec[1]);
  // Non-blocking request end so writeAll can honor the hang deadline
  // when a wedged worker stops draining stdin and the pipe fills up.
  ::fcntl(Request[1], F_SETFL, O_NONBLOCK);

  // EOF here means the exec-status pipe was closed by a successful
  // exec; a byte means exec failed and carries the child's errno.
  unsigned char Errno = 0;
  ssize_t ExecStatus;
  do
    ExecStatus = ::read(Exec[0], &Errno, 1);
  while (ExecStatus < 0 && errno == EINTR);
  ::close(Exec[0]);
  if (ExecStatus != 0) {
    ::close(Request[1]);
    ::close(Response[0]);
    int Status = 0;
    ::waitpid(Child, &Status, 0);
    Slot = Worker();
    return false;
  }

  Slot.Pid = Child;
  Slot.RequestFd = Request[1];
  Slot.ResponseFd = Response[0];
  Slot.Queries = 0;
  Statistics::get().add("pool.spawns");
  return true;
}

void SolverPool::stopWorker(Worker &Slot, bool Kill) {
  if (Slot.Pid < 0)
    return;
  if (Kill)
    ::kill(Slot.Pid, SIGKILL);
  // Closing stdin is the graceful shutdown signal; the worker's read
  // loop sees EOF and exits.
  if (Slot.RequestFd >= 0)
    ::close(Slot.RequestFd);
  if (Slot.ResponseFd >= 0)
    ::close(Slot.ResponseFd);
  int Status = 0;
  ::waitpid(Slot.Pid, &Status, 0);
  Slot.Pid = -1;
  Slot.RequestFd = -1;
  Slot.ResponseFd = -1;
  Slot.Queries = 0;
}

uint64_t SolverPool::workerRssBytes(pid_t Pid) {
  std::optional<std::string> Statm =
      readFileToString("/proc/" + std::to_string(Pid) + "/statm");
  if (!Statm)
    return 0;
  // statm: size resident shared ... (in pages).
  unsigned long long Size = 0, Resident = 0;
  if (std::sscanf(Statm->c_str(), "%llu %llu", &Size, &Resident) != 2)
    return 0;
  return uint64_t(Resident) * static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
}

std::optional<size_t> SolverPool::checkoutWorker() {
  std::unique_lock<std::mutex> Guard(Lock);
  while (true) {
    if (!Usable)
      return std::nullopt; // shutdown() won the race.
    for (size_t I = 0; I < Workers.size(); ++I)
      if (!Workers[I].Busy) {
        Workers[I].Busy = true;
        return I;
      }
    Available.wait(Guard);
  }
}

void SolverPool::releaseWorker(size_t Index) {
  {
    std::lock_guard<std::mutex> Guard(Lock);
    Workers[Index].Busy = false;
  }
  // notify_all: both blocked checkouts and a draining shutdown() wait
  // on this condition variable.
  Available.notify_all();
}

PoolReply SolverPool::run(const std::string &RequestPayload,
                          double BudgetSeconds) {
  PoolReply Reply;
  if (!Usable) {
    Reply.Failure = SmtFailure::Exception;
    return Reply;
  }

  int64_t DeadlineMs = -1;
  if (BudgetSeconds > 0)
    DeadlineMs = static_cast<int64_t>(
        (BudgetSeconds + Options.GraceSeconds) * 1000.0);

  std::optional<size_t> Index = checkoutWorker();
  if (!Index) {
    // The pool shut down while we were waiting for a worker.
    Reply.Failure = SmtFailure::Exception;
    return Reply;
  }
  // Safe to hold across the unlocked query: Workers is only resized by
  // start() (before Usable) and shutdown() (after draining Busy slots,
  // which includes this one).
  Worker &Slot = Workers[*Index];
  Statistics::get().add("pool.queries");

  unsigned CrashRetries = 0, DeadlineRetries = 0;
  while (true) {
    // (Re)spawn the slot if its worker is gone (crashed on a previous
    // query, or was recycled on release).
    if (Slot.Pid < 0 && !spawnWorker(Slot)) {
      Reply.Failure = SmtFailure::Exception;
      break;
    }

    // One hang budget covers the whole attempt: a worker that wedges
    // before draining stdin stalls the *write* (the request can exceed
    // the pipe capacity — range requests carry a corpus snapshot), so
    // the write gets the deadline too and a timeout there is the same
    // hang as a timeout on the read.
    auto AttemptStart = std::chrono::steady_clock::now();
    wire::WriteStatus Sent = wire::writeFrame(Slot.RequestFd, wire::Request,
                                              RequestPayload, DeadlineMs);
    wire::Frame Response;
    wire::ReadStatus Status;
    if (Sent == wire::WriteStatus::Ok)
      Status = wire::readFrame(Slot.ResponseFd, Response,
                               remainingMs(DeadlineMs, AttemptStart));
    else
      Status = Sent == wire::WriteStatus::Timeout ? wire::ReadStatus::Timeout
                                                  : wire::ReadStatus::Eof;

    if (Status == wire::ReadStatus::Ok &&
        Response.Type == wire::Response) {
      Reply.Ok = true;
      Reply.Payload = std::move(Response.Payload);
      ++Slot.Queries;
      break;
    }
    if (Status == wire::ReadStatus::Ok && Response.Type == wire::Error) {
      // The worker is healthy; the request itself was rejected. Not
      // retryable — a respawn would reject it again.
      Reply.Failure = SmtFailure::Exception;
      Reply.Payload = std::move(Response.Payload);
      ++Slot.Queries;
      break;
    }

    // Everything else means the worker is unusable: EOF / torn or
    // garbage frame / unexpected type (crash), or deadline (hang).
    // The time sunk into the condemned attempt is reported back so
    // budget-enforcing callers can refund it (see PoolReply).
    Reply.StalledSeconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      AttemptStart)
            .count();
    bool Hung = Status == wire::ReadStatus::Timeout;
    Statistics::get().add("pool.crashes");
    if (Hung)
      Statistics::get().add("pool.deadline_kills");
    stopWorker(Slot, /*Kill=*/true);

    unsigned &Retries = Hung ? DeadlineRetries : CrashRetries;
    unsigned Budget =
        Hung ? Options.MaxDeadlineRetries : Options.MaxCrashRetries;
    if (Retries >= Budget) {
      Reply.Failure = Hung ? SmtFailure::Deadline : SmtFailure::Exception;
      break;
    }
    ++Retries;
    Statistics::get().add("pool.respawn_retries");
  }

  // Per-worker recycling: after K queries or M bytes RSS the worker is
  // retired on release and the next query gets a fresh process.
  if (Slot.Pid >= 0) {
    bool Recycle = Options.RecycleAfterQueries &&
                   Slot.Queries >= Options.RecycleAfterQueries;
    if (!Recycle && Options.RecycleRssBytes &&
        workerRssBytes(Slot.Pid) >= Options.RecycleRssBytes)
      Recycle = true;
    if (Recycle) {
      Statistics::get().add("pool.recycles");
      stopWorker(Slot, /*Kill=*/false);
    }
  }

  releaseWorker(*Index);
  return Reply;
}
