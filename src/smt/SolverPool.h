//===- SolverPool.h - Out-of-process solver worker pool ----------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-isolated solver execution: a pool of supervised `selgen-solverd`
/// worker processes that receive serialized queries over a pipe and
/// stream back typed results. PR 5 contained solver failures *inside*
/// the process (typed SmtFailure, retry ladder, journal); this layer
/// moves the solver out of the process entirely, so a Z3 segfault, an
/// OOM kill, or a wedged query costs one child process and one retried
/// query — never the scheduler.
///
/// Wire protocol: the shared CRC-framed transport in support/Wire.h.
/// Any magic / length / CRC mismatch classifies the worker as crashed
/// (garbage on a pipe means the writer is gone or insane), the child
/// is SIGKILLed, reaped, and respawned. There is no resynchronization
/// by design — respawn is cheap and always returns the stream to a
/// known state.
///
/// Supervision policy per worker:
///   * recycle after K queries or M bytes of resident set — long-lived
///     Z3 processes fragment and bloat; recycling bounds both;
///   * SIGKILL on deadline instead of the in-process interrupt
///     watchdog — a kill is effective even when Z3 ignores interrupts
///     (tight solver loops, allocator deadlock after corruption);
///   * automatic respawn + bounded query retry on crash, wired into
///     the same failure taxonomy the retry ladder uses: a query that
///     survives no respawn retry reports SmtFailure::Exception (crash)
///     or SmtFailure::Deadline (hang), exactly like an in-process
///     contained failure, so callers need no new error paths.
///
/// Counters (in the global Statistics registry, hence --stats-json):
/// pool.spawns, pool.recycles, pool.crashes, pool.respawn_retries,
/// pool.deadline_kills, pool.queries.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SMT_SOLVERPOOL_H
#define SELGEN_SMT_SOLVERPOOL_H

#include "smt/SmtContext.h"
#include "support/Wire.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace selgen {

/// Configuration of one worker pool.
struct SolverPoolOptions {
  /// Worker processes to keep alive.
  unsigned NumWorkers = 1;
  /// Path of the worker binary; empty uses defaultWorkerPath().
  std::string WorkerPath;
  /// Extra environment for spawned workers (e.g. SELGEN_FAULTS for the
  /// crash-injection tests), applied on top of the inherited one.
  std::map<std::string, std::string> WorkerEnv;
  /// Recycle a worker after this many queries; 0 disables.
  unsigned RecycleAfterQueries = 64;
  /// Recycle a worker whose resident set exceeds this; 0 disables.
  uint64_t RecycleRssBytes = 1ull << 30;
  /// Respawn-and-retry attempts for a query whose worker crashed.
  unsigned MaxCrashRetries = 2;
  /// Retry attempts for a query whose worker was killed on deadline.
  unsigned MaxDeadlineRetries = 1;
  /// Grace added on top of a request's own budget before the worker is
  /// declared hung and SIGKILLed.
  double GraceSeconds = 15;
};

/// Outcome of one pool query.
struct PoolReply {
  /// True iff a well-formed Response frame came back.
  bool Ok = false;
  /// When !Ok: Deadline (worker hung, killed), Exception (worker
  /// crashed / garbage reply / worker-reported error).
  SmtFailure Failure = SmtFailure::None;
  /// Response payload (Ok) or the worker's error message (!Ok with a
  /// well-formed Error frame).
  std::string Payload;
  /// Wall time burned on attempts whose worker was condemned (crash,
  /// garbage frame, deadline kill) — work the in-process path would
  /// never have paid for. Callers that enforce wall-clock budgets
  /// should refund this, so fault recovery does not push otherwise
  /// identical runs over their budgets and perturb deterministic
  /// outcomes.
  double StalledSeconds = 0;
};

/// A pool of supervised worker processes. Thread-safe: scheduler
/// workers call run() concurrently; each call checks out one worker
/// for the duration of the query (callers block while all workers are
/// busy).
class SolverPool {
public:
  explicit SolverPool(SolverPoolOptions Options);
  ~SolverPool();
  SolverPool(const SolverPool &) = delete;
  SolverPool &operator=(const SolverPool &) = delete;

  /// $SELGEN_SOLVERD if set, else `selgen-solverd` next to the current
  /// executable.
  static std::string defaultWorkerPath();

  /// Spawns the initial workers. False if the worker binary cannot be
  /// executed (the pool is then unusable). Also ignores SIGPIPE
  /// process-wide: a request written to a worker that died while idle
  /// must surface as a failed write (one respawn), not kill the
  /// scheduler.
  bool start();

  /// True once start() succeeded.
  bool usable() const { return Usable; }

  const SolverPoolOptions &options() const { return Options; }

  /// Sends one request payload to a worker and awaits its reply.
  /// \p BudgetSeconds is the request's own time budget; the worker is
  /// SIGKILLed GraceSeconds past it (0 = no deadline). Crashed or hung
  /// workers are respawned and the query retried within the configured
  /// bounds; an exhausted retry budget surfaces as a typed failure.
  PoolReply run(const std::string &RequestPayload, double BudgetSeconds = 0);

  /// Gracefully shuts down all workers (close stdin, reap). Called by
  /// the destructor. Blocks new checkouts, then waits for in-flight
  /// run() calls to drain before closing any worker's pipes — a
  /// concurrent query never sees its fds yanked mid-read.
  void shutdown();

private:
  struct Worker {
    pid_t Pid = -1;
    int RequestFd = -1;  ///< Parent writes requests here (O_NONBLOCK).
    int ResponseFd = -1; ///< Parent reads responses here.
    unsigned Queries = 0;
    bool Busy = false;
  };

  SolverPoolOptions Options;
  std::atomic<bool> Usable{false};

  std::mutex Lock;
  std::condition_variable Available;
  std::vector<Worker> Workers;

  /// Spawns a worker into \p Slot. False on fork/exec failure.
  bool spawnWorker(Worker &Slot);
  /// SIGKILLs (if \p Kill) and reaps a worker, closing its pipes.
  void stopWorker(Worker &Slot, bool Kill);
  /// Resident set size of \p Pid in bytes (0 if unknown).
  static uint64_t workerRssBytes(pid_t Pid);

  /// Blocks until a worker is free; nullopt once shutdown() began.
  std::optional<size_t> checkoutWorker();
  void releaseWorker(size_t Index);
};

} // namespace selgen

#endif // SELGEN_SMT_SOLVERPOOL_H
