//===- AtomicFile.cpp - Crash-safe file publication ---------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/AtomicFile.h"

#include <array>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include <fcntl.h>
#include <unistd.h>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SELGEN_CRC32_PCLMUL 1
#include <immintrin.h>
#endif

using namespace selgen;

// The CRC-32 here (IEEE 802.3 reflected, polynomial 0xEDB88320) guards
// every frame of the worker/serve wire protocol and the header+payload
// of mmap'ed binary automaton images, where it dominates the whole
// load path — so it gets a real fast path instead of the textbook
// byte-at-a-time loop. Three tiers, all producing identical results
// (asserted against each other and reference vectors in test_support):
//
//   1. PCLMULQDQ carry-less-multiply folding (runtime-detected on
//      x86-64), the standard 4x128-bit reduction from Intel's CRC
//      whitepaper — tens of GB/s.
//   2. Slice-by-8: eight parallel table lookups per 8-byte word,
//      breaking the 1-byte-per-lookup dependency chain.
//   3. The byte-at-a-time table loop for tails and as the portable
//      reference.
namespace {

std::array<std::array<uint32_t, 256>, 8> makeCrcTables() {
  std::array<std::array<uint32_t, 256>, 8> Tables{};
  for (uint32_t N = 0; N < 256; ++N) {
    uint32_t C = N;
    for (int K = 0; K < 8; ++K)
      C = (C & 1) ? 0xedb88320u ^ (C >> 1) : C >> 1;
    Tables[0][N] = C;
  }
  for (uint32_t N = 0; N < 256; ++N)
    for (size_t Slice = 1; Slice < 8; ++Slice)
      Tables[Slice][N] = Tables[0][Tables[Slice - 1][N] & 0xffu] ^
                         (Tables[Slice - 1][N] >> 8);
  return Tables;
}

const std::array<std::array<uint32_t, 256>, 8> &crcTables() {
  static const std::array<std::array<uint32_t, 256>, 8> Tables =
      makeCrcTables();
  return Tables;
}

/// Byte-at-a-time over [Bytes, Bytes+Size), on the conditioned
/// (pre-inverted) state \p C.
uint32_t crcBytewise(uint32_t C, const unsigned char *Bytes, size_t Size) {
  const std::array<uint32_t, 256> &Table = crcTables()[0];
  for (size_t I = 0; I < Size; ++I)
    C = Table[(C ^ Bytes[I]) & 0xffu] ^ (C >> 8);
  return C;
}

/// Slice-by-8 over whole 8-byte words (little-endian load order
/// matches the reflected polynomial; x86-64 only ever takes this or
/// the PCLMUL path, and other hosts fall back to crcBytewise).
uint32_t crcSlice8(uint32_t C, const unsigned char *Bytes, size_t Size) {
  const std::array<std::array<uint32_t, 256>, 8> &T = crcTables();
  while (Size >= 8) {
    uint64_t Word;
    std::memcpy(&Word, Bytes, 8);
    Word ^= C;
    C = T[7][Word & 0xffu] ^ T[6][(Word >> 8) & 0xffu] ^
        T[5][(Word >> 16) & 0xffu] ^ T[4][(Word >> 24) & 0xffu] ^
        T[3][(Word >> 32) & 0xffu] ^ T[2][(Word >> 40) & 0xffu] ^
        T[1][(Word >> 48) & 0xffu] ^ T[0][Word >> 56];
    Bytes += 8;
    Size -= 8;
  }
  return crcBytewise(C, Bytes, Size);
}

#ifdef SELGEN_CRC32_PCLMUL

/// PCLMULQDQ folding on the conditioned state, requiring Size >= 64
/// and Size % 16 == 0 (the caller peels the tail). Folding constants
/// are x^k mod P precomputed for the reflected polynomial, per the
/// Intel whitepaper "Fast CRC Computation for Generic Polynomials
/// Using PCLMULQDQ Instruction".
__attribute__((target("pclmul,sse4.1"))) uint32_t
crcClmul(uint32_t C, const unsigned char *Buf, size_t Size) {
  alignas(16) static const uint64_t K1K2[2] = {0x0154442bd4, 0x01c6e41596};
  alignas(16) static const uint64_t K3K4[2] = {0x01751997d0, 0x00ccaa009e};
  alignas(16) static const uint64_t K5K0[2] = {0x0163cd6124, 0x0000000000};
  alignas(16) static const uint64_t Poly[2] = {0x01db710641, 0x01f7011641};

  __m128i X1 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(Buf));
  __m128i X2 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(Buf + 16));
  __m128i X3 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(Buf + 32));
  __m128i X4 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(Buf + 48));
  X1 = _mm_xor_si128(X1, _mm_cvtsi32_si128(static_cast<int>(C)));
  __m128i K = _mm_load_si128(reinterpret_cast<const __m128i *>(K1K2));
  Buf += 64;
  Size -= 64;

  // Fold four 128-bit lanes forward by 512 bits per iteration.
  while (Size >= 64) {
    __m128i T1 = _mm_clmulepi64_si128(X1, K, 0x00);
    __m128i T2 = _mm_clmulepi64_si128(X2, K, 0x00);
    __m128i T3 = _mm_clmulepi64_si128(X3, K, 0x00);
    __m128i T4 = _mm_clmulepi64_si128(X4, K, 0x00);
    X1 = _mm_clmulepi64_si128(X1, K, 0x11);
    X2 = _mm_clmulepi64_si128(X2, K, 0x11);
    X3 = _mm_clmulepi64_si128(X3, K, 0x11);
    X4 = _mm_clmulepi64_si128(X4, K, 0x11);
    X1 = _mm_xor_si128(
        _mm_xor_si128(X1, T1),
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(Buf)));
    X2 = _mm_xor_si128(
        _mm_xor_si128(X2, T2),
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(Buf + 16)));
    X3 = _mm_xor_si128(
        _mm_xor_si128(X3, T3),
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(Buf + 32)));
    X4 = _mm_xor_si128(
        _mm_xor_si128(X4, T4),
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(Buf + 48)));
    Buf += 64;
    Size -= 64;
  }

  // Reduce the four lanes to one.
  K = _mm_load_si128(reinterpret_cast<const __m128i *>(K3K4));
  __m128i T = _mm_clmulepi64_si128(X1, K, 0x00);
  X1 = _mm_clmulepi64_si128(X1, K, 0x11);
  X1 = _mm_xor_si128(_mm_xor_si128(X1, T), X2);
  T = _mm_clmulepi64_si128(X1, K, 0x00);
  X1 = _mm_clmulepi64_si128(X1, K, 0x11);
  X1 = _mm_xor_si128(_mm_xor_si128(X1, T), X3);
  T = _mm_clmulepi64_si128(X1, K, 0x00);
  X1 = _mm_clmulepi64_si128(X1, K, 0x11);
  X1 = _mm_xor_si128(_mm_xor_si128(X1, T), X4);

  // Fold remaining whole 16-byte blocks.
  while (Size >= 16) {
    T = _mm_clmulepi64_si128(X1, K, 0x00);
    X1 = _mm_clmulepi64_si128(X1, K, 0x11);
    X1 = _mm_xor_si128(_mm_xor_si128(X1, T),
                       _mm_loadu_si128(
                           reinterpret_cast<const __m128i *>(Buf)));
    Buf += 16;
    Size -= 16;
  }

  // 128 -> 64 bits, then Barrett reduction to the 32-bit remainder.
  const __m128i Mask32 = _mm_setr_epi32(~0, 0, ~0, 0);
  T = _mm_clmulepi64_si128(X1, K, 0x10);
  X1 = _mm_srli_si128(X1, 8);
  X1 = _mm_xor_si128(X1, T);
  K = _mm_loadl_epi64(reinterpret_cast<const __m128i *>(K5K0));
  T = _mm_srli_si128(X1, 4);
  X1 = _mm_and_si128(X1, Mask32);
  X1 = _mm_clmulepi64_si128(X1, K, 0x00);
  X1 = _mm_xor_si128(X1, T);
  K = _mm_load_si128(reinterpret_cast<const __m128i *>(Poly));
  T = _mm_and_si128(X1, Mask32);
  T = _mm_clmulepi64_si128(T, K, 0x10);
  T = _mm_and_si128(T, Mask32);
  T = _mm_clmulepi64_si128(T, K, 0x00);
  X1 = _mm_xor_si128(X1, T);
  return static_cast<uint32_t>(_mm_extract_epi32(X1, 1));
}

bool haveClmul() {
  static const bool Have =
      __builtin_cpu_supports("pclmul") && __builtin_cpu_supports("sse4.1");
  return Have;
}

#endif // SELGEN_CRC32_PCLMUL

} // namespace

uint32_t selgen::crc32(const void *Data, size_t Size) {
  const unsigned char *Bytes = static_cast<const unsigned char *>(Data);
  uint32_t C = 0xffffffffu;
#ifdef SELGEN_CRC32_PCLMUL
  if (Size >= 64 && haveClmul()) {
    size_t Folded = Size & ~size_t(15);
    C = crcClmul(C, Bytes, Folded);
    Bytes += Folded;
    Size -= Folded;
  }
#endif
  C = crcSlice8(C, Bytes, Size);
  return C ^ 0xffffffffu;
}

uint32_t selgen::crc32(const std::string &Text) {
  return crc32(Text.data(), Text.size());
}

std::string selgen::crc32Hex(const std::string &Text) {
  char Buffer[12];
  std::snprintf(Buffer, sizeof(Buffer), "%08x", crc32(Text));
  return Buffer;
}

bool selgen::writeFileAtomic(const std::string &Path,
                             const std::string &Contents, bool Sync) {
  // Unique temp name in the target directory (rename must not cross a
  // filesystem boundary).
  static std::atomic<uint64_t> Counter{0};
  std::string TempPath = Path + ".tmp." + std::to_string(::getpid()) + "." +
                         std::to_string(Counter.fetch_add(1));

  int Fd = ::open(TempPath.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (Fd < 0)
    return false;
  auto fail = [&] {
    ::close(Fd);
    std::error_code EC;
    std::filesystem::remove(TempPath, EC);
    return false;
  };

  size_t Written = 0;
  while (Written < Contents.size()) {
    ssize_t N = ::write(Fd, Contents.data() + Written,
                        Contents.size() - Written);
    if (N < 0)
      return fail();
    Written += static_cast<size_t>(N);
  }
  // The fsync-before-rename is what makes a power cut or SIGKILL
  // unable to publish a name pointing at unwritten blocks.
  if (Sync && ::fsync(Fd) != 0)
    return fail();
  if (::close(Fd) != 0) {
    std::error_code EC;
    std::filesystem::remove(TempPath, EC);
    return false;
  }

  std::error_code EC;
  std::filesystem::rename(TempPath, Path, EC);
  if (EC) {
    std::filesystem::remove(TempPath, EC);
    return false;
  }

  if (Sync) {
    // Persist the directory entry too; advisory (failure does not
    // un-publish the rename).
    std::string Dir = std::filesystem::path(Path).parent_path().string();
    if (Dir.empty())
      Dir = ".";
    int DirFd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (DirFd >= 0) {
      ::fsync(DirFd);
      ::close(DirFd);
    }
  }
  return true;
}

std::optional<std::string> selgen::readFileToString(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  if (In.bad())
    return std::nullopt;
  return Buffer.str();
}

bool selgen::quarantineFile(const std::string &Path) {
  std::error_code EC;
  std::filesystem::rename(Path, Path + ".bad", EC);
  return !EC;
}
