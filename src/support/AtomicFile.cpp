//===- AtomicFile.cpp - Crash-safe file publication ---------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/AtomicFile.h"

#include <array>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include <fcntl.h>
#include <unistd.h>

using namespace selgen;

namespace {

std::array<uint32_t, 256> makeCrcTable() {
  std::array<uint32_t, 256> Table{};
  for (uint32_t N = 0; N < 256; ++N) {
    uint32_t C = N;
    for (int K = 0; K < 8; ++K)
      C = (C & 1) ? 0xedb88320u ^ (C >> 1) : C >> 1;
    Table[N] = C;
  }
  return Table;
}

} // namespace

uint32_t selgen::crc32(const void *Data, size_t Size) {
  static const std::array<uint32_t, 256> Table = makeCrcTable();
  uint32_t C = 0xffffffffu;
  const unsigned char *Bytes = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Size; ++I)
    C = Table[(C ^ Bytes[I]) & 0xffu] ^ (C >> 8);
  return C ^ 0xffffffffu;
}

uint32_t selgen::crc32(const std::string &Text) {
  return crc32(Text.data(), Text.size());
}

std::string selgen::crc32Hex(const std::string &Text) {
  char Buffer[12];
  std::snprintf(Buffer, sizeof(Buffer), "%08x", crc32(Text));
  return Buffer;
}

bool selgen::writeFileAtomic(const std::string &Path,
                             const std::string &Contents, bool Sync) {
  // Unique temp name in the target directory (rename must not cross a
  // filesystem boundary).
  static std::atomic<uint64_t> Counter{0};
  std::string TempPath = Path + ".tmp." + std::to_string(::getpid()) + "." +
                         std::to_string(Counter.fetch_add(1));

  int Fd = ::open(TempPath.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (Fd < 0)
    return false;
  auto fail = [&] {
    ::close(Fd);
    std::error_code EC;
    std::filesystem::remove(TempPath, EC);
    return false;
  };

  size_t Written = 0;
  while (Written < Contents.size()) {
    ssize_t N = ::write(Fd, Contents.data() + Written,
                        Contents.size() - Written);
    if (N < 0)
      return fail();
    Written += static_cast<size_t>(N);
  }
  // The fsync-before-rename is what makes a power cut or SIGKILL
  // unable to publish a name pointing at unwritten blocks.
  if (Sync && ::fsync(Fd) != 0)
    return fail();
  if (::close(Fd) != 0) {
    std::error_code EC;
    std::filesystem::remove(TempPath, EC);
    return false;
  }

  std::error_code EC;
  std::filesystem::rename(TempPath, Path, EC);
  if (EC) {
    std::filesystem::remove(TempPath, EC);
    return false;
  }

  if (Sync) {
    // Persist the directory entry too; advisory (failure does not
    // un-publish the rename).
    std::string Dir = std::filesystem::path(Path).parent_path().string();
    if (Dir.empty())
      Dir = ".";
    int DirFd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (DirFd >= 0) {
      ::fsync(DirFd);
      ::close(DirFd);
    }
  }
  return true;
}

std::optional<std::string> selgen::readFileToString(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  if (In.bad())
    return std::nullopt;
  return Buffer.str();
}

bool selgen::quarantineFile(const std::string &Path) {
  std::error_code EC;
  std::filesystem::rename(Path, Path + ".bad", EC);
  return !EC;
}
