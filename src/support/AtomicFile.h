//===- AtomicFile.h - Crash-safe file publication ----------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One shared write-temp + fsync + rename helper for everything the
/// pipeline publishes to disk: synthesis-cache shards, the run
/// journal's quarantine rewrites, --stats-json / --failures-json, and
/// the lint findings report. A reader can then never observe a
/// half-written file: it sees the old content, the new content, or no
/// file — a SIGKILL between any two instructions leaves at worst an
/// orphaned temp file. Plus the CRC-32 used by the cache shard and
/// journal record integrity checks, and the quarantine helper that
/// moves corrupt artifacts aside as `<path>.bad` instead of deleting
/// the evidence.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SUPPORT_ATOMICFILE_H
#define SELGEN_SUPPORT_ATOMICFILE_H

#include <cstdint>
#include <optional>
#include <string>

namespace selgen {

/// CRC-32 (IEEE 802.3, reflected) of \p Size bytes at \p Data.
uint32_t crc32(const void *Data, size_t Size);
uint32_t crc32(const std::string &Text);

/// 8-digit lowercase hex rendering of crc32(\p Text).
std::string crc32Hex(const std::string &Text);

/// Writes \p Contents to \p Path via a unique temp file in the same
/// directory, an fsync (unless \p Sync is false), and an atomic
/// rename. Returns false — with the temp file removed — on any
/// failure; the previous content of \p Path, if any, is then intact.
bool writeFileAtomic(const std::string &Path, const std::string &Contents,
                     bool Sync = true);

/// Reads the whole file at \p Path; std::nullopt if unreadable.
std::optional<std::string> readFileToString(const std::string &Path);

/// Moves \p Path aside to "<Path>.bad" (replacing any previous
/// quarantine of the same file) so a corrupt artifact can never be
/// trusted again but stays available for inspection. Returns false if
/// the rename failed.
bool quarantineFile(const std::string &Path);

} // namespace selgen

#endif // SELGEN_SUPPORT_ATOMICFILE_H
