//===- BitValue.cpp - Arbitrary-width bit-vector values -------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/BitValue.h"

#include <algorithm>

using namespace selgen;

BitValue::BitValue(unsigned Width, uint64_t Value) : Width(Width) {
  assert(Width >= 1 && "bit-vector width must be positive");
  Words.assign(numWords(), 0);
  Words[0] = Value;
  clearUnusedBits();
}

void BitValue::clearUnusedBits() {
  unsigned Used = Width % 64;
  if (Used != 0)
    Words.back() &= (~uint64_t(0)) >> (64 - Used);
}

BitValue BitValue::allOnes(unsigned Width) {
  BitValue Result(Width, 0);
  for (uint64_t &Word : Result.Words)
    Word = ~uint64_t(0);
  Result.clearUnusedBits();
  return Result;
}

BitValue BitValue::signBit(unsigned Width) {
  BitValue Result(Width, 0);
  Result.setBit(Width - 1, true);
  return Result;
}

BitValue BitValue::fromString(unsigned Width, const std::string &Str,
                              unsigned Base) {
  assert((Base == 2 || Base == 10 || Base == 16) && "unsupported base");
  assert(!Str.empty() && "empty string");
  size_t Pos = 0;
  bool Negate = Str[0] == '-';
  if (Negate)
    ++Pos;
  assert(Pos < Str.size() && "string has no digits");
  BitValue Result(Width, 0);
  BitValue BaseValue(Width, Base);
  for (; Pos < Str.size(); ++Pos) {
    char C = Str[Pos];
    unsigned Digit;
    if (C >= '0' && C <= '9')
      Digit = C - '0';
    else if (C >= 'a' && C <= 'f')
      Digit = C - 'a' + 10;
    else if (C >= 'A' && C <= 'F')
      Digit = C - 'A' + 10;
    else {
      assert(false && "invalid digit");
      Digit = 0;
    }
    assert(Digit < Base && "digit out of range for base");
    Result = Result.mul(BaseValue).add(BitValue(Width, Digit));
  }
  return Negate ? Result.neg() : Result;
}

uint64_t BitValue::zextValue() const {
  for (unsigned I = 1, E = numWords(); I < E; ++I)
    assert(Words[I] == 0 && "value does not fit into 64 bits");
  return Words[0];
}

int64_t BitValue::sextValue() const {
  assert(Width <= 64 && "value wider than 64 bits");
  uint64_t Value = Words[0];
  if (Width < 64 && isNegative())
    Value |= (~uint64_t(0)) << Width;
  return static_cast<int64_t>(Value);
}

bool BitValue::bit(unsigned Index) const {
  assert(Index < Width && "bit index out of range");
  return (Words[Index / 64] >> (Index % 64)) & 1;
}

void BitValue::setBit(unsigned Index, bool Value) {
  assert(Index < Width && "bit index out of range");
  uint64_t Mask = uint64_t(1) << (Index % 64);
  if (Value)
    Words[Index / 64] |= Mask;
  else
    Words[Index / 64] &= ~Mask;
}

bool BitValue::isZero() const {
  return std::all_of(Words.begin(), Words.end(),
                     [](uint64_t W) { return W == 0; });
}

bool BitValue::isAllOnes() const { return *this == allOnes(Width); }

unsigned BitValue::popcount() const {
  unsigned Count = 0;
  for (uint64_t Word : Words)
    Count += __builtin_popcountll(Word);
  return Count;
}

unsigned BitValue::countLeadingZeros() const {
  for (unsigned I = Width; I-- > 0;)
    if (bit(I))
      return Width - 1 - I;
  return Width;
}

unsigned BitValue::countTrailingZeros() const {
  for (unsigned I = 0; I < Width; ++I)
    if (bit(I))
      return I;
  return Width;
}

BitValue BitValue::add(const BitValue &RHS) const {
  assert(Width == RHS.Width && "width mismatch");
  BitValue Result(Width, 0);
  uint64_t Carry = 0;
  for (unsigned I = 0, E = numWords(); I < E; ++I) {
    uint64_t Sum = Words[I] + Carry;
    uint64_t CarryOut = Sum < Words[I];
    Sum += RHS.Words[I];
    CarryOut |= Sum < RHS.Words[I];
    Result.Words[I] = Sum;
    Carry = CarryOut;
  }
  Result.clearUnusedBits();
  return Result;
}

BitValue BitValue::sub(const BitValue &RHS) const {
  return add(RHS.neg());
}

BitValue BitValue::neg() const {
  return bitNot().add(BitValue(Width, 1));
}

BitValue BitValue::mul(const BitValue &RHS) const {
  assert(Width == RHS.Width && "width mismatch");
  // Schoolbook multiplication over 32-bit half-words so that partial
  // products fit into uint64_t without overflow.
  unsigned HalfWords = numWords() * 2;
  auto half = [](const std::vector<uint64_t> &Words, unsigned I) {
    uint64_t Word = Words[I / 2];
    return (I % 2) ? (Word >> 32) : (Word & 0xFFFFFFFFu);
  };
  std::vector<uint64_t> Acc(HalfWords, 0);
  for (unsigned I = 0; I < HalfWords; ++I) {
    uint64_t Carry = 0;
    for (unsigned J = 0; I + J < HalfWords; ++J) {
      uint64_t Product = half(Words, I) * half(RHS.Words, J);
      uint64_t Sum = Acc[I + J] + (Product & 0xFFFFFFFFu) + Carry;
      Acc[I + J] = Sum & 0xFFFFFFFFu;
      Carry = (Sum >> 32) + (Product >> 32);
    }
  }
  BitValue Result(Width, 0);
  for (unsigned I = 0, E = numWords(); I < E; ++I)
    Result.Words[I] = Acc[2 * I] | (Acc[2 * I + 1] << 32);
  Result.clearUnusedBits();
  return Result;
}

BitValue BitValue::udiv(const BitValue &RHS) const {
  assert(Width == RHS.Width && "width mismatch");
  if (RHS.isZero())
    return allOnes(Width); // SMT-LIB bvudiv convention.
  // Restoring long division bit by bit, most significant bit first.
  BitValue Quotient(Width, 0);
  BitValue Remainder(Width, 0);
  for (unsigned I = Width; I-- > 0;) {
    Remainder = Remainder.shl(1);
    Remainder.setBit(0, bit(I));
    if (Remainder.uge(RHS)) {
      Remainder = Remainder.sub(RHS);
      Quotient.setBit(I, true);
    }
  }
  return Quotient;
}

BitValue BitValue::urem(const BitValue &RHS) const {
  assert(Width == RHS.Width && "width mismatch");
  if (RHS.isZero())
    return *this; // SMT-LIB bvurem convention.
  return sub(udiv(RHS).mul(RHS));
}

BitValue BitValue::bitAnd(const BitValue &RHS) const {
  assert(Width == RHS.Width && "width mismatch");
  BitValue Result(Width, 0);
  for (unsigned I = 0, E = numWords(); I < E; ++I)
    Result.Words[I] = Words[I] & RHS.Words[I];
  return Result;
}

BitValue BitValue::bitOr(const BitValue &RHS) const {
  assert(Width == RHS.Width && "width mismatch");
  BitValue Result(Width, 0);
  for (unsigned I = 0, E = numWords(); I < E; ++I)
    Result.Words[I] = Words[I] | RHS.Words[I];
  return Result;
}

BitValue BitValue::bitXor(const BitValue &RHS) const {
  assert(Width == RHS.Width && "width mismatch");
  BitValue Result(Width, 0);
  for (unsigned I = 0, E = numWords(); I < E; ++I)
    Result.Words[I] = Words[I] ^ RHS.Words[I];
  return Result;
}

BitValue BitValue::bitNot() const {
  BitValue Result(Width, 0);
  for (unsigned I = 0, E = numWords(); I < E; ++I)
    Result.Words[I] = ~Words[I];
  Result.clearUnusedBits();
  return Result;
}

BitValue BitValue::shl(unsigned Amount) const {
  BitValue Result(Width, 0);
  if (Amount >= Width)
    return Result;
  for (unsigned I = Width; I-- > Amount;)
    Result.setBit(I, bit(I - Amount));
  return Result;
}

BitValue BitValue::lshr(unsigned Amount) const {
  BitValue Result(Width, 0);
  if (Amount >= Width)
    return Result;
  for (unsigned I = 0, E = Width - Amount; I < E; ++I)
    Result.setBit(I, bit(I + Amount));
  return Result;
}

BitValue BitValue::ashr(unsigned Amount) const {
  bool Sign = isNegative();
  if (Amount >= Width)
    return Sign ? allOnes(Width) : zero(Width);
  BitValue Result = lshr(Amount);
  if (Sign)
    for (unsigned I = Width - Amount; I < Width; ++I)
      Result.setBit(I, true);
  return Result;
}

BitValue BitValue::rotl(unsigned Amount) const {
  Amount %= Width;
  if (Amount == 0)
    return *this;
  return shl(Amount).bitOr(lshr(Width - Amount));
}

BitValue BitValue::rotr(unsigned Amount) const {
  Amount %= Width;
  if (Amount == 0)
    return *this;
  return lshr(Amount).bitOr(shl(Width - Amount));
}

BitValue BitValue::zext(unsigned NewWidth) const {
  assert(NewWidth >= Width && "zext must not shrink");
  BitValue Result(NewWidth, 0);
  std::copy(Words.begin(), Words.end(), Result.Words.begin());
  return Result;
}

BitValue BitValue::sext(unsigned NewWidth) const {
  assert(NewWidth >= Width && "sext must not shrink");
  BitValue Result = zext(NewWidth);
  if (isNegative())
    for (unsigned I = Width; I < NewWidth; ++I)
      Result.setBit(I, true);
  return Result;
}

BitValue BitValue::trunc(unsigned NewWidth) const {
  assert(NewWidth <= Width && "trunc must not grow");
  BitValue Result(NewWidth, 0);
  std::copy(Words.begin(), Words.begin() + Result.numWords(),
            Result.Words.begin());
  Result.clearUnusedBits();
  return Result;
}

BitValue BitValue::extract(unsigned Hi, unsigned Lo) const {
  assert(Lo <= Hi && Hi < Width && "invalid extract range");
  return lshr(Lo).trunc(Hi - Lo + 1);
}

BitValue BitValue::concat(const BitValue &High, const BitValue &Low) {
  unsigned NewWidth = High.Width + Low.Width;
  BitValue Result = Low.zext(NewWidth);
  return Result.bitOr(High.zext(NewWidth).shl(Low.Width));
}

BitValue BitValue::insert(unsigned Lo, const BitValue &Patch) const {
  assert(Lo + Patch.Width <= Width && "patch out of range");
  BitValue Result = *this;
  for (unsigned I = 0; I < Patch.Width; ++I)
    Result.setBit(Lo + I, Patch.bit(I));
  return Result;
}

bool BitValue::operator==(const BitValue &RHS) const {
  assert(Width == RHS.Width && "width mismatch");
  return Words == RHS.Words;
}

bool BitValue::ult(const BitValue &RHS) const {
  assert(Width == RHS.Width && "width mismatch");
  for (unsigned I = numWords(); I-- > 0;) {
    if (Words[I] != RHS.Words[I])
      return Words[I] < RHS.Words[I];
  }
  return false;
}

bool BitValue::ule(const BitValue &RHS) const {
  return !RHS.ult(*this);
}

bool BitValue::slt(const BitValue &RHS) const {
  assert(Width == RHS.Width && "width mismatch");
  bool LhsNeg = isNegative(), RhsNeg = RHS.isNegative();
  if (LhsNeg != RhsNeg)
    return LhsNeg;
  return ult(RHS);
}

bool BitValue::sle(const BitValue &RHS) const {
  return !RHS.slt(*this);
}

std::string BitValue::toHexString() const {
  static const char Digits[] = "0123456789abcdef";
  unsigned NumDigits = (Width + 3) / 4;
  std::string Result = "0x";
  for (unsigned I = NumDigits; I-- > 0;) {
    unsigned Nibble = 0;
    for (unsigned B = 0; B < 4; ++B) {
      unsigned Index = I * 4 + B;
      if (Index < Width && bit(Index))
        Nibble |= 1u << B;
    }
    Result += Digits[Nibble];
  }
  return Result;
}

std::string BitValue::toUnsignedString() const {
  if (isZero())
    return "0";
  std::string Digits;
  BitValue Ten(Width, 10);
  BitValue Value = *this;
  while (!Value.isZero()) {
    BitValue Rem = Value.urem(Ten);
    Digits += static_cast<char>('0' + Rem.zextValue());
    Value = Value.udiv(Ten);
  }
  std::reverse(Digits.begin(), Digits.end());
  return Digits;
}

std::string BitValue::toSignedString() const {
  if (!isNegative())
    return toUnsignedString();
  return "-" + neg().toUnsignedString();
}

size_t BitValue::hash() const {
  // FNV-1a over width and words.
  size_t Hash = 1469598103934665603ull;
  auto mix = [&Hash](uint64_t Value) {
    Hash ^= Value;
    Hash *= 1099511628211ull;
  };
  mix(Width);
  for (uint64_t Word : Words)
    mix(Word);
  return Hash;
}
