//===- BitValue.h - Arbitrary-width bit-vector values ----------*- C++ -*-===//
//
// Part of the selgen project: a reproduction of "Synthesizing an
// Instruction Selection Rule Library from Semantic Specifications"
// (Buchwald, Fried, Hack; CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines BitValue, a dynamically sized two's-complement bit-vector
/// value. It is the concrete counterpart of the SMT-LIB BitVec sorts
/// used throughout the synthesizer: the IR interpreter, the x86
/// emulator, and SMT model extraction all exchange BitValues.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SUPPORT_BITVALUE_H
#define SELGEN_SUPPORT_BITVALUE_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace selgen {

/// An arbitrary-width bit-vector value with two's-complement semantics.
///
/// The width is fixed at construction time and all operands of binary
/// operations must agree on it (checked by assertion). Unused high bits
/// of the internal word storage are kept at zero as a class invariant.
class BitValue {
public:
  /// Builds the zero value of width 1. Needed so BitValue can live in
  /// standard containers; prefer the explicit constructors.
  BitValue() : BitValue(1, 0) {}

  /// Builds a value of \p Width bits from the low bits of \p Value.
  BitValue(unsigned Width, uint64_t Value);

  /// Returns the all-zero value of \p Width bits.
  static BitValue zero(unsigned Width) { return BitValue(Width, 0); }

  /// Returns the all-ones value of \p Width bits.
  static BitValue allOnes(unsigned Width);

  /// Returns the value with only the sign bit set.
  static BitValue signBit(unsigned Width);

  /// Parses a value from a string in the given base (2, 10, or 16).
  /// A leading '-' negates the parsed magnitude modulo 2^Width.
  /// Asserts on malformed input.
  static BitValue fromString(unsigned Width, const std::string &Str,
                             unsigned Base);

  unsigned width() const { return Width; }

  /// Returns the value zero-extended to uint64_t.
  /// Asserts that the value fits into 64 bits.
  uint64_t zextValue() const;

  /// Returns the value sign-extended to int64_t.
  /// Asserts that the width is at most 64 bits.
  int64_t sextValue() const;

  bool bit(unsigned Index) const;
  void setBit(unsigned Index, bool Value);

  bool isZero() const;
  bool isAllOnes() const;
  bool isNegative() const { return bit(Width - 1); }

  unsigned popcount() const;
  unsigned countLeadingZeros() const;
  unsigned countTrailingZeros() const;

  // Arithmetic. All results are truncated to the common width.
  BitValue add(const BitValue &RHS) const;
  BitValue sub(const BitValue &RHS) const;
  BitValue mul(const BitValue &RHS) const;
  BitValue neg() const;

  /// Unsigned division. Division by zero yields all-ones (the SMT-LIB
  /// bvudiv convention).
  BitValue udiv(const BitValue &RHS) const;

  /// Unsigned remainder. Remainder by zero yields the dividend (the
  /// SMT-LIB bvurem convention).
  BitValue urem(const BitValue &RHS) const;

  // Bitwise operations.
  BitValue bitAnd(const BitValue &RHS) const;
  BitValue bitOr(const BitValue &RHS) const;
  BitValue bitXor(const BitValue &RHS) const;
  BitValue bitNot() const;

  /// Logical shift left; shift amounts >= width yield zero.
  BitValue shl(unsigned Amount) const;
  /// Logical shift right; shift amounts >= width yield zero.
  BitValue lshr(unsigned Amount) const;
  /// Arithmetic shift right; shift amounts >= width fill with the sign.
  BitValue ashr(unsigned Amount) const;

  /// Rotates; the amount is taken modulo the width.
  BitValue rotl(unsigned Amount) const;
  BitValue rotr(unsigned Amount) const;

  // Width changes.
  BitValue zext(unsigned NewWidth) const;
  BitValue sext(unsigned NewWidth) const;
  BitValue trunc(unsigned NewWidth) const;

  /// Extracts bits [Lo, Hi] (inclusive, SMT-LIB extract order).
  BitValue extract(unsigned Hi, unsigned Lo) const;

  /// Concatenation; \p High occupies the high-order bits of the result
  /// (SMT-LIB concat order).
  static BitValue concat(const BitValue &High, const BitValue &Low);

  /// Replaces bits [Lo, Lo + Patch.width() - 1] with \p Patch. This is
  /// the replace() helper from the paper's M-value store definition.
  BitValue insert(unsigned Lo, const BitValue &Patch) const;

  // Comparisons. Equality requires equal widths.
  bool operator==(const BitValue &RHS) const;
  bool operator!=(const BitValue &RHS) const { return !(*this == RHS); }
  bool ult(const BitValue &RHS) const;
  bool ule(const BitValue &RHS) const;
  bool slt(const BitValue &RHS) const;
  bool sle(const BitValue &RHS) const;
  bool ugt(const BitValue &RHS) const { return RHS.ult(*this); }
  bool uge(const BitValue &RHS) const { return RHS.ule(*this); }
  bool sgt(const BitValue &RHS) const { return RHS.slt(*this); }
  bool sge(const BitValue &RHS) const { return RHS.sle(*this); }

  /// Renders as "0x..." with the full width in hex digits.
  std::string toHexString() const;
  /// Renders as an unsigned decimal number.
  std::string toUnsignedString() const;
  /// Renders as a signed decimal number.
  std::string toSignedString() const;

  /// Hash suitable for unordered containers.
  size_t hash() const;

  /// Number of 64-bit backing words: (width + 63) / 64.
  unsigned wordCount() const { return numWords(); }

  /// The \p Index'th backing word, least-significant first. Unused
  /// high bits of the top word are zero (class invariant) — two
  /// equal-width values are equal iff all their words are.
  uint64_t word(unsigned Index) const {
    assert(Index < numWords() && "word index out of range");
    return Words[Index];
  }

private:
  unsigned Width;
  std::vector<uint64_t> Words;

  unsigned numWords() const { return (Width + 63) / 64; }
  /// Zeroes the unused bits of the most significant word.
  void clearUnusedBits();
};

/// std::hash adapter support.
struct BitValueHash {
  size_t operator()(const BitValue &V) const { return V.hash(); }
};

} // namespace selgen

#endif // SELGEN_SUPPORT_BITVALUE_H
