//===- CommandLine.cpp - Minimal flag parsing ----------------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cstdlib>

using namespace selgen;

CommandLine::CommandLine(int Argc, char **Argv,
                         const std::vector<std::string> &KnownFlags) {
  auto isKnown = [&KnownFlags](const std::string &Name) {
    return std::find(KnownFlags.begin(), KnownFlags.end(), Name) !=
           KnownFlags.end();
  };

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (!startsWith(Arg, "--")) {
      Positional.push_back(Arg);
      continue;
    }
    std::string Name = Arg.substr(2);
    std::string Value;
    size_t Equals = Name.find('=');
    if (Equals != std::string::npos) {
      Value = Name.substr(Equals + 1);
      Name = Name.substr(0, Equals);
    } else if (I + 1 < Argc && !startsWith(Argv[I + 1], "--")) {
      Value = Argv[++I];
    }
    if (!isKnown(Name)) {
      Errors.push_back("unknown option: --" + Name);
      continue;
    }
    Options[Name] = Value;
  }
}

std::string CommandLine::stringOption(const std::string &Name,
                                      const std::string &Default) const {
  auto It = Options.find(Name);
  return It == Options.end() || It->second.empty() ? Default : It->second;
}

int64_t CommandLine::intOption(const std::string &Name,
                               int64_t Default) const {
  auto It = Options.find(Name);
  return It == Options.end() || It->second.empty()
             ? Default
             : std::atoll(It->second.c_str());
}

double CommandLine::doubleOption(const std::string &Name,
                                 double Default) const {
  auto It = Options.find(Name);
  return It == Options.end() || It->second.empty()
             ? Default
             : std::atof(It->second.c_str());
}

std::string CommandLine::usage(const std::string &Program,
                               const std::vector<std::string> &KnownFlags) {
  std::string Result = "usage: " + Program;
  for (const std::string &Flag : KnownFlags)
    Result += " [--" + Flag + " <value>]";
  return Result;
}
