//===- CommandLine.h - Minimal flag parsing ----------------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small command-line parser for the examples and
/// benchmark harnesses: --flag, --key value, --key=value, and free
/// positional arguments. Unknown flags are reported, not silently
/// accepted.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SUPPORT_COMMANDLINE_H
#define SELGEN_SUPPORT_COMMANDLINE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace selgen {

/// Parsed command line.
class CommandLine {
public:
  /// Parses argv. \p KnownFlags lists accepted option names (without
  /// the leading dashes); anything else lands in errors().
  CommandLine(int Argc, char **Argv,
              const std::vector<std::string> &KnownFlags);

  bool hasFlag(const std::string &Name) const {
    return Options.count(Name) != 0;
  }

  std::string stringOption(const std::string &Name,
                           const std::string &Default) const;
  int64_t intOption(const std::string &Name, int64_t Default) const;
  double doubleOption(const std::string &Name, double Default) const;

  const std::vector<std::string> &positional() const { return Positional; }
  const std::vector<std::string> &errors() const { return Errors; }

  /// Renders a usage line from the known flags.
  static std::string usage(const std::string &Program,
                           const std::vector<std::string> &KnownFlags);

private:
  std::map<std::string, std::string> Options;
  std::vector<std::string> Positional;
  std::vector<std::string> Errors;
};

} // namespace selgen

#endif // SELGEN_SUPPORT_COMMANDLINE_H
