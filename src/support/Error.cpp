//===- Error.cpp - Fatal error reporting -----------------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

void selgen::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "error: %s\n", Message.c_str());
  std::abort();
}
