//===- Error.h - Fatal error reporting ---------------------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting and the unreachable marker used across the
/// library, in the spirit of LLVM's report_fatal_error and
/// llvm_unreachable.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SUPPORT_ERROR_H
#define SELGEN_SUPPORT_ERROR_H

#include <string>

namespace selgen {

/// Prints "error: <message>" to stderr and aborts.
[[noreturn]] void reportFatalError(const std::string &Message);

} // namespace selgen

/// Marks a point in the code that must never be reached.
#define SELGEN_UNREACHABLE(Message)                                           \
  ::selgen::reportFatalError(std::string("unreachable: ") + (Message))

#endif // SELGEN_SUPPORT_ERROR_H
