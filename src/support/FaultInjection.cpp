//===- FaultInjection.cpp - Deterministic fault injection ---------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include "support/Hashing.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"

#include <cstdlib>

using namespace selgen;

FaultInjector &FaultInjector::get() {
  static FaultInjector Instance;
  static bool EnvLoaded = [] {
    if (const char *Env = std::getenv("SELGEN_FAULTS"))
      if (*Env)
        Instance.configure(Env);
    return true;
  }();
  (void)EnvLoaded;
  return Instance;
}

bool FaultInjector::configure(const std::string &Spec) {
  std::lock_guard<std::mutex> Guard(M);
  Sites.clear();
  Seed = 0x5e1f;

  bool Ok = true;
  for (const std::string &Part : splitString(Spec, ',')) {
    std::string Entry = trimString(Part);
    if (Entry.empty())
      continue;
    if (startsWith(Entry, "seed=")) {
      Seed = static_cast<uint64_t>(std::strtoull(Entry.c_str() + 5, nullptr, 10));
      continue;
    }
    size_t At = Entry.find('@');
    if (At == std::string::npos || At == 0) {
      Ok = false;
      break;
    }
    std::string Name = Entry.substr(0, At);
    std::string Trigger = Entry.substr(At + 1);
    Site S;
    if (startsWith(Trigger, "p=")) {
      S.Probability = std::atof(Trigger.c_str() + 2);
      if (S.Probability <= 0 || S.Probability > 1)
        Ok = false;
    } else if (startsWith(Trigger, "n=")) {
      S.Nth = static_cast<uint64_t>(std::strtoull(Trigger.c_str() + 2, nullptr, 10));
      if (S.Nth == 0)
        Ok = false;
    } else {
      Ok = false;
    }
    if (!Ok)
      break;
    Sites[Name] = S;
  }

  if (!Ok)
    Sites.clear();
  // Arming is never silent: the counter lands in every stats dump.
  if (!Sites.empty())
    Statistics::get().add("faults.armed");
  return Ok;
}

void FaultInjector::disarm() {
  std::lock_guard<std::mutex> Guard(M);
  Sites.clear();
}

bool FaultInjector::armed() const {
  std::lock_guard<std::mutex> Guard(M);
  return !Sites.empty();
}

bool FaultInjector::shouldFire(const char *SiteName) {
  std::lock_guard<std::mutex> Guard(M);
  auto It = Sites.find(SiteName);
  if (It == Sites.end())
    return false;
  Site &S = It->second;
  ++S.Calls;

  bool Fire = false;
  if (S.Nth > 0) {
    Fire = S.Calls == S.Nth;
  } else if (S.Probability > 0) {
    // Stable per-(seed, site, call) decision, independent of thread
    // interleaving for a fixed call index.
    StableHasher Hasher;
    Hasher.u64(Seed).str(SiteName).u64(S.Calls);
    double Unit = double(Hasher.digest() >> 11) / double(1ull << 53);
    Fire = Unit < S.Probability;
  }

  Statistics::get().add("faults." + std::string(SiteName) + ".calls");
  if (Fire) {
    ++S.Fired;
    Statistics::get().add("faults." + std::string(SiteName) + ".fired");
  }
  return Fire;
}

uint64_t FaultInjector::firedCount(const std::string &SiteName) const {
  std::lock_guard<std::mutex> Guard(M);
  auto It = Sites.find(SiteName);
  return It == Sites.end() ? 0 : It->second.Fired;
}

std::string FaultInjector::describe() const {
  std::lock_guard<std::mutex> Guard(M);
  std::string Result;
  for (const auto &[Name, S] : Sites) {
    if (!Result.empty())
      Result += ", ";
    Result += Name;
    if (S.Nth > 0)
      Result += "@n=" + std::to_string(S.Nth);
    else
      Result += "@p=" + formatDouble(S.Probability, 3);
  }
  return Result;
}
