//===- FaultInjection.h - Deterministic fault injection ----------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seed-driven fault injector so every recovery path
/// in the robustness layer is *provably* exercised by tests and CI
/// instead of waiting for a real OOM kill. Configured from the
/// SELGEN_FAULTS environment variable (or directly by tests):
///
///   SELGEN_FAULTS="solver_throw@p=0.05,shard_truncate@n=3,seed=42"
///
/// Each comma-separated entry arms one *site* — a named hook point in
/// production code — with a trigger: `p=<prob>` fires with that
/// probability per call (decided by a stable hash of seed, site, and
/// call index, so a given seed replays identically), and `n=<k>` fires
/// on exactly the k-th call of the site. Armed sites the project hooks:
///
///   solver_throw      SmtSolver::check throws z3::exception
///   solver_unknown    SmtSolver::check reports unknown (budget blown)
///   shard_truncate    SynthesisCache::store publishes a torn shard
///   shard_read        SynthesisCache::lookup sees a corrupt read
///   journal_truncate  RunJournal append writes a torn record
///   kill_after_finish RunJournal delivers SIGKILL after a finish
///                     record lands (crash-exactly-here for the
///                     checkpoint/resume tests)
///   watchdog_late     SmtSolver::check parks past the deadline after
///                     the query returned, forcing the deadline
///                     watchdog to wake on a retired generation (the
///                     stale-interrupt suppression regression test)
///   worker_kill       selgen-solverd SIGKILLs itself after reading a
///                     request (the pool sees EOF mid-query)
///   worker_hang       selgen-solverd sleeps past any deadline (the
///                     pool's poll expires and SIGKILLs it)
///   worker_garbage_reply  selgen-solverd corrupts its reply frame
///                     (the pool's CRC check must reject it)
///   serve_request_garbage  the compile server corrupts a request
///                     payload after admission (the dispatcher's total
///                     decoder must answer a typed BadRequest)
///   serve_reply_torn  the compile server truncates a reply frame
///                     (the client's CRC check must condemn the
///                     stream and reconnect)
///   serve_drop_client the compile server sends half a reply and
///                     drops the connection (client sees a torn frame
///                     plus EOF)
///   serve_slow_write  the compile server's write pass skips a tick
///                     (exercises reply buffering and, sustained, the
///                     slow-writer eviction)
///   serve_dispatch_stall  the compile server's dispatcher sleeps
///                     400ms before serving a request (drives queue
///                     growth for the overload and deadline tests)
///
/// The worker_* sites fire inside the *worker* process; arm them via
/// SolverPoolOptions::WorkerEnv (or the worker's environment), and
/// note that n=<k> counts per worker process — a respawned worker
/// starts fresh, so worker_kill@n=1 kills every respawn on its first
/// query and exhausts the retry budget, while n=2 lets each respawn
/// answer one query before dying (the recoverable case CI sweeps).
///
/// Injection can never leak silently into a real run: arming any site
/// sets the "faults.armed" statistic, and every probe and fire is
/// counted ("faults.<site>.calls" / "faults.<site>.fired"), all of
/// which land in --stats-json.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SUPPORT_FAULTINJECTION_H
#define SELGEN_SUPPORT_FAULTINJECTION_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace selgen {

/// Process-wide injector; all methods are thread-safe.
class FaultInjector {
public:
  /// The singleton, configured from $SELGEN_FAULTS on first use.
  static FaultInjector &get();

  /// (Re)arms from \p Spec; an empty spec disarms everything. Returns
  /// false (and disarms) if the spec does not parse.
  bool configure(const std::string &Spec);

  /// Disarms all sites and resets call counts.
  void disarm();

  /// True if any site is armed.
  bool armed() const;

  /// Called at a hook point: counts the probe and decides whether the
  /// fault fires here. Unarmed sites always return false.
  bool shouldFire(const char *Site);

  /// Times \p Site has fired since configuration (for tests).
  uint64_t firedCount(const std::string &Site) const;

  /// Human-readable summary of the armed sites (for run banners).
  std::string describe() const;

private:
  FaultInjector() = default;

  struct Site {
    double Probability = 0; ///< p-triggered when > 0.
    uint64_t Nth = 0;       ///< n-triggered when > 0 (exactly once).
    uint64_t Calls = 0;
    uint64_t Fired = 0;
  };

  mutable std::mutex M;
  std::map<std::string, Site> Sites;
  uint64_t Seed = 0;
};

} // namespace selgen

#endif // SELGEN_SUPPORT_FAULTINJECTION_H
