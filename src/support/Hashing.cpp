//===- Hashing.cpp - Stable content hashing -----------------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Hashing.h"

using namespace selgen;

void StableHasher::raw(const void *Data, size_t Size) {
  const unsigned char *Bytes = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Size; ++I) {
    State ^= Bytes[I];
    State *= FnvPrime;
  }
}

StableHasher &StableHasher::bytes(const void *Data, size_t Size) {
  // Length prefix keeps field boundaries unambiguous.
  uint64_t Length = Size;
  unsigned char Prefix[8];
  for (unsigned I = 0; I < 8; ++I)
    Prefix[I] = static_cast<unsigned char>(Length >> (8 * I));
  raw(Prefix, sizeof(Prefix));
  raw(Data, Size);
  return *this;
}

StableHasher &StableHasher::str(const std::string &Value) {
  return bytes(Value.data(), Value.size());
}

StableHasher &StableHasher::u64(uint64_t Value) {
  unsigned char Encoded[8];
  for (unsigned I = 0; I < 8; ++I)
    Encoded[I] = static_cast<unsigned char>(Value >> (8 * I));
  return bytes(Encoded, sizeof(Encoded));
}

std::string StableHasher::hex() const {
  static const char Digits[] = "0123456789abcdef";
  std::string Result(16, '0');
  uint64_t Value = State;
  for (int I = 15; I >= 0; --I) {
    Result[I] = Digits[Value & 0xf];
    Value >>= 4;
  }
  return Result;
}

std::string selgen::stableHashHex(const std::string &Value) {
  StableHasher Hasher;
  Hasher.str(Value);
  return Hasher.hex();
}
