//===- Hashing.h - Stable content hashing ------------------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stable (process- and platform-independent) content hash used to
/// build cache keys for the persistent synthesis cache: FNV-1a over a
/// length-prefixed field stream, so "ab" + "c" and "a" + "bc" hash
/// differently. Not cryptographic — collisions only cost a wrong cache
/// hit on adversarial input, and the cache stores the goal name in the
/// shard for a cheap sanity check.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SUPPORT_HASHING_H
#define SELGEN_SUPPORT_HASHING_H

#include <cstdint>
#include <string>

namespace selgen {

/// Accumulates length-prefixed fields into a 64-bit FNV-1a digest.
class StableHasher {
public:
  StableHasher &bytes(const void *Data, size_t Size);
  StableHasher &str(const std::string &Value);
  StableHasher &u64(uint64_t Value);
  StableHasher &boolean(bool Value) { return u64(Value ? 1 : 0); }

  uint64_t digest() const { return State; }
  /// 16-digit lowercase hex rendering of the digest.
  std::string hex() const;

private:
  static constexpr uint64_t FnvOffset = 0xcbf29ce484222325ull;
  static constexpr uint64_t FnvPrime = 0x100000001b3ull;
  uint64_t State = FnvOffset;

  void raw(const void *Data, size_t Size);
};

/// One-shot convenience: the hex digest of a single string.
std::string stableHashHex(const std::string &Value);

} // namespace selgen

#endif // SELGEN_SUPPORT_HASHING_H
