//===- Json.cpp - Minimal JSON helpers ----------------------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cstdio>

using namespace selgen;

std::string selgen::jsonEscape(const std::string &Value) {
  std::string Result;
  for (char C : Value) {
    switch (C) {
    case '"':
      Result += "\\\"";
      break;
    case '\\':
      Result += "\\\\";
      break;
    case '\n':
      Result += "\\n";
      break;
    case '\t':
      Result += "\\t";
      break;
    case '\r':
      Result += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buffer[8];
        std::snprintf(Buffer, sizeof(Buffer), "\\u%04x", C);
        Result += Buffer;
      } else {
        Result += C;
      }
    }
  }
  return Result;
}

std::optional<std::string> selgen::jsonUnescape(const std::string &Value) {
  std::string Result;
  Result.reserve(Value.size());
  for (size_t I = 0; I < Value.size(); ++I) {
    char C = Value[I];
    if (C != '\\') {
      Result += C;
      continue;
    }
    if (++I >= Value.size())
      return std::nullopt;
    switch (Value[I]) {
    case '"':
      Result += '"';
      break;
    case '\\':
      Result += '\\';
      break;
    case '/':
      Result += '/';
      break;
    case 'n':
      Result += '\n';
      break;
    case 't':
      Result += '\t';
      break;
    case 'r':
      Result += '\r';
      break;
    case 'b':
      Result += '\b';
      break;
    case 'f':
      Result += '\f';
      break;
    case 'u': {
      if (I + 4 >= Value.size())
        return std::nullopt;
      unsigned Code = 0;
      for (int K = 0; K < 4; ++K) {
        char H = Value[I + 1 + K];
        Code <<= 4;
        if (H >= '0' && H <= '9')
          Code |= unsigned(H - '0');
        else if (H >= 'a' && H <= 'f')
          Code |= unsigned(H - 'a' + 10);
        else if (H >= 'A' && H <= 'F')
          Code |= unsigned(H - 'A' + 10);
        else
          return std::nullopt;
      }
      I += 4;
      // The writers only emit \u00xx control escapes; reject the rest
      // rather than mis-decode multi-byte sequences.
      if (Code > 0xff)
        return std::nullopt;
      Result += static_cast<char>(Code);
      break;
    }
    default:
      return std::nullopt;
    }
  }
  return Result;
}

namespace {

void skipSpace(const std::string &Text, size_t &Pos) {
  while (Pos < Text.size() &&
         (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
          Text[Pos] == '\r'))
    ++Pos;
}

/// Scans a JSON string literal starting at the opening quote; returns
/// the raw (still escaped) body and advances past the closing quote.
bool scanString(const std::string &Text, size_t &Pos, std::string &Raw) {
  if (Pos >= Text.size() || Text[Pos] != '"')
    return false;
  size_t Begin = ++Pos;
  while (Pos < Text.size()) {
    if (Text[Pos] == '\\') {
      Pos += 2;
      continue;
    }
    if (Text[Pos] == '"') {
      Raw = Text.substr(Begin, Pos - Begin);
      ++Pos;
      return true;
    }
    ++Pos;
  }
  return false;
}

} // namespace

std::optional<std::map<std::string, std::string>>
selgen::parseFlatJsonObject(const std::string &Text) {
  std::map<std::string, std::string> Result;
  size_t Pos = 0;
  skipSpace(Text, Pos);
  if (Pos >= Text.size() || Text[Pos] != '{')
    return std::nullopt;
  ++Pos;
  skipSpace(Text, Pos);
  if (Pos < Text.size() && Text[Pos] == '}') {
    ++Pos;
  } else {
    while (true) {
      skipSpace(Text, Pos);
      std::string RawKey;
      if (!scanString(Text, Pos, RawKey))
        return std::nullopt;
      std::optional<std::string> Key = jsonUnescape(RawKey);
      if (!Key)
        return std::nullopt;
      skipSpace(Text, Pos);
      if (Pos >= Text.size() || Text[Pos] != ':')
        return std::nullopt;
      ++Pos;
      skipSpace(Text, Pos);
      if (Pos >= Text.size())
        return std::nullopt;
      if (Text[Pos] == '"') {
        std::string RawValue;
        if (!scanString(Text, Pos, RawValue))
          return std::nullopt;
        std::optional<std::string> Value = jsonUnescape(RawValue);
        if (!Value)
          return std::nullopt;
        Result[*Key] = std::move(*Value);
      } else {
        // Number / true / false / null, kept as literal text.
        size_t Begin = Pos;
        while (Pos < Text.size() && Text[Pos] != ',' && Text[Pos] != '}' &&
               Text[Pos] != ' ' && Text[Pos] != '\t' && Text[Pos] != '\n' &&
               Text[Pos] != '\r')
          ++Pos;
        if (Pos == Begin)
          return std::nullopt;
        std::string Literal = Text.substr(Begin, Pos - Begin);
        if (Literal.find('{') != std::string::npos ||
            Literal.find('[') != std::string::npos)
          return std::nullopt;
        Result[*Key] = std::move(Literal);
      }
      skipSpace(Text, Pos);
      if (Pos >= Text.size())
        return std::nullopt;
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        break;
      }
      return std::nullopt;
    }
  }
  skipSpace(Text, Pos);
  if (Pos != Text.size())
    return std::nullopt; // Trailing garbage: likely a torn record.
  return Result;
}
