//===- Json.h - Minimal JSON helpers -----------------------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small amount of JSON the project needs: escaping for the
/// writers (--stats-json, lint findings, the run journal) and a parser
/// for single-level objects, which is exactly the shape of a journal
/// record. Deliberately not a general JSON library — nested values are
/// rejected, which doubles as corruption detection for journal lines.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SUPPORT_JSON_H
#define SELGEN_SUPPORT_JSON_H

#include <map>
#include <optional>
#include <string>

namespace selgen {

/// Escapes \p Value for inclusion in a JSON string literal (quotes,
/// backslashes, and control characters).
std::string jsonEscape(const std::string &Value);

/// Inverse of jsonEscape; returns std::nullopt on a malformed escape.
std::optional<std::string> jsonUnescape(const std::string &Value);

/// Parses one flat JSON object {"key": "string" | number | true |
/// false, ...} into a key -> value map; string values are unescaped,
/// everything else keeps its literal spelling. Returns std::nullopt on
/// anything malformed or nested.
std::optional<std::map<std::string, std::string>>
parseFlatJsonObject(const std::string &Text);

} // namespace selgen

#endif // SELGEN_SUPPORT_JSON_H
