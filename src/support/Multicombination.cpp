//===- Multicombination.cpp - Multiset enumeration ------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Multicombination.h"

#include <cassert>
#include <cmath>
#include <limits>

using namespace selgen;

MulticombinationEnumerator::MulticombinationEnumerator(unsigned NumItems,
                                                       unsigned Size)
    : NumItems(NumItems), State(Size, 0), Done(NumItems == 0 && Size > 0) {
  assert(Size >= 1 && "empty multisets are not enumerated");
}

MulticombinationEnumerator::MulticombinationEnumerator(unsigned NumItems,
                                                       unsigned Size,
                                                       uint64_t StartRank)
    : MulticombinationEnumerator(NumItems, Size) {
  if (Done)
    return;
  if (StartRank >= multisetCount(NumItems, Size)) {
    Done = true;
    return;
  }
  // Unrank: at each position, count how many multisets start with each
  // candidate value v; the suffix after choosing v is a multiset of the
  // remaining length over items {v, ..., NumItems-1}.
  uint64_t Remaining = StartRank;
  unsigned MinValue = 0;
  for (unsigned Pos = 0; Pos < Size; ++Pos) {
    unsigned SuffixLength = Size - Pos - 1;
    for (unsigned Value = MinValue; Value < NumItems; ++Value) {
      uint64_t Block = multisetCount(NumItems - Value, SuffixLength);
      if (Remaining < Block) {
        State[Pos] = Value;
        MinValue = Value;
        break;
      }
      Remaining -= Block;
    }
  }
}

bool MulticombinationEnumerator::next() {
  if (Done)
    return false;
  // Find the rightmost position that can still be incremented.
  unsigned Size = State.size();
  unsigned Pos = Size;
  while (Pos > 0 && State[Pos - 1] == NumItems - 1)
    --Pos;
  if (Pos == 0) {
    Done = true;
    return false;
  }
  unsigned NewValue = State[Pos - 1] + 1;
  for (unsigned I = Pos - 1; I < Size; ++I)
    State[I] = NewValue;
  return true;
}

static uint64_t saturatingMul(uint64_t A, uint64_t B) {
  if (A != 0 && B > std::numeric_limits<uint64_t>::max() / A)
    return std::numeric_limits<uint64_t>::max();
  return A * B;
}

uint64_t selgen::binomial(uint64_t N, uint64_t K) {
  if (K > N)
    return 0;
  if (K > N - K)
    K = N - K;
  uint64_t Result = 1;
  for (uint64_t I = 1; I <= K; ++I) {
    // Result * (N - K + I) is divisible by I because the running
    // product covers I consecutive integers.
    Result = saturatingMul(Result, N - K + I) / I;
  }
  return Result;
}

uint64_t selgen::multisetCount(unsigned NumItems, unsigned Size) {
  if (NumItems == 0)
    return Size == 0 ? 1 : 0;
  return binomial(uint64_t(NumItems) + Size - 1, Size);
}

uint64_t selgen::factorial(unsigned N) {
  uint64_t Result = 1;
  for (unsigned I = 2; I <= N; ++I)
    Result = saturatingMul(Result, I);
  return Result;
}

double selgen::classicalSearchSpaceLog2(unsigned NumOperations) {
  double Log2 = 0;
  for (unsigned I = 2; I <= NumOperations; ++I)
    Log2 += std::log2(static_cast<double>(I));
  return Log2;
}

double selgen::iterativeSearchSpaceLog2(unsigned NumOperations,
                                        unsigned MaxSize) {
  double Total = 0;
  for (unsigned Size = 1; Size <= MaxSize; ++Size) {
    // ((n, l)) * l! computed in floating point to avoid overflow.
    double Term = 1;
    for (unsigned I = 0; I < Size; ++I)
      Term *= static_cast<double>(NumOperations + I) / (I + 1);
    for (unsigned I = 2; I <= Size; ++I)
      Term *= I;
    Total += Term;
  }
  return std::log2(Total);
}
