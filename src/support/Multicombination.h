//===- Multicombination.h - Multiset enumeration ----------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Enumeration of l-multicombinations (multisets of size l drawn from n
/// items), following Knuth, TAOCP Vol. 4 Fasc. 3, used by the iterative
/// CEGIS driver (paper Section 5.4). Also provides the search-space
/// size estimates quoted in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SUPPORT_MULTICOMBINATION_H
#define SELGEN_SUPPORT_MULTICOMBINATION_H

#include <cstdint>
#include <vector>

namespace selgen {

/// Enumerates all multisets of size \p Size over items {0, ..., NumItems-1}
/// in lexicographically nondecreasing order. Each state is a nondecreasing
/// index vector, e.g. for NumItems=3, Size=2: 00 01 02 11 12 22.
class MulticombinationEnumerator {
public:
  MulticombinationEnumerator(unsigned NumItems, unsigned Size);

  /// Starts the enumeration at lexicographic rank \p StartRank (0-based)
  /// instead of at the first multiset; an out-of-range rank yields an
  /// exhausted enumerator. The parallel library builder uses this to
  /// split one size's enumeration into independently resumable
  /// sub-ranges.
  MulticombinationEnumerator(unsigned NumItems, unsigned Size,
                             uint64_t StartRank);

  /// Returns false once all multicombinations have been produced.
  bool atEnd() const { return Done; }

  /// The current multiset as a nondecreasing vector of item indices.
  const std::vector<unsigned> &current() const { return State; }

  /// Advances to the next multicombination; returns false if exhausted.
  bool next();

private:
  unsigned NumItems;
  std::vector<unsigned> State;
  bool Done;
};

/// Returns the number of l-multicombinations of n items, i.e. the
/// multiset coefficient ((n, l)) = C(n + l - 1, l). Saturates at
/// UINT64_MAX on overflow.
uint64_t multisetCount(unsigned NumItems, unsigned Size);

/// Returns C(n, k) saturating at UINT64_MAX.
uint64_t binomial(uint64_t N, uint64_t K);

/// Returns n! saturating at UINT64_MAX.
uint64_t factorial(unsigned N);

/// Log2 of the classical-CEGIS search-space estimate |I|! from the
/// paper's Section 5.4 ("Search Space Estimate").
double classicalSearchSpaceLog2(unsigned NumOperations);

/// Log2 of the iterative-CEGIS search-space estimate
/// sum_{l=1}^{lmax} ((|I|, l)) * l! from the paper's Section 5.4.
double iterativeSearchSpaceLog2(unsigned NumOperations, unsigned MaxSize);

} // namespace selgen

#endif // SELGEN_SUPPORT_MULTICOMBINATION_H
