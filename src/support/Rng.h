//===- Rng.h - Deterministic random number generation -----------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic RNG (SplitMix64) used by the workload
/// generator and the property-based tests. Determinism matters: the
/// evaluation harness must produce the same synthetic "SPEC-like"
/// programs on every run so that measurements are comparable.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SUPPORT_RNG_H
#define SELGEN_SUPPORT_RNG_H

#include "support/BitValue.h"

#include <cstdint>

namespace selgen {

/// SplitMix64: tiny, fast, and good enough for workload generation.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  uint64_t nextUInt64() {
    State += 0x9E3779B97F4A7C15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be positive.
  uint64_t nextBelow(uint64_t Bound) { return nextUInt64() % Bound; }

  /// Returns a uniform value in [Lo, Hi] (inclusive).
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(nextBelow(uint64_t(Hi - Lo) + 1));
  }

  bool nextBool() { return nextUInt64() & 1; }

  /// Returns a uniform BitValue of the given width.
  BitValue nextBitValue(unsigned Width) {
    BitValue Result(Width, 0);
    for (unsigned I = 0; I < Width; I += 64)
      Result = Result.bitOr(
          BitValue(Width, nextUInt64()).shl(I));
    return Result;
  }

  /// Returns a BitValue biased toward "interesting" values (0, 1, -1,
  /// sign bit, small constants) half of the time; uniform otherwise.
  /// Useful seeds for CEGIS test cases and property tests.
  BitValue nextInterestingBitValue(unsigned Width) {
    switch (nextBelow(10)) {
    case 0:
      return BitValue::zero(Width);
    case 1:
      return BitValue(Width, 1);
    case 2:
      return BitValue::allOnes(Width);
    case 3:
      return BitValue::signBit(Width);
    case 4:
      return BitValue(Width, nextBelow(16));
    default:
      return nextBitValue(Width);
    }
  }

private:
  uint64_t State;
};

} // namespace selgen

#endif // SELGEN_SUPPORT_RNG_H
