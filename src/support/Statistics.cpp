//===- Statistics.cpp - Named statistic counters ---------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

using namespace selgen;

Statistics &Statistics::get() {
  static Statistics Instance;
  return Instance;
}

void Statistics::add(const std::string &Name, int64_t Delta) {
  std::lock_guard<std::mutex> Guard(Lock);
  Counters[Name] += Delta;
}

int64_t Statistics::value(const std::string &Name) const {
  std::lock_guard<std::mutex> Guard(Lock);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

void Statistics::clear() {
  std::lock_guard<std::mutex> Guard(Lock);
  Counters.clear();
}

void Statistics::print(std::ostream &OS) const {
  std::lock_guard<std::mutex> Guard(Lock);
  for (const auto &[Name, Value] : Counters)
    OS << Name << " = " << Value << "\n";
}
