//===- Statistics.cpp - Named statistic counters ---------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include "support/AtomicFile.h"
#include "support/Json.h"

#include <sstream>

using namespace selgen;

Statistics &Statistics::get() {
  static Statistics Instance;
  return Instance;
}

void Statistics::add(const std::string &Name, int64_t Delta) {
  std::lock_guard<std::mutex> Guard(Lock);
  Counters[Name] += Delta;
}

int64_t Statistics::value(const std::string &Name) const {
  std::lock_guard<std::mutex> Guard(Lock);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

void Statistics::recordGoal(GoalTelemetry Telemetry) {
  std::lock_guard<std::mutex> Guard(Lock);
  Goals.push_back(std::move(Telemetry));
}

std::vector<GoalTelemetry> Statistics::goals() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Goals;
}

void Statistics::recordSelection(SelectionTelemetry Telemetry) {
  std::lock_guard<std::mutex> Guard(Lock);
  Selections.push_back(std::move(Telemetry));
}

std::vector<SelectionTelemetry> Statistics::selections() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Selections;
}

void Statistics::clear() {
  std::lock_guard<std::mutex> Guard(Lock);
  Counters.clear();
  Goals.clear();
  Selections.clear();
}

void Statistics::print(std::ostream &OS) const {
  std::lock_guard<std::mutex> Guard(Lock);
  for (const auto &[Name, Value] : Counters)
    OS << Name << " = " << Value << "\n";
}

namespace {

std::string jsonDouble(double Value) {
  std::ostringstream Stream;
  Stream.precision(6);
  Stream << std::fixed << Value;
  return Stream.str();
}

} // namespace

std::string Statistics::toJson() const {
  std::lock_guard<std::mutex> Guard(Lock);
  std::string Out = "{\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : Counters) {
    Out += First ? "\n" : ",\n";
    Out += "    \"" + jsonEscape(Name) + "\": " + std::to_string(Value);
    First = false;
  }
  Out += "\n  },\n  \"goals\": [";
  First = true;
  for (const GoalTelemetry &G : Goals) {
    Out += First ? "\n" : ",\n";
    Out += "    {\"goal\": \"" + jsonEscape(G.Goal) + "\"";
    Out += ", \"group\": \"" + jsonEscape(G.Group) + "\"";
    Out += std::string(", \"cache_hit\": ") + (G.CacheHit ? "true" : "false");
    Out += std::string(", \"resumed\": ") +
           (G.ResumedFromJournal ? "true" : "false");
    Out += std::string(", \"complete\": ") + (G.Complete ? "true" : "false");
    Out += ", \"incomplete_cause\": \"" + jsonEscape(G.IncompleteCause) + "\"";
    Out += ", \"queue_wait_seconds\": " + jsonDouble(G.QueueWaitSeconds);
    Out += ", \"solver_seconds\": " + jsonDouble(G.SolverSeconds);
    Out += ", \"wall_seconds\": " + jsonDouble(G.WallSeconds);
    Out += ", \"counterexamples\": " + std::to_string(G.Counterexamples);
    Out += ", \"multisets_run\": " + std::to_string(G.MultisetsRun);
    Out += ", \"multisets_skipped\": " + std::to_string(G.MultisetsSkipped);
    Out += ", \"patterns\": " + std::to_string(G.Patterns);
    Out += ", \"chunks\": " + std::to_string(G.Chunks);
    Out += ", \"stolen_chunks\": " + std::to_string(G.StolenChunks);
    Out += ", \"prescreen_kills\": " + std::to_string(G.PrescreenKills);
    Out += ", \"corpus_size\": " + std::to_string(G.CorpusSize);
    Out += ", \"corpus_evictions\": " + std::to_string(G.CorpusEvictions);
    Out += "}";
    First = false;
  }
  Out += "\n  ],\n  \"selections\": [";
  First = true;
  for (const SelectionTelemetry &S : Selections) {
    Out += First ? "\n" : ",\n";
    Out += "    {\"function\": \"" + jsonEscape(S.Function) + "\"";
    Out += ", \"selector\": \"" + jsonEscape(S.Selector) + "\"";
    Out += ", \"select_us\": " + jsonDouble(S.SelectUs);
    Out += ", \"rules_tried\": " + std::to_string(S.RulesTried);
    Out += ", \"nodes_visited\": " + std::to_string(S.MatcherNodesVisited);
    Out += ", \"covered\": " + std::to_string(S.CoveredOperations);
    Out += ", \"fallback\": " + std::to_string(S.FallbackOperations);
    Out += "}";
    First = false;
  }
  Out += "\n  ]\n}\n";
  return Out;
}

bool Statistics::writeJsonFile(const std::string &Path) const {
  // Atomic publish: a crash mid-dump never leaves CI a torn JSON file.
  return writeFileAtomic(Path, toJson());
}
