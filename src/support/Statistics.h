//===- Statistics.h - Named statistic counters -------------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of named counters, in the spirit of LLVM's
/// Statistic class. The synthesizer uses it to report solver-call
/// counts, skipped multisets, counterexample counts, and so on.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SUPPORT_STATISTICS_H
#define SELGEN_SUPPORT_STATISTICS_H

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

namespace selgen {

/// Registry of named 64-bit counters. Thread-safe: the parallel
/// synthesis driver (pattern/ParallelBuilder) bumps counters from
/// several workers.
class Statistics {
public:
  /// Returns the singleton registry.
  static Statistics &get();

  /// Adds \p Delta to the counter named \p Name (creating it at zero).
  void add(const std::string &Name, int64_t Delta = 1);

  /// Returns the current value of \p Name, or zero if never touched.
  int64_t value(const std::string &Name) const;

  /// Resets all counters. Tests use this for isolation.
  void clear();

  /// Prints all counters, sorted by name.
  void print(std::ostream &OS) const;

private:
  mutable std::mutex Lock;
  std::map<std::string, int64_t> Counters;
};

} // namespace selgen

#endif // SELGEN_SUPPORT_STATISTICS_H
