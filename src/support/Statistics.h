//===- Statistics.h - Named statistic counters -------------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of named counters, in the spirit of LLVM's
/// Statistic class. The synthesizer uses it to report solver-call
/// counts, skipped multisets, counterexample counts, and so on.
///
/// The registry also collects structured per-goal telemetry from the
/// parallel library builder (queue wait, solver time, cache hit/miss,
/// counterexample counts) and can dump everything as JSON for the
/// benchmark harnesses and CI (--stats-json).
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SUPPORT_STATISTICS_H
#define SELGEN_SUPPORT_STATISTICS_H

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace selgen {

/// Structured telemetry for one synthesized (or cache-served) goal.
struct GoalTelemetry {
  std::string Goal;
  std::string Group;
  bool CacheHit = false;
  /// Served from a prior run's journal by --resume (no re-synthesis).
  bool ResumedFromJournal = false;
  bool Complete = true;
  /// Why the goal is incomplete ("timeout", "rlimit", "exception",
  /// "deadline", "budget"); empty when Complete.
  std::string IncompleteCause;
  /// Seconds between scheduling and the first worker picking the goal up.
  double QueueWaitSeconds = 0;
  /// Accumulated chunk execution time (solver-dominated).
  double SolverSeconds = 0;
  /// Wall-clock time from pickup to completion.
  double WallSeconds = 0;
  uint64_t Counterexamples = 0;
  uint64_t MultisetsRun = 0;
  uint64_t MultisetsSkipped = 0;
  uint64_t Patterns = 0;
  /// Enumeration chunks the goal was split into across all sizes.
  unsigned Chunks = 0;
  /// Chunks executed by a worker other than the goal's owner.
  unsigned StolenChunks = 0;
  /// Candidates killed by the concrete pre-screen (verification
  /// queries avoided).
  uint64_t PrescreenKills = 0;
  /// Final size of the goal's counterexample corpus.
  uint64_t CorpusSize = 0;
  /// Corpus entries LRU-evicted over the goal's lifetime.
  uint64_t CorpusEvictions = 0;
};

/// Structured telemetry for one instruction-selection run (one
/// function through one selector). The matcher-throughput experiment
/// and CI read these so the automaton speedup is measured, never
/// anecdotal.
struct SelectionTelemetry {
  std::string Function;
  std::string Selector;
  /// Wall time of the selection phase in microseconds.
  double SelectUs = 0;
  /// Full structural match attempts (matchPattern calls).
  uint64_t RulesTried = 0;
  /// Matcher work: pattern/subject node visits plus automaton state
  /// visits during candidate discovery.
  uint64_t MatcherNodesVisited = 0;
  unsigned CoveredOperations = 0;
  unsigned FallbackOperations = 0;
};

/// Registry of named 64-bit counters. Thread-safe: the parallel
/// synthesis driver (pattern/ParallelBuilder) bumps counters from
/// several workers.
class Statistics {
public:
  /// Returns the singleton registry.
  static Statistics &get();

  /// Adds \p Delta to the counter named \p Name (creating it at zero).
  void add(const std::string &Name, int64_t Delta = 1);

  /// Returns the current value of \p Name, or zero if never touched.
  int64_t value(const std::string &Name) const;

  /// Records one goal's telemetry record.
  void recordGoal(GoalTelemetry Telemetry);

  /// Snapshot of the recorded goal telemetry.
  std::vector<GoalTelemetry> goals() const;

  /// Records one selection run's telemetry record.
  void recordSelection(SelectionTelemetry Telemetry);

  /// Snapshot of the recorded selection telemetry.
  std::vector<SelectionTelemetry> selections() const;

  /// Resets all counters and goal records. Tests use this for isolation.
  void clear();

  /// Prints all counters, sorted by name.
  void print(std::ostream &OS) const;

  /// Renders counters plus per-goal and per-selection telemetry as a
  /// JSON object ({"counters": {...}, "goals": [...],
  /// "selections": [...]}).
  std::string toJson() const;

  /// Writes toJson() to \p Path; returns false on I/O failure.
  bool writeJsonFile(const std::string &Path) const;

private:
  mutable std::mutex Lock;
  std::map<std::string, int64_t> Counters;
  std::vector<GoalTelemetry> Goals;
  std::vector<SelectionTelemetry> Selections;
};

} // namespace selgen

#endif // SELGEN_SUPPORT_STATISTICS_H
