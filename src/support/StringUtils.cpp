//===- StringUtils.cpp - String helpers ------------------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstdio>

using namespace selgen;

std::vector<std::string> selgen::splitString(const std::string &Str,
                                             char Separator) {
  std::vector<std::string> Result;
  size_t Start = 0;
  while (true) {
    size_t Pos = Str.find(Separator, Start);
    if (Pos == std::string::npos) {
      Result.push_back(Str.substr(Start));
      return Result;
    }
    Result.push_back(Str.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string selgen::joinStrings(const std::vector<std::string> &Parts,
                                const std::string &Separator) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Separator;
    Result += Parts[I];
  }
  return Result;
}

std::string selgen::trimString(const std::string &Str) {
  size_t Begin = Str.find_first_not_of(" \t\r\n");
  if (Begin == std::string::npos)
    return "";
  size_t End = Str.find_last_not_of(" \t\r\n");
  return Str.substr(Begin, End - Begin + 1);
}

bool selgen::startsWith(const std::string &Str, const std::string &Prefix) {
  return Str.size() >= Prefix.size() &&
         Str.compare(0, Prefix.size(), Prefix) == 0;
}

std::string selgen::padLeft(const std::string &Str, size_t Width) {
  if (Str.size() >= Width)
    return Str;
  return std::string(Width - Str.size(), ' ') + Str;
}

std::string selgen::padRight(const std::string &Str, size_t Width) {
  if (Str.size() >= Width)
    return Str;
  return Str + std::string(Width - Str.size(), ' ');
}

std::string selgen::formatDouble(double Value, unsigned Decimals) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Decimals, Value);
  return Buffer;
}

std::string selgen::formatGrouped(uint64_t Value) {
  std::string Digits = std::to_string(Value);
  std::string Result;
  size_t Count = 0;
  for (size_t I = Digits.size(); I-- > 0;) {
    Result += Digits[I];
    if (++Count % 3 == 0 && I != 0)
      Result += ' ';
  }
  std::reverse(Result.begin(), Result.end());
  return Result;
}

TablePrinter::TablePrinter(std::vector<std::string> Header) {
  Rows.push_back(std::move(Header));
}

void TablePrinter::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Rows[0].size() && "row width mismatch");
  Rows.push_back(std::move(Row));
}

std::string TablePrinter::render() const {
  std::vector<size_t> Widths(Rows[0].size(), 0);
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  std::string Result;
  for (size_t RowIndex = 0; RowIndex < Rows.size(); ++RowIndex) {
    const auto &Row = Rows[RowIndex];
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I != 0)
        Result += "  ";
      // Left-align the first column, right-align the numeric rest.
      Result += I == 0 ? padRight(Row[I], Widths[I])
                       : padLeft(Row[I], Widths[I]);
    }
    Result += '\n';
    if (RowIndex == 0) {
      size_t Total = 0;
      for (size_t I = 0; I < Widths.size(); ++I)
        Total += Widths[I] + (I == 0 ? 0 : 2);
      Result += std::string(Total, '-');
      Result += '\n';
    }
  }
  return Result;
}
