//===- StringUtils.h - String helpers ---------------------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string helpers shared by the pattern serializer, the test-case
/// generator, and the table printers of the benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SUPPORT_STRINGUTILS_H
#define SELGEN_SUPPORT_STRINGUTILS_H

#include <string>
#include <vector>

namespace selgen {

/// Splits \p Str on \p Separator; empty fields are preserved.
std::vector<std::string> splitString(const std::string &Str, char Separator);

/// Joins \p Parts with \p Separator.
std::string joinStrings(const std::vector<std::string> &Parts,
                        const std::string &Separator);

/// Removes leading and trailing whitespace.
std::string trimString(const std::string &Str);

/// Returns true if \p Str starts with \p Prefix.
bool startsWith(const std::string &Str, const std::string &Prefix);

/// Left-pads to \p Width with spaces.
std::string padLeft(const std::string &Str, size_t Width);

/// Right-pads to \p Width with spaces.
std::string padRight(const std::string &Str, size_t Width);

/// Formats a double with \p Decimals fraction digits.
std::string formatDouble(double Value, unsigned Decimals);

/// Formats an integer with thin-space thousands grouping as the paper
/// does ("63 012").
std::string formatGrouped(uint64_t Value);

/// A minimal aligned-column table printer used by the benchmark
/// harnesses to render the paper's tables.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> Header);

  void addRow(std::vector<std::string> Row);

  /// Renders the table with a header separator line.
  std::string render() const;

private:
  std::vector<std::vector<std::string>> Rows;
};

} // namespace selgen

#endif // SELGEN_SUPPORT_STRINGUTILS_H
