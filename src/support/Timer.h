//===- Timer.h - Wall-clock timing -------------------------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timers used by the synthesis driver and the benchmark
/// harnesses, plus formatting of durations in the paper's style
/// ("100 h 50 min 54 s").
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SUPPORT_TIMER_H
#define SELGEN_SUPPORT_TIMER_H

#include <chrono>
#include <string>

namespace selgen {

/// A simple wall-clock stopwatch.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  int64_t elapsedMilliseconds() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now() - Start)
        .count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Formats a duration the way the paper's tables do, e.g.
/// "3 min 25 s", "18 h 10 min 58 s", "5 s", "420 ms".
inline std::string formatDuration(double Seconds) {
  if (Seconds < 1.0)
    return std::to_string(static_cast<int64_t>(Seconds * 1000)) + " ms";
  int64_t Total = static_cast<int64_t>(Seconds);
  int64_t Hours = Total / 3600;
  int64_t Minutes = (Total % 3600) / 60;
  int64_t Secs = Total % 60;
  std::string Result;
  if (Hours > 0)
    Result += std::to_string(Hours) + " h ";
  if (Hours > 0 || Minutes > 0)
    Result += std::to_string(Minutes) + " min ";
  Result += std::to_string(Secs) + " s";
  return Result;
}

} // namespace selgen

#endif // SELGEN_SUPPORT_TIMER_H
