//===- Wire.cpp - CRC-framed message transport --------------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Wire.h"

#include "support/AtomicFile.h"

#include <algorithm>
#include <cerrno>
#include <chrono>

#include <poll.h>
#include <unistd.h>

using namespace selgen;

namespace {

void putU32(std::string &Out, uint32_t Value) {
  for (unsigned I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((Value >> (8 * I)) & 0xFF));
}

uint32_t getU32(const unsigned char *Bytes) {
  uint32_t Value = 0;
  for (unsigned I = 0; I < 4; ++I)
    Value |= uint32_t(Bytes[I]) << (8 * I);
  return Value;
}

constexpr size_t HeaderBytes = 4 + 1 + 4 + 4;

/// Milliseconds until \p Deadline, clamped to >= 0; -1 if unset.
int64_t remainingMs(int64_t DeadlineMs,
                    std::chrono::steady_clock::time_point Start) {
  if (DeadlineMs < 0)
    return -1;
  auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
  return Elapsed >= DeadlineMs ? 0 : DeadlineMs - Elapsed;
}

} // namespace

std::string wire::encodeFrame(uint8_t Type, const std::string &Payload) {
  std::string Out;
  Out.reserve(HeaderBytes + Payload.size());
  putU32(Out, FrameMagic);
  Out.push_back(static_cast<char>(Type));
  putU32(Out, static_cast<uint32_t>(Payload.size()));
  putU32(Out, crc32(Payload));
  Out += Payload;
  return Out;
}

wire::WriteStatus wire::writeAll(int Fd, const std::string &Bytes,
                                 int64_t DeadlineMs) {
  auto Start = std::chrono::steady_clock::now();
  size_t Done = 0;
  while (Done < Bytes.size()) {
    ssize_t Wrote = ::write(Fd, Bytes.data() + Done, Bytes.size() - Done);
    if (Wrote > 0) {
      Done += static_cast<size_t>(Wrote);
      continue;
    }
    if (Wrote < 0 && errno == EINTR)
      continue;
    if (Wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Pipe full (the peer stopped draining stdin — a wedged worker
      // looks exactly like this once the request exceeds the pipe
      // capacity). Park in poll so the deadline still applies; a
      // blocking write here would hang with no kill ever firing.
      int64_t Budget = remainingMs(DeadlineMs, Start);
      if (Budget == 0)
        return WriteStatus::Timeout;
      struct pollfd Pfd = {Fd, POLLOUT, 0};
      int Ready = ::poll(&Pfd, 1,
                         Budget < 0 ? -1
                                    : static_cast<int>(std::min<int64_t>(
                                          Budget, 1 << 30)));
      if (Ready < 0 && errno != EINTR)
        return WriteStatus::Error;
      if (Ready == 0)
        return WriteStatus::Timeout;
      continue; // Writable (or POLLERR: the next write reports it).
    }
    return WriteStatus::Error; // EPIPE et al. — the peer died.
  }
  return WriteStatus::Ok;
}

bool wire::writeAll(int Fd, const std::string &Bytes) {
  return writeAll(Fd, Bytes, /*DeadlineMs=*/-1) == WriteStatus::Ok;
}

wire::WriteStatus wire::writeFrame(int Fd, uint8_t Type,
                                   const std::string &Payload,
                                   int64_t DeadlineMs) {
  return writeAll(Fd, encodeFrame(Type, Payload), DeadlineMs);
}

bool wire::writeFrame(int Fd, uint8_t Type, const std::string &Payload) {
  return writeFrame(Fd, Type, Payload, /*DeadlineMs=*/-1) ==
         WriteStatus::Ok;
}

wire::ReadStatus wire::readFrame(int Fd, Frame &Out, int64_t DeadlineMs) {
  auto Start = std::chrono::steady_clock::now();

  // Reads exactly Want bytes, honoring the deadline. Returns Ok / Eof /
  // Timeout; Eof mid-buffer is reported as Eof with *Got < Want.
  auto readExactly = [&](char *Buffer, size_t Want, size_t *Got) {
    *Got = 0;
    while (*Got < Want) {
      int64_t Budget = remainingMs(DeadlineMs, Start);
      if (Budget == 0)
        return ReadStatus::Timeout;
      struct pollfd Pfd = {Fd, POLLIN, 0};
      int Ready = ::poll(&Pfd, 1,
                         Budget < 0 ? -1
                                    : static_cast<int>(std::min<int64_t>(
                                          Budget, 1 << 30)));
      if (Ready < 0) {
        if (errno == EINTR)
          continue;
        return ReadStatus::Eof;
      }
      if (Ready == 0)
        return ReadStatus::Timeout;
      ssize_t Read = ::read(Fd, Buffer + *Got, Want - *Got);
      if (Read < 0) {
        if (errno == EINTR)
          continue;
        return ReadStatus::Eof;
      }
      if (Read == 0)
        return ReadStatus::Eof;
      *Got += static_cast<size_t>(Read);
    }
    return ReadStatus::Ok;
  };

  char Header[HeaderBytes];
  size_t Got = 0;
  ReadStatus Status = readExactly(Header, sizeof(Header), &Got);
  if (Status == ReadStatus::Timeout)
    return ReadStatus::Timeout;
  if (Status == ReadStatus::Eof)
    // A clean EOF on a frame boundary is the peer closing the stream;
    // EOF inside a header is a torn frame.
    return Got == 0 ? ReadStatus::Eof : ReadStatus::Corrupt;

  const unsigned char *Bytes = reinterpret_cast<unsigned char *>(Header);
  if (getU32(Bytes) != FrameMagic)
    return ReadStatus::Corrupt;
  Out.Type = Bytes[4];
  uint32_t Length = getU32(Bytes + 5);
  uint32_t Crc = getU32(Bytes + 9);
  if (Length > MaxFrameBytes)
    return ReadStatus::Corrupt;

  Out.Payload.resize(Length);
  if (Length) {
    Status = readExactly(Out.Payload.data(), Length, &Got);
    if (Status == ReadStatus::Timeout)
      return ReadStatus::Timeout;
    if (Status == ReadStatus::Eof)
      return ReadStatus::Corrupt; // Torn payload.
  }
  if (crc32(Out.Payload) != Crc)
    return ReadStatus::Corrupt;
  return ReadStatus::Ok;
}

wire::FrameReader::Event wire::FrameReader::parse(Frame &Out) {
  if (Buffer.size() < HeaderBytes)
    return Event::None;
  const unsigned char *Bytes =
      reinterpret_cast<const unsigned char *>(Buffer.data());
  if (getU32(Bytes) != FrameMagic)
    return Event::Corrupt;
  uint32_t Length = getU32(Bytes + 5);
  if (Length > MaxFrameBytes)
    return Event::Corrupt;
  if (Buffer.size() < HeaderBytes + Length)
    return Event::None;
  uint32_t Crc = getU32(Bytes + 9);
  Out.Type = Bytes[4];
  Out.Payload.assign(Buffer, HeaderBytes, Length);
  if (crc32(Out.Payload) != Crc)
    return Event::Corrupt;
  Buffer.erase(0, HeaderBytes + Length);
  return Event::Frame;
}

wire::FrameReader::Event wire::FrameReader::advance(int Fd, Frame &Out) {
  // A frame already buffered from a previous read beats touching the
  // fd again: frames must be delivered in arrival order.
  Event Parsed = parse(Out);
  if (Parsed != Event::None)
    return Parsed;
  if (SawEof)
    return Buffer.empty() ? Event::Eof : Event::Corrupt;

  char Chunk[64 * 1024];
  while (true) {
    ssize_t Read = ::read(Fd, Chunk, sizeof(Chunk));
    if (Read > 0) {
      Buffer.append(Chunk, static_cast<size_t>(Read));
      Parsed = parse(Out);
      if (Parsed != Event::None)
        return Parsed;
      continue; // A frame may still be mid-delivery; keep reading.
    }
    if (Read < 0 && errno == EINTR)
      continue;
    if (Read < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return Event::None; // Drained the fd; wait for the next poll.
    if (Read == 0) {
      SawEof = true;
      // EOF on a frame boundary is the peer leaving; inside a frame
      // it tore the stream.
      return Buffer.empty() ? Event::Eof : Event::Corrupt;
    }
    return Event::Corrupt; // Read error: the fd is broken.
  }
}

void wire::WriteQueue::push(std::string Bytes) {
  if (Bytes.empty())
    return;
  Pending += Bytes.size();
  Chunks.push_back(std::move(Bytes));
}

wire::WriteStatus wire::WriteQueue::drain(int Fd, bool *Progress) {
  if (Progress)
    *Progress = false;
  while (!Chunks.empty()) {
    const std::string &Front = Chunks.front();
    ssize_t Wrote =
        ::write(Fd, Front.data() + Offset, Front.size() - Offset);
    if (Wrote > 0) {
      if (Progress)
        *Progress = true;
      Offset += static_cast<size_t>(Wrote);
      Pending -= static_cast<size_t>(Wrote);
      if (Offset == Front.size()) {
        Chunks.pop_front();
        Offset = 0;
      }
      continue;
    }
    if (Wrote < 0 && errno == EINTR)
      continue;
    if (Wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return WriteStatus::Ok; // The fd is full; resume next POLLOUT.
    return WriteStatus::Error; // EPIPE et al. — the peer died.
  }
  return WriteStatus::Ok;
}
