//===- Wire.h - CRC-framed message transport ---------------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The frame-level protocol shared by every out-of-process selgen
/// component: the solver pool and its selgen-solverd workers (PR 6),
/// and the selgen-served compile server. Every message is one frame
///
///   magic   u32 LE  0x53474C46 ("FLGS" on disk, "selgen frame")
///   type    u8      1=request 2=response 3=error 4=shutdown
///   length  u32 LE  payload byte count (hard-capped; a garbage length
///                   can therefore never drive a giant allocation)
///   crc     u32 LE  CRC-32 of the payload bytes
///   payload length bytes
///
/// A frame is either fully valid or the connection is dead: any magic /
/// length / CRC mismatch condemns the peer (garbage on a pipe means the
/// writer is gone or insane). There is no resynchronization by design —
/// reconnecting or respawning is cheap and always returns the stream to
/// a known state.
///
/// Deadline semantics: every blocking primitive takes an optional
/// whole-operation budget in milliseconds, enforced with poll(2) and
/// robust against EINTR. Writers with a deadline require the fd to be
/// O_NONBLOCK so a full pipe parks in poll instead of a blocking
/// write(2). EPIPE surfaces as WriteStatus::Error only while SIGPIPE is
/// ignored — every process speaking this protocol installs SIG_IGN
/// before its first frame.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SUPPORT_WIRE_H
#define SELGEN_SUPPORT_WIRE_H

#include <cstdint>
#include <deque>
#include <string>

namespace selgen {
namespace wire {

constexpr uint32_t FrameMagic = 0x53474C46u;
/// Upper bound on a frame payload; a corrupted length field beyond it
/// is classified as garbage instead of attempted.
constexpr uint32_t MaxFrameBytes = 64u << 20;

enum FrameType : uint8_t {
  Request = 1,
  Response = 2,
  Error = 3,   ///< Well-formed reply carrying an error message.
  Shutdown = 4 ///< Graceful end-of-stream in either direction.
};

struct Frame {
  uint8_t Type = 0;
  std::string Payload;
};

/// Serializes one frame (header + payload) to raw bytes.
std::string encodeFrame(uint8_t Type, const std::string &Payload);

enum class WriteStatus {
  Ok,      ///< All bytes were written.
  Error,   ///< The peer is gone (EPIPE) or the fd is broken.
  Timeout, ///< The deadline passed with the pipe still full.
};

/// Writes all of \p Bytes to \p Fd, riding over EINTR and short
/// writes. With \p DeadlineMs >= 0 the whole write must finish within
/// that budget — the fd must then be O_NONBLOCK so a full pipe parks
/// us in poll(2) instead of a blocking write(2); -1 blocks
/// indefinitely. EPIPE is reported as Error only while SIGPIPE is
/// ignored (SolverPool::start() and the worker main both install
/// SIG_IGN); with the default disposition the signal kills the
/// process before write() can return.
WriteStatus writeAll(int Fd, const std::string &Bytes, int64_t DeadlineMs);

/// Blocking convenience overload: Ok iff every byte was written.
bool writeAll(int Fd, const std::string &Bytes);

/// Writes one frame within \p DeadlineMs (see writeAll).
WriteStatus writeFrame(int Fd, uint8_t Type, const std::string &Payload,
                       int64_t DeadlineMs);

/// Blocking convenience overload; false if the peer is gone.
bool writeFrame(int Fd, uint8_t Type, const std::string &Payload);

enum class ReadStatus {
  Ok,      ///< A valid frame was read.
  Eof,     ///< Clean end of stream before any byte of a frame.
  Corrupt, ///< Bad magic, oversized length, CRC mismatch, or torn frame.
  Timeout, ///< The deadline passed mid-read.
};

/// Reads one frame from \p Fd. With \p DeadlineMs >= 0 the whole read
/// must finish within that budget (enforced with poll(2)); -1 blocks
/// indefinitely. A frame cut short by EOF is Corrupt, not Eof.
ReadStatus readFrame(int Fd, Frame &Out, int64_t DeadlineMs = -1);

/// Incremental frame parser for non-blocking fds. readFrame() above
/// budgets one whole frame per call and discards partial bytes on
/// timeout, which is fine for a dedicated pipe but wrong for a server
/// multiplexing many clients: a slow client's half-delivered frame
/// must survive across poll ticks without holding a thread. A
/// FrameReader owns that partial state — feed it whatever the fd has
/// whenever poll reports readable, and it emits complete frames as
/// they finish.
class FrameReader {
public:
  enum class Event {
    None,   ///< No complete frame buffered yet; wait for more bytes.
    Frame,  ///< \p Out holds one complete, CRC-valid frame.
    Eof,    ///< Clean close on a frame boundary.
    Corrupt ///< Bad magic / length / CRC, or EOF mid-frame.
  };

  /// Consumes whatever \p Fd has available right now (the fd should
  /// be O_NONBLOCK; a blocking fd works but may park briefly) and
  /// tries to complete one frame. Returns Frame with \p Out filled
  /// when one finished — call again immediately, more frames may
  /// already be buffered. After Corrupt the stream is condemned; the
  /// reader must not be fed again.
  Event advance(int Fd, Frame &Out);

  /// True while a frame has started arriving but is not complete (an
  /// EOF or a long stall now is a torn frame, not idleness).
  bool midFrame() const { return !Buffer.empty(); }
  size_t bufferedBytes() const { return Buffer.size(); }

private:
  /// Extracts one frame from Buffer if fully present.
  Event parse(Frame &Out);

  std::string Buffer;
  bool SawEof = false;
};

/// Outgoing byte queue for a non-blocking fd: push whole encoded
/// frames, drain as much as the fd accepts per poll tick. Tracks
/// pending bytes so the server can bound buffered reply memory, and
/// reports per-drain progress so a stalled client (POLLOUT never
/// ready, zero bytes leaving) is detectable and evictable.
class WriteQueue {
public:
  void push(std::string Bytes);
  bool empty() const { return Chunks.empty(); }
  size_t pendingBytes() const { return Pending; }

  /// Writes until the fd would block or the queue empties. Ok means
  /// "made whatever progress the fd allowed" (possibly zero bytes);
  /// Error means the peer is gone. \p Progress is set to true iff at
  /// least one byte left the queue. Never blocks on an O_NONBLOCK fd.
  WriteStatus drain(int Fd, bool *Progress = nullptr);

private:
  std::deque<std::string> Chunks;
  size_t Offset = 0;  ///< Bytes of Chunks.front() already written.
  size_t Pending = 0; ///< Total unwritten bytes across all chunks.
};

} // namespace wire
} // namespace selgen

#endif // SELGEN_SUPPORT_WIRE_H
