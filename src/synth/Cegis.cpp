//===- Cegis.cpp - Counterexample-guided inductive synthesis -----------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "synth/Cegis.h"

#include "support/Rng.h"
#include "support/Timer.h"
#include "support/Statistics.h"

#include <set>

using namespace selgen;

namespace {

/// Builds the argument expressions and memory model for one concrete
/// test case.
struct ConcreteInstance {
  std::vector<z3::expr> Args;
  std::unique_ptr<MemoryModel> Memory;
};

ConcreteInstance makeConcreteInstance(SmtContext &Smt, unsigned Width,
                                      const InstrSpec &Goal,
                                      const TestCase &Test) {
  ConcreteInstance Instance;
  // Memory arguments need the M-value width, which needs the valid
  // pointers, which need the (value) arguments — so build value
  // literals first and patch memory literals in after the model
  // exists. Valid pointers never depend on memory arguments.
  std::vector<unsigned> MemoryArgIndices;
  for (unsigned I = 0; I < Goal.argSorts().size(); ++I) {
    const Sort &S = Goal.argSorts()[I];
    if (S.isMemory()) {
      MemoryArgIndices.push_back(I);
      Instance.Args.push_back(Smt.ctx().bv_val(0, 1)); // Placeholder.
    } else {
      assert(S.isValue() && "goal arguments are values or memory");
      Instance.Args.push_back(Smt.literal(Test[I]));
    }
  }
  Instance.Memory = std::make_unique<MemoryModel>(
      Smt, Goal.validPointers(Smt, Width, Instance.Args));
  for (unsigned I : MemoryArgIndices) {
    assert(Test[I].width() == Instance.Memory->mvalueWidth() &&
           "memory test value width mismatch");
    Instance.Args[I] = Smt.literal(Test[I]);
  }
  return Instance;
}

/// Builds fresh symbolic arguments and the memory model over them.
ConcreteInstance makeSymbolicInstance(SmtContext &Smt, unsigned Width,
                                      const InstrSpec &Goal,
                                      const std::string &Tag) {
  ConcreteInstance Instance;
  std::vector<unsigned> MemoryArgIndices;
  for (unsigned I = 0; I < Goal.argSorts().size(); ++I) {
    const Sort &S = Goal.argSorts()[I];
    if (S.isMemory()) {
      MemoryArgIndices.push_back(I);
      Instance.Args.push_back(Smt.ctx().bv_val(0, 1)); // Placeholder.
    } else {
      Instance.Args.push_back(
          Smt.bvConst(Tag + "_a" + std::to_string(I), S.Width));
    }
  }
  Instance.Memory = std::make_unique<MemoryModel>(
      Smt, Goal.validPointers(Smt, Width, Instance.Args));
  for (unsigned I : MemoryArgIndices)
    Instance.Args[I] = Smt.bvConst(Tag + "_a" + std::to_string(I),
                                   Instance.Memory->mvalueWidth());
  return Instance;
}

/// Equality of a pattern result with the goal result of the same sort.
z3::expr resultsEqual(SmtContext &Smt, const std::vector<z3::expr> &Lhs,
                      const std::vector<z3::expr> &Rhs) {
  assert(Lhs.size() == Rhs.size() && "result count mismatch");
  std::vector<z3::expr> Equalities;
  for (unsigned I = 0; I < Lhs.size(); ++I)
    Equalities.push_back(Lhs[I] == Rhs[I]);
  return Smt.mkAnd(Equalities);
}

} // namespace

std::vector<TestCase> selgen::makeInitialTests(const InstrSpec &Goal,
                                               unsigned Width,
                                               SmtContext &Smt, uint64_t Seed,
                                               unsigned Count) {
  // The memory width depends only on the number of valid pointers;
  // probe it once with zero-valued arguments.
  std::vector<z3::expr> ProbeArgs;
  for (const Sort &S : Goal.argSorts())
    ProbeArgs.push_back(
        Smt.ctx().bv_val(0, S.isMemory() ? 1 : S.Width));
  MemoryModel Probe(Smt, Goal.validPointers(Smt, Width, ProbeArgs));
  unsigned MemoryWidth = Probe.mvalueWidth();

  Rng Generator(Seed);
  std::vector<TestCase> Tests;
  for (unsigned T = 0; T < Count; ++T) {
    TestCase Test;
    for (const Sort &S : Goal.argSorts()) {
      if (S.isMemory())
        Test.push_back(Generator.nextBitValue(MemoryWidth));
      else if (T == 0)
        Test.push_back(BitValue(S.Width, 1)); // A simple deterministic seed.
      else
        Test.push_back(Generator.nextInterestingBitValue(S.Width));
    }
    Tests.push_back(std::move(Test));
  }
  return Tests;
}

bool selgen::verifyPatternAgainstGoal(SmtContext &Smt, unsigned Width,
                                      const InstrSpec &Goal,
                                      const Graph &Pattern,
                                      TestCase *Counterexample,
                                      unsigned QueryTimeoutMs,
                                      bool RequireTotal) {
  ConcreteInstance Instance =
      makeSymbolicInstance(Smt, Width, Goal, "verify");

  SemanticsContext GoalContext{Smt, Width, Instance.Memory.get(), {}};
  std::vector<z3::expr> GoalResults =
      Goal.computeResults(GoalContext, Instance.Args, {});
  z3::expr GoalPrecondition =
      Goal.precondition(GoalContext, Instance.Args, {});

  SemanticsContext PatternContext{Smt, Width, Instance.Memory.get(), {}};
  GraphSemantics PatternSemantics =
      buildGraphSemantics(PatternContext, Pattern, Instance.Args);

  // Search for a counterexample: the pattern's precondition holds, and
  // (1) the goal's does not, or (2) some result differs, or (3) the
  // pattern touches memory outside the goal's valid pointers.
  std::vector<z3::expr> ResultMismatches;
  for (unsigned R = 0; R < GoalResults.size(); ++R)
    ResultMismatches.push_back(PatternSemantics.Results[R] !=
                               GoalResults[R]);

  SmtSolver Solver(Smt);
  if (QueryTimeoutMs)
    Solver.setTimeoutMilliseconds(QueryTimeoutMs);
  if (RequireTotal) {
    // Total mode: wherever the goal is defined, the pattern must be
    // defined, in range, and equal.
    Solver.add(GoalPrecondition);
    Solver.add(!PatternSemantics.Precondition ||
               Smt.mkOr(ResultMismatches) ||
               !Smt.mkAnd(PatternSemantics.RangeConditions));
  } else {
    // Paper semantics: wherever the pattern is defined, the goal must
    // be defined and equal, and the pattern must stay in range.
    Solver.add(PatternSemantics.Precondition);
    Solver.add(!GoalPrecondition || Smt.mkOr(ResultMismatches) ||
               !Smt.mkAnd(PatternSemantics.RangeConditions));
  }

  SmtResult Result = Solver.check();
  if (Result == SmtResult::Unsat)
    return true;
  if (Result == SmtResult::Sat && Counterexample) {
    z3::model Model = Solver.model();
    Counterexample->clear();
    for (const z3::expr &Arg : Instance.Args)
      Counterexample->push_back(Smt.evalBits(Model, Arg));
  }
  return false;
}

CegisOutcome selgen::runCegisAllPatterns(SmtContext &Smt, unsigned Width,
                                         const InstrSpec &Goal,
                                         const std::vector<Opcode> &Templates,
                                         std::vector<TestCase> &SharedTests,
                                         const CegisOptions &Options) {
  CegisOutcome Outcome;
  ProgramEncoding Encoding(Smt, Width, Goal, Templates,
                           Options.RequireAllUsed);

  SmtSolver Synthesis(Smt);
  if (Options.QueryTimeoutMs)
    Synthesis.setTimeoutMilliseconds(Options.QueryTimeoutMs);
  Synthesis.add(Encoding.wellFormed());

  // Non-vacuity witness: the candidate's precondition and memory range
  // conditions must be satisfiable for at least one input. Without
  // this, any pattern with an unsatisfiable P+ (say, a shift by a
  // constant >= the width) is vacuously "equivalent" to every goal and
  // floods the enumeration with junk rules no defined program can
  // trigger.
  {
    ConcreteInstance Witness =
        makeSymbolicInstance(Smt, Width, Goal, "wit");
    EncodedInstance Encoded =
        Encoding.instantiate(Witness.Args, *Witness.Memory, "wit");
    Synthesis.add(Encoded.Definitions);
    Synthesis.add(Encoded.Precondition);
    Synthesis.add(Encoded.RangeCondition);
  }

  if (SharedTests.empty())
    SharedTests = makeInitialTests(Goal, Width, Smt, Options.RngSeed,
                                   /*Count=*/3);

  // Assert the synthesis condition for one test case:
  //   definitions ∧ (P+ -> (P(g) ∧ vr = vr' ∧ V+ ⊆ V)).
  unsigned AssertedTests = 0;
  auto assertTestCase = [&](const TestCase &Test) {
    ConcreteInstance Instance =
        makeConcreteInstance(Smt, Width, Goal, Test);
    std::string Tag = "t" + std::to_string(AssertedTests++);
    EncodedInstance Encoded =
        Encoding.instantiate(Instance.Args, *Instance.Memory, Tag);

    SemanticsContext GoalContext{Smt, Width, Instance.Memory.get(), {}};
    std::vector<z3::expr> GoalResults =
        Goal.computeResults(GoalContext, Instance.Args, {});
    z3::expr GoalPrecondition =
        Goal.precondition(GoalContext, Instance.Args, {});

    Synthesis.add(Encoded.Definitions);
    if (Options.RequireTotalPatterns)
      Synthesis.add(z3::implies(
          GoalPrecondition,
          Encoded.Precondition &&
              resultsEqual(Smt, Encoded.Results, GoalResults) &&
              Encoded.RangeCondition));
    else
      Synthesis.add(z3::implies(Encoded.Precondition,
                                GoalPrecondition &&
                                    resultsEqual(Smt, Encoded.Results,
                                                 GoalResults) &&
                                    Encoded.RangeCondition));
  };

  for (const TestCase &Test : SharedTests)
    assertTestCase(Test);

  std::set<std::string> SeenFingerprints;

  Timer Clock;
  for (unsigned Iteration = 0; Iteration < Options.MaxIterations;
       ++Iteration) {
    if (Options.TimeBudgetSeconds > 0 &&
        Clock.elapsedSeconds() > Options.TimeBudgetSeconds) {
      Outcome.SolverTrouble = true;
      return Outcome;
    }
    ++Outcome.SynthesisQueries;
    Statistics::get().add("cegis.synthesis_queries");
    SmtResult Result = Synthesis.check();
    if (Result == SmtResult::Unsat) {
      Outcome.Exhausted = true;
      return Outcome;
    }
    if (Result == SmtResult::Unknown) {
      Outcome.SolverTrouble = true;
      return Outcome;
    }

    Graph Candidate = Encoding.reconstruct(Synthesis.model());

    // Exclude this exact assignment from future synthesis queries
    // regardless of the verification outcome: a wrong candidate is
    // also killed by its counterexample, but the explicit clause
    // protects against re-deriving it through solver nondeterminism.
    {
      z3::model Model = Synthesis.model();
      std::vector<z3::expr> Same;
      for (const z3::expr &Var : Encoding.decisionVariables())
        Same.push_back(Var == Model.eval(Var, /*model_completion=*/true));
      Synthesis.add(!Smt.mkAnd(Same));
    }

    ++Outcome.VerificationQueries;
    Statistics::get().add("cegis.verification_queries");
    TestCase Counterexample;
    if (verifyPatternAgainstGoal(Smt, Width, Goal, Candidate,
                                 &Counterexample, Options.QueryTimeoutMs,
                                 Options.RequireTotalPatterns)) {
      if (SeenFingerprints.insert(Candidate.fingerprint()).second)
        Outcome.Patterns.push_back(std::move(Candidate));
      if (Outcome.Patterns.size() >= Options.MaxPatterns)
        return Outcome;
      continue;
    }

    if (Counterexample.empty()) {
      // Timeout or unknown in verification.
      Outcome.SolverTrouble = true;
      return Outcome;
    }

    ++Outcome.Counterexamples;
    Statistics::get().add("cegis.counterexamples");
    SharedTests.push_back(Counterexample);
    assertTestCase(Counterexample);
  }
  return Outcome;
}
