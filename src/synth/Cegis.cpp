//===- Cegis.cpp - Counterexample-guided inductive synthesis -----------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "synth/Cegis.h"

#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/Timer.h"

#include <algorithm>
#include <set>

using namespace selgen;

namespace {

/// Equality of a pattern result with the goal result of the same sort.
z3::expr resultsEqual(SmtContext &Smt, const std::vector<z3::expr> &Lhs,
                      const std::vector<z3::expr> &Rhs) {
  assert(Lhs.size() == Rhs.size() && "result count mismatch");
  std::vector<z3::expr> Equalities;
  for (unsigned I = 0; I < Lhs.size(); ++I)
    Equalities.push_back(Lhs[I] == Rhs[I]);
  return Smt.mkAnd(Equalities);
}

/// Puts the found patterns into canonical (fingerprint) order, so the
/// outcome is independent of the order candidates happened to be
/// enumerated in — which in turn depends on which corpus tests were
/// asserted, something pre-screening changes.
void canonicalizePatterns(std::vector<Graph> &Patterns) {
  // Canonical node order within each graph, then canonical order
  // across graphs.
  for (Graph &Pattern : Patterns)
    Pattern = Pattern.canonicalized();
  std::sort(Patterns.begin(), Patterns.end(),
            [](const Graph &A, const Graph &B) {
              return A.fingerprint() < B.fingerprint();
            });
}

} // namespace

std::vector<TestCase> selgen::makeInitialTests(const InstrSpec &Goal,
                                               unsigned Width,
                                               SmtContext &Smt, uint64_t Seed,
                                               unsigned Count) {
  // The memory width depends only on the number of valid pointers;
  // probe it once with zero-valued arguments.
  std::vector<z3::expr> ProbeArgs;
  for (const Sort &S : Goal.argSorts())
    ProbeArgs.push_back(
        Smt.ctx().bv_val(0, S.isMemory() ? 1 : S.Width));
  MemoryModel Probe(Smt, Goal.validPointers(Smt, Width, ProbeArgs));
  unsigned MemoryWidth = Probe.mvalueWidth();

  Rng Generator(Seed);
  std::vector<TestCase> Tests;
  for (unsigned T = 0; T < Count; ++T) {
    TestCase Test;
    for (const Sort &S : Goal.argSorts()) {
      if (S.isMemory())
        Test.push_back(Generator.nextBitValue(MemoryWidth));
      else if (T == 0)
        Test.push_back(BitValue(S.Width, 1)); // A simple deterministic seed.
      else
        Test.push_back(Generator.nextInterestingBitValue(S.Width));
    }
    Tests.push_back(std::move(Test));
  }
  return Tests;
}

PatternVerifier::PatternVerifier(SmtContext &Smt, unsigned Width,
                                 const InstrSpec &Goal,
                                 unsigned QueryTimeoutMs, bool RequireTotal)
    : Smt(Smt), Width(Width), Goal(Goal), RequireTotal(RequireTotal),
      Instance(makeSymbolicGoalInstance(Smt, Width, Goal, "verify")),
      GoalPrecondition(Smt.boolVal(true)), Solver(Smt) {
  SemanticsContext GoalContext{Smt, Width, Instance.Memory.get(), {}};
  GoalResults = Goal.computeResults(GoalContext, Instance.Args, {});
  GoalPrecondition = Goal.precondition(GoalContext, Instance.Args, {});
  if (QueryTimeoutMs)
    Solver.setTimeoutMilliseconds(QueryTimeoutMs);
}

bool PatternVerifier::verify(const Graph &Pattern, TestCase *Counterexample) {
  SemanticsContext PatternContext{Smt, Width, Instance.Memory.get(), {}};
  GraphSemantics PatternSemantics =
      buildGraphSemantics(PatternContext, Pattern, Instance.Args);

  // Search for a counterexample: the pattern's precondition holds, and
  // (1) the goal's does not, or (2) some result differs, or (3) the
  // pattern touches memory outside the goal's valid pointers.
  std::vector<z3::expr> ResultMismatches;
  for (unsigned R = 0; R < GoalResults.size(); ++R)
    ResultMismatches.push_back(PatternSemantics.Results[R] !=
                               GoalResults[R]);

  Solver.push();
  if (RequireTotal) {
    // Total mode: wherever the goal is defined, the pattern must be
    // defined, in range, and equal.
    Solver.add(GoalPrecondition);
    Solver.add(!PatternSemantics.Precondition ||
               Smt.mkOr(ResultMismatches) ||
               !Smt.mkAnd(PatternSemantics.RangeConditions));
  } else {
    // Paper semantics: wherever the pattern is defined, the goal must
    // be defined and equal, and the pattern must stay in range.
    Solver.add(PatternSemantics.Precondition);
    Solver.add(!GoalPrecondition || Smt.mkOr(ResultMismatches) ||
               !Smt.mkAnd(PatternSemantics.RangeConditions));
  }

  SmtResult Result = Solver.check();
  bool Verified = Result == SmtResult::Unsat;
  if (Result == SmtResult::Sat && Counterexample) {
    z3::model Model = Solver.model();
    Counterexample->clear();
    for (const z3::expr &Arg : Instance.Args)
      Counterexample->push_back(Smt.evalBits(Model, Arg));
  }
  Solver.pop();
  return Verified;
}

bool selgen::verifyPatternAgainstGoal(SmtContext &Smt, unsigned Width,
                                      const InstrSpec &Goal,
                                      const Graph &Pattern,
                                      TestCase *Counterexample,
                                      unsigned QueryTimeoutMs,
                                      bool RequireTotal) {
  PatternVerifier Verifier(Smt, Width, Goal, QueryTimeoutMs, RequireTotal);
  return Verifier.verify(Pattern, Counterexample);
}

CegisOutcome selgen::runCegisAllPatterns(SmtContext &Smt, unsigned Width,
                                         const InstrSpec &Goal,
                                         const std::vector<Opcode> &Templates,
                                         TestCorpus &Corpus,
                                         const CegisOptions &Options,
                                         ConcreteGoalEval *Eval,
                                         PatternVerifier *Verifier) {
  CegisOutcome Outcome;
  ProgramEncoding Encoding(Smt, Width, Goal, Templates,
                           Options.RequireAllUsed);

  std::optional<ConcreteGoalEval> LocalEval;
  if (!Eval && Options.UsePrescreen) {
    LocalEval.emplace(Smt, Width, Goal);
    Eval = &*LocalEval;
  }
  std::optional<PatternVerifier> LocalVerifier;
  if (!Verifier) {
    LocalVerifier.emplace(Smt, Width, Goal, Options.QueryTimeoutMs,
                          Options.RequireTotalPatterns);
    Verifier = &*LocalVerifier;
  }

  SmtSolver Synthesis(Smt);
  SolverPolicy QueryPolicy;
  QueryPolicy.TimeoutMs = Options.QueryTimeoutMs;
  QueryPolicy.RlimitPerQuery = Options.QueryRlimit;
  QueryPolicy.RetryScale = Options.QueryRetryScale;
  Synthesis.applyPolicy(QueryPolicy);
  if (Options.Deadline) {
    Synthesis.setDeadline(*Options.Deadline);
    // A locally constructed verifier inherits the run's policy; a
    // shared one keeps whatever policy its owner armed it with.
    if (LocalVerifier)
      LocalVerifier->setDeadline(*Options.Deadline);
  }
  if (LocalVerifier &&
      (Options.QueryRlimit || Options.QueryRetryScale.size() > 1)) {
    LocalVerifier->applyPolicy(QueryPolicy);
    if (Options.Deadline)
      LocalVerifier->setDeadline(*Options.Deadline);
  }
  Synthesis.add(Encoding.wellFormed());

  // Non-vacuity witness: the candidate's precondition and memory range
  // conditions must be satisfiable for at least one input. Without
  // this, any pattern with an unsatisfiable P+ (say, a shift by a
  // constant >= the width) is vacuously "equivalent" to every goal and
  // floods the enumeration with junk rules no defined program can
  // trigger.
  {
    GoalInstance Witness = makeSymbolicGoalInstance(Smt, Width, Goal, "wit");
    EncodedInstance Encoded =
        Encoding.instantiate(Witness.Args, *Witness.Memory, "wit");
    Synthesis.add(Encoded.Definitions);
    Synthesis.add(Encoded.Precondition);
    Synthesis.add(Encoded.RangeCondition);
  }

  if (Corpus.empty())
    for (TestCase &Test :
         makeInitialTests(Goal, Width, Smt, Options.RngSeed, /*Count=*/3)) {
      std::optional<ConcreteGoalOutcome> GoalOutcome;
      if (Eval)
        GoalOutcome = Eval->evaluateGoal(Test);
      Corpus.insert(std::move(Test), std::move(GoalOutcome));
    }

  // Assert the synthesis condition for one test case:
  //   definitions ∧ (P+ -> (P(g) ∧ vr = vr' ∧ V+ ⊆ V)).
  unsigned AssertedTests = 0;
  auto assertTestCase = [&](const TestCase &Test) {
    GoalInstance Instance = makeConcreteGoalInstance(Smt, Width, Goal, Test);
    std::string Tag = "t" + std::to_string(AssertedTests++);
    EncodedInstance Encoded =
        Encoding.instantiate(Instance.Args, *Instance.Memory, Tag);

    SemanticsContext GoalContext{Smt, Width, Instance.Memory.get(), {}};
    std::vector<z3::expr> GoalResults =
        Goal.computeResults(GoalContext, Instance.Args, {});
    z3::expr GoalPrecondition =
        Goal.precondition(GoalContext, Instance.Args, {});

    Synthesis.add(Encoded.Definitions);
    if (Options.RequireTotalPatterns)
      Synthesis.add(z3::implies(
          GoalPrecondition,
          Encoded.Precondition &&
              resultsEqual(Smt, Encoded.Results, GoalResults) &&
              Encoded.RangeCondition));
    else
      Synthesis.add(z3::implies(Encoded.Precondition,
                                GoalPrecondition &&
                                    resultsEqual(Smt, Encoded.Results,
                                                 GoalResults) &&
                                    Encoded.RangeCondition));
  };

  // Tests are asserted lazily: a corpus test enters the synthesis
  // formula only once it has killed a candidate of this multiset, so
  // the formula stays small however large the shared corpus grows.
  std::set<std::string> AssertedKeys;
  auto assertTestOnce = [&](const TestCase &Test) {
    if (AssertedKeys.insert(testCaseKey(Test)).second)
      assertTestCase(Test);
  };

  std::set<std::string> SeenFingerprints;

  Timer Clock;
  for (unsigned Iteration = 0; Iteration < Options.MaxIterations;
       ++Iteration) {
    if (Options.TimeBudgetSeconds > 0 &&
        Clock.elapsedSeconds() > Options.TimeBudgetSeconds) {
      Outcome.SolverTrouble = true;
      canonicalizePatterns(Outcome.Patterns);
      return Outcome;
    }
    ++Outcome.SynthesisQueries;
    Statistics::get().add("cegis.synthesis_queries");
    SmtResult Result = Synthesis.check();
    if (Result == SmtResult::Unsat) {
      Outcome.Exhausted = true;
      canonicalizePatterns(Outcome.Patterns);
      return Outcome;
    }
    if (Result == SmtResult::Unknown) {
      Outcome.SolverTrouble = true;
      Outcome.Failure = Synthesis.lastFailure();
      canonicalizePatterns(Outcome.Patterns);
      return Outcome;
    }

    std::optional<Graph> Reconstructed =
        Encoding.reconstruct(Synthesis.model());
    if (!Reconstructed) {
      // Sat verdict with an inconsistent model (Z3 resource-out mid
      // model-conversion): reject the answer like an unknown instead
      // of synthesizing a bogus pattern or dying.
      Outcome.SolverTrouble = true;
      Outcome.Failure = SmtFailure::Rlimit;
      canonicalizePatterns(Outcome.Patterns);
      return Outcome;
    }
    Graph Candidate = std::move(*Reconstructed);

    // Exclude this exact assignment from future synthesis queries
    // regardless of the verification outcome: a wrong candidate is
    // also killed by its counterexample, but the explicit clause
    // protects against re-deriving it through solver nondeterminism.
    {
      z3::model Model = Synthesis.model();
      std::vector<z3::expr> Same;
      for (const z3::expr &Var : Encoding.decisionVariables())
        Same.push_back(Var == Model.eval(Var, /*model_completion=*/true));
      Synthesis.add(!Smt.mkAnd(Same));
    }

    // Concrete pre-screen: run the candidate on the whole corpus; one
    // failing test kills it without a verification query, and only
    // that killing test is then asserted symbolically.
    if (Eval && Options.UsePrescreen) {
      Timer ScreenClock;
      std::vector<TestCorpus::EntryPtr> Tests = Corpus.snapshot();
      TestCorpus::EntryPtr Killer;
      bool SawInconclusive = false;
      for (const TestCorpus::EntryPtr &Test : Tests) {
        if (!Test->GoalOutcome) {
          SawInconclusive = true;
          continue;
        }
        ScreenVerdict Verdict =
            Eval->screen(Candidate, Test->Test, *Test->GoalOutcome,
                         Options.RequireTotalPatterns);
        if (Verdict == ScreenVerdict::Kill) {
          Killer = Test;
          break;
        }
        if (Verdict == ScreenVerdict::Inconclusive)
          SawInconclusive = true;
      }
      Statistics::get().add(
          "prescreen.eval_us",
          static_cast<int64_t>(ScreenClock.elapsedSeconds() * 1e6));
      Statistics::get().add("prescreen.candidates");
      if (Killer) {
        ++Outcome.PrescreenKills;
        Statistics::get().add("prescreen.kills");
        Statistics::get().add("corpus.hits");
        Corpus.recordKill(Killer);
        assertTestOnce(Killer->Test);
        continue;
      }
      if (SawInconclusive) {
        ++Outcome.PrescreenInconclusive;
        Statistics::get().add("prescreen.inconclusive");
      }
    }

    ++Outcome.VerificationQueries;
    Statistics::get().add("cegis.verification_queries");
    TestCase Counterexample;
    if (Verifier->verify(Candidate, &Counterexample)) {
      if (SeenFingerprints.insert(Candidate.fingerprint()).second)
        Outcome.Patterns.push_back(std::move(Candidate));
      if (Outcome.Patterns.size() >= Options.MaxPatterns) {
        canonicalizePatterns(Outcome.Patterns);
        return Outcome;
      }
      continue;
    }

    if (Counterexample.empty()) {
      // Timeout or unknown in verification.
      Outcome.SolverTrouble = true;
      Outcome.Failure = Verifier->lastFailure();
      canonicalizePatterns(Outcome.Patterns);
      return Outcome;
    }

    ++Outcome.Counterexamples;
    Statistics::get().add("cegis.counterexamples");
    std::optional<ConcreteGoalOutcome> GoalOutcome;
    if (Eval)
      GoalOutcome = Eval->evaluateGoal(Counterexample);
    Corpus.insert(Counterexample, std::move(GoalOutcome));
    assertTestOnce(Counterexample);
  }
  canonicalizePatterns(Outcome.Patterns);
  return Outcome;
}

CegisOutcome selgen::runCegisAllPatterns(SmtContext &Smt, unsigned Width,
                                         const InstrSpec &Goal,
                                         const std::vector<Opcode> &Templates,
                                         std::vector<TestCase> &SharedTests,
                                         const CegisOptions &Options) {
  TestCorpus Corpus;
  if (!SharedTests.empty()) {
    std::optional<ConcreteGoalEval> Eval;
    if (Options.UsePrescreen)
      Eval.emplace(Smt, Width, Goal);
    for (const TestCase &Test : SharedTests)
      Corpus.insert(Test, Eval ? Eval->evaluateGoal(Test) : std::nullopt);
  }
  CegisOutcome Outcome =
      runCegisAllPatterns(Smt, Width, Goal, Templates, Corpus, Options);
  SharedTests = Corpus.allTests();
  return Outcome;
}
