//===- Cegis.h - Counterexample-guided inductive synthesis -------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CEGIS core of paper Section 5.2/5.3: alternating synthesis and
/// verification queries over the location-variable encoding, repeated
/// with exclusion clauses until every pattern expressible with the
/// given template multiset has been found (CEGISAllPatterns).
///
/// Two layers keep the solver out of the hot path. Candidates are
/// first screened concretely against the accumulated counterexample
/// corpus (ConcreteGoalEval / TestCorpus): a failing test kills a
/// candidate with zero verification queries. And test cases are
/// asserted into the synthesis formula lazily — only once they have
/// actually killed a candidate — so the formula stays small as the
/// corpus grows. Pattern results are returned in canonical
/// (fingerprint) order, making the output independent of which tests
/// happen to be asserted.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SYNTH_CEGIS_H
#define SELGEN_SYNTH_CEGIS_H

#include "synth/ConcreteGoalEval.h"
#include "synth/Encoding.h"
#include "synth/TestCorpus.h"

#include <chrono>
#include <optional>
#include <vector>

namespace selgen {

/// Knobs for one CEGIS run.
struct CegisOptions {
  unsigned MaxPatterns = 32;     ///< Per multiset.
  unsigned MaxIterations = 512;  ///< Synthesis/verify round bound.
  double TimeBudgetSeconds = 0;  ///< Wall-clock cap; 0 = none.
  /// If true, a pattern must be defined (P+ holds) wherever the goal's
  /// precondition holds, instead of only having to agree where the
  /// pattern is defined. The paper's formulas use the partial
  /// semantics (false); the total mode is an ablation that produces a
  /// much smaller library without rules that rely on the matched IR's
  /// undefined behaviour.
  bool RequireTotalPatterns = false;
  unsigned QueryTimeoutMs = 0;   ///< Per solver check; 0 = none.
  /// Deterministic Z3 resource budget per solver check; 0 = none.
  uint64_t QueryRlimit = 0;
  /// Budget escalation ladder for inconclusive checks (see
  /// SolverPolicy::RetryScale); {1} = single attempt.
  std::vector<unsigned> QueryRetryScale = {1};
  /// Hard deadline for every solver query of this run: in-flight
  /// checks are interrupted once it passes. Unset = none.
  std::optional<std::chrono::steady_clock::time_point> Deadline;
  uint64_t RngSeed = 0x5e1f5e1f; ///< Seed for the initial test cases.
  /// Enforce the all-operations-used refinement; the classical-CEGIS
  /// baseline disables it (the original encoding allows dead
  /// components).
  bool RequireAllUsed = true;
  /// Screen candidates concretely against the counterexample corpus
  /// before the symbolic verification query. Never changes the
  /// resulting pattern set (a concrete Kill is a verification
  /// counterexample); --no-prescreen disables it for ablation.
  bool UsePrescreen = true;
};

/// What one CEGISAllPatterns run produced.
struct CegisOutcome {
  std::vector<Graph> Patterns;
  /// True if the final synthesis query was unsatisfiable, i.e. the
  /// pattern list is provably complete for this multiset.
  bool Exhausted = false;
  /// True if a solver call returned unknown (timeout) or the run's
  /// time budget expired; results are then incomplete.
  bool SolverTrouble = false;
  /// Why the troubling solver call was inconclusive. None with
  /// SolverTrouble set means the run-level budget (time or iteration
  /// cap) expired rather than an individual query failing.
  SmtFailure Failure = SmtFailure::None;
  unsigned SynthesisQueries = 0;
  unsigned VerificationQueries = 0;
  unsigned Counterexamples = 0;
  /// Candidates killed by the concrete corpus pre-screen; each one is
  /// an SMT verification query avoided.
  unsigned PrescreenKills = 0;
  /// Candidates whose screening was inconclusive on some test and went
  /// to the symbolic verifier anyway.
  unsigned PrescreenInconclusive = 0;
};

/// The verification query of Section 5.2 with the per-candidate work
/// factored out: the symbolic goal instance, goal semantics, and
/// solver are built once per (goal, width), and each candidate is
/// checked in its own push/pop scope.
class PatternVerifier {
public:
  PatternVerifier(SmtContext &Smt, unsigned Width, const InstrSpec &Goal,
                  unsigned QueryTimeoutMs = 0, bool RequireTotal = false);

  /// Returns true if \p Pattern is equivalent to the goal for all
  /// inputs; if \p Counterexample is non-null and the check fails with
  /// a model, the failing test case is stored there.
  bool verify(const Graph &Pattern, TestCase *Counterexample = nullptr);

  /// Applies a full supervision policy (budgets, retry ladder,
  /// deadline) to the underlying solver.
  void applyPolicy(const SolverPolicy &Policy) { Solver.applyPolicy(Policy); }

  /// Arms/clears the hard deadline on the underlying solver.
  void setDeadline(std::chrono::steady_clock::time_point Deadline) {
    Solver.setDeadline(Deadline);
  }
  void clearDeadline() { Solver.clearDeadline(); }

  /// Why the last verify() was inconclusive (None after a conclusive
  /// check).
  SmtFailure lastFailure() const { return Solver.lastFailure(); }

private:
  SmtContext &Smt;
  unsigned Width;
  const InstrSpec &Goal;
  bool RequireTotal;
  GoalInstance Instance;
  std::vector<z3::expr> GoalResults;
  z3::expr GoalPrecondition;
  SmtSolver Solver;
};

/// Runs CEGISAllPatterns for \p Goal over the template multiset
/// \p Templates. \p Corpus carries test cases across multisets of the
/// same goal and, in the parallel builder, across chunks (any
/// counterexample for one candidate is a valid test case for all of
/// them); newly discovered counterexamples are inserted. \p Eval and
/// \p Verifier may be shared across multisets of the same (goal,
/// width); passing null constructs them locally.
CegisOutcome runCegisAllPatterns(SmtContext &Smt, unsigned Width,
                                 const InstrSpec &Goal,
                                 const std::vector<Opcode> &Templates,
                                 TestCorpus &Corpus,
                                 const CegisOptions &Options,
                                 ConcreteGoalEval *Eval = nullptr,
                                 PatternVerifier *Verifier = nullptr);

/// Compatibility overload over a plain test vector: seeds a local
/// corpus from \p SharedTests and copies the grown corpus back.
CegisOutcome runCegisAllPatterns(SmtContext &Smt, unsigned Width,
                                 const InstrSpec &Goal,
                                 const std::vector<Opcode> &Templates,
                                 std::vector<TestCase> &SharedTests,
                                 const CegisOptions &Options);

/// Builds a deterministic initial test-case set for \p Goal.
std::vector<TestCase> makeInitialTests(const InstrSpec &Goal, unsigned Width,
                                       SmtContext &Smt, uint64_t Seed,
                                       unsigned Count);

/// One-shot convenience wrapper around PatternVerifier for standalone
/// verification of a single pattern.
bool verifyPatternAgainstGoal(SmtContext &Smt, unsigned Width,
                              const InstrSpec &Goal, const Graph &Pattern,
                              TestCase *Counterexample = nullptr,
                              unsigned QueryTimeoutMs = 0,
                              bool RequireTotal = false);

} // namespace selgen

#endif // SELGEN_SYNTH_CEGIS_H
