//===- Cegis.h - Counterexample-guided inductive synthesis -------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CEGIS core of paper Section 5.2/5.3: alternating synthesis and
/// verification queries over the location-variable encoding, repeated
/// with exclusion clauses until every pattern expressible with the
/// given template multiset has been found (CEGISAllPatterns).
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SYNTH_CEGIS_H
#define SELGEN_SYNTH_CEGIS_H

#include "synth/Encoding.h"

#include <vector>

namespace selgen {

/// Knobs for one CEGIS run.
struct CegisOptions {
  unsigned MaxPatterns = 32;     ///< Per multiset.
  unsigned MaxIterations = 512;  ///< Synthesis/verify round bound.
  double TimeBudgetSeconds = 0;  ///< Wall-clock cap; 0 = none.
  /// If true, a pattern must be defined (P+ holds) wherever the goal's
  /// precondition holds, instead of only having to agree where the
  /// pattern is defined. The paper's formulas use the partial
  /// semantics (false); the total mode is an ablation that produces a
  /// much smaller library without rules that rely on the matched IR's
  /// undefined behaviour.
  bool RequireTotalPatterns = false;
  unsigned QueryTimeoutMs = 0;   ///< Per solver check; 0 = none.
  uint64_t RngSeed = 0x5e1f5e1f; ///< Seed for the initial test cases.
  /// Enforce the all-operations-used refinement; the classical-CEGIS
  /// baseline disables it (the original encoding allows dead
  /// components).
  bool RequireAllUsed = true;
};

/// What one CEGISAllPatterns run produced.
struct CegisOutcome {
  std::vector<Graph> Patterns;
  /// True if the final synthesis query was unsatisfiable, i.e. the
  /// pattern list is provably complete for this multiset.
  bool Exhausted = false;
  /// True if a solver call returned unknown (timeout); results are
  /// then incomplete.
  bool SolverTrouble = false;
  unsigned SynthesisQueries = 0;
  unsigned VerificationQueries = 0;
  unsigned Counterexamples = 0;
};

/// Runs CEGISAllPatterns for \p Goal over the template multiset
/// \p Templates. \p SharedTests carries test cases across multisets of
/// the same goal (any counterexample for one candidate is a valid test
/// case for all of them); newly discovered counterexamples are
/// appended.
CegisOutcome runCegisAllPatterns(SmtContext &Smt, unsigned Width,
                                 const InstrSpec &Goal,
                                 const std::vector<Opcode> &Templates,
                                 std::vector<TestCase> &SharedTests,
                                 const CegisOptions &Options);

/// Builds a deterministic initial test-case set for \p Goal.
std::vector<TestCase> makeInitialTests(const InstrSpec &Goal, unsigned Width,
                                       SmtContext &Smt, uint64_t Seed,
                                       unsigned Count);

/// Verifies that \p Pattern is equivalent to \p Goal for all inputs
/// (the verification query of Section 5.2, run standalone). Returns
/// true if equivalent; if \p Counterexample is non-null and the check
/// fails with a model, the failing test case is stored there.
bool verifyPatternAgainstGoal(SmtContext &Smt, unsigned Width,
                              const InstrSpec &Goal, const Graph &Pattern,
                              TestCase *Counterexample = nullptr,
                              unsigned QueryTimeoutMs = 0,
                              bool RequireTotal = false);

} // namespace selgen

#endif // SELGEN_SYNTH_CEGIS_H
