//===- ConcreteGoalEval.cpp - Solver-free candidate screening ----------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "synth/ConcreteGoalEval.h"

#include "ir/Interpreter.h"
#include "support/Error.h"

using namespace selgen;

GoalInstance selgen::makeConcreteGoalInstance(SmtContext &Smt, unsigned Width,
                                              const InstrSpec &Goal,
                                              const TestCase &Test) {
  GoalInstance Instance;
  // Memory arguments need the M-value width, which needs the valid
  // pointers, which need the (value) arguments — so build value
  // literals first and patch memory literals in after the model
  // exists. Valid pointers never depend on memory arguments.
  std::vector<unsigned> MemoryArgIndices;
  for (unsigned I = 0; I < Goal.argSorts().size(); ++I) {
    const Sort &S = Goal.argSorts()[I];
    if (S.isMemory()) {
      MemoryArgIndices.push_back(I);
      Instance.Args.push_back(Smt.ctx().bv_val(0, 1)); // Placeholder.
    } else {
      assert(S.isValue() && "goal arguments are values or memory");
      Instance.Args.push_back(Smt.literal(Test[I]));
    }
  }
  Instance.Memory = std::make_unique<MemoryModel>(
      Smt, Goal.validPointers(Smt, Width, Instance.Args));
  for (unsigned I : MemoryArgIndices) {
    assert(Test[I].width() == Instance.Memory->mvalueWidth() &&
           "memory test value width mismatch");
    Instance.Args[I] = Smt.literal(Test[I]);
  }
  return Instance;
}

GoalInstance selgen::makeSymbolicGoalInstance(SmtContext &Smt, unsigned Width,
                                              const InstrSpec &Goal,
                                              const std::string &Tag) {
  GoalInstance Instance;
  std::vector<unsigned> MemoryArgIndices;
  for (unsigned I = 0; I < Goal.argSorts().size(); ++I) {
    const Sort &S = Goal.argSorts()[I];
    if (S.isMemory()) {
      MemoryArgIndices.push_back(I);
      Instance.Args.push_back(Smt.ctx().bv_val(0, 1)); // Placeholder.
    } else {
      Instance.Args.push_back(
          Smt.bvConst(Tag + "_a" + std::to_string(I), S.Width));
    }
  }
  Instance.Memory = std::make_unique<MemoryModel>(
      Smt, Goal.validPointers(Smt, Width, Instance.Args));
  for (unsigned I : MemoryArgIndices)
    Instance.Args[I] = Smt.bvConst(Tag + "_a" + std::to_string(I),
                                   Instance.Memory->mvalueWidth());
  return Instance;
}

namespace {

/// Reduces a ground bit-vector term to its value, or nullopt if
/// simplification did not reach a numeral.
std::optional<BitValue> tryEvalBits(const z3::expr &Expr) {
  z3::expr Simplified = Expr.simplify();
  if (!Simplified.is_numeral())
    return std::nullopt;
  unsigned Width = Simplified.get_sort().bv_size();
  uint64_t Narrow = 0;
  if (Simplified.is_numeral_u64(Narrow))
    return BitValue(Width, Narrow);
  return BitValue::fromString(Width, Simplified.get_decimal_string(0), 10);
}

/// Reduces a ground boolean term, or nullopt.
std::optional<bool> tryEvalBool(const z3::expr &Expr) {
  z3::expr Simplified = Expr.simplify();
  if (Simplified.is_true())
    return true;
  if (Simplified.is_false())
    return false;
  return std::nullopt;
}

/// Reduces one semantic result of sort \p S to its BitValue encoding
/// (bools become width-1 values).
std::optional<BitValue> tryEvalResult(const z3::expr &Expr, const Sort &S) {
  if (S.isBool()) {
    std::optional<bool> Flag = tryEvalBool(Expr);
    if (!Flag)
      return std::nullopt;
    return BitValue(1, *Flag ? 1 : 0);
  }
  return tryEvalBits(Expr);
}

} // namespace

ConcreteGoalEval::ConcreteGoalEval(SmtContext &Smt, unsigned Width,
                                   const InstrSpec &Goal)
    : Smt(Smt), Width(Width), Goal(Goal),
      UseInterpreter(!Goal.accessesMemory()) {}

std::optional<ConcreteGoalOutcome>
ConcreteGoalEval::evaluateGoal(const TestCase &Test) {
  // Preferred path: the goal's own BitValue semantics. Only installed
  // on goals whose precondition is trivially true.
  if (std::optional<std::vector<BitValue>> Results =
          Goal.computeResultsConcrete(Width, Test)) {
    ConcreteGoalOutcome Outcome;
    Outcome.Results = std::move(*Results);
    return Outcome;
  }

  // Fallback: substitute literals into the exact symbolic semantics
  // and let the simplifier fold the ground term to a numeral.
  GoalInstance Instance = makeConcreteGoalInstance(Smt, Width, Goal, Test);
  SemanticsContext Context{Smt, Width, Instance.Memory.get(), {}};
  std::vector<z3::expr> Results =
      Goal.computeResults(Context, Instance.Args, {});
  std::optional<bool> Defined =
      tryEvalBool(Goal.precondition(Context, Instance.Args, {}));
  if (!Defined)
    return std::nullopt;

  ConcreteGoalOutcome Outcome;
  Outcome.Defined = *Defined;
  if (!Outcome.Defined)
    return Outcome;
  for (unsigned R = 0; R < Results.size(); ++R) {
    std::optional<BitValue> Value =
        tryEvalResult(Results[R], Goal.resultSorts()[R]);
    if (!Value)
      return std::nullopt;
    Outcome.Results.push_back(std::move(*Value));
  }
  return Outcome;
}

ScreenVerdict ConcreteGoalEval::screen(const Graph &Pattern,
                                       const TestCase &Test,
                                       const ConcreteGoalOutcome &GoalOutcome,
                                       bool RequireTotal) {
  if (UseInterpreter)
    return screenInterpreted(Pattern, Test, GoalOutcome, RequireTotal);
  return screenSimplified(Pattern, Test, GoalOutcome, RequireTotal);
}

ScreenVerdict
ConcreteGoalEval::screenInterpreted(const Graph &Pattern, const TestCase &Test,
                                    const ConcreteGoalOutcome &GoalOutcome,
                                    bool RequireTotal) const {
  // Memory-free goal: all arguments are plain values and the pattern
  // has no range conditions, so the IR interpreter decides exactly.
  std::vector<EvalValue> Args;
  for (const BitValue &Value : Test)
    Args.push_back(EvalValue::fromBits(Value));
  EvalResult Evaluated = evaluateGraph(Pattern, Args);
  bool PatternDefined = !Evaluated.Undefined;

  // Mirror the verification query: partial mode kills iff
  //   P+ ∧ ¬(P(g) ∧ results equal); total mode kills iff
  //   P(g) ∧ ¬(P+ ∧ results equal).
  if (RequireTotal) {
    if (!GoalOutcome.Defined)
      return ScreenVerdict::Pass;
    if (!PatternDefined)
      return ScreenVerdict::Kill;
  } else {
    if (!PatternDefined)
      return ScreenVerdict::Pass;
    if (!GoalOutcome.Defined)
      return ScreenVerdict::Kill;
  }

  assert(Evaluated.Results.size() == GoalOutcome.Results.size() &&
         "pattern/goal result count mismatch");
  for (unsigned R = 0; R < Evaluated.Results.size(); ++R) {
    const EvalValue &Result = Evaluated.Results[R];
    bool Equal;
    if (Result.ValueSort.isBool())
      Equal = Result.Flag == (GoalOutcome.Results[R].zextValue() != 0);
    else
      Equal = Result.Bits == GoalOutcome.Results[R];
    if (!Equal)
      return ScreenVerdict::Kill;
  }
  return ScreenVerdict::Pass;
}

ScreenVerdict
ConcreteGoalEval::screenSimplified(const Graph &Pattern, const TestCase &Test,
                                   const ConcreteGoalOutcome &GoalOutcome,
                                   bool RequireTotal) {
  GoalInstance Instance = makeConcreteGoalInstance(Smt, Width, Goal, Test);
  SemanticsContext Context{Smt, Width, Instance.Memory.get(), {}};
  GraphSemantics Semantics =
      buildGraphSemantics(Context, Pattern, Instance.Args);

  std::optional<bool> PatternDefined = tryEvalBool(Semantics.Precondition);
  if (!PatternDefined)
    return ScreenVerdict::Inconclusive;

  if (RequireTotal) {
    if (!GoalOutcome.Defined)
      return ScreenVerdict::Pass;
    if (!*PatternDefined)
      return ScreenVerdict::Kill;
  } else {
    if (!*PatternDefined)
      return ScreenVerdict::Pass;
    if (!GoalOutcome.Defined)
      return ScreenVerdict::Kill;
  }

  // A concrete out-of-range memory access kills the candidate in
  // either mode (condition (3) of the verification query).
  for (const z3::expr &Condition : Semantics.RangeConditions) {
    std::optional<bool> InRange = tryEvalBool(Condition);
    if (!InRange)
      return ScreenVerdict::Inconclusive;
    if (!*InRange)
      return ScreenVerdict::Kill;
  }

  assert(Semantics.Results.size() == GoalOutcome.Results.size() &&
         "pattern/goal result count mismatch");
  for (unsigned R = 0; R < Semantics.Results.size(); ++R) {
    std::optional<BitValue> Result =
        tryEvalResult(Semantics.Results[R], Goal.resultSorts()[R]);
    if (!Result)
      return ScreenVerdict::Inconclusive;
    if (!(*Result == GoalOutcome.Results[R]))
      return ScreenVerdict::Kill;
  }
  return ScreenVerdict::Pass;
}
