//===- ConcreteGoalEval.h - Solver-free candidate screening ------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete evaluation of a goal instruction and of candidate pattern
/// graphs on a single test case, with no solver query. The CEGIS loop
/// uses this to pre-screen reconstructed candidates against the
/// accumulated counterexample corpus: a single concretely failing test
/// kills a candidate before it ever reaches the symbolic verifier.
///
/// Two evaluation paths exist, in order of preference:
///   1. The goal's own BitValue semantics (InstrSpec::
///      computeResultsConcrete) plus the IR interpreter
///      (ir/Interpreter) for the candidate — used for memory-free
///      goals, which is the vast majority.
///   2. Literal substitution into the exact symbolic semantics
///      followed by z3::expr::simplify — ground QF_BV terms reduce to
///      numerals without a solver. This covers memory goals, whose
///      M-value representation the interpreter does not share.
///
/// Screening verdicts mirror the verification query's formulas
/// exactly, so a Kill is sound: the symbolic verifier would have
/// produced a counterexample too (cross-validated in
/// tests/test_concrete_goal_eval.cpp). Anything that does not reduce
/// to a ground truth value is Inconclusive and falls through to the
/// symbolic verifier.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SYNTH_CONCRETEGOALEVAL_H
#define SELGEN_SYNTH_CONCRETEGOALEVAL_H

#include "synth/Encoding.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace selgen {

/// The argument expressions and memory model for one goal
/// instantiation (concrete or symbolic).
struct GoalInstance {
  std::vector<z3::expr> Args;
  std::unique_ptr<MemoryModel> Memory;
};

/// Builds literal argument expressions and the memory model for one
/// concrete test case.
GoalInstance makeConcreteGoalInstance(SmtContext &Smt, unsigned Width,
                                      const InstrSpec &Goal,
                                      const TestCase &Test);

/// Builds fresh symbolic arguments (named Tag + "_a<i>") and the
/// memory model over them.
GoalInstance makeSymbolicGoalInstance(SmtContext &Smt, unsigned Width,
                                      const InstrSpec &Goal,
                                      const std::string &Tag);

/// The goal's behaviour on one concrete test case. Bool results are
/// encoded as width-1 BitValues, memory results as M-value
/// bit-vectors; Results is empty when the goal is undefined on the
/// test (precondition false).
struct ConcreteGoalOutcome {
  bool Defined = true;
  std::vector<BitValue> Results;
};

/// What concrete screening concluded about one (candidate, test) pair.
enum class ScreenVerdict {
  Pass,         ///< The test cannot distinguish candidate and goal.
  Kill,         ///< The candidate concretely disagrees with the goal.
  Inconclusive, ///< Could not decide concretely; verify symbolically.
};

/// Evaluates one goal concretely and screens candidate graphs against
/// cached goal outcomes. One evaluator serves all candidates of a
/// (goal, width); it holds no solver and is cheap to construct.
class ConcreteGoalEval {
public:
  ConcreteGoalEval(SmtContext &Smt, unsigned Width, const InstrSpec &Goal);

  /// Evaluates the goal on \p Test without a solver, preferring the
  /// goal's BitValue semantics and falling back to literal
  /// substitution + simplify. Returns nullopt if some term did not
  /// reduce to a ground value.
  std::optional<ConcreteGoalOutcome> evaluateGoal(const TestCase &Test);

  /// Screens \p Pattern against \p Test given the goal's cached
  /// outcome. Kill mirrors the verification query: in partial mode the
  /// pattern is defined but the goal is not, a result differs, or a
  /// memory access leaves the valid range; in total (RequireTotal)
  /// mode the goal is defined but the pattern is not, or they
  /// disagree.
  ScreenVerdict screen(const Graph &Pattern, const TestCase &Test,
                       const ConcreteGoalOutcome &GoalOutcome,
                       bool RequireTotal);

private:
  SmtContext &Smt;
  unsigned Width;
  const InstrSpec &Goal;
  /// Memory-involving goals cannot use the IR interpreter (its
  /// MemoryState byte map is not the M-value representation).
  bool UseInterpreter;

  ScreenVerdict screenInterpreted(const Graph &Pattern, const TestCase &Test,
                                  const ConcreteGoalOutcome &GoalOutcome,
                                  bool RequireTotal) const;
  ScreenVerdict screenSimplified(const Graph &Pattern, const TestCase &Test,
                                 const ConcreteGoalOutcome &GoalOutcome,
                                 bool RequireTotal);
};

} // namespace selgen

#endif // SELGEN_SYNTH_CONCRETEGOALEVAL_H
