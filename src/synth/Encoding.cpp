//===- Encoding.cpp - Location-variable program encoding ---------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "synth/Encoding.h"

#include "support/Statistics.h"

#include <algorithm>
#include <map>

using namespace selgen;

ProgramEncoding::ProgramEncoding(SmtContext &Smt, unsigned Width,
                                 const InstrSpec &Goal,
                                 std::vector<Opcode> Templates,
                                 bool RequireAllUsed)
    : Smt(Smt), Width(Width), Goal(Goal), WellFormed(Smt.boolVal(true)),
      RequireAllUsed(RequireAllUsed) {
  unsigned TotalCells = 0;
  for (Opcode Op : Templates)
    TotalCells += opcodeResultSorts(Op, Width).size();
  unsigned NumLocations = Goal.argSorts().size() + TotalCells;

  LocationBits = 1;
  while ((1u << LocationBits) < NumLocations + 1)
    ++LocationBits;
  ++LocationBits; // Headroom so comparisons cannot wrap.

  // Pattern arguments occupy the first locations.
  for (unsigned I = 0; I < Goal.argSorts().size(); ++I)
    Sources.push_back(Source{Goal.argSorts()[I], /*IsArg=*/true, I, 0, 0,
                             locationLiteral(I)});

  // One TemplateOp per multiset element.
  for (unsigned OpIndex = 0; OpIndex < Templates.size(); ++OpIndex) {
    Opcode Op = Templates[OpIndex];
    TemplateOp Entry{std::make_unique<IrOpSpec>(Op, Width),
                     Smt.bvConst("loc_op" + std::to_string(OpIndex),
                                 LocationBits),
                     {},
                     {}};
    const IrOpSpec &Spec = *Entry.Spec;
    for (unsigned K = 0; K < Spec.argSorts().size(); ++K)
      Entry.ArgLocations.push_back(
          Smt.bvConst("loc_op" + std::to_string(OpIndex) + "_arg" +
                          std::to_string(K),
                      LocationBits));
    for (unsigned K = 0; K < Spec.internalSorts().size(); ++K) {
      const Sort &S = Spec.internalSorts()[K];
      assert(S.isValue() && "internal attributes are bit-vectors");
      Entry.Internals.push_back(
          Smt.bvConst("attr_op" + std::to_string(OpIndex) + "_" +
                          std::to_string(K),
                      S.Width));
    }
    for (unsigned J = 0; J < Spec.resultSorts().size(); ++J)
      Sources.push_back(Source{
          Spec.resultSorts()[J], /*IsArg=*/false, 0, OpIndex, J,
          (Entry.Location + Smt.ctx().bv_val(J, LocationBits)).simplify()});
    Ops.push_back(std::move(Entry));
  }

  // One result location variable per goal result.
  for (unsigned R = 0; R < Goal.resultSorts().size(); ++R)
    ResultLocations.push_back(
        Smt.bvConst("loc_res" + std::to_string(R), LocationBits));

  // Decision variables: everything an exclusion clause must cover.
  for (const TemplateOp &Entry : Ops) {
    DecisionVars.push_back(Entry.Location);
    for (const z3::expr &Loc : Entry.ArgLocations)
      DecisionVars.push_back(Loc);
    for (const z3::expr &Attr : Entry.Internals)
      DecisionVars.push_back(Attr);
  }
  for (const z3::expr &Loc : ResultLocations)
    DecisionVars.push_back(Loc);

  buildWellFormed();
}

z3::expr ProgramEncoding::locationLiteral(unsigned Location) const {
  return Smt.ctx().bv_val(Location, LocationBits);
}

void ProgramEncoding::buildWellFormed() {
  std::vector<z3::expr> Constraints;
  unsigned NumArgs = Goal.argSorts().size();

  // Block placement: every operation's result block lies after the
  // argument locations.
  z3::expr_vector DistinctCells(Smt.ctx());
  for (unsigned I = 0; I < NumArgs; ++I)
    DistinctCells.push_back(locationLiteral(I));
  unsigned TotalCells = 0;
  for (const TemplateOp &Entry : Ops)
    TotalCells += Entry.Spec->resultSorts().size();
  for (const TemplateOp &Entry : Ops) {
    unsigned BlockSize = Entry.Spec->resultSorts().size();
    Constraints.push_back(z3::uge(Entry.Location, locationLiteral(NumArgs)));
    Constraints.push_back(z3::ule(
        Entry.Location,
        locationLiteral(NumArgs + TotalCells - BlockSize)));
    for (unsigned J = 0; J < BlockSize; ++J)
      DistinctCells.push_back(
          Entry.Location + Smt.ctx().bv_val(J, LocationBits));
  }
  // ψcons: all argument locations and result cells are distinct.
  if (DistinctCells.size() > 1)
    Constraints.push_back(z3::distinct(DistinctCells));

  // Argument sources: sort-correct range plus acyclicity.
  for (const TemplateOp &Entry : Ops) {
    const IrOpSpec &Spec = *Entry.Spec;
    for (unsigned K = 0; K < Spec.argSorts().size(); ++K) {
      const Sort &WantedSort = Spec.argSorts()[K];
      std::vector<z3::expr> Choices;
      for (const Source &Src : Sources) {
        if (Src.ValueSort != WantedSort)
          continue;
        if (!Src.IsArg && &Ops[Src.OpIndex] == &Entry)
          continue; // An operation cannot consume its own result.
        Choices.push_back(Entry.ArgLocations[K] == Src.Location &&
                          z3::ult(Src.Location, Entry.Location));
      }
      Constraints.push_back(Smt.mkOr(Choices));
    }
    // Cmp's relation code is global (not input-dependent), so assert
    // it here rather than in P+.
    if (Spec.opcode() == Opcode::Cmp)
      Constraints.push_back(z3::ule(
          Entry.Internals[0],
          Smt.ctx().bv_val(relationCode(Relation::Sge), 4)));
  }

  // Result sources: sort-correct.
  for (unsigned R = 0; R < Goal.resultSorts().size(); ++R) {
    const Sort &WantedSort = Goal.resultSorts()[R];
    std::vector<z3::expr> Choices;
    for (const Source &Src : Sources)
      if (Src.ValueSort == WantedSort)
        Choices.push_back(ResultLocations[R] == Src.Location);
    Constraints.push_back(Smt.mkOr(Choices));
  }

  // Refinement: every operation must be used (at least one of its
  // result cells feeds another operation or a pattern result). A fully
  // unused operation means the same pattern exists for a smaller
  // multiset, which iterative deepening has already explored — and
  // without this constraint an unused Const would enumerate one
  // "distinct" solution per constant value.
  for (unsigned OpIndex = 0; RequireAllUsed && OpIndex < Ops.size();
       ++OpIndex) {
    std::vector<z3::expr> Uses;
    for (const Source &Src : Sources) {
      if (Src.IsArg || Src.OpIndex != OpIndex)
        continue;
      for (const TemplateOp &Consumer : Ops) {
        const IrOpSpec &Spec = *Consumer.Spec;
        for (unsigned K = 0; K < Spec.argSorts().size(); ++K)
          if (Spec.argSorts()[K] == Src.ValueSort &&
              &Consumer != &Ops[OpIndex])
            Uses.push_back(Consumer.ArgLocations[K] == Src.Location);
      }
      for (unsigned R = 0; R < Goal.resultSorts().size(); ++R)
        if (Goal.resultSorts()[R] == Src.ValueSort)
          Uses.push_back(ResultLocations[R] == Src.Location);
    }
    Constraints.push_back(Smt.mkOr(Uses));
  }

  WellFormed = Smt.mkAnd(Constraints);
}

EncodedInstance ProgramEncoding::instantiate(const std::vector<z3::expr> &Args,
                                             const MemoryModel &Memory,
                                             const std::string &Tag) {
  assert(Args.size() == Goal.argSorts().size() && "argument count mismatch");
  SemanticsContext Context{Smt, Width, &Memory, {}};

  // Fresh value variables for every operation argument and result.
  std::vector<std::vector<z3::expr>> ArgValues, ResultValues;
  for (unsigned OpIndex = 0; OpIndex < Ops.size(); ++OpIndex) {
    const IrOpSpec &Spec = *Ops[OpIndex].Spec;
    std::vector<z3::expr> OpArgs, OpResults;
    for (unsigned K = 0; K < Spec.argSorts().size(); ++K)
      OpArgs.push_back(Context.freshConst(
          Tag + "_e" + std::to_string(OpIndex) + "_" + std::to_string(K),
          Spec.argSorts()[K]));
    for (unsigned J = 0; J < Spec.resultSorts().size(); ++J)
      OpResults.push_back(Context.freshConst(
          Tag + "_r" + std::to_string(OpIndex) + "_" + std::to_string(J),
          Spec.resultSorts()[J]));
    ArgValues.push_back(std::move(OpArgs));
    ResultValues.push_back(std::move(OpResults));
  }

  auto sourceValue = [&](const Source &Src) {
    return Src.IsArg ? Args[Src.ArgIndex]
                     : ResultValues[Src.OpIndex][Src.ResultIndex];
  };

  std::vector<z3::expr> Definitions;
  std::vector<z3::expr> Preconditions;

  for (unsigned OpIndex = 0; OpIndex < Ops.size(); ++OpIndex) {
    const TemplateOp &Entry = Ops[OpIndex];
    const IrOpSpec &Spec = *Entry.Spec;

    // Connection constraint: a chosen source location forces the
    // argument value to equal that source's value. Ill-sorted pairs
    // are skipped entirely.
    for (unsigned K = 0; K < Spec.argSorts().size(); ++K) {
      for (const Source &Src : Sources) {
        if (Src.ValueSort != Spec.argSorts()[K])
          continue;
        if (!Src.IsArg && Src.OpIndex == OpIndex)
          continue;
        Definitions.push_back(
            z3::implies(Entry.ArgLocations[K] == Src.Location,
                        ArgValues[OpIndex][K] == sourceValue(Src)));
      }
    }

    // Operation semantics (Q as definitions of the result variables).
    std::vector<z3::expr> Computed =
        Spec.computeResults(Context, ArgValues[OpIndex], Entry.Internals);
    for (unsigned J = 0; J < Computed.size(); ++J)
      Definitions.push_back(ResultValues[OpIndex][J] == Computed[J]);

    Preconditions.push_back(
        Spec.precondition(Context, ArgValues[OpIndex], Entry.Internals));
  }

  // Pattern results: connect each goal result to its chosen source.
  EncodedInstance Instance{Smt.boolVal(true), Smt.boolVal(true),
                           Smt.boolVal(true), {}};
  for (unsigned R = 0; R < Goal.resultSorts().size(); ++R) {
    z3::expr ResultValue = Context.freshConst(
        Tag + "_vr" + std::to_string(R), Goal.resultSorts()[R]);
    for (const Source &Src : Sources)
      if (Src.ValueSort == Goal.resultSorts()[R])
        Definitions.push_back(z3::implies(ResultLocations[R] == Src.Location,
                                          ResultValue == sourceValue(Src)));
    Instance.Results.push_back(ResultValue);
  }

  Instance.Definitions = Smt.mkAnd(Definitions);
  Instance.Precondition = Smt.mkAnd(Preconditions);
  Instance.RangeCondition = Smt.mkAnd(Context.RangeConditions);
  return Instance;
}

std::optional<Graph> ProgramEncoding::reconstruct(const z3::model &Model) const {
  Graph G(Width, Goal.argSorts());

  // Read all block starts and order the operations by location.
  std::vector<std::pair<unsigned, unsigned>> Placement; // (location, op).
  for (unsigned OpIndex = 0; OpIndex < Ops.size(); ++OpIndex) {
    unsigned Location = static_cast<unsigned>(
        Smt.evalBits(Model, Ops[OpIndex].Location).zextValue());
    Placement.emplace_back(Location, OpIndex);
  }
  std::sort(Placement.begin(), Placement.end());

  unsigned NumArgs = Goal.argSorts().size();
  // Location cell -> produced value.
  std::map<unsigned, NodeRef> CellValues;
  for (unsigned I = 0; I < NumArgs; ++I)
    CellValues[I] = G.arg(I);

  // A well-formed model defines every referenced cell (ψcons plus the
  // acyclicity ordering guarantee it); a dangling reference means the
  // model is inconsistent — Z3 cut short by a resource limit during
  // model conversion can leave default-completed location variables —
  // and the candidate must be rejected, not trusted.
  auto lookupCell = [&CellValues](unsigned Location) -> std::optional<NodeRef> {
    auto It = CellValues.find(Location);
    if (It == CellValues.end()) {
      Statistics::get().add("cegis.bad_models");
      return std::nullopt;
    }
    return It->second;
  };

  for (const auto &[Location, OpIndex] : Placement) {
    const TemplateOp &Entry = Ops[OpIndex];
    const IrOpSpec &Spec = *Entry.Spec;
    std::vector<NodeRef> Operands;
    for (unsigned K = 0; K < Spec.argSorts().size(); ++K) {
      unsigned SourceLocation = static_cast<unsigned>(
          Smt.evalBits(Model, Entry.ArgLocations[K]).zextValue());
      std::optional<NodeRef> Cell = lookupCell(SourceLocation);
      if (!Cell)
        return std::nullopt;
      Operands.push_back(*Cell);
    }
    Node *N = G.createNode(Spec.opcode(), Operands);
    if (Spec.opcode() == Opcode::Const)
      N->setConstValue(Smt.evalBits(Model, Entry.Internals[0]));
    if (Spec.opcode() == Opcode::Cmp)
      N->setRelation(relationFromCode(static_cast<unsigned>(
          Smt.evalBits(Model, Entry.Internals[0]).zextValue())));
    for (unsigned J = 0; J < Spec.resultSorts().size(); ++J)
      CellValues[Location + J] = NodeRef(N, J);
  }

  std::vector<NodeRef> Results;
  for (const z3::expr &Loc : ResultLocations) {
    unsigned Location =
        static_cast<unsigned>(Smt.evalBits(Model, Loc).zextValue());
    std::optional<NodeRef> Cell = lookupCell(Location);
    if (!Cell)
      return std::nullopt;
    Results.push_back(*Cell);
  }
  G.setResults(std::move(Results));
  G.removeDeadNodes();
  return G;
}
