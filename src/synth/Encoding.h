//===- Encoding.h - Location-variable program encoding -----------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The extended Gulwani-style program encoding of paper Section 5.1:
/// a candidate IR pattern is a set of bit-vector *location variables*
/// that place the template operations in a linear order and choose
/// every operand's source. Extensions over the original encoding:
///
/// * multiple result values: each operation owns a block of
///   |Sr(o)| consecutive locations, and the consistency constraint
///   ψcons uses `distinct` over all block cells;
/// * multiple sorts: an argument's location variable only ranges over
///   sources of the same sort, and ill-sorted connections are excluded
///   from the connection constraint;
/// * internal attributes: Const values and Cmp relations are
///   existential variables of the synthesis query (S+i);
/// * memory: the V+ ⊆ V side conditions of the memory operations are
///   collected so the search algorithm (Section 5.2) can assert or
///   negate them.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SYNTH_ENCODING_H
#define SELGEN_SYNTH_ENCODING_H

#include "ir/Graph.h"
#include "semantics/IrSemantics.h"
#include "smt/SmtContext.h"

#include <memory>
#include <optional>
#include <vector>

namespace selgen {

/// One concrete CEGIS test case: a value per goal argument (memory
/// arguments are M-value bit-vectors).
using TestCase = std::vector<BitValue>;

/// The per-instantiation output of the encoding: everything the search
/// algorithm needs to assert about one set of argument expressions.
struct EncodedInstance {
  /// Definitional constraints: operand connections and operation
  /// semantics (the Q+ of the paper, plus the connection constraint).
  z3::expr Definitions;
  /// P+: conjunction of the operations' preconditions.
  z3::expr Precondition;
  /// V+ ⊆ V: conjunction of the memory range conditions.
  z3::expr RangeCondition;
  /// The pattern's result values (what the location-selected sources
  /// feed into vr).
  std::vector<z3::expr> Results;
};

/// The encoding of one template multiset against one goal interface.
class ProgramEncoding {
public:
  /// \p Goal provides the pattern interface (its Sa become the pattern
  /// arguments, its Sr the pattern results). \p Templates is the
  /// multiset I of IR operations; entries may repeat.
  /// \p RequireAllUsed enables the all-operations-used refinement; the
  /// classical-CEGIS baseline (Section 7.2 comparison) runs without it,
  /// as in the original encoding.
  ProgramEncoding(SmtContext &Smt, unsigned Width, const InstrSpec &Goal,
                  std::vector<Opcode> Templates, bool RequireAllUsed = true);

  /// The well-formed-program constraint ϕwf: consistency (distinct
  /// locations), acyclicity (argument sources precede the operation),
  /// sort-correct source ranges, and the all-operations-used
  /// refinement (any fully unused operation would mean the pattern
  /// was already found with a smaller multiset).
  z3::expr wellFormed() const { return WellFormed; }

  /// Instantiates connection and semantics constraints for one vector
  /// of argument expressions (literals during synthesis, fresh
  /// constants during verification). \p Memory is the goal's memory
  /// model for these arguments.
  EncodedInstance instantiate(const std::vector<z3::expr> &Args,
                              const MemoryModel &Memory,
                              const std::string &Tag);

  /// The location and internal-attribute variables, in a fixed order;
  /// the exclusion clause of CEGISAllPatterns (Section 5.3) ranges
  /// over exactly these.
  const std::vector<z3::expr> &decisionVariables() const {
    return DecisionVars;
  }

  /// Reconstructs the concrete pattern graph from a model of the
  /// synthesis query (Section 5.2, last step). Returns std::nullopt on
  /// an internally inconsistent model — Z3 interrupted by a resource
  /// limit mid model-conversion can report sat with incomplete
  /// location assignments; the caller treats that like any other
  /// solver failure instead of trusting the model.
  std::optional<Graph> reconstruct(const z3::model &Model) const;

  unsigned numTemplates() const { return Ops.size(); }

private:
  struct TemplateOp {
    std::unique_ptr<IrOpSpec> Spec;
    z3::expr Location;                  ///< Block start L(o).
    std::vector<z3::expr> ArgLocations; ///< Source location per argument.
    std::vector<z3::expr> Internals;    ///< Internal attribute variables.
  };

  /// A potential operand source: a pattern argument or a template
  /// operation's result cell.
  struct Source {
    Sort ValueSort;
    bool IsArg;
    unsigned ArgIndex;     ///< Pattern argument index (IsArg).
    unsigned OpIndex;      ///< Template index (!IsArg).
    unsigned ResultIndex;  ///< Result cell within the op (!IsArg).
    z3::expr Location;     ///< Location expression of this source.
  };

  SmtContext &Smt;
  unsigned Width;
  const InstrSpec &Goal;
  std::vector<TemplateOp> Ops;
  std::vector<z3::expr> ResultLocations; ///< One per goal result.
  std::vector<Source> Sources;
  std::vector<z3::expr> DecisionVars;
  z3::expr WellFormed;
  unsigned LocationBits;
  bool RequireAllUsed;

  z3::expr locationLiteral(unsigned Location) const;
  void buildWellFormed();
};

} // namespace selgen

#endif // SELGEN_SYNTH_ENCODING_H
