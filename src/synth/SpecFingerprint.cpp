//===- SpecFingerprint.cpp - Content fingerprints for caching -----------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "synth/SpecFingerprint.h"

#include "support/Hashing.h"

using namespace selgen;

// v2: CEGIS returns patterns in canonical (fingerprint) order and
// asserts corpus tests lazily; cached v1 results can carry a
// different pattern order.
const char *const selgen::EncoderVersionTag = "cegis-enc-v2";

std::string selgen::instrSpecFingerprint(SmtContext &Smt,
                                         const InstrSpec &Spec,
                                         unsigned Width) {
  StableHasher Hasher;
  Hasher.str("spec").str(Spec.name()).u64(Width);
  for (const Sort &S : Spec.argSorts())
    Hasher.str(S.str());
  for (const Sort &S : Spec.internalSorts())
    Hasher.str(S.str());
  for (const Sort &S : Spec.resultSorts())
    Hasher.str(S.str());
  for (unsigned I = 0; I < Spec.argSorts().size(); ++I)
    Hasher.u64(static_cast<uint64_t>(Spec.argRole(I)));

  // Symbolic arguments with fixed names, so the printed Z3 terms are
  // reproducible across processes. Memory arguments need the goal's
  // MemoryModel (built from its valid pointers) for their width, the
  // same two-phase construction as Synthesizer::requiredMemoryOps.
  std::vector<z3::expr> Args;
  std::vector<unsigned> MemoryArgIndices;
  for (unsigned I = 0; I < Spec.argSorts().size(); ++I) {
    const Sort &S = Spec.argSorts()[I];
    if (S.isMemory()) {
      MemoryArgIndices.push_back(I);
      Args.push_back(Smt.ctx().bv_val(0, 1)); // Placeholder.
    } else if (S.isBool()) {
      Args.push_back(Smt.boolConst("fp_a" + std::to_string(I)));
    } else {
      Args.push_back(Smt.bvConst("fp_a" + std::to_string(I), S.Width));
    }
  }
  std::vector<z3::expr> ValidPointers;
  if (Spec.accessesMemory())
    ValidPointers = Spec.validPointers(Smt, Width, Args);
  MemoryModel Memory(Smt, ValidPointers);
  for (z3::expr &Pointer : ValidPointers)
    Hasher.str(Pointer.to_string());
  for (unsigned I : MemoryArgIndices)
    Args[I] = Smt.bvConst("fp_a" + std::to_string(I), Memory.mvalueWidth());

  SemanticsContext Context{Smt, Width, &Memory, {}};
  std::vector<z3::expr> Internals;
  for (unsigned I = 0; I < Spec.internalSorts().size(); ++I)
    Internals.push_back(Context.freshConst("fp_i" + std::to_string(I),
                                           Spec.internalSorts()[I]));

  Hasher.str(Spec.precondition(Context, Args, Internals).to_string());
  std::vector<z3::expr> Results = Spec.computeResults(Context, Args, Internals);
  for (const z3::expr &Result : Results)
    Hasher.str(Result.to_string());
  for (const z3::expr &Condition : Context.RangeConditions)
    Hasher.str(Condition.to_string());
  return Hasher.hex();
}

std::string
selgen::synthesisOptionsFingerprint(const SynthesisOptions &Options) {
  StableHasher Hasher;
  Hasher.str("options").u64(Options.Width);
  for (Opcode Op : Options.Alphabet)
    Hasher.str(opcodeName(Op));
  Hasher.u64(Options.MaxPatternSize)
      .boolean(Options.UseMemoryRefinement)
      .boolean(Options.UseSkipCriteria)
      .boolean(Options.FindAllMinimal)
      .boolean(Options.RequireTotalPatterns)
      .u64(Options.MaxPatternsPerGoal)
      .u64(Options.MaxPatternsPerMultiset);
  return Hasher.hex();
}

std::string selgen::synthesisCacheKey(SmtContext &Smt, const InstrSpec &Spec,
                                      const SynthesisOptions &Options) {
  StableHasher Hasher;
  Hasher.str("key")
      .str(Spec.name())
      .str(instrSpecFingerprint(Smt, Spec, Options.Width))
      .u64(Options.Width)
      .str(synthesisOptionsFingerprint(Options))
      .str(EncoderVersionTag);
  return Hasher.hex();
}
